// Ablation: the broadcast-as-one-message simplification (Section 5.1).
//
// The paper's SAN model folds the implementation's n-1 unicasts into a
// single broadcast message with a larger t_network. This harness quantifies
// what the simplification costs by comparing, on the SAN side,
//   (A) the paper's single-message broadcast model against
//   (B) a variant whose proposal is n-1 independent unicast chains,
// in the three scenarios of Table 1. Variant B recovers the n = 3
// participant-crash anomaly that variant A misses.
#include <iostream>

#include "core/report.hpp"
#include "core/simulation.hpp"
#include "san/study.hpp"
#include "sanmodels/consensus_model.hpp"

namespace {

using namespace sanperf;

// Variant B: proposals as unicasts. We emulate it by setting the broadcast
// frame time to a single unicast's and letting the per-destination receive
// legs serialise -- plus (n-2) extra medium occupancies injected as unicast
// chains would cause. The cleanest comparison: build the standard model
// with frame_broadcast = frame_unicast * (n-1) (value A) versus
// frame_broadcast = frame_unicast (value B-lower-bound). The gap brackets
// the serialisation the single-message model must absorb.
double simulate_mean(std::size_t n, const sanmodels::TransportParams& transport, int crashed,
                     std::uint64_t seed, std::size_t reps) {
  sanmodels::ConsensusSanConfig cfg;
  cfg.n = n;
  cfg.transport = transport;
  cfg.initially_crashed = crashed;
  const auto model = sanmodels::build_consensus_san(cfg);
  san::TransientStudy study{model.model, model.stop_predicate()};
  return study.run(reps, seed).summary.mean();
}

}  // namespace

int main() {
  const std::size_t reps = 400;
  core::print_banner(std::cout, "Ablation -- broadcast modelling in the SAN (Section 5.1)");

  core::TablePrinter table{std::cout,
                           {{"n", 3},
                            {"scenario", 18},
                            {"bcast=1 msg", 12},
                            {"bcast=unicast", 14},
                            {"delta%", 8}}};
  table.print_header();
  for (const std::size_t n : {3u, 5u}) {
    auto paper_like = sanmodels::TransportParams::nominal(n);
    auto unicast_like = sanmodels::TransportParams::nominal(n);
    unicast_like.frame_broadcast = unicast_like.frame_unicast;

    const struct {
      const char* name;
      int crashed;
    } scenarios[] = {{"no crash", -1}, {"coordinator crash", 0}, {"participant crash", 1}};
    for (const auto& sc : scenarios) {
      const double a = simulate_mean(n, paper_like, sc.crashed, 11 + n, reps);
      const double b = simulate_mean(n, unicast_like, sc.crashed, 12 + n, reps);
      table.print_row({std::to_string(n), sc.name, core::fmt(a), core::fmt(b),
                       core::fmt(100.0 * (a - b) / a, 1)});
    }
    table.print_rule();
  }
  std::cout << "The single-message broadcast (paper model) charges the medium for the\n"
               "whole fan-out at once; shrinking it to one unicast removes that cost\n"
               "and quantifies how much latency the simplification attributes to the\n"
               "proposal step. Neither variant reproduces the measured n=3\n"
               "participant-crash anomaly -- that needs per-destination ordering,\n"
               "which only the emulator (n-1 real unicasts) exhibits.\n";
  return 0;
}
