// Ablation: the independent-failure-detector assumption (Section 3.4/5.4).
//
// The paper models each of the n(n-1) failure detectors as an independent
// two-state process and observes that, under frequent wrong suspicions,
// the model diverges from measurements because real suspicions correlate
// (heartbeats of every pair share the contended network and CPUs).
//
// This harness makes the comparison directly with matched QoS:
//   1. run the emulator's class-3 campaign at a given timeout T and
//      estimate (T_MR, T_M);
//   2. feed exactly those QoS values into the independent-FD SAN model;
//   3. compare latency distributions.
// Any residual gap is attributable to correlation (plus secondary model
// simplifications), not to QoS mismatch.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"

int main() {
  using namespace sanperf;
  auto scale = core::Scale::from_env();
  const auto ctx = core::make_context(scale);

  core::print_banner(std::cout, "Ablation -- FD independence assumption (scale: " +
                                    scale.name() + ")");

  core::TablePrinter table{std::cout,
                           {{"n", 3},
                            {"T[ms]", 7},
                            {"meas lat", 10},
                            {"sim lat (indep FD)", 19},
                            {"sim/meas", 9},
                            {"T_MR[ms]", 10},
                            {"T_M[ms]", 9}}};
  table.print_header();

  for (const std::size_t n : ctx.scale.sim_ns) {
    for (const double timeout : {2.0, 5.0, 10.0, 20.0, 40.0}) {
      const auto meas = core::measure_class3(n, ctx.network, ctx.timers, timeout,
                                             scale.class3_runs, scale.class3_executions,
                                             ctx.seed + 31 * n + static_cast<std::uint64_t>(timeout));
      const auto& qos = meas.pooled_qos;
      double sim_mean = 0;
      if (qos.pairs_used == 0 || !(qos.t_m_ms > 0) || qos.t_m_ms >= qos.t_mr_ms) {
        sim_mean = core::simulate_class1(n, ctx.transport(n), scale.sim_replications,
                                         ctx.seed + 51)
                       .summary.mean();
      } else {
        const auto params = fd::AbstractFdParams::from_qos(
            qos, fd::AbstractFdParams::Sojourn::kExponential);
        sim_mean = core::simulate_class3(n, ctx.transport(n), params, scale.sim_replications,
                                         ctx.seed + 52)
                       .summary.mean();
      }
      const double meas_mean = meas.latency_ms.mean;
      table.print_row({std::to_string(n), core::fmt(timeout, 0), core::fmt(meas_mean, 2),
                       core::fmt(sim_mean, 2),
                       core::fmt(meas_mean > 0 ? sim_mean / meas_mean : 0.0, 2),
                       qos.pairs_used ? core::fmt(qos.t_mr_ms, 1) : "-",
                       qos.pairs_used ? core::fmt(qos.t_m_ms, 1) : "-"});
    }
    table.print_rule();
  }
  std::cout << "Expected shape (paper Section 5.4): sim/meas near 1 at large T, a\n"
               "clear divergence at small T where wrong suspicions are frequent and\n"
               "correlated in reality but independent in the model.\n";
  return 0;
}
