// Microbenchmarks of the substrates: event queue, SAN firing loop,
// contention network, consensus emulation, SAN consensus replication, and
// the parallel replication engine's thread scaling.
#include <benchmark/benchmark.h>

#include <any>
#include <deque>

#include "consensus/ct_consensus.hpp"
#include "core/measurement.hpp"
#include "core/replication.hpp"
#include "core/workload.hpp"
#include "des/event_queue.hpp"
#include "des/ladder_queue.hpp"
#include "des/simulator.hpp"
#include "fd/failure_detector.hpp"
#include "net/network.hpp"
#include "runtime/cluster.hpp"
#include "san/simulator.hpp"
#include "sanmodels/consensus_model.hpp"

namespace {

using namespace sanperf;

void BM_EventQueuePushPop(benchmark::State& state) {
  des::RandomEngine rng{1};
  des::EventQueue q;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(des::TimePoint::origin() + des::Duration::nanos(rng.uniform_int(0, 1'000'000)),
             [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().id);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

// Cancellation under a standing backlog: the dominant failure-detector
// pattern (arm a timeout, cancel it when the heartbeat arrives). With the
// indexed heap this is a true O(log n) removal and zero allocations; the
// old lazy-deletion design left a dead entry to churn through the heap.
void BM_EventQueueCancel(benchmark::State& state) {
  des::RandomEngine rng{2};
  des::EventQueue q;
  std::vector<des::EventId> backlog;
  for (int i = 0; i < 256; ++i) {
    backlog.push_back(
        q.push(des::TimePoint::origin() + des::Duration::nanos(rng.uniform_int(0, 1'000'000)),
               [] {}));
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      const des::EventId victim = backlog[cursor];
      benchmark::DoNotOptimize(q.cancel(victim));
      backlog[cursor] =
          q.push(des::TimePoint::origin() + des::Duration::nanos(rng.uniform_int(0, 1'000'000)),
                 [] {});
      cursor = (cursor + 1) % backlog.size();
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["slab_slots"] = static_cast<double>(q.slot_capacity());
}
BENCHMARK(BM_EventQueueCancel);

// The classic hold model at a standing pending-set size (the Arg): pop the
// earliest event, push a replacement at a random future offset. This is
// where the heap's O(log n) pops separate from the ladder's amortised O(1)
// bucket scans -- small pending sets favour the heap's tight loop, large
// ones the ladder. Run both to locate the crossover on this machine.
template <typename Queue>
void BM_HoldModel(benchmark::State& state) {
  const auto pending = static_cast<std::size_t>(state.range(0));
  des::RandomEngine rng{5};
  Queue q;
  des::TimePoint now = des::TimePoint::origin();
  for (std::size_t i = 0; i < pending; ++i) {
    q.push(now + des::Duration::nanos(rng.uniform_int(0, 1'000'000)), [] {});
  }
  for (auto _ : state) {
    const auto popped = q.pop();
    now = popped.at;
    benchmark::DoNotOptimize(
        q.push(now + des::Duration::nanos(rng.uniform_int(1, 1'000'000)), [] {}));
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_LadderVsHeap_Heap(benchmark::State& state) { BM_HoldModel<des::EventQueue>(state); }
void BM_LadderVsHeap_Ladder(benchmark::State& state) { BM_HoldModel<des::LadderQueue>(state); }
BENCHMARK(BM_LadderVsHeap_Heap)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);
BENCHMARK(BM_LadderVsHeap_Ladder)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_SimulatorEventChain(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    int remaining = 1024;
    std::function<void()> chain = [&] {
      if (--remaining > 0) sim.schedule(des::Duration::nanos(10), chain);
    };
    sim.schedule(des::Duration::nanos(10), chain);
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SimulatorEventChain);

void BM_NetworkUnicastThroughput(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    net::ContentionNetwork netw{sim, des::RandomEngine{2}, net::NetworkParams::defaults(), 4};
    std::uint64_t delivered = 0;
    netw.set_deliver([&](const net::Packet&) { ++delivered; });
    for (int i = 0; i < 256; ++i) netw.send(i % 3, 3, std::any{});
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_NetworkUnicastThroughput);

void BM_ConsensusEmulation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto res = core::measure_latency(n, net::NetworkParams::defaults(),
                                           net::TimerModel::ideal(), -1, 1, seed++);
    benchmark::DoNotOptimize(res.latencies_ms);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConsensusEmulation)->Arg(3)->Arg(5)->Arg(11);

void BM_SanConsensusReplication(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sanmodels::ConsensusSanConfig cfg;
  cfg.n = n;
  cfg.transport = sanmodels::TransportParams::nominal(n);
  const auto model = sanmodels::build_consensus_san(cfg);
  san::SanSimulator sim{model.model, des::RandomEngine{3}};
  sim.set_stop_predicate(model.stop_predicate());
  const des::RandomEngine master{4};
  std::uint64_t rep = 0;
  for (auto _ : state) {
    sim.reset(master.substream("rep", rep++));
    benchmark::DoNotOptimize(sim.run(des::Duration::seconds(5)).end_time);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SanConsensusReplication)->Arg(3)->Arg(5);

// Thread scaling of a SAN replication campaign through the engine. The
// merged statistics are bit-identical across the Arg values; only the wall
// clock changes (real time is the honest metric here).
void BM_ReplicationEngineSan(benchmark::State& state) {
  const core::ReplicationRunner runner{static_cast<std::size_t>(state.range(0))};
  sanmodels::ConsensusSanConfig cfg;
  cfg.n = 5;
  cfg.transport = sanmodels::TransportParams::nominal(5);
  const auto model = sanmodels::build_consensus_san(cfg);
  san::TransientStudy study{model.model, model.stop_predicate()};
  study.set_time_limit(des::Duration::seconds(10));
  for (auto _ : state) {
    const auto res = core::run_study(runner, study, 1000, 42);
    benchmark::DoNotOptimize(res.summary.mean());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ReplicationEngineSan)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Thread scaling of the emulated-cluster measurement campaign (the Fig 7a
// inner loop) through the engine.
void BM_ReplicationEngineEmulation(benchmark::State& state) {
  const core::ReplicationRunner runner{static_cast<std::size_t>(state.range(0))};
  for (auto _ : state) {
    const auto res = core::measure_latency(5, net::NetworkParams::defaults(),
                                           net::TimerModel::ideal(), -1, 64, 42, runner);
    benchmark::DoNotOptimize(res.latencies_ms);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ReplicationEngineEmulation)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Thread scaling of a whole flattened campaign: a Fig 7a-shaped sweep
// (several group sizes x replications) enumerated as one ShardSpace, so the
// outer grid sweep and the inner replication loops drain from a single
// batch. Results are bit-identical across the Arg values.
void BM_FlatCampaignSan(benchmark::State& state) {
  const core::ReplicationRunner runner{static_cast<std::size_t>(state.range(0))};
  const std::vector<std::size_t> ns = {3, 5};
  std::deque<sanmodels::ConsensusSanModel> models;  // address-stable under the studies
  std::vector<san::TransientStudy> studies;
  for (const std::size_t n : ns) {
    sanmodels::ConsensusSanConfig cfg;
    cfg.n = n;
    cfg.transport = sanmodels::TransportParams::nominal(n);
    models.push_back(sanmodels::build_consensus_san(cfg));
    studies.emplace_back(models.back().model, models.back().stop_predicate());
    studies.back().set_time_limit(des::Duration::seconds(10));
  }
  core::ShardSpace space;
  for (std::size_t g = 0; g < ns.size(); ++g) space.add_group(256, 42 + g);
  for (auto _ : state) {
    const auto rewards = runner.run_flat(space, [&](const core::ShardSpace::Task& t) {
      return studies[t.group].run_one(des::RandomEngine{t.seed});
    });
    benchmark::DoNotOptimize(rewards.front().size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(space.size()));
}
BENCHMARK(BM_FlatCampaignSan)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The amortisation claim behind the workload engine: one persistent
// cluster streaming 256 isolated instances (10 ms separation, the
// sequencer regime) vs the legacy approach of 256 fresh clusters. Same
// instance count, same isolation; the delta is construction overhead
// (processes, network, RNG substreams, layer stacks).
void BM_WorkloadEnginePersistent(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::WorkloadConfig cfg;
  cfg.n = n;
  cfg.timers = net::TimerModel::ideal();
  cfg.seed = 42;
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kBurst;
  spec.separation_ms = 10.0;
  spec.warmup = 0;
  spec.measured = 256;
  for (auto _ : state) {
    const auto res = core::run_workload(cfg, spec);
    benchmark::DoNotOptimize(res.stats.mean_latency_ms);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_WorkloadEnginePersistent)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_WorkloadEngineFreshClusters(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const des::SeedSplitter seeds{42, "exec"};
  for (auto _ : state) {
    double acc = 0;
    for (std::size_t k = 0; k < 256; ++k) {
      const auto out = core::run_latency_execution(n, net::NetworkParams::defaults(),
                                                   net::TimerModel::ideal(), -1, k,
                                                   seeds.stream_seed(k));
      if (out.latency_ms) acc += *out.latency_ms;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_WorkloadEngineFreshClusters)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

// The open-loop stream at a saturating offered load: the regime the
// load_latency_sweep scenario measures (overlapping instances, queueing).
void BM_WorkloadEngineOpenLoop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::WorkloadConfig cfg;
  cfg.n = n;
  cfg.timers = net::TimerModel::ideal();
  cfg.seed = 42;
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kOpenLoop;
  spec.offered_per_s = 600;
  spec.warmup = 16;
  spec.measured = 240;
  for (auto _ : state) {
    const auto res = core::run_workload(cfg, spec);
    benchmark::DoNotOptimize(res.stats.delivered_per_s);
  }
  state.SetItemsProcessed(state.iterations() * 240);
}
BENCHMARK(BM_WorkloadEngineOpenLoop)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

// Batched consensus at a fixed offered *value* rate past the unbatched
// instance knee (~376 inst/s at n = 5): Arg is the batch size. Larger
// batches divide the instance rate -- and the simulated event count -- by
// the batch, so both delivered values/s and host-side bench throughput
// rise with Arg.
void BM_BatchedConsensus(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  core::WorkloadConfig cfg;
  cfg.n = 5;
  cfg.timers = net::TimerModel::ideal();
  cfg.seed = 42;
  core::WorkloadSpec spec;
  spec.arrivals = core::ArrivalProcess::kOpenLoop;
  spec.offered_per_s = 2000;  // values/s
  spec.warmup = 32;
  spec.measured = 480;
  spec.batch_size = batch;
  spec.batch_linger_ms = 10.0;
  volatile double delivered = 0;  // volatile: the counter read is after the loop
  for (auto _ : state) {
    const auto res = core::run_workload(cfg, spec);
    delivered = res.value_stats.delivered_per_s;
  }
  state.SetItemsProcessed(state.iterations() * 480);  // client values
  state.counters["values_per_s_sim"] = delivered;
}
BENCHMARK(BM_BatchedConsensus)->Arg(1)->Arg(4)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_SanModelBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sanmodels::ConsensusSanConfig cfg;
    cfg.n = n;
    cfg.transport = sanmodels::TransportParams::nominal(n);
    const auto model = sanmodels::build_consensus_san(cfg);
    benchmark::DoNotOptimize(model.model.activity_count());
  }
}
BENCHMARK(BM_SanModelBuild)->Arg(3)->Arg(5);

}  // namespace

BENCHMARK_MAIN();
