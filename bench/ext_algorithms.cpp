// Extension: comparative analysis of consensus algorithms -- the follow-up
// the paper's Section 6 announces ("we will analyze alternative protocols
// and then we will be able to make statements about how good the protocols
// are by comparing the results").
//
// Chandra-Toueg <>S (the paper's algorithm; three communication steps,
// Theta(n) messages per round) against Mostefaoui-Raynal <>S (two steps,
// Theta(n^2) messages). Failure-free, MR's shorter critical path wins;
// under a coordinator crash MR wastes a full all-to-all round on bottoms
// and CT wins by a factor that grows with n.
#include <iostream>

#include "core/config.hpp"
#include "core/extensions.hpp"
#include "core/report.hpp"

int main() {
  using namespace sanperf;
  const auto scale = core::Scale::from_env();
  const auto network = net::NetworkParams::defaults();
  const auto timers = net::TimerModel::ideal();

  core::print_banner(std::cout, "Extension -- Chandra-Toueg vs Mostefaoui-Raynal (scale: " +
                                    scale.name() + ")");

  core::TablePrinter table{std::cout,
                           {{"n", 3},
                            {"scenario", 18},
                            {"CT[ms]", 14},
                            {"MR[ms]", 14},
                            {"MR/CT", 6},
                            {"winner", 7}}};
  table.print_header();

  const struct {
    const char* name;
    int crashed;
  } scenarios[] = {{"no crash", -1}, {"coordinator crash", 0}};

  for (const std::size_t n : scale.ns) {
    for (const auto& sc : scenarios) {
      const auto ct = core::measure_latency_with(core::Algorithm::kChandraToueg, n, network,
                                                 timers, sc.crashed, scale.class1_executions,
                                                 core::kDefaultSeed + 3 * n);
      const auto mr = core::measure_latency_with(core::Algorithm::kMostefaouiRaynal, n, network,
                                                 timers, sc.crashed, scale.class1_executions,
                                                 core::kDefaultSeed + 3 * n);
      const double ct_mean = ct.summary().mean();
      const double mr_mean = mr.summary().mean();
      table.print_row({std::to_string(n), sc.name, core::fmt_ci(ct.summary().mean_ci()),
                       core::fmt_ci(mr.summary().mean_ci()), core::fmt(mr_mean / ct_mean, 2),
                       mr_mean < ct_mean ? "MR" : "CT"});
    }
    table.print_rule();
  }

  std::cout << "Shape: failure-free, MR's two communication steps beat CT's three at\n"
               "every n (its Theta(n^2) aux messages overlap in the pipeline). Under\n"
               "a coordinator crash the picture inverts and widens with n: MR burns a\n"
               "full all-to-all round on bottoms before recovering, while CT's\n"
               "entry nacks to the dead coordinator are nearly free. Neither\n"
               "algorithm dominates -- the workload decides, which is precisely the\n"
               "kind of statement the paper's methodology is built to support.\n";
  return 0;
}
