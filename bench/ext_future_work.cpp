// Extensions implementing the paper's declared future work (Section 6):
//   * throughput of a sequence of consensus executions (back-to-back
//     starts; Section 2.3 sketches the scenario);
//   * failure-detector detection time T_D, the third Chen et al. metric
//     (Section 3.4 defines it; the paper only measures T_MR and T_M).
#include <iostream>

#include "core/config.hpp"
#include "core/extensions.hpp"
#include "core/measurement.hpp"
#include "core/report.hpp"
#include "stats/ecdf.hpp"

int main() {
  using namespace sanperf;
  const auto scale = core::Scale::from_env();
  const auto network = net::NetworkParams::defaults();

  core::print_banner(std::cout,
                     "Extension -- consensus throughput (scale: " + scale.name() + ")");
  core::TablePrinter tput{std::cout,
                          {{"n", 3},
                           {"isolated lat[ms]", 17},
                           {"latency b2b[ms]", 16},
                           {"throughput[/s]", 14},
                           {"vs isolated bound", 17}}};
  tput.print_header();
  for (const std::size_t n : scale.ns) {
    const auto isolated = core::measure_latency(n, network, net::TimerModel::ideal(), -1,
                                                scale.class1_executions / 2,
                                                core::kDefaultSeed + 5 * n);
    const auto res = core::measure_throughput(n, network, net::TimerModel::ideal(),
                                              scale.class1_executions, core::kDefaultSeed + n);
    // Isolated executions of mean latency L bound back-to-back throughput
    // by 1000/L per second; interference can only reduce that.
    const double iso = isolated.summary().mean();
    const double bound = iso > 0 ? 1000.0 / iso : 0;
    tput.print_row({std::to_string(n), core::fmt(iso), core::fmt_ci(res.latency_ci),
                    core::fmt(res.per_second, 0),
                    core::fmt(bound > 0 ? 100.0 * res.per_second / bound : 0, 1) + "%"});
  }
  std::cout << "Reading: back-to-back executions interfere -- the decision broadcast\n"
               "and round-2 estimates of execution k contend with the estimates of\n"
               "execution k+1 on the hub -- so per-execution latency roughly doubles\n"
               "and throughput lands well below the isolated-latency bound.\n";

  core::print_banner(std::cout, "Extension -- failure-detector detection time T_D");
  core::TablePrinter td{std::cout,
                        {{"T[ms]", 6},
                         {"Th[ms]", 7},
                         {"T_D mean[ms]", 13},
                         {"T_D p95[ms]", 12},
                         {"bound Th+T[ms]", 14}}};
  td.print_header();
  for (const double timeout : {10.0, 20.0, 40.0, 100.0}) {
    const auto res = core::measure_detection_time(5, network, net::TimerModel::defaults(),
                                                  timeout, scale.class3_runs * 10,
                                                  core::kDefaultSeed + 77);
    if (res.samples_ms.empty()) continue;
    const stats::Ecdf ecdf{res.samples_ms};
    td.print_row({core::fmt(timeout, 0), core::fmt(0.7 * timeout, 1),
                  core::fmt(res.summary.mean(), 1), core::fmt(ecdf.quantile(0.95), 1),
                  core::fmt(0.7 * timeout + timeout, 1)});
  }
  std::cout << "Reading: detection takes roughly one timeout after the last heartbeat\n"
               "(T_D <~ Th + T), stretched by the 10 ms timer quantisation at small T\n"
               "and by scheduler stalls in the tail.\n";
  return 0;
}
