// Fig 6: cumulative distribution of the end-to-end delay of unicast and
// broadcast messages, averaged over the destinations, plus the bi-modal
// uniform fits used to parameterise the SAN network model.
//
// Paper reference (Section 5.1): unicast fitted as U[0.10,0.13] w.p. 0.8
// and U[0.145,0.35] w.p. 0.2 (ms).
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"

int main() {
  using namespace sanperf;
  const auto scale = core::Scale::from_env();
  core::print_banner(std::cout, "Fig 6 -- end-to-end delay CDFs (scale: " + scale.name() + ")");

  const auto ctx = core::make_context(scale);
  const auto fig6 = core::run_fig6(ctx);

  std::vector<std::pair<std::string, stats::Ecdf>> curves;
  curves.emplace_back("unicast", stats::Ecdf{fig6.unicast_ms});
  for (const auto& [n, delays] : fig6.broadcast_ms) {
    curves.emplace_back("bcast-to-" + std::to_string(n), stats::Ecdf{delays});
  }
  core::print_cdfs(std::cout, curves, 24, "delay[ms]");

  std::cout << "\nBi-modal uniform fits (ms):\n";
  std::cout << "  unicast      : " << fig6.unicast_fit.to_string()
            << "   mean=" << core::fmt(fig6.unicast_fit.mean()) << "\n";
  for (const auto& [n, fit] : fig6.broadcast_fits) {
    std::cout << "  broadcast-to-" << n << ": " << fit.to_string()
              << "   mean=" << core::fmt(fit.mean()) << "\n";
  }
  std::cout << "\nPaper reports unicast U[0.10,0.13]@0.80 + U[0.145,0.35]@0.20 "
               "(mean 0.1415 ms); transmission time ~0.18 ms (Section 4).\n";
  return 0;
}
