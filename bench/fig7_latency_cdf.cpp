// Fig 7(a): measured latency CDFs for n = 3..11, run class 1 (no failures,
// no suspicions), and the Section 5.2 latency means.
// Fig 7(b): simulated latency CDFs for n = 5 with t_send swept over
// {0.005..0.035} ms, against the measured CDF; selects t_send by KS
// distance (the paper picks 0.025 ms visually).
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"

int main() {
  using namespace sanperf;
  const auto scale = core::Scale::from_env();
  const auto ctx = core::make_context(scale);

  core::print_banner(std::cout,
                     "Fig 7a -- latency CDF, measurements, class 1 (scale: " + scale.name() + ")");
  const auto rows = core::run_fig7a(ctx);

  std::vector<std::pair<std::string, stats::Ecdf>> curves;
  for (const auto& row : rows) {
    curves.emplace_back("n=" + std::to_string(row.n), stats::Ecdf{row.latencies_ms});
  }
  core::print_cdfs(std::cout, curves, 24, "lat[ms]");

  // Paper Section 5.2 means (measurements): 1.06, 1.43, 2.00, 2.62, 3.27 ms.
  const std::vector<std::pair<std::size_t, double>> paper_means = {
      {3, 1.06}, {5, 1.43}, {7, 2.00}, {9, 2.62}, {11, 3.27}};
  std::cout << "\nMean latency (ms), paper vs this reproduction:\n";
  core::TablePrinter table{std::cout,
                           {{"n", 4}, {"paper meas", 12}, {"ours meas", 16}, {"undecided", 10}}};
  table.print_header();
  for (const auto& row : rows) {
    double paper = std::nan("");
    for (const auto& [n, v] : paper_means) {
      if (n == row.n) paper = v;
    }
    table.print_row({std::to_string(row.n), core::fmt(paper, 2), core::fmt_ci(row.mean),
                     std::to_string(row.undecided)});
  }

  core::print_banner(std::cout, "Fig 7b -- simulation vs measurement, n = 5, t_send sweep");
  const auto fig7b = core::run_fig7b(ctx);
  std::vector<std::pair<std::string, stats::Ecdf>> curves_b;
  curves_b.emplace_back("measured", stats::Ecdf{fig7b.measured_ms});
  for (const auto& [t_send, sims] : fig7b.sim_ms) {
    curves_b.emplace_back("ts=" + core::fmt(t_send, 3), stats::Ecdf{sims});
  }
  core::print_cdfs(std::cout, curves_b, 20, "lat[ms]");

  std::cout << "\nKS distance to the measured CDF per t_send candidate:\n";
  core::TablePrinter sweep_table{std::cout, {{"t_send[ms]", 11}, {"KS", 8}, {"sim mean", 10}}};
  sweep_table.print_header();
  for (const auto& cand : fig7b.sweep.candidates) {
    sweep_table.print_row(
        {core::fmt(cand.t_send_ms, 3), core::fmt(cand.ks_distance), core::fmt(cand.sim_mean_ms)});
  }
  std::cout << "\nSelected t_send = " << core::fmt(fig7b.sweep.best_t_send_ms, 3)
            << " ms (paper selects 0.025 ms; the emulator's ground truth is 0.025 ms).\n";
  return 0;
}
