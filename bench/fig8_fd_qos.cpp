// Fig 8: failure-detector quality-of-service metrics vs the timeout T
// (heartbeat period Th = 0.7 T), measured during class-3 campaigns:
//   (a) mistake recurrence time T_MR -- increasing in T, then rising very
//       fast beyond T ~ 30 ms (paper: > 190 ms at T = 40, > 5000 ms at 100);
//   (b) mistake duration T_M -- irregular but bounded (< 12 ms).
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"

int main() {
  using namespace sanperf;
  const auto scale = core::Scale::from_env();
  const auto ctx = core::make_context(scale);

  core::print_banner(std::cout, "Fig 8 -- FD QoS vs timeout T (scale: " + scale.name() + ")");
  const auto points = core::run_class3_measurements(ctx, ctx.scale.ns);

  core::TablePrinter table{std::cout,
                           {{"n", 3},
                            {"T[ms]", 7},
                            {"T_MR[ms]", 18},
                            {"T_M[ms]", 16},
                            {"undecided", 9}}};
  table.print_header();
  std::size_t last_n = 0;
  for (const auto& pt : points) {
    if (pt.n != last_n && last_n != 0) table.print_rule();
    last_n = pt.n;
    const bool quiet = pt.meas.pooled_qos.pairs_used == 0;
    table.print_row({std::to_string(pt.n), core::fmt(pt.timeout_ms, 0),
                     quiet ? "no mistakes" : core::fmt_ci(pt.meas.t_mr_ms, 2),
                     quiet ? "-" : core::fmt_ci(pt.meas.t_m_ms, 2),
                     std::to_string(pt.meas.undecided)});
  }

  std::cout << "\nShape checks (paper Fig 8):\n";
  for (const std::size_t n : ctx.scale.ns) {
    double tmr_low = 0, tmr_high = 0, tm_max = 0;
    bool blowup = true;
    for (const auto& pt : points) {
      if (pt.n != n) continue;
      if (pt.meas.pooled_qos.pairs_used == 0) continue;
      if (pt.timeout_ms <= 2.01) tmr_low = pt.meas.t_mr_ms.mean;
      if (pt.timeout_ms >= 19.9 && pt.timeout_ms <= 30.01) tmr_high = pt.meas.t_mr_ms.mean;
      if (pt.timeout_ms <= 30.01 && pt.meas.t_m_ms.mean > tm_max) tm_max = pt.meas.t_m_ms.mean;
      if (pt.timeout_ms >= 39.9 && pt.meas.t_mr_ms.mean < 190.0) blowup = false;
    }
    std::cout << "  n=" << n << ": T_MR increasing (" << core::fmt(tmr_low, 1) << " -> "
              << core::fmt(tmr_high, 1) << "): " << (tmr_high > tmr_low ? "yes" : "NO")
              << "; T_MR > 190 ms for T >= 40: " << (blowup ? "yes" : "NO")
              << "; max T_M (T<=30) = " << core::fmt(tm_max, 1) << " ms (paper: < 12)\n";
  }
  return 0;
}
