// Fig 9: consensus latency vs the failure-detection timeout T, class 3
// (no crashes, wrong suspicions).
//   (a) measurements for n = 3..11: decreasing in T, starting very high,
//       with a peak near T = 10 ms (Linux scheduler interference);
//   (b) measurements vs SAN simulation (deterministic and exponential FD
//       sojourns) for n = 3, 5: the model matches at large T (good QoS) and
//       diverges when wrong suspicions are frequent, because the model
//       assumes independent failure detectors.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"

int main() {
  using namespace sanperf;
  const auto scale = core::Scale::from_env();
  const auto ctx = core::make_context(scale);

  core::print_banner(std::cout,
                     "Fig 9a -- latency vs timeout, measurements (scale: " + scale.name() + ")");
  const auto points = core::run_class3_measurements(ctx, ctx.scale.ns);

  core::TablePrinter table{std::cout,
                           {{"n", 3}, {"T[ms]", 7}, {"latency[ms]", 18}, {"undecided", 9}}};
  table.print_header();
  std::size_t last_n = 0;
  for (const auto& pt : points) {
    if (pt.n != last_n && last_n != 0) table.print_rule();
    last_n = pt.n;
    table.print_row({std::to_string(pt.n), core::fmt(pt.timeout_ms, 0),
                     core::fmt_ci(pt.meas.latency_ms, 2), std::to_string(pt.meas.undecided)});
  }

  std::cout << "\nShape checks (paper Fig 9a):\n";
  for (const std::size_t n : ctx.scale.ns) {
    double lat_first = -1, lat_last = -1;
    for (const auto& pt : points) {
      if (pt.n != n) continue;
      if (lat_first < 0) lat_first = pt.meas.latency_ms.mean;
      lat_last = pt.meas.latency_ms.mean;
    }
    std::cout << "  n=" << n << ": latency decreases from " << core::fmt(lat_first, 1) << " to "
              << core::fmt(lat_last, 2) << " ms: " << (lat_first > lat_last * 2 ? "yes" : "NO")
              << "\n";
  }

  core::print_banner(std::cout, "Fig 9b -- measurements vs SAN simulation, n = 3, 5");
  std::vector<core::Class3Point> small_n;
  for (const auto& pt : points) {
    if (ctx.broadcast_fits.contains(pt.n)) small_n.push_back(pt);
  }
  const auto fig9b = core::run_fig9b(ctx, small_n);

  core::TablePrinter table_b{std::cout,
                             {{"n", 3},
                              {"T[ms]", 7},
                              {"meas[ms]", 10},
                              {"sim det[ms]", 12},
                              {"sim exp[ms]", 12},
                              {"T_MR[ms]", 10},
                              {"T_M[ms]", 9}}};
  table_b.print_header();
  last_n = 0;
  for (const auto& row : fig9b) {
    if (row.n != last_n && last_n != 0) table_b.print_rule();
    last_n = row.n;
    table_b.print_row({std::to_string(row.n), core::fmt(row.timeout_ms, 0),
                       core::fmt(row.meas_ms, 2), core::fmt(row.sim_det_ms, 2),
                       core::fmt(row.sim_exp_ms, 2), core::fmt(row.qos_t_mr_ms, 1),
                       core::fmt(row.qos_t_m_ms, 1)});
  }

  std::cout << "\nShape checks (paper Fig 9b): the SAN model matches at large T and\n"
               "diverges at small T (independent-FD assumption).\n";
  for (const std::size_t n : ctx.scale.sim_ns) {
    double small_t_ratio = -1, large_t_ratio = -1;
    for (const auto& row : fig9b) {
      if (row.n != n || row.meas_ms <= 0) continue;
      const double ratio = row.sim_det_ms / row.meas_ms;
      if (small_t_ratio < 0) small_t_ratio = ratio;  // first (smallest) T
      large_t_ratio = ratio;                         // last (largest) T
    }
    std::cout << "  n=" << n << ": sim/meas at smallest T = " << core::fmt(small_t_ratio, 2)
              << ", at largest T = " << core::fmt(large_t_ratio, 2)
              << " (expect the large-T ratio closer to 1)\n";
  }
  return 0;
}
