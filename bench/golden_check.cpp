// Golden-output check of the paper tables, grown from the CI smoke driver.
//
// Runs the flattened Table 1 and Fig 7a campaigns at the configured scale
// (SANPERF_SCALE, quick in CI) and verifies three things:
//   1. determinism -- the flattened drivers produce bit-identical output at
//      1 and 4 threads (the run_flat contract, end to end);
//   2. golden values -- at SANPERF_SCALE=quick every measured/simulated
//      mean lies within 10% of the recorded output of this codebase, so a
//      regression that skews the reproduction fails CI even when all unit
//      tests pass (the emulated testbed is ~0.5-0.7x the paper's absolute
//      latencies, so the paper values themselves are cross-checked through
//      the model-vs-measurement agreement instead);
//   3. agreement -- simulation tracks measurement within 25% for the
//      calibrated n = 3, 5 (the paper's headline Section 5.2 validation);
//   4. shape -- the qualitative Section 5.3 findings hold (coordinator
//      crash slower; latency grows with n).
// Exit code 0 on success, 1 with a report on any violation.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "core/experiments.hpp"
#include "core/replication.hpp"
#include "core/report.hpp"

namespace {

using namespace sanperf;

int failures = 0;

void check(bool ok, const std::string& what) {
  std::cout << (ok ? "  ok      " : "  FAILED  ") << what << "\n";
  if (!ok) ++failures;
}

/// Golden mean latencies (ms) recorded from this codebase at
/// SANPERF_SCALE=quick with the default seed. The 10% band absorbs
/// standard-library variation in the random distributions while still
/// catching structural regressions (wrong model, broken seeding, skewed
/// calibration). Regenerate by running this binary and updating the table
/// when a deliberate change shifts the outputs.
struct GoldenRow {
  std::size_t n;
  double meas_no_crash, meas_coord, meas_part;
  double sim_no_crash, sim_coord, sim_part;  ///< 0 where not simulated
};
constexpr GoldenRow kQuickGolden[] = {
    {3, 0.520, 0.648, 0.533, 0.549, 0.820, 0.491},
    {5, 0.892, 1.141, 0.892, 0.901, 1.508, 0.862},
    {7, 1.347, 1.785, 1.403, 0, 0, 0},
};
constexpr double kQuickGoldenFig7a[] = {0.531, 0.893, 1.333};  // n = 3, 5, 7

void check_golden(double ours, double golden, const std::string& what) {
  std::ostringstream os;
  os << what << ": ours " << core::fmt(ours) << " ms vs golden " << core::fmt(golden) << " ms";
  check(ours > golden * 0.90 && ours < golden * 1.10, os.str());
}

}  // namespace

int main() {
  const auto scale = core::Scale::from_env();
  core::print_banner(std::cout,
                     "Golden-output check -- paper tables (scale: " + scale.name() + ")");

  const core::ReplicationRunner one{1};
  const core::ReplicationRunner four{4};
  auto ctx = core::make_context(scale);

  // --- 1. Determinism across thread counts ---------------------------------
  std::cout << "Determinism (1 vs 4 threads, flattened fan-out):\n";
  ctx.runner = &one;
  const auto fig7a_1 = core::run_fig7a(ctx);
  const auto table1_1 = core::run_table1(ctx);
  ctx.runner = &four;
  const auto fig7a_4 = core::run_fig7a(ctx);
  const auto table1_4 = core::run_table1(ctx);

  bool fig7a_same = fig7a_1.size() == fig7a_4.size();
  for (std::size_t i = 0; fig7a_same && i < fig7a_1.size(); ++i) {
    fig7a_same = fig7a_1[i].latencies_ms == fig7a_4[i].latencies_ms &&
                 fig7a_1[i].mean.mean == fig7a_4[i].mean.mean &&
                 fig7a_1[i].undecided == fig7a_4[i].undecided;
  }
  check(fig7a_same, "run_fig7a bit-identical");

  bool table1_same = table1_1.size() == table1_4.size();
  for (std::size_t i = 0; table1_same && i < table1_1.size(); ++i) {
    table1_same = table1_1[i].meas_no_crash.mean == table1_4[i].meas_no_crash.mean &&
                  table1_1[i].meas_coord_crash.mean == table1_4[i].meas_coord_crash.mean &&
                  table1_1[i].meas_part_crash.mean == table1_4[i].meas_part_crash.mean &&
                  table1_1[i].sim_no_crash == table1_4[i].sim_no_crash &&
                  table1_1[i].sim_coord_crash == table1_4[i].sim_coord_crash &&
                  table1_1[i].sim_part_crash == table1_4[i].sim_part_crash;
  }
  check(table1_same, "run_table1 bit-identical");

  // --- 2. Golden values (quick scale only) ----------------------------------
  if (scale.name() == "quick") {
    std::cout << "Golden values (recorded quick-scale output):\n";
    for (const auto& row : table1_1) {
      const GoldenRow* golden = nullptr;
      for (const auto& g : kQuickGolden) {
        if (g.n == row.n) golden = &g;
      }
      if (golden == nullptr) continue;
      const std::string n = "n=" + std::to_string(row.n);
      check_golden(row.meas_no_crash.mean, golden->meas_no_crash, n + " meas no-crash");
      check_golden(row.meas_coord_crash.mean, golden->meas_coord, n + " meas coord-crash");
      check_golden(row.meas_part_crash.mean, golden->meas_part, n + " meas part-crash");
      if (row.sim_no_crash && golden->sim_no_crash > 0) {
        check_golden(*row.sim_no_crash, golden->sim_no_crash, n + " sim no-crash");
        check_golden(*row.sim_coord_crash, golden->sim_coord, n + " sim coord-crash");
        check_golden(*row.sim_part_crash, golden->sim_part, n + " sim part-crash");
      }
    }
    for (std::size_t i = 0; i < fig7a_1.size() && i < std::size(kQuickGoldenFig7a); ++i) {
      check_golden(fig7a_1[i].mean.mean, kQuickGoldenFig7a[i],
                   "fig7a n=" + std::to_string(fig7a_1[i].n) + " mean");
    }
  } else {
    std::cout << "Golden values: skipped (recorded for quick scale only)\n";
  }

  // --- 3. Model-vs-measurement agreement ------------------------------------
  std::cout << "Agreement (paper Section 5.2, calibrated n):\n";
  for (const auto& row : table1_1) {
    if (!row.sim_no_crash) continue;
    const double ratio = *row.sim_no_crash / row.meas_no_crash.mean;
    std::ostringstream os;
    os << "n=" << row.n << " sim/meas no-crash ratio " << core::fmt(ratio);
    check(ratio > 0.75 && ratio < 1.25, os.str());
  }

  // --- 4. Qualitative shape -------------------------------------------------
  std::cout << "Shape (paper Section 5.3):\n";
  for (std::size_t i = 1; i < fig7a_1.size(); ++i) {
    check(fig7a_1[i].mean.mean > fig7a_1[i - 1].mean.mean,
          "fig7a latency grows from n=" + std::to_string(fig7a_1[i - 1].n) + " to n=" +
              std::to_string(fig7a_1[i].n));
  }
  for (const auto& row : table1_1) {
    check(row.meas_coord_crash.mean > row.meas_no_crash.mean,
          "n=" + std::to_string(row.n) + " coordinator crash slower (measured)");
  }

  // --- 5. Class-3 shape (Fig 8 / Fig 9a headline trends, n = 3) ------------
  // The per-figure drivers used to print these as yes/NO lines; here they
  // gate CI: a model regression that flattens the T_MR blow-up or inverts
  // the latency-vs-timeout trend must fail even when unit tests pass.
  std::cout << "Class-3 shape (paper Fig 8 / Fig 9a, n=3):\n";
  ctx.runner = &four;  // results are thread-count-invariant; take the speed
  const auto class3 = core::run_class3_measurements(ctx, {3});
  double lat_first = -1, lat_last = -1;
  double tmr_first = -1, tmr_last = -1;
  bool blowup = true;
  for (const auto& pt : class3) {
    if (lat_first < 0) lat_first = pt.meas.latency_ms.mean;
    lat_last = pt.meas.latency_ms.mean;
    const bool mistakes = pt.meas.pooled_qos.pairs_used > 0;
    if (mistakes) {
      if (tmr_first < 0) tmr_first = pt.meas.t_mr_ms.mean;
      tmr_last = pt.meas.t_mr_ms.mean;
    }
    // Past T ~ 40 ms the detector is either mistake-free or its mistakes
    // recur very rarely (paper: T_MR > 190 ms at T = 40).
    if (pt.timeout_ms >= 39.9 && mistakes && pt.meas.t_mr_ms.mean < 190.0) blowup = false;
  }
  {
    std::ostringstream os;
    os << "fig9a latency decreases in T (" << core::fmt(lat_first, 2) << " -> "
       << core::fmt(lat_last, 2) << " ms)";
    check(lat_first > 2 * lat_last, os.str());
  }
  {
    std::ostringstream os;
    os << "fig8 T_MR increases in T (" << core::fmt(tmr_first, 1) << " -> "
       << core::fmt(tmr_last, 1) << " ms)";
    check(tmr_first > 0 && tmr_last > tmr_first, os.str());
  }
  check(blowup, "fig8 T_MR blows up (or no mistakes) for T >= 40");

  if (failures > 0) {
    std::cout << "\n" << failures << " golden check(s) FAILED\n";
    return 1;
  }
  std::cout << "\nall golden checks passed\n";
  return 0;
}
