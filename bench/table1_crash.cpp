// Table 1: latency (ms) for the crash scenarios of Section 5.3 --
// no crash, coordinator initially crashed, participant initially crashed --
// measurements for n = 3..11 and SAN simulation for n = 3, 5.
//
// Qualitative checks reproduced from the paper:
//   * a coordinator crash always increases latency (two rounds);
//   * a participant crash decreases latency for n >= 5 (less contention);
//   * for n = 3 the MEASUREMENTS show an increase (unicast ordering: the
//     proposal goes to the dead process first) while the SIMULATION shows a
//     decrease (broadcast modelled as one message) -- a model limitation.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"

int main() {
  using namespace sanperf;
  const auto scale = core::Scale::from_env();
  const auto ctx = core::make_context(scale);

  core::print_banner(std::cout, "Table 1 -- crash scenarios (scale: " + scale.name() + ")");
  const auto rows = core::run_table1(ctx);

  core::TablePrinter table{std::cout,
                           {{"n", 3},
                            {"scenario", 18},
                            {"paper meas", 11},
                            {"ours meas", 16},
                            {"paper sim", 10},
                            {"ours sim", 9}}};
  table.print_header();
  for (const auto& row : rows) {
    const core::PaperTable1Row* paper = nullptr;
    for (const auto& p : core::paper_table1()) {
      if (p.n == row.n) paper = &p;
    }
    auto cell = [](const std::optional<double>& v) {
      return v ? core::fmt(*v) : std::string{"-"};
    };
    table.print_row({std::to_string(row.n), "no crash",
                     paper ? core::fmt(paper->meas_no_crash) : "-", core::fmt_ci(row.meas_no_crash),
                     paper ? core::fmt(paper->sim_no_crash) : "-", cell(row.sim_no_crash)});
    table.print_row({"", "coordinator crash", paper ? core::fmt(paper->meas_coord) : "-",
                     core::fmt_ci(row.meas_coord_crash), paper ? core::fmt(paper->sim_coord) : "-",
                     cell(row.sim_coord_crash)});
    table.print_row({"", "participant crash", paper ? core::fmt(paper->meas_part) : "-",
                     core::fmt_ci(row.meas_part_crash), paper ? core::fmt(paper->sim_part) : "-",
                     cell(row.sim_part_crash)});
    table.print_rule();
  }

  // Shape checks.
  std::cout << "Shape checks (paper Section 5.3):\n";
  for (const auto& row : rows) {
    const bool coord_slower = row.meas_coord_crash.mean > row.meas_no_crash.mean;
    std::cout << "  n=" << row.n << ": coordinator crash slower in measurements: "
              << (coord_slower ? "yes" : "NO") << "\n";
    if (row.n == 3) {
      const bool meas_anomaly = row.meas_part_crash.mean > row.meas_no_crash.mean;
      std::cout << "  n=3: participant-crash anomaly in measurements (increase): "
                << (meas_anomaly ? "yes" : "NO") << "\n";
      if (row.sim_part_crash && row.sim_no_crash) {
        const bool sim_decrease = *row.sim_part_crash < *row.sim_no_crash;
        std::cout << "  n=3: simulation misses the anomaly (decrease): "
                  << (sim_decrease ? "yes" : "NO") << "\n";
      }
    } else if (row.n >= 5) {
      const bool part_faster = row.meas_part_crash.mean < row.meas_no_crash.mean;
      std::cout << "  n=" << row.n << ": participant crash faster in measurements: "
                << (part_faster ? "yes" : "NO (see note)") << "\n";
    }
  }
  std::cout << "\nNote: the paper measures a clear decrease for n >= 5. Our emulator\n"
               "reproduces it only partially (parity at n = 5, a small increase for\n"
               "larger n): the coordinator's unicast to the dead process first -- the\n"
               "very mechanism the paper uses to explain the n = 3 increase -- costs\n"
               "one frame slot on the critical path, and on this testbed that offsets\n"
               "the contention saved by the crashed process's absent traffic.\n"
               "Crashing the LAST participant in the broadcast order instead yields\n"
               "the paper's -5..-9%. The SAN simulation, whose broadcast is a single\n"
               "message (no per-destination order), shows the paper's decrease.\n";
  return 0;
}
