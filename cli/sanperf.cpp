// sanperf -- the unified experiment CLI over the declarative campaign API.
//
//   sanperf list                       enumerate registered scenarios + axes
//   sanperf run <scenario> [options]   run one scenario and render the table
//   sanperf diff <a.csv> <b.csv>       tolerance-aware comparison (CI goldens)
//
// Every paper figure/table, ablation and extension is a registered
// ScenarioSpec; this binary subsumes the per-figure driver binaries the
// repository used to carry. Grid enumeration goes through ShardSpace, so
// every scenario is parallel (--threads / SANPERF_THREADS) with
// bit-identical results at any thread count.
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "faults/plan.hpp"
#include "faults/synth.hpp"
#include "stats/ecdf.hpp"

namespace {

using namespace sanperf;

int usage(std::ostream& os, int code) {
  os << "usage:\n"
        "  sanperf list [--scale quick|default|full]\n"
        "  sanperf run <scenario> [--set axis=v1[,v2...]]... [--threads N]\n"
        "              [--scale quick|default|full] [--seed S]\n"
        "              [--format text|csv|json] [--out FILE]\n"
        "              [--fault-plan plan.json]\n"
        "  sanperf run <scenario> --list-axes [--scale ...]\n"
        "  sanperf run --all|--match <glob> --out-dir DIR [run options]\n"
        "  sanperf knee <scenario> [--axis offered_per_s] [--target RATIO]\n"
        "              [--iters N] [run options]\n"
        "  sanperf plan [--scope host|rack] [--domains N] [--shape K]\n"
        "              [--scale-ms MS] [--horizon-ms MS] [--downtime-ms MS]\n"
        "              [--seed S] [--out FILE] [--spec-out FILE]\n"
        "  sanperf diff <expected.csv> <actual.csv> [--tol REL]\n"
        "              [--ignore-cols a,b,c]\n"
        "  sanperf help\n"
        "\n"
        "Scenario axes are restricted with --set (e.g. --set n=3,5 --set\n"
        "timeout_ms=10); restricted runs reproduce the matching subset of the\n"
        "full grid bit for bit. --set names an axis the scenario does not\n"
        "define -> error (--list-axes prints the scenario's axes and their\n"
        "domains). --fault-plan injects the JSON fault plan into fault-aware\n"
        "scenarios in place of their axis-derived plans. --all / --match\n"
        "batch every (matching) registered scenario, writing one file per\n"
        "scenario into --out-dir (--set applies where the axis exists; an\n"
        "axis unknown to every matched scenario is an error). knee\n"
        "binary-searches the scenario's load axis for the saturation knee:\n"
        "the highest load whose delivered_per_s still covers --target\n"
        "(default 0.9) of the offered load on every grid row. plan\n"
        "synthesizes a FaultPlan JSON from a Weibull fault-rate spec\n"
        "(deterministic in --seed; feed the file back via --fault-plan).\n"
        "--downtime-ms inf makes each domain's first crash permanent.\n"
        "SANPERF_SCALE / SANPERF_THREADS are honoured when flags are absent.\n";
  return code;
}

/// Minimal glob: `*` any run, `?` any one char, everything else literal.
bool glob_match(std::string_view pattern, std::string_view text) {
  if (pattern.empty()) return text.empty();
  if (pattern.front() == '*') {
    for (std::size_t skip = 0; skip <= text.size(); ++skip) {
      if (glob_match(pattern.substr(1), text.substr(skip))) return true;
    }
    return false;
  }
  if (text.empty()) return false;
  if (pattern.front() != '?' && pattern.front() != text.front()) return false;
  return glob_match(pattern.substr(1), text.substr(1));
}

/// The scenario's axis named `name`, or null. Axes are scale-dependent in
/// their domains but not in their names, so any scale works for lookups.
const core::ParamAxis* find_axis(const std::vector<core::ParamAxis>& axes,
                                 std::string_view name) {
  for (const auto& axis : axes) {
    if (axis.name() == name) return &axis;
  }
  return nullptr;
}

/// Rejects a --set override naming an axis `spec` does not define: a typo
/// silently running the full grid is worse than an error.
void require_known_axes(const core::ScenarioSpec& spec, const core::RunOptions& options) {
  const auto axes = spec.axes(options.scale);
  for (const auto& [name, csv] : options.axis_overrides) {
    if (find_axis(axes, name) != nullptr) continue;
    std::string known;
    for (const auto& axis : axes) known += (known.empty() ? "" : ", ") + axis.name();
    throw std::invalid_argument{"scenario '" + spec.name + "' has no axis '" + name +
                                "' (axes: " + known + "); see sanperf run " + spec.name +
                                " --list-axes"};
  }
}

core::RunOptions with_known_axes(const core::ScenarioSpec& spec, const core::RunOptions& base) {
  // Batch runs share one --set list across scenarios with different axes:
  // apply each override only where the axis exists.
  core::RunOptions options = base;
  options.axis_overrides.clear();
  const auto axes = spec.axes(base.scale);
  for (const auto& [name, csv] : base.axis_overrides) {
    for (const auto& axis : axes) {
      if (axis.name() == name) options.axis_overrides.emplace(name, csv);
    }
  }
  return options;
}

core::Scale parse_scale(const std::string& name) {
  if (name == "quick") return core::Scale::quick();
  if (name == "default") return core::Scale::defaults();
  if (name == "full") return core::Scale::full();
  throw std::invalid_argument{"unknown scale '" + name + "' (quick|default|full)"};
}

std::string axis_domain(const core::ParamAxis& axis) {
  std::string out;
  for (const auto& v : axis.values()) {
    out += (out.empty() ? "" : ",") + core::to_string(v);
  }
  return out;
}

int cmd_list(const core::Scale& scale) {
  const auto& registry = core::CampaignRegistry::global();
  core::print_banner(std::cout, "Registered scenarios (scale: " + scale.name() + ")");
  for (const auto& spec : registry.specs()) {
    std::cout << spec.name << "\n    " << spec.description << "\n";
    for (const auto& axis : spec.axes(scale)) {
      std::cout << "    --set " << axis.name() << "=" << axis_domain(axis) << "\n";
    }
    if (spec.needs_calibration) std::cout << "    (runs the Fig 6 calibration pass first)\n";
  }
  std::cout << "\n" << registry.specs().size()
            << " scenarios; run one with: sanperf run <name> [--set axis=value]\n";
  return 0;
}

/// Renders the table as text: aligned table, CDF curves for sample
/// columns, then the spec's paper-shape notes.
void render_text(std::ostream& os, const core::ScenarioSpec& spec,
                 const core::ResultTable& table, const core::Scale& scale) {
  core::print_banner(os, spec.name + " -- " + spec.description + " (scale: " + scale.name() +
                             ")");
  table.print(os);
  for (std::size_t c = 0; c < table.columns().size(); ++c) {
    if (table.columns()[c].type != core::ResultTable::ColumnType::kSample) continue;
    // Label each curve by the row's axis-like cells (ints/reals/strings).
    std::vector<std::pair<std::string, stats::Ecdf>> curves;
    for (std::size_t r = 0; r < table.row_count(); ++r) {
      const auto* sample = std::get_if<core::SampleRef>(&table.cell(r, c));
      if (sample == nullptr || sample->empty()) continue;
      // The first couple of scalar cells (n, timeout, kind, ...) identify
      // the row; the rest are results, not coordinates.
      std::string label;
      std::size_t parts = 0;
      for (std::size_t k = 0; k < table.columns().size() && parts < 2; ++k) {
        const auto& cell = table.cell(r, k);
        std::string part;
        if (const auto* i = std::get_if<std::int64_t>(&cell)) {
          part = table.columns()[k].name + "=" + std::to_string(*i);
        } else if (const auto* d = std::get_if<double>(&cell)) {
          part = table.columns()[k].name + "=" + core::fmt(*d);
        } else if (const auto* s = std::get_if<std::string>(&cell)) {
          part = *s;
        }
        if (part.empty()) continue;
        label += (label.empty() ? "" : " ") + part;
        ++parts;
      }
      curves.emplace_back(label.empty() ? "row " + std::to_string(r) : label,
                          stats::Ecdf{sample->values()});
      if (curves.size() == 10) break;  // readability cap for wide grids
    }
    if (!curves.empty()) {
      os << "\nCDF of " << table.columns()[c].name << ":\n";
      core::print_cdfs(os, curves, 20, table.columns()[c].name);
    }
  }
  if (!spec.notes.empty()) os << "\n" << spec.notes << "\n";
}

/// Renders `table` in `format` ("text" needs the spec + scale for notes).
std::string render(const core::ScenarioSpec& spec, const core::ResultTable& table,
                   const core::Scale& scale, const std::string& format) {
  std::ostringstream rendered;
  if (format == "csv") {
    table.write_csv(rendered);
  } else if (format == "json") {
    table.write_json(rendered);
    rendered << "\n";
  } else {
    render_text(rendered, spec, table, scale);
  }
  return rendered.str();
}

int cmd_run(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "sanperf run: missing scenario name\n";
    return usage(std::cerr, 2);
  }
  std::string name;
  std::size_t first_flag = 0;
  if (args[0].rfind("--", 0) != 0) {
    name = args[0];
    first_flag = 1;
  }
  core::RunOptions options;
  std::string format;
  std::optional<std::string> out_path;
  std::optional<std::string> out_dir;
  std::optional<std::string> match;
  bool list_axes = false;
  std::unique_ptr<core::ReplicationRunner> runner;

  for (std::size_t i = first_flag; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument{"missing value after " + arg};
      }
      return args[++i];
    };
    if (arg == "--set") {
      const std::string& kv = next();
      const auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::invalid_argument{"--set expects axis=value[,value...], got '" + kv + "'"};
      }
      options.axis_overrides[kv.substr(0, eq)] = kv.substr(eq + 1);
    } else if (arg == "--threads") {
      const long n = std::stol(next());
      if (n < 1) throw std::invalid_argument{"--threads must be >= 1"};
      runner = std::make_unique<core::ReplicationRunner>(static_cast<std::size_t>(n));
      options.runner = runner.get();
    } else if (arg == "--scale") {
      options.scale = parse_scale(next());
    } else if (arg == "--seed") {
      options.seed = std::stoull(next());
    } else if (arg == "--format") {
      format = next();
      if (format != "text" && format != "csv" && format != "json") {
        throw std::invalid_argument{"--format must be text, csv or json"};
      }
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--out-dir") {
      out_dir = next();
    } else if (arg == "--all") {
      match = "*";
    } else if (arg == "--match") {
      match = next();
    } else if (arg == "--list-axes") {
      list_axes = true;
    } else if (arg == "--fault-plan") {
      const std::string& path = next();
      std::ifstream file{path};
      if (!file) throw std::invalid_argument{"cannot open fault plan '" + path + "'"};
      std::ostringstream text;
      text << file.rdbuf();
      options.fault_plan = faults::FaultPlan::from_json(text.str());
    } else {
      std::cerr << "sanperf run: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }

  const auto& registry = core::CampaignRegistry::global();

  // Batch mode: every registered scenario matching the glob, one file each.
  if (match) {
    if (!name.empty()) {
      std::cerr << "sanperf run: give either a scenario name or --all/--match\n";
      return usage(std::cerr, 2);
    }
    if (!out_dir) {
      std::cerr << "sanperf run: --all/--match needs --out-dir\n";
      return usage(std::cerr, 2);
    }
    if (out_path) {
      std::cerr << "sanperf run: --out is for a single scenario (batch mode writes one file "
                   "per scenario into --out-dir)\n";
      return usage(std::cerr, 2);
    }
    if (format.empty()) format = "csv";
    // An override no matched scenario understands is a typo, not a no-op.
    for (const auto& [axis_name, csv] : options.axis_overrides) {
      bool known = false;
      for (const auto& spec : registry.specs()) {
        if (glob_match(*match, spec.name) &&
            find_axis(spec.axes(options.scale), axis_name) != nullptr) {
          known = true;
          break;
        }
      }
      if (!known) {
        std::cerr << "sanperf run: no scenario matching '" << *match << "' has an axis '"
                  << axis_name << "'\n";
        return 2;
      }
    }
    std::filesystem::create_directories(*out_dir);
    const char* ext = format == "json" ? ".json" : format == "csv" ? ".csv" : ".txt";
    std::size_t ran = 0;
    for (const auto& spec : registry.specs()) {
      if (!glob_match(*match, spec.name)) continue;
      const auto path = std::filesystem::path{*out_dir} / (spec.name + ext);
      const core::ResultTable table = registry.run(spec, with_known_axes(spec, options));
      std::ofstream file{path};
      if (!file) {
        std::cerr << "sanperf run: cannot open '" << path.string() << "' for writing\n";
        return 1;
      }
      file << render(spec, table, options.scale, format);
      std::cout << "wrote " << spec.name << ": " << table.row_count() << " rows to "
                << path.string() << "\n";
      ++ran;
    }
    if (ran == 0) {
      std::cerr << "sanperf run: no scenario matches '" << *match << "'\n";
      return 2;
    }
    std::cout << ran << " scenario(s) written to " << *out_dir << "\n";
    return 0;
  }

  if (name.empty()) {
    std::cerr << "sanperf run: missing scenario name\n";
    return usage(std::cerr, 2);
  }
  if (out_dir) {
    std::cerr << "sanperf run: --out-dir is for --all/--match (use --out for one scenario)\n";
    return usage(std::cerr, 2);
  }
  if (format.empty()) format = "text";
  const core::ScenarioSpec* spec = registry.find(name);
  if (spec == nullptr) {
    std::cerr << "sanperf run: unknown scenario '" << name << "'; registered:\n";
    for (const auto& s : registry.specs()) std::cerr << "  " << s.name << "\n";
    return 2;
  }
  if (list_axes) {
    std::cout << spec->name << "\n    " << spec->description << "\n";
    for (const auto& axis : spec->axes(options.scale)) {
      std::cout << "    --set " << axis.name() << "=" << axis_domain(axis) << "\n";
    }
    return 0;
  }
  require_known_axes(*spec, options);

  const core::ResultTable table = registry.run(*spec, options);
  const std::string rendered = render(*spec, table, options.scale, format);
  if (out_path) {
    std::ofstream file{*out_path};
    if (!file) {
      std::cerr << "sanperf run: cannot open '" << *out_path << "' for writing\n";
      return 1;
    }
    file << rendered;
    std::cout << "wrote " << table.row_count() << " rows to " << *out_path << "\n";
  } else {
    std::cout << rendered;
  }
  return 0;
}

// --- knee --------------------------------------------------------------------

/// Binary-searches a scenario's load axis for the saturation knee: the
/// highest offered load whose delivered_per_s still covers `target` of the
/// load on *every* grid row (restrict other axes with --set to isolate one
/// configuration). Each probe is a normal restricted run, so knee results
/// are as reproducible as the scenario itself.
int cmd_knee(const std::vector<std::string>& args) {
  if (args.empty() || args[0].rfind("--", 0) == 0) {
    std::cerr << "sanperf knee: missing scenario name\n";
    return usage(std::cerr, 2);
  }
  const std::string name = args[0];
  core::RunOptions options;
  std::string axis_name = "offered_per_s";
  double target = 0.9;
  std::size_t iters = 10;
  std::unique_ptr<core::ReplicationRunner> runner;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument{"missing value after " + arg};
      }
      return args[++i];
    };
    if (arg == "--axis") {
      axis_name = next();
    } else if (arg == "--target") {
      target = std::stod(next());
      if (!(target > 0) || target > 1) {
        throw std::invalid_argument{"--target must be in (0, 1]"};
      }
    } else if (arg == "--iters") {
      iters = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--set") {
      const std::string& kv = next();
      const auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::invalid_argument{"--set expects axis=value[,value...], got '" + kv + "'"};
      }
      options.axis_overrides[kv.substr(0, eq)] = kv.substr(eq + 1);
    } else if (arg == "--scale") {
      options.scale = parse_scale(next());
    } else if (arg == "--seed") {
      options.seed = std::stoull(next());
    } else if (arg == "--threads") {
      const long n = std::stol(next());
      if (n < 1) throw std::invalid_argument{"--threads must be >= 1"};
      runner = std::make_unique<core::ReplicationRunner>(static_cast<std::size_t>(n));
      options.runner = runner.get();
    } else {
      std::cerr << "sanperf knee: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }

  const auto& registry = core::CampaignRegistry::global();
  const core::ScenarioSpec* spec = registry.find(name);
  if (spec == nullptr) {
    std::cerr << "sanperf knee: unknown scenario '" << name << "'\n";
    return 2;
  }
  require_known_axes(*spec, options);
  if (options.axis_overrides.count(axis_name) != 0) {
    throw std::invalid_argument{"--set must not fix the searched axis '" + axis_name + "'"};
  }
  const auto axes = spec->axes(options.scale);
  const core::ParamAxis* load_axis = find_axis(axes, axis_name);
  if (load_axis == nullptr) {
    throw std::invalid_argument{"scenario '" + name + "' has no load axis '" + axis_name +
                                "' (--axis to pick one)"};
  }
  std::size_t delivered_col = spec->columns.size();
  for (std::size_t c = 0; c < spec->columns.size(); ++c) {
    if (spec->columns[c].name == "delivered_per_s") delivered_col = c;
  }
  if (delivered_col == spec->columns.size()) {
    throw std::invalid_argument{"scenario '" + name +
                                "' has no delivered_per_s column; knee needs a throughput "
                                "scenario (e.g. load_latency_sweep)"};
  }

  // The axis domain brackets the search; its end points need not behave
  // (the whole point is finding where behaviour changes in between).
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& v : load_axis->values()) {
    const double x = std::holds_alternative<double>(v)
                         ? std::get<double>(v)
                         : static_cast<double>(std::get<std::int64_t>(v));
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (!(lo > 0) || !(hi > lo)) {
    throw std::invalid_argument{"axis '" + axis_name + "' needs a positive domain to search"};
  }

  const auto probe = [&](double load) {
    core::RunOptions o = options;
    std::ostringstream value;
    value.precision(17);
    value << load;
    o.axis_overrides[axis_name] = value.str();
    const core::ResultTable table = registry.run(*spec, o);
    double worst = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < table.row_count(); ++r) {
      const auto& cell = table.cell(r, delivered_col);
      const double delivered = std::holds_alternative<double>(cell) ? std::get<double>(cell) : 0;
      worst = std::min(worst, delivered / load);
    }
    const bool keeps_up = worst >= target;
    std::cout << "  probe " << core::fmt(load) << " /s: min delivered/offered = "
              << core::fmt(worst) << (keeps_up ? "  (keeps up)" : "  (saturated)") << "\n";
    return keeps_up;
  };

  std::cout << "knee search on " << name << "." << axis_name << " in [" << core::fmt(lo) << ", "
            << core::fmt(hi) << "] /s, target ratio " << core::fmt(target) << ":\n";
  if (!probe(lo)) {
    std::cout << "saturated already at the axis minimum: knee < " << core::fmt(lo) << " /s\n";
    return 0;
  }
  if (probe(hi)) {
    std::cout << "keeps up at the axis maximum: knee > " << core::fmt(hi) << " /s\n";
    return 0;
  }
  for (std::size_t it = 0; it < iters && (hi - lo) > 0.05 * lo; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (probe(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  std::cout << "knee: between " << core::fmt(lo) << " and " << core::fmt(hi)
            << " /s (midpoint " << core::fmt(0.5 * (lo + hi)) << " /s)\n";
  return 0;
}

// --- plan --------------------------------------------------------------------

/// Synthesizes a FaultPlan from a Weibull fault-rate spec and writes it as
/// JSON (stdout or --out). The emitted plan is a pure function of the spec,
/// and the plan JSON round-trips (the command re-parses what it writes and
/// re-synthesizes from the spec as a self-check), so a checked-in plan file
/// replays bit-identically via `sanperf run ... --fault-plan plan.json`.
int cmd_plan(const std::vector<std::string>& args) {
  faults::WeibullPlanSpec spec;
  std::optional<std::string> out_path;
  std::optional<std::string> spec_out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument{"missing value after " + arg};
      }
      return args[++i];
    };
    if (arg == "--scope") {
      spec.scope = next();
    } else if (arg == "--domains") {
      spec.domains = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--shape") {
      spec.shape = std::stod(next());
    } else if (arg == "--scale-ms") {
      spec.scale_ms = std::stod(next());
    } else if (arg == "--horizon-ms") {
      spec.horizon_ms = std::stod(next());
    } else if (arg == "--downtime-ms") {
      const std::string& v = next();
      spec.downtime_ms = (v == "inf" || v == "forever") ? faults::kForeverMs : std::stod(v);
    } else if (arg == "--seed") {
      spec.seed = std::stoull(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--spec-out") {
      spec_out_path = next();
    } else {
      std::cerr << "sanperf plan: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }

  const faults::FaultPlan plan = faults::synthesize_weibull_plan(spec);
  const std::string json = plan.to_json();

  // Self-check both round trips before anything is written: the plan JSON
  // must re-parse to the same serialization, and the spec must replay to
  // the same plan (the determinism contract --fault-plan relies on).
  if (faults::FaultPlan::from_json(json).to_json() != json) {
    std::cerr << "sanperf plan: internal error: plan JSON does not round-trip\n";
    return 1;
  }
  if (faults::synthesize_weibull_plan(faults::WeibullPlanSpec::from_json(spec.to_json()))
          .to_json() != json) {
    std::cerr << "sanperf plan: internal error: spec does not replay to the same plan\n";
    return 1;
  }

  if (spec_out_path) {
    std::ofstream file{*spec_out_path};
    if (!file) {
      std::cerr << "sanperf plan: cannot open '" << *spec_out_path << "' for writing\n";
      return 1;
    }
    file << spec.to_json() << "\n";
  }
  if (out_path) {
    std::ofstream file{*out_path};
    if (!file) {
      std::cerr << "sanperf plan: cannot open '" << *out_path << "' for writing\n";
      return 1;
    }
    file << json << "\n";
    std::cout << "wrote " << plan.events().size() << " event(s) to " << *out_path << "\n";
  } else {
    std::cout << json << "\n";
  }
  return 0;
}

// --- diff --------------------------------------------------------------------

struct DiffReport {
  std::size_t mismatches = 0;
  std::ostringstream detail;

  void note(const std::string& what) {
    if (++mismatches <= 20) detail << "  " << what << "\n";
  }
};

bool close(double a, double b, double tol) {
  if (std::isnan(a) && std::isnan(b)) return true;
  return std::abs(a - b) <= tol * std::max(std::abs(a), std::abs(b)) + 1e-12;
}

void diff_cell(const core::ResultTable& exp, const core::ResultTable& act, std::size_t r,
               std::size_t c, double tol, DiffReport& report) {
  const auto& col = exp.columns()[c];
  const auto& a = exp.cell(r, c);
  const auto& b = act.cell(r, c);
  const std::string where = col.name + " row " + std::to_string(r);
  if (a.index() != b.index()) {
    report.note(where + ": null/non-null mismatch");
    return;
  }
  using CT = core::ResultTable::ColumnType;
  switch (col.type) {
    case CT::kInt:
      if (std::holds_alternative<std::int64_t>(a) &&
          std::get<std::int64_t>(a) != std::get<std::int64_t>(b)) {
        report.note(where + ": " + std::to_string(std::get<std::int64_t>(a)) + " vs " +
                    std::to_string(std::get<std::int64_t>(b)));
      }
      break;
    case CT::kString:
      if (std::holds_alternative<std::string>(a) &&
          std::get<std::string>(a) != std::get<std::string>(b)) {
        report.note(where + ": '" + std::get<std::string>(a) + "' vs '" +
                    std::get<std::string>(b) + "'");
      }
      break;
    case CT::kReal:
      if (std::holds_alternative<double>(a) && !close(std::get<double>(a), std::get<double>(b), tol)) {
        report.note(where + ": " + core::fmt(std::get<double>(a), 6) + " vs " +
                    core::fmt(std::get<double>(b), 6));
      }
      break;
    case CT::kMeanCI: {
      if (!std::holds_alternative<stats::MeanCI>(a)) break;
      const auto& ca = std::get<stats::MeanCI>(a);
      const auto& cb = std::get<stats::MeanCI>(b);
      if (!close(ca.mean, cb.mean, tol) || !close(ca.half_width, cb.half_width, tol) ||
          !close(static_cast<double>(ca.count), static_cast<double>(cb.count), tol)) {
        report.note(where + ": mean " + core::fmt(ca.mean, 6) + " vs " + core::fmt(cb.mean, 6));
      }
      break;
    }
    case CT::kSample: {
      if (!std::holds_alternative<core::SampleRef>(a)) break;
      const auto& xa = std::get<core::SampleRef>(a).values();
      const auto& xb = std::get<core::SampleRef>(b).values();
      if (!close(static_cast<double>(xa.size()), static_cast<double>(xb.size()), tol)) {
        report.note(where + ": sample size " + std::to_string(xa.size()) + " vs " +
                    std::to_string(xb.size()));
        break;
      }
      // Compare distribution shape (means), not element-wise bits: shard
      // counts may differ slightly across standard libraries.
      stats::SummaryStats sa, sb;
      for (const double x : xa) sa.add(x);
      for (const double x : xb) sb.add(x);
      if (!close(sa.mean(), sb.mean(), tol)) {
        report.note(where + ": sample mean " + core::fmt(sa.mean(), 6) + " vs " +
                    core::fmt(sb.mean(), 6));
      }
      break;
    }
  }
}

int cmd_diff(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::cerr << "sanperf diff: expected two CSV paths\n";
    return usage(std::cerr, 2);
  }
  double tol = 0.10;
  std::set<std::string> ignore_cols;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--tol" && i + 1 < args.size()) {
      tol = std::stod(args[++i]);
    } else if (args[i] == "--ignore-cols" && i + 1 < args.size()) {
      // Comma-separated column names excluded from the comparison (schema
      // still checked): wall-clock / machine-fact columns in goldens.
      std::istringstream list{args[++i]};
      for (std::string name; std::getline(list, name, ',');) {
        if (!name.empty()) ignore_cols.insert(name);
      }
    } else {
      std::cerr << "sanperf diff: unknown option '" << args[i] << "'\n";
      return usage(std::cerr, 2);
    }
  }
  const auto load = [](const std::string& path) {
    std::ifstream file{path};
    if (!file) throw std::invalid_argument{"cannot open '" + path + "'"};
    return core::ResultTable::from_csv(file);
  };
  const auto expected = load(args[0]);
  const auto actual = load(args[1]);

  DiffReport report;
  if (expected.name() != actual.name()) {
    report.note("table name: '" + expected.name() + "' vs '" + actual.name() + "'");
  }
  if (expected.columns().size() != actual.columns().size()) {
    report.note("column count: " + std::to_string(expected.columns().size()) + " vs " +
                std::to_string(actual.columns().size()));
  } else {
    for (std::size_t c = 0; c < expected.columns().size(); ++c) {
      if (expected.columns()[c].name != actual.columns()[c].name ||
          expected.columns()[c].type != actual.columns()[c].type) {
        report.note("column " + std::to_string(c) + " schema mismatch");
      }
    }
  }
  if (expected.row_count() != actual.row_count()) {
    report.note("row count: " + std::to_string(expected.row_count()) + " vs " +
                std::to_string(actual.row_count()));
  }
  if (report.mismatches == 0) {
    for (std::size_t r = 0; r < expected.row_count(); ++r) {
      for (std::size_t c = 0; c < expected.columns().size(); ++c) {
        if (ignore_cols.count(expected.columns()[c].name) != 0) continue;
        diff_cell(expected, actual, r, c, tol, report);
      }
    }
  }

  if (report.mismatches > 0) {
    std::cout << "sanperf diff: " << report.mismatches << " mismatch(es) beyond tol " << tol
              << " between " << args[0] << " and " << args[1] << ":\n"
              << report.detail.str();
    if (report.mismatches > 20) std::cout << "  ... (truncated)\n";
    return 1;
  }
  std::cout << "sanperf diff: tables match within tol " << tol << " (" << expected.row_count()
            << " rows)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args{argv + 1, argv + argc};
  if (args.empty()) return usage(std::cerr, 2);
  const std::string command = args[0];
  args.erase(args.begin());
  try {
    if (command == "help" || command == "--help" || command == "-h") {
      return usage(std::cout, 0);
    }
    if (command == "list") {
      core::Scale scale = core::Scale::from_env();
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--scale" && i + 1 < args.size()) {
          scale = parse_scale(args[++i]);
        } else {
          std::cerr << "sanperf list: unknown option '" << args[i] << "'\n";
          return usage(std::cerr, 2);
        }
      }
      return cmd_list(scale);
    }
    if (command == "run") return cmd_run(args);
    if (command == "knee") return cmd_knee(args);
    if (command == "plan") return cmd_plan(args);
    if (command == "diff") return cmd_diff(args);
    std::cerr << "sanperf: unknown command '" << command << "'\n";
    return usage(std::cerr, 2);
  } catch (const std::exception& e) {
    std::cerr << "sanperf " << command << ": " << e.what() << "\n";
    return 1;
  }
}
