// Scenario: choosing a solver, the decision the paper faced (Section 3.1:
// non-exponential distributions "restrict the choice of the solvers to
// simulative ones").
//
// A small repair-station model is solved both ways while it is Markovian
// (all-exponential) -- the answers must agree, with the analytical one
// exact. Then the service time is switched to the paper's bimodal-uniform
// network delay, the analytical solver refuses, and simulation carries on.
#include <iostream>

#include "core/report.hpp"
#include "san/analytic.hpp"
#include "san/study.hpp"

namespace {

sanperf::san::SanModel make_station(const sanperf::san::Distribution& service,
                                    sanperf::san::PlaceId* done_out) {
  using namespace sanperf::san;
  SanModel m;
  const auto arrivals = m.place("arrivals", 4);   // four jobs to process
  const auto queue = m.place("queue", 0);
  const auto server = m.place("server", 1);
  const auto busy = m.place("busy", 0);
  const auto done = m.place("done", 0);
  m.timed_activity("arrive", Distribution::exponential_ms(1.0)).in(arrivals).out(queue);
  m.instant_activity("grab").in(queue).in(server).out(busy);
  SanModel& ref = m;
  ref.timed_activity("serve", service).in(busy).out(done).out(server);
  *done_out = done;
  return m;
}

}  // namespace

int main() {
  using namespace sanperf;
  core::print_banner(std::cout, "Analytical vs simulative solving of one SAN");

  // --- Markovian version: both solvers apply -------------------------------
  san::PlaceId done;
  const auto markovian = make_station(san::Distribution::exponential_ms(0.8), &done);
  const auto stop = [done](const san::Marking& m) { return m.get(done) >= 4; };

  san::CtmcTransientSolver solver{markovian, stop};
  std::cout << "state space: " << solver.state_count() << " tangible states\n";
  std::cout << "analytic  mean time to drain: " << core::fmt(solver.mean_time_to_stop_ms())
            << " ms (exact)\n";

  san::TransientStudy study{markovian, stop};
  const auto sim = study.run(20000, 7);
  std::cout << "simulated mean time to drain: " << core::fmt_ci(sim.ci)
            << " ms (20000 replications)\n";
  std::cout << "P(drained by 6 ms): analytic " << core::fmt(solver.probability_stopped_by(6.0))
            << " vs simulated " << core::fmt(sim.ecdf().eval(6.0)) << "\n";

  // --- The paper's situation: a bimodal service time -----------------------
  core::print_banner(std::cout, "Now with the paper's bimodal network delay as service time");
  san::PlaceId done2;
  const auto bimodal = make_station(
      san::Distribution::bimodal_uniform_ms(0.8, 0.10, 0.13, 0.145, 0.35), &done2);
  const auto stop2 = [done2](const san::Marking& m) { return m.get(done2) >= 4; };
  try {
    san::CtmcTransientSolver refused{bimodal, stop2};
    std::cout << "unexpected: the analytical solver accepted a non-Markovian model\n";
    return 1;
  } catch (const std::invalid_argument& e) {
    std::cout << "analytic solver: REJECTED -- " << e.what() << "\n";
  }
  san::TransientStudy fallback{bimodal, stop2};
  const auto sim2 = fallback.run(20000, 8);
  std::cout << "simulation still works: " << core::fmt_ci(sim2.ci) << " ms\n";
  std::cout << "\nThis is exactly why the paper solved its consensus model by\n"
               "simulation: the measured network delays are bimodal-uniform, not\n"
               "exponential (Section 3.1 / 5.1).\n";
  return 0;
}
