// Scenario: sizing a replicated service (Section 2.3's active-replication
// motivation). A client request is answered after the first replica decides
// in consensus, so consensus latency bounds the service's response-time
// overhead. This example measures that latency for growing replica groups,
// in failure-free runs and with a crashed replica.
#include <iostream>

#include "core/measurement.hpp"
#include "core/report.hpp"
#include "stats/ecdf.hpp"

int main() {
  using namespace sanperf;
  const auto network = net::NetworkParams::defaults();
  const auto timers = net::TimerModel::ideal();
  constexpr std::size_t kExecutions = 400;

  core::print_banner(std::cout, "Replica-group sizing: consensus latency per group size");
  core::TablePrinter table{std::cout,
                           {{"replicas", 9},
                            {"tolerates", 10},
                            {"no crash[ms]", 14},
                            {"p99[ms]", 8},
                            {"coord crash[ms]", 16},
                            {"worst crash vs ok", 17}}};
  table.print_header();

  for (const std::size_t n : {3u, 5u, 7u, 9u, 11u}) {
    const auto ok = core::measure_latency(n, network, timers, -1, kExecutions, 7 * n);
    const auto coord = core::measure_latency(n, network, timers, 0, kExecutions, 9 * n);
    const stats::Ecdf ecdf{ok.latencies_ms};
    const double ratio = coord.summary().mean() / ok.summary().mean();
    table.print_row({std::to_string(n), std::to_string((n - 1) / 2),
                     core::fmt(ok.summary().mean()), core::fmt(ecdf.quantile(0.99)),
                     core::fmt(coord.summary().mean()), core::fmt(ratio, 2) + "x"});
  }

  std::cout << "\nReading: each +2 replicas buys one more tolerated crash and costs\n"
               "roughly half a millisecond of decision latency on this network; a\n"
               "crashed coordinator costs about one extra round.\n";
  return 0;
}
