// Defining a new scenario on the campaign API (the README's "defining a
// new scenario" guide, runnable).
//
// A scenario is a declarative spec: typed parameter axes, an output
// schema, and a run function that enumerates the (possibly --set-
// restricted) grid into one flattened ShardSpace batch. Registering it
// makes it listable, runnable, restrictable and renderable exactly like
// the built-in paper figures -- parallel over SANPERF_THREADS with
// bit-identical results at any thread count, for free.
//
// The example sweeps a what-if grid: class-1 latency per group size,
// with and without a crashed participant.
#include <iostream>

#include "core/campaign.hpp"
#include "core/report.hpp"

using namespace sanperf;

namespace {

core::ScenarioSpec crash_sweep_spec() {
  core::ScenarioSpec spec;
  spec.name = "crash_sweep";
  spec.description = "Class-1 latency vs group size under a crash scenario";
  spec.needs_calibration = false;  // emulation only, no SAN calibration pass

  // 1. Typed axes: the grid a `--set`-style override can restrict.
  spec.axes = [](const core::Scale& scale) {
    return std::vector<core::ParamAxis>{
        core::ParamAxis::sizes("n", scale.ns),
        core::ParamAxis::strings("scenario", {"no-crash", "participant-crash"})};
  };

  // 2. Output schema: one typed ResultTable row per grid point.
  spec.columns = {{"n", core::ResultTable::ColumnType::kInt},
                  {"scenario", core::ResultTable::ColumnType::kString},
                  {"latency_ms", core::ResultTable::ColumnType::kMeanCI},
                  {"undecided", core::ResultTable::ColumnType::kInt}};

  // 3. Run: one ShardSpace group per grid point, every (point, execution)
  // task drains from a single runner batch, folds happen in index order.
  spec.run = [columns = spec.columns](const core::ScenarioRun& run) {
    const core::PaperContext& ctx = run.ctx;
    core::ShardSpace space;
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const std::size_t n = run.grid.point(p).get_size("n");
      space.add_group(ctx.scale.class1_executions, ctx.seed + 1234 + n, "exec");
    }
    const auto outcomes = ctx.runner->run_flat(space, [&](const core::ShardSpace::Task& t) {
      const auto point = run.grid.point(t.group);
      const int crashed = point.get_string("scenario") == "no-crash" ? -1 : 1;
      return core::run_latency_execution(point.get_size("n"), ctx.network, ctx.timers, crashed,
                                         t.index, t.seed);
    });

    core::ResultTable table{"crash_sweep", columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const auto meas = core::fold_latency_outcomes(outcomes[p]);
      table.add_row({point.get_int("n"), point.get_string("scenario"),
                     meas.summary().mean_ci(0.90),
                     static_cast<std::int64_t>(meas.undecided)});
    }
    return table;
  };
  return spec;
}

// 4. Self-registration: the static registrar appends the spec to
// CampaignRegistry::global() during this translation unit's initialisation
// -- an out-of-tree scenario linked into any binary (this example, a
// plugin, a rebuilt CLI) shows up next to the built-in specs without
// editing scenarios.cpp. The in-tree fault scenarios register the same way.
SANPERF_REGISTER_SCENARIO(crash_sweep_spec);

}  // namespace

int main() {
  const auto& registry = core::CampaignRegistry::global();
  std::cout << "registered scenarios (builtin + self-registered):\n";
  for (const auto& spec : registry.specs()) std::cout << "  " << spec.name << "\n";

  core::RunOptions options;
  options.scale = core::Scale::quick();
  options.axis_overrides = {{"n", "3,5"}};  // what `sanperf run --set n=3,5` would do

  const auto table = registry.run("crash_sweep", options);
  table.print(std::cout);
  std::cout << "\nCSV form (what --format csv emits):\n" << table.to_csv();
  return 0;
}
