// Scenario: tuning the failure-detection timeout T (the operator's
// dilemma of Section 2.4). Small T detects crashes fast but wrongly
// suspects correct processes, inflating consensus latency; large T is
// accurate but slow to detect real crashes. This example sweeps T on the
// emulated cluster, reports the FD QoS and the latency, and prints the
// latency a crash would cost at each setting.
#include <iostream>

#include "core/measurement.hpp"
#include "core/report.hpp"

int main() {
  using namespace sanperf;
  constexpr std::size_t kN = 3;
  const auto network = net::NetworkParams::defaults();
  const auto timers = net::TimerModel::defaults();  // 10 ms ticks + stalls

  core::print_banner(std::cout, "Failure-detector tuning: QoS and latency vs timeout T");
  core::TablePrinter table{std::cout,
                           {{"T[ms]", 6},
                            {"Th[ms]", 7},
                            {"T_MR[ms]", 10},
                            {"T_M[ms]", 8},
                            {"latency[ms]", 12},
                            {"detection[ms]", 13}}};
  table.print_header();

  for (const double timeout : {2.0, 5.0, 10.0, 20.0, 40.0, 100.0}) {
    const auto agg = core::measure_class3(kN, network, timers, timeout, /*runs=*/3,
                                          /*executions=*/120, 1000 + static_cast<int>(timeout));
    const bool quiet = agg.pooled_qos.pairs_used == 0;
    // Worst-case detection time of a real crash ~ Th + T (last heartbeat
    // just before the crash, then a full timeout).
    const double detection = 0.7 * timeout + timeout;
    table.print_row({core::fmt(timeout, 0), core::fmt(0.7 * timeout, 1),
                     quiet ? "no mistakes" : core::fmt(agg.pooled_qos.t_mr_ms, 1),
                     quiet ? "-" : core::fmt(agg.pooled_qos.t_m_ms, 1),
                     core::fmt_ci(agg.latency_ms, 2), core::fmt(detection, 1)});
  }

  std::cout << "\nReading: below ~10 ms the timeout sits inside the OS timer quantum,\n"
               "wrong suspicions are frequent and consensus latency explodes; beyond\n"
               "~40 ms mistakes disappear and latency settles at the class-1 level,\n"
               "at the price of slower crash detection (right column).\n";
  return 0;
}
