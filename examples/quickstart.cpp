// Quickstart: the combined methodology in ~60 lines.
//
// 1. Measure consensus latency on the emulated cluster (class 1).
// 2. Calibrate the SAN network model from measured delays.
// 3. Simulate the SAN model and compare the two latency estimates --
//    the validation at the heart of the paper.
#include <iostream>

#include "core/calibration.hpp"
#include "core/measurement.hpp"
#include "core/simulation.hpp"
#include "stats/bimodal_fit.hpp"

int main() {
  using namespace sanperf;
  constexpr std::size_t kN = 3;          // processes
  constexpr std::size_t kExecutions = 500;
  constexpr std::uint64_t kSeed = 42;

  // --- 1. measurements on the emulated cluster ----------------------------
  const auto network = net::NetworkParams::defaults();
  const auto meas = core::measure_latency(kN, network, net::TimerModel::ideal(),
                                          /*initially_crashed=*/-1, kExecutions, kSeed);
  std::cout << "measured latency (n=" << kN << ", " << kExecutions
            << " executions): " << meas.summary().mean() << " ms  (paper: 1.06 ms)\n";

  // --- 2. calibration ------------------------------------------------------
  const auto unicast = core::measure_unicast_delays(network, 2000, kSeed + 1);
  const auto broadcast = core::measure_broadcast_delays(network, kN, 2000, kSeed + 2);
  const auto unicast_fit = stats::fit_bimodal_uniform(unicast);
  const auto broadcast_fit = stats::fit_bimodal_uniform(broadcast);
  std::cout << "unicast end-to-end fit: " << unicast_fit.to_string()
            << "  (paper: U[0.100,0.130]@0.80 + U[0.145,0.350]@0.20)\n";

  const auto transport = core::make_transport(unicast_fit, broadcast_fit, /*t_send_ms=*/0.025);

  // --- 3. SAN simulation and validation ------------------------------------
  const auto sim = core::simulate_class1(kN, transport, /*replications=*/500, kSeed + 3);
  std::cout << "simulated latency (SAN model):  " << sim.summary.mean()
            << " ms  (paper: 1.030 ms)\n";
  std::cout << "simulation / measurement ratio: " << sim.summary.mean() / meas.summary().mean()
            << " (the paper's model validates within a few percent)\n";
  return 0;
}
