// Scenario: the SAN library as a general modelling tool (what UltraSAN was
// used for). Builds a producer/consumer system with a contended resource --
// two replicated producers feeding one bounded buffer drained by a consumer
// -- computes time-to-drain distributions with confidence intervals, and
// demonstrates REP-style composition, gates and mixed distributions.
#include <iostream>

#include "core/report.hpp"
#include "san/compose.hpp"
#include "san/study.hpp"

int main() {
  using namespace sanperf;
  san::SanModel model;

  // Shared state: a bounded buffer and a batch counter.
  const auto buffer = model.place("buffer", 0);
  const auto produced = model.place("produced", 0);
  constexpr std::int32_t kCapacity = 4;
  constexpr std::int32_t kBatch = 20;

  // REP: two identical producers, joined through the shared buffer.
  san::rep(model, "producer", 2, [&](const san::Scope& scope, std::size_t) {
    const auto ready = scope.place("ready", 1);
    const auto guard = scope.input_gate(
        "space_left", {buffer, produced},
        [buffer, produced](const san::Marking& m) {
          return m.get(buffer) < kCapacity && m.get(produced) < kBatch;
        });
    scope.timed_activity("produce", san::Distribution::uniform_ms(0.5, 1.5))
        .in(ready)
        .in_gate(guard)
        .out(ready)
        .out(buffer)
        .out(produced);
  });

  // One consumer with a bimodal service time (fast path / slow path).
  const auto served = model.place("served", 0);
  model
      .timed_activity("consume",
                      san::Distribution::bimodal_uniform_ms(0.9, 0.2, 0.4, 2.0, 4.0))
      .in(buffer)
      .out(served);
  model.validate();

  std::cout << "model: " << model.place_count() << " places, " << model.activity_count()
            << " activities\n";

  // Transient study: time until the whole batch is served.
  san::TransientStudy study{model, [served](const san::Marking& m) {
                              return m.get(served) >= kBatch;
                            }};
  const auto result = study.run(/*replications=*/2000, /*seed=*/7);

  std::cout << "time to serve " << kBatch << " items: " << core::fmt_ci(result.ci, 2)
            << " ms (90% CI over " << result.rewards.size() << " replications)\n";
  const auto ecdf = result.ecdf();
  std::cout << "p50 = " << core::fmt(ecdf.quantile(0.5), 2)
            << " ms, p95 = " << core::fmt(ecdf.quantile(0.95), 2)
            << " ms, p99 = " << core::fmt(ecdf.quantile(0.99), 2) << " ms\n";

  // The slow-path mixture dominates the tail: show the fraction of runs
  // beyond twice the median.
  const double median = ecdf.quantile(0.5);
  std::cout << "runs slower than 1.5x median: "
            << core::fmt(100.0 * (1.0 - ecdf.eval(1.5 * median)), 1) << "%\n";
  return 0;
}
