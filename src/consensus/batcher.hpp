// Value batching between an arrival stream and the consensus stack.
//
// Every client value paying a full consensus instance caps delivered
// throughput at the instance rate (PR 5 measured ~376 inst/s at n = 5).
// Production RPC stacks amortise by *formation*: pending items accumulate
// and the batch closes on whichever of two triggers fires first -- a size
// threshold (the batch is full) or a max-linger deadline (the oldest item
// has waited long enough). One consensus instance then carries the whole
// batch as its value vector. The linger deadline bounds the queueing delay
// a value can pay waiting for peers; the size threshold bounds the batch.
//
// Degenerate configuration (max_batch = 1) closes synchronously inside
// submit() and never touches the event queue, so an unbatched workload is
// bit-identical to the pre-batching engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "des/simulator.hpp"

namespace sanperf::consensus {

struct BatcherConfig {
  /// Values per batch at which the batch closes immediately.
  std::size_t max_batch = 1;
  /// Deadline after the first value of a batch; a partial batch closes when
  /// it expires. 0 still closes via the event queue at the *same* simulated
  /// instant, so values submitted at one timestamp share a batch.
  double linger_ms = 0.0;
};

/// One batched value: the payload plus its submission time, so the
/// consumer can attribute per-value queueing delay.
struct BatchedValue {
  std::int64_t value = 0;
  des::TimePoint enqueued_at;
};

class Batcher {
 public:
  enum class CloseReason : std::uint8_t {
    kSize,    ///< size threshold reached
    kLinger,  ///< max-linger deadline expired
    kFlush,   ///< explicit flush()
  };

  using CloseFn = std::function<void(std::vector<BatchedValue>, CloseReason)>;

  /// Counters over the batcher's lifetime.
  struct Stats {
    std::uint64_t values = 0;   ///< values submitted
    std::uint64_t batches = 0;  ///< batches closed
    std::uint64_t closed_on_size = 0;
    std::uint64_t closed_on_linger = 0;
    std::uint64_t closed_on_flush = 0;
  };

  /// `sim` must outlive the batcher; `on_close` receives every closed batch
  /// (in submission order) with the reason that closed it.
  Batcher(des::Simulator& sim, BatcherConfig cfg, CloseFn on_close)
      : sim_{&sim}, cfg_{cfg}, on_close_{std::move(on_close)} {
    if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  }

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  ~Batcher() { cancel_linger(); }

  /// Adds one value at the current simulated time. Closes the batch
  /// synchronously when it reaches max_batch; otherwise the first value of
  /// a batch arms the linger deadline.
  void submit(std::int64_t value) {
    ++stats_.values;
    pending_.push_back({value, sim_->now()});
    if (pending_.size() >= cfg_.max_batch) {
      close(CloseReason::kSize);
      return;
    }
    if (pending_.size() == 1) {
      const double linger = cfg_.linger_ms > 0 ? cfg_.linger_ms : 0.0;
      linger_timer_ = sim_->schedule(des::Duration::from_ms(linger),
                                     [this] { close(CloseReason::kLinger); });
    }
  }

  /// Closes any partial batch immediately (end-of-stream drain).
  void flush() {
    if (!pending_.empty()) close(CloseReason::kFlush);
  }

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void close(CloseReason reason) {
    cancel_linger();
    std::vector<BatchedValue> batch;
    batch.swap(pending_);  // reentrancy-safe: state settled before the callback
    ++stats_.batches;
    switch (reason) {
      case CloseReason::kSize: ++stats_.closed_on_size; break;
      case CloseReason::kLinger: ++stats_.closed_on_linger; break;
      case CloseReason::kFlush: ++stats_.closed_on_flush; break;
    }
    on_close_(std::move(batch), reason);
  }

  void cancel_linger() {
    if (linger_timer_) {
      sim_->cancel(*linger_timer_);
      linger_timer_.reset();
    }
  }

  des::Simulator* sim_;
  BatcherConfig cfg_;
  CloseFn on_close_;
  std::vector<BatchedValue> pending_;
  std::optional<des::EventId> linger_timer_;
  Stats stats_;
};

}  // namespace sanperf::consensus
