#include "consensus/ct_consensus.hpp"

#include <stdexcept>
#include <utility>

#include "consensus/payload.hpp"

namespace sanperf::consensus {

CtConsensus::CtConsensus(FailureDetector& fd) : fd_{&fd} {}

void CtConsensus::on_start() {
  fd_->add_listener([this](HostId peer, bool suspected) { on_suspicion(peer, suspected); });
}

HostId CtConsensus::coordinator_of(std::int32_t cid, std::int32_t round) const {
  // Rounds are 1-based; p_i coordinates rounds kn + i (Section 2.1). With
  // rotation on, the cycle is offset per instance so round 1 of instance
  // cid starts at p_{cid mod n} rather than always p_0.
  const auto n = static_cast<std::int32_t>(process().n());
  const std::int32_t offset = rotate_coordinators_ ? cid % n : 0;
  return static_cast<HostId>((offset + round - 1) % n);
}

std::int32_t CtConsensus::majority() const {
  return static_cast<std::int32_t>(process().n() / 2 + 1);
}

void CtConsensus::propose(std::int32_t cid, std::int64_t value) {
  propose(cid, std::vector<std::int64_t>{value});
}

void CtConsensus::propose(std::int32_t cid, std::vector<std::int64_t> values) {
  gc_.sweep(instances_);
  if (gc_.collected(cid)) return;  // decided before we proposed, state gone
  Instance& inst = instance(cid);
  if (inst.started) throw std::logic_error{"CtConsensus: instance already proposed"};
  inst.started = true;
  if (inst.decided) {
    // A decision arrived before we proposed (possible with very skewed
    // starts): report it now.
    if (on_decide_) {
      const std::int64_t head = inst.decision.empty() ? 0 : inst.decision.front();
      on_decide_({cid, head, inst.decision_round, process().now(), process().id(),
                  inst.decision});
    }
    return;
  }
  inst.estimate = std::move(values);
  inst.ts = 0;
  advance_round(cid, inst);
}

void CtConsensus::advance_round(std::int32_t cid, Instance& inst) {
  ++inst.round;
  ++stats_.rounds_entered;
  const std::int32_t r = inst.round;
  const HostId coord = coordinator_of(cid, r);

  if (coord == process().id()) {
    // Phase 2: collect a majority of estimates (including our own).
    record_estimate(cid, inst, r, inst.estimate, inst.ts);
    inst.phase = Phase::kCoordWaitEst;
    maybe_propose(cid, inst);
    return;
  }

  // Phase 1: send the estimate to the coordinator -- unconditionally, even
  // to a suspected one. This is load-bearing for liveness: because every
  // process always contributes its estimate, every round reaches a majority
  // of estimates and produces a proposal, so no process can wait forever in
  // phase 3 on a proposal that never comes.
  Message est;
  est.kind = MsgKind::kEstimate;
  est.cid = cid;
  est.round = r;
  detail::set_payload(est, inst.estimate);
  est.ts = inst.ts;
  process().send(est, coord);
  ++stats_.estimates_sent;

  if (fd_->is_suspected(coord)) {
    send_nack(cid, inst);  // phase 3, negative branch, taken immediately
    return;
  }

  // Phase 3: wait for the proposal -- unless it is already here (we were
  // slower than the coordinator).
  inst.phase = Phase::kWaitProp;
  const auto buffered = inst.buffered_props.find(r);
  if (buffered != inst.buffered_props.end()) {
    const Message prop = buffered->second;
    inst.buffered_props.erase(buffered);
    handle_proposal(cid, inst, prop);
  }
}

void CtConsensus::record_estimate(std::int32_t cid, Instance& inst, std::int32_t round,
                                  const std::vector<std::int64_t>& value, std::int32_t ts) {
  inst.ests[round].add(value, ts);
  maybe_propose(cid, inst);
}

void CtConsensus::maybe_propose(std::int32_t cid, Instance& inst) {
  if (inst.phase != Phase::kCoordWaitEst) return;
  const std::int32_t r = inst.round;
  const auto it = inst.ests.find(r);
  if (it == inst.ests.end() || it->second.count < majority()) return;

  // Phase 2: adopt the estimate with the largest timestamp and propose it.
  inst.estimate = it->second.best_value;
  inst.ts = r;
  inst.phase = Phase::kCoordWaitReply;
  inst.acks[r] += 1;  // the coordinator's own (local) positive reply

  ++stats_.proposals_sent;
  Message prop;
  prop.kind = MsgKind::kPropose;
  prop.cid = cid;
  prop.round = r;
  detail::set_payload(prop, inst.estimate);
  process().broadcast(prop);

  maybe_conclude_round(cid, inst);  // n = 1-majority corner and stray nacks
}

void CtConsensus::handle_proposal(std::int32_t cid, Instance& inst, const Message& m) {
  // Phase 3, positive branch: adopt and ack, then move on immediately
  // (the decision, if any, arrives via the DECIDE broadcast).
  inst.estimate = detail::payload_of(m);
  inst.ts = m.round;
  Message ack;
  ack.kind = MsgKind::kAck;
  ack.cid = cid;
  ack.round = m.round;
  process().send(ack, coordinator_of(cid, m.round));
  ++stats_.acks_sent;
  advance_round(cid, inst);
}

void CtConsensus::send_nack(std::int32_t cid, Instance& inst) {
  // Phase 3, negative branch: the coordinator is suspected.
  Message nack;
  nack.kind = MsgKind::kNack;
  nack.cid = cid;
  nack.round = inst.round;
  process().send(nack, coordinator_of(cid, inst.round));
  ++stats_.nacks_sent;
  advance_round(cid, inst);
}

void CtConsensus::maybe_conclude_round(std::int32_t cid, Instance& inst) {
  // Only phase 4 reacts here. The coordinator deliberately ignores nacks
  // while still collecting estimates: aborting before proposing would leave
  // the participants that did send estimates waiting for a proposal that
  // never comes (see advance_round on liveness).
  if (inst.phase != Phase::kCoordWaitReply) return;
  const std::int32_t r = inst.round;
  const auto nack_it = inst.nacks.find(r);
  if (nack_it != inst.nacks.end() && nack_it->second > 0) {
    // Phase 4, negative outcome: at least one nack -> next round.
    ++stats_.rounds_aborted;
    advance_round(cid, inst);
    return;
  }
  const auto ack_it = inst.acks.find(r);
  if (ack_it != inst.acks.end() && ack_it->second >= majority()) {
    decide(cid, inst, inst.estimate, r);
  }
}

void CtConsensus::decide(std::int32_t cid, Instance& inst, const std::vector<std::int64_t>& value,
                         std::int32_t round) {
  if (inst.decided) return;
  inst.decided = true;
  inst.decision = value;
  inst.decision_round = round;
  inst.phase = Phase::kDone;
  if (on_decide_ && inst.started) {
    const std::int64_t head = value.empty() ? 0 : value.front();
    on_decide_({cid, head, round, process().now(), process().id(), value});
  }
  if (!inst.decide_broadcast) {
    inst.decide_broadcast = true;
    Message dec;
    dec.kind = MsgKind::kDecide;
    dec.cid = cid;
    dec.round = round;
    detail::set_payload(dec, value);
    process().broadcast(dec);
  }
  gc_.mark(cid);  // terminal: collected at the next entry-point sweep
}

void CtConsensus::on_message(const Message& m) {
  switch (m.kind) {
    case MsgKind::kEstimate:
    case MsgKind::kPropose:
    case MsgKind::kAck:
    case MsgKind::kNack:
    case MsgKind::kDecide:
      break;
    default:
      return;  // not a consensus message
  }

  gc_.sweep(instances_);
  if (gc_.collected(m.cid)) return;  // stale traffic for a collected instance
  Instance& inst = instance(m.cid);
  if (inst.decided) return;

  switch (m.kind) {
    case MsgKind::kEstimate:
      record_estimate(m.cid, inst, m.round, detail::payload_of(m), m.ts);
      break;

    case MsgKind::kPropose:
      if (inst.phase == Phase::kWaitProp && m.round == inst.round) {
        handle_proposal(m.cid, inst, m);
      } else if (m.round > inst.round) {
        inst.buffered_props.emplace(m.round, m);
      }
      // proposals for past rounds are stale: we already acked or nacked
      break;

    case MsgKind::kAck:
      inst.acks[m.round] += 1;
      if (m.round == inst.round) maybe_conclude_round(m.cid, inst);
      break;

    case MsgKind::kNack:
      inst.nacks[m.round] += 1;
      if (m.round == inst.round) maybe_conclude_round(m.cid, inst);
      break;

    case MsgKind::kDecide:
      inst.decide_broadcast = !relay_decide_;  // suppress re-broadcast unless relaying
      decide(m.cid, inst, detail::payload_of(m), m.round);
      break;

    default:
      break;
  }
}

void CtConsensus::on_suspicion(HostId peer, bool suspected) {
  if (!suspected) return;
  // A fresh suspicion matters to every instance currently waiting for a
  // proposal from `peer`.
  for (auto& [cid, inst] : instances_) {
    if (inst.started && !inst.decided && inst.phase == Phase::kWaitProp &&
        coordinator_of(cid, inst.round) == peer) {
      send_nack(cid, inst);
    }
  }
}

bool CtConsensus::has_decided(std::int32_t cid) const {
  if (gc_.collected(cid)) return true;
  const auto it = instances_.find(cid);
  return it != instances_.end() && it->second.decided;
}

std::int64_t CtConsensus::decision(std::int32_t cid) const {
  const std::vector<std::int64_t>& values = decision_values(cid);
  return values.empty() ? 0 : values.front();
}

const std::vector<std::int64_t>& CtConsensus::decision_values(std::int32_t cid) const {
  const auto it = instances_.find(cid);
  if (it == instances_.end() || !it->second.decided) {
    throw std::logic_error{"CtConsensus: no decision yet"};
  }
  return it->second.decision;
}

std::int32_t CtConsensus::rounds_used(std::int32_t cid) const {
  const auto it = instances_.find(cid);
  if (it == instances_.end()) return 0;
  return it->second.decided ? it->second.decision_round : it->second.round;
}

}  // namespace sanperf::consensus
