#include "consensus/ct_consensus.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "consensus/payload.hpp"

namespace sanperf::consensus {

CtConsensus::CtConsensus(FailureDetector& fd) : fd_{&fd} {}

void CtConsensus::on_start() {
  fd_->add_listener([this](HostId peer, bool suspected) { on_suspicion(peer, suspected); });
}

HostId CtConsensus::coordinator_of(std::int32_t cid, const Instance& inst,
                                   std::int32_t round) const {
  // Rounds are 1-based; p_i coordinates rounds kn + i (Section 2.1). With
  // rotation on, the cycle is offset per instance so round 1 of instance
  // cid starts at p_{cid mod n} rather than always p_0. Under dynamic
  // membership the rotation runs over the instance's epoch member set.
  if (view_ == nullptr) {
    const auto n = static_cast<std::int32_t>(process().n());
    const std::int32_t offset = rotate_coordinators_ ? cid % n : 0;
    return static_cast<HostId>((offset + round - 1) % n);
  }
  const std::vector<MemberId>& members = view_->members_at(inst.epoch);
  const auto m = static_cast<std::int32_t>(members.size());
  const std::int32_t offset = rotate_coordinators_ ? cid % m : 0;
  return static_cast<HostId>(members[static_cast<std::size_t>((offset + round - 1) % m)]);
}

std::int32_t CtConsensus::majority(const Instance& inst) const {
  const std::size_t group =
      view_ == nullptr ? process().n() : view_->members_at(inst.epoch).size();
  return static_cast<std::int32_t>(group / 2 + 1);
}

void CtConsensus::ucast(const Instance& inst, Message m, HostId dst) {
  m.view_epoch = inst.epoch;
  process().send(std::move(m), dst);
}

void CtConsensus::bcast(const Instance& inst, Message m) {
  m.view_epoch = inst.epoch;
  if (view_ == nullptr) {
    process().broadcast(std::move(m));
    return;
  }
  // Member-wise n-1 unicasts in ascending id order -- the same fan-out
  // Process::broadcast produces when the epoch covers every host, so that
  // case takes the pooled single-frame broadcast instead.
  const std::vector<MemberId>& members = view_->members_at(inst.epoch);
  if (covers_all_hosts(members, process().n())) {
    process().broadcast(std::move(m));
    return;
  }
  for (const MemberId peer : members) {
    if (static_cast<HostId>(peer) == process().id()) continue;
    process().send(m, static_cast<HostId>(peer));
  }
}

void CtConsensus::durable_apply(std::function<void()> fn) {
  if (!log_.enabled()) {
    fn();
    return;
  }
  const double delay = log_.charge_ms(process().now().to_ms());
  if (!(delay > 0)) {
    fn();
    return;
  }
  process().set_timer(des::Duration::from_ms(delay), std::move(fn));
}

void CtConsensus::record_state(std::int32_t cid, const Instance& inst) {
  if (!log_.enabled()) return;
  DurableLog::InstanceState& rec = log_.state(cid);
  rec.started = inst.started;
  rec.estimate = inst.estimate;
  rec.ts = inst.ts;
  rec.round = inst.round;
  rec.epoch = inst.epoch;
}

void CtConsensus::propose(std::int32_t cid, std::int64_t value) {
  propose(cid, std::vector<std::int64_t>{value});
}

void CtConsensus::propose(std::int32_t cid, std::vector<std::int64_t> values) {
  gc_.sweep(instances_);
  if (log_.enabled()) log_.compact(gc_.floor());  // log tracks the GC watermark
  if (gc_.collected(cid)) return;  // decided before we proposed, state gone
  Instance& inst = instance(cid);
  if (inst.started) throw std::logic_error{"CtConsensus: instance already proposed"};
  inst.started = true;
  touch_epoch(inst, view_ != nullptr ? view_->epoch() : 0);
  if (inst.decided) {
    // A decision arrived before we proposed (possible with very skewed
    // starts): report it now.
    if (on_decide_) {
      const std::int64_t head = inst.decision.empty() ? 0 : inst.decision.front();
      on_decide_({cid, head, inst.decision_round, process().now(), process().id(),
                  inst.decision});
    }
    return;
  }
  if (inst.decide_pending) return;  // finish_decide reports once the record lands
  inst.estimate = std::move(values);
  inst.ts = 0;
  if (!log_.enabled()) {
    advance_round(cid, inst);
    return;
  }
  // Write-ahead: the proposal record must be durable before any message for
  // the instance leaves this host, so round entry waits for the append.
  record_state(cid, inst);
  durable_apply([this, cid] {
    const auto it = instances_.find(cid);
    if (it == instances_.end() || gc_.collected(cid)) return;
    Instance& i = it->second;
    if (i.round == 0 && !i.decided && !i.decide_pending) advance_round(cid, i);
  });
}

void CtConsensus::advance_round(std::int32_t cid, Instance& inst) {
  ++inst.round;
  ++stats_.rounds_entered;
  const std::int32_t r = inst.round;
  record_state(cid, inst);  // round entry is replayable state
  const HostId coord = coordinator_of(cid, inst, r);

  if (coord == process().id()) {
    // Phase 2: collect a majority of estimates (including our own).
    record_estimate(cid, inst, r, inst.estimate, inst.ts);
    inst.phase = Phase::kCoordWaitEst;
    maybe_propose(cid, inst);
    return;
  }

  // Phase 1: send the estimate to the coordinator -- unconditionally, even
  // to a suspected one. This is load-bearing for liveness: because every
  // process always contributes its estimate, every round reaches a majority
  // of estimates and produces a proposal, so no process can wait forever in
  // phase 3 on a proposal that never comes.
  Message est;
  est.kind = MsgKind::kEstimate;
  est.cid = cid;
  est.round = r;
  detail::set_payload(est, inst.estimate);
  est.ts = inst.ts;
  ucast(inst, est, coord);
  ++stats_.estimates_sent;

  if (fd_->is_suspected(coord)) {
    send_nack(cid, inst);  // phase 3, negative branch, taken immediately
    return;
  }

  // Phase 3: wait for the proposal -- unless it is already here (we were
  // slower than the coordinator).
  inst.phase = Phase::kWaitProp;
  const auto buffered = inst.buffered_props.find(r);
  if (buffered != inst.buffered_props.end()) {
    const Message prop = buffered->second;
    inst.buffered_props.erase(buffered);
    handle_proposal(cid, inst, prop);
  }
}

void CtConsensus::record_estimate(std::int32_t cid, Instance& inst, std::int32_t round,
                                  const std::vector<std::int64_t>& value, std::int32_t ts) {
  inst.ests[round].add(value, ts);
  maybe_propose(cid, inst);
}

void CtConsensus::maybe_propose(std::int32_t cid, Instance& inst) {
  if (inst.phase != Phase::kCoordWaitEst) return;
  const std::int32_t r = inst.round;
  const auto it = inst.ests.find(r);
  if (it == inst.ests.end() || it->second.count < majority(inst)) return;

  // Phase 2: adopt the estimate with the largest timestamp and propose it.
  inst.estimate = it->second.best_value;
  inst.ts = r;
  inst.phase = Phase::kCoordWaitReply;
  inst.acks[r] += 1;  // the coordinator's own (local) positive reply
  record_state(cid, inst);

  ++stats_.proposals_sent;
  Message prop;
  prop.kind = MsgKind::kPropose;
  prop.cid = cid;
  prop.round = r;
  prop.view_epoch = inst.epoch;
  detail::set_payload(prop, inst.estimate);
  // Write-ahead: the adoption record persists before the proposal leaves.
  // Deferred sends serialize on the log device tail, so later appends (a
  // decision, say) cannot overtake this broadcast.
  const std::uint32_t epoch = inst.epoch;
  durable_apply([this, epoch, prop = std::move(prop)] {
    if (view_ == nullptr) {
      process().broadcast(prop);
      return;
    }
    const std::vector<MemberId>& members = view_->members_at(epoch);
    if (covers_all_hosts(members, process().n())) {
      process().broadcast(prop);
      return;
    }
    for (const MemberId peer : members) {
      if (static_cast<HostId>(peer) == process().id()) continue;
      process().send(prop, static_cast<HostId>(peer));
    }
  });

  maybe_conclude_round(cid, inst);  // n = 1-majority corner and stray nacks
}

void CtConsensus::handle_proposal(std::int32_t cid, Instance& inst, const Message& m) {
  // Phase 3, positive branch: adopt and ack, then move on immediately
  // (the decision, if any, arrives via the DECIDE broadcast). The ts guard
  // drops duplicate deliveries (a replay re-send racing the original):
  // adopting round r sets ts = r, and no synchronous path re-enters with
  // ts already at m.round.
  if (inst.ts == m.round) return;
  inst.estimate = detail::payload_of(m);
  inst.ts = m.round;
  record_state(cid, inst);
  Message ack;
  ack.kind = MsgKind::kAck;
  ack.cid = cid;
  ack.round = m.round;
  ack.view_epoch = inst.epoch;
  const HostId coord = coordinator_of(cid, inst, m.round);
  ++stats_.acks_sent;
  // Write-ahead: the adopted estimate persists before the ack commits us.
  durable_apply([this, ack = std::move(ack), coord] { process().send(ack, coord); });
  advance_round(cid, inst);
}

void CtConsensus::send_nack(std::int32_t cid, Instance& inst) {
  // Phase 3, negative branch: the coordinator is suspected.
  Message nack;
  nack.kind = MsgKind::kNack;
  nack.cid = cid;
  nack.round = inst.round;
  ucast(inst, nack, coordinator_of(cid, inst, inst.round));
  ++stats_.nacks_sent;
  advance_round(cid, inst);
}

void CtConsensus::maybe_conclude_round(std::int32_t cid, Instance& inst) {
  // Only phase 4 reacts here. The coordinator deliberately ignores nacks
  // while still collecting estimates: aborting before proposing would leave
  // the participants that did send estimates waiting for a proposal that
  // never comes (see advance_round on liveness).
  if (inst.phase != Phase::kCoordWaitReply) return;
  const std::int32_t r = inst.round;
  const auto nack_it = inst.nacks.find(r);
  if (nack_it != inst.nacks.end() && nack_it->second > 0) {
    // Phase 4, negative outcome: at least one nack -> next round.
    ++stats_.rounds_aborted;
    advance_round(cid, inst);
    return;
  }
  const auto ack_it = inst.acks.find(r);
  if (ack_it != inst.acks.end() && ack_it->second >= majority(inst)) {
    decide(cid, inst, inst.estimate, r);
  }
}

void CtConsensus::decide(std::int32_t cid, Instance& inst, const std::vector<std::int64_t>& value,
                         std::int32_t round) {
  if (inst.decided || inst.decide_pending) return;
  inst.decision = value;
  inst.decision_round = round;
  inst.phase = Phase::kDone;
  if (!log_.enabled()) {
    finish_decide(cid, inst);
    return;
  }
  // Write-ahead: the decision record persists before it is delivered to the
  // application or disseminated. decide_pending parks the instance while
  // the append is in flight; a crash in the window kills the deferred step
  // (epoch-guarded timer) and replay restores the decision silently.
  inst.decide_pending = true;
  record_state(cid, inst);
  DurableLog::InstanceState& rec = log_.state(cid);
  rec.decided = true;
  rec.decision = value;
  rec.decision_round = round;
  durable_apply([this, cid] {
    const auto it = instances_.find(cid);
    if (it == instances_.end() || !it->second.decide_pending) return;
    finish_decide(cid, it->second);
  });
}

void CtConsensus::finish_decide(std::int32_t cid, Instance& inst) {
#if SANPERF_AUDIT_ENABLED
  // One decision per instance per incarnation: a second pass through here
  // means a decided guard was lost somewhere upstream.
  SANPERF_AUDIT_CHECK(
      "consensus.no_double_decide",
      audit_.decided.emplace(cid, detail::LayerAudit::hash_values(inst.decision)).second,
      "instance " + std::to_string(cid) + " decided twice on host " +
          std::to_string(process().id()));
#endif
  inst.decided = true;
  inst.decide_pending = false;
  if (on_decide_ && inst.started) {
    const std::int64_t head = inst.decision.empty() ? 0 : inst.decision.front();
    on_decide_({cid, head, inst.decision_round, process().now(), process().id(),
                inst.decision});
  }
  if (!inst.decide_broadcast) {
    inst.decide_broadcast = true;
    Message dec;
    dec.kind = MsgKind::kDecide;
    dec.cid = cid;
    dec.round = inst.decision_round;
    detail::set_payload(dec, inst.decision);
    bcast(inst, dec);
  }
  gc_.mark(cid);  // terminal: collected at the next entry-point sweep
}

void CtConsensus::on_message(const Message& m) {
  switch (m.kind) {
    case MsgKind::kEstimate:
    case MsgKind::kPropose:
    case MsgKind::kAck:
    case MsgKind::kNack:
    case MsgKind::kDecide:
    case MsgKind::kReplayQuery:
      break;
    default:
      return;  // not a consensus message
  }

  gc_.sweep(instances_);
  if (gc_.collected(m.cid)) return;  // stale traffic for a collected instance
  if (m.kind == MsgKind::kReplayQuery) {
    handle_replay_query(m);  // find, never create
    return;
  }
  Instance& inst = instance(m.cid);
  touch_epoch(inst, m.view_epoch);
#if SANPERF_AUDIT_ENABLED
  audit_check_sender(inst, m);
  if (m.kind == MsgKind::kDecide && inst.decided) {
    // Agreement: every DECIDE for an instance must carry the value this
    // host already decided.
    SANPERF_AUDIT_CHECK("consensus.decision_agreement",
                        inst.decision.empty() || detail::payload_of(m) == inst.decision,
                        "conflicting DECIDE for instance " + std::to_string(m.cid) +
                            " from host " + std::to_string(m.from));
  }
#endif
  if (inst.decided || inst.decide_pending) return;

  switch (m.kind) {
    case MsgKind::kEstimate:
      // Restored-round dedup: drop a REPLAYQ re-send racing the original.
      if (m.round == inst.replay_round && !inst.replay_seen.insert(m.from).second) break;
      record_estimate(m.cid, inst, m.round, detail::payload_of(m), m.ts);
      break;

    case MsgKind::kPropose:
      if (inst.phase == Phase::kWaitProp && m.round == inst.round) {
        handle_proposal(m.cid, inst, m);
      } else if (m.round > inst.round) {
        inst.buffered_props.emplace(m.round, m);
      }
      // proposals for past rounds are stale: we already acked or nacked
      break;

    case MsgKind::kAck:
      inst.acks[m.round] += 1;
      if (m.round == inst.round) maybe_conclude_round(m.cid, inst);
      break;

    case MsgKind::kNack:
      inst.nacks[m.round] += 1;
      if (m.round == inst.round) maybe_conclude_round(m.cid, inst);
      break;

    case MsgKind::kDecide:
      inst.decide_broadcast = !relay_decide_;  // suppress re-broadcast unless relaying
      decide(m.cid, inst, detail::payload_of(m), m.round);
      break;

    default:
      break;
  }
}

void CtConsensus::on_suspicion(HostId peer, bool suspected) {
  if (!suspected) return;
  // A fresh suspicion matters to every instance currently waiting for a
  // proposal from `peer`.
  for (auto& [cid, inst] : instances_) {
    if (inst.started && !inst.decided && inst.phase == Phase::kWaitProp &&
        coordinator_of(cid, inst, inst.round) == peer) {
      send_nack(cid, inst);
    }
  }
}

void CtConsensus::on_crash() {
#if SANPERF_AUDIT_ENABLED
  // Snapshot what a durable replay must reproduce. Only instances the log
  // can know about qualify: started ones (propose records before anything
  // leaves) and decided/pending ones (the decision record is durable before
  // the decide path defers). Passive tally-only instances have no record
  // and legitimately vanish.
  audit_.precrash.clear();
  for (const auto& [cid, inst] : instances_) {
    if (!inst.started && !inst.decided && !inst.decide_pending) continue;
    detail::LayerAudit::Snapshot snap;
    snap.round = inst.round;
    snap.decided = inst.decided || inst.decide_pending;
    snap.decision_hash = detail::LayerAudit::hash_values(inst.decision);
    audit_.precrash.emplace(cid, snap);
  }
#endif
}

void CtConsensus::on_restart() {
  instances_.clear();
  if (!log_.enabled()) {
    // Volatile restart: a fresh incarnation may legitimately re-learn and
    // re-report old decisions, so the audit ledgers reset with the state.
    SANPERF_AUDIT_ONLY(audit_.decided.clear(); audit_.precrash.clear();)
    return;
  }
  log_.compact(gc_.floor());
  std::uint64_t replayed = 0;
  // Iterate a snapshot: replay re-records state (in-place log writes) and a
  // decision callback could reach back into propose(), which sweeps the
  // instance map mid-walk.
  const auto entries = log_.entries();
  for (const auto& [cid, rec] : entries) {
    if (gc_.collected(cid)) continue;
    Instance& inst = instance(cid);
    inst.started = rec.started;
    inst.epoch = rec.epoch;
    inst.epoch_set = true;
    inst.estimate = rec.estimate;
    inst.ts = rec.ts;
    if (rec.decided) {
      // Restore silently: never re-report (the pre-crash delivery may have
      // happened) and never re-broadcast.
      inst.decided = true;
      inst.decision = rec.decision;
      inst.decision_round = rec.decision_round;
      inst.phase = Phase::kDone;
      inst.decide_broadcast = true;
      gc_.mark(cid);
      continue;
    }
    if (!rec.started) continue;
    ++replayed;
    if (rec.round < 1) {
      // Crashed inside the propose append: round 1 was never entered, so
      // enter it now (first estimate send included).
      advance_round(cid, inst);
    } else {
      // Re-enter the logged round *without* re-running round entry: the
      // round-r estimate left this host before the round was logged, so a
      // re-send would double-count in the coordinator's estimate tally.
      inst.round = rec.round;
      inst.replay_round = rec.round;
      if (coordinator_of(cid, inst, inst.round) == process().id()) {
        inst.phase = Phase::kCoordWaitEst;
        // Our own contribution was volatile; peers re-send theirs on REPLAYQ.
        record_estimate(cid, inst, inst.round, inst.estimate, inst.ts);
      } else {
        inst.phase = Phase::kWaitProp;
      }
    }
    if (inst.decided || inst.decide_pending) continue;  // n = 1 corner
    Message q;
    q.kind = MsgKind::kReplayQuery;
    q.cid = cid;
    q.round = inst.round;
    bcast(inst, q);
  }
  log_.note_replayed(replayed);
  SANPERF_AUDIT_ONLY(audit_check_replay();)
}

#if SANPERF_AUDIT_ENABLED
void CtConsensus::audit_check_sender(const Instance& inst, const Message& m) const {
  // Quorum membership: traffic for an instance must come from the member
  // set of the epoch it runs under (Message::view_epoch pins the epoch at
  // first touch), so no quorum can be assembled across epoch boundaries.
  if (view_ == nullptr) {
    SANPERF_AUDIT_CHECK("consensus.quorum_in_epoch",
                        m.from < static_cast<HostId>(process().n()),
                        "sender " + std::to_string(m.from) + " outside the fixed group");
    return;
  }
  SANPERF_AUDIT_CHECK("consensus.quorum_in_epoch",
                      inst.epoch <= view_->epoch() &&
                          view_->is_member_at(inst.epoch, static_cast<MemberId>(m.from)),
                      "sender " + std::to_string(m.from) + " not a member of epoch " +
                          std::to_string(inst.epoch) + " (instance " + std::to_string(m.cid) +
                          ")");
}

void CtConsensus::audit_check_replay() {
  // Durable replay must reproduce the pre-crash trajectory: every decided
  // instance comes back with the same value, every started in-flight one
  // re-enters a round no earlier than the one it crashed in.
  for (const auto& [cid, snap] : audit_.precrash) {
    if (gc_.collected(cid)) continue;
    const auto it = instances_.find(cid);
    if (it == instances_.end()) {
      SANPERF_AUDIT_CHECK("consensus.replay_matches_precrash", false,
                          "instance " + std::to_string(cid) + " lost across replay");
      continue;
    }
    const Instance& inst = it->second;
    if (snap.decided) {
      SANPERF_AUDIT_CHECK(
          "consensus.replay_matches_precrash",
          inst.decided && detail::LayerAudit::hash_values(inst.decision) == snap.decision_hash,
          "instance " + std::to_string(cid) + " decision changed across replay");
    } else {
      SANPERF_AUDIT_CHECK("consensus.replay_matches_precrash", inst.round >= snap.round,
                          "instance " + std::to_string(cid) + " replayed into round " +
                              std::to_string(inst.round) + " behind pre-crash round " +
                              std::to_string(snap.round));
    }
  }
  audit_.precrash.clear();
}

void CtConsensus::audit_corrupt_clear_decided(std::int32_t cid) {
  const auto it = instances_.find(cid);
  if (it == instances_.end()) return;
  it->second.decided = false;
  it->second.decide_pending = false;
  it->second.decide_broadcast = true;  // the corrupted re-decide must not re-flood
}
#endif

void CtConsensus::handle_replay_query(const Message& m) {
  const auto it = instances_.find(m.cid);
  if (it == instances_.end()) return;
  Instance& inst = it->second;
  if (inst.decide_pending) return;  // our own record is still landing
  if (inst.decided) {
    Message dec;
    dec.kind = MsgKind::kDecide;
    dec.cid = m.cid;
    dec.round = inst.decision_round;
    detail::set_payload(dec, inst.decision);
    ucast(inst, dec, m.from);
    return;
  }
  if (!inst.started || inst.round < 1) return;
  const std::int32_t r = inst.round;
  if (inst.phase == Phase::kWaitProp && coordinator_of(m.cid, inst, r) == m.from) {
    // The querier coordinates our current round: its estimate tally died
    // with it (replay rebuilds it holding only its own), so re-contribute
    // ours. No double count is possible -- the tally we refill is empty.
    Message est;
    est.kind = MsgKind::kEstimate;
    est.cid = m.cid;
    est.round = r;
    detail::set_payload(est, inst.estimate);
    est.ts = inst.ts;
    ucast(inst, est, m.from);
    ++stats_.estimates_sent;
  } else if (inst.phase == Phase::kCoordWaitReply && r == m.round &&
             coordinator_of(m.cid, inst, r) == process().id()) {
    // We proposed in the round the querier re-entered and it missed the
    // broadcast while down: re-send the proposal to it alone. (Its ack, if
    // it ever acked r, moved it past r in the log -- no duplicate acks.)
    Message prop;
    prop.kind = MsgKind::kPropose;
    prop.cid = m.cid;
    prop.round = r;
    detail::set_payload(prop, inst.estimate);
    ucast(inst, prop, m.from);
    ++stats_.proposals_sent;
  }
}

bool CtConsensus::has_decided(std::int32_t cid) const {
  if (gc_.collected(cid)) return true;
  const auto it = instances_.find(cid);
  return it != instances_.end() && it->second.decided;
}

std::int64_t CtConsensus::decision(std::int32_t cid) const {
  const std::vector<std::int64_t>& values = decision_values(cid);
  return values.empty() ? 0 : values.front();
}

const std::vector<std::int64_t>& CtConsensus::decision_values(std::int32_t cid) const {
  const auto it = instances_.find(cid);
  if (it == instances_.end() || !it->second.decided) {
    throw std::logic_error{"CtConsensus: no decision yet"};
  }
  return it->second.decision;
}

std::int32_t CtConsensus::rounds_used(std::int32_t cid) const {
  const auto it = instances_.find(cid);
  if (it == instances_.end()) return 0;
  return it->second.decided ? it->second.decision_round : it->second.round;
}

}  // namespace sanperf::consensus
