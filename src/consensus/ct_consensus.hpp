// The Chandra-Toueg consensus algorithm for the <>S failure detector
// (Chandra & Toueg, JACM 1996), as analysed by the paper.
//
// Rotating coordinator, asynchronous rounds, four phases per round:
//   1. every process sends its (estimate, ts) to the round's coordinator;
//   2. the coordinator waits for a majority of estimates, picks the one
//      with the largest timestamp and broadcasts it as the proposal;
//   3. every process waits for the proposal -- on reception it adopts the
//      value (ts := round) and acks; if instead its failure detector
//      suspects the coordinator it nacks -- and then moves to the next
//      round immediately;
//   4. the coordinator waits for replies: a single nack sends it to the
//      next round (the paper's formulation); a majority of acks lets it
//      decide and broadcast the decision.
//
// The coordinator handles its own estimate/proposal/ack locally (no
// network traffic). Requires a majority of correct processes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "consensus/durable_log.hpp"
#include "consensus/instance_gc.hpp"
#include "consensus/layer_audit.hpp"
#include "consensus/membership.hpp"
#include "fd/failure_detector.hpp"
#include "runtime/process.hpp"

namespace sanperf::consensus {

using fd::FailureDetector;
using runtime::HostId;
using runtime::Message;
using runtime::MsgKind;

struct DecisionEvent {
  std::int32_t cid = 0;
  std::int64_t value = 0;       ///< first decided value (scalar view)
  std::int32_t round = 0;       ///< round in which the decision was reached
  des::TimePoint at;
  HostId by = 0;
  /// Full decided batch; one entry per client value the instance carried
  /// (a single entry for unbatched proposals).
  std::vector<std::int64_t> values;
};

class CtConsensus : public runtime::Layer {
 public:
  /// `fd` must outlive the layer; its suspicions drive phase-3 nacks.
  explicit CtConsensus(FailureDetector& fd);

  void on_start() override;
  void on_message(const Message& m) override;
  void on_crash() override;
  /// Warm restart. Without a durable log, consensus state is volatile: a
  /// rebooted process forgets every in-flight instance and rejoins
  /// passively -- it takes part in instances proposed after the restart,
  /// and learns old decisions only through DECIDE messages (never
  /// re-reporting them). With the log enabled, the logged suffix is
  /// replayed instead: each undecided in-flight instance re-enters its
  /// logged round and broadcasts a REPLAYQ so peers re-send the round
  /// traffic missed while down.
  void on_restart() override;

  /// Starts instance `cid` with this process's initial value.
  void propose(std::int32_t cid, std::int64_t value);
  /// Batched form: the instance carries a whole vector of client values
  /// (one Batcher batch); agreement is on the vector as a unit.
  void propose(std::int32_t cid, std::vector<std::int64_t> values);

  /// Round-robins the *round-1* coordinator across instances (`cid % n`)
  /// instead of always host 0, so a single host crash stalls only 1/n of a
  /// streamed workload instead of every instance. Off by default: the
  /// paper's experiments pin host 0 (Section 2.1 rotates only across
  /// rounds), and the goldens depend on that.
  void set_rotate_coordinators(bool on) { rotate_coordinators_ = on; }

  /// Enables the stable-storage write-ahead log: per-instance state is
  /// recorded before every externally visible protocol step (each record
  /// charging the configured persistence latency on a serialized device
  /// tail), and on_restart replays it so the process rejoins in-flight
  /// instances. Disabled (the default) the layer is bit-exact with the
  /// volatile warm-restart model.
  void set_durable_log(const DurableLogConfig& cfg) { log_.configure(cfg); }
  [[nodiscard]] const DurableLog& durable_log() const { return log_; }

  /// Attaches the cluster's dynamic membership view (nullptr = fixed
  /// membership over all n hosts, bit-exact with the static code paths).
  /// Instances capture the epoch current at first touch and resolve
  /// coordinator rotation, majority size and broadcast fan-out against
  /// that epoch's member set for their whole life. `view` must outlive
  /// the layer.
  void set_membership(const MembershipView* view) { view_ = view; }

  /// Aggregate protocol counters across all instances (diagnostics).
  struct Stats {
    std::uint64_t rounds_entered = 0;
    std::uint64_t estimates_sent = 0;
    std::uint64_t proposals_sent = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t nacks_sent = 0;
    std::uint64_t rounds_aborted = 0;  ///< as coordinator, on a nack
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  [[nodiscard]] bool has_decided(std::int32_t cid) const;
  [[nodiscard]] std::int64_t decision(std::int32_t cid) const;
  [[nodiscard]] const std::vector<std::int64_t>& decision_values(std::int32_t cid) const;
  [[nodiscard]] std::int32_t rounds_used(std::int32_t cid) const;

  /// Called on every local decision (first delivery per instance).
  void set_decide_callback(std::function<void(const DecisionEvent&)> cb) {
    on_decide_ = std::move(cb);
  }

  /// When true, a process that learns a decision re-broadcasts it once
  /// (full reliable-broadcast behaviour). Off by default: the coordinator's
  /// own broadcast suffices in crash-free tails and the paper's latency
  /// metric stops at the first decision anyway.
  void set_relay_decide(bool relay) { relay_decide_ = relay; }

  /// When enabled, an instance's state is discarded once this process has
  /// decided it (and handled the decide broadcast), so a long stream of
  /// instances runs in O(in-flight) memory instead of O(stream length).
  /// Late messages for a collected instance are ignored exactly as they
  /// were for a decided one; has_decided stays true for collected cids, but
  /// decision()/rounds_used() no longer answer for them -- workloads that
  /// query decisions after the run keep it off (the default).
  void set_gc_decided(bool on) { gc_.enable(on); }
  /// Instances currently holding state (streams with GC keep this bounded
  /// by the in-flight window).
  [[nodiscard]] std::size_t active_instances() const { return instances_.size(); }
  /// High-water mark of active_instances over the layer's lifetime.
  [[nodiscard]] std::size_t peak_active_instances() const { return peak_active_; }
  [[nodiscard]] std::uint64_t instances_collected() const { return gc_.collected_count(); }

#if SANPERF_AUDIT_ENABLED
  /// Test-only corruption backdoor: forgets that `cid` decided (the decided
  /// flag, the pending flag and the broadcast marker), so a re-delivered
  /// DECIDE re-drives the decide path and the no-double-decide audit trips.
  void audit_corrupt_clear_decided(std::int32_t cid);
  /// Test-only: mutable log access for corrupting records between a crash
  /// and its replay (the replay-matches-precrash audit must notice).
  [[nodiscard]] DurableLog& audit_mutable_log() { return log_; }
#endif

 private:
  enum class Phase : std::uint8_t {
    kIdle,            ///< not started
    kCoordWaitEst,    ///< phase 2 (self is coordinator)
    kWaitProp,        ///< phase 3 (participant waiting for the proposal)
    kCoordWaitReply,  ///< phase 4 (self is coordinator)
    kDone,
  };

  struct EstimateSet {
    std::int32_t count = 0;   ///< estimates received (including the local one)
    std::vector<std::int64_t> best_value;
    std::int32_t best_ts = -1;

    void add(const std::vector<std::int64_t>& value, std::int32_t ts) {
      ++count;
      if (ts > best_ts) {
        best_ts = ts;
        best_value = value;
      }
    }
  };

  struct Instance {
    bool started = false;
    bool decided = false;
    bool decide_pending = false;  ///< decision record still persisting
    bool decide_broadcast = false;
    /// Membership epoch the instance runs under, captured at first touch
    /// (locally from the view at launch, remotely from Message::view_epoch)
    /// and fixed for the instance's life -- quorum size never changes
    /// mid-flight.
    std::uint32_t epoch = 0;
    bool epoch_set = false;
    std::vector<std::int64_t> decision;
    std::int32_t decision_round = 0;
    std::int32_t round = 0;  ///< current round, 1-based; 0 before start
    Phase phase = Phase::kIdle;
    std::vector<std::int64_t> estimate;
    std::int32_t ts = 0;
    std::map<std::int32_t, EstimateSet> ests;       // per round
    std::map<std::int32_t, std::int32_t> acks;      // per round (incl. own)
    std::map<std::int32_t, std::int32_t> nacks;     // per round
    std::map<std::int32_t, Message> buffered_props; // proposals for future rounds
    /// Replay dedup (durable recovery only): the round on_restart restored
    /// and the estimate senders already tallied for it. A peer's normal
    /// round-entry send can race its REPLAYQ re-send; the count-based
    /// estimate tally must count each peer once. -1 = not a restored round.
    std::int32_t replay_round = -1;
    std::set<HostId> replay_seen;
  };

  [[nodiscard]] HostId coordinator_of(std::int32_t cid, const Instance& inst,
                                      std::int32_t round) const;
  [[nodiscard]] std::int32_t majority(const Instance& inst) const;
  /// Stamps the instance's epoch and sends within its member set (plain
  /// Process::send/broadcast under fixed membership -- identical order).
  void ucast(const Instance& inst, Message m, HostId dst);
  void bcast(const Instance& inst, Message m);
  void touch_epoch(Instance& inst, std::uint32_t epoch) {
    if (!inst.epoch_set) {
      inst.epoch_set = true;
      inst.epoch = epoch;
    }
  }
  /// Runs `fn` after one durable append completes: inline when the log is
  /// disabled or the latency is 0, else after the charged delay (the timer
  /// is epoch-guarded, so a crash mid-write kills the step -- replay
  /// re-drives it).
  void durable_apply(std::function<void()> fn);
  /// Folds the instance's replayable state into its log record (no charge;
  /// charges happen at the write-ahead points that defer a visible step).
  void record_state(std::int32_t cid, const Instance& inst);
  void handle_replay_query(const Message& m);

  Instance& instance(std::int32_t cid) {
    Instance& inst = instances_[cid];
    if (instances_.size() > peak_active_) peak_active_ = instances_.size();
    return inst;
  }
  void advance_round(std::int32_t cid, Instance& inst);
  void record_estimate(std::int32_t cid, Instance& inst, std::int32_t round,
                       const std::vector<std::int64_t>& value, std::int32_t ts);
  void maybe_propose(std::int32_t cid, Instance& inst);
  void handle_proposal(std::int32_t cid, Instance& inst, const Message& m);
  void maybe_conclude_round(std::int32_t cid, Instance& inst);
  void decide(std::int32_t cid, Instance& inst, const std::vector<std::int64_t>& value,
              std::int32_t round);
  void finish_decide(std::int32_t cid, Instance& inst);
  void send_nack(std::int32_t cid, Instance& inst);
  void on_suspicion(HostId peer, bool suspected);
#if SANPERF_AUDIT_ENABLED
  void audit_check_sender(const Instance& inst, const Message& m) const;
  void audit_check_replay();
#endif

  FailureDetector* fd_;
  DurableLog log_;
  const MembershipView* view_ = nullptr;
  std::map<std::int32_t, Instance> instances_;
  detail::InstanceGc gc_;
  std::size_t peak_active_ = 0;
  std::function<void(const DecisionEvent&)> on_decide_;
  Stats stats_;
  bool relay_decide_ = false;
  bool rotate_coordinators_ = false;
  SANPERF_AUDIT_ONLY(detail::LayerAudit audit_;)
};

}  // namespace sanperf::consensus
