// A stable-storage write-ahead log for consensus state.
//
// The paper's crash model is warm restart with volatile-state loss: a
// rebooted process forgets every in-flight instance. DurableLog is the
// production-shaped alternative -- CT and MR write their per-instance
// estimate/round/decision records through it before any externally visible
// step (the write-ahead rule: log happens-before send), and on_restart
// replays the log so the process re-enters the rounds it was in.
//
// The model is fsync-free in-DES: no bytes hit a disk, but every append is
// charged `append_latency_ms` of *simulated* time on a serialized device
// tail (appends queue behind each other like writes on one log device), so
// durability has a measurable cost in the scenarios. With the latency at 0
// -- or the log disabled -- appends complete inline and never touch the
// event queue or an RNG, so the degenerate configuration is bit-exact with
// the volatile engine (crashes aside).
//
// Compaction follows the layer's InstanceGc watermark: everything below the
// GC floor is folded into a snapshot counter and truncated, bit-exactly
// (replay after compaction reproduces exactly the live suffix), so the log
// stays O(in-flight window) like the instance map.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/audit.hpp"

namespace sanperf::consensus {

struct DurableLogConfig {
  bool enabled = false;
  /// Simulated stable-storage latency charged per append (serialized on
  /// the device: concurrent appends queue). 0 = durable state with a free
  /// write path (useful to isolate replay semantics from timing).
  double append_latency_ms = 0.0;
};

class DurableLog {
 public:
  /// The replayable state of one instance: the last write wins per field
  /// group, which is exactly what an append-only record stream folds to.
  struct InstanceState {
    bool started = false;            ///< this process proposed
    bool decided = false;
    std::vector<std::int64_t> estimate;
    std::int32_t ts = 0;             ///< estimate timestamp (CT) / 0 (MR)
    std::int32_t round = 0;          ///< highest round entered when logged
    std::vector<std::int64_t> decision;
    std::int32_t decision_round = 0;
    std::uint32_t epoch = 0;         ///< membership epoch of the instance
    /// MR-only: whether (and with what) this process voted AUX in `round`.
    /// Replay must rebuild the exact local vote -- re-sending it instead
    /// would double-count in the peers' tallies, and inventing it could
    /// flip bottom/value.
    bool aux_sent = false;
    bool aux_bottom = false;
    std::vector<std::int64_t> aux_value;
  };

  struct Stats {
    std::uint64_t appends = 0;        ///< records written (lifetime)
    std::uint64_t compactions = 0;    ///< snapshot+truncate passes that freed records
    std::uint64_t truncated = 0;      ///< instance records folded into the snapshot
    std::uint64_t replayed = 0;       ///< instances rebuilt across restarts
  };

  DurableLog() = default;

  void configure(const DurableLogConfig& cfg) { cfg_ = cfg; }
  [[nodiscard]] bool enabled() const { return cfg_.enabled; }

  /// Charges one append at `now_ms` on the serialized device tail and
  /// returns the completion delay (0 when the latency is 0). Call only when
  /// enabled.
  double charge_ms(double now_ms) {
    ++stats_.appends;
    if (!(cfg_.append_latency_ms > 0)) return 0.0;
    tail_ms_ = std::max(now_ms, tail_ms_) + cfg_.append_latency_ms;
    return tail_ms_ - now_ms;
  }

  /// The mutable record of `cid`, created on first write. The caller owns
  /// what to store; the log only folds appends into last-write-wins state.
  InstanceState& state(std::int32_t cid) { return states_[cid]; }

  [[nodiscard]] const std::map<std::int32_t, InstanceState>& entries() const { return states_; }

  /// Snapshot + truncate everything below the GC watermark: those instances
  /// decided everywhere (or were written off past every give-up deadline),
  /// so replay must not resurrect them. Bit-exact: the surviving suffix is
  /// untouched.
  void compact(std::int32_t floor) {
#if SANPERF_AUDIT_ENABLED
    // Compaction follows the GC watermark, which only advances; truncating
    // to a lower floor would mean records already folded into the snapshot
    // could be asked for again.
    SANPERF_AUDIT_CHECK("consensus.gc_watermark_monotonic", floor >= audit_compact_floor_,
                        "log compacted to floor " + std::to_string(floor) + " below " +
                            std::to_string(audit_compact_floor_));
    if (floor > audit_compact_floor_) audit_compact_floor_ = floor;
#endif
    const auto end = states_.lower_bound(floor);
    if (end == states_.begin()) return;
    stats_.truncated +=
        static_cast<std::uint64_t>(std::distance(states_.begin(), end));
    states_.erase(states_.begin(), end);
    ++stats_.compactions;
  }

  void note_replayed(std::uint64_t instances) { stats_.replayed += instances; }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  DurableLogConfig cfg_;
  std::map<std::int32_t, InstanceState> states_;
  double tail_ms_ = 0.0;  ///< completion time of the last append (device tail)
  Stats stats_;
#if SANPERF_AUDIT_ENABLED
  std::int32_t audit_compact_floor_ = 0;  ///< highest floor ever compacted to
#endif
};

}  // namespace sanperf::consensus
