// Garbage collection of decided consensus instances.
//
// A consensus layer multiplexes many instances (keyed by cid) over one
// process; a steady-state workload streams thousands of them through a
// persistent cluster, so retaining every decided instance's round state
// would grow memory linearly with stream length. InstanceGc remembers
// *that* a collected instance decided in O(reordering window) space: a
// watermark covers the decided prefix (streams issue cids in order, so the
// prefix advances steadily) and a small set holds decided cids above it.
//
// Collection is deferred: decide() runs deep inside message handlers that
// hold references into the instance map, so the layer only *marks* an
// instance ready and sweeps at its public entry points (propose,
// on_message), where no instance reference is live.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/audit.hpp"

namespace sanperf::consensus::detail {

class InstanceGc {
 public:
  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// True when `cid` decided and its state has been discarded.
  [[nodiscard]] bool collected(std::int32_t cid) const {
    return enabled_ && (cid < floor_ || out_of_order_.count(cid) > 0);
  }

  /// Marks a terminal (decided, decide-broadcast handled) instance for the
  /// next sweep. Safe to call from any depth.
  void mark(std::int32_t cid) {
    if (enabled_) ready_.push_back(cid);
  }

  /// Discards every marked instance from `instances` and records it as
  /// collected. Call only from entry points where no Instance& is live.
  template <typename Map>
  void sweep(Map& instances) {
#if SANPERF_AUDIT_ENABLED
    // The watermark is a promise ("everything below decided or was written
    // off"); moving it backwards would resurrect collected instances as
    // undecided. Checked at every sweep against its own high-water mark.
    SANPERF_AUDIT_CHECK("consensus.gc_watermark_monotonic", floor_ >= audit_floor_seen_,
                        "floor moved back to " + std::to_string(floor_) + " from " +
                            std::to_string(audit_floor_seen_));
    if (floor_ > audit_floor_seen_) audit_floor_seen_ = floor_;
#endif
    if (!enabled_ || ready_.empty()) return;
    for (const std::int32_t cid : ready_) {
      // Note the decision even when the state is already gone (a warm
      // restart cleared the map between mark and sweep): the watermark
      // must still advance past it.
      if (instances.erase(cid) > 0) ++collected_;
      note_decided(cid);
    }
    ready_.clear();
    // A gap write-off may have advanced the watermark past live
    // never-decided entries; their state is unreachable now (every entry
    // point short-circuits on collected()), so drop it.
    instances.erase(instances.begin(), instances.lower_bound(floor_));
    // Record the post-advance watermark too, or a rewind between two
    // sweeps would hide below the previous entry's stale high-water mark.
    SANPERF_AUDIT_ONLY(if (floor_ > audit_floor_seen_) audit_floor_seen_ = floor_;)
  }

  /// Lifetime count of collected instances.
  [[nodiscard]] std::uint64_t collected_count() const { return collected_; }
  /// Decided cids currently held above the watermark (the reordering
  /// window); bounded by decision skew, not stream length.
  [[nodiscard]] std::size_t out_of_order_size() const { return out_of_order_.size(); }
  [[nodiscard]] std::int32_t floor() const { return floor_; }

  /// Out-of-order decisions retained above the watermark before the gap
  /// below them is written off. A process that misses decisions outright
  /// (it was crashed while the cluster decided them) would otherwise pin
  /// the watermark forever and grow the set with the stream. An instance
  /// this far behind the decision frontier is long past every give-up
  /// deadline, so the gap cids are treated as collected -- including, as
  /// the give-up semantics, any that never decided here: they then report
  /// has_decided() and stop participating.
  static constexpr std::size_t kMaxOutOfOrder = 256;

#if SANPERF_AUDIT_ENABLED
  /// Test-only corruption backdoor: rewinds the watermark without touching
  /// the audit high-water mark, so the next sweep trips the monotonicity
  /// check.
  void audit_corrupt_floor(std::int32_t floor) { floor_ = floor; }
#endif

 private:
  void note_decided(std::int32_t cid) {
    if (cid < floor_) return;
    if (cid == floor_) {
      ++floor_;
      absorb_contiguous();
      return;
    }
    out_of_order_.insert(cid);
    while (out_of_order_.size() > kMaxOutOfOrder) {
      floor_ = *out_of_order_.begin();  // write off the gap below the oldest
      absorb_contiguous();
    }
  }

  void absorb_contiguous() {
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && *it == floor_) {
      it = out_of_order_.erase(it);
      ++floor_;
    }
  }

  bool enabled_ = false;
  std::int32_t floor_ = 0;               ///< every cid below it is collected
  std::set<std::int32_t> out_of_order_;  ///< collected cids >= floor_
  std::vector<std::int32_t> ready_;      ///< decided, awaiting the next sweep
  std::uint64_t collected_ = 0;
#if SANPERF_AUDIT_ENABLED
  std::int32_t audit_floor_seen_ = 0;  ///< high-water mark of floor_ at sweeps
#endif
};

}  // namespace sanperf::consensus::detail
