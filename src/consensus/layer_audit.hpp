// Audit-only shadow state shared by the consensus layers (CT and MR).
//
// A LayerAudit records what a consensus layer has irrevocably committed to
// (decisions per incarnation, the state standing at the last crash) so the
// SANPERF_AUDIT build can prove safety properties the protocol itself only
// promises: no instance decides twice, durable replay reproduces the
// pre-crash trajectory. The shadow is written by the layer and read only by
// audit checks -- no protocol branch ever consults it, so the simulation is
// bit-identical with the audit compiled out.
#pragma once

#include "core/audit.hpp"

#if SANPERF_AUDIT_ENABLED

#include <cstdint>
#include <map>
#include <vector>

namespace sanperf::consensus::detail {

struct LayerAudit {
  struct Snapshot {
    std::int32_t round = 0;
    bool decided = false;  ///< decided or decide-pending (record already durable)
    std::uint64_t decision_hash = 0;
  };

  /// cid -> hash of the decided value vector, one ledger per incarnation.
  /// Cleared on a volatile restart: the rebooted process legitimately
  /// re-learns old decisions through DECIDE messages. Grows with the stream
  /// in audit builds (a map of two ints per instance) -- acceptable for the
  /// quick campaigns the audit CI job runs.
  std::map<std::int32_t, std::uint64_t> decided;

  /// Per-instance state captured by on_crash; consumed by the replay check
  /// after a durable on_restart.
  std::map<std::int32_t, Snapshot> precrash;

  /// FNV-1a over the value vector: enough to detect a decision changing
  /// across a replay or between two decide paths.
  static std::uint64_t hash_values(const std::vector<std::int64_t>& values) {
    std::uint64_t h = 1469598103934665603ull;
    for (const std::int64_t v : values) {
      h ^= static_cast<std::uint64_t>(v);
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace sanperf::consensus::detail

#endif  // SANPERF_AUDIT_ENABLED
