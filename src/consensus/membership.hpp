// Dynamic group membership as an epoch history.
//
// The paper's cluster is a fixed set of n hosts; a production-shaped stream
// must grow, shrink and roll-restart the group while instances are in
// flight. A MembershipView is the shared oracle for that: an append-only
// history of member sets, one per epoch, advanced view-synchronously by the
// workload engine at the instant a membership-change instance decides (the
// change is itself agreed in-stream, joint-consensus style, so every host
// observes the same epoch sequence at the same simulated instants).
//
// Consensus instances capture the epoch current at their launch and keep
// using that epoch's member set for coordinator rotation, majority size and
// broadcast fan-out until they decide -- two instances straddling a change
// may legitimately run under different member sets, but no single instance
// ever changes quorum size mid-flight (the 3 -> 5 growth hazard: an
// in-flight majority of 2 must not silently become 3). Messages carry the
// instance's epoch (Message::view_epoch) so late joiners adopt it.
//
// A null view everywhere means "all n hosts, forever" and is bit-exact with
// the fixed-membership code paths.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace sanperf::consensus {

/// Same underlying type as runtime::HostId (kept dependency-free: the
/// workload engine and the fd layer both include this header).
using MemberId = std::uint32_t;

/// True when a (normalized: sorted, duplicate-free) member set is exactly
/// every host 0..n-1 -- the case where a member-wise fan-out is identical
/// to Process::broadcast and can take the pooled single-frame path.
[[nodiscard]] inline bool covers_all_hosts(const std::vector<MemberId>& members, std::size_t n) {
  return members.size() == n && members.front() == 0 &&
         members.back() == static_cast<MemberId>(n - 1);
}

class MembershipView {
 public:
  using Epoch = std::uint32_t;
  /// Notified after every epoch advance with the new epoch. Listeners run
  /// in registration order (the engine registers per-host layers in pid
  /// order, so notification order is deterministic).
  using Listener = std::function<void(Epoch)>;

  explicit MembershipView(std::vector<MemberId> members) {
    normalize(members, "initial");
    history_.push_back(std::move(members));
  }

  [[nodiscard]] Epoch epoch() const { return static_cast<Epoch>(history_.size() - 1); }
  [[nodiscard]] const std::vector<MemberId>& members() const { return history_.back(); }
  /// The member set of a specific epoch; every epoch ever installed stays
  /// addressable (in-flight instances keep resolving their launch epoch).
  [[nodiscard]] const std::vector<MemberId>& members_at(Epoch epoch) const {
    if (epoch >= history_.size()) {
      throw std::out_of_range{"MembershipView: epoch from the future"};
    }
    return history_[epoch];
  }
  [[nodiscard]] bool is_member(MemberId host) const { return contains(members(), host); }
  [[nodiscard]] bool is_member_at(Epoch epoch, MemberId host) const {
    return contains(members_at(epoch), host);
  }

  /// Installs the next epoch with `host` added / removed. Engine-only: call
  /// at the instant the membership-change instance decides. Returns the new
  /// epoch after notifying every listener.
  Epoch add(MemberId host) {
    std::vector<MemberId> next = members();
    if (contains(next, host)) throw std::invalid_argument{"MembershipView: already a member"};
    next.push_back(host);
    return install(std::move(next));
  }
  Epoch remove(MemberId host) {
    std::vector<MemberId> next = members();
    const auto it = std::find(next.begin(), next.end(), host);
    if (it == next.end()) throw std::invalid_argument{"MembershipView: not a member"};
    next.erase(it);
    if (next.empty()) throw std::invalid_argument{"MembershipView: cannot empty the group"};
    return install(std::move(next));
  }

  void add_listener(Listener listener) { listeners_.push_back(std::move(listener)); }

 private:
  static bool contains(const std::vector<MemberId>& members, MemberId host) {
    return std::find(members.begin(), members.end(), host) != members.end();
  }

  static void normalize(std::vector<MemberId>& members, const char* what) {
    if (members.empty()) {
      throw std::invalid_argument{std::string{"MembershipView: empty "} + what + " member set"};
    }
    std::sort(members.begin(), members.end());
    if (std::adjacent_find(members.begin(), members.end()) != members.end()) {
      throw std::invalid_argument{std::string{"MembershipView: duplicate "} + what + " member"};
    }
  }

  Epoch install(std::vector<MemberId> next) {
    normalize(next, "next-epoch");
    history_.push_back(std::move(next));
    const Epoch e = epoch();
    for (const Listener& l : listeners_) l(e);
    return e;
  }

  std::vector<std::vector<MemberId>> history_;  ///< index = epoch
  std::vector<Listener> listeners_;
};

}  // namespace sanperf::consensus
