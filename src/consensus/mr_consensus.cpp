#include "consensus/mr_consensus.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "consensus/payload.hpp"

namespace sanperf::consensus {

MrConsensus::MrConsensus(FailureDetector& fd) : fd_{&fd} {}

void MrConsensus::on_start() {
  fd_->add_listener([this](HostId peer, bool suspected) { on_suspicion(peer, suspected); });
}

HostId MrConsensus::coordinator_of(std::int32_t cid, const Instance& inst,
                                   std::int32_t round) const {
  if (view_ == nullptr) {
    const auto n = static_cast<std::int32_t>(process().n());
    const std::int32_t offset = rotate_coordinators_ ? cid % n : 0;
    return static_cast<HostId>((offset + round - 1) % n);
  }
  const std::vector<MemberId>& members = view_->members_at(inst.epoch);
  const auto m = static_cast<std::int32_t>(members.size());
  const std::int32_t offset = rotate_coordinators_ ? cid % m : 0;
  return static_cast<HostId>(members[static_cast<std::size_t>((offset + round - 1) % m)]);
}

std::int32_t MrConsensus::majority(const Instance& inst) const {
  const std::size_t group =
      view_ == nullptr ? process().n() : view_->members_at(inst.epoch).size();
  return static_cast<std::int32_t>(group / 2 + 1);
}

void MrConsensus::ucast(const Instance& inst, Message m, HostId dst) {
  m.view_epoch = inst.epoch;
  process().send(std::move(m), dst);
}

void MrConsensus::bcast(const Instance& inst, Message m) {
  m.view_epoch = inst.epoch;
  if (view_ == nullptr) {
    process().broadcast(std::move(m));
    return;
  }
  // Full-coverage epochs take the pooled single-frame broadcast (identical
  // fan-out; see CtConsensus::bcast).
  const std::vector<MemberId>& members = view_->members_at(inst.epoch);
  if (covers_all_hosts(members, process().n())) {
    process().broadcast(std::move(m));
    return;
  }
  for (const MemberId peer : members) {
    if (static_cast<HostId>(peer) == process().id()) continue;
    process().send(m, static_cast<HostId>(peer));
  }
}

void MrConsensus::durable_apply(std::function<void()> fn) {
  if (!log_.enabled()) {
    fn();
    return;
  }
  const double delay = log_.charge_ms(process().now().to_ms());
  if (!(delay > 0)) {
    fn();
    return;
  }
  process().set_timer(des::Duration::from_ms(delay), std::move(fn));
}

void MrConsensus::record_state(std::int32_t cid, const Instance& inst) {
  if (!log_.enabled()) return;
  DurableLog::InstanceState& rec = log_.state(cid);
  rec.started = inst.started;
  rec.estimate = inst.estimate;
  rec.round = inst.round;
  rec.epoch = inst.epoch;
  rec.aux_sent = false;  // send_aux re-records once the round's vote is cast
}

void MrConsensus::propose(std::int32_t cid, std::int64_t value) {
  propose(cid, std::vector<std::int64_t>{value});
}

void MrConsensus::propose(std::int32_t cid, std::vector<std::int64_t> values) {
  gc_.sweep(instances_);
  if (log_.enabled()) log_.compact(gc_.floor());  // log tracks the GC watermark
  if (gc_.collected(cid)) return;  // decided before we proposed, state gone
  Instance& inst = instance(cid);
  if (inst.started) throw std::logic_error{"MrConsensus: instance already proposed"};
  inst.started = true;
  touch_epoch(inst, view_ != nullptr ? view_->epoch() : 0);
  if (inst.decided) {
    if (on_decide_) {
      const std::int64_t head = inst.decision.empty() ? 0 : inst.decision.front();
      on_decide_({cid, head, inst.decision_round, process().now(), process().id(),
                  inst.decision});
    }
    return;
  }
  if (inst.decide_pending) return;  // finish_decide reports once the record lands
  inst.estimate = std::move(values);
  if (!log_.enabled()) {
    advance_round(cid, inst);
    return;
  }
  // Write-ahead: the proposal record persists before round 1 is entered.
  record_state(cid, inst);
  durable_apply([this, cid] {
    const auto it = instances_.find(cid);
    if (it == instances_.end() || gc_.collected(cid)) return;
    Instance& i = it->second;
    if (i.round == 0 && !i.decided && !i.decide_pending) advance_round(cid, i);
  });
}

void MrConsensus::advance_round(std::int32_t cid, Instance& inst) {
  ++inst.round;
  ++stats_.rounds_entered;
  const std::int32_t r = inst.round;
  record_state(cid, inst);  // round entry is replayable state
  const HostId coord = coordinator_of(cid, inst, r);

  if (coord == process().id()) {
    // Phase 1: broadcast the coordinator's estimate; it reaches ourselves
    // instantly (we ARE the coordinator).
    Message est;
    est.kind = MsgKind::kCoordEst;
    est.cid = cid;
    est.round = r;
    detail::set_payload(est, inst.estimate);
    bcast(inst, est);
    ++stats_.coord_broadcasts;
    send_aux(cid, inst, /*bottom=*/false, inst.estimate);
    return;
  }

  // Phase 2: wait for the coordinator's value -- unless it already arrived
  // (we lag behind) or the coordinator is suspected right away.
  const auto buffered = inst.coord_ests.find(r);
  if (buffered != inst.coord_ests.end()) {
    send_aux(cid, inst, /*bottom=*/false, buffered->second);
    return;
  }
  if (fd_->is_suspected(coord)) {
    send_aux(cid, inst, /*bottom=*/true, {});
    return;
  }
  inst.phase = Phase::kWaitCoord;
}

void MrConsensus::send_aux(std::int32_t cid, Instance& inst, bool bottom,
                           const std::vector<std::int64_t>& value) {
  const std::int32_t r = inst.round;
  Message aux;
  aux.kind = MsgKind::kAux;
  aux.cid = cid;
  aux.round = r;
  aux.view_epoch = inst.epoch;
  detail::set_payload(aux, value);
  aux.ts = bottom ? 1 : 0;  // ts doubles as the bottom flag
  if (log_.enabled()) {
    // Persist the vote before it leaves: replay must rebuild exactly this
    // AUX (never re-send it -- the peers' tallies are count-based), and a
    // REPLAYQ may ask for it long after we moved past round r.
    DurableLog::InstanceState& rec = log_.state(cid);
    rec.aux_sent = true;
    rec.aux_bottom = bottom;
    rec.aux_value = value;
    inst.sent_aux.emplace(r, aux);
  }
  const std::uint32_t epoch = inst.epoch;
  durable_apply([this, epoch, aux = std::move(aux)] {
    if (view_ == nullptr) {
      process().broadcast(aux);
      return;
    }
    const std::vector<MemberId>& members = view_->members_at(epoch);
    if (covers_all_hosts(members, process().n())) {
      process().broadcast(aux);
      return;
    }
    for (const MemberId peer : members) {
      if (static_cast<HostId>(peer) == process().id()) continue;
      process().send(aux, static_cast<HostId>(peer));
    }
  });
  ++stats_.aux_broadcasts;
  if (bottom) ++stats_.bottom_aux;

  // Record our own AUX locally (a process counts itself).
  AuxSet& set = inst.aux[r];
  if (bottom) {
    ++set.bottom_count;
  } else {
    ++set.value_count;
    set.value = value;
  }
  inst.phase = Phase::kWaitAux;
  maybe_conclude(cid, inst);
}

void MrConsensus::maybe_conclude(std::int32_t cid, Instance& inst) {
  if (inst.phase != Phase::kWaitAux) return;
  const std::int32_t r = inst.round;
  AuxSet& set = inst.aux[r];
  if (set.value_count + set.bottom_count < majority(inst)) return;

  // Phase 3 on the first majority of AUX values.
  if (set.bottom_count == 0) {
    decide(cid, inst, set.value, r);
    return;
  }
  if (set.value_count > 0) inst.estimate = set.value;
  advance_round(cid, inst);
}

void MrConsensus::decide(std::int32_t cid, Instance& inst, const std::vector<std::int64_t>& value,
                         std::int32_t round) {
  if (inst.decided || inst.decide_pending) return;
  inst.decision = value;
  inst.decision_round = round;
  inst.phase = Phase::kDone;
  if (!log_.enabled()) {
    finish_decide(cid, inst);
    return;
  }
  // Write-ahead: the decision record persists before delivery and
  // dissemination (see CtConsensus::decide for the crash-window contract).
  inst.decide_pending = true;
  record_state(cid, inst);
  DurableLog::InstanceState& rec = log_.state(cid);
  rec.decided = true;
  rec.decision = value;
  rec.decision_round = round;
  durable_apply([this, cid] {
    const auto it = instances_.find(cid);
    if (it == instances_.end() || !it->second.decide_pending) return;
    finish_decide(cid, it->second);
  });
}

void MrConsensus::finish_decide(std::int32_t cid, Instance& inst) {
#if SANPERF_AUDIT_ENABLED
  // One decision per instance per incarnation (see CtConsensus).
  SANPERF_AUDIT_CHECK(
      "consensus.no_double_decide",
      audit_.decided.emplace(cid, detail::LayerAudit::hash_values(inst.decision)).second,
      "instance " + std::to_string(cid) + " decided twice on host " +
          std::to_string(process().id()));
#endif
  inst.decided = true;
  inst.decide_pending = false;
  if (on_decide_ && inst.started) {
    const std::int64_t head = inst.decision.empty() ? 0 : inst.decision.front();
    on_decide_({cid, head, inst.decision_round, process().now(), process().id(),
                inst.decision});
  }
  if (!inst.decide_broadcast) {
    inst.decide_broadcast = true;
    Message dec;
    dec.kind = MsgKind::kDecide;
    dec.cid = cid;
    dec.round = inst.decision_round;
    detail::set_payload(dec, inst.decision);
    bcast(inst, dec);
  }
  gc_.mark(cid);  // terminal: collected at the next entry-point sweep
}

void MrConsensus::on_message(const Message& m) {
  if (m.kind != MsgKind::kCoordEst && m.kind != MsgKind::kAux && m.kind != MsgKind::kDecide &&
      m.kind != MsgKind::kReplayQuery) {
    return;
  }
  gc_.sweep(instances_);
  if (gc_.collected(m.cid)) return;  // stale traffic for a collected instance
  if (m.kind == MsgKind::kReplayQuery) {
    handle_replay_query(m);  // find, never create
    return;
  }
  Instance& inst = instance(m.cid);
  touch_epoch(inst, m.view_epoch);
#if SANPERF_AUDIT_ENABLED
  audit_check_sender(inst, m);
  if (m.kind == MsgKind::kDecide && inst.decided) {
    // Agreement: every DECIDE for an instance must carry the value this
    // host already decided.
    SANPERF_AUDIT_CHECK("consensus.decision_agreement",
                        inst.decision.empty() || detail::payload_of(m) == inst.decision,
                        "conflicting DECIDE for instance " + std::to_string(m.cid) +
                            " from host " + std::to_string(m.from));
  }
#endif
  if (inst.decided || inst.decide_pending) return;

  switch (m.kind) {
    case MsgKind::kCoordEst:
      inst.coord_ests.emplace(m.round, detail::payload_of(m));
      if (inst.phase == Phase::kWaitCoord && m.round == inst.round) {
        send_aux(m.cid, inst, /*bottom=*/false, detail::payload_of(m));
      }
      break;

    case MsgKind::kAux: {
      // Restored-round dedup: drop a REPLAYQ re-send racing the original.
      if (m.round == inst.replay_round && !inst.replay_seen.insert(m.from).second) break;
      AuxSet& set = inst.aux[m.round];
      if (m.ts != 0) {
        ++set.bottom_count;
      } else {
        ++set.value_count;
        set.value = detail::payload_of(m);
      }
      if (m.round == inst.round) maybe_conclude(m.cid, inst);
      break;
    }

    case MsgKind::kDecide:
      inst.decide_broadcast = !relay_decide_;
      decide(m.cid, inst, detail::payload_of(m), m.round);
      break;

    default:
      break;
  }
}

void MrConsensus::on_suspicion(HostId peer, bool suspected) {
  if (!suspected) return;
  for (auto& [cid, inst] : instances_) {
    if (inst.started && !inst.decided && inst.phase == Phase::kWaitCoord &&
        coordinator_of(cid, inst, inst.round) == peer) {
      send_aux(cid, inst, /*bottom=*/true, {});
    }
  }
}

void MrConsensus::on_crash() {
#if SANPERF_AUDIT_ENABLED
  // Snapshot what a durable replay must reproduce (see CtConsensus).
  audit_.precrash.clear();
  for (const auto& [cid, inst] : instances_) {
    if (!inst.started && !inst.decided && !inst.decide_pending) continue;
    detail::LayerAudit::Snapshot snap;
    snap.round = inst.round;
    snap.decided = inst.decided || inst.decide_pending;
    snap.decision_hash = detail::LayerAudit::hash_values(inst.decision);
    audit_.precrash.emplace(cid, snap);
  }
#endif
}

void MrConsensus::on_restart() {
  instances_.clear();
  if (!log_.enabled()) {
    // Volatile restart: the audit ledgers reset with the state (a fresh
    // incarnation may legitimately re-learn old decisions).
    SANPERF_AUDIT_ONLY(audit_.decided.clear(); audit_.precrash.clear();)
    return;
  }
  log_.compact(gc_.floor());
  std::uint64_t replayed = 0;
  const auto entries = log_.entries();  // snapshot; see CtConsensus::on_restart
  for (const auto& [cid, rec] : entries) {
    if (gc_.collected(cid)) continue;
    Instance& inst = instance(cid);
    inst.started = rec.started;
    inst.epoch = rec.epoch;
    inst.epoch_set = true;
    inst.estimate = rec.estimate;
    if (rec.decided) {
      inst.decided = true;
      inst.decision = rec.decision;
      inst.decision_round = rec.decision_round;
      inst.phase = Phase::kDone;
      inst.decide_broadcast = true;  // never re-report or re-broadcast
      gc_.mark(cid);
      continue;
    }
    if (!rec.started) continue;
    ++replayed;
    if (rec.round < 1) {
      advance_round(cid, inst);  // crashed inside the propose append
    } else {
      inst.round = rec.round;
      inst.replay_round = rec.round;
      if (rec.aux_sent) {
        // Rebuild exactly our logged vote for the round: peers already
        // counted the broadcast, so only the local tally is restored; their
        // votes come back via REPLAYQ.
        AuxSet& set = inst.aux[inst.round];
        if (rec.aux_bottom) {
          ++set.bottom_count;
        } else {
          ++set.value_count;
          set.value = rec.aux_value;
        }
        inst.phase = Phase::kWaitAux;
        maybe_conclude(cid, inst);  // n = 1 corner
      } else {
        inst.phase = Phase::kWaitCoord;
      }
    }
    if (inst.decided || inst.decide_pending) continue;
    Message q;
    q.kind = MsgKind::kReplayQuery;
    q.cid = cid;
    q.round = inst.round;
    bcast(inst, q);
  }
  log_.note_replayed(replayed);
  SANPERF_AUDIT_ONLY(audit_check_replay();)
}

#if SANPERF_AUDIT_ENABLED
void MrConsensus::audit_check_sender(const Instance& inst, const Message& m) const {
  // Quorum membership (see CtConsensus::audit_check_sender).
  if (view_ == nullptr) {
    SANPERF_AUDIT_CHECK("consensus.quorum_in_epoch",
                        m.from < static_cast<HostId>(process().n()),
                        "sender " + std::to_string(m.from) + " outside the fixed group");
    return;
  }
  SANPERF_AUDIT_CHECK("consensus.quorum_in_epoch",
                      inst.epoch <= view_->epoch() &&
                          view_->is_member_at(inst.epoch, static_cast<MemberId>(m.from)),
                      "sender " + std::to_string(m.from) + " not a member of epoch " +
                          std::to_string(inst.epoch) + " (instance " + std::to_string(m.cid) +
                          ")");
}

void MrConsensus::audit_check_replay() {
  // Durable replay must reproduce the pre-crash trajectory (see CtConsensus).
  for (const auto& [cid, snap] : audit_.precrash) {
    if (gc_.collected(cid)) continue;
    const auto it = instances_.find(cid);
    if (it == instances_.end()) {
      SANPERF_AUDIT_CHECK("consensus.replay_matches_precrash", false,
                          "instance " + std::to_string(cid) + " lost across replay");
      continue;
    }
    const Instance& inst = it->second;
    if (snap.decided) {
      SANPERF_AUDIT_CHECK(
          "consensus.replay_matches_precrash",
          inst.decided && detail::LayerAudit::hash_values(inst.decision) == snap.decision_hash,
          "instance " + std::to_string(cid) + " decision changed across replay");
    } else {
      SANPERF_AUDIT_CHECK("consensus.replay_matches_precrash", inst.round >= snap.round,
                          "instance " + std::to_string(cid) + " replayed into round " +
                              std::to_string(inst.round) + " behind pre-crash round " +
                              std::to_string(snap.round));
    }
  }
  audit_.precrash.clear();
}

void MrConsensus::audit_corrupt_clear_decided(std::int32_t cid) {
  const auto it = instances_.find(cid);
  if (it == instances_.end()) return;
  it->second.decided = false;
  it->second.decide_pending = false;
  it->second.decide_broadcast = true;  // the corrupted re-decide must not re-flood
}
#endif

void MrConsensus::handle_replay_query(const Message& m) {
  const auto it = instances_.find(m.cid);
  if (it == instances_.end()) return;
  Instance& inst = it->second;
  if (inst.decide_pending) return;  // our own record is still landing
  if (inst.decided) {
    Message dec;
    dec.kind = MsgKind::kDecide;
    dec.cid = m.cid;
    dec.round = inst.decision_round;
    detail::set_payload(dec, inst.decision);
    ucast(inst, dec, m.from);
    return;
  }
  // If we coordinated the querier's round, re-send the estimate broadcast it
  // missed while down (a querier parked in kWaitCoord can only resume on a
  // COORDEST or a suspicion). coord_ests buffering dedups on its side.
  const auto sent = inst.sent_aux.find(m.round);
  if (coordinator_of(m.cid, inst, m.round) == process().id() &&
      sent != inst.sent_aux.end() && sent->second.ts == 0) {
    Message est;
    est.kind = MsgKind::kCoordEst;
    est.cid = m.cid;
    est.round = m.round;
    detail::set_payload(est, detail::payload_of(sent->second));
    ucast(inst, est, m.from);
    ++stats_.coord_broadcasts;
  }
  // Re-send our recorded AUX for the querier's round -- valid even after we
  // moved past it. The querier's tally restarted from just its own vote, so
  // each peer is counted exactly once.
  if (sent != inst.sent_aux.end()) {
    ucast(inst, sent->second, m.from);
    ++stats_.aux_broadcasts;
  }
}

bool MrConsensus::has_decided(std::int32_t cid) const {
  if (gc_.collected(cid)) return true;
  const auto it = instances_.find(cid);
  return it != instances_.end() && it->second.decided;
}

std::int64_t MrConsensus::decision(std::int32_t cid) const {
  const std::vector<std::int64_t>& values = decision_values(cid);
  return values.empty() ? 0 : values.front();
}

const std::vector<std::int64_t>& MrConsensus::decision_values(std::int32_t cid) const {
  const auto it = instances_.find(cid);
  if (it == instances_.end() || !it->second.decided) {
    throw std::logic_error{"MrConsensus: no decision yet"};
  }
  return it->second.decision;
}

std::int32_t MrConsensus::rounds_used(std::int32_t cid) const {
  const auto it = instances_.find(cid);
  if (it == instances_.end()) return 0;
  return it->second.decided ? it->second.decision_round : it->second.round;
}

}  // namespace sanperf::consensus
