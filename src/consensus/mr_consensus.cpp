#include "consensus/mr_consensus.hpp"

#include <stdexcept>
#include <utility>

#include "consensus/payload.hpp"

namespace sanperf::consensus {

MrConsensus::MrConsensus(FailureDetector& fd) : fd_{&fd} {}

void MrConsensus::on_start() {
  fd_->add_listener([this](HostId peer, bool suspected) { on_suspicion(peer, suspected); });
}

HostId MrConsensus::coordinator_of(std::int32_t cid, std::int32_t round) const {
  const auto n = static_cast<std::int32_t>(process().n());
  const std::int32_t offset = rotate_coordinators_ ? cid % n : 0;
  return static_cast<HostId>((offset + round - 1) % n);
}

std::int32_t MrConsensus::majority() const {
  return static_cast<std::int32_t>(process().n() / 2 + 1);
}

void MrConsensus::propose(std::int32_t cid, std::int64_t value) {
  propose(cid, std::vector<std::int64_t>{value});
}

void MrConsensus::propose(std::int32_t cid, std::vector<std::int64_t> values) {
  gc_.sweep(instances_);
  if (gc_.collected(cid)) return;  // decided before we proposed, state gone
  Instance& inst = instance(cid);
  if (inst.started) throw std::logic_error{"MrConsensus: instance already proposed"};
  inst.started = true;
  if (inst.decided) {
    if (on_decide_) {
      const std::int64_t head = inst.decision.empty() ? 0 : inst.decision.front();
      on_decide_({cid, head, inst.decision_round, process().now(), process().id(),
                  inst.decision});
    }
    return;
  }
  inst.estimate = std::move(values);
  advance_round(cid, inst);
}

void MrConsensus::advance_round(std::int32_t cid, Instance& inst) {
  ++inst.round;
  ++stats_.rounds_entered;
  const std::int32_t r = inst.round;
  const HostId coord = coordinator_of(cid, r);

  if (coord == process().id()) {
    // Phase 1: broadcast the coordinator's estimate; it reaches ourselves
    // instantly (we ARE the coordinator).
    Message est;
    est.kind = MsgKind::kCoordEst;
    est.cid = cid;
    est.round = r;
    detail::set_payload(est, inst.estimate);
    process().broadcast(est);
    ++stats_.coord_broadcasts;
    send_aux(cid, inst, /*bottom=*/false, inst.estimate);
    return;
  }

  // Phase 2: wait for the coordinator's value -- unless it already arrived
  // (we lag behind) or the coordinator is suspected right away.
  const auto buffered = inst.coord_ests.find(r);
  if (buffered != inst.coord_ests.end()) {
    send_aux(cid, inst, /*bottom=*/false, buffered->second);
    return;
  }
  if (fd_->is_suspected(coord)) {
    send_aux(cid, inst, /*bottom=*/true, {});
    return;
  }
  inst.phase = Phase::kWaitCoord;
}

void MrConsensus::send_aux(std::int32_t cid, Instance& inst, bool bottom,
                           const std::vector<std::int64_t>& value) {
  const std::int32_t r = inst.round;
  Message aux;
  aux.kind = MsgKind::kAux;
  aux.cid = cid;
  aux.round = r;
  detail::set_payload(aux, value);
  aux.ts = bottom ? 1 : 0;  // ts doubles as the bottom flag
  process().broadcast(aux);
  ++stats_.aux_broadcasts;
  if (bottom) ++stats_.bottom_aux;

  // Record our own AUX locally (a process counts itself).
  AuxSet& set = inst.aux[r];
  if (bottom) {
    ++set.bottom_count;
  } else {
    ++set.value_count;
    set.value = value;
  }
  inst.phase = Phase::kWaitAux;
  maybe_conclude(cid, inst);
}

void MrConsensus::maybe_conclude(std::int32_t cid, Instance& inst) {
  if (inst.phase != Phase::kWaitAux) return;
  const std::int32_t r = inst.round;
  AuxSet& set = inst.aux[r];
  if (set.value_count + set.bottom_count < majority()) return;

  // Phase 3 on the first majority of AUX values.
  if (set.bottom_count == 0) {
    decide(cid, inst, set.value, r);
    return;
  }
  if (set.value_count > 0) inst.estimate = set.value;
  advance_round(cid, inst);
}

void MrConsensus::decide(std::int32_t cid, Instance& inst, const std::vector<std::int64_t>& value,
                         std::int32_t round) {
  if (inst.decided) return;
  inst.decided = true;
  inst.decision = value;
  inst.decision_round = round;
  inst.phase = Phase::kDone;
  if (on_decide_ && inst.started) {
    const std::int64_t head = value.empty() ? 0 : value.front();
    on_decide_({cid, head, round, process().now(), process().id(), value});
  }
  if (!inst.decide_broadcast) {
    inst.decide_broadcast = true;
    Message dec;
    dec.kind = MsgKind::kDecide;
    dec.cid = cid;
    dec.round = round;
    detail::set_payload(dec, value);
    process().broadcast(dec);
  }
  gc_.mark(cid);  // terminal: collected at the next entry-point sweep
}

void MrConsensus::on_message(const Message& m) {
  if (m.kind != MsgKind::kCoordEst && m.kind != MsgKind::kAux && m.kind != MsgKind::kDecide) {
    return;
  }
  gc_.sweep(instances_);
  if (gc_.collected(m.cid)) return;  // stale traffic for a collected instance
  Instance& inst = instance(m.cid);
  if (inst.decided) return;

  switch (m.kind) {
    case MsgKind::kCoordEst:
      inst.coord_ests.emplace(m.round, detail::payload_of(m));
      if (inst.phase == Phase::kWaitCoord && m.round == inst.round) {
        send_aux(m.cid, inst, /*bottom=*/false, detail::payload_of(m));
      }
      break;

    case MsgKind::kAux: {
      AuxSet& set = inst.aux[m.round];
      if (m.ts != 0) {
        ++set.bottom_count;
      } else {
        ++set.value_count;
        set.value = detail::payload_of(m);
      }
      if (m.round == inst.round) maybe_conclude(m.cid, inst);
      break;
    }

    case MsgKind::kDecide:
      inst.decide_broadcast = !relay_decide_;
      decide(m.cid, inst, detail::payload_of(m), m.round);
      break;

    default:
      break;
  }
}

void MrConsensus::on_suspicion(HostId peer, bool suspected) {
  if (!suspected) return;
  for (auto& [cid, inst] : instances_) {
    if (inst.started && !inst.decided && inst.phase == Phase::kWaitCoord &&
        coordinator_of(cid, inst.round) == peer) {
      send_aux(cid, inst, /*bottom=*/true, {});
    }
  }
}

bool MrConsensus::has_decided(std::int32_t cid) const {
  if (gc_.collected(cid)) return true;
  const auto it = instances_.find(cid);
  return it != instances_.end() && it->second.decided;
}

std::int64_t MrConsensus::decision(std::int32_t cid) const {
  const std::vector<std::int64_t>& values = decision_values(cid);
  return values.empty() ? 0 : values.front();
}

const std::vector<std::int64_t>& MrConsensus::decision_values(std::int32_t cid) const {
  const auto it = instances_.find(cid);
  if (it == instances_.end() || !it->second.decided) {
    throw std::logic_error{"MrConsensus: no decision yet"};
  }
  return it->second.decision;
}

std::int32_t MrConsensus::rounds_used(std::int32_t cid) const {
  const auto it = instances_.find(cid);
  if (it == instances_.end()) return 0;
  return it->second.decided ? it->second.decision_round : it->second.round;
}

}  // namespace sanperf::consensus
