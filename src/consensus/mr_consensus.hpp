// The Mostefaoui-Raynal consensus algorithm for the <>S failure detector
// (Mostefaoui & Raynal, DISC 1999) -- the "alternative protocol" the
// paper's Section 6 plans to compare against.
//
// Rotating coordinator, two communication steps per round:
//   1. the round's coordinator broadcasts its estimate;
//   2. every process waits for that estimate OR a suspicion of the
//      coordinator, then broadcasts AUX = the estimate or bottom to all;
//   3. on a majority of AUX values for the round:
//        all equal to v (no bottom)  -> decide v,
//        some v present              -> adopt v, next round,
//        all bottom                  -> next round.
//
// Compared with Chandra-Toueg: one fewer communication step on the decision
// path (coordinator bcast + all-to-all vs estimate + proposal + ack), but
// Theta(n^2) messages per round instead of Theta(n). Failure-free, the
// shorter path wins. Under a coordinator crash MR pays a full all-to-all
// round of bottoms before rotating, whereas CT processes that already
// suspect the coordinator advance after cheap nacks -- so CT recovers
// faster, increasingly so with n. The ext_algorithms bench quantifies both
// regimes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "consensus/ct_consensus.hpp"  // DecisionEvent, FailureDetector
#include "consensus/durable_log.hpp"
#include "consensus/instance_gc.hpp"
#include "consensus/layer_audit.hpp"
#include "consensus/membership.hpp"
#include "runtime/process.hpp"

namespace sanperf::consensus {

class MrConsensus : public runtime::Layer {
 public:
  explicit MrConsensus(FailureDetector& fd);

  void on_start() override;
  void on_message(const Message& m) override;
  void on_crash() override;
  /// Warm restart: volatile-state loss exactly as CtConsensus models it,
  /// unless the durable log is enabled -- then the logged suffix is
  /// replayed (round/estimate/AUX-vote state restored, REPLAYQ asks peers
  /// for the missed round traffic).
  void on_restart() override;

  void propose(std::int32_t cid, std::int64_t value);
  /// Batched form: the instance carries a whole vector of client values.
  void propose(std::int32_t cid, std::vector<std::int64_t> values);

  /// Per-instance round-1 coordinator rotation (`cid % n`); identical
  /// contract to CtConsensus::set_rotate_coordinators. Off by default.
  void set_rotate_coordinators(bool on) { rotate_coordinators_ = on; }

  /// Stable-storage write-ahead log; identical contract to
  /// CtConsensus::set_durable_log.
  void set_durable_log(const DurableLogConfig& cfg) { log_.configure(cfg); }
  [[nodiscard]] const DurableLog& durable_log() const { return log_; }

  /// Dynamic membership view; identical contract to
  /// CtConsensus::set_membership (nullptr = fixed membership, bit-exact).
  void set_membership(const MembershipView* view) { view_ = view; }

  [[nodiscard]] bool has_decided(std::int32_t cid) const;
  [[nodiscard]] std::int64_t decision(std::int32_t cid) const;
  [[nodiscard]] const std::vector<std::int64_t>& decision_values(std::int32_t cid) const;
  [[nodiscard]] std::int32_t rounds_used(std::int32_t cid) const;

  void set_decide_callback(std::function<void(const DecisionEvent&)> cb) {
    on_decide_ = std::move(cb);
  }
  void set_relay_decide(bool relay) { relay_decide_ = relay; }

  /// Decided-instance garbage collection; identical contract to
  /// CtConsensus::set_gc_decided.
  void set_gc_decided(bool on) { gc_.enable(on); }
  [[nodiscard]] std::size_t active_instances() const { return instances_.size(); }
  [[nodiscard]] std::size_t peak_active_instances() const { return peak_active_; }
  [[nodiscard]] std::uint64_t instances_collected() const { return gc_.collected_count(); }

  struct Stats {
    std::uint64_t rounds_entered = 0;
    std::uint64_t coord_broadcasts = 0;
    std::uint64_t aux_broadcasts = 0;
    std::uint64_t bottom_aux = 0;  ///< AUX messages carrying bottom
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

#if SANPERF_AUDIT_ENABLED
  /// Test-only corruption backdoors; identical contract to CtConsensus.
  void audit_corrupt_clear_decided(std::int32_t cid);
  [[nodiscard]] DurableLog& audit_mutable_log() { return log_; }
#endif

 private:
  enum class Phase : std::uint8_t {
    kIdle,
    kWaitCoord,  ///< waiting for the coordinator's estimate (or suspicion)
    kWaitAux,    ///< AUX sent, collecting a majority of AUX values
    kDone,
  };

  struct AuxSet {
    std::int32_t value_count = 0;   ///< AUX carrying the coordinator value
    std::int32_t bottom_count = 0;  ///< AUX carrying bottom
    std::vector<std::int64_t> value;  ///< the (unique) non-bottom value seen
  };

  struct Instance {
    bool started = false;
    bool decided = false;
    bool decide_pending = false;  ///< decision record still persisting
    bool decide_broadcast = false;
    /// Membership epoch, captured at first touch and fixed for the
    /// instance's life (see CtConsensus::Instance).
    std::uint32_t epoch = 0;
    bool epoch_set = false;
    std::vector<std::int64_t> decision;
    std::int32_t decision_round = 0;
    std::int32_t round = 0;
    Phase phase = Phase::kIdle;
    std::vector<std::int64_t> estimate;
    std::map<std::int32_t, std::vector<std::int64_t>> coord_ests;  ///< buffered per round
    std::map<std::int32_t, AuxSet> aux;                            ///< per round
    /// Our own AUX per round, kept (durable mode only) so a REPLAYQ from a
    /// restarted peer can be answered even after we moved past its round.
    std::map<std::int32_t, Message> sent_aux;
    /// Replay dedup (durable recovery only): the round on_restart restored
    /// and the AUX senders already tallied for it -- a peer's normal
    /// broadcast can race its REPLAYQ re-send. -1 = not a restored round.
    std::int32_t replay_round = -1;
    std::set<HostId> replay_seen;
  };

  [[nodiscard]] HostId coordinator_of(std::int32_t cid, const Instance& inst,
                                      std::int32_t round) const;
  [[nodiscard]] std::int32_t majority(const Instance& inst) const;
  void ucast(const Instance& inst, Message m, HostId dst);
  void bcast(const Instance& inst, Message m);
  void touch_epoch(Instance& inst, std::uint32_t epoch) {
    if (!inst.epoch_set) {
      inst.epoch_set = true;
      inst.epoch = epoch;
    }
  }
  void durable_apply(std::function<void()> fn);
  void record_state(std::int32_t cid, const Instance& inst);
  void handle_replay_query(const Message& m);

  Instance& instance(std::int32_t cid) {
    Instance& inst = instances_[cid];
    if (instances_.size() > peak_active_) peak_active_ = instances_.size();
    return inst;
  }
  void advance_round(std::int32_t cid, Instance& inst);
  void send_aux(std::int32_t cid, Instance& inst, bool bottom,
                const std::vector<std::int64_t>& value);
  void maybe_conclude(std::int32_t cid, Instance& inst);
  void decide(std::int32_t cid, Instance& inst, const std::vector<std::int64_t>& value,
              std::int32_t round);
  void finish_decide(std::int32_t cid, Instance& inst);
  void on_suspicion(HostId peer, bool suspected);
#if SANPERF_AUDIT_ENABLED
  void audit_check_sender(const Instance& inst, const Message& m) const;
  void audit_check_replay();
#endif

  FailureDetector* fd_;
  DurableLog log_;
  const MembershipView* view_ = nullptr;
  std::map<std::int32_t, Instance> instances_;
  detail::InstanceGc gc_;
  std::size_t peak_active_ = 0;
  std::function<void(const DecisionEvent&)> on_decide_;
  Stats stats_;
  bool relay_decide_ = false;
  bool rotate_coordinators_ = false;
  SANPERF_AUDIT_ONLY(detail::LayerAudit audit_;)
};

}  // namespace sanperf::consensus
