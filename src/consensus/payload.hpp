// Batched-payload helpers shared by the consensus layers.
//
// On the wire a consensus payload is a value *vector* (one entry per client
// value the instance carries -- see consensus::Batcher); the scalar
// Message::value mirrors the first entry so diagnostics and pre-batching
// assertions keep working. The SAN model charges per frame regardless of
// content, so a batch of 32 values costs exactly the messages a single
// value does -- that is the whole amortisation argument.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/message.hpp"

namespace sanperf::consensus::detail {

inline void set_payload(runtime::Message& m, const std::vector<std::int64_t>& values) {
  m.values = values;
  m.value = values.empty() ? 0 : values.front();
}

[[nodiscard]] inline std::vector<std::int64_t> payload_of(const runtime::Message& m) {
  if (!m.values.empty()) return m.values;
  return {m.value};  // hand-built scalar message (tests, probes)
}

}  // namespace sanperf::consensus::detail
