#include "consensus/sequencer.hpp"

#include <algorithm>

namespace sanperf::consensus {

ConsensusSequencer::ConsensusSequencer(runtime::Cluster& cluster, SequencerConfig cfg)
    : cluster_{&cluster}, cfg_{cfg} {}

std::vector<ExecutionResult> ConsensusSequencer::run() {
  std::vector<ExecutionResult> results;
  results.reserve(cfg_.executions);

  // One shared first-decision slot per instance, filled by the per-process
  // decide callbacks.
  struct FirstDecision {
    std::optional<des::TimePoint> at;
    std::int32_t rounds = 0;
  };
  std::vector<FirstDecision> first(cfg_.executions);

  // Register on every process, crashed or not: a host down at arm time may
  // warm-restart mid-run (fault injection) and its decisions must count.
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(cluster_->n()); ++pid) {
    auto& proc = cluster_->process(pid);
    proc.layer<CtConsensus>().set_decide_callback([&first](const DecisionEvent& ev) {
      if (ev.cid < 0 || static_cast<std::size_t>(ev.cid) >= first.size()) return;
      auto& slot = first[static_cast<std::size_t>(ev.cid)];
      if (!slot.at || ev.at < *slot.at) {
        slot.at = ev.at;
        slot.rounds = ev.round;
      }
    });
  }

  auto skew_rng = cluster_->rng_stream("ntp-skew");
  des::TimePoint next_start = cluster_->now() + cfg_.separation;

  for (std::size_t k = 0; k < cfg_.executions; ++k) {
    const auto cid = static_cast<std::int32_t>(k);
    const des::TimePoint t0 = next_start;

    // Schedule the proposes: each process starts within the NTP window.
    // Liveness is checked when the propose fires, not here -- a host that
    // warm-restarts between the scheduling instant and t0 must take part
    // (it coordinates round 1 of every instance, and the others trust it
    // again by then). Crash-free runs draw and schedule identically.
    for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(cluster_->n()); ++pid) {
      auto& proc = cluster_->process(pid);
      const double skew = skew_rng.uniform(-cfg_.ntp_skew.to_ms(), cfg_.ntp_skew.to_ms());
      const des::TimePoint start = t0 + des::Duration::from_ms(std::max(0.0, skew));
      cluster_->sim().schedule_at(start, [&proc, cid] {
        if (!proc.crashed()) proc.layer<CtConsensus>().propose(cid, 1000 + proc.id());
      });
    }

    const des::TimePoint deadline = t0 + cfg_.instance_timeout;
    cluster_->run_until([&] { return first[k].at.has_value(); }, deadline);

    ExecutionResult res;
    res.cid = cid;
    res.t0 = t0;
    res.t_decide = first[k].at;
    res.rounds = first[k].rounds;
    results.push_back(res);

    // Next start: the configured separation, pushed back when a slow
    // execution would otherwise overlap.
    des::TimePoint earliest = t0 + cfg_.separation;
    if (first[k].at) {
      earliest = std::max(earliest, *first[k].at + cfg_.settle_gap);
    } else {
      earliest = std::max(earliest, cluster_->now() + cfg_.settle_gap);
    }
    next_start = earliest;
  }

  experiment_end_ = cluster_->now();
  return results;
}

}  // namespace sanperf::consensus
