#include "consensus/sequencer.hpp"

namespace sanperf::consensus {

// The two shipped instantiations: Chandra-Toueg (every paper campaign) and
// Mostefaoui-Raynal (comparative class-3 studies).
template class ConsensusSequencerT<CtConsensus>;
template class ConsensusSequencerT<MrConsensus>;

}  // namespace sanperf::consensus
