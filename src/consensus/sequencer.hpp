// Drives a sequence of consensus executions on a cluster and measures
// per-execution latency (Section 2.3 / Section 4).
//
// All alive processes propose at the same instant t0 (up to an emulated NTP
// synchronisation skew of +-50 us); latency is t1 - t0 where t1 is the time
// the *first* process decides. Consecutive executions are separated by
// 10 ms between beginnings; with extremely bad failure detection the start
// is pushed back so executions stay isolated (the paper's footnote 2).
//
// The sequencer is templated over the (instance-multiplexed) consensus
// layer; ConsensusSequencer is the Chandra-Toueg instantiation every paper
// campaign uses. For sustained load -- overlapping instances, offered-load
// arrival processes -- use core::run_workload instead; this driver keeps
// executions isolated on purpose.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "consensus/ct_consensus.hpp"
#include "consensus/mr_consensus.hpp"
#include "runtime/cluster.hpp"

namespace sanperf::consensus {

struct SequencerConfig {
  std::size_t executions = 100;
  des::Duration separation = des::Duration::from_ms(10.0);
  /// Half-width of the NTP start-time window (paper: +-50 us).
  des::Duration ntp_skew = des::Duration::from_ms(0.05);
  /// Give up on an execution after this long (counts as undecided).
  des::Duration instance_timeout = des::Duration::from_ms(5000.0);
  /// Extra quiet time required after a decision before the next start.
  des::Duration settle_gap = des::Duration::from_ms(2.0);
  /// Enable decided-instance garbage collection on the consensus layers
  /// (see CtConsensus::set_gc_decided). Off by default: callers commonly
  /// query decisions after the run.
  bool gc_decided = false;
  /// Rotate the round-1 coordinator per instance (`cid % n`) instead of
  /// pinning host 0. Off by default: the paper's campaigns pin host 0 and
  /// the goldens depend on it.
  bool rotate_coordinators = false;
  /// Maximum concurrently in-flight executions. 1 (the default) is the
  /// paper's strictly isolated one-at-a-time driver, including the
  /// settle-gap pushback; W > 1 keeps up to W instances open, launching on
  /// the separation grid whenever a slot is free (no settle gap -- overlap
  /// is the point).
  std::size_t pipeline_window = 1;
};

/// The per-process NTP start offset: a symmetric window of half-width `w`
/// realised as `w + uniform(-w, +w)`, i.e. every process starts inside
/// [t0, t0 + 2w) with mean exactly w. Replaces the historic
/// `max(0, uniform(-w, +w))` draw, which collapsed half the probability
/// mass onto a point atom at zero and biased the realised skew spread.
[[nodiscard]] inline des::Duration draw_ntp_start_offset(des::RandomEngine& rng,
                                                         double half_width_ms) {
  return des::Duration::from_ms(half_width_ms +
                                rng.uniform(-half_width_ms, half_width_ms));
}

struct ExecutionResult {
  std::int32_t cid = 0;
  des::TimePoint t0;                        ///< nominal common start
  std::optional<des::TimePoint> t_decide;   ///< first decision, if any
  std::int32_t rounds = 0;                  ///< rounds used by the first decider

  [[nodiscard]] bool decided() const { return t_decide.has_value(); }
  [[nodiscard]] double latency_ms() const { return (*t_decide - t0).to_ms(); }
};

template <typename ConsensusLayer>
class ConsensusSequencerT {
 public:
  /// Every process in `cluster` must already carry a ConsensusLayer.
  ConsensusSequencerT(runtime::Cluster& cluster, SequencerConfig cfg)
      : cluster_{&cluster}, cfg_{cfg} {}

  /// Runs all executions; returns one result per execution, in order.
  [[nodiscard]] std::vector<ExecutionResult> run();

  /// End of the measurement period (set after run()); this is T_exp for
  /// the failure-detector QoS estimation.
  [[nodiscard]] des::TimePoint experiment_end() const { return experiment_end_; }

 private:
  runtime::Cluster* cluster_;
  SequencerConfig cfg_;
  des::TimePoint experiment_end_;
};

/// The paper's driver: Chandra-Toueg on every process.
using ConsensusSequencer = ConsensusSequencerT<CtConsensus>;

template <typename ConsensusLayer>
std::vector<ExecutionResult> ConsensusSequencerT<ConsensusLayer>::run() {
  std::vector<ExecutionResult> results;
  results.reserve(cfg_.executions);

  // One shared first-decision slot per instance, filled by the per-process
  // decide callbacks.
  struct FirstDecision {
    std::optional<des::TimePoint> at;
    std::int32_t rounds = 0;
  };
  std::vector<FirstDecision> first(cfg_.executions);
  // Pipelined bookkeeping: an execution is "open" from launch until its
  // first decision or its give-up deadline, whichever comes first.
  std::vector<bool> open(cfg_.executions, false);
  std::size_t closed = 0;

  // Register on every process, crashed or not: a host down at arm time may
  // warm-restart mid-run (fault injection) and its decisions must count.
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(cluster_->n()); ++pid) {
    auto& proc = cluster_->process(pid);
    auto& cons = proc.template layer<ConsensusLayer>();
    if (cfg_.gc_decided) cons.set_gc_decided(true);
    cons.set_rotate_coordinators(cfg_.rotate_coordinators);
    cons.set_decide_callback([&first, &open, &closed](const DecisionEvent& ev) {
      if (ev.cid < 0 || static_cast<std::size_t>(ev.cid) >= first.size()) return;
      const auto k = static_cast<std::size_t>(ev.cid);
      auto& slot = first[k];
      if (!slot.at || ev.at < *slot.at) {
        slot.at = ev.at;
        slot.rounds = ev.round;
      }
      if (open[k]) {
        open[k] = false;
        ++closed;
      }
    });
  }

  auto skew_rng = cluster_->rng_stream("ntp-skew");
  des::TimePoint next_start = cluster_->now() + cfg_.separation;

  // Launches execution k at t0: every process's propose is scheduled inside
  // the NTP window. Liveness is checked when the propose fires, not here --
  // a host that warm-restarts between the scheduling instant and t0 must
  // take part (it coordinates round 1 of every instance, and the others
  // trust it again by then). Crash-free runs draw and schedule identically.
  auto launch = [&](std::size_t k, des::TimePoint t0) {
    const auto cid = static_cast<std::int32_t>(k);
    for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(cluster_->n()); ++pid) {
      auto& proc = cluster_->process(pid);
      const des::TimePoint start = t0 + draw_ntp_start_offset(skew_rng, cfg_.ntp_skew.to_ms());
      cluster_->sim().schedule_at(start, [&proc, cid] {
        if (!proc.crashed()) {
          proc.template layer<ConsensusLayer>().propose(cid, 1000 + proc.id());
        }
      });
    }
  };

  if (cfg_.pipeline_window <= 1) {
    // The paper's driver: strictly one at a time, with the settle-gap
    // pushback keeping slow executions isolated (footnote 2).
    for (std::size_t k = 0; k < cfg_.executions; ++k) {
      const des::TimePoint t0 = next_start;
      launch(k, t0);

      const des::TimePoint deadline = t0 + cfg_.instance_timeout;
      cluster_->run_until([&] { return first[k].at.has_value(); }, deadline);

      ExecutionResult res;
      res.cid = static_cast<std::int32_t>(k);
      res.t0 = t0;
      res.t_decide = first[k].at;
      res.rounds = first[k].rounds;
      results.push_back(res);

      // Next start: the configured separation, pushed back when a slow
      // execution would otherwise overlap.
      des::TimePoint earliest = t0 + cfg_.separation;
      if (first[k].at) {
        earliest = std::max(earliest, *first[k].at + cfg_.settle_gap);
      } else {
        earliest = std::max(earliest, cluster_->now() + cfg_.settle_gap);
      }
      next_start = earliest;
    }

    experiment_end_ = cluster_->now();
    return results;
  }

  // Pipelined driver: up to W executions in flight. Launches stay on the
  // separation grid while a slot is free; when the window is full the next
  // launch waits for a close. Skews are still drawn in execution order, so
  // W = 2 with a wide separation replays the sequential schedule exactly.
  const double span_ms = (cfg_.separation.to_ms() + cfg_.instance_timeout.to_ms() +
                          cfg_.settle_gap.to_ms() + 1.0) *
                         static_cast<double>(cfg_.executions + 1);
  const des::TimePoint far_deadline = cluster_->now() + des::Duration::from_ms(span_ms);
  std::vector<des::TimePoint> t0s(cfg_.executions);
  std::vector<des::EventId> timeouts;
  timeouts.reserve(cfg_.executions);

  for (std::size_t k = 0; k < cfg_.executions; ++k) {
    cluster_->run_until([&] { return k - closed < cfg_.pipeline_window; }, far_deadline);
    const des::TimePoint t0 = std::max(next_start, cluster_->now());
    t0s[k] = t0;
    open[k] = true;
    launch(k, t0);
    // Give-up deadline: a stuck execution frees its window slot.
    timeouts.push_back(
        cluster_->sim().schedule_at(t0 + cfg_.instance_timeout, [&open, &closed, k] {
          if (open[k]) {
            open[k] = false;
            ++closed;
          }
        }));
    next_start = t0 + cfg_.separation;
  }
  cluster_->run_until([&] { return closed >= cfg_.executions; }, far_deadline);
  // Outstanding give-up timers reference this frame's bookkeeping; drop
  // them so a caller that keeps running the cluster never fires one.
  for (const des::EventId id : timeouts) cluster_->sim().cancel(id);

  for (std::size_t k = 0; k < cfg_.executions; ++k) {
    ExecutionResult res;
    res.cid = static_cast<std::int32_t>(k);
    res.t0 = t0s[k];
    // Only decisions inside the give-up deadline count, exactly like the
    // sequential driver's run_until cut-off.
    if (first[k].at && *first[k].at <= t0s[k] + cfg_.instance_timeout) {
      res.t_decide = first[k].at;
      res.rounds = first[k].rounds;
    }
    results.push_back(res);
  }

  experiment_end_ = cluster_->now();
  return results;
}

extern template class ConsensusSequencerT<CtConsensus>;
extern template class ConsensusSequencerT<MrConsensus>;

}  // namespace sanperf::consensus
