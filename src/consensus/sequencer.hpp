// Drives a sequence of consensus executions on a cluster and measures
// per-execution latency (Section 2.3 / Section 4).
//
// All alive processes propose at the same instant t0 (up to an emulated NTP
// synchronisation skew of +-50 us); latency is t1 - t0 where t1 is the time
// the *first* process decides. Consecutive executions are separated by
// 10 ms between beginnings; with extremely bad failure detection the start
// is pushed back so executions stay isolated (the paper's footnote 2).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "consensus/ct_consensus.hpp"
#include "runtime/cluster.hpp"

namespace sanperf::consensus {

struct SequencerConfig {
  std::size_t executions = 100;
  des::Duration separation = des::Duration::from_ms(10.0);
  /// Half-width of the NTP start-time window (paper: +-50 us).
  des::Duration ntp_skew = des::Duration::from_ms(0.05);
  /// Give up on an execution after this long (counts as undecided).
  des::Duration instance_timeout = des::Duration::from_ms(5000.0);
  /// Extra quiet time required after a decision before the next start.
  des::Duration settle_gap = des::Duration::from_ms(2.0);
};

struct ExecutionResult {
  std::int32_t cid = 0;
  des::TimePoint t0;                        ///< nominal common start
  std::optional<des::TimePoint> t_decide;   ///< first decision, if any
  std::int32_t rounds = 0;                  ///< rounds used by the first decider

  [[nodiscard]] bool decided() const { return t_decide.has_value(); }
  [[nodiscard]] double latency_ms() const { return (*t_decide - t0).to_ms(); }
};

class ConsensusSequencer {
 public:
  /// Every process in `cluster` must already carry a CtConsensus layer.
  ConsensusSequencer(runtime::Cluster& cluster, SequencerConfig cfg);

  /// Runs all executions; returns one result per execution, in order.
  [[nodiscard]] std::vector<ExecutionResult> run();

  /// End of the measurement period (set after run()); this is T_exp for
  /// the failure-detector QoS estimation.
  [[nodiscard]] des::TimePoint experiment_end() const { return experiment_end_; }

 private:
  runtime::Cluster* cluster_;
  SequencerConfig cfg_;
  des::TimePoint experiment_end_;
};

}  // namespace sanperf::consensus
