// Drives a sequence of consensus executions on a cluster and measures
// per-execution latency (Section 2.3 / Section 4).
//
// All alive processes propose at the same instant t0 (up to an emulated NTP
// synchronisation skew of +-50 us); latency is t1 - t0 where t1 is the time
// the *first* process decides. Consecutive executions are separated by
// 10 ms between beginnings; with extremely bad failure detection the start
// is pushed back so executions stay isolated (the paper's footnote 2).
//
// The sequencer is templated over the (instance-multiplexed) consensus
// layer; ConsensusSequencer is the Chandra-Toueg instantiation every paper
// campaign uses. For sustained load -- overlapping instances, offered-load
// arrival processes -- use core::run_workload instead; this driver keeps
// executions isolated on purpose.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "consensus/ct_consensus.hpp"
#include "consensus/mr_consensus.hpp"
#include "runtime/cluster.hpp"

namespace sanperf::consensus {

struct SequencerConfig {
  std::size_t executions = 100;
  des::Duration separation = des::Duration::from_ms(10.0);
  /// Half-width of the NTP start-time window (paper: +-50 us).
  des::Duration ntp_skew = des::Duration::from_ms(0.05);
  /// Give up on an execution after this long (counts as undecided).
  des::Duration instance_timeout = des::Duration::from_ms(5000.0);
  /// Extra quiet time required after a decision before the next start.
  des::Duration settle_gap = des::Duration::from_ms(2.0);
  /// Enable decided-instance garbage collection on the consensus layers
  /// (see CtConsensus::set_gc_decided). Off by default: callers commonly
  /// query decisions after the run.
  bool gc_decided = false;
};

struct ExecutionResult {
  std::int32_t cid = 0;
  des::TimePoint t0;                        ///< nominal common start
  std::optional<des::TimePoint> t_decide;   ///< first decision, if any
  std::int32_t rounds = 0;                  ///< rounds used by the first decider

  [[nodiscard]] bool decided() const { return t_decide.has_value(); }
  [[nodiscard]] double latency_ms() const { return (*t_decide - t0).to_ms(); }
};

template <typename ConsensusLayer>
class ConsensusSequencerT {
 public:
  /// Every process in `cluster` must already carry a ConsensusLayer.
  ConsensusSequencerT(runtime::Cluster& cluster, SequencerConfig cfg)
      : cluster_{&cluster}, cfg_{cfg} {}

  /// Runs all executions; returns one result per execution, in order.
  [[nodiscard]] std::vector<ExecutionResult> run();

  /// End of the measurement period (set after run()); this is T_exp for
  /// the failure-detector QoS estimation.
  [[nodiscard]] des::TimePoint experiment_end() const { return experiment_end_; }

 private:
  runtime::Cluster* cluster_;
  SequencerConfig cfg_;
  des::TimePoint experiment_end_;
};

/// The paper's driver: Chandra-Toueg on every process.
using ConsensusSequencer = ConsensusSequencerT<CtConsensus>;

template <typename ConsensusLayer>
std::vector<ExecutionResult> ConsensusSequencerT<ConsensusLayer>::run() {
  std::vector<ExecutionResult> results;
  results.reserve(cfg_.executions);

  // One shared first-decision slot per instance, filled by the per-process
  // decide callbacks.
  struct FirstDecision {
    std::optional<des::TimePoint> at;
    std::int32_t rounds = 0;
  };
  std::vector<FirstDecision> first(cfg_.executions);

  // Register on every process, crashed or not: a host down at arm time may
  // warm-restart mid-run (fault injection) and its decisions must count.
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(cluster_->n()); ++pid) {
    auto& proc = cluster_->process(pid);
    auto& cons = proc.template layer<ConsensusLayer>();
    if (cfg_.gc_decided) cons.set_gc_decided(true);
    cons.set_decide_callback([&first](const DecisionEvent& ev) {
      if (ev.cid < 0 || static_cast<std::size_t>(ev.cid) >= first.size()) return;
      auto& slot = first[static_cast<std::size_t>(ev.cid)];
      if (!slot.at || ev.at < *slot.at) {
        slot.at = ev.at;
        slot.rounds = ev.round;
      }
    });
  }

  auto skew_rng = cluster_->rng_stream("ntp-skew");
  des::TimePoint next_start = cluster_->now() + cfg_.separation;

  for (std::size_t k = 0; k < cfg_.executions; ++k) {
    const auto cid = static_cast<std::int32_t>(k);
    const des::TimePoint t0 = next_start;

    // Schedule the proposes: each process starts within the NTP window.
    // Liveness is checked when the propose fires, not here -- a host that
    // warm-restarts between the scheduling instant and t0 must take part
    // (it coordinates round 1 of every instance, and the others trust it
    // again by then). Crash-free runs draw and schedule identically.
    for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(cluster_->n()); ++pid) {
      auto& proc = cluster_->process(pid);
      const double skew = skew_rng.uniform(-cfg_.ntp_skew.to_ms(), cfg_.ntp_skew.to_ms());
      const des::TimePoint start = t0 + des::Duration::from_ms(std::max(0.0, skew));
      cluster_->sim().schedule_at(start, [&proc, cid] {
        if (!proc.crashed()) {
          proc.template layer<ConsensusLayer>().propose(cid, 1000 + proc.id());
        }
      });
    }

    const des::TimePoint deadline = t0 + cfg_.instance_timeout;
    cluster_->run_until([&] { return first[k].at.has_value(); }, deadline);

    ExecutionResult res;
    res.cid = cid;
    res.t0 = t0;
    res.t_decide = first[k].at;
    res.rounds = first[k].rounds;
    results.push_back(res);

    // Next start: the configured separation, pushed back when a slow
    // execution would otherwise overlap.
    des::TimePoint earliest = t0 + cfg_.separation;
    if (first[k].at) {
      earliest = std::max(earliest, *first[k].at + cfg_.settle_gap);
    } else {
      earliest = std::max(earliest, cluster_->now() + cfg_.settle_gap);
    }
    next_start = earliest;
  }

  experiment_end_ = cluster_->now();
  return results;
}

extern template class ConsensusSequencerT<CtConsensus>;
extern template class ConsensusSequencerT<MrConsensus>;

}  // namespace sanperf::consensus
