#include "core/audit.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sanperf::audit {

namespace {

void default_handler(const Violation& v) {
  std::fprintf(stderr, "sanperf audit: invariant '%s' violated at %s:%d%s%s\n", v.invariant,
               v.file, v.line, v.detail.empty() ? "" : ": ", v.detail.c_str());
  std::abort();
}

Handler g_handler = &default_handler;
std::atomic<std::uint64_t> g_checks{0};

}  // namespace

Handler set_handler(Handler handler) {
  const Handler prev = g_handler;
  g_handler = handler != nullptr ? handler : &default_handler;
  return prev;
}

void fail(const char* invariant, const char* file, int line, std::string detail) {
  const Violation v{invariant, file, line, std::move(detail)};
  g_handler(v);
  // A handler must abort or throw; returning would let a corrupted
  // simulation keep running with the violation swallowed.
  default_handler(v);
}

std::uint64_t checks_run() { return g_checks.load(std::memory_order_relaxed); }

namespace detail {
void note_check() noexcept { g_checks.fetch_add(1, std::memory_order_relaxed); }
}  // namespace detail

}  // namespace sanperf::audit
