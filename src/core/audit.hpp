// The compiled-out invariant-audit layer.
//
// Every subsystem carries runtime checks for invariants the protocol stack
// relies on but the type system cannot express: simulated time never runs
// backwards, a freed event slot never fires, a crashed host never receives
// a delivery, an instance never decides twice, a quorum never reaches
// outside its launch epoch's member set. The checks are compiled in only
// when the build sets SANPERF_AUDIT (cmake -DSANPERF_AUDIT=ON): in normal
// builds every SANPERF_AUDIT_* macro expands to nothing, so the audit layer
// is zero-cost and the audited binaries remain bit-identical with the
// unaudited ones.
//
// Audit checks are observers, never actors: they must not consume RNG
// draws, schedule or cancel events, or mutate any state the simulation
// reads. That discipline is what keeps an audit-on build bit-identical to
// an audit-off build (CI diffs the quick goldens at --tol 0.0 against the
// audited binaries to enforce it).
//
// A failed check reports through a process-wide handler: the default
// prints the violated invariant and aborts (so CI catches corruptions as
// hard failures); tests install a throwing handler and assert that a
// deliberately corrupted simulation trips the right invariant.
#pragma once

#include <cstdint>
#include <string>

namespace sanperf::audit {

/// Everything known about one failed invariant check.
struct Violation {
  const char* invariant;  ///< dotted name, e.g. "des.monotonic_time"
  const char* file;
  int line;
  std::string detail;  ///< human-readable state summary, may be empty
};

/// Called exactly once per failed check. Must not return normally: either
/// abort (the default) or throw. A handler that returns is itself a bug;
/// fail() aborts after it returns as a backstop.
using Handler = void (*)(const Violation&);

/// Installs a failure handler and returns the previous one. Passing nullptr
/// restores the default print-and-abort handler. Not thread-safe: install
/// handlers before fanning out replications (tests are single-threaded).
Handler set_handler(Handler handler);

/// Reports a violated invariant through the installed handler.
void fail(const char* invariant, const char* file, int line, std::string detail = {});

/// Lifetime count of audit checks evaluated (audit builds only; stays 0
/// otherwise). Tests assert it grows to prove the hooks actually run.
[[nodiscard]] std::uint64_t checks_run();

namespace detail {
void note_check() noexcept;
}  // namespace detail

}  // namespace sanperf::audit

#ifdef SANPERF_AUDIT

#define SANPERF_AUDIT_ENABLED 1

/// Evaluates `cond`; on failure reports `invariant` (plus the optional
/// detail string expression, evaluated lazily) through the audit handler.
/// `cond` must be free of side effects visible to the simulation.
#define SANPERF_AUDIT_CHECK(invariant, cond, ...)                               \
  do {                                                                          \
    ::sanperf::audit::detail::note_check();                                     \
    if (!(cond)) {                                                              \
      ::sanperf::audit::fail(invariant, __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__); \
    }                                                                           \
  } while (0)

/// Declares members / runs statements that exist only in audit builds.
#define SANPERF_AUDIT_ONLY(...) __VA_ARGS__

#else

#define SANPERF_AUDIT_ENABLED 0
#define SANPERF_AUDIT_CHECK(invariant, cond, ...) ((void)0)
#define SANPERF_AUDIT_ONLY(...)

#endif
