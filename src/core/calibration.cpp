#include "core/calibration.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/simulation.hpp"
#include "san/distribution.hpp"
#include "stats/ks.hpp"

namespace sanperf::core {

stats::BimodalUniform shift_fit(const stats::BimodalUniform& fit, double delta_ms) {
  auto clamp0 = [](double x) { return x < 0 ? 0.0 : x; };
  stats::BimodalUniform out = fit;
  out.a1 = clamp0(fit.a1 - delta_ms);
  out.b1 = clamp0(fit.b1 - delta_ms);
  out.a2 = clamp0(fit.a2 - delta_ms);
  out.b2 = clamp0(fit.b2 - delta_ms);
  if (out.b1 < out.a1 || out.b2 < out.a2) {
    throw std::invalid_argument{"shift_fit: shift collapses a component"};
  }
  return out;
}

sanmodels::TransportParams make_transport(const stats::BimodalUniform& unicast_e2e,
                                          const stats::BimodalUniform& broadcast_e2e,
                                          double t_send_ms) {
  sanmodels::TransportParams p;
  p.send_cpu = san::Distribution::deterministic_ms(t_send_ms);
  p.recv_cpu = san::Distribution::deterministic_ms(t_send_ms);  // t_send = t_receive
  p.frame_unicast = san::Distribution::from_fit(shift_fit(unicast_e2e, 2 * t_send_ms));
  p.frame_broadcast = san::Distribution::from_fit(shift_fit(broadcast_e2e, 2 * t_send_ms));
  return p;
}

TsendSweep sweep_tsend(const stats::Ecdf& measured_latency_n5,
                       const stats::BimodalUniform& unicast_e2e,
                       const stats::BimodalUniform& broadcast_e2e_n5,
                       const std::vector<double>& candidates_ms, std::size_t replications,
                       std::uint64_t seed, const ReplicationRunner& runner) {
  if (candidates_ms.empty()) throw std::invalid_argument{"sweep_tsend: no candidates"};
  // Flattened driver-level fan-out: one group per candidate, all sharing
  // the (seed, "rep") streams the nested simulate_class1 calls used, so
  // every (candidate, replication) task drains from one batch and the
  // per-candidate folds reproduce the sequential sweep bit for bit.
  ConsensusStudyBank bank;
  std::vector<const san::TransientStudy*> studies;
  ShardSpace space;
  for (const double t_send : candidates_ms) {
    sanmodels::ConsensusSanConfig cfg;
    cfg.n = 5;
    cfg.transport = make_transport(unicast_e2e, broadcast_e2e_n5, t_send);
    studies.push_back(bank.add(cfg));
    space.add_group(replications, seed, "rep");
  }
  const auto rewards = runner.run_flat(space, [&](const ShardSpace::Task& t) {
    return studies[t.group]->run_one(des::RandomEngine{t.seed});
  });
  return fold_tsend_sweep(candidates_ms, rewards, measured_latency_n5);
}

TsendSweep fold_tsend_sweep(const std::vector<double>& candidates_ms,
                            const std::vector<std::vector<std::optional<double>>>& rewards,
                            const stats::Ecdf& measured_latency_n5) {
  if (rewards.size() != candidates_ms.size()) {
    throw std::invalid_argument{"fold_tsend_sweep: rewards/candidates size mismatch"};
  }
  TsendSweep sweep;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < candidates_ms.size(); ++k) {
    auto study = fold_study_rewards(rewards[k]);
    TsendCandidate cand;
    cand.t_send_ms = candidates_ms[k];
    cand.sim_mean_ms = study.summary.mean();
    cand.ks_distance = stats::ks_distance(study.ecdf(), measured_latency_n5);
    cand.sim_latencies_ms = std::move(study.rewards);
    if (cand.ks_distance < best) {
      best = cand.ks_distance;
      sweep.best_t_send_ms = cand.t_send_ms;
    }
    sweep.candidates.push_back(std::move(cand));
  }
  return sweep;
}

}  // namespace sanperf::core
