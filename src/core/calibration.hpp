// Calibration of the SAN model from emulator measurements (Section 5.1).
//
// The pipeline mirrors the paper exactly:
//   1. measure end-to-end delays of isolated unicasts and broadcasts;
//   2. fit bi-modal uniform distributions to the delay samples (Fig 6);
//   3. assume t_send = t_receive constant; derive t_network as the
//      end-to-end fit shifted down by 2 t_send;
//   4. select t_send by sweeping candidates and comparing the simulated
//      class-1 latency CDF (n = 5) against the measured one (Fig 7b) --
//      quantified here with the two-sample Kolmogorov-Smirnov distance.
#pragma once

#include <cstdint>
#include <vector>

#include "core/replication.hpp"
#include "sanmodels/network_chains.hpp"
#include "stats/bimodal_fit.hpp"
#include "stats/ecdf.hpp"

namespace sanperf::core {

/// Shifts both components of a fit down by `delta_ms`, clamping at >= 0.
/// This is the paper's "t_network = end-to-end delay minus 2 t_send".
[[nodiscard]] stats::BimodalUniform shift_fit(const stats::BimodalUniform& fit, double delta_ms);

/// Assembles SAN transport parameters from the delay fits and a t_send.
[[nodiscard]] sanmodels::TransportParams make_transport(const stats::BimodalUniform& unicast_e2e,
                                                        const stats::BimodalUniform& broadcast_e2e,
                                                        double t_send_ms);

struct TsendCandidate {
  double t_send_ms = 0;
  double ks_distance = 0;  ///< simulated vs measured latency CDF (n = 5)
  double sim_mean_ms = 0;
  std::vector<double> sim_latencies_ms;  ///< the candidate's simulated sample
};

struct TsendSweep {
  std::vector<TsendCandidate> candidates;
  double best_t_send_ms = 0;
};

/// Folds per-candidate replication rewards (in replication order) into the
/// ranked sweep: KS distance against the measured CDF, first-wins best
/// selection. The shared fold of sweep_tsend and run_fig7b.
[[nodiscard]] TsendSweep fold_tsend_sweep(
    const std::vector<double>& candidates_ms,
    const std::vector<std::vector<std::optional<double>>>& rewards,
    const stats::Ecdf& measured_latency_n5);

/// The Fig 7b sweep: simulate class-1 latency for each t_send candidate and
/// rank them against the measured latency distribution. The whole
/// (candidate x replication) space fans out over `runner` as one flattened
/// ShardSpace batch; results are bit-identical for any thread count.
[[nodiscard]] TsendSweep sweep_tsend(const stats::Ecdf& measured_latency_n5,
                                     const stats::BimodalUniform& unicast_e2e,
                                     const stats::BimodalUniform& broadcast_e2e_n5,
                                     const std::vector<double>& candidates_ms,
                                     std::size_t replications, std::uint64_t seed,
                                     const ReplicationRunner& runner = default_runner());

}  // namespace sanperf::core
