#include "core/campaign.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/parse_util.hpp"

namespace sanperf::core {

std::string to_string(const AxisValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&value)) {
    // Axis values are human-chosen (timeouts, t_send candidates): 12
    // significant digits re-parse them exactly and stay readable.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", *d);
    return buf;
  }
  return std::get<std::string>(value);
}

// --- ParamAxis ---------------------------------------------------------------

ParamAxis::ParamAxis(std::string name, Type type, std::vector<AxisValue> values)
    : name_{std::move(name)}, type_{type}, values_{std::move(values)} {
  if (values_.empty()) {
    throw std::invalid_argument{"ParamAxis '" + name_ + "': empty domain"};
  }
}

ParamAxis ParamAxis::ints(std::string name, std::vector<std::int64_t> values) {
  std::vector<AxisValue> domain{values.begin(), values.end()};
  return ParamAxis{std::move(name), Type::kInt, std::move(domain)};
}

ParamAxis ParamAxis::reals(std::string name, std::vector<double> values) {
  std::vector<AxisValue> domain{values.begin(), values.end()};
  return ParamAxis{std::move(name), Type::kReal, std::move(domain)};
}

ParamAxis ParamAxis::strings(std::string name, std::vector<std::string> values) {
  std::vector<AxisValue> domain;
  domain.reserve(values.size());
  for (auto& v : values) domain.emplace_back(std::move(v));
  return ParamAxis{std::move(name), Type::kString, std::move(domain)};
}

ParamAxis ParamAxis::sizes(std::string name, const std::vector<std::size_t>& values) {
  std::vector<std::int64_t> ints;
  ints.reserve(values.size());
  for (const std::size_t v : values) ints.push_back(static_cast<std::int64_t>(v));
  return ParamAxis::ints(std::move(name), std::move(ints));
}

std::vector<std::int64_t> ParamAxis::int_values() const {
  std::vector<std::int64_t> out;
  out.reserve(values_.size());
  for (const auto& v : values_) out.push_back(std::get<std::int64_t>(v));
  return out;
}

std::vector<double> ParamAxis::real_values() const {
  std::vector<double> out;
  out.reserve(values_.size());
  for (const auto& v : values_) out.push_back(std::get<double>(v));
  return out;
}

std::vector<std::string> ParamAxis::string_values() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& v : values_) out.push_back(std::get<std::string>(v));
  return out;
}

std::vector<std::size_t> ParamAxis::size_values() const {
  std::vector<std::size_t> out;
  out.reserve(values_.size());
  for (const auto& v : values_) {
    const std::int64_t i = std::get<std::int64_t>(v);
    if (i < 0) throw std::invalid_argument{"ParamAxis '" + name_ + "': negative size"};
    out.push_back(static_cast<std::size_t>(i));
  }
  return out;
}

ParamAxis ParamAxis::parse_override(std::string_view csv) const {
  const std::string context = "axis '" + name_ + "'";
  std::vector<AxisValue> domain;
  for (const std::string_view token : detail::split(csv, ',')) {
    if (token.empty()) {
      throw std::invalid_argument{context + ": empty value in override"};
    }
    switch (type_) {
      case Type::kInt: domain.emplace_back(detail::parse_int(token, context)); break;
      case Type::kReal: {
        const double v = detail::parse_real(token, context);
        if (!std::isfinite(v)) {
          throw std::invalid_argument{context + ": axis values must be finite, got '" +
                                      std::string{token} + "'"};
        }
        domain.emplace_back(v);
        break;
      }
      case Type::kString: {
        bool known = false;
        for (const auto& v : values_) known = known || std::get<std::string>(v) == token;
        if (!known) {
          std::string domain_list;
          for (const auto& v : values_) {
            domain_list += (domain_list.empty() ? "" : ", ") + std::get<std::string>(v);
          }
          throw std::invalid_argument{context + ": unknown value '" + std::string{token} +
                                      "' (domain: " + domain_list + ")"};
        }
        domain.emplace_back(std::string{token});
        break;
      }
    }
  }
  return ParamAxis{name_, type_, std::move(domain)};
}

// --- ParamPoint --------------------------------------------------------------

const AxisValue& ParamPoint::get(std::string_view axis) const {
  for (const auto& [name, value] : entries_) {
    if (name == axis) return value;
  }
  throw std::out_of_range{"ParamPoint: no axis '" + std::string{axis} + "'"};
}

std::int64_t ParamPoint::get_int(std::string_view axis) const {
  return std::get<std::int64_t>(get(axis));
}

double ParamPoint::get_real(std::string_view axis) const { return std::get<double>(get(axis)); }

const std::string& ParamPoint::get_string(std::string_view axis) const {
  return std::get<std::string>(get(axis));
}

std::size_t ParamPoint::get_size(std::string_view axis) const {
  const std::int64_t v = get_int(axis);
  if (v < 0) throw std::invalid_argument{"ParamPoint: negative size for '" + std::string{axis} + "'"};
  return static_cast<std::size_t>(v);
}

std::string ParamPoint::label() const {
  std::string out;
  for (const auto& [name, value] : entries_) {
    if (!out.empty()) out += ' ';
    out += name + '=' + core::to_string(value);
  }
  return out;
}

// --- ParamGrid ---------------------------------------------------------------

ParamGrid::ParamGrid(std::vector<ParamAxis> axes) : axes_{std::move(axes)} {
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    for (std::size_t j = i + 1; j < axes_.size(); ++j) {
      if (axes_[i].name() == axes_[j].name()) {
        throw std::invalid_argument{"ParamGrid: duplicate axis '" + axes_[i].name() + "'"};
      }
    }
    size_ *= axes_[i].size();
  }
}

const ParamAxis& ParamGrid::axis(std::string_view name) const {
  for (const auto& axis : axes_) {
    if (axis.name() == name) return axis;
  }
  throw std::out_of_range{"ParamGrid: no axis '" + std::string{name} + "'"};
}

bool ParamGrid::has_axis(std::string_view name) const {
  for (const auto& axis : axes_) {
    if (axis.name() == name) return true;
  }
  return false;
}

ParamPoint ParamGrid::point(std::size_t flat) const {
  if (flat >= size_) throw std::out_of_range{"ParamGrid::point: index out of range"};
  std::vector<std::pair<std::string, AxisValue>> entries(axes_.size(),
                                                         {std::string{}, AxisValue{}});
  // Row-major: the last axis varies fastest.
  for (std::size_t a = axes_.size(); a-- > 0;) {
    const ParamAxis& axis = axes_[a];
    entries[a] = {axis.name(), axis.at(flat % axis.size())};
    flat /= axis.size();
  }
  return ParamPoint{std::move(entries)};
}

// --- CampaignRegistry --------------------------------------------------------

CampaignRegistry& CampaignRegistry::add(ScenarioSpec spec) {
  if (find(spec.name) != nullptr) {
    throw std::invalid_argument{"CampaignRegistry: duplicate scenario '" + spec.name + "'"};
  }
  if (!spec.axes || !spec.run) {
    throw std::invalid_argument{"CampaignRegistry: scenario '" + spec.name +
                                "' lacks axes or run"};
  }
  specs_.push_back(std::move(spec));
  return *this;
}

const ScenarioSpec* CampaignRegistry::find(std::string_view name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

ParamGrid CampaignRegistry::grid(const ScenarioSpec& spec, const Scale& scale,
                                 const std::map<std::string, std::string>& overrides) {
  std::vector<ParamAxis> axes = spec.axes(scale);
  for (const auto& [name, csv] : overrides) {
    bool found = false;
    for (auto& axis : axes) {
      if (axis.name() != name) continue;
      axis = axis.parse_override(csv);
      found = true;
      break;
    }
    if (!found) {
      std::string axis_list;
      for (const auto& axis : axes) {
        axis_list += (axis_list.empty() ? "" : ", ") + axis.name();
      }
      throw std::invalid_argument{"scenario '" + spec.name + "' has no axis '" + name +
                                  "' (axes: " + (axis_list.empty() ? "none" : axis_list) + ")"};
    }
  }
  return ParamGrid{std::move(axes)};
}

ResultTable CampaignRegistry::run(const ScenarioSpec& spec, const RunOptions& options) const {
  const ReplicationRunner& runner = options.runner != nullptr ? *options.runner
                                                              : default_runner();
  PaperContext ctx;
  if (spec.needs_calibration) {
    ctx = make_context(options.scale, options.seed, runner);
  } else {
    ctx.scale = options.scale;
    ctx.seed = options.seed;
  }
  ctx.runner = &runner;
  return spec.run(ScenarioRun{ctx, grid(spec, options.scale, options.axis_overrides),
                              options.fault_plan ? &*options.fault_plan : nullptr});
}

ResultTable CampaignRegistry::run(std::string_view name, const RunOptions& options) const {
  const ScenarioSpec* spec = find(name);
  if (spec == nullptr) {
    throw std::out_of_range{"CampaignRegistry: unknown scenario '" + std::string{name} + "'"};
  }
  return run(*spec, options);
}

}  // namespace sanperf::core
