// Declarative scenario/campaign API.
//
// A scenario is *described*, not hard-coded: a ScenarioSpec names its
// typed parameter axes (group size n, timeout, t_send, crash scenario,
// ...), its output schema, and a run function that enumerates the
// (restricted) axis grid into flattened ShardSpace batches over the
// replication engine. The CampaignRegistry holds the specs; one engine --
// and one `sanperf` CLI on top of it -- lists, restricts (--set
// axis=value), runs, and renders every scenario uniformly. Every paper
// figure/table, ablation and extension is a registered spec; a new
// workload is one more registration, not a new driver binary.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/config.hpp"
#include "core/experiments.hpp"
#include "core/replication.hpp"
#include "core/result_table.hpp"
#include "faults/plan.hpp"

namespace sanperf::core {

/// One value on a parameter axis.
using AxisValue = std::variant<std::int64_t, double, std::string>;

[[nodiscard]] std::string to_string(const AxisValue& value);

/// A named, typed parameter axis with an explicit finite domain.
class ParamAxis {
 public:
  enum class Type { kInt, kReal, kString };

  [[nodiscard]] static ParamAxis ints(std::string name, std::vector<std::int64_t> values);
  [[nodiscard]] static ParamAxis reals(std::string name, std::vector<double> values);
  [[nodiscard]] static ParamAxis strings(std::string name, std::vector<std::string> values);
  /// Convenience: int axis from the size_t lists used by Scale.
  [[nodiscard]] static ParamAxis sizes(std::string name, const std::vector<std::size_t>& values);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const AxisValue& at(std::size_t i) const { return values_.at(i); }
  [[nodiscard]] const std::vector<AxisValue>& values() const { return values_; }

  /// Typed domain views; throw std::bad_variant_access on the wrong type.
  [[nodiscard]] std::vector<std::int64_t> int_values() const;
  [[nodiscard]] std::vector<double> real_values() const;
  [[nodiscard]] std::vector<std::string> string_values() const;
  /// int_values() widened back to the Scale's size_t convention.
  [[nodiscard]] std::vector<std::size_t> size_values() const;

  /// Same-named axis whose domain is parsed from a comma-separated list
  /// ("3,5" / "0.025" / "coordinator-crash") according to this axis's
  /// type. This is how `--set axis=...` overrides a default domain.
  [[nodiscard]] ParamAxis parse_override(std::string_view csv) const;

 private:
  ParamAxis(std::string name, Type type, std::vector<AxisValue> values);

  std::string name_;
  Type type_;
  std::vector<AxisValue> values_;
};

/// One grid point: the selected value of every axis, in axis order.
class ParamPoint {
 public:
  ParamPoint() = default;
  explicit ParamPoint(std::vector<std::pair<std::string, AxisValue>> entries)
      : entries_{std::move(entries)} {}

  [[nodiscard]] const AxisValue& get(std::string_view axis) const;
  [[nodiscard]] std::int64_t get_int(std::string_view axis) const;
  [[nodiscard]] double get_real(std::string_view axis) const;
  [[nodiscard]] const std::string& get_string(std::string_view axis) const;
  [[nodiscard]] std::size_t get_size(std::string_view axis) const;

  [[nodiscard]] const std::vector<std::pair<std::string, AxisValue>>& entries() const {
    return entries_;
  }
  /// "n=3 timeout_ms=5" -- for labels and error messages.
  [[nodiscard]] std::string label() const;

 private:
  std::vector<std::pair<std::string, AxisValue>> entries_;
};

/// The cartesian product of a list of axes, enumerated in row-major order
/// (first axis slowest, last axis fastest) -- the order the nested
/// sequential loops of the original drivers used.
class ParamGrid {
 public:
  ParamGrid() = default;
  explicit ParamGrid(std::vector<ParamAxis> axes);

  [[nodiscard]] const std::vector<ParamAxis>& axes() const { return axes_; }
  [[nodiscard]] const ParamAxis& axis(std::string_view name) const;
  [[nodiscard]] bool has_axis(std::string_view name) const;
  /// Product of the axis domain sizes (1 for an axis-free grid).
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Decodes a flat index in [0, size()) into its grid point.
  [[nodiscard]] ParamPoint point(std::size_t flat) const;

 private:
  std::vector<ParamAxis> axes_;
  std::size_t size_ = 1;
};

/// Everything a scenario's run function receives: the (calibrated)
/// context -- whose runner fans the flattened task lists out -- and the
/// effective grid (default axes, restricted by any --set overrides).
/// `fault_plan` carries an explicit --fault-plan override; fault-aware
/// scenarios use it in place of their axis-derived plan, everything else
/// ignores it.
struct ScenarioRun {
  const PaperContext& ctx;
  ParamGrid grid;
  const faults::FaultPlan* fault_plan = nullptr;
};

/// A declaratively described experiment.
struct ScenarioSpec {
  std::string name;
  std::string description;
  /// Paper-shape commentary appended after the rendered text table.
  std::string notes;
  /// Whether the run needs the Fig 6 calibration pass (make_context) or a
  /// bare context (network defaults) suffices.
  bool needs_calibration = true;
  /// Default axis domains at the given scale.
  std::function<std::vector<ParamAxis>(const Scale&)> axes;
  /// Output schema (the columns of the produced ResultTable).
  std::vector<ResultTable::Column> columns;
  std::function<ResultTable(const ScenarioRun&)> run;
};

/// Options for one scenario run.
struct RunOptions {
  Scale scale = Scale::from_env();
  std::uint64_t seed = kDefaultSeed;
  /// nullptr resolves to default_runner() (SANPERF_THREADS).
  const ReplicationRunner* runner = nullptr;
  /// Axis overrides: name -> comma-separated value list (--set n=3,5).
  std::map<std::string, std::string> axis_overrides;
  /// Explicit fault plan (--fault-plan plan.json); fault-aware scenarios
  /// run it in place of their axis-derived plans.
  std::optional<faults::FaultPlan> fault_plan;
};

class CampaignRegistry {
 public:
  /// Registers a spec; throws std::invalid_argument on a duplicate name.
  CampaignRegistry& add(ScenarioSpec spec);

  [[nodiscard]] const ScenarioSpec* find(std::string_view name) const;
  [[nodiscard]] const std::vector<ScenarioSpec>& specs() const { return specs_; }

  /// The effective grid of a spec: default axes at `scale`, with any
  /// overridden axis's domain replaced by the parsed override. Throws on
  /// an override naming no axis of the spec.
  [[nodiscard]] static ParamGrid grid(const ScenarioSpec& spec, const Scale& scale,
                                      const std::map<std::string, std::string>& overrides);

  /// Builds the context (calibrating if the spec asks for it), enumerates
  /// the effective grid and runs the spec.
  [[nodiscard]] ResultTable run(const ScenarioSpec& spec, const RunOptions& options) const;
  /// Throws std::out_of_range on an unknown scenario name.
  [[nodiscard]] ResultTable run(std::string_view name, const RunOptions& options) const;

  /// The built-in registry: every paper artifact (fig6, fig7a, fig7b,
  /// table1, fig8, fig9a, fig9b), the ablations, and the future-work
  /// extensions.
  [[nodiscard]] static const CampaignRegistry& builtin();

  /// The process-wide registry the CLI serves: the builtin specs plus
  /// everything self-registered through register_scenario (the fault
  /// scenarios, out-of-tree specs). Defined in scenarios.cpp so linking
  /// any registry user pulls in the builtin registrations.
  [[nodiscard]] static CampaignRegistry& global();

  /// Appends a spec to global(). Callable from static initialisers -- the
  /// SANPERF_REGISTER_SCENARIO macro wraps it -- so a scenario in any
  /// linked translation unit appears in `sanperf list` without editing
  /// scenarios.cpp.
  static void register_scenario(ScenarioSpec spec) { global().add(std::move(spec)); }

 private:
  std::vector<ScenarioSpec> specs_;
};

/// Static-initialisation hook for self-registering scenarios:
///
///   core::ScenarioSpec my_spec();                 // factory
///   SANPERF_REGISTER_SCENARIO(my_spec);           // file scope
///
/// Caveat of static registration from a static library: the translation
/// unit must be pulled into the link (reference any of its symbols, or
/// register from a TU that is linked anyway, e.g. the binary's own).
struct ScenarioRegistrar {
  explicit ScenarioRegistrar(ScenarioSpec (*make)()) {
    CampaignRegistry::register_scenario(make());
  }
};

#define SANPERF_REGISTER_SCENARIO(make)                              \
  [[maybe_unused]] static const ::sanperf::core::ScenarioRegistrar   \
      sanperf_scenario_registrar_##make {                            \
    make                                                             \
  }

}  // namespace sanperf::core
