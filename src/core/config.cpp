#include "core/config.hpp"

#include <cstdlib>

namespace sanperf::core {

Scale Scale::quick() {
  Scale s;
  s.delay_probes = 400;
  s.class1_executions = 150;
  s.sim_replications = 150;
  s.class3_runs = 2;
  s.class3_executions = 50;
  s.ns = {3, 5, 7};
  s.timeouts_ms = {1, 5, 10, 20, 40, 100};
  s.workload_warmup = 15;
  s.workload_instances = 120;
  s.offered_loads_per_s = {100, 300, 600, 900};
  s.client_counts = {1, 4, 16};
  s.batch_sizes = {1, 4, 16, 32};
  s.name_ = "quick";
  return s;
}

Scale Scale::defaults() {
  Scale s;
  s.name_ = "default";
  return s;
}

Scale Scale::full() {
  Scale s;
  s.delay_probes = 10000;
  s.class1_executions = 5000;
  s.sim_replications = 5000;
  s.class3_runs = 20;
  s.class3_executions = 1000;
  s.workload_warmup = 200;
  s.workload_instances = 2000;
  s.offered_loads_per_s = {50, 100, 200, 300, 400, 600, 800, 1000, 1200, 1500};
  s.client_counts = {1, 2, 4, 8, 16, 32};
  s.batch_sizes = {1, 2, 4, 8, 16, 32, 64};
  s.batch_offered_values_per_s = 4000.0;
  s.name_ = "full";
  return s;
}

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kChandraToueg: return "Chandra-Toueg";
    case Algorithm::kMostefaouiRaynal: return "Mostefaoui-Raynal";
  }
  return "?";
}

Scale Scale::from_env() {
  const char* env = std::getenv("SANPERF_SCALE");
  if (env == nullptr) return defaults();
  const std::string v{env};
  if (v == "quick") return quick();
  if (v == "full") return full();
  return defaults();
}

}  // namespace sanperf::core
