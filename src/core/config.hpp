// Experiment configuration: the paper's parameter space plus sample-size
// presets so every bench can run quickly by default and at paper scale
// on demand (environment variable SANPERF_SCALE=quick|default|full).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sanperf::core {

struct Scale {
  std::size_t delay_probes = 2000;        ///< Fig 6 end-to-end delay samples
  std::size_t class1_executions = 1000;   ///< Fig 7a / Table 1 (paper: 5000)
  std::size_t sim_replications = 1000;    ///< SAN transient replications
  std::size_t class3_runs = 5;            ///< QoS runs per setting (paper: 20)
  std::size_t class3_executions = 200;    ///< consensus per run (paper: 1000)
  std::vector<std::size_t> ns = {3, 5, 7, 9, 11};
  std::vector<std::size_t> sim_ns = {3, 5};  ///< the paper simulates n = 3, 5
  std::vector<double> timeouts_ms = {1, 2, 3, 5, 7, 10, 15, 20, 30, 40, 70, 100};

  // Steady-state workload-engine knobs (core/workload.hpp).
  std::size_t workload_warmup = 50;      ///< stream instances truncated as warm-up
  std::size_t workload_instances = 400;  ///< measured instances per stream
  /// Open-loop offered-load grid (instances/s); spans past the n = 5
  /// saturation knee so the load-latency sweep shows the blow-up.
  std::vector<double> offered_loads_per_s = {100, 200, 400, 600, 800, 1100};
  /// Closed-loop client-count grid.
  std::vector<std::size_t> client_counts = {1, 2, 4, 8, 16};
  /// Batch-size grid for the batch_throughput_sweep (values per instance).
  std::vector<std::size_t> batch_sizes = {1, 2, 4, 8, 16, 32};
  /// Max-linger deadline paired with the batch sweep; large enough that
  /// big batches actually fill at the offered rate, small enough to bound
  /// per-value queueing delay.
  double batch_linger_ms = 10.0;
  /// Offered *value* rate for the batch sweep -- far past the unbatched
  /// instance-rate knee (~376 inst/s at n = 5), so only batching can keep
  /// up.
  double batch_offered_values_per_s = 2500.0;

  [[nodiscard]] static Scale quick();
  [[nodiscard]] static Scale defaults();
  [[nodiscard]] static Scale full();  ///< the paper's sample sizes

  /// Reads SANPERF_SCALE (defaults to `defaults()` when unset/unknown).
  [[nodiscard]] static Scale from_env();
  [[nodiscard]] std::string name() const { return name_; }

 private:
  std::string name_ = "default";
};

/// Consensus algorithms available for comparative studies (the paper's
/// Section 6: "we will analyze alternative protocols and compare").
enum class Algorithm {
  kChandraToueg,      ///< the paper's algorithm
  kMostefaouiRaynal,  ///< the natural <>S comparator
};

[[nodiscard]] const char* to_string(Algorithm algorithm);

/// Paper constants.
inline constexpr double kTsendMs = 0.025;                    // Section 5.2
inline constexpr double kHeartbeatFactor = 0.7;              // Th = 0.7 T
inline constexpr std::uint64_t kDefaultSeed = 20020612;      // DSN 2002

}  // namespace sanperf::core
