// Internal: one isolated consensus execution on a fresh emulated cluster,
// parameterised on the consensus layer and an optional fault plan. This is
// the single harness behind the class-1/2 measurement campaign
// (Chandra-Toueg), the algorithm-comparison extension (Mostefaoui-Raynal)
// and the fault-injected campaigns, so the harness -- skew model, proposal
// schedule, decision capture, deadline -- cannot diverge between them.
// With `plan == nullptr` the draws are byte-identical to the historic
// plain harness; a degenerate crash-at-0 plan is bit-identical to the
// crash_initially path (tests/faults_test.cpp enforces both).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>

#include "core/measurement.hpp"
#include "faults/injector.hpp"
#include "faults/lowering.hpp"
#include "faults/plan.hpp"
#include "fd/failure_detector.hpp"
#include "net/params.hpp"
#include "runtime/cluster.hpp"
#include "topo/topology.hpp"

namespace sanperf::core::detail {

/// The public campaign-facing outcome type; defined in measurement.hpp so
/// the flattened drivers can fold outcomes without pulling in the harness.
using ExecOutcome = ::sanperf::core::ExecOutcome;

template <typename ConsensusLayer>
ExecOutcome run_one_consensus_execution(std::size_t n, const net::NetworkParams& params,
                                        const net::TimerModel& timers, int initially_crashed,
                                        std::size_t k, std::uint64_t exec_seed,
                                        const faults::FaultPlan* plan = nullptr,
                                        std::shared_ptr<const topo::Topology> topology = nullptr) {
  // Independent executions: a fresh cluster per run keeps them perfectly
  // isolated (the cluster equivalent of the paper's 10 ms separation).
  runtime::ClusterConfig cfg;
  cfg.n = n;
  cfg.network = params;
  cfg.timers = timers;
  cfg.topology = topology;
  cfg.seed = exec_seed;
  runtime::Cluster cluster{cfg};
  std::optional<faults::FaultInjector> injector;
  if (plan != nullptr) injector.emplace(cluster, *plan);

  // Domain-scoped events lower against the topology here too, so
  // initially_down sees the per-host form the injector replays.
  std::optional<faults::FaultPlan> lowered;
  if (plan != nullptr && plan->has_domain_events()) {
    lowered =
        faults::lower_plan(*plan, topology ? *topology : topo::Topology::single_hub(n));
    plan = &*lowered;
  }

  // The static detector pre-suspects every host down at the start: the
  // explicitly crashed one and everything the plan crashes at t <= 0.
  std::set<runtime::HostId> suspected;
  if (plan != nullptr) {
    for (const faults::HostId h : plan->initially_down()) suspected.insert(h);
  }
  if (initially_crashed >= 0) suspected.insert(static_cast<runtime::HostId>(initially_crashed));

  std::optional<des::TimePoint> first_decide;
  std::int32_t first_rounds = 0;
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
    auto& proc = cluster.process(pid);
    auto& fd_layer = proc.add_layer<fd::StaticFd>(suspected);
    auto& cons = proc.template add_layer<ConsensusLayer>(fd_layer);
    cons.set_decide_callback([&](const consensus::DecisionEvent& ev) {
      if (!first_decide || ev.at < *first_decide) {
        first_decide = ev.at;
        first_rounds = ev.round;
      }
    });
  }
  if (injector) injector->arm();  // immediate crashes fire here...
  if (initially_crashed >= 0) {
    cluster.crash_initially(static_cast<runtime::HostId>(initially_crashed));
  }

  // All correct processes propose at t0 (up to the emulated NTP skew).
  const des::TimePoint t0 = des::TimePoint::origin() + des::Duration::from_ms(1.0);
  auto skew_rng = cluster.rng_stream("ntp-skew");
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
    auto& proc = cluster.process(pid);
    if (proc.crashed()) continue;
    const des::TimePoint start = t0 + des::Duration::from_ms(skew_rng.uniform(0.0, 0.05));
    cluster.sim().schedule_at(start, [&proc, k] {
      proc.template layer<ConsensusLayer>().propose(static_cast<std::int32_t>(k),
                                                    1 + proc.id());
    });
  }

  const des::TimePoint deadline = t0 + des::Duration::from_ms(1000.0);
  cluster.run_until([&] { return first_decide.has_value(); }, deadline);

  ExecOutcome out;
  if (first_decide) {
    out.latency_ms = (*first_decide - t0).to_ms();
    out.rounds = first_rounds;
  }
  return out;
}

}  // namespace sanperf::core::detail
