#include "core/experiments.hpp"

#include <cmath>
#include <deque>
#include <stdexcept>
#include <utility>

#include "core/simulation.hpp"
#include "sanmodels/consensus_model.hpp"

namespace sanperf::core {

sanmodels::TransportParams PaperContext::transport(std::size_t n) const {
  const auto it = broadcast_fits.find(n);
  if (it == broadcast_fits.end()) {
    throw std::out_of_range{"PaperContext::transport: no broadcast fit for this n"};
  }
  return make_transport(unicast_fit, it->second, t_send_ms);
}

namespace {

/// The Fig 6 calibration pass as one flattened shard space: group 0 holds
/// the unicast probe shards, one further group per broadcast n. Returns the
/// pooled per-group delay samples in probe order.
struct DelaySamples {
  std::vector<double> unicast_ms;
  std::map<std::size_t, std::vector<double>> broadcast_ms;  ///< keyed by n
};

DelaySamples run_calibration_probes(const net::NetworkParams& network, const Scale& scale,
                                    std::uint64_t seed, const ReplicationRunner& runner) {
  const std::size_t shard_count = delay_probe_shards(scale.delay_probes);
  ShardSpace space;
  space.add_group(shard_count, seed + 1, "probe");
  for (const std::size_t n : scale.sim_ns) space.add_group(shard_count, seed + 2 + n, "probe");

  auto shards = runner.run_flat(space, [&](const ShardSpace::Task& t) {
    const std::size_t count = delay_probe_shard_size(scale.delay_probes, t.index);
    if (t.group == 0) return unicast_probe_shard(network, count, t.seed);
    return broadcast_probe_shard(network, scale.sim_ns[t.group - 1], count, t.seed);
  });

  const auto concat = [](std::vector<double>& a, std::vector<double>& b) {
    a.insert(a.end(), b.begin(), b.end());
  };
  DelaySamples out;
  out.unicast_ms = tree_merge(std::move(shards[0]), concat, &runner);
  for (std::size_t g = 0; g < scale.sim_ns.size(); ++g) {
    out.broadcast_ms[scale.sim_ns[g]] = tree_merge(std::move(shards[g + 1]), concat, &runner);
  }
  return out;
}

}  // namespace

PaperContext make_context(const Scale& scale, std::uint64_t seed) {
  PaperContext ctx;
  ctx.scale = scale;
  ctx.seed = seed;

  const auto samples = run_calibration_probes(ctx.network, scale, seed, *ctx.runner);
  ctx.unicast_fit = stats::fit_bimodal_uniform(samples.unicast_ms);
  for (const auto& [n, delays] : samples.broadcast_ms) {
    ctx.broadcast_fits[n] = stats::fit_bimodal_uniform(delays);
  }
  return ctx;
}

Fig6Result run_fig6(const PaperContext& ctx) {
  Fig6Result out;
  auto samples = run_calibration_probes(ctx.network, ctx.scale, ctx.seed, *ctx.runner);
  out.unicast_ms = std::move(samples.unicast_ms);
  out.unicast_fit = stats::fit_bimodal_uniform(out.unicast_ms);
  for (auto& [n, delays] : samples.broadcast_ms) {
    out.broadcast_fits[n] = stats::fit_bimodal_uniform(delays);
    out.broadcast_ms[n] = std::move(delays);
  }
  return out;
}

std::vector<Fig7aRow> run_fig7a(const PaperContext& ctx) {
  // Flattened fan-out: every (n, execution) pair is one task, so small n
  // groups and large ones drain from the same pool batch.
  ShardSpace space;
  for (const std::size_t n : ctx.scale.ns) {
    space.add_group(ctx.scale.class1_executions, ctx.seed + 100 + n, "exec");
  }
  const auto outcomes = ctx.runner->run_flat(space, [&](const ShardSpace::Task& t) {
    return run_latency_execution(ctx.scale.ns[t.group], ctx.network, ctx.timers,
                                 /*initially_crashed=*/-1, t.index, t.seed);
  });

  std::vector<Fig7aRow> rows;
  for (std::size_t g = 0; g < ctx.scale.ns.size(); ++g) {
    const auto meas = fold_latency_outcomes(outcomes[g]);
    Fig7aRow row;
    row.n = ctx.scale.ns[g];
    row.latencies_ms = meas.latencies_ms;
    row.mean = meas.summary().mean_ci(0.90);
    row.undecided = meas.undecided;
    rows.push_back(std::move(row));
  }
  return rows;
}

Fig7bResult run_fig7b(const PaperContext& ctx) {
  Fig7bResult out;
  const auto meas = measure_latency(5, ctx.network, ctx.timers, -1, ctx.scale.class1_executions,
                                    ctx.seed + 105, *ctx.runner);
  out.measured_ms = meas.latencies_ms;

  const std::vector<double> candidates = {0.005, 0.010, 0.015, 0.020, 0.025, 0.035};
  const stats::Ecdf measured_ecdf{out.measured_ms};
  out.sweep = sweep_tsend(measured_ecdf, ctx.unicast_fit, ctx.broadcast_fits.at(5), candidates,
                          ctx.scale.sim_replications, ctx.seed + 7);

  for (const double t_send : candidates) {
    const auto transport = make_transport(ctx.unicast_fit, ctx.broadcast_fits.at(5), t_send);
    const auto study =
        simulate_class1(5, transport, ctx.scale.sim_replications, ctx.seed + 7, *ctx.runner);
    out.sim_ms[t_send] = study.rewards;
  }
  return out;
}

std::vector<Table1Row> run_table1(const PaperContext& ctx) {
  // One flattened space for the whole campaign: every (n, scenario,
  // execution) measurement task and every (n, scenario, replication) SAN
  // simulation task drains from a single batch. Per-task seeds reproduce
  // the nested measure_latency / simulate_class* calls exactly.
  struct GroupDesc {
    std::size_t n = 0;
    int crashed = -1;                            ///< measurement scenario
    const san::TransientStudy* study = nullptr;  ///< non-null for SAN groups
  };
  struct Cell {
    ExecOutcome exec;
    std::optional<double> reward;
  };

  // SAN studies for the calibrated n, built up front on the caller thread
  // (a deque keeps the models address-stable under the studies' pointers).
  struct SimGroup {
    sanmodels::ConsensusSanModel built;
    std::optional<san::TransientStudy> study;
  };
  std::deque<SimGroup> sims;
  const auto add_sim = [&](std::size_t n, int crashed) {
    sanmodels::ConsensusSanConfig cfg;
    cfg.n = n;
    cfg.transport = ctx.transport(n);
    cfg.initially_crashed = crashed;
    auto& sim = sims.emplace_back(SimGroup{sanmodels::build_consensus_san(cfg), std::nullopt});
    sim.study.emplace(sim.built.model, sim.built.stop_predicate());
    sim.study->set_time_limit(des::Duration::seconds(10));
    return &*sim.study;
  };

  ShardSpace space;
  std::vector<GroupDesc> descs;
  for (const std::size_t n : ctx.scale.ns) {
    for (const auto& [crashed, base] :
         {std::pair{-1, 200ULL}, std::pair{0, 300ULL}, std::pair{1, 400ULL}}) {
      space.add_group(ctx.scale.class1_executions, ctx.seed + base + n, "exec");
      descs.push_back(GroupDesc{n, crashed, nullptr});
    }
    if (ctx.broadcast_fits.contains(n)) {
      for (const auto& [crashed, base] :
           {std::pair{-1, 500ULL}, std::pair{0, 600ULL}, std::pair{1, 700ULL}}) {
        space.add_group(ctx.scale.sim_replications, ctx.seed + base + n, "rep");
        descs.push_back(GroupDesc{n, crashed, add_sim(n, crashed)});
      }
    }
  }

  const auto cells = ctx.runner->run_flat(space, [&](const ShardSpace::Task& t) {
    const GroupDesc& gd = descs[t.group];
    Cell cell;
    if (gd.study != nullptr) {
      cell.reward = gd.study->run_one(des::RandomEngine{t.seed});
    } else {
      cell.exec = run_latency_execution(gd.n, ctx.network, ctx.timers, gd.crashed, t.index,
                                        t.seed);
    }
    return cell;
  });

  // Fold per group in index order: bit-identical to the sequential sweep.
  const auto fold_meas = [&](std::size_t g) {
    std::vector<ExecOutcome> outcomes;
    outcomes.reserve(cells[g].size());
    for (const Cell& c : cells[g]) outcomes.push_back(c.exec);
    return fold_latency_outcomes(outcomes).summary().mean_ci(0.90);
  };
  const auto fold_sim = [&](std::size_t g) {
    std::vector<std::optional<double>> rewards;
    rewards.reserve(cells[g].size());
    for (const Cell& c : cells[g]) rewards.push_back(c.reward);
    return fold_study_rewards(rewards).summary.mean();
  };

  std::vector<Table1Row> rows;
  std::size_t g = 0;
  for (const std::size_t n : ctx.scale.ns) {
    Table1Row row;
    row.n = n;
    row.meas_no_crash = fold_meas(g++);
    row.meas_coord_crash = fold_meas(g++);
    row.meas_part_crash = fold_meas(g++);
    if (ctx.broadcast_fits.contains(n)) {
      row.sim_no_crash = fold_sim(g++);
      row.sim_coord_crash = fold_sim(g++);
      row.sim_part_crash = fold_sim(g++);
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<Class3Point> run_class3_measurements(const PaperContext& ctx,
                                                 const std::vector<std::size_t>& ns) {
  // Flattened (n, timeout, run) space: every class-3 run is one task, so
  // the whole Fig 8 / Fig 9a sweep drains from a single pool batch.
  ShardSpace space;
  std::vector<Class3Point> points;
  for (const std::size_t n : ns) {
    for (const double timeout : ctx.scale.timeouts_ms) {
      space.add_group(ctx.scale.class3_runs,
                      ctx.seed + 1000 + 17 * n + static_cast<std::uint64_t>(timeout), "run");
      Class3Point pt;
      pt.n = n;
      pt.timeout_ms = timeout;
      points.push_back(pt);
    }
  }

  auto runs = ctx.runner->run_flat(space, [&](const ShardSpace::Task& t) {
    const Class3Point& pt = points[t.group];
    return measure_class3_run(pt.n, ctx.network, ctx.timers, pt.timeout_ms,
                              ctx.scale.class3_executions, t.seed);
  });

  for (std::size_t g = 0; g < points.size(); ++g) {
    points[g].meas = fold_class3_runs(std::move(runs[g]));
  }
  return points;
}

std::vector<Fig9bPoint> run_fig9b(const PaperContext& ctx,
                                  const std::vector<Class3Point>& measurements) {
  std::vector<Fig9bPoint> out;
  for (const auto& pt : measurements) {
    if (!ctx.broadcast_fits.contains(pt.n)) continue;  // sim only where calibrated (n = 3, 5)
    Fig9bPoint row;
    row.n = pt.n;
    row.timeout_ms = pt.timeout_ms;
    row.meas_ms = pt.meas.latency_ms.mean;
    row.qos_t_mr_ms = pt.meas.pooled_qos.t_mr_ms;
    row.qos_t_m_ms = pt.meas.pooled_qos.t_m_ms;

    const auto transport = ctx.transport(pt.n);
    const auto& qos = pt.meas.pooled_qos;
    if (!(qos.t_mr_ms > 0) || !(qos.t_m_ms > 0) || qos.t_m_ms >= qos.t_mr_ms) {
      // The detector made essentially no mistakes at this timeout: the
      // class-3 model degenerates to class 1.
      const auto study =
          simulate_class1(pt.n, transport, ctx.scale.sim_replications, ctx.seed + 9000, *ctx.runner);
      row.sim_det_ms = study.summary.mean();
      row.sim_exp_ms = row.sim_det_ms;
    } else {
      const auto det = fd::AbstractFdParams::from_qos(
          qos, fd::AbstractFdParams::Sojourn::kDeterministic);
      const auto exp = fd::AbstractFdParams::from_qos(
          qos, fd::AbstractFdParams::Sojourn::kExponential);
      row.sim_det_ms = simulate_class3(pt.n, transport, det, ctx.scale.sim_replications,
                                       ctx.seed + 9100, *ctx.runner)
                           .summary.mean();
      row.sim_exp_ms = simulate_class3(pt.n, transport, exp, ctx.scale.sim_replications,
                                       ctx.seed + 9200, *ctx.runner)
                           .summary.mean();
    }
    out.push_back(row);
  }
  return out;
}

const std::vector<PaperTable1Row>& paper_table1() {
  static const double nan = std::nan("");
  static const std::vector<PaperTable1Row> rows = {
      {3, 1.06, 1.568, 1.115, 1.030, 1.336, 0.786},
      {5, 1.43, 2.245, 1.340, 1.442, 2.295, 1.336},
      {7, 2.00, 2.739, 1.811, nan, nan, nan},
      {9, 2.62, 3.101, 2.400, nan, nan, nan},
      {11, 3.27, 3.469, 3.049, nan, nan, nan},
  };
  return rows;
}

}  // namespace sanperf::core
