#include "core/experiments.hpp"

#include <cmath>
#include <stdexcept>

#include "core/simulation.hpp"

namespace sanperf::core {

sanmodels::TransportParams PaperContext::transport(std::size_t n) const {
  const auto it = broadcast_fits.find(n);
  if (it == broadcast_fits.end()) {
    throw std::out_of_range{"PaperContext::transport: no broadcast fit for this n"};
  }
  return make_transport(unicast_fit, it->second, t_send_ms);
}

PaperContext make_context(const Scale& scale, std::uint64_t seed) {
  PaperContext ctx;
  ctx.scale = scale;
  ctx.seed = seed;

  const auto unicast = measure_unicast_delays(ctx.network, scale.delay_probes, seed + 1);
  ctx.unicast_fit = stats::fit_bimodal_uniform(unicast);
  for (const std::size_t n : scale.sim_ns) {
    const auto bcast = measure_broadcast_delays(ctx.network, n, scale.delay_probes, seed + 2 + n);
    ctx.broadcast_fits[n] = stats::fit_bimodal_uniform(bcast);
  }
  return ctx;
}

Fig6Result run_fig6(const PaperContext& ctx) {
  Fig6Result out;
  out.unicast_ms = measure_unicast_delays(ctx.network, ctx.scale.delay_probes, ctx.seed + 1);
  out.unicast_fit = stats::fit_bimodal_uniform(out.unicast_ms);
  for (const std::size_t n : ctx.scale.sim_ns) {
    out.broadcast_ms[n] =
        measure_broadcast_delays(ctx.network, n, ctx.scale.delay_probes, ctx.seed + 2 + n);
    out.broadcast_fits[n] = stats::fit_bimodal_uniform(out.broadcast_ms[n]);
  }
  return out;
}

std::vector<Fig7aRow> run_fig7a(const PaperContext& ctx) {
  std::vector<Fig7aRow> rows;
  for (const std::size_t n : ctx.scale.ns) {
    const auto meas = measure_latency(n, ctx.network, ctx.timers, /*initially_crashed=*/-1,
                                      ctx.scale.class1_executions, ctx.seed + 100 + n,
                                      *ctx.runner);
    Fig7aRow row;
    row.n = n;
    row.latencies_ms = meas.latencies_ms;
    row.mean = meas.summary().mean_ci(0.90);
    row.undecided = meas.undecided;
    rows.push_back(std::move(row));
  }
  return rows;
}

Fig7bResult run_fig7b(const PaperContext& ctx) {
  Fig7bResult out;
  const auto meas = measure_latency(5, ctx.network, ctx.timers, -1, ctx.scale.class1_executions,
                                    ctx.seed + 105, *ctx.runner);
  out.measured_ms = meas.latencies_ms;

  const std::vector<double> candidates = {0.005, 0.010, 0.015, 0.020, 0.025, 0.035};
  const stats::Ecdf measured_ecdf{out.measured_ms};
  out.sweep = sweep_tsend(measured_ecdf, ctx.unicast_fit, ctx.broadcast_fits.at(5), candidates,
                          ctx.scale.sim_replications, ctx.seed + 7);

  for (const double t_send : candidates) {
    const auto transport = make_transport(ctx.unicast_fit, ctx.broadcast_fits.at(5), t_send);
    const auto study =
        simulate_class1(5, transport, ctx.scale.sim_replications, ctx.seed + 7, *ctx.runner);
    out.sim_ms[t_send] = study.rewards;
  }
  return out;
}

std::vector<Table1Row> run_table1(const PaperContext& ctx) {
  std::vector<Table1Row> rows;
  for (const std::size_t n : ctx.scale.ns) {
    Table1Row row;
    row.n = n;
    const auto no_crash = measure_latency(n, ctx.network, ctx.timers, -1,
                                          ctx.scale.class1_executions, ctx.seed + 200 + n,
                                          *ctx.runner);
    const auto coord = measure_latency(n, ctx.network, ctx.timers, /*crashed=*/0,
                                       ctx.scale.class1_executions, ctx.seed + 300 + n,
                                       *ctx.runner);
    const auto part = measure_latency(n, ctx.network, ctx.timers, /*crashed=*/1,
                                      ctx.scale.class1_executions, ctx.seed + 400 + n,
                                      *ctx.runner);
    row.meas_no_crash = no_crash.summary().mean_ci(0.90);
    row.meas_coord_crash = coord.summary().mean_ci(0.90);
    row.meas_part_crash = part.summary().mean_ci(0.90);

    if (ctx.broadcast_fits.contains(n)) {
      const auto transport = ctx.transport(n);
      row.sim_no_crash =
          simulate_class1(n, transport, ctx.scale.sim_replications, ctx.seed + 500 + n, *ctx.runner)
              .summary.mean();
      row.sim_coord_crash =
          simulate_class2(n, transport, 0, ctx.scale.sim_replications, ctx.seed + 600 + n,
                          *ctx.runner)
              .summary.mean();
      row.sim_part_crash =
          simulate_class2(n, transport, 1, ctx.scale.sim_replications, ctx.seed + 700 + n,
                          *ctx.runner)
              .summary.mean();
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<Class3Point> run_class3_measurements(const PaperContext& ctx,
                                                 const std::vector<std::size_t>& ns) {
  std::vector<Class3Point> points;
  for (const std::size_t n : ns) {
    for (const double timeout : ctx.scale.timeouts_ms) {
      Class3Point pt;
      pt.n = n;
      pt.timeout_ms = timeout;
      pt.meas = measure_class3(n, ctx.network, ctx.timers, timeout, ctx.scale.class3_runs,
                               ctx.scale.class3_executions,
                               ctx.seed + 1000 + 17 * n + static_cast<std::uint64_t>(timeout),
                               *ctx.runner);
      points.push_back(std::move(pt));
    }
  }
  return points;
}

std::vector<Fig9bPoint> run_fig9b(const PaperContext& ctx,
                                  const std::vector<Class3Point>& measurements) {
  std::vector<Fig9bPoint> out;
  for (const auto& pt : measurements) {
    if (!ctx.broadcast_fits.contains(pt.n)) continue;  // sim only where calibrated (n = 3, 5)
    Fig9bPoint row;
    row.n = pt.n;
    row.timeout_ms = pt.timeout_ms;
    row.meas_ms = pt.meas.latency_ms.mean;
    row.qos_t_mr_ms = pt.meas.pooled_qos.t_mr_ms;
    row.qos_t_m_ms = pt.meas.pooled_qos.t_m_ms;

    const auto transport = ctx.transport(pt.n);
    const auto& qos = pt.meas.pooled_qos;
    if (!(qos.t_mr_ms > 0) || !(qos.t_m_ms > 0) || qos.t_m_ms >= qos.t_mr_ms) {
      // The detector made essentially no mistakes at this timeout: the
      // class-3 model degenerates to class 1.
      const auto study =
          simulate_class1(pt.n, transport, ctx.scale.sim_replications, ctx.seed + 9000, *ctx.runner);
      row.sim_det_ms = study.summary.mean();
      row.sim_exp_ms = row.sim_det_ms;
    } else {
      const auto det = fd::AbstractFdParams::from_qos(
          qos, fd::AbstractFdParams::Sojourn::kDeterministic);
      const auto exp = fd::AbstractFdParams::from_qos(
          qos, fd::AbstractFdParams::Sojourn::kExponential);
      row.sim_det_ms = simulate_class3(pt.n, transport, det, ctx.scale.sim_replications,
                                       ctx.seed + 9100, *ctx.runner)
                           .summary.mean();
      row.sim_exp_ms = simulate_class3(pt.n, transport, exp, ctx.scale.sim_replications,
                                       ctx.seed + 9200, *ctx.runner)
                           .summary.mean();
    }
    out.push_back(row);
  }
  return out;
}

const std::vector<PaperTable1Row>& paper_table1() {
  static const double nan = std::nan("");
  static const std::vector<PaperTable1Row> rows = {
      {3, 1.06, 1.568, 1.115, 1.030, 1.336, 0.786},
      {5, 1.43, 2.245, 1.340, 1.442, 2.295, 1.336},
      {7, 2.00, 2.739, 1.811, nan, nan, nan},
      {9, 2.62, 3.101, 2.400, nan, nan, nan},
      {11, 3.27, 3.469, 3.049, nan, nan, nan},
  };
  return rows;
}

}  // namespace sanperf::core
