#include "core/experiments.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/simulation.hpp"
#include "sanmodels/consensus_model.hpp"

namespace sanperf::core {

sanmodels::TransportParams PaperContext::transport(std::size_t n) const {
  const auto it = broadcast_fits.find(n);
  if (it == broadcast_fits.end()) {
    throw std::out_of_range{"PaperContext::transport: no broadcast fit for this n"};
  }
  return make_transport(unicast_fit, it->second, t_send_ms);
}

namespace {

/// The Fig 6 calibration pass as one flattened shard space: group 0 holds
/// the unicast probe shards, one further group per broadcast n. Returns the
/// pooled per-group delay samples in probe order.
struct DelaySamples {
  std::vector<double> unicast_ms;
  std::map<std::size_t, std::vector<double>> broadcast_ms;  ///< keyed by n
};

DelaySamples run_calibration_probes(const net::NetworkParams& network, std::size_t probes,
                                    const std::vector<std::size_t>& ns, std::uint64_t seed,
                                    const ReplicationRunner& runner) {
  const std::size_t shard_count = delay_probe_shards(probes);
  ShardSpace space;
  space.add_group(shard_count, seed + 1, "probe");
  for (const std::size_t n : ns) space.add_group(shard_count, seed + 2 + n, "probe");

  auto shards = runner.run_flat(space, [&](const ShardSpace::Task& t) {
    const std::size_t count = delay_probe_shard_size(probes, t.index);
    if (t.group == 0) return unicast_probe_shard(network, count, t.seed);
    return broadcast_probe_shard(network, ns[t.group - 1], count, t.seed);
  });

  const auto concat = [](std::vector<double>& a, std::vector<double>& b) {
    a.insert(a.end(), b.begin(), b.end());
  };
  DelaySamples out;
  out.unicast_ms = tree_merge(std::move(shards[0]), concat, &runner);
  for (std::size_t g = 0; g < ns.size(); ++g) {
    out.broadcast_ms[ns[g]] = tree_merge(std::move(shards[g + 1]), concat, &runner);
  }
  return out;
}

}  // namespace

PaperContext make_context(const Scale& scale, std::uint64_t seed,
                          const ReplicationRunner& runner) {
  PaperContext ctx;
  ctx.scale = scale;
  ctx.seed = seed;

  const auto samples =
      run_calibration_probes(ctx.network, scale.delay_probes, scale.sim_ns, seed, runner);
  ctx.unicast_fit = stats::fit_bimodal_uniform(samples.unicast_ms);
  for (const auto& [n, delays] : samples.broadcast_ms) {
    ctx.broadcast_fits[n] = stats::fit_bimodal_uniform(delays);
  }
  return ctx;
}

Fig6Result run_fig6(const PaperContext& ctx) { return run_fig6(ctx, ctx.scale.sim_ns); }

Fig6Result run_fig6(const PaperContext& ctx, const std::vector<std::size_t>& ns) {
  Fig6Result out;
  auto samples =
      run_calibration_probes(ctx.network, ctx.scale.delay_probes, ns, ctx.seed, *ctx.runner);
  out.unicast_ms = std::move(samples.unicast_ms);
  out.unicast_fit = stats::fit_bimodal_uniform(out.unicast_ms);
  for (auto& [n, delays] : samples.broadcast_ms) {
    out.broadcast_fits[n] = stats::fit_bimodal_uniform(delays);
    out.broadcast_ms[n] = std::move(delays);
  }
  return out;
}

std::vector<Fig7aRow> run_fig7a(const PaperContext& ctx) { return run_fig7a(ctx, ctx.scale.ns); }

std::vector<Fig7aRow> run_fig7a(const PaperContext& ctx, const std::vector<std::size_t>& ns) {
  // Flattened fan-out: every (n, execution) pair is one task, so small n
  // groups and large ones drain from the same pool batch.
  ShardSpace space;
  for (const std::size_t n : ns) {
    space.add_group(ctx.scale.class1_executions, ctx.seed + 100 + n, "exec");
  }
  const auto outcomes = ctx.runner->run_flat(space, [&](const ShardSpace::Task& t) {
    return run_latency_execution(ns[t.group], ctx.network, ctx.timers,
                                 /*initially_crashed=*/-1, t.index, t.seed);
  });

  std::vector<Fig7aRow> rows;
  for (std::size_t g = 0; g < ns.size(); ++g) {
    const auto meas = fold_latency_outcomes(outcomes[g]);
    Fig7aRow row;
    row.n = ns[g];
    row.latencies_ms = meas.latencies_ms;
    row.mean = meas.summary().mean_ci(0.90);
    row.undecided = meas.undecided;
    rows.push_back(std::move(row));
  }
  return rows;
}

const std::vector<double>& tsend_candidates() {
  static const std::vector<double> candidates = {0.005, 0.010, 0.015, 0.020, 0.025, 0.035};
  return candidates;
}

Fig7bResult run_fig7b(const PaperContext& ctx) { return run_fig7b(ctx, tsend_candidates()); }

Fig7bResult run_fig7b(const PaperContext& ctx, const std::vector<double>& candidates) {
  if (candidates.empty()) throw std::invalid_argument{"run_fig7b: no candidates"};
  // One flattened space: group 0 is the n = 5 class-1 measurement, one
  // further group per t_send candidate's class-1 SAN study. Seeds are the
  // streams the nested measure_latency / sweep_tsend calls used, so the
  // result is bit-identical to the pre-flattening driver (which also
  // simulated every candidate twice -- once for the sweep, once for the
  // CDFs; here each candidate runs once and both foldings share it).
  struct Cell {
    ExecOutcome exec;
    std::optional<double> reward;
  };

  ConsensusStudyBank bank;
  std::vector<const san::TransientStudy*> studies;
  ShardSpace space;
  space.add_group(ctx.scale.class1_executions, ctx.seed + 105, "exec");
  for (const double t_send : candidates) {
    sanmodels::ConsensusSanConfig cfg;
    cfg.n = 5;
    cfg.transport = make_transport(ctx.unicast_fit, ctx.broadcast_fits.at(5), t_send);
    studies.push_back(bank.add(cfg));
    space.add_group(ctx.scale.sim_replications, ctx.seed + 7, "rep");
  }

  const auto cells = ctx.runner->run_flat(space, [&](const ShardSpace::Task& t) {
    Cell cell;
    if (t.group == 0) {
      cell.exec = run_latency_execution(5, ctx.network, ctx.timers, -1, t.index, t.seed);
    } else {
      cell.reward = studies[t.group - 1]->run_one(des::RandomEngine{t.seed});
    }
    return cell;
  });

  Fig7bResult out;
  {
    std::vector<ExecOutcome> outcomes;
    outcomes.reserve(cells[0].size());
    for (const Cell& c : cells[0]) outcomes.push_back(c.exec);
    out.measured_ms = fold_latency_outcomes(outcomes).latencies_ms;
  }

  std::vector<std::vector<std::optional<double>>> rewards(candidates.size());
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    rewards[k].reserve(cells[k + 1].size());
    for (const Cell& c : cells[k + 1]) rewards[k].push_back(c.reward);
  }
  out.sweep = fold_tsend_sweep(candidates, rewards, stats::Ecdf{out.measured_ms});
  for (const TsendCandidate& cand : out.sweep.candidates) {
    out.sim_ms[cand.t_send_ms] = cand.sim_latencies_ms;
  }
  return out;
}

std::vector<Table1Cell> run_table1_cells(const PaperContext& ctx,
                                         const std::vector<std::size_t>& ns,
                                         const std::vector<int>& crashed) {
  // One flattened space for the whole campaign: every (n, scenario,
  // execution) measurement task and every (n, scenario, replication) SAN
  // simulation task drains from a single batch. Per-task seeds reproduce
  // the nested measure_latency / simulate_class* calls exactly, and are
  // independent per (n, scenario), so a restricted axis reproduces the
  // matching cells of the full table.
  struct GroupDesc {
    std::size_t cell = 0;                        ///< index into the output cells
    const san::TransientStudy* study = nullptr;  ///< non-null for SAN groups
  };
  struct Cell {
    ExecOutcome exec;
    std::optional<double> reward;
  };

  const auto meas_seed_base = [](int crash) -> std::uint64_t {
    switch (crash) {
      case -1: return 200;
      case 0: return 300;
      case 1: return 400;
      default: throw std::invalid_argument{"run_table1_cells: crashed must be -1, 0 or 1"};
    }
  };

  ConsensusStudyBank bank;
  ShardSpace space;
  std::vector<GroupDesc> descs;
  std::vector<Table1Cell> cells_out;
  for (const std::size_t n : ns) {
    for (const int crash : crashed) {
      cells_out.push_back(Table1Cell{n, crash, {}, std::nullopt});
      const std::size_t cell_index = cells_out.size() - 1;

      space.add_group(ctx.scale.class1_executions, ctx.seed + meas_seed_base(crash) + n, "exec");
      descs.push_back(GroupDesc{cell_index, nullptr});
      if (ctx.broadcast_fits.contains(n)) {
        sanmodels::ConsensusSanConfig cfg;
        cfg.n = n;
        cfg.transport = ctx.transport(n);
        cfg.initially_crashed = crash;
        space.add_group(ctx.scale.sim_replications, ctx.seed + meas_seed_base(crash) + 300 + n,
                        "rep");
        descs.push_back(GroupDesc{cell_index, bank.add(cfg)});
      }
    }
  }

  const auto raw = ctx.runner->run_flat(space, [&](const ShardSpace::Task& t) {
    const GroupDesc& gd = descs[t.group];
    Cell cell;
    if (gd.study != nullptr) {
      cell.reward = gd.study->run_one(des::RandomEngine{t.seed});
    } else {
      const Table1Cell& out_cell = cells_out[gd.cell];
      cell.exec = run_latency_execution(out_cell.n, ctx.network, ctx.timers, out_cell.crashed,
                                        t.index, t.seed);
    }
    return cell;
  });

  // Fold per group in index order: bit-identical to the sequential sweep.
  for (std::size_t g = 0; g < descs.size(); ++g) {
    Table1Cell& out_cell = cells_out[descs[g].cell];
    if (descs[g].study != nullptr) {
      std::vector<std::optional<double>> rewards;
      rewards.reserve(raw[g].size());
      for (const Cell& c : raw[g]) rewards.push_back(c.reward);
      out_cell.sim = fold_study_rewards(rewards).summary.mean();
    } else {
      std::vector<ExecOutcome> outcomes;
      outcomes.reserve(raw[g].size());
      for (const Cell& c : raw[g]) outcomes.push_back(c.exec);
      out_cell.meas = fold_latency_outcomes(outcomes).summary().mean_ci(0.90);
    }
  }
  return cells_out;
}

std::vector<Table1Row> run_table1(const PaperContext& ctx) {
  const auto cells = run_table1_cells(ctx, ctx.scale.ns, {-1, 0, 1});
  std::vector<Table1Row> rows;
  for (std::size_t i = 0; i < cells.size(); i += 3) {
    Table1Row row;
    row.n = cells[i].n;
    row.meas_no_crash = cells[i].meas;
    row.meas_coord_crash = cells[i + 1].meas;
    row.meas_part_crash = cells[i + 2].meas;
    row.sim_no_crash = cells[i].sim;
    row.sim_coord_crash = cells[i + 1].sim;
    row.sim_part_crash = cells[i + 2].sim;
    rows.push_back(row);
  }
  return rows;
}

std::vector<Class3Point> run_class3_measurements(const PaperContext& ctx,
                                                 const std::vector<std::size_t>& ns) {
  return run_class3_measurements(ctx, ns, ctx.scale.timeouts_ms);
}

std::vector<Class3Point> run_class3_measurements(const PaperContext& ctx,
                                                 const std::vector<std::size_t>& ns,
                                                 const std::vector<double>& timeouts_ms) {
  // Flattened (n, timeout, run) space: every class-3 run is one task, so
  // the whole Fig 8 / Fig 9a sweep drains from a single pool batch.
  ShardSpace space;
  std::vector<Class3Point> points;
  for (const std::size_t n : ns) {
    for (const double timeout : timeouts_ms) {
      space.add_group(ctx.scale.class3_runs,
                      ctx.seed + 1000 + 17 * n + static_cast<std::uint64_t>(timeout), "run");
      Class3Point pt;
      pt.n = n;
      pt.timeout_ms = timeout;
      points.push_back(pt);
    }
  }

  auto runs = ctx.runner->run_flat(space, [&](const ShardSpace::Task& t) {
    const Class3Point& pt = points[t.group];
    return measure_class3_run(pt.n, ctx.network, ctx.timers, pt.timeout_ms,
                              ctx.scale.class3_executions, t.seed);
  });

  for (std::size_t g = 0; g < points.size(); ++g) {
    points[g].meas = fold_class3_runs(std::move(runs[g]));
  }
  return points;
}

std::vector<Fig9bPoint> run_fig9b(const PaperContext& ctx,
                                  const std::vector<Class3Point>& measurements) {
  // Flattened driver-level fan-out: the conditional simulation branches --
  // class 1 where the detector made no mistakes, deterministic plus
  // exponential class-3 sojourns otherwise -- are decided up front from
  // the measured QoS, so every replication of every branch of every point
  // drains from one batch. Seeds match the nested simulate_class* calls.
  struct GroupRef {
    std::size_t row = 0;
    bool both = false;  ///< class-1 degenerate: result feeds det and exp
    bool exp = false;   ///< exponential-sojourn group
  };

  ConsensusStudyBank bank;
  std::vector<const san::TransientStudy*> studies;
  std::vector<GroupRef> refs;
  ShardSpace space;
  std::vector<Fig9bPoint> out;

  for (const auto& pt : measurements) {
    if (!ctx.broadcast_fits.contains(pt.n)) continue;  // sim only where calibrated (n = 3, 5)
    Fig9bPoint row;
    row.n = pt.n;
    row.timeout_ms = pt.timeout_ms;
    row.meas_ms = pt.meas.latency_ms.mean;
    row.qos_t_mr_ms = pt.meas.pooled_qos.t_mr_ms;
    row.qos_t_m_ms = pt.meas.pooled_qos.t_m_ms;
    const std::size_t row_index = out.size();
    out.push_back(row);

    const auto transport = ctx.transport(pt.n);
    const auto& qos = pt.meas.pooled_qos;
    sanmodels::ConsensusSanConfig cfg;
    cfg.n = pt.n;
    cfg.transport = transport;
    if (!(qos.t_mr_ms > 0) || !(qos.t_m_ms > 0) || qos.t_m_ms >= qos.t_mr_ms) {
      // The detector made essentially no mistakes at this timeout: the
      // class-3 model degenerates to class 1.
      studies.push_back(bank.add(cfg));
      space.add_group(ctx.scale.sim_replications, ctx.seed + 9000, "rep");
      refs.push_back(GroupRef{row_index, /*both=*/true, /*exp=*/false});
    } else {
      auto det_cfg = cfg;
      det_cfg.qos_fd =
          fd::AbstractFdParams::from_qos(qos, fd::AbstractFdParams::Sojourn::kDeterministic);
      studies.push_back(bank.add(det_cfg));
      space.add_group(ctx.scale.sim_replications, ctx.seed + 9100, "rep");
      refs.push_back(GroupRef{row_index, /*both=*/false, /*exp=*/false});

      auto exp_cfg = cfg;
      exp_cfg.qos_fd =
          fd::AbstractFdParams::from_qos(qos, fd::AbstractFdParams::Sojourn::kExponential);
      studies.push_back(bank.add(exp_cfg));
      space.add_group(ctx.scale.sim_replications, ctx.seed + 9200, "rep");
      refs.push_back(GroupRef{row_index, /*both=*/false, /*exp=*/true});
    }
  }

  const auto rewards = ctx.runner->run_flat(space, [&](const ShardSpace::Task& t) {
    return studies[t.group]->run_one(des::RandomEngine{t.seed});
  });

  for (std::size_t g = 0; g < refs.size(); ++g) {
    const double mean = fold_study_rewards(rewards[g]).summary.mean();
    Fig9bPoint& row = out[refs[g].row];
    if (refs[g].both) {
      row.sim_det_ms = mean;
      row.sim_exp_ms = mean;
    } else if (refs[g].exp) {
      row.sim_exp_ms = mean;
    } else {
      row.sim_det_ms = mean;
    }
  }
  return out;
}

const std::vector<PaperTable1Row>& paper_table1() {
  static const double nan = std::nan("");
  static const std::vector<PaperTable1Row> rows = {
      {3, 1.06, 1.568, 1.115, 1.030, 1.336, 0.786},
      {5, 1.43, 2.245, 1.340, 1.442, 2.295, 1.336},
      {7, 2.00, 2.739, 1.811, nan, nan, nan},
      {9, 2.62, 3.101, 2.400, nan, nan, nan},
      {11, 3.27, 3.469, 3.049, nan, nan, nan},
  };
  return rows;
}

}  // namespace sanperf::core
