// Experiment drivers: one function per paper table/figure, returning
// structured data that the bench binaries render (and EXPERIMENTS.md
// records). All drivers share a PaperContext holding the emulator
// configuration and the calibration products.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/calibration.hpp"
#include "core/config.hpp"
#include "core/measurement.hpp"
#include "core/replication.hpp"
#include "net/params.hpp"
#include "stats/ecdf.hpp"

namespace sanperf::core {

struct PaperContext {
  Scale scale;
  std::uint64_t seed = kDefaultSeed;
  net::NetworkParams network = net::NetworkParams::defaults();
  net::TimerModel timers = net::TimerModel::defaults();
  /// Replication engine the drivers fan campaigns out on. Thread count does
  /// not affect results (deterministic per-replication seeding).
  const ReplicationRunner* runner = &default_runner();

  // Calibration products (Section 5.1), filled by make_context():
  stats::BimodalUniform unicast_fit;
  std::map<std::size_t, stats::BimodalUniform> broadcast_fits;  ///< keyed by n
  double t_send_ms = kTsendMs;

  /// SAN transport parameters for n processes from the calibration.
  [[nodiscard]] sanmodels::TransportParams transport(std::size_t n) const;
};

/// Measures delay distributions and fits them (the shared calibration pass).
/// The calibration probes fan out over `runner` (results are identical for
/// any thread count); the returned context keeps the default runner unless
/// the caller re-points it.
[[nodiscard]] PaperContext make_context(const Scale& scale, std::uint64_t seed = kDefaultSeed,
                                        const ReplicationRunner& runner = default_runner());

// --- Fig 6: end-to-end delay CDFs -----------------------------------------
struct Fig6Result {
  std::vector<double> unicast_ms;
  std::map<std::size_t, std::vector<double>> broadcast_ms;  ///< keyed by n
  stats::BimodalUniform unicast_fit;
  std::map<std::size_t, stats::BimodalUniform> broadcast_fits;
};
[[nodiscard]] Fig6Result run_fig6(const PaperContext& ctx);
/// Restricted broadcast-size axis (the scenario API's `n` axis); per-n
/// results are independent, so a restriction reproduces the matching
/// subset of the full run bit for bit.
[[nodiscard]] Fig6Result run_fig6(const PaperContext& ctx, const std::vector<std::size_t>& ns);

// --- Fig 7a: measured latency CDFs, class 1 --------------------------------
struct Fig7aRow {
  std::size_t n = 0;
  std::vector<double> latencies_ms;
  stats::MeanCI mean;
  std::size_t undecided = 0;
};
[[nodiscard]] std::vector<Fig7aRow> run_fig7a(const PaperContext& ctx);
[[nodiscard]] std::vector<Fig7aRow> run_fig7a(const PaperContext& ctx,
                                              const std::vector<std::size_t>& ns);

// --- Fig 7b: simulated latency CDFs for t_send candidates, n = 5 ----------
struct Fig7bResult {
  std::vector<double> measured_ms;  ///< class-1 measurement, n = 5
  TsendSweep sweep;
  std::map<double, std::vector<double>> sim_ms;  ///< keyed by t_send
};
/// The paper's candidate set {0.005 .. 0.035} ms.
[[nodiscard]] const std::vector<double>& tsend_candidates();
[[nodiscard]] Fig7bResult run_fig7b(const PaperContext& ctx);
[[nodiscard]] Fig7bResult run_fig7b(const PaperContext& ctx,
                                    const std::vector<double>& candidates);

// --- Table 1: crash scenarios ----------------------------------------------
struct Table1Row {
  std::size_t n = 0;
  stats::MeanCI meas_no_crash, meas_coord_crash, meas_part_crash;
  std::optional<double> sim_no_crash, sim_coord_crash, sim_part_crash;  ///< n = 3, 5 only
};
[[nodiscard]] std::vector<Table1Row> run_table1(const PaperContext& ctx);

/// One (n, crash scenario) cell pair of Table 1: the measurement, plus the
/// SAN simulation where n is calibrated.
struct Table1Cell {
  std::size_t n = 0;
  int crashed = -1;  ///< -1 none, 0 coordinator, 1 participant
  stats::MeanCI meas;
  std::optional<double> sim;
};
/// The whole (ns x crashed) campaign as one flattened space; cells come
/// back in (n-major, scenario-minor) order. `crashed` entries must be in
/// {-1, 0, 1}. Restrictions reproduce the matching cells of the full run.
[[nodiscard]] std::vector<Table1Cell> run_table1_cells(const PaperContext& ctx,
                                                       const std::vector<std::size_t>& ns,
                                                       const std::vector<int>& crashed);

// --- Fig 8 (QoS vs T) and Fig 9a (latency vs T): class-3 measurements -----
struct Class3Point {
  std::size_t n = 0;
  double timeout_ms = 0;
  Class3Aggregate meas;
};
[[nodiscard]] std::vector<Class3Point> run_class3_measurements(const PaperContext& ctx,
                                                               const std::vector<std::size_t>& ns);
[[nodiscard]] std::vector<Class3Point> run_class3_measurements(
    const PaperContext& ctx, const std::vector<std::size_t>& ns,
    const std::vector<double>& timeouts_ms);

// --- Fig 9b: measurements vs det/exp SAN simulation, n = 3, 5 -------------
struct Fig9bPoint {
  std::size_t n = 0;
  double timeout_ms = 0;
  double meas_ms = 0;
  double sim_det_ms = 0;
  double sim_exp_ms = 0;
  double qos_t_mr_ms = 0;
  double qos_t_m_ms = 0;
};
[[nodiscard]] std::vector<Fig9bPoint> run_fig9b(const PaperContext& ctx,
                                                const std::vector<Class3Point>& measurements);

// --- Paper-reported reference values (for side-by-side printing) ----------
struct PaperTable1Row {
  std::size_t n;
  double meas_no_crash, meas_coord, meas_part;
  double sim_no_crash, sim_coord, sim_part;  ///< NaN where the paper has none
};
[[nodiscard]] const std::vector<PaperTable1Row>& paper_table1();

}  // namespace sanperf::core
