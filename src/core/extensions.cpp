#include "core/extensions.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "consensus/ct_consensus.hpp"
#include "consensus/mr_consensus.hpp"
#include "consensus/sequencer.hpp"
#include "core/exec_harness.hpp"
#include "fd/failure_detector.hpp"
#include "fd/heartbeat_fd.hpp"
#include "runtime/cluster.hpp"

namespace sanperf::core {

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kChandraToueg: return "Chandra-Toueg";
    case Algorithm::kMostefaouiRaynal: return "Mostefaoui-Raynal";
  }
  return "?";
}

ExecOutcome run_latency_execution_with(Algorithm algorithm, std::size_t n,
                                       const net::NetworkParams& params,
                                       const net::TimerModel& timers, int initially_crashed,
                                       std::size_t k, std::uint64_t exec_seed) {
  if (algorithm == Algorithm::kChandraToueg) {
    return run_latency_execution(n, params, timers, initially_crashed, k, exec_seed);
  }
  return detail::run_one_consensus_execution<consensus::MrConsensus>(
      n, params, timers, initially_crashed, k, exec_seed);
}

MeasuredLatency measure_latency_with(Algorithm algorithm, std::size_t n,
                                     const net::NetworkParams& params,
                                     const net::TimerModel& timers, int initially_crashed,
                                     std::size_t executions, std::uint64_t seed,
                                     const ReplicationRunner& runner) {
  if (initially_crashed >= static_cast<int>(n)) {
    throw std::invalid_argument{"measure_latency_with: crashed id out of range"};
  }
  const des::SeedSplitter seeds{seed, "exec"};
  return fold_latency_outcomes(runner.map(executions, [&](std::size_t k) {
    return run_latency_execution_with(algorithm, n, params, timers, initially_crashed, k,
                                      seeds.stream_seed(k));
  }));
}

ThroughputResult measure_throughput(std::size_t n, const net::NetworkParams& params,
                                    const net::TimerModel& timers, std::size_t executions,
                                    std::uint64_t seed) {
  runtime::ClusterConfig cfg;
  cfg.n = n;
  cfg.network = params;
  cfg.timers = timers;
  cfg.seed = seed;
  runtime::Cluster cluster{cfg};
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
    auto& proc = cluster.process(pid);
    auto& fd_layer = proc.add_layer<fd::StaticFd>();
    proc.add_layer<consensus::CtConsensus>(fd_layer);
  }

  // Back-to-back: no fixed separation; the next execution starts as soon as
  // the previous one has decided (plus a minimal scheduling step).
  consensus::SequencerConfig seq_cfg;
  seq_cfg.executions = executions;
  seq_cfg.separation = des::Duration::micros(1);
  seq_cfg.settle_gap = des::Duration::micros(1);
  consensus::ConsensusSequencer seq{cluster, seq_cfg};
  const auto results = seq.run();

  ThroughputResult out;
  stats::BatchMeans batches{std::max<std::size_t>(1, executions / 20)};
  std::optional<des::TimePoint> first_start;
  des::TimePoint last_decide;
  for (const auto& r : results) {
    if (!first_start) first_start = r.t0;
    if (!r.decided()) {
      ++out.undecided;
      continue;
    }
    ++out.executions;
    out.latencies_ms.push_back(r.latency_ms());
    batches.add(r.latency_ms());
    last_decide = std::max(last_decide, *r.t_decide);
  }
  if (first_start && out.executions > 0) {
    out.duration_ms = (last_decide - *first_start).to_ms();
    if (out.duration_ms > 0) {
      out.per_second = static_cast<double>(out.executions) / (out.duration_ms / 1000.0);
    }
  }
  out.latency_ci = batches.mean_ci(0.90);
  return out;
}

std::vector<double> detection_time_trial(std::size_t n, const net::NetworkParams& params,
                                         const net::TimerModel& timers, double timeout_ms,
                                         std::uint64_t trial_seed) {
  std::vector<double> samples;
  runtime::ClusterConfig cfg;
  cfg.n = n;
  cfg.network = params;
  cfg.timers = timers;
  cfg.seed = trial_seed;
  runtime::Cluster cluster{cfg};
  const auto fd_params = fd::HeartbeatFdParams::from_timeout_ms(timeout_ms);
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
    cluster.process(pid).add_layer<fd::HeartbeatFd>(fd_params);
  }

  // Let the detectors settle, then crash a process at a phase-random time
  // (uniform within one heartbeat period, so the crash is not aligned to
  // the tick grid).
  auto crash_rng = cluster.rng_stream("crash");
  const runtime::HostId victim =
      static_cast<runtime::HostId>(crash_rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  const double crash_ms = 60.0 + crash_rng.uniform(0.0, 0.7 * timeout_ms + 10.0);
  const auto crash_at = des::TimePoint::origin() + des::Duration::from_ms(crash_ms);
  cluster.crash_at(victim, crash_at);

  // Run long enough for every correct process to suspect the victim.
  const auto deadline = crash_at + des::Duration::from_ms(3.0 * timeout_ms + 100.0);
  cluster.run_until(deadline);

  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
    if (pid == victim) continue;
    const auto& hb = cluster.process(pid).layer<fd::HeartbeatFd>();
    const auto& history = hb.histories()[victim];
    // Find the transition that starts the permanent suspicion: the last
    // trust->suspect with no later suspect->trust.
    if (!hb.is_suspected(victim) || history.transitions().empty()) continue;
    const auto& final_tr = history.transitions().back();
    if (!final_tr.to_suspect) continue;
    samples.push_back((final_tr.at - crash_at).to_ms());
  }
  return samples;
}

DetectionTimeResult measure_detection_time(std::size_t n, const net::NetworkParams& params,
                                           const net::TimerModel& timers, double timeout_ms,
                                           std::size_t trials, std::uint64_t seed,
                                           const ReplicationRunner& runner) {
  const des::SeedSplitter seeds{seed, "trial"};
  const auto trial_samples = runner.map(trials, [&](std::size_t trial) {
    return detection_time_trial(n, params, timers, timeout_ms, seeds.stream_seed(trial));
  });

  // Fold in trial order: identical to the sequential loop.
  DetectionTimeResult out;
  out.samples_ms.reserve(trials * (n - 1));
  for (const auto& samples : trial_samples) {
    for (const double detection : samples) {
      out.samples_ms.push_back(detection);
      out.summary.add(detection);
    }
  }
  return out;
}

}  // namespace sanperf::core
