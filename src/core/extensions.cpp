#include "core/extensions.hpp"

#include <algorithm>
#include <optional>

#include "consensus/ct_consensus.hpp"
#include "consensus/mr_consensus.hpp"
#include "consensus/sequencer.hpp"
#include "fd/failure_detector.hpp"
#include "fd/heartbeat_fd.hpp"
#include "runtime/cluster.hpp"

namespace sanperf::core {

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kChandraToueg: return "Chandra-Toueg";
    case Algorithm::kMostefaouiRaynal: return "Mostefaoui-Raynal";
  }
  return "?";
}

MeasuredLatency measure_latency_with(Algorithm algorithm, std::size_t n,
                                     const net::NetworkParams& params,
                                     const net::TimerModel& timers, int initially_crashed,
                                     std::size_t executions, std::uint64_t seed) {
  if (algorithm == Algorithm::kChandraToueg) {
    return measure_latency(n, params, timers, initially_crashed, executions, seed);
  }
  const des::RandomEngine master{seed};
  MeasuredLatency out;
  out.latencies_ms.reserve(executions);

  for (std::size_t k = 0; k < executions; ++k) {
    runtime::ClusterConfig cfg;
    cfg.n = n;
    cfg.network = params;
    cfg.timers = timers;
    cfg.seed = master.substream("exec", k).seed();
    runtime::Cluster cluster{cfg};

    std::set<runtime::HostId> suspected;
    if (initially_crashed >= 0) suspected.insert(static_cast<runtime::HostId>(initially_crashed));

    std::optional<des::TimePoint> first_decide;
    std::int32_t first_rounds = 0;
    for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
      auto& proc = cluster.process(pid);
      auto& fd_layer = proc.add_layer<fd::StaticFd>(suspected);
      auto& cons = proc.add_layer<consensus::MrConsensus>(fd_layer);
      cons.set_decide_callback([&](const consensus::DecisionEvent& ev) {
        if (!first_decide || ev.at < *first_decide) {
          first_decide = ev.at;
          first_rounds = ev.round;
        }
      });
    }
    if (initially_crashed >= 0) {
      cluster.crash_initially(static_cast<runtime::HostId>(initially_crashed));
    }

    const des::TimePoint t0 = des::TimePoint::origin() + des::Duration::from_ms(1.0);
    auto skew_rng = cluster.rng_stream("ntp-skew");
    for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
      auto& proc = cluster.process(pid);
      if (proc.crashed()) continue;
      const des::TimePoint start = t0 + des::Duration::from_ms(skew_rng.uniform(0.0, 0.05));
      cluster.sim().schedule_at(start, [&proc, k] {
        proc.layer<consensus::MrConsensus>().propose(static_cast<std::int32_t>(k),
                                                     1 + proc.id());
      });
    }
    const des::TimePoint deadline = t0 + des::Duration::from_ms(1000.0);
    cluster.run_until([&] { return first_decide.has_value(); }, deadline);
    if (first_decide) {
      out.latencies_ms.push_back((*first_decide - t0).to_ms());
      out.rounds.push_back(first_rounds);
    } else {
      ++out.undecided;
    }
  }
  return out;
}

ThroughputResult measure_throughput(std::size_t n, const net::NetworkParams& params,
                                    const net::TimerModel& timers, std::size_t executions,
                                    std::uint64_t seed) {
  runtime::ClusterConfig cfg;
  cfg.n = n;
  cfg.network = params;
  cfg.timers = timers;
  cfg.seed = seed;
  runtime::Cluster cluster{cfg};
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
    auto& proc = cluster.process(pid);
    auto& fd_layer = proc.add_layer<fd::StaticFd>();
    proc.add_layer<consensus::CtConsensus>(fd_layer);
  }

  // Back-to-back: no fixed separation; the next execution starts as soon as
  // the previous one has decided (plus a minimal scheduling step).
  consensus::SequencerConfig seq_cfg;
  seq_cfg.executions = executions;
  seq_cfg.separation = des::Duration::micros(1);
  seq_cfg.settle_gap = des::Duration::micros(1);
  consensus::ConsensusSequencer seq{cluster, seq_cfg};
  const auto results = seq.run();

  ThroughputResult out;
  stats::BatchMeans batches{std::max<std::size_t>(1, executions / 20)};
  std::optional<des::TimePoint> first_start;
  des::TimePoint last_decide;
  for (const auto& r : results) {
    if (!first_start) first_start = r.t0;
    if (!r.decided()) {
      ++out.undecided;
      continue;
    }
    ++out.executions;
    out.latencies_ms.push_back(r.latency_ms());
    batches.add(r.latency_ms());
    last_decide = std::max(last_decide, *r.t_decide);
  }
  if (first_start && out.executions > 0) {
    out.duration_ms = (last_decide - *first_start).to_ms();
    if (out.duration_ms > 0) {
      out.per_second = static_cast<double>(out.executions) / (out.duration_ms / 1000.0);
    }
  }
  out.latency_ci = batches.mean_ci(0.90);
  return out;
}

DetectionTimeResult measure_detection_time(std::size_t n, const net::NetworkParams& params,
                                           const net::TimerModel& timers, double timeout_ms,
                                           std::size_t trials, std::uint64_t seed) {
  const des::RandomEngine master{seed};
  DetectionTimeResult out;
  out.samples_ms.reserve(trials * (n - 1));

  for (std::size_t trial = 0; trial < trials; ++trial) {
    runtime::ClusterConfig cfg;
    cfg.n = n;
    cfg.network = params;
    cfg.timers = timers;
    cfg.seed = master.substream("trial", trial).seed();
    runtime::Cluster cluster{cfg};
    const auto fd_params = fd::HeartbeatFdParams::from_timeout_ms(timeout_ms);
    for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
      cluster.process(pid).add_layer<fd::HeartbeatFd>(fd_params);
    }

    // Let the detectors settle, then crash a process at a phase-random time
    // (uniform within one heartbeat period, so the crash is not aligned to
    // the tick grid).
    auto crash_rng = cluster.rng_stream("crash");
    const runtime::HostId victim =
        static_cast<runtime::HostId>(crash_rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const double crash_ms = 60.0 + crash_rng.uniform(0.0, 0.7 * timeout_ms + 10.0);
    const auto crash_at = des::TimePoint::origin() + des::Duration::from_ms(crash_ms);
    cluster.crash_at(victim, crash_at);

    // Run long enough for every correct process to suspect the victim.
    const auto deadline =
        crash_at + des::Duration::from_ms(3.0 * timeout_ms + 100.0);
    cluster.run_until(deadline);

    for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
      if (pid == victim) continue;
      const auto& hb = cluster.process(pid).layer<fd::HeartbeatFd>();
      const auto& history = hb.histories()[victim];
      // Find the transition that starts the permanent suspicion: the last
      // trust->suspect with no later suspect->trust.
      if (!hb.is_suspected(victim) || history.transitions().empty()) continue;
      const auto& final_tr = history.transitions().back();
      if (!final_tr.to_suspect) continue;
      const double detection = (final_tr.at - crash_at).to_ms();
      out.samples_ms.push_back(detection);
      out.summary.add(detection);
    }
  }
  return out;
}

}  // namespace sanperf::core
