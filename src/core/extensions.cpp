#include "core/extensions.hpp"

#include <stdexcept>

#include "core/workload.hpp"
#include "fd/heartbeat_fd.hpp"
#include "runtime/cluster.hpp"

namespace sanperf::core {

ExecOutcome run_latency_execution_with(Algorithm algorithm, std::size_t n,
                                       const net::NetworkParams& params,
                                       const net::TimerModel& timers, int initially_crashed,
                                       std::size_t k, std::uint64_t exec_seed) {
  WorkloadConfig cfg;
  cfg.n = n;
  cfg.network = params;
  cfg.timers = timers;
  cfg.algorithm = algorithm;
  cfg.initially_crashed = initially_crashed;
  return run_one_shot(cfg, k, exec_seed);
}

MeasuredLatency measure_latency_with(Algorithm algorithm, std::size_t n,
                                     const net::NetworkParams& params,
                                     const net::TimerModel& timers, int initially_crashed,
                                     std::size_t executions, std::uint64_t seed,
                                     const ReplicationRunner& runner) {
  if (initially_crashed >= static_cast<int>(n)) {
    throw std::invalid_argument{"measure_latency_with: crashed id out of range"};
  }
  const des::SeedSplitter seeds{seed, "exec"};
  return fold_latency_outcomes(runner.map(executions, [&](std::size_t k) {
    return run_latency_execution_with(algorithm, n, params, timers, initially_crashed, k,
                                      seeds.stream_seed(k));
  }));
}

std::vector<double> detection_time_trial(std::size_t n, const net::NetworkParams& params,
                                         const net::TimerModel& timers, double timeout_ms,
                                         std::uint64_t trial_seed) {
  std::vector<double> samples;
  runtime::ClusterConfig cfg;
  cfg.n = n;
  cfg.network = params;
  cfg.timers = timers;
  cfg.seed = trial_seed;
  runtime::Cluster cluster{cfg};
  const auto fd_params = fd::HeartbeatFdParams::from_timeout_ms(timeout_ms);
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
    cluster.process(pid).add_layer<fd::HeartbeatFd>(fd_params);
  }

  // Let the detectors settle, then crash a process at a phase-random time
  // (uniform within one heartbeat period, so the crash is not aligned to
  // the tick grid).
  auto crash_rng = cluster.rng_stream("crash");
  const runtime::HostId victim =
      static_cast<runtime::HostId>(crash_rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  const double crash_ms = 60.0 + crash_rng.uniform(0.0, 0.7 * timeout_ms + 10.0);
  const auto crash_at = des::TimePoint::origin() + des::Duration::from_ms(crash_ms);
  cluster.crash_at(victim, crash_at);

  // Run long enough for every correct process to suspect the victim.
  const auto deadline = crash_at + des::Duration::from_ms(3.0 * timeout_ms + 100.0);
  cluster.run_until(deadline);

  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
    if (pid == victim) continue;
    const auto& hb = cluster.process(pid).layer<fd::HeartbeatFd>();
    const auto& history = hb.histories()[victim];
    // Find the transition that starts the permanent suspicion: the last
    // trust->suspect with no later suspect->trust.
    if (!hb.is_suspected(victim) || history.transitions().empty()) continue;
    const auto& final_tr = history.transitions().back();
    if (!final_tr.to_suspect) continue;
    samples.push_back((final_tr.at - crash_at).to_ms());
  }
  return samples;
}

DetectionTimeResult measure_detection_time(std::size_t n, const net::NetworkParams& params,
                                           const net::TimerModel& timers, double timeout_ms,
                                           std::size_t trials, std::uint64_t seed,
                                           const ReplicationRunner& runner) {
  const des::SeedSplitter seeds{seed, "trial"};
  const auto trial_samples = runner.map(trials, [&](std::size_t trial) {
    return detection_time_trial(n, params, timers, timeout_ms, seeds.stream_seed(trial));
  });

  // Fold in trial order: identical to the sequential loop.
  DetectionTimeResult out;
  out.samples_ms.reserve(trials * (n - 1));
  for (const auto& samples : trial_samples) {
    for (const double detection : samples) {
      out.samples_ms.push_back(detection);
      out.summary.add(detection);
    }
  }
  return out;
}

}  // namespace sanperf::core
