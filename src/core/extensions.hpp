// Extensions beyond the paper's evaluation, implementing its declared
// future work (Section 6 / Section 2.3):
//   * throughput of a sequence of consensus executions, where execution
//     k+1 starts as soon as execution k has decided (so executions are NOT
//     isolated and contention couples them);
//   * the failure-detector detection time T_D (the third Chen et al. QoS
//     metric, defined in Section 3.4 but not measured by the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "core/measurement.hpp"
#include "net/params.hpp"
#include "stats/batch_means.hpp"
#include "stats/summary.hpp"

namespace sanperf::core {

/// Consensus algorithms available for comparative studies (the paper's
/// Section 6: "we will analyze alternative protocols and compare").
enum class Algorithm {
  kChandraToueg,      ///< the paper's algorithm
  kMostefaouiRaynal,  ///< the natural <>S comparator
};

[[nodiscard]] const char* to_string(Algorithm algorithm);

/// One isolated execution of the selected algorithm with an explicitly
/// derived seed (the flat sharding unit of the comparative campaigns;
/// seeds come from SeedSplitter{seed, "exec"}).
[[nodiscard]] ExecOutcome run_latency_execution_with(Algorithm algorithm, std::size_t n,
                                                     const net::NetworkParams& params,
                                                     const net::TimerModel& timers,
                                                     int initially_crashed, std::size_t k,
                                                     std::uint64_t exec_seed);

/// Like measure_latency, but with a selectable consensus algorithm.
[[nodiscard]] MeasuredLatency measure_latency_with(Algorithm algorithm, std::size_t n,
                                                   const net::NetworkParams& params,
                                                   const net::TimerModel& timers,
                                                   int initially_crashed, std::size_t executions,
                                                   std::uint64_t seed,
                                                   const ReplicationRunner& runner =
                                                       default_runner());

struct ThroughputResult {
  double per_second = 0;        ///< decided executions per second
  std::size_t executions = 0;   ///< decided executions
  std::size_t undecided = 0;
  double duration_ms = 0;       ///< first start to last decision
  std::vector<double> latencies_ms;  ///< per-execution latency (back-to-back)
  stats::MeanCI latency_ci;     ///< batch-means CI (executions correlate)
};

/// Runs `executions` back-to-back consensus executions (start k+1 at
/// decision k) with static accurate detectors and reports throughput.
[[nodiscard]] ThroughputResult measure_throughput(std::size_t n,
                                                  const net::NetworkParams& params,
                                                  const net::TimerModel& timers,
                                                  std::size_t executions, std::uint64_t seed);

struct DetectionTimeResult {
  std::vector<double> samples_ms;  ///< one per (trial, monitoring process)
  stats::SummaryStats summary;
};

/// One detection-time trial (the flat sharding unit of the T_D campaign):
/// crash one process at a phase-random time and return, per correct
/// process, the crash-to-permanent-suspicion delay. Seeds come from
/// SeedSplitter{seed, "trial"}.
[[nodiscard]] std::vector<double> detection_time_trial(std::size_t n,
                                                       const net::NetworkParams& params,
                                                       const net::TimerModel& timers,
                                                       double timeout_ms,
                                                       std::uint64_t trial_seed);

/// Chen et al. detection time T_D: crash one process mid-run and measure,
/// at every correct process, the time from the crash to the permanent
/// suspicion. Uses live heartbeat detectors (timeout T, Th = 0.7 T).
[[nodiscard]] DetectionTimeResult measure_detection_time(std::size_t n,
                                                         const net::NetworkParams& params,
                                                         const net::TimerModel& timers,
                                                         double timeout_ms, std::size_t trials,
                                                         std::uint64_t seed,
                                                         const ReplicationRunner& runner =
                                                             default_runner());

}  // namespace sanperf::core
