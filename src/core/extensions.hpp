// Extensions beyond the paper's evaluation, implementing its declared
// future work (Section 6 / Section 2.3):
//   * comparative latency of alternative consensus protocols;
//   * the failure-detector detection time T_D (the third Chen et al. QoS
//     metric, defined in Section 3.4 but not measured by the paper).
// The throughput extension (execution k+1 starts as soon as execution k
// has decided) lives in core/workload.hpp now, as the degenerate
// closed-loop workload with one client and zero think time.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"  // Algorithm
#include "core/measurement.hpp"
#include "net/params.hpp"
#include "stats/summary.hpp"

namespace sanperf::core {

/// One isolated execution of the selected algorithm with an explicitly
/// derived seed (the flat sharding unit of the comparative campaigns;
/// seeds come from SeedSplitter{seed, "exec"}).
[[nodiscard]] ExecOutcome run_latency_execution_with(Algorithm algorithm, std::size_t n,
                                                     const net::NetworkParams& params,
                                                     const net::TimerModel& timers,
                                                     int initially_crashed, std::size_t k,
                                                     std::uint64_t exec_seed);

/// Like measure_latency, but with a selectable consensus algorithm.
[[nodiscard]] MeasuredLatency measure_latency_with(Algorithm algorithm, std::size_t n,
                                                   const net::NetworkParams& params,
                                                   const net::TimerModel& timers,
                                                   int initially_crashed, std::size_t executions,
                                                   std::uint64_t seed,
                                                   const ReplicationRunner& runner =
                                                       default_runner());

// (The back-to-back throughput extension is now a degenerate closed-loop
// workload -- one client, zero think time -- of core/workload.hpp; the
// bespoke measure_throughput harness is gone.)

struct DetectionTimeResult {
  std::vector<double> samples_ms;  ///< one per (trial, monitoring process)
  stats::SummaryStats summary;
};

/// One detection-time trial (the flat sharding unit of the T_D campaign):
/// crash one process at a phase-random time and return, per correct
/// process, the crash-to-permanent-suspicion delay. Seeds come from
/// SeedSplitter{seed, "trial"}.
[[nodiscard]] std::vector<double> detection_time_trial(std::size_t n,
                                                       const net::NetworkParams& params,
                                                       const net::TimerModel& timers,
                                                       double timeout_ms,
                                                       std::uint64_t trial_seed);

/// Chen et al. detection time T_D: crash one process mid-run and measure,
/// at every correct process, the time from the crash to the permanent
/// suspicion. Uses live heartbeat detectors (timeout T, Th = 0.7 T).
[[nodiscard]] DetectionTimeResult measure_detection_time(std::size_t n,
                                                         const net::NetworkParams& params,
                                                         const net::TimerModel& timers,
                                                         double timeout_ms, std::size_t trials,
                                                         std::uint64_t seed,
                                                         const ReplicationRunner& runner =
                                                             default_runner());

}  // namespace sanperf::core
