// Internal: the minimal JSON reader/writer shared by the ResultTable JSON
// sink and the fault-plan round-trip. The parser is a strict recursive-
// descent reader for the subset the writers emit (objects, arrays, strings
// with basic escapes, numbers, null); the writers escape strings and print
// doubles with enough digits to restore the exact bits.
#pragma once

#include <cmath>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/parse_util.hpp"

namespace sanperf::core::detail {

/// Shortest decimal form that restores the exact double bits.
inline std::string json_exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

inline void write_json_string(std::ostream& os, std::string_view text) {
  os << '"';
  for (const char ch : text) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

/// NaN/inf are not representable in JSON; they round-trip as null -> NaN.
inline void write_json_number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << json_exact(v);
  } else {
    os << "null";
  }
}

/// Minimal recursive-descent parser. `context` names the caller in error
/// messages ("ResultTable::from_json", "FaultPlan::from_json", ...).
class JsonParser {
 public:
  struct JsonValue {
    // variant poor-man's style: exactly one engaged
    std::optional<double> number;
    std::string number_text;  ///< raw token, so int cells keep > 2^53 exact
    std::optional<std::string> string;
    std::optional<std::vector<JsonValue>> array;
    std::optional<std::vector<std::pair<std::string, JsonValue>>> object;
    bool is_null = false;
  };

  explicit JsonParser(std::string_view text, std::string context)
      : text_{text}, context_{std::move(context)} {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

  [[nodiscard]] static const JsonValue* field(const JsonValue& obj, std::string_view key) {
    if (!obj.object) return nullptr;
    for (const auto& [k, v] : *obj.object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument{context_ + ": " + what + " at offset " + std::to_string(pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) fail(std::string{"expected '"} + ch + "'");
    ++pos_;
  }

  JsonValue value() {
    const char ch = peek();
    if (ch == '{') return object();
    if (ch == '[') return array();
    if (ch == '"') {
      JsonValue v;
      v.string = string();
      return v;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      JsonValue v;
      v.is_null = true;
      return v;
    }
    return number();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char ch = text_[pos_++];
      if (ch == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': ch = '\n'; break;
          case 't': ch = '\t'; break;
          case 'r': ch = '\r'; break;
          case '"': ch = '"'; break;
          case '\\': ch = '\\'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            ch = static_cast<char>(
                std::strtol(std::string{text_.substr(pos_, 4)}.c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: fail("unsupported escape");
        }
      }
      out.push_back(ch);
    }
    expect('"');
    return out;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.number_text = std::string{text_.substr(start, pos_ - start)};
    v.number = parse_real(v.number_text, context_);
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.array.emplace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array->push_back(value());
      const char ch = peek();
      ++pos_;
      if (ch == ']') return v;
      if (ch != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.object.emplace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      std::string key = string();
      expect(':');
      v.object->emplace_back(std::move(key), value());
      const char ch = peek();
      ++pos_;
      if (ch == '}') return v;
      if (ch != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::string context_;
  std::size_t pos_ = 0;
};

}  // namespace sanperf::core::detail
