#include "core/measurement.hpp"

#include <any>
#include <set>
#include <stdexcept>

#include "consensus/ct_consensus.hpp"
#include "consensus/sequencer.hpp"
#include "core/config.hpp"
#include "des/simulator.hpp"
#include "fd/failure_detector.hpp"
#include "fd/heartbeat_fd.hpp"
#include "net/network.hpp"
#include "runtime/cluster.hpp"

namespace sanperf::core {

std::vector<double> measure_unicast_delays(const net::NetworkParams& params, std::size_t probes,
                                           std::uint64_t seed) {
  des::Simulator sim;
  des::RandomEngine rng{seed};
  net::ContentionNetwork netw{sim, rng.substream("net"), params, 2};

  std::vector<double> delays;
  delays.reserve(probes);
  netw.set_deliver([&](const net::Packet& pkt) { delays.push_back((sim.now() - pkt.sent_at).to_ms()); });

  // Isolated probes: each send waits for the previous delivery plus a gap,
  // so probes never contend with each other (an idle network, as in the
  // paper's delay measurements).
  const des::Duration gap = des::Duration::from_ms(1.0);
  std::function<void(std::size_t)> fire = [&](std::size_t k) {
    if (k >= probes) return;
    netw.send(0, 1, std::any{});
    sim.schedule(gap, [&fire, k] { fire(k + 1); });
  };
  fire(0);
  sim.run();
  return delays;
}

std::vector<double> measure_broadcast_delays(const net::NetworkParams& params, std::size_t n,
                                             std::size_t probes, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument{"measure_broadcast_delays: n < 2"};
  des::Simulator sim;
  des::RandomEngine rng{seed};
  net::ContentionNetwork netw{sim, rng.substream("net"), params, n};

  std::vector<double> delays;  // one entry per broadcast: mean over destinations
  delays.reserve(probes);
  double acc = 0;
  std::size_t received = 0;
  netw.set_deliver([&](const net::Packet& pkt) {
    acc += (sim.now() - pkt.sent_at).to_ms();
    if (++received == n - 1) {
      delays.push_back(acc / static_cast<double>(n - 1));
      acc = 0;
      received = 0;
    }
  });

  const des::Duration gap = des::Duration::from_ms(3.0);
  std::function<void(std::size_t)> fire = [&](std::size_t k) {
    if (k >= probes) return;
    // The implementation broadcasts as n-1 unicasts in ascending id order.
    for (net::HostId dst = 1; dst < static_cast<net::HostId>(n); ++dst) {
      netw.send(0, dst, std::any{});
    }
    sim.schedule(gap, [&fire, k] { fire(k + 1); });
  };
  fire(0);
  sim.run();
  return delays;
}

stats::SummaryStats MeasuredLatency::summary() const {
  stats::SummaryStats s;
  for (const double x : latencies_ms) s.add(x);
  return s;
}

MeasuredLatency measure_latency(std::size_t n, const net::NetworkParams& params,
                                const net::TimerModel& timers, int initially_crashed,
                                std::size_t executions, std::uint64_t seed) {
  if (initially_crashed >= static_cast<int>(n)) {
    throw std::invalid_argument{"measure_latency: crashed id out of range"};
  }
  const des::RandomEngine master{seed};
  MeasuredLatency out;
  out.latencies_ms.reserve(executions);

  for (std::size_t k = 0; k < executions; ++k) {
    // Independent executions: a fresh cluster per run keeps them perfectly
    // isolated (the cluster equivalent of the paper's 10 ms separation).
    runtime::ClusterConfig cfg;
    cfg.n = n;
    cfg.network = params;
    cfg.timers = timers;
    cfg.seed = master.substream("exec", k).seed();
    runtime::Cluster cluster{cfg};

    std::set<runtime::HostId> suspected;
    if (initially_crashed >= 0) suspected.insert(static_cast<runtime::HostId>(initially_crashed));

    std::optional<des::TimePoint> first_decide;
    std::int32_t first_rounds = 0;
    for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
      auto& proc = cluster.process(pid);
      auto& fd_layer = proc.add_layer<fd::StaticFd>(suspected);
      auto& cons = proc.add_layer<consensus::CtConsensus>(fd_layer);
      cons.set_decide_callback([&](const consensus::DecisionEvent& ev) {
        if (!first_decide || ev.at < *first_decide) {
          first_decide = ev.at;
          first_rounds = ev.round;
        }
      });
    }
    if (initially_crashed >= 0) {
      cluster.crash_initially(static_cast<runtime::HostId>(initially_crashed));
    }

    // All correct processes propose at t0 (up to the emulated NTP skew).
    const des::TimePoint t0 = des::TimePoint::origin() + des::Duration::from_ms(1.0);
    auto skew_rng = cluster.rng_stream("ntp-skew");
    for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
      auto& proc = cluster.process(pid);
      if (proc.crashed()) continue;
      const des::TimePoint start = t0 + des::Duration::from_ms(skew_rng.uniform(0.0, 0.05));
      cluster.sim().schedule_at(start, [&proc, k] {
        proc.layer<consensus::CtConsensus>().propose(static_cast<std::int32_t>(k), 1 + proc.id());
      });
    }

    const des::TimePoint deadline = t0 + des::Duration::from_ms(1000.0);
    cluster.run_until([&] { return first_decide.has_value(); }, deadline);

    if (first_decide) {
      out.latencies_ms.push_back((*first_decide - t0).to_ms());
      out.rounds.push_back(first_rounds);
    } else {
      ++out.undecided;
    }
  }
  return out;
}

Class3Run measure_class3_run(std::size_t n, const net::NetworkParams& params,
                             const net::TimerModel& timers, double timeout_ms,
                             std::size_t executions, std::uint64_t seed) {
  runtime::ClusterConfig cfg;
  cfg.n = n;
  cfg.network = params;
  cfg.timers = timers;
  cfg.seed = seed;
  runtime::Cluster cluster{cfg};

  const auto fd_params = fd::HeartbeatFdParams::from_timeout_ms(timeout_ms);
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
    auto& proc = cluster.process(pid);
    auto& hb = proc.add_layer<fd::HeartbeatFd>(fd_params);
    proc.add_layer<consensus::CtConsensus>(hb);
  }

  consensus::SequencerConfig seq_cfg;
  seq_cfg.executions = executions;
  consensus::ConsensusSequencer seq{cluster, seq_cfg};
  const auto results = seq.run();

  Class3Run run;
  for (const auto& res : results) {
    if (res.decided()) {
      run.latency.latencies_ms.push_back(res.latency_ms());
      run.latency.rounds.push_back(res.rounds);
    } else {
      ++run.latency.undecided;
    }
  }

  // QoS over the full experiment duration, all ordered pairs.
  std::vector<const fd::PairHistory*> histories;
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
    const auto& hb = cluster.process(pid).layer<fd::HeartbeatFd>();
    for (runtime::HostId peer = 0; peer < static_cast<runtime::HostId>(n); ++peer) {
      if (peer == pid) continue;
      histories.push_back(&hb.histories()[peer]);
    }
  }
  run.qos = fd::average_qos(histories, seq.experiment_end());
  run.experiment_ms = seq.experiment_end().to_ms();
  return run;
}

Class3Aggregate measure_class3(std::size_t n, const net::NetworkParams& params,
                               const net::TimerModel& timers, double timeout_ms, std::size_t runs,
                               std::size_t executions, std::uint64_t seed) {
  const des::RandomEngine master{seed};
  stats::SummaryStats lat_means, tmr_means, tm_means;
  Class3Aggregate agg;

  for (std::size_t r = 0; r < runs; ++r) {
    const Class3Run run = measure_class3_run(n, params, timers, timeout_ms, executions,
                                             master.substream("run", r).seed());
    const auto lat = run.latency.summary();
    if (lat.count() > 0) lat_means.add(lat.mean());
    if (run.qos.pairs_used > 0) {
      tmr_means.add(run.qos.t_mr_ms);
      tm_means.add(run.qos.t_m_ms);
    }
    agg.all_latencies_ms.insert(agg.all_latencies_ms.end(), run.latency.latencies_ms.begin(),
                                run.latency.latencies_ms.end());
    agg.undecided += run.latency.undecided;
  }

  agg.latency_ms = lat_means.mean_ci(0.90);
  agg.t_mr_ms = tmr_means.mean_ci(0.90);
  agg.t_m_ms = tm_means.mean_ci(0.90);
  agg.pooled_qos.t_mr_ms = tmr_means.mean();
  agg.pooled_qos.t_m_ms = tm_means.mean();
  agg.pooled_qos.pairs_used = tmr_means.count();
  return agg;
}

}  // namespace sanperf::core
