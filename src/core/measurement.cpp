#include "core/measurement.hpp"

#include <any>
#include <set>
#include <stdexcept>

#include "consensus/ct_consensus.hpp"
#include "consensus/sequencer.hpp"
#include "core/config.hpp"
#include "core/workload.hpp"
#include "des/simulator.hpp"
#include "fd/failure_detector.hpp"
#include "fd/heartbeat_fd.hpp"
#include "net/network.hpp"
#include "runtime/cluster.hpp"

namespace sanperf::core {

std::vector<double> unicast_probe_shard(const net::NetworkParams& params, std::size_t count,
                                        std::uint64_t seed) {
  des::Simulator sim;
  des::RandomEngine rng{seed};
  net::ContentionNetwork netw{sim, rng.substream("net"), params, 2};

  std::vector<double> delays;
  delays.reserve(count);
  netw.set_deliver([&](const net::Packet& pkt) { delays.push_back((sim.now() - pkt.sent_at).to_ms()); });

  // Isolated probes: each send waits for the previous delivery plus a gap,
  // so probes never contend with each other (an idle network, as in the
  // paper's delay measurements).
  const des::Duration gap = des::Duration::from_ms(1.0);
  std::function<void(std::size_t)> fire = [&](std::size_t k) {
    if (k >= count) return;
    netw.send(0, 1, std::any{});
    sim.schedule(gap, [&fire, k] { fire(k + 1); });
  };
  fire(0);
  sim.run();
  return delays;
}

std::vector<double> broadcast_probe_shard(const net::NetworkParams& params, std::size_t n,
                                          std::size_t count, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument{"broadcast_probe_shard: n < 2"};
  des::Simulator sim;
  des::RandomEngine rng{seed};
  net::ContentionNetwork netw{sim, rng.substream("net"), params, n};

  std::vector<double> delays;  // one entry per broadcast: mean over destinations
  delays.reserve(count);
  double acc = 0;
  std::size_t received = 0;
  netw.set_deliver([&](const net::Packet& pkt) {
    acc += (sim.now() - pkt.sent_at).to_ms();
    if (++received == n - 1) {
      delays.push_back(acc / static_cast<double>(n - 1));
      acc = 0;
      received = 0;
    }
  });

  const des::Duration gap = des::Duration::from_ms(3.0);
  std::function<void(std::size_t)> fire = [&](std::size_t k) {
    if (k >= count) return;
    // The implementation broadcasts as n-1 unicasts in ascending id order.
    for (net::HostId dst = 1; dst < static_cast<net::HostId>(n); ++dst) {
      netw.send(0, dst, std::any{});
    }
    sim.schedule(gap, [&fire, k] { fire(k + 1); });
  };
  fire(0);
  sim.run();
  return delays;
}

namespace {

/// Concatenates probe shards in shard order (tree merge; associative, so
/// identical to sequential appends) into the pooled delay sample.
std::vector<double> pool_probe_shards(std::vector<std::vector<double>> shards,
                                      const ReplicationRunner& runner) {
  return tree_merge(
      std::move(shards),
      [](std::vector<double>& a, std::vector<double>& b) {
        a.insert(a.end(), b.begin(), b.end());
        std::vector<double>{}.swap(b);
      },
      &runner);
}

}  // namespace

std::vector<double> measure_unicast_delays(const net::NetworkParams& params, std::size_t probes,
                                           std::uint64_t seed, const ReplicationRunner& runner) {
  const des::SeedSplitter seeds{seed, "probe"};
  auto shards = runner.map(delay_probe_shards(probes), [&](std::size_t s) {
    return unicast_probe_shard(params, delay_probe_shard_size(probes, s), seeds.stream_seed(s));
  });
  return pool_probe_shards(std::move(shards), runner);
}

std::vector<double> measure_broadcast_delays(const net::NetworkParams& params, std::size_t n,
                                             std::size_t probes, std::uint64_t seed,
                                             const ReplicationRunner& runner) {
  if (n < 2) throw std::invalid_argument{"measure_broadcast_delays: n < 2"};
  const des::SeedSplitter seeds{seed, "probe"};
  auto shards = runner.map(delay_probe_shards(probes), [&](std::size_t s) {
    return broadcast_probe_shard(params, n, delay_probe_shard_size(probes, s),
                                 seeds.stream_seed(s));
  });
  return pool_probe_shards(std::move(shards), runner);
}

void MeasuredLatency::merge(const MeasuredLatency& other) {
  latencies_ms.insert(latencies_ms.end(), other.latencies_ms.begin(), other.latencies_ms.end());
  rounds.insert(rounds.end(), other.rounds.begin(), other.rounds.end());
  undecided += other.undecided;
}

stats::SummaryStats MeasuredLatency::summary() const {
  stats::SummaryStats s;
  for (const double x : latencies_ms) s.add(x);
  return s;
}

ExecOutcome run_latency_execution(std::size_t n, const net::NetworkParams& params,
                                  const net::TimerModel& timers, int initially_crashed,
                                  std::size_t k, std::uint64_t exec_seed) {
  // The workload engine's one-shot mode IS the historic harness.
  WorkloadConfig cfg;
  cfg.n = n;
  cfg.network = params;
  cfg.timers = timers;
  cfg.initially_crashed = initially_crashed;
  return run_one_shot(cfg, k, exec_seed);
}

MeasuredLatency fold_latency_outcomes(const std::vector<ExecOutcome>& outcomes) {
  // Merge in execution order: identical to the sequential loop.
  MeasuredLatency out;
  out.latencies_ms.reserve(outcomes.size());
  for (const ExecOutcome& exec : outcomes) {
    if (exec.latency_ms) {
      out.latencies_ms.push_back(*exec.latency_ms);
      out.rounds.push_back(exec.rounds);
    } else {
      ++out.undecided;
    }
  }
  return out;
}

MeasuredLatency measure_latency(std::size_t n, const net::NetworkParams& params,
                                const net::TimerModel& timers, int initially_crashed,
                                std::size_t executions, std::uint64_t seed,
                                const ReplicationRunner& runner) {
  if (initially_crashed >= static_cast<int>(n)) {
    throw std::invalid_argument{"measure_latency: crashed id out of range"};
  }
  const des::SeedSplitter seeds{seed, "exec"};
  return fold_latency_outcomes(runner.map(executions, [&](std::size_t k) {
    return run_latency_execution(n, params, timers, initially_crashed, k, seeds.stream_seed(k));
  }));
}

Class3Run measure_class3_run(std::size_t n, const net::NetworkParams& params,
                             const net::TimerModel& timers, double timeout_ms,
                             std::size_t executions, std::uint64_t seed) {
  runtime::ClusterConfig cfg;
  cfg.n = n;
  cfg.network = params;
  cfg.timers = timers;
  cfg.seed = seed;
  runtime::Cluster cluster{cfg};

  const auto fd_params = fd::HeartbeatFdParams::from_timeout_ms(timeout_ms);
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
    auto& proc = cluster.process(pid);
    auto& hb = proc.add_layer<fd::HeartbeatFd>(fd_params);
    proc.add_layer<consensus::CtConsensus>(hb);
  }

  consensus::SequencerConfig seq_cfg;
  seq_cfg.executions = executions;
  consensus::ConsensusSequencer seq{cluster, seq_cfg};
  const auto results = seq.run();

  Class3Run run;
  for (const auto& res : results) {
    if (res.decided()) {
      run.latency.latencies_ms.push_back(res.latency_ms());
      run.latency.rounds.push_back(res.rounds);
    } else {
      ++run.latency.undecided;
    }
  }

  // QoS over the full experiment duration, all ordered pairs.
  std::vector<const fd::PairHistory*> histories;
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
    const auto& hb = cluster.process(pid).layer<fd::HeartbeatFd>();
    for (runtime::HostId peer = 0; peer < static_cast<runtime::HostId>(n); ++peer) {
      if (peer == pid) continue;
      histories.push_back(&hb.histories()[peer]);
    }
  }
  run.qos = fd::average_qos(histories, seq.experiment_end());
  run.experiment_ms = seq.experiment_end().to_ms();
  return run;
}

Class3Aggregate fold_class3_runs(std::vector<Class3Run> runs) {
  stats::SummaryStats lat_means, tmr_means, tm_means;
  Class3Aggregate agg;

  // Aggregate scalar summaries in run order: identical to the sequential
  // loop (SummaryStats folds are order-sensitive in the last bits).
  std::vector<MeasuredLatency> latency_shards;
  latency_shards.reserve(runs.size());
  for (Class3Run& run : runs) {
    const auto lat = run.latency.summary();
    if (lat.count() > 0) lat_means.add(lat.mean());
    if (run.qos.pairs_used > 0) {
      tmr_means.add(run.qos.t_mr_ms);
      tm_means.add(run.qos.t_m_ms);
    }
    latency_shards.push_back(std::move(run.latency));
  }

  // Pool per-run latency shards pairwise: concatenation is associative, so
  // the tree merge reproduces the sequential appends exactly while scaling
  // to high run counts.
  MeasuredLatency pooled = tree_merge(
      std::move(latency_shards),
      [](MeasuredLatency& a, MeasuredLatency& b) { a.merge(b); });
  agg.all_latencies_ms = std::move(pooled.latencies_ms);
  agg.undecided = pooled.undecided;

  agg.latency_ms = lat_means.mean_ci(0.90);
  agg.t_mr_ms = tmr_means.mean_ci(0.90);
  agg.t_m_ms = tm_means.mean_ci(0.90);
  agg.pooled_qos.t_mr_ms = tmr_means.mean();
  agg.pooled_qos.t_m_ms = tm_means.mean();
  agg.pooled_qos.pairs_used = tmr_means.count();
  return agg;
}

Class3Aggregate measure_class3(std::size_t n, const net::NetworkParams& params,
                               const net::TimerModel& timers, double timeout_ms, std::size_t runs,
                               std::size_t executions, std::uint64_t seed,
                               const ReplicationRunner& runner) {
  const des::SeedSplitter seeds{seed, "run"};
  return fold_class3_runs(runner.map(runs, [&](std::size_t r) {
    return measure_class3_run(n, params, timers, timeout_ms, executions, seeds.stream_seed(r));
  }));
}

}  // namespace sanperf::core
