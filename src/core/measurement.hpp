// Measurement campaigns on the emulated cluster -- the "experiments on a
// cluster of PCs" half of the paper's combined methodology.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/replication.hpp"
#include "fd/qos.hpp"
#include "net/params.hpp"
#include "stats/summary.hpp"

namespace sanperf::core {

/// End-to-end delay of isolated unicast messages (Fig 6, "unicast"), in ms.
[[nodiscard]] std::vector<double> measure_unicast_delays(const net::NetworkParams& params,
                                                         std::size_t probes, std::uint64_t seed);

/// End-to-end delay of isolated broadcasts to n-1 destinations, averaged
/// over the destinations (Fig 6, "broadcast to n"), in ms.
[[nodiscard]] std::vector<double> measure_broadcast_delays(const net::NetworkParams& params,
                                                           std::size_t n, std::size_t probes,
                                                           std::uint64_t seed);

struct MeasuredLatency {
  std::vector<double> latencies_ms;  ///< decided executions only
  std::vector<std::int32_t> rounds;  ///< rounds used by the first decider
  std::size_t undecided = 0;

  /// Appends another campaign's executions (shard merging).
  void merge(const MeasuredLatency& other);

  [[nodiscard]] stats::SummaryStats summary() const;
};

/// Consensus latency for run classes 1 and 2: isolated executions, static
/// complete-and-accurate failure detectors, optional initial crash.
/// `initially_crashed` is a host id or -1. Executions are independent
/// emulated clusters seeded per index, fanned out over `runner`; the result
/// is identical for every thread count.
[[nodiscard]] MeasuredLatency measure_latency(std::size_t n, const net::NetworkParams& params,
                                              const net::TimerModel& timers,
                                              int initially_crashed, std::size_t executions,
                                              std::uint64_t seed,
                                              const ReplicationRunner& runner =
                                                  default_runner());

/// One class-3 run: a single long experiment with live heartbeat failure
/// detection (timeout T, Th = 0.7 T) and `executions` consensus executions
/// separated by 10 ms. QoS metrics are estimated over the full duration, as
/// in Section 4.
struct Class3Run {
  MeasuredLatency latency;
  fd::QosEstimate qos;
  double experiment_ms = 0;  ///< T_exp
};

[[nodiscard]] Class3Run measure_class3_run(std::size_t n, const net::NetworkParams& params,
                                           const net::TimerModel& timers, double timeout_ms,
                                           std::size_t executions, std::uint64_t seed);

/// Aggregates several independent class-3 runs: means and 90% confidence
/// intervals computed over the per-run means (the paper's procedure).
struct Class3Aggregate {
  stats::MeanCI latency_ms;
  stats::MeanCI t_mr_ms;
  stats::MeanCI t_m_ms;
  std::vector<double> all_latencies_ms;  ///< pooled across runs
  std::size_t undecided = 0;
  fd::QosEstimate pooled_qos;            ///< run-mean QoS (feeds the SAN model)
};

[[nodiscard]] Class3Aggregate measure_class3(std::size_t n, const net::NetworkParams& params,
                                             const net::TimerModel& timers, double timeout_ms,
                                             std::size_t runs, std::size_t executions,
                                             std::uint64_t seed,
                                             const ReplicationRunner& runner =
                                                 default_runner());

}  // namespace sanperf::core
