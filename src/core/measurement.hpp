// Measurement campaigns on the emulated cluster -- the "experiments on a
// cluster of PCs" half of the paper's combined methodology.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/replication.hpp"
#include "fd/qos.hpp"
#include "net/params.hpp"
#include "stats/summary.hpp"

namespace sanperf::core {

// --- Fig 6 delay probes ------------------------------------------------------
//
// The calibration pass measures isolated probe delays. Probes are batched
// into independent shards -- each shard a fresh emulated network with its
// own derived seed -- so the whole pass fans out over the replication
// engine and the shard results concatenate deterministically in shard
// order, identical for any thread count.

/// Probes per independent shard in the Fig 6 calibration pass.
inline constexpr std::size_t kDelayProbeShard = 64;

/// Number of probe shards covering `probes` probes.
[[nodiscard]] constexpr std::size_t delay_probe_shards(std::size_t probes) {
  return (probes + kDelayProbeShard - 1) / kDelayProbeShard;
}
/// Probes carried by shard `shard` of a `probes`-probe campaign.
[[nodiscard]] constexpr std::size_t delay_probe_shard_size(std::size_t probes, std::size_t shard) {
  const std::size_t start = shard * kDelayProbeShard;
  return start >= probes ? 0 : (probes - start < kDelayProbeShard ? probes - start
                                                                  : kDelayProbeShard);
}

/// One shard of `count` isolated unicast probes (the flat sharding unit of
/// the Fig 6 calibration): end-to-end delays in ms, in probe order.
[[nodiscard]] std::vector<double> unicast_probe_shard(const net::NetworkParams& params,
                                                      std::size_t count, std::uint64_t seed);

/// One shard of `count` isolated broadcasts to n-1 destinations, each delay
/// averaged over the destinations.
[[nodiscard]] std::vector<double> broadcast_probe_shard(const net::NetworkParams& params,
                                                        std::size_t n, std::size_t count,
                                                        std::uint64_t seed);

/// End-to-end delay of isolated unicast messages (Fig 6, "unicast"), in ms.
/// Shards fan out over `runner`; the pooled sample is identical for any
/// thread count.
[[nodiscard]] std::vector<double> measure_unicast_delays(const net::NetworkParams& params,
                                                         std::size_t probes, std::uint64_t seed,
                                                         const ReplicationRunner& runner =
                                                             default_runner());

/// End-to-end delay of isolated broadcasts to n-1 destinations, averaged
/// over the destinations (Fig 6, "broadcast to n"), in ms.
[[nodiscard]] std::vector<double> measure_broadcast_delays(const net::NetworkParams& params,
                                                           std::size_t n, std::size_t probes,
                                                           std::uint64_t seed,
                                                           const ReplicationRunner& runner =
                                                               default_runner());

// --- Class 1/2 latency campaigns --------------------------------------------

/// Outcome of one isolated consensus execution (the flat sharding unit of
/// the Fig 7a / Table 1 measurement campaigns).
struct ExecOutcome {
  std::optional<double> latency_ms;  ///< empty when the execution timed out
  std::int32_t rounds = 0;
};

struct MeasuredLatency {
  std::vector<double> latencies_ms;  ///< decided executions only
  std::vector<std::int32_t> rounds;  ///< rounds used by the first decider
  std::size_t undecided = 0;

  /// Appends another campaign's executions (shard merging).
  void merge(const MeasuredLatency& other);

  [[nodiscard]] stats::SummaryStats summary() const;
};

/// One isolated Chandra-Toueg execution with an explicitly derived seed
/// (task `k` of a campaign; seeds come from SeedSplitter{seed, "exec"}).
[[nodiscard]] ExecOutcome run_latency_execution(std::size_t n, const net::NetworkParams& params,
                                                const net::TimerModel& timers,
                                                int initially_crashed, std::size_t k,
                                                std::uint64_t exec_seed);

/// Folds per-execution outcomes in execution order -- the exact merge the
/// sequential campaign loop performs.
[[nodiscard]] MeasuredLatency fold_latency_outcomes(const std::vector<ExecOutcome>& outcomes);

/// Consensus latency for run classes 1 and 2: isolated executions, static
/// complete-and-accurate failure detectors, optional initial crash.
/// `initially_crashed` is a host id or -1. Executions are independent
/// emulated clusters seeded per index, fanned out over `runner`; the result
/// is identical for every thread count.
[[nodiscard]] MeasuredLatency measure_latency(std::size_t n, const net::NetworkParams& params,
                                              const net::TimerModel& timers,
                                              int initially_crashed, std::size_t executions,
                                              std::uint64_t seed,
                                              const ReplicationRunner& runner =
                                                  default_runner());

/// One class-3 run: a single long experiment with live heartbeat failure
/// detection (timeout T, Th = 0.7 T) and `executions` consensus executions
/// separated by 10 ms. QoS metrics are estimated over the full duration, as
/// in Section 4.
struct Class3Run {
  MeasuredLatency latency;
  fd::QosEstimate qos;
  double experiment_ms = 0;  ///< T_exp
};

[[nodiscard]] Class3Run measure_class3_run(std::size_t n, const net::NetworkParams& params,
                                           const net::TimerModel& timers, double timeout_ms,
                                           std::size_t executions, std::uint64_t seed);

/// Aggregates several independent class-3 runs: means and 90% confidence
/// intervals computed over the per-run means (the paper's procedure).
struct Class3Aggregate {
  stats::MeanCI latency_ms;
  stats::MeanCI t_mr_ms;
  stats::MeanCI t_m_ms;
  std::vector<double> all_latencies_ms;  ///< pooled across runs
  std::size_t undecided = 0;
  fd::QosEstimate pooled_qos;            ///< run-mean QoS (feeds the SAN model)
};

/// Folds independent class-3 runs in run order (the flat sharding fold for
/// the Fig 8 / Fig 9a campaigns). Pooled latencies concatenate by pairwise
/// tree merge -- associative, so still bit-identical to the left fold.
[[nodiscard]] Class3Aggregate fold_class3_runs(std::vector<Class3Run> runs);

[[nodiscard]] Class3Aggregate measure_class3(std::size_t n, const net::NetworkParams& params,
                                             const net::TimerModel& timers, double timeout_ms,
                                             std::size_t runs, std::size_t executions,
                                             std::uint64_t seed,
                                             const ReplicationRunner& runner =
                                                 default_runner());

}  // namespace sanperf::core
