// Internal: strict little parsers shared by the campaign layer (axis
// overrides) and the ResultTable sinks. Every function validates the whole
// token and throws std::invalid_argument naming `what` on garbage, so a
// typo in a --set override or a corrupted CSV cell fails loudly.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sanperf::core::detail {

inline double parse_real(std::string_view text, std::string_view what) {
  const std::string owned{text};
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(owned.c_str(), &end);
  // Out-of-range magnitudes (1e999) fail; literal "nan"/"inf" tokens pass
  // so ResultTable cells round-trip (callers needing finite values check).
  if (end == owned.c_str() || *end != '\0' || errno == ERANGE) {
    throw std::invalid_argument{std::string{what} + ": bad real '" + owned + "'"};
  }
  return v;
}

inline std::int64_t parse_int(std::string_view text, std::string_view what) {
  const std::string owned{text};
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(owned.c_str(), &end, 10);
  if (end == owned.c_str() || *end != '\0' || errno == ERANGE) {
    throw std::invalid_argument{std::string{what} + ": bad int '" + owned + "'"};
  }
  return v;
}

/// Splits on `sep`; "a,,b" yields three tokens, the middle one empty.
inline std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace sanperf::core::detail
