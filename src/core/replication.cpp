#include "core/replication.hpp"

#include <cstdlib>

#include "des/random.hpp"

namespace sanperf::core {

namespace {

// True while the current thread is executing a batch; nested for_each calls
// run inline instead of deadlocking on the single shared batch slot.
thread_local bool tl_in_batch = false;

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ReplicationRunner::ReplicationRunner(std::size_t threads)
    : threads_{resolve_threads(threads)} {
  // The calling thread participates in every batch, so spawn one fewer.
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ReplicationRunner::~ReplicationRunner() {
  {
    std::lock_guard lk{mutex_};
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ReplicationRunner::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock lk{mutex_};
      wake_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      batch = batch_;
    }
    if (batch) drain(*batch);
  }
}

void ReplicationRunner::drain(Batch& batch) const {
  tl_in_batch = true;
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) break;
    try {
      (*batch.fn)(i);
    } catch (...) {
      std::lock_guard lk{mutex_};
      if (!batch.error) batch.error = std::current_exception();
    }
    if (batch.finished.fetch_add(1, std::memory_order_acq_rel) + 1 == batch.count) {
      std::lock_guard lk{mutex_};  // pairs with the done_ wait
      done_.notify_all();
    }
  }
  tl_in_batch = false;
}

void ReplicationRunner::for_each(std::size_t count,
                                 const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  if (workers_.empty() || count == 1 || tl_in_batch) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>(fn, count);
  {
    std::lock_guard lk{mutex_};
    batch_ = batch;
    ++generation_;
  }
  wake_.notify_all();
  drain(*batch);
  {
    std::unique_lock lk{mutex_};
    done_.wait(lk, [&] { return batch->finished.load(std::memory_order_acquire) == count; });
    if (batch_ == batch) batch_ = nullptr;
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

const ReplicationRunner& default_runner() {
  static const ReplicationRunner runner{[] {
    const char* env = std::getenv("SANPERF_THREADS");
    if (env == nullptr) return std::size_t{0};
    const long v = std::strtol(env, nullptr, 10);
    return v > 0 ? static_cast<std::size_t>(v) : std::size_t{0};
  }()};
  return runner;
}

san::StudyResult fold_study_rewards(const std::vector<std::optional<double>>& rewards,
                                    double confidence) {
  san::StudyResult out;
  out.rewards.reserve(rewards.size());
  for (const auto& reward : rewards) {
    if (!reward) {
      ++out.dropped;
      continue;
    }
    out.rewards.push_back(*reward);
    out.summary.add(*reward);
  }
  out.ci = out.summary.mean_ci(confidence);
  return out;
}

san::StudyResult run_study(const ReplicationRunner& runner, const san::TransientStudy& study,
                           std::size_t replications, std::uint64_t seed, double confidence) {
  const des::SeedSplitter seeds{seed};
  const auto rewards = runner.map(
      replications, [&](std::size_t r) { return study.run_one(seeds.stream(r)); });
  // Deterministic fold in replication order: the exact sequence of add()
  // calls the sequential loop would make.
  return fold_study_rewards(rewards, confidence);
}

}  // namespace sanperf::core
