// Parallel replication engine.
//
// Every campaign in this codebase is a set of independent replications,
// each fully determined by (master seed, replication index). The
// ReplicationRunner fans those indices out across a persistent thread pool
// and the caller folds the per-index results back together IN INDEX ORDER,
// so merged statistics are bit-identical regardless of thread count or
// scheduling order. One thread (or SANPERF_THREADS=1) degenerates to the
// plain sequential loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "des/random.hpp"
#include "san/study.hpp"

namespace sanperf::core {

/// The flattened (grid-point x replication) index space of a campaign.
///
/// A campaign driver sweeps a parameter grid and runs many replications per
/// grid point. Fanning out only the inner replication loop leaves the outer
/// sweep sequential; a ShardSpace instead enumerates every (group,
/// replication) pair as one flat task list, so a single runner batch covers
/// the whole campaign. Each task carries its own seed from the group's
/// SeedSplitter: results are pure in the task, independent of scheduling,
/// and fold back deterministically in index order.
class ShardSpace {
 public:
  struct Task {
    std::size_t group = 0;   ///< grid-point index, in add_group() order
    std::size_t index = 0;   ///< replication index within the group
    std::uint64_t seed = 0;  ///< SeedSplitter{group seed, label}.stream_seed(index)
  };

  /// Appends a group of `count` tasks seeded from SeedSplitter{seed, label}.
  /// Returns the group id (consecutive from 0).
  std::size_t add_group(std::size_t count, std::uint64_t seed, std::string_view label = "rep") {
    groups_.push_back(Group{total_, count, des::SeedSplitter{seed, label}});
    total_ += count;
    return groups_.size() - 1;
  }

  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }
  [[nodiscard]] std::size_t group_size(std::size_t group) const { return groups_[group].count; }
  /// Total number of tasks across all groups.
  [[nodiscard]] std::size_t size() const { return total_; }

  /// Decodes a flat index in [0, size()) into its task.
  [[nodiscard]] Task task(std::size_t flat) const {
    // Groups are few (a parameter grid): a linear scan beats binary search
    // on these sizes and keeps the structure trivially copyable.
    std::size_t g = 0;
    while (g + 1 < groups_.size() && groups_[g + 1].offset <= flat) ++g;
    const Group& group = groups_[g];
    Task t;
    t.group = g;
    t.index = flat - group.offset;
    t.seed = group.seeds.stream_seed(t.index);
    return t;
  }

 private:
  struct Group {
    std::size_t offset;
    std::size_t count;
    des::SeedSplitter seeds;
  };
  std::vector<Group> groups_;
  std::size_t total_ = 0;
};

class ReplicationRunner {
 public:
  /// `threads == 0` resolves to the hardware concurrency.
  explicit ReplicationRunner(std::size_t threads = 0);
  ~ReplicationRunner();

  ReplicationRunner(const ReplicationRunner&) = delete;
  ReplicationRunner& operator=(const ReplicationRunner&) = delete;

  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, count), distributed over the pool; the
  /// calling thread participates. Blocks until every index has finished.
  /// The first exception thrown by fn is rethrown here. Calls issued from
  /// inside a running batch (nested parallelism) execute inline on the
  /// current thread, so replication bodies may themselves use the runner.
  void for_each(std::size_t count, const std::function<void(std::size_t)>& fn) const;

  /// for_each with results collected in index order. fn's result type must
  /// be default-constructible.
  template <typename Fn>
  [[nodiscard]] auto map(std::size_t count, Fn&& fn) const {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(std::is_default_constructible_v<R>,
                  "ReplicationRunner::map requires a default-constructible result");
    static_assert(!std::is_same_v<R, bool>,
                  "ReplicationRunner::map cannot return bool: std::vector<bool> packs bits, "
                  "so concurrent out[i] writes race; return char/int instead");
    std::vector<R> out(count);
    for_each(count, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Runs fn(task) for every task of the flattened campaign space in one
  /// batch -- grid points and replications fan out together, so a sweep
  /// with many small groups saturates the pool just as well as one large
  /// group. Results come back grouped, in index order within each group:
  /// folding them sequentially reproduces the sequential campaign bit for
  /// bit at any thread count.
  template <typename Fn>
  [[nodiscard]] auto run_flat(const ShardSpace& space, Fn&& fn) const {
    using R = std::invoke_result_t<Fn&, const ShardSpace::Task&>;
    static_assert(std::is_default_constructible_v<R>,
                  "ReplicationRunner::run_flat requires a default-constructible result");
    std::vector<std::vector<R>> out(space.group_count());
    for (std::size_t g = 0; g < space.group_count(); ++g) out[g].resize(space.group_size(g));
    for_each(space.size(), [&](std::size_t i) {
      const ShardSpace::Task t = space.task(i);
      out[t.group][t.index] = fn(t);
    });
    return out;
  }

 private:
  struct Batch {
    Batch(const std::function<void(std::size_t)>& f, std::size_t c) : fn{&f}, count{c} {}
    const std::function<void(std::size_t)>* fn;
    std::size_t count;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> finished{0};
    std::exception_ptr error;  ///< first failure; guarded by the runner mutex
  };

  void worker_loop();
  void drain(Batch& batch) const;

  std::size_t threads_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  mutable std::condition_variable wake_;
  mutable std::condition_variable done_;
  mutable std::shared_ptr<Batch> batch_;
  mutable std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Process-wide runner shared by the experiment drivers. Thread count comes
/// from SANPERF_THREADS (unset or 0 means hardware concurrency).
[[nodiscard]] const ReplicationRunner& default_runner();

/// Pairwise (tree) reduction of mergeable shards: merge(a, b) folds shard b
/// into shard a. Each level merges adjacent pairs -- through `runner` when
/// given, since pairs are independent -- so high replication counts reduce
/// in O(log n) sequential depth instead of one long caller-thread fold.
/// The tree shape is fixed by the shard count alone, so the result is
/// deterministic for any thread count; for associative merges (Ecdf sample
/// pooling, Histogram counts, vector concatenation, MeasuredLatency
/// appends) it is bit-identical to the sequential left fold.
template <typename T, typename Merge>
[[nodiscard]] T tree_merge(std::vector<T> shards, Merge&& merge,
                           const ReplicationRunner* runner = nullptr) {
  if (shards.empty()) {
    if constexpr (std::is_default_constructible_v<T>) {
      return T{};
    } else {
      throw std::invalid_argument{"tree_merge: no shards"};
    }
  }
  std::size_t live = shards.size();
  while (live > 1) {
    const std::size_t pairs = live / 2;
    if (runner != nullptr && pairs > 1) {
      runner->for_each(pairs, [&](std::size_t p) { merge(shards[2 * p], shards[2 * p + 1]); });
    } else {
      for (std::size_t p = 0; p < pairs; ++p) merge(shards[2 * p], shards[2 * p + 1]);
    }
    // Survivors sit at even indices; a trailing odd shard rides along.
    // (Guard against self-move: shards[0] always survives in place.)
    std::size_t w = 0;
    for (std::size_t r = 0; r < live; r += 2, ++w) {
      if (w != r) shards[w] = std::move(shards[r]);
    }
    live = w;
  }
  return std::move(shards.front());
}

/// Folds per-replication rewards (nullopt = dropped) in index order into a
/// StudyResult: the exact sequence of add() calls the sequential loop makes.
[[nodiscard]] san::StudyResult fold_study_rewards(
    const std::vector<std::optional<double>>& rewards, double confidence = 0.90);

/// Runs a transient study's replications through `runner` and merges the
/// per-replication rewards in index order: the result is bit-identical to
/// san::TransientStudy::run for every thread count.
[[nodiscard]] san::StudyResult run_study(const ReplicationRunner& runner,
                                         const san::TransientStudy& study,
                                         std::size_t replications, std::uint64_t seed,
                                         double confidence = 0.90);

}  // namespace sanperf::core
