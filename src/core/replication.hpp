// Parallel replication engine.
//
// Every campaign in this codebase is a set of independent replications,
// each fully determined by (master seed, replication index). The
// ReplicationRunner fans those indices out across a persistent thread pool
// and the caller folds the per-index results back together IN INDEX ORDER,
// so merged statistics are bit-identical regardless of thread count or
// scheduling order. One thread (or SANPERF_THREADS=1) degenerates to the
// plain sequential loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "san/study.hpp"

namespace sanperf::core {

class ReplicationRunner {
 public:
  /// `threads == 0` resolves to the hardware concurrency.
  explicit ReplicationRunner(std::size_t threads = 0);
  ~ReplicationRunner();

  ReplicationRunner(const ReplicationRunner&) = delete;
  ReplicationRunner& operator=(const ReplicationRunner&) = delete;

  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, count), distributed over the pool; the
  /// calling thread participates. Blocks until every index has finished.
  /// The first exception thrown by fn is rethrown here. Calls issued from
  /// inside a running batch (nested parallelism) execute inline on the
  /// current thread, so replication bodies may themselves use the runner.
  void for_each(std::size_t count, const std::function<void(std::size_t)>& fn) const;

  /// for_each with results collected in index order. fn's result type must
  /// be default-constructible.
  template <typename Fn>
  [[nodiscard]] auto map(std::size_t count, Fn&& fn) const {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(std::is_default_constructible_v<R>,
                  "ReplicationRunner::map requires a default-constructible result");
    static_assert(!std::is_same_v<R, bool>,
                  "ReplicationRunner::map cannot return bool: std::vector<bool> packs bits, "
                  "so concurrent out[i] writes race; return char/int instead");
    std::vector<R> out(count);
    for_each(count, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Batch {
    Batch(const std::function<void(std::size_t)>& f, std::size_t c) : fn{&f}, count{c} {}
    const std::function<void(std::size_t)>* fn;
    std::size_t count;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> finished{0};
    std::exception_ptr error;  ///< first failure; guarded by the runner mutex
  };

  void worker_loop();
  void drain(Batch& batch) const;

  std::size_t threads_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  mutable std::condition_variable wake_;
  mutable std::condition_variable done_;
  mutable std::shared_ptr<Batch> batch_;
  mutable std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Process-wide runner shared by the experiment drivers. Thread count comes
/// from SANPERF_THREADS (unset or 0 means hardware concurrency).
[[nodiscard]] const ReplicationRunner& default_runner();

/// Runs a transient study's replications through `runner` and merges the
/// per-replication rewards in index order: the result is bit-identical to
/// san::TransientStudy::run for every thread count.
[[nodiscard]] san::StudyResult run_study(const ReplicationRunner& runner,
                                         const san::TransientStudy& study,
                                         std::size_t replications, std::uint64_t seed,
                                         double confidence = 0.90);

}  // namespace sanperf::core
