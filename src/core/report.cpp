#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace sanperf::core {

TablePrinter::TablePrinter(std::ostream& os, std::vector<std::pair<std::string, int>> columns)
    : os_{&os}, columns_{std::move(columns)} {}

void TablePrinter::print_header() {
  for (const auto& [name, width] : columns_) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%-*s ", width, name.c_str());
    *os_ << buf;
  }
  *os_ << '\n';
  print_rule();
}

void TablePrinter::print_rule() {
  for (const auto& [name, width] : columns_) {
    (void)name;
    *os_ << std::string(static_cast<std::size_t>(width), '-') << ' ';
  }
  *os_ << '\n';
}

void TablePrinter::print_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    const int width = columns_[i].second;
    const std::string cell = i < cells.size() ? cells[i] : "";
    char buf[96];
    std::snprintf(buf, sizeof buf, "%-*s ", width, cell.c_str());
    *os_ << buf;
  }
  *os_ << '\n';
}

std::string fmt(double value, int precision) {
  if (std::isnan(value)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_ci(const stats::MeanCI& ci, int precision) {
  if (ci.count == 0) return "-";
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f +-%.*f", precision, ci.mean, precision, ci.half_width);
  return buf;
}

void print_cdfs(std::ostream& os, const std::vector<std::pair<std::string, stats::Ecdf>>& curves,
                std::size_t points, const std::string& x_label) {
  if (curves.empty()) return;
  double lo = curves.front().second.min();
  double hi = curves.front().second.max();
  for (const auto& [label, ecdf] : curves) {
    (void)label;
    lo = std::min(lo, ecdf.min());
    hi = std::max(hi, ecdf.max());
  }

  std::vector<std::pair<std::string, int>> cols;
  cols.emplace_back(x_label, 10);
  for (const auto& [label, ecdf] : curves) {
    (void)ecdf;
    cols.emplace_back(label, std::max<int>(8, static_cast<int>(label.size())));
  }
  TablePrinter table{os, cols};
  table.print_header();
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    std::vector<std::string> cells{fmt(x, 3)};
    for (const auto& [label, ecdf] : curves) {
      (void)label;
      cells.push_back(fmt(ecdf.eval(x), 3));
    }
    table.print_row(cells);
  }
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n' << title << '\n' << std::string(72, '=') << '\n';
}

}  // namespace sanperf::core
