// Plain-text rendering helpers for the bench harnesses: aligned tables,
// CDF curves as rows, confidence-interval formatting.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "stats/ecdf.hpp"
#include "stats/summary.hpp"

namespace sanperf::core {

/// Fixed-width text table; header widths define column widths.
class TablePrinter {
 public:
  TablePrinter(std::ostream& os, std::vector<std::pair<std::string, int>> columns);

  void print_header();
  void print_row(const std::vector<std::string>& cells);
  void print_rule();

 private:
  std::ostream* os_;
  std::vector<std::pair<std::string, int>> columns_;
};

/// "%.*f" with a fixed precision; "-" for NaN.
[[nodiscard]] std::string fmt(double value, int precision = 3);
/// "mean +- hw" at the CI's confidence level.
[[nodiscard]] std::string fmt_ci(const stats::MeanCI& ci, int precision = 3);

/// Prints CDF curves side by side: one row per x sample, one column per
/// labelled curve, spanning the pooled [min, max] range.
void print_cdfs(std::ostream& os, const std::vector<std::pair<std::string, stats::Ecdf>>& curves,
                std::size_t points = 20, const std::string& x_label = "x");

/// Section banner.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace sanperf::core
