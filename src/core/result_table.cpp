#include "core/result_table.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/json.hpp"
#include "core/parse_util.hpp"
#include "core/report.hpp"

namespace sanperf::core {

namespace {

constexpr std::size_t type_index_of(ResultTable::ColumnType type) {
  switch (type) {
    case ResultTable::ColumnType::kInt: return 1;
    case ResultTable::ColumnType::kReal: return 2;
    case ResultTable::ColumnType::kString: return 3;
    case ResultTable::ColumnType::kMeanCI: return 4;
    case ResultTable::ColumnType::kSample: return 5;
  }
  return 0;
}

/// Shortest decimal form that restores the exact double bits.
constexpr auto exact = detail::json_exact;

using detail::split;

double parse_real(std::string_view text) { return detail::parse_real(text, "ResultTable"); }

std::int64_t parse_int(std::string_view text) { return detail::parse_int(text, "ResultTable"); }

void check_csv_safe(std::string_view text, const char* what) {
  if (text.find_first_of(",;\n\r\"") != std::string_view::npos) {
    throw std::invalid_argument{std::string{"ResultTable: "} + what + " '" + std::string{text} +
                                "' contains a CSV separator"};
  }
}

}  // namespace

const char* to_string(ResultTable::ColumnType type) {
  switch (type) {
    case ResultTable::ColumnType::kInt: return "int";
    case ResultTable::ColumnType::kReal: return "real";
    case ResultTable::ColumnType::kString: return "string";
    case ResultTable::ColumnType::kMeanCI: return "ci";
    case ResultTable::ColumnType::kSample: return "sample";
  }
  return "?";
}

ResultTable::ColumnType column_type_from_string(std::string_view text) {
  if (text == "int") return ResultTable::ColumnType::kInt;
  if (text == "real") return ResultTable::ColumnType::kReal;
  if (text == "string") return ResultTable::ColumnType::kString;
  if (text == "ci") return ResultTable::ColumnType::kMeanCI;
  if (text == "sample") return ResultTable::ColumnType::kSample;
  throw std::invalid_argument{"ResultTable: unknown column type '" + std::string{text} + "'"};
}

ResultTable::ResultTable(std::string name, std::vector<Column> columns)
    : name_{std::move(name)}, columns_{std::move(columns)} {
  check_csv_safe(name_, "table name");
  for (const Column& col : columns_) {
    check_csv_safe(col.name, "column name");
    if (col.name.find(':') != std::string::npos) {
      throw std::invalid_argument{"ResultTable: column name '" + col.name + "' contains ':'"};
    }
  }
}

void ResultTable::add_row(std::vector<Value> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument{"ResultTable::add_row: arity mismatch in table '" + name_ + "'"};
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (cells[c].index() == 0) continue;  // null fits any column
    if (cells[c].index() != type_index_of(columns_[c].type)) {
      throw std::invalid_argument{"ResultTable::add_row: type mismatch in column '" +
                                  columns_[c].name + "'"};
    }
    if (const auto* s = std::get_if<std::string>(&cells[c])) check_csv_safe(*s, "string cell");
  }
  rows_.push_back(std::move(cells));
}

std::optional<std::size_t> ResultTable::column_index(std::string_view column) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].name == column) return c;
  }
  return std::nullopt;
}

const ResultTable::Value& ResultTable::at(std::size_t r, std::string_view column) const {
  const auto c = column_index(column);
  if (!c) throw std::out_of_range{"ResultTable: no column '" + std::string{column} + "'"};
  return rows_.at(r)[*c];
}

// --- CSV ---------------------------------------------------------------------

void ResultTable::write_csv(std::ostream& os) const {
  os << "#table " << name_ << "\n";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "" : ",") << columns_[c].name << ':' << to_string(columns_[c].type);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      const Value& v = row[c];
      if (std::holds_alternative<std::monostate>(v)) continue;  // null = empty
      switch (columns_[c].type) {
        case ColumnType::kInt: os << std::get<std::int64_t>(v); break;
        case ColumnType::kReal: os << exact(std::get<double>(v)); break;
        case ColumnType::kString: os << std::get<std::string>(v); break;
        case ColumnType::kMeanCI: {
          const auto& ci = std::get<stats::MeanCI>(v);
          os << exact(ci.mean) << ';' << exact(ci.half_width) << ';' << exact(ci.confidence)
             << ';' << ci.count;
          break;
        }
        case ColumnType::kSample: {
          const auto& xs = std::get<SampleRef>(v).values();
          // "-" marks a present-but-empty sample (an empty field is null);
          // unambiguous because a bare "-" is not a valid real.
          if (xs.empty()) os << '-';
          for (std::size_t i = 0; i < xs.size(); ++i) os << (i == 0 ? "" : ";") << exact(xs[i]);
          break;
        }
      }
    }
    os << "\n";
  }
}

std::string ResultTable::to_csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

ResultTable ResultTable::from_csv(const std::string& text) {
  std::istringstream is{text};
  return from_csv(is);
}

ResultTable ResultTable::from_csv(std::istream& is) {
  std::string line;
  std::string name;
  const auto strip_cr = [](std::string& text) {
    if (!text.empty() && text.back() == '\r') text.pop_back();  // CRLF input
  };
  // Optional leading comment lines; "#table " carries the name.
  while (std::getline(is, line)) {
    strip_cr(line);
    if (line.empty() || line.front() != '#') break;
    if (line.rfind("#table ", 0) == 0) name = line.substr(7);
  }
  if (line.empty()) throw std::invalid_argument{"ResultTable::from_csv: missing header"};
  std::vector<Column> columns;
  for (const auto token : split(line, ',')) {
    const auto colon = token.rfind(':');
    if (colon == std::string_view::npos) {
      throw std::invalid_argument{"ResultTable::from_csv: header token without type: '" +
                                  std::string{token} + "'"};
    }
    columns.push_back(Column{std::string{token.substr(0, colon)},
                             column_type_from_string(token.substr(colon + 1))});
  }
  ResultTable table{std::move(name), std::move(columns)};
  while (std::getline(is, line)) {
    strip_cr(line);
    if (line.empty()) continue;
    const auto cells = split(line, ',');
    if (cells.size() != table.columns_.size()) {
      throw std::invalid_argument{"ResultTable::from_csv: row arity mismatch"};
    }
    std::vector<Value> row;
    row.reserve(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string_view cell = cells[c];
      if (cell.empty()) {
        row.emplace_back(std::monostate{});
        continue;
      }
      switch (table.columns_[c].type) {
        case ColumnType::kInt: row.emplace_back(parse_int(cell)); break;
        case ColumnType::kReal: row.emplace_back(parse_real(cell)); break;
        case ColumnType::kString: row.emplace_back(std::string{cell}); break;
        case ColumnType::kMeanCI: {
          const auto parts = split(cell, ';');
          if (parts.size() != 4) {
            throw std::invalid_argument{"ResultTable::from_csv: bad ci cell"};
          }
          stats::MeanCI ci;
          ci.mean = parse_real(parts[0]);
          ci.half_width = parse_real(parts[1]);
          ci.confidence = parse_real(parts[2]);
          ci.count = static_cast<std::uint64_t>(parse_int(parts[3]));
          row.emplace_back(ci);
          break;
        }
        case ColumnType::kSample: {
          std::vector<double> xs;
          if (cell != "-") {
            for (const auto part : split(cell, ';')) xs.push_back(parse_real(part));
          }
          row.emplace_back(SampleRef{std::move(xs)});
          break;
        }
      }
    }
    table.add_row(std::move(row));
  }
  return table;
}

// --- JSON --------------------------------------------------------------------

namespace {

using detail::JsonParser;
constexpr auto json_string = detail::write_json_string;
constexpr auto json_number = detail::write_json_number;

const JsonParser::JsonValue* object_field(const JsonParser::JsonValue& obj,
                                          std::string_view key) {
  return JsonParser::field(obj, key);
}

double number_or_nan(const JsonParser::JsonValue& v) {
  if (v.number) return *v.number;
  if (v.is_null) return std::nan("");
  throw std::invalid_argument{"ResultTable::from_json: expected a number"};
}

/// Integer cells re-parse from the raw token: routing them through double
/// would silently round values above 2^53.
std::int64_t int_of_json(const JsonParser::JsonValue& v) {
  if (!v.number) throw std::invalid_argument{"ResultTable::from_json: expected an integer"};
  return parse_int(v.number_text);
}

}  // namespace

void ResultTable::write_json(std::ostream& os) const {
  os << "{\"table\":";
  json_string(os, name_);
  os << ",\"columns\":[";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "" : ",") << "{\"name\":";
    json_string(os, columns_[c].name);
    os << ",\"type\":\"" << to_string(columns_[c].type) << "\"}";
  }
  os << "],\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "" : ",") << '[';
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) os << ',';
      const Value& v = rows_[r][c];
      if (std::holds_alternative<std::monostate>(v)) {
        os << "null";
        continue;
      }
      switch (columns_[c].type) {
        case ColumnType::kInt: os << std::get<std::int64_t>(v); break;
        case ColumnType::kReal: json_number(os, std::get<double>(v)); break;
        case ColumnType::kString: json_string(os, std::get<std::string>(v)); break;
        case ColumnType::kMeanCI: {
          const auto& ci = std::get<stats::MeanCI>(v);
          os << "{\"mean\":";
          json_number(os, ci.mean);
          os << ",\"half_width\":";
          json_number(os, ci.half_width);
          os << ",\"confidence\":";
          json_number(os, ci.confidence);
          os << ",\"count\":" << ci.count << '}';
          break;
        }
        case ColumnType::kSample: {
          const auto& xs = std::get<SampleRef>(v).values();
          os << '[';
          for (std::size_t i = 0; i < xs.size(); ++i) {
            if (i > 0) os << ',';
            json_number(os, xs[i]);
          }
          os << ']';
          break;
        }
      }
    }
    os << ']';
  }
  os << "]}";
}

std::string ResultTable::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

ResultTable ResultTable::from_json(const std::string& text) {
  const auto root = JsonParser{text, "ResultTable::from_json"}.parse();
  const auto* name = object_field(root, "table");
  const auto* columns = object_field(root, "columns");
  const auto* rows = object_field(root, "rows");
  if (name == nullptr || !name->string || columns == nullptr || !columns->array ||
      rows == nullptr || !rows->array) {
    throw std::invalid_argument{"ResultTable::from_json: not a result table"};
  }

  std::vector<Column> cols;
  for (const auto& col : *columns->array) {
    const auto* col_name = object_field(col, "name");
    const auto* col_type = object_field(col, "type");
    if (col_name == nullptr || !col_name->string || col_type == nullptr || !col_type->string) {
      throw std::invalid_argument{"ResultTable::from_json: bad column descriptor"};
    }
    cols.push_back(Column{*col_name->string, column_type_from_string(*col_type->string)});
  }
  ResultTable table{*name->string, std::move(cols)};

  for (const auto& row : *rows->array) {
    if (!row.array || row.array->size() != table.columns_.size()) {
      throw std::invalid_argument{"ResultTable::from_json: row arity mismatch"};
    }
    std::vector<Value> cells;
    cells.reserve(row.array->size());
    for (std::size_t c = 0; c < row.array->size(); ++c) {
      const auto& v = (*row.array)[c];
      if (v.is_null) {
        cells.emplace_back(std::monostate{});
        continue;
      }
      switch (table.columns_[c].type) {
        case ColumnType::kInt: cells.emplace_back(int_of_json(v)); break;
        case ColumnType::kReal: cells.emplace_back(number_or_nan(v)); break;
        case ColumnType::kString:
          if (!v.string) throw std::invalid_argument{"ResultTable::from_json: expected string"};
          cells.emplace_back(*v.string);
          break;
        case ColumnType::kMeanCI: {
          const auto* mean = object_field(v, "mean");
          const auto* hw = object_field(v, "half_width");
          const auto* conf = object_field(v, "confidence");
          const auto* count = object_field(v, "count");
          if (mean == nullptr || hw == nullptr || conf == nullptr || count == nullptr) {
            throw std::invalid_argument{"ResultTable::from_json: bad ci cell"};
          }
          stats::MeanCI ci;
          ci.mean = number_or_nan(*mean);
          ci.half_width = number_or_nan(*hw);
          ci.confidence = number_or_nan(*conf);
          ci.count = static_cast<std::uint64_t>(int_of_json(*count));
          cells.emplace_back(ci);
          break;
        }
        case ColumnType::kSample: {
          if (!v.array) throw std::invalid_argument{"ResultTable::from_json: expected array"};
          std::vector<double> xs;
          xs.reserve(v.array->size());
          for (const auto& x : *v.array) xs.push_back(number_or_nan(x));
          cells.emplace_back(SampleRef{std::move(xs)});
          break;
        }
      }
    }
    table.add_row(std::move(cells));
  }
  return table;
}

// --- Text --------------------------------------------------------------------

namespace {

std::string render_cell(const ResultTable::Value& v) {
  if (std::holds_alternative<std::monostate>(v)) return "-";
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) return fmt(*d);
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  if (const auto* ci = std::get_if<stats::MeanCI>(&v)) return fmt_ci(*ci);
  const auto& sample = std::get<SampleRef>(v);
  std::string out{"["};
  out += std::to_string(sample.size());
  out += " samples]";
  return out;
}

}  // namespace

void ResultTable::print(std::ostream& os) const {
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  std::vector<std::pair<std::string, int>> widths;
  for (const Column& col : columns_) {
    widths.emplace_back(col.name, static_cast<int>(col.name.size()));
  }
  for (const auto& row : rows_) {
    auto& out = rendered.emplace_back();
    out.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      out.push_back(render_cell(row[c]));
      widths[c].second = std::max(widths[c].second, static_cast<int>(out.back().size()));
    }
  }
  TablePrinter printer{os, widths};
  printer.print_header();
  for (const auto& row : rendered) printer.print_row(row);
}

}  // namespace sanperf::core
