// Uniform result container for campaign scenarios: typed columns, per-cell
// MeanCI / sample (ECDF) handles, and CSV/JSON sinks.
//
// Every scenario registered on the CampaignRegistry folds its shard results
// into one ResultTable, so rendering (text tables, CSV for plotting or
// golden diffs, JSON for tooling) is written once instead of once per
// figure. Both sinks round-trip: doubles are printed with enough digits to
// restore the exact bits, which is what makes CSV goldens diffable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "stats/summary.hpp"

namespace sanperf::core {

/// Shared handle to a pooled sample (the jump points of an ECDF). Cells
/// hold handles rather than copies so a table row and the renderer can
/// share one latency sample without duplicating thousands of doubles.
class SampleRef {
 public:
  SampleRef() = default;
  explicit SampleRef(std::vector<double> values)
      : values_{std::make_shared<const std::vector<double>>(std::move(values))} {}

  [[nodiscard]] const std::vector<double>& values() const {
    static const std::vector<double> kEmpty;
    return values_ ? *values_ : kEmpty;
  }
  [[nodiscard]] bool empty() const { return values_ == nullptr || values_->empty(); }
  [[nodiscard]] std::size_t size() const { return values_ ? values_->size() : 0; }

 private:
  std::shared_ptr<const std::vector<double>> values_;
};

class ResultTable {
 public:
  enum class ColumnType { kInt, kReal, kString, kMeanCI, kSample };

  struct Column {
    std::string name;
    ColumnType type;
  };

  /// A cell: monostate renders as null/"-" (e.g. no simulation for this n).
  using Value =
      std::variant<std::monostate, std::int64_t, double, std::string, stats::MeanCI, SampleRef>;

  ResultTable() = default;
  ResultTable(std::string name, std::vector<Column> columns);

  /// Appends a row; throws std::invalid_argument on arity or type mismatch
  /// (monostate is legal in any column).
  void add_row(std::vector<Value> cells);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Column>& columns() const { return columns_; }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<Value>& row(std::size_t r) const { return rows_[r]; }
  [[nodiscard]] const Value& cell(std::size_t r, std::size_t c) const { return rows_[r][c]; }
  /// Index of the named column, or nullopt.
  [[nodiscard]] std::optional<std::size_t> column_index(std::string_view column) const;
  /// cell(row, column_index(column)); throws std::out_of_range on a bad name.
  [[nodiscard]] const Value& at(std::size_t r, std::string_view column) const;

  // --- Sinks -----------------------------------------------------------------
  // CSV: one `#table <name>` comment line, a `name:type` header, one line
  // per row. MeanCI cells are `mean;half_width;confidence;count`, sample
  // cells `v0;v1;...` (`-` for a present-but-empty sample), null cells
  // empty. Doubles use %.17g (bit-exact round-trip). String cells must not
  // contain separators or newlines.
  void write_csv(std::ostream& os) const;
  [[nodiscard]] std::string to_csv() const;
  static ResultTable from_csv(std::istream& is);
  static ResultTable from_csv(const std::string& text);

  // JSON: {"table": name, "columns": [{"name","type"}], "rows": [[...]]}
  // with MeanCI as an object, samples as arrays, null cells as null.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;
  static ResultTable from_json(const std::string& text);

  /// Aligned human-readable table (MeanCI via fmt_ci, samples as a count).
  void print(std::ostream& os) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<std::vector<Value>> rows_;
};

[[nodiscard]] const char* to_string(ResultTable::ColumnType type);
/// Parses "int"/"real"/"string"/"ci"/"sample"; throws on anything else.
[[nodiscard]] ResultTable::ColumnType column_type_from_string(std::string_view text);

}  // namespace sanperf::core
