#include "core/rss.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace sanperf::core {

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // already bytes
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // kilobytes
#endif
#else
  return 0;
#endif
}

}  // namespace sanperf::core
