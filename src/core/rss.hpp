// Process peak-RSS probe for the scaling reports.
#pragma once

#include <cstdint>

namespace sanperf::core {

/// Peak resident-set size of this process in bytes, as the OS accounts it
/// (getrusage ru_maxrss). Monotone over the process lifetime -- a sweep
/// point reports the high-water mark up to its own completion, so only the
/// largest-n row of a sweep is a clean per-run figure. Returns 0 where the
/// platform offers no probe.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace sanperf::core
