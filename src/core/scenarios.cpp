// The built-in campaign registry: every paper artifact (Fig 6, 7a, 7b,
// Table 1, Fig 8, 9a, 9b), the model ablations and the future-work
// extensions, each re-expressed as a declarative ScenarioSpec over the
// flattened ShardSpace fan-out. The per-figure logic lives in the typed
// driver functions (experiments/extensions); the specs describe the axes,
// the output schema, and the fold into a ResultTable.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/campaign.hpp"
#include "core/extensions.hpp"
#include "core/rss.hpp"
#include "core/simulation.hpp"
#include "core/workload.hpp"
#include "des/random.hpp"
#include "faults/experiments.hpp"
#include "stats/ecdf.hpp"
#include "topo/topology.hpp"

namespace sanperf::core {

namespace {

using Value = ResultTable::Value;
using ColumnType = ResultTable::ColumnType;

Value real_or_null(double v) {
  if (!std::isfinite(v)) return Value{};
  return Value{v};
}

Value int_of(std::size_t v) { return Value{static_cast<std::int64_t>(v)}; }

// --- Crash-scenario axis -----------------------------------------------------

const std::vector<std::string>& crash_scenarios() {
  static const std::vector<std::string> names = {"no-crash", "coordinator-crash",
                                                 "participant-crash"};
  return names;
}

int crashed_id(const std::string& scenario) {
  if (scenario == "no-crash") return -1;
  if (scenario == "coordinator-crash") return 0;
  if (scenario == "participant-crash") return 1;
  throw std::invalid_argument{"unknown crash scenario '" + scenario + "'"};
}

const std::string& crash_scenario_name(int crashed) {
  return crash_scenarios().at(static_cast<std::size_t>(crashed + 1));
}

Algorithm algorithm_of(const std::string& name) {
  if (name == "ct") return Algorithm::kChandraToueg;
  if (name == "mr") return Algorithm::kMostefaouiRaynal;
  throw std::invalid_argument{"unknown algorithm '" + name + "' (ct|mr)"};
}

// --- Paper artifacts ---------------------------------------------------------

ScenarioSpec fig6_spec() {
  ScenarioSpec spec;
  spec.name = "fig6";
  spec.description = "End-to-end delay CDFs of isolated unicasts/broadcasts + bimodal fits";
  spec.notes =
      "Paper reports unicast U[0.10,0.13]@0.80 + U[0.145,0.35]@0.20 (mean 0.1415 ms);\n"
      "transmission time ~0.18 ms (Section 4).";
  spec.needs_calibration = false;  // fig6 IS the calibration pass
  spec.axes = [](const Scale& scale) {
    return std::vector<ParamAxis>{ParamAxis::sizes("n", scale.sim_ns)};
  };
  spec.columns = {{"kind", ColumnType::kString}, {"n", ColumnType::kInt},
                  {"p1", ColumnType::kReal},     {"a1_ms", ColumnType::kReal},
                  {"b1_ms", ColumnType::kReal},  {"a2_ms", ColumnType::kReal},
                  {"b2_ms", ColumnType::kReal},  {"mean_ms", ColumnType::kReal},
                  {"delay_ms", ColumnType::kSample}};
  spec.run = [columns = spec.columns](const ScenarioRun& run) {
    const auto ns = run.grid.axis("n").size_values();
    const auto fig6 = run_fig6(run.ctx, ns);
    ResultTable table{"fig6", columns};
    const auto add = [&](const std::string& kind, Value n, const stats::BimodalUniform& fit,
                         std::vector<double> delays) {
      table.add_row({kind, std::move(n), fit.p1, fit.a1, fit.b1, fit.a2, fit.b2, fit.mean(),
                     SampleRef{std::move(delays)}});
    };
    add("unicast", Value{}, fig6.unicast_fit, fig6.unicast_ms);
    for (const std::size_t n : ns) {
      add("broadcast", int_of(n), fig6.broadcast_fits.at(n), fig6.broadcast_ms.at(n));
    }
    return table;
  };
  return spec;
}

ScenarioSpec fig7a_spec() {
  ScenarioSpec spec;
  spec.name = "fig7a";
  spec.description = "Measured consensus latency CDFs, run class 1 (no failures/suspicions)";
  spec.notes =
      "Paper Section 5.2 measured means: 1.06, 1.43, 2.00, 2.62, 3.27 ms for\n"
      "n = 3..11 (this emulated testbed runs ~0.5-0.7x those absolute values).";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    return std::vector<ParamAxis>{ParamAxis::sizes("n", scale.ns)};
  };
  spec.columns = {{"n", ColumnType::kInt},
                  {"paper_meas_ms", ColumnType::kReal},
                  {"latency_ms", ColumnType::kMeanCI},
                  {"undecided", ColumnType::kInt},
                  {"latencies_ms", ColumnType::kSample}};
  spec.run = [columns = spec.columns](const ScenarioRun& run) {
    const auto rows = run_fig7a(run.ctx, run.grid.axis("n").size_values());
    ResultTable table{"fig7a", columns};
    for (const auto& row : rows) {
      Value paper{};
      for (const auto& p : paper_table1()) {
        if (p.n == row.n) paper = real_or_null(p.meas_no_crash);
      }
      table.add_row({int_of(row.n), std::move(paper), row.mean, int_of(row.undecided),
                     SampleRef{row.latencies_ms}});
    }
    return table;
  };
  return spec;
}

ScenarioSpec fig7b_spec() {
  ScenarioSpec spec;
  spec.name = "fig7b";
  spec.description = "t_send sweep: simulated latency CDFs (n = 5) vs the measured CDF";
  spec.notes =
      "The sweep selects t_send by two-sample KS distance; the paper selects\n"
      "0.025 ms visually and the emulator's ground truth is 0.025 ms.";
  spec.needs_calibration = true;
  spec.axes = [](const Scale&) {
    return std::vector<ParamAxis>{ParamAxis::reals("t_send_ms", tsend_candidates())};
  };
  spec.columns = {{"kind", ColumnType::kString},     {"t_send_ms", ColumnType::kReal},
                  {"ks_distance", ColumnType::kReal}, {"mean_ms", ColumnType::kReal},
                  {"selected", ColumnType::kInt},     {"latencies_ms", ColumnType::kSample}};
  spec.run = [columns = spec.columns](const ScenarioRun& run) {
    const auto result = run_fig7b(run.ctx, run.grid.axis("t_send_ms").real_values());
    ResultTable table{"fig7b", columns};
    table.add_row({std::string{"measured"}, Value{}, Value{},
                   stats::summarize(result.measured_ms).mean(), Value{},
                   SampleRef{result.measured_ms}});
    for (const auto& cand : result.sweep.candidates) {
      table.add_row({std::string{"simulated"}, cand.t_send_ms, cand.ks_distance,
                     cand.sim_mean_ms,
                     Value{static_cast<std::int64_t>(
                         cand.t_send_ms == result.sweep.best_t_send_ms ? 1 : 0)},
                     SampleRef{cand.sim_latencies_ms}});
    }
    return table;
  };
  return spec;
}

ScenarioSpec table1_spec() {
  ScenarioSpec spec;
  spec.name = "table1";
  spec.description = "Crash-scenario latency: measurements (n = 3..11) vs SAN sim (n = 3, 5)";
  spec.notes =
      "Paper Section 5.3: a coordinator crash always increases latency; a\n"
      "participant crash decreases it for n >= 5, while for n = 3 the\n"
      "measurements increase (unicast ordering) and the simulation -- whose\n"
      "broadcast is a single message -- shows a decrease instead.";
  spec.needs_calibration = true;
  spec.axes = [](const Scale& scale) {
    return std::vector<ParamAxis>{ParamAxis::sizes("n", scale.ns),
                                  ParamAxis::strings("scenario", crash_scenarios())};
  };
  spec.columns = {{"n", ColumnType::kInt},
                  {"scenario", ColumnType::kString},
                  {"paper_meas_ms", ColumnType::kReal},
                  {"meas_ms", ColumnType::kMeanCI},
                  {"paper_sim_ms", ColumnType::kReal},
                  {"sim_ms", ColumnType::kReal}};
  spec.run = [columns = spec.columns](const ScenarioRun& run) {
    std::vector<int> crashed;
    for (const auto& s : run.grid.axis("scenario").string_values()) {
      crashed.push_back(crashed_id(s));
    }
    const auto cells = run_table1_cells(run.ctx, run.grid.axis("n").size_values(), crashed);
    ResultTable table{"table1", columns};
    for (const auto& cell : cells) {
      Value paper_meas{};
      Value paper_sim{};
      for (const auto& p : paper_table1()) {
        if (p.n != cell.n) continue;
        const double meas = cell.crashed == -1  ? p.meas_no_crash
                            : cell.crashed == 0 ? p.meas_coord
                                                : p.meas_part;
        const double sim = cell.crashed == -1  ? p.sim_no_crash
                           : cell.crashed == 0 ? p.sim_coord
                                               : p.sim_part;
        paper_meas = real_or_null(meas);
        paper_sim = real_or_null(sim);
      }
      table.add_row({int_of(cell.n), crash_scenario_name(cell.crashed), std::move(paper_meas),
                     cell.meas, std::move(paper_sim),
                     cell.sim ? Value{*cell.sim} : Value{}});
    }
    return table;
  };
  return spec;
}

/// fig8 and fig9a render the same class-3 campaign (QoS vs T, latency vs
/// T), so they share one run body differing only in the fold.
ScenarioSpec class3_spec(bool qos_view) {
  ScenarioSpec spec;
  spec.name = qos_view ? "fig8" : "fig9a";
  spec.description = qos_view
                         ? "Heartbeat FD QoS (T_MR, T_M) vs timeout T, class-3 measurements"
                         : "Consensus latency vs timeout T, class-3 measurements";
  spec.notes = qos_view
                   ? "Paper Fig 8: T_MR increases with T and blows up past T ~ 30 ms\n"
                     "(> 190 ms at T = 40); T_M stays irregular but bounded (< 12 ms)."
                   : "Paper Fig 9a: latency decreases in T, starting very high where\n"
                     "wrong suspicions are frequent.";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    return std::vector<ParamAxis>{ParamAxis::sizes("n", scale.ns),
                                  ParamAxis::reals("timeout_ms", scale.timeouts_ms)};
  };
  if (qos_view) {
    spec.columns = {{"n", ColumnType::kInt},        {"timeout_ms", ColumnType::kReal},
                    {"t_mr_ms", ColumnType::kMeanCI}, {"t_m_ms", ColumnType::kMeanCI},
                    {"qos_pairs", ColumnType::kInt},  {"undecided", ColumnType::kInt}};
  } else {
    spec.columns = {{"n", ColumnType::kInt},
                    {"timeout_ms", ColumnType::kReal},
                    {"latency_ms", ColumnType::kMeanCI},
                    {"undecided", ColumnType::kInt},
                    {"latencies_ms", ColumnType::kSample}};
  }
  spec.run = [qos_view, columns = spec.columns](const ScenarioRun& run) {
    const auto points = run_class3_measurements(run.ctx, run.grid.axis("n").size_values(),
                                                run.grid.axis("timeout_ms").real_values());
    ResultTable table{qos_view ? "fig8" : "fig9a", columns};
    for (const auto& pt : points) {
      if (qos_view) {
        const bool quiet = pt.meas.pooled_qos.pairs_used == 0;
        table.add_row({int_of(pt.n), pt.timeout_ms, quiet ? Value{} : Value{pt.meas.t_mr_ms},
                       quiet ? Value{} : Value{pt.meas.t_m_ms},
                       int_of(pt.meas.pooled_qos.pairs_used), int_of(pt.meas.undecided)});
      } else {
        table.add_row({int_of(pt.n), pt.timeout_ms, pt.meas.latency_ms,
                       int_of(pt.meas.undecided), SampleRef{pt.meas.all_latencies_ms}});
      }
    }
    return table;
  };
  return spec;
}

ScenarioSpec fig9b_spec() {
  ScenarioSpec spec;
  spec.name = "fig9b";
  spec.description = "Latency vs timeout: measurements vs SAN sim (det/exp FD sojourns)";
  spec.notes =
      "Paper Fig 9b: the SAN model matches at large T (good QoS) and\n"
      "diverges when wrong suspicions are frequent, because the model\n"
      "assumes independent failure detectors.";
  spec.needs_calibration = true;
  spec.axes = [](const Scale& scale) {
    return std::vector<ParamAxis>{ParamAxis::sizes("n", scale.sim_ns),
                                  ParamAxis::reals("timeout_ms", scale.timeouts_ms)};
  };
  spec.columns = {{"n", ColumnType::kInt},          {"timeout_ms", ColumnType::kReal},
                  {"meas_ms", ColumnType::kReal},   {"sim_det_ms", ColumnType::kReal},
                  {"sim_exp_ms", ColumnType::kReal}, {"t_mr_ms", ColumnType::kReal},
                  {"t_m_ms", ColumnType::kReal}};
  spec.run = [columns = spec.columns](const ScenarioRun& run) {
    const auto points = run_class3_measurements(run.ctx, run.grid.axis("n").size_values(),
                                                run.grid.axis("timeout_ms").real_values());
    const auto rows = run_fig9b(run.ctx, points);
    ResultTable table{"fig9b", columns};
    for (const auto& row : rows) {
      table.add_row({int_of(row.n), row.timeout_ms, row.meas_ms, row.sim_det_ms, row.sim_exp_ms,
                     row.qos_t_mr_ms, row.qos_t_m_ms});
    }
    return table;
  };
  return spec;
}

// --- Ablations ---------------------------------------------------------------

ScenarioSpec ablation_broadcast_spec() {
  ScenarioSpec spec;
  spec.name = "ablation_broadcast";
  spec.description = "SAN ablation: broadcast-as-one-message vs unicast-sized frame";
  spec.notes =
      "The single-message broadcast (paper model) charges the medium for the\n"
      "whole fan-out at once; shrinking it to one unicast quantifies how much\n"
      "latency the simplification attributes to the proposal step. Neither\n"
      "variant reproduces the measured n=3 participant-crash anomaly -- that\n"
      "needs per-destination ordering, which only the emulator exhibits.";
  spec.needs_calibration = false;
  spec.axes = [](const Scale&) {
    return std::vector<ParamAxis>{ParamAxis::ints("n", {3, 5}),
                                  ParamAxis::strings("scenario", crash_scenarios())};
  };
  spec.columns = {{"n", ColumnType::kInt},
                  {"scenario", ColumnType::kString},
                  {"bcast_single_ms", ColumnType::kReal},
                  {"bcast_unicast_ms", ColumnType::kReal},
                  {"delta_pct", ColumnType::kReal}};
  spec.run = [columns = spec.columns](const ScenarioRun& run) {
    // Flattened (grid point x variant x replication) space; per-variant
    // offsets (11+n paper-like, 12+n unicast-frame) and the 400-replication
    // budget come from the original ablation harness, rebased on ctx.seed
    // so --seed yields independent replications.
    constexpr std::size_t kReps = 400;
    ConsensusStudyBank bank;
    std::vector<const san::TransientStudy*> studies;
    ShardSpace space;
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const std::size_t n = point.get_size("n");
      const int crashed = crashed_id(point.get_string("scenario"));
      for (const bool unicast_frame : {false, true}) {
        auto transport = sanmodels::TransportParams::nominal(n);
        if (unicast_frame) transport.frame_broadcast = transport.frame_unicast;
        sanmodels::ConsensusSanConfig cfg;
        cfg.n = n;
        cfg.transport = transport;
        cfg.initially_crashed = crashed;
        // The original harness ran these studies at the 60 s default limit.
        studies.push_back(bank.add(cfg, des::Duration::seconds(60)));
        space.add_group(kReps, run.ctx.seed + (unicast_frame ? 12 : 11) + n, "rep");
      }
    }
    const auto rewards = run.ctx.runner->run_flat(space, [&](const ShardSpace::Task& t) {
      return studies[t.group]->run_one(des::RandomEngine{t.seed});
    });

    ResultTable table{"ablation_broadcast", columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const double a = fold_study_rewards(rewards[2 * p]).summary.mean();
      const double b = fold_study_rewards(rewards[2 * p + 1]).summary.mean();
      table.add_row({point.get_int("n"), point.get_string("scenario"), a, b,
                     100.0 * (a - b) / a});
    }
    return table;
  };
  return spec;
}

ScenarioSpec ablation_fd_spec() {
  ScenarioSpec spec;
  spec.name = "ablation_fd_correlation";
  spec.description = "SAN ablation: independent-FD assumption with matched measured QoS";
  spec.notes =
      "Expected shape (paper Section 5.4): sim/meas near 1 at large T, a\n"
      "clear divergence at small T where wrong suspicions are frequent and\n"
      "correlated in reality but independent in the model.";
  spec.needs_calibration = true;
  spec.axes = [](const Scale& scale) {
    return std::vector<ParamAxis>{ParamAxis::sizes("n", scale.sim_ns),
                                  ParamAxis::reals("timeout_ms", {2, 5, 10, 20, 40})};
  };
  spec.columns = {{"n", ColumnType::kInt},          {"timeout_ms", ColumnType::kReal},
                  {"meas_ms", ColumnType::kReal},   {"sim_ms", ColumnType::kReal},
                  {"sim_over_meas", ColumnType::kReal}, {"t_mr_ms", ColumnType::kReal},
                  {"t_m_ms", ColumnType::kReal}};
  spec.run = [columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    const auto ns = run.grid.axis("n").size_values();
    const auto timeouts = run.grid.axis("timeout_ms").real_values();

    // Batch 1: the class-3 measurement campaign, one group per grid point.
    ShardSpace meas_space;
    struct Point {
      std::size_t n = 0;
      double timeout_ms = 0;
    };
    std::vector<Point> points;
    for (const std::size_t n : ns) {
      for (const double timeout : timeouts) {
        meas_space.add_group(ctx.scale.class3_runs,
                             ctx.seed + 31 * n + static_cast<std::uint64_t>(timeout), "run");
        points.push_back(Point{n, timeout});
      }
    }
    auto runs = ctx.runner->run_flat(meas_space, [&](const ShardSpace::Task& t) {
      const Point& pt = points[t.group];
      return measure_class3_run(pt.n, ctx.network, ctx.timers, pt.timeout_ms,
                                ctx.scale.class3_executions, t.seed);
    });
    std::vector<Class3Aggregate> aggs;
    aggs.reserve(points.size());
    for (auto& shard : runs) aggs.push_back(fold_class3_runs(std::move(shard)));

    // Batch 2: matched-QoS simulations; the branch (class 1 when the
    // detector made no mistakes, exponential-sojourn class 3 otherwise)
    // depends only on batch 1's fold.
    ConsensusStudyBank bank;
    std::vector<const san::TransientStudy*> studies;
    ShardSpace sim_space;
    for (std::size_t p = 0; p < points.size(); ++p) {
      const auto& qos = aggs[p].pooled_qos;
      sanmodels::ConsensusSanConfig cfg;
      cfg.n = points[p].n;
      cfg.transport = ctx.transport(points[p].n);
      if (qos.pairs_used == 0 || !(qos.t_m_ms > 0) || qos.t_m_ms >= qos.t_mr_ms) {
        sim_space.add_group(ctx.scale.sim_replications, ctx.seed + 51, "rep");
      } else {
        cfg.qos_fd =
            fd::AbstractFdParams::from_qos(qos, fd::AbstractFdParams::Sojourn::kExponential);
        sim_space.add_group(ctx.scale.sim_replications, ctx.seed + 52, "rep");
      }
      studies.push_back(bank.add(cfg));
    }
    const auto rewards = ctx.runner->run_flat(sim_space, [&](const ShardSpace::Task& t) {
      return studies[t.group]->run_one(des::RandomEngine{t.seed});
    });

    ResultTable table{"ablation_fd_correlation", columns};
    for (std::size_t p = 0; p < points.size(); ++p) {
      const double meas_mean = aggs[p].latency_ms.mean;
      const double sim_mean = fold_study_rewards(rewards[p]).summary.mean();
      const bool have_qos = aggs[p].pooled_qos.pairs_used > 0;
      table.add_row({int_of(points[p].n), points[p].timeout_ms, meas_mean, sim_mean,
                     meas_mean > 0 ? Value{sim_mean / meas_mean} : Value{0.0},
                     have_qos ? Value{aggs[p].pooled_qos.t_mr_ms} : Value{},
                     have_qos ? Value{aggs[p].pooled_qos.t_m_ms} : Value{}});
    }
    return table;
  };
  return spec;
}

// --- Extensions (the paper's declared future work) ---------------------------

ScenarioSpec ext_algorithms_spec() {
  ScenarioSpec spec;
  spec.name = "ext_algorithms";
  spec.description = "Chandra-Toueg vs Mostefaoui-Raynal latency, failure-free and crashed";
  spec.notes =
      "Failure-free, MR's two communication steps beat CT's three at every n.\n"
      "Under a coordinator crash the picture inverts and widens with n: MR\n"
      "burns a full all-to-all round on bottoms before recovering. Neither\n"
      "algorithm dominates -- the workload decides.";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    return std::vector<ParamAxis>{
        ParamAxis::sizes("n", scale.ns),
        ParamAxis::strings("scenario", {"no-crash", "coordinator-crash"})};
  };
  spec.columns = {{"n", ColumnType::kInt},      {"scenario", ColumnType::kString},
                  {"ct_ms", ColumnType::kMeanCI}, {"mr_ms", ColumnType::kMeanCI},
                  {"mr_over_ct", ColumnType::kReal}, {"winner", ColumnType::kString}};
  spec.run = [columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    const auto timers = net::TimerModel::ideal();
    // Two groups (CT, MR) per grid point, both on the (seed + 3n, "exec")
    // streams the comparative harness always used.
    ShardSpace space;
    std::vector<std::pair<Algorithm, std::size_t>> groups;  ///< algorithm, grid point
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const std::size_t n = run.grid.point(p).get_size("n");
      for (const Algorithm alg : {Algorithm::kChandraToueg, Algorithm::kMostefaouiRaynal}) {
        space.add_group(ctx.scale.class1_executions, ctx.seed + 3 * n, "exec");
        groups.emplace_back(alg, p);
      }
    }
    const auto outcomes = ctx.runner->run_flat(space, [&](const ShardSpace::Task& t) {
      const auto [alg, p] = groups[t.group];
      const auto point = run.grid.point(p);
      return run_latency_execution_with(alg, point.get_size("n"), ctx.network, timers,
                                        crashed_id(point.get_string("scenario")), t.index,
                                        t.seed);
    });

    ResultTable table{"ext_algorithms", columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const auto ct = fold_latency_outcomes(outcomes[2 * p]).summary();
      const auto mr = fold_latency_outcomes(outcomes[2 * p + 1]).summary();
      table.add_row({point.get_int("n"), point.get_string("scenario"), ct.mean_ci(),
                     mr.mean_ci(), mr.mean() / ct.mean(),
                     std::string{mr.mean() < ct.mean() ? "MR" : "CT"}});
    }
    return table;
  };
  return spec;
}

ScenarioSpec ext_throughput_spec() {
  ScenarioSpec spec;
  spec.name = "ext_throughput";
  spec.description = "Back-to-back consensus throughput vs the isolated-latency bound";
  spec.notes =
      "Back-to-back executions interfere -- the decision broadcast and\n"
      "round-2 estimates of execution k contend with execution k+1 on the\n"
      "hub -- so per-execution latency roughly doubles and throughput lands\n"
      "well below the isolated-latency bound.";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    return std::vector<ParamAxis>{ParamAxis::sizes("n", scale.ns)};
  };
  spec.columns = {{"n", ColumnType::kInt},
                  {"isolated_ms", ColumnType::kReal},
                  {"b2b_latency_ms", ColumnType::kMeanCI},
                  {"throughput_per_s", ColumnType::kReal},
                  {"bound_pct", ColumnType::kReal},
                  {"undecided", ColumnType::kInt}};
  spec.run = [columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    const auto timers = net::TimerModel::ideal();
    const auto ns = run.grid.axis("n").size_values();
    // Per n: a flat group of isolated executions plus a single-task group
    // holding the (inherently sequential) back-to-back stream.
    struct Cell {
      ExecOutcome exec;
      std::optional<WorkloadResult> stream;
    };
    ShardSpace space;
    for (const std::size_t n : ns) {
      space.add_group(ctx.scale.class1_executions / 2, ctx.seed + 5 * n, "exec");
      // The b2b task seeds its cluster directly with ctx.seed + n below;
      // declaring the same value here keeps the space self-describing.
      space.add_group(1, ctx.seed + n, "b2b");
    }
    const auto cells = ctx.runner->run_flat(space, [&](const ShardSpace::Task& t) {
      const std::size_t n = ns[t.group / 2];
      Cell cell;
      if (t.group % 2 == 0) {
        cell.exec = run_latency_execution(n, ctx.network, timers, -1, t.index, t.seed);
      } else {
        // The back-to-back extension as its true shape: the degenerate
        // closed-loop workload (one client, zero think time, no warm-up --
        // the historic harness measured from the first execution). One
        // persistent cluster, seeded directly as the bespoke harness was.
        WorkloadConfig cfg;
        cfg.n = n;
        cfg.network = ctx.network;
        cfg.timers = timers;
        cfg.seed = ctx.seed + n;
        WorkloadSpec stream;
        stream.arrivals = ArrivalProcess::kClosedLoop;
        stream.clients = 1;
        stream.think_ms = 0;
        stream.warmup = 0;
        stream.measured = ctx.scale.class1_executions;
        cell.stream = run_workload(cfg, stream);
      }
      return cell;
    });

    ResultTable table{"ext_throughput", columns};
    for (std::size_t g = 0; g < ns.size(); ++g) {
      std::vector<ExecOutcome> outcomes;
      for (const Cell& c : cells[2 * g]) outcomes.push_back(c.exec);
      const double iso = fold_latency_outcomes(outcomes).summary().mean();
      const WorkloadStats& tput = cells[2 * g + 1][0].stream->stats;
      const double bound = iso > 0 ? 1000.0 / iso : 0;
      table.add_row({int_of(ns[g]), iso, tput.latency_ci, tput.delivered_per_s,
                     bound > 0 ? Value{100.0 * tput.delivered_per_s / bound} : Value{},
                     int_of(tput.undecided)});
    }
    return table;
  };
  return spec;
}

ScenarioSpec ext_detection_spec() {
  ScenarioSpec spec;
  spec.name = "ext_detection_time";
  spec.description = "Chen et al. detection time T_D of the heartbeat failure detector";
  spec.notes =
      "Detection takes roughly one timeout after the last heartbeat\n"
      "(T_D <~ Th + T), stretched by the 10 ms timer quantisation at small T\n"
      "and by scheduler stalls in the tail.";
  spec.needs_calibration = false;
  spec.axes = [](const Scale&) {
    return std::vector<ParamAxis>{ParamAxis::ints("n", {5}),
                                  ParamAxis::reals("timeout_ms", {10, 20, 40, 100})};
  };
  spec.columns = {{"n", ColumnType::kInt},       {"timeout_ms", ColumnType::kReal},
                  {"heartbeat_ms", ColumnType::kReal}, {"mean_ms", ColumnType::kReal},
                  {"p95_ms", ColumnType::kReal}, {"bound_ms", ColumnType::kReal},
                  {"samples", ColumnType::kInt}};
  spec.run = [columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    const std::size_t trials = ctx.scale.class3_runs * 10;
    ShardSpace space;
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      space.add_group(trials, ctx.seed + 77, "trial");
    }
    const auto trial_samples = ctx.runner->run_flat(space, [&](const ShardSpace::Task& t) {
      const auto point = run.grid.point(t.group);
      return detection_time_trial(point.get_size("n"), ctx.network, ctx.timers,
                                  point.get_real("timeout_ms"), t.seed);
    });

    ResultTable table{"ext_detection_time", columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const double timeout = point.get_real("timeout_ms");
      std::vector<double> samples;
      stats::SummaryStats summary;
      for (const auto& shard : trial_samples[p]) {
        for (const double x : shard) {
          samples.push_back(x);
          summary.add(x);
        }
      }
      const bool empty = samples.empty();
      table.add_row({point.get_int("n"), timeout, 0.7 * timeout,
                     empty ? Value{} : Value{summary.mean()},
                     empty ? Value{} : Value{stats::Ecdf{samples}.quantile(0.95)},
                     0.7 * timeout + timeout, int_of(samples.size())});
    }
    return table;
  };
  return spec;
}

// --- Fault-injection scenarios (src/faults) ----------------------------------

/// The recovery scenarios fix the FD timeout at the paper's 10 ms operating
/// point and strike 30% into the run, where the sequencer is in steady
/// state.
constexpr double kFaultTimeoutMs = 10.0;

double fault_strike_ms(const Scale& scale) {
  return 0.3 * static_cast<double>(scale.class3_executions) * 10.0;  // 10 ms separation
}

/// The window the before/during/after fold buckets against: the first
/// windowed event of the plan (an override plan may be shaped differently
/// from the axis-derived one; an event-free plan makes everything
/// "before").
std::pair<double, double> fold_window(const faults::FaultPlan& plan) {
  for (const auto& event : plan.events()) {
    if (event.kind == faults::FaultKind::kCrash ||
        event.kind == faults::FaultKind::kPartition ||
        event.kind == faults::FaultKind::kKillRack ||
        event.kind == faults::FaultKind::kPartitionSwitch) {
      return {event.at_ms, event.end_ms()};
    }
  }
  return {faults::kForeverMs, faults::kForeverMs};
}

Value phase_ci(const MeasuredLatency& phase) {
  if (phase.latencies_ms.empty()) return Value{};
  return Value{phase.summary().mean_ci(0.90)};
}

/// crash_recovery_latency and partition_heal share one body: a class-3
/// campaign (live heartbeat FD, sequenced executions) whose plan either
/// crashes-and-recovers host 0 or splits {0} off and heals, folded into
/// before / during / after latency per grid point.
ScenarioSpec phased_fault_spec(bool partition_view) {
  ScenarioSpec spec;
  spec.name = partition_view ? "partition_heal" : "crash_recovery_latency";
  spec.description =
      partition_view
          ? "Consensus latency across a network partition of {0} that heals"
          : "Consensus latency across a crash + warm restart of host 0";
  spec.notes =
      partition_view
          ? "Host 0 coordinates round 1 of every instance, so isolating it\n"
            "forces a suspicion (~Th + T + tick) and a round-2 decision for\n"
            "every execution the window covers; latency returns to baseline\n"
            "once heartbeats flow again after the heal."
          : "While host 0 is down its executions decide in round 2 after the\n"
            "detection delay; the warm restart resets the TCP dead-peer state\n"
            "and restarts the heartbeat loop, so the after-phase matches the\n"
            "before-phase baseline.";
  spec.needs_calibration = false;
  const char* axis = partition_view ? "partition_ms" : "downtime_ms";
  spec.axes = [axis](const Scale& scale) {
    return std::vector<ParamAxis>{ParamAxis::sizes("n", scale.sim_ns),
                                  ParamAxis::reals(axis, {20, 60, 150})};
  };
  spec.columns = {{"n", ColumnType::kInt},         {axis, ColumnType::kReal},
                  {"before_ms", ColumnType::kMeanCI}, {"during_ms", ColumnType::kMeanCI},
                  {"after_ms", ColumnType::kMeanCI},  {"during_execs", ColumnType::kInt},
                  {"undecided", ColumnType::kInt}};
  spec.run = [axis, partition_view, name = spec.name,
              columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    const double strike_ms = fault_strike_ms(ctx.scale);

    // One plan per grid point (an explicit --fault-plan replaces them all).
    std::vector<faults::FaultPlan> plans;
    ShardSpace space;
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const std::size_t n = point.get_size("n");
      const double window_ms = point.get_real(axis);
      if (run.fault_plan != nullptr) {
        plans.push_back(*run.fault_plan);
      } else if (partition_view) {
        plans.push_back(faults::FaultPlan{}.add(
            faults::FaultPlan::partition({0}, strike_ms, window_ms)));
      } else {
        plans.push_back(faults::FaultPlan{}.add(
            faults::FaultPlan::crash_recover(0, strike_ms, window_ms)));
      }
      // Scenario-name label + value-encoded point: distinct streams across
      // the two phased scenarios and across grid points (restriction-
      // stable; --set values resolve at 0.001 ms).
      space.add_group(ctx.scale.class3_runs,
                      des::derive_seed(ctx.seed, name,
                                       1'000'000 * n +
                                           static_cast<std::uint64_t>(
                                               std::llround(1000.0 * window_ms))),
                      "run");
    }
    const auto runs = ctx.runner->run_flat(space, [&](const ShardSpace::Task& t) {
      const std::size_t n = run.grid.point(t.group).get_size("n");
      return faults::run_fault_class3(n, ctx.network, ctx.timers, kFaultTimeoutMs,
                                      ctx.scale.class3_executions, plans[t.group], t.seed);
    });

    ResultTable table{name, columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const auto [start_ms, end_ms] = fold_window(plans[p]);
      faults::PhasedLatency phases;
      for (const auto& one : runs[p]) {  // run order: the sequential fold
        phases.merge(faults::split_by_window(one.executions, start_ms, end_ms));
      }
      const std::size_t undecided =
          phases.before.undecided + phases.during.undecided + phases.after.undecided;
      table.add_row({point.get_int("n"), point.get_real(axis), phase_ci(phases.before),
                     phase_ci(phases.during), phase_ci(phases.after),
                     int_of(phases.during.latencies_ms.size() + phases.during.undecided),
                     int_of(undecided)});
    }
    return table;
  };
  return spec;
}

ScenarioSpec crash_recovery_spec() { return phased_fault_spec(/*partition_view=*/false); }
ScenarioSpec partition_heal_spec() { return phased_fault_spec(/*partition_view=*/true); }

ScenarioSpec lossy_consensus_spec() {
  ScenarioSpec spec;
  spec.name = "lossy_consensus";
  spec.description = "CT vs MR latency and decision rate under probabilistic frame loss";
  spec.notes =
      "Loss hits CT's single proposal path harder than MR's all-to-all AUX\n"
      "round: with static (never-suspecting) detectors a lost proposal can\n"
      "strand a participant, while MR tolerates losses up to the majority.\n"
      "At loss_pct = 0 both columns reproduce the loss-free baselines.";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    return std::vector<ParamAxis>{ParamAxis::sizes("n", scale.sim_ns),
                                  ParamAxis::reals("loss_pct", {0, 1, 2, 5, 10}),
                                  ParamAxis::strings("algorithm", {"ct", "mr"})};
  };
  spec.columns = {{"n", ColumnType::kInt},           {"loss_pct", ColumnType::kReal},
                  {"algorithm", ColumnType::kString}, {"latency_ms", ColumnType::kMeanCI},
                  {"decided_pct", ColumnType::kReal}, {"undecided", ColumnType::kInt}};
  spec.run = [columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    const auto timers = net::TimerModel::ideal();

    std::vector<faults::FaultPlan> plans;
    ShardSpace space;
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const std::size_t n = point.get_size("n");
      const double pct = point.get_real("loss_pct");
      faults::FaultPlan plan;
      if (run.fault_plan != nullptr) {
        plan = *run.fault_plan;
      } else if (pct > 0) {
        plan.add(faults::FaultPlan::loss(0, faults::kForeverMs, pct / 100.0));
      }
      plans.push_back(std::move(plan));
      space.add_group(ctx.scale.class1_executions,
                      des::derive_seed(
                          ctx.seed, "lossy_consensus",
                          1'000'000 * n +
                              2 * static_cast<std::uint64_t>(std::llround(1000.0 * pct)) +
                              (point.get_string("algorithm") == "mr" ? 1 : 0)),
                      "exec");
    }
    const auto outcomes = ctx.runner->run_flat(space, [&](const ShardSpace::Task& t) {
      const auto point = run.grid.point(t.group);
      return faults::run_fault_execution(algorithm_of(point.get_string("algorithm")),
                                         point.get_size("n"), ctx.network, timers,
                                         plans[t.group], t.index, t.seed);
    });

    ResultTable table{"lossy_consensus", columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const auto meas = fold_latency_outcomes(outcomes[p]);
      const std::size_t total = meas.latencies_ms.size() + meas.undecided;
      table.add_row({point.get_int("n"), point.get_real("loss_pct"),
                     point.get_string("algorithm"), phase_ci(meas),
                     total > 0 ? Value{100.0 * static_cast<double>(meas.latencies_ms.size()) /
                                       static_cast<double>(total)}
                               : Value{},
                     int_of(meas.undecided)});
    }
    return table;
  };
  return spec;
}

ScenarioSpec slowdown_sweep_spec() {
  ScenarioSpec spec;
  spec.name = "slowdown_sweep";
  spec.description = "Latency vs CPU (straggler host 0) and pipeline slowdown factors";
  spec.notes =
      "A slow coordinator CPU serialises the proposal fan-out, so latency\n"
      "grows superlinearly in the factor at larger n; a slowed pipeline\n"
      "stretches every frame's stack traversal uniformly and shifts the\n"
      "whole distribution instead. Runs on the ablation network that splits\n"
      "the bimodal medium service evenly between the exclusive wire and the\n"
      "non-exclusive pipeline (the default attributes everything to the\n"
      "wire, leaving the pipeline stage empty).";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    return std::vector<ParamAxis>{ParamAxis::sizes("n", scale.sim_ns),
                                  ParamAxis::strings("resource", {"cpu", "pipeline"}),
                                  ParamAxis::reals("factor", {1, 2, 4, 8})};
  };
  spec.columns = {{"n", ColumnType::kInt},          {"resource", ColumnType::kString},
                  {"factor", ColumnType::kReal},    {"latency_ms", ColumnType::kMeanCI},
                  {"vs_nominal", ColumnType::kReal}, {"undecided", ColumnType::kInt}};
  spec.run = [columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    const auto timers = net::TimerModel::ideal();

    // The ablation split: half the calibrated medium service moves into the
    // non-exclusive pipeline stage, keeping the idle end-to-end delay while
    // giving the pipeline-slowdown axis something to act on.
    net::NetworkParams network = ctx.network;
    const auto halve = [](const stats::BimodalUniform& d) {
      return stats::BimodalUniform{d.p1, d.a1 / 2, d.b1 / 2, d.a2 / 2, d.b2 / 2};
    };
    network.wire_service = halve(ctx.network.wire_service);
    network.pipeline_latency = network.wire_service;

    std::vector<faults::FaultPlan> plans;
    ShardSpace space;
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const std::size_t n = point.get_size("n");
      const double factor = point.get_real("factor");
      const bool pipeline = point.get_string("resource") == "pipeline";
      faults::FaultPlan plan;
      if (run.fault_plan != nullptr) {
        plan = *run.fault_plan;
      } else if (factor != 1.0) {
        plan.add(pipeline
                     ? faults::FaultPlan::pipeline_slow(0, faults::kForeverMs, factor)
                     : faults::FaultPlan::cpu_slow(0, 0, faults::kForeverMs, factor));
      }
      plans.push_back(std::move(plan));
      space.add_group(ctx.scale.class1_executions,
                      des::derive_seed(
                          ctx.seed, "slowdown_sweep",
                          1'000'000 * n +
                              2 * static_cast<std::uint64_t>(std::llround(1000.0 * factor)) +
                              (pipeline ? 1 : 0)),
                      "exec");
    }
    const auto outcomes = ctx.runner->run_flat(space, [&](const ShardSpace::Task& t) {
      return faults::run_fault_execution(Algorithm::kChandraToueg,
                                         run.grid.point(t.group).get_size("n"), network,
                                         timers, plans[t.group], t.index, t.seed);
    });

    ResultTable table{"slowdown_sweep", columns};
    std::vector<MeasuredLatency> folded;
    folded.reserve(run.grid.size());
    for (const auto& group : outcomes) folded.push_back(fold_latency_outcomes(group));
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      // Nominal baseline: the factor = 1 row of the same (n, resource), if
      // the restriction kept it in the grid.
      Value vs_nominal{};
      for (std::size_t q = 0; q < run.grid.size(); ++q) {
        const auto other = run.grid.point(q);
        if (other.get_real("factor") == 1.0 && other.get_int("n") == point.get_int("n") &&
            other.get_string("resource") == point.get_string("resource") &&
            !folded[q].latencies_ms.empty() && !folded[p].latencies_ms.empty()) {
          vs_nominal = Value{folded[p].summary().mean() / folded[q].summary().mean()};
        }
      }
      table.add_row({point.get_int("n"), point.get_string("resource"), point.get_real("factor"),
                     phase_ci(folded[p]), std::move(vs_nominal), int_of(folded[p].undecided)});
    }
    return table;
  };
  return spec;
}

// --- Workload-engine scenarios (core/workload.hpp) ---------------------------

/// Restriction-stable per-grid-point seed for a workload stream: derived
/// from the point's value-encoded label, so a --set-restricted grid
/// reproduces the matching subset of the full grid bit for bit.
std::uint64_t workload_point_seed(std::uint64_t seed, const std::string& scenario,
                                  const ParamPoint& point) {
  return des::derive_seed(seed, scenario + "|" + point.label());
}

/// The workload-size axes every stream scenario carries: single-valued by
/// default (the Scale presets), overridable -- and sweepable -- with
/// --set warmup=... / --set instances=...
std::vector<ParamAxis> workload_size_axes(const Scale& scale) {
  return {ParamAxis::sizes("warmup", {scale.workload_warmup}),
          ParamAxis::sizes("instances", {scale.workload_instances})};
}

Value latency_ci_cell(const WorkloadStats& stats) {
  if (stats.decided == 0) return Value{};
  return Value{stats.latency_ci};
}

Value value_latency_ci_cell(const ValueStats& stats) {
  if (stats.decided == 0) return Value{};
  return Value{stats.latency_ci};
}

ThinkTimeDist think_dist_of(const std::string& name) {
  if (name == "fixed") return ThinkTimeDist::kFixed;
  if (name == "exp") return ThinkTimeDist::kExp;
  throw std::invalid_argument{"unknown think_dist: " + name + " (fixed|exp)"};
}

/// The batching/pipelining axes every workload scenario exposes:
/// single-valued defaults reproduce the unbatched engine, --set sweeps
/// them (e.g. --set batch_size=1,8,32).
std::vector<ParamAxis> batching_axes(std::size_t batch_size, double linger_ms,
                                     std::size_t pipeline_window) {
  return {ParamAxis::sizes("batch_size", {batch_size}),
          ParamAxis::reals("batch_linger_ms", {linger_ms}),
          ParamAxis::sizes("pipeline_window", {pipeline_window})};
}

void apply_batching(WorkloadSpec& stream, const ParamPoint& point) {
  stream.batch_size = point.get_size("batch_size");
  stream.batch_linger_ms = point.get_real("batch_linger_ms");
  stream.pipeline_window = point.get_size("pipeline_window");
}

ScenarioSpec load_latency_sweep_spec() {
  ScenarioSpec spec;
  spec.name = "load_latency_sweep";
  spec.description = "Steady-state latency vs offered load (open-loop Poisson), CT vs MR";
  spec.notes =
      "The Fig 8 blow-up shape with utilisation in place of the FD timeout:\n"
      "latency sits at the isolated baseline at low load, climbs through\n"
      "queueing as the offered load approaches the hub's service capacity,\n"
      "and blows up past the knee (delivered_per_s saturates below\n"
      "offered_per_s there). MR saturates earlier at equal n: Theta(n^2)\n"
      "AUX frames per instance fill the medium sooner than CT's Theta(n).";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    std::vector<ParamAxis> axes{
        ParamAxis::sizes("n", scale.sim_ns),
        ParamAxis::strings("algorithm", {"ct", "mr"}),
        ParamAxis::reals("offered_per_s", scale.offered_loads_per_s)};
    for (auto& axis : batching_axes(1, 0.0, 0)) axes.push_back(std::move(axis));
    for (auto& axis : workload_size_axes(scale)) axes.push_back(std::move(axis));
    return axes;
  };
  spec.columns = {{"n", ColumnType::kInt},
                  {"algorithm", ColumnType::kString},
                  {"offered_per_s", ColumnType::kReal},
                  {"batch_size", ColumnType::kInt},
                  {"pipeline_window", ColumnType::kInt},
                  {"delivered_per_s", ColumnType::kReal},
                  {"values_per_s", ColumnType::kReal},
                  {"latency_ms", ColumnType::kMeanCI},
                  {"p95_ms", ColumnType::kReal},
                  {"value_p95_ms", ColumnType::kReal},
                  {"peak_inflight", ColumnType::kInt},
                  {"undecided", ColumnType::kInt}};
  spec.run = [name = spec.name, columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    const auto timers = net::TimerModel::ideal();
    // One persistent-cluster stream per grid point; points fan out over the
    // runner (each stream is one sequential DES run, pure in its seed).
    const auto results = ctx.runner->map(run.grid.size(), [&](std::size_t p) {
      const auto point = run.grid.point(p);
      WorkloadConfig cfg;
      cfg.n = point.get_size("n");
      cfg.network = ctx.network;
      cfg.timers = timers;
      cfg.algorithm = algorithm_of(point.get_string("algorithm"));
      cfg.seed = workload_point_seed(ctx.seed, name, point);
      WorkloadSpec stream;
      stream.arrivals = ArrivalProcess::kOpenLoop;
      stream.offered_per_s = point.get_real("offered_per_s");
      stream.warmup = point.get_size("warmup");
      stream.measured = point.get_size("instances");
      apply_batching(stream, point);
      return run_workload(cfg, stream);
    });
    ResultTable table{name, columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const WorkloadStats& stats = results[p].stats;
      const ValueStats& vstats = results[p].value_stats;
      table.add_row({point.get_int("n"), point.get_string("algorithm"),
                     point.get_real("offered_per_s"), point.get_int("batch_size"),
                     point.get_int("pipeline_window"), stats.delivered_per_s,
                     vstats.delivered_per_s, latency_ci_cell(stats),
                     stats.decided > 0 ? Value{stats.p95_latency_ms} : Value{},
                     vstats.decided > 0 ? Value{vstats.p95_latency_ms} : Value{},
                     int_of(results[p].peak_active_instances), int_of(stats.undecided)});
    }
    return table;
  };
  return spec;
}

ScenarioSpec batch_throughput_sweep_spec() {
  ScenarioSpec spec;
  spec.name = "batch_throughput_sweep";
  spec.description =
      "Delivered value throughput and per-value latency vs batch size at a fixed offered rate";
  spec.notes =
      "The amortisation curve behind ROADMAP item 2: the offered *value*\n"
      "rate sits far past the unbatched instance-rate knee (~376 inst/s at\n"
      "n = 5), so batch_size = 1 saturates -- queueing delay blows up and\n"
      "the stream falls behind -- while larger batches divide the instance\n"
      "rate by the batch size and deliver the full offered rate at a\n"
      "bounded p95. The max-linger deadline caps how long a value can wait\n"
      "for its batch to fill (at low rates it, not the size threshold,\n"
      "closes batches). queue_ms + consensus latency = end-to-end, per\n"
      "value.";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    std::vector<ParamAxis> axes{
        ParamAxis::sizes("n", {5}),
        ParamAxis::strings("algorithm", {"ct"}),
        ParamAxis::sizes("batch_size", scale.batch_sizes),
        ParamAxis::reals("batch_linger_ms", {scale.batch_linger_ms}),
        ParamAxis::sizes("pipeline_window", {0}),
        ParamAxis::reals("offered_values_per_s", {scale.batch_offered_values_per_s})};
    for (auto& axis : workload_size_axes(scale)) axes.push_back(std::move(axis));
    return axes;
  };
  spec.columns = {{"n", ColumnType::kInt},
                  {"algorithm", ColumnType::kString},
                  {"batch_size", ColumnType::kInt},
                  {"batch_linger_ms", ColumnType::kReal},
                  {"pipeline_window", ColumnType::kInt},
                  {"offered_values_per_s", ColumnType::kReal},
                  {"instances_per_s", ColumnType::kReal},
                  {"values_per_s", ColumnType::kReal},
                  {"value_latency_ms", ColumnType::kMeanCI},
                  {"value_p95_ms", ColumnType::kReal},
                  {"queue_ms", ColumnType::kReal},
                  {"mean_batch", ColumnType::kReal},
                  {"undecided_values", ColumnType::kInt}};
  spec.run = [name = spec.name, columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    const auto timers = net::TimerModel::ideal();
    const auto results = ctx.runner->map(run.grid.size(), [&](std::size_t p) {
      const auto point = run.grid.point(p);
      WorkloadConfig cfg;
      cfg.n = point.get_size("n");
      cfg.network = ctx.network;
      cfg.timers = timers;
      cfg.algorithm = algorithm_of(point.get_string("algorithm"));
      cfg.seed = workload_point_seed(ctx.seed, name, point);
      WorkloadSpec stream;
      stream.arrivals = ArrivalProcess::kOpenLoop;
      stream.offered_per_s = point.get_real("offered_values_per_s");
      stream.warmup = point.get_size("warmup");
      stream.measured = point.get_size("instances");
      apply_batching(stream, point);
      return run_workload(cfg, stream);
    });
    ResultTable table{name, columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const ValueStats& vstats = results[p].value_stats;
      table.add_row({point.get_int("n"), point.get_string("algorithm"),
                     point.get_int("batch_size"), point.get_real("batch_linger_ms"),
                     point.get_int("pipeline_window"), point.get_real("offered_values_per_s"),
                     results[p].stats.delivered_per_s, vstats.delivered_per_s,
                     value_latency_ci_cell(vstats),
                     vstats.decided > 0 ? Value{vstats.p95_latency_ms} : Value{},
                     vstats.decided > 0 ? Value{vstats.mean_queue_ms} : Value{},
                     results[p].mean_batch_size, int_of(vstats.undecided)});
    }
    return table;
  };
  return spec;
}

ScenarioSpec closed_loop_clients_spec() {
  ScenarioSpec spec;
  spec.name = "closed_loop_clients";
  spec.description = "Closed-loop client sweep: delivered throughput and latency vs clients";
  spec.notes =
      "One client reproduces the back-to-back extension and is already\n"
      "near the hub's capacity (zero think time). Adding clients therefore\n"
      "buys no throughput -- interleaved instances pay more per-frame\n"
      "contention, so delivered_per_s falls below the 1-client rate\n"
      "(vs_one_client < 1) while per-instance latency grows roughly\n"
      "linearly in the client count: the closed-loop saturation plateau,\n"
      "approached from below.";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    std::vector<ParamAxis> axes{ParamAxis::sizes("n", scale.sim_ns),
                                ParamAxis::sizes("clients", scale.client_counts),
                                ParamAxis::reals("think_ms", {0}),
                                ParamAxis::strings("think_dist", {"fixed"})};
    for (auto& axis : workload_size_axes(scale)) axes.push_back(std::move(axis));
    return axes;
  };
  spec.columns = {{"n", ColumnType::kInt},
                  {"clients", ColumnType::kInt},
                  {"think_ms", ColumnType::kReal},
                  {"think_dist", ColumnType::kString},
                  {"delivered_per_s", ColumnType::kReal},
                  {"vs_one_client", ColumnType::kReal},
                  {"latency_ms", ColumnType::kMeanCI},
                  {"p95_ms", ColumnType::kReal},
                  {"undecided", ColumnType::kInt}};
  spec.run = [name = spec.name, columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    const auto timers = net::TimerModel::ideal();
    const auto results = ctx.runner->map(run.grid.size(), [&](std::size_t p) {
      const auto point = run.grid.point(p);
      WorkloadConfig cfg;
      cfg.n = point.get_size("n");
      cfg.network = ctx.network;
      cfg.timers = timers;
      cfg.seed = workload_point_seed(ctx.seed, name, point);
      WorkloadSpec stream;
      stream.arrivals = ArrivalProcess::kClosedLoop;
      stream.clients = point.get_size("clients");
      stream.think_ms = point.get_real("think_ms");
      stream.think_dist = think_dist_of(point.get_string("think_dist"));
      stream.warmup = point.get_size("warmup");
      stream.measured = point.get_size("instances");
      return run_workload(cfg, stream);
    });
    ResultTable table{name, columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const WorkloadStats& stats = results[p].stats;
      // Scaling baseline: the clients = 1 row agreeing with this one on
      // every other axis (n, think_ms, warmup, instances -- stream-length
      // sweeps must not mix baselines), if the restriction kept it.
      Value vs_one{};
      for (std::size_t q = 0; q < run.grid.size(); ++q) {
        const auto other = run.grid.point(q);
        if (other.get_int("clients") == 1 && other.get_int("n") == point.get_int("n") &&
            other.get_real("think_ms") == point.get_real("think_ms") &&
            other.get_string("think_dist") == point.get_string("think_dist") &&
            other.get_size("warmup") == point.get_size("warmup") &&
            other.get_size("instances") == point.get_size("instances") &&
            results[q].stats.delivered_per_s > 0) {
          // emplace<> rather than variant assignment: gcc-12 under ASan flags
          // the move-assign visitor's string alternative as maybe-uninitialized.
          vs_one.emplace<double>(stats.delivered_per_s / results[q].stats.delivered_per_s);
        }
      }
      table.add_row({point.get_int("n"), point.get_int("clients"), point.get_real("think_ms"),
                     point.get_string("think_dist"),
                     stats.delivered_per_s, std::move(vs_one), latency_ci_cell(stats),
                     stats.decided > 0 ? Value{stats.p95_latency_ms} : Value{},
                     int_of(stats.undecided)});
    }
    return table;
  };
  return spec;
}

ScenarioSpec crash_under_load_spec() {
  ScenarioSpec spec;
  spec.name = "crash_under_load";
  spec.description = "Open-loop stream with a crash + warm restart of host 0 mid-stream";
  spec.notes =
      "Host 0 coordinates round 1 of every instance, so its downtime shows\n"
      "as a latency transient: the instances in flight at the crash pay the\n"
      "full detection delay (~Th + T + tick), later during-window instances\n"
      "only the round-2 detour, and the stream returns to the before-phase\n"
      "baseline once the warm restart re-earns trust. Unlike the isolated\n"
      "crash_recovery_latency runs, arrivals keep coming during the outage,\n"
      "so the backlog drains through contention after recovery.";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    std::vector<ParamAxis> axes{ParamAxis::sizes("n", scale.sim_ns),
                                ParamAxis::reals("downtime_ms", {20, 60, 150}),
                                ParamAxis::reals("offered_per_s", {200})};
    for (auto& axis : workload_size_axes(scale)) axes.push_back(std::move(axis));
    return axes;
  };
  spec.columns = {{"n", ColumnType::kInt},
                  {"downtime_ms", ColumnType::kReal},
                  {"offered_per_s", ColumnType::kReal},
                  {"before_ms", ColumnType::kMeanCI},
                  {"during_ms", ColumnType::kMeanCI},
                  {"after_ms", ColumnType::kMeanCI},
                  {"during_execs", ColumnType::kInt},
                  {"undecided", ColumnType::kInt}};
  spec.run = [name = spec.name, columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    // Plans stay alive across the fan-out; one per grid point (an explicit
    // --fault-plan replaces them all).
    std::vector<faults::FaultPlan> plans;
    std::vector<WorkloadSpec> streams;
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      WorkloadSpec stream;
      stream.arrivals = ArrivalProcess::kOpenLoop;
      stream.offered_per_s = point.get_real("offered_per_s");
      stream.warmup = point.get_size("warmup");
      stream.measured = point.get_size("instances");
      // Strike 40% into the measured window, where the stream is past its
      // warm-up and still leaves room for the after-phase baseline.
      const double strike_ms =
          stream.start_ms + 1000.0 *
                                (static_cast<double>(stream.warmup) +
                                 0.4 * static_cast<double>(stream.measured)) /
                                stream.offered_per_s;
      if (run.fault_plan != nullptr) {
        plans.push_back(*run.fault_plan);
      } else {
        plans.push_back(faults::FaultPlan{}.add(
            faults::FaultPlan::crash_recover(0, strike_ms, point.get_real("downtime_ms"))));
      }
      streams.push_back(stream);
    }
    const auto results = ctx.runner->map(run.grid.size(), [&](std::size_t p) {
      const auto point = run.grid.point(p);
      WorkloadConfig cfg;
      cfg.n = point.get_size("n");
      cfg.network = ctx.network;
      cfg.timers = ctx.timers;
      cfg.heartbeat_timeout_ms = kFaultTimeoutMs;
      cfg.fault_plan = &plans[p];
      cfg.seed = workload_point_seed(ctx.seed, name, point);
      return run_workload(cfg, streams[p]);
    });
    ResultTable table{name, columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const auto [start_ms, end_ms] = fold_window(plans[p]);
      const PhasedWorkload phases = split_workload_by_window(results[p], start_ms, end_ms);
      const std::size_t undecided =
          phases.before.undecided + phases.during.undecided + phases.after.undecided;
      table.add_row({point.get_int("n"), point.get_real("downtime_ms"),
                     point.get_real("offered_per_s"), phase_ci(phases.before),
                     phase_ci(phases.during), phase_ci(phases.after),
                     int_of(phases.during.latencies_ms.size() + phases.during.undecided),
                     int_of(undecided)});
    }
    return table;
  };
  return spec;
}

// --- Durable recovery & membership scenarios ---------------------------------

Value phase_p95(const MeasuredLatency& phase) {
  if (phase.latencies_ms.empty()) return Value{};
  return Value{stats::Ecdf{phase.latencies_ms}.quantile(0.95)};
}

/// Mode-blind stream seed: the volatile and durable rows of the recovery
/// scenarios must run the *same* arrival/skew stream, so their columns
/// differ only by what the log rescues. Restriction-stable like
/// workload_point_seed (depends only on the named axis values).
std::uint64_t mode_blind_seed(std::uint64_t seed, const std::string& scenario,
                              const ParamPoint& point) {
  const std::string label =
      scenario + "|n=" + std::to_string(point.get_int("n")) +
      "|offered=" + std::to_string(point.get_real("offered_per_s")) +
      "|warmup=" + std::to_string(point.get_size("warmup")) +
      "|instances=" + std::to_string(point.get_size("instances"));
  return des::derive_seed(seed, label);
}

ScenarioSpec recovery_under_load_spec() {
  ScenarioSpec spec;
  spec.name = "recovery_under_load";
  spec.description =
      "Pinned-coordinator crash under load: volatile vs durable-log recovery";
  spec.notes =
      "The failure detector is static (host 0 is never suspected), so the\n"
      "instances in flight at the crash have no round-2 escape. The stream\n"
      "runs saturated behind a 16-instance pipeline window, so the window\n"
      "is full when the crash lands: every stalled instance is in host 0's\n"
      "write-ahead log, and arrivals queue behind the window instead of\n"
      "launching into the outage. Volatile, the stalled window blocks the\n"
      "whole stream until the give-up deadline and closes undecided;\n"
      "durable, the restarted host replays its records, rejoins exactly\n"
      "those instances and the stream resumes at recovery -- the undecided\n"
      "/ replayed columns and the end-to-end value p95 are the\n"
      "availability envelope the log buys, priced at append_ms per record.";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    std::vector<ParamAxis> axes{ParamAxis::sizes("n", scale.sim_ns),
                                ParamAxis::strings("mode", {"volatile", "durable"}),
                                ParamAxis::reals("append_ms", {0.1}),
                                ParamAxis::reals("downtime_ms", {60}),
                                ParamAxis::reals("offered_per_s", {2000})};
    for (auto& axis : workload_size_axes(scale)) axes.push_back(std::move(axis));
    return axes;
  };
  spec.columns = {{"n", ColumnType::kInt},
                  {"mode", ColumnType::kString},
                  {"offered_per_s", ColumnType::kReal},
                  {"before_ms", ColumnType::kMeanCI},
                  {"during_ms", ColumnType::kMeanCI},
                  {"after_ms", ColumnType::kMeanCI},
                  {"value_p95_ms", ColumnType::kReal},
                  {"delivered_per_s", ColumnType::kReal},
                  {"undecided", ColumnType::kInt},
                  {"replayed", ColumnType::kInt},
                  {"log_appends", ColumnType::kInt}};
  spec.run = [name = spec.name, columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    std::vector<faults::FaultPlan> plans;
    std::vector<WorkloadSpec> streams;
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      WorkloadSpec stream;
      stream.arrivals = ArrivalProcess::kOpenLoop;
      stream.offered_per_s = point.get_real("offered_per_s");
      stream.warmup = point.get_size("warmup");
      stream.measured = point.get_size("instances");
      // A stalled instance's horizon: far past the recovery (replay gets
      // its chance) but short enough that volatile-mode stalls drain fast.
      stream.instance_timeout_ms = 1000.0;
      // Saturating load behind a bounded window: the window is full at the
      // strike (all of it replayable from host 0's log) and outage-time
      // arrivals queue instead of stalling unrescuably.
      stream.pipeline_window = 16;
      const double strike_ms =
          stream.start_ms + 1000.0 *
                                (static_cast<double>(stream.warmup) +
                                 0.4 * static_cast<double>(stream.measured)) /
                                stream.offered_per_s;
      if (run.fault_plan != nullptr) {
        plans.push_back(*run.fault_plan);
      } else {
        plans.push_back(faults::FaultPlan{}.add(
            faults::FaultPlan::crash_recover(0, strike_ms, point.get_real("downtime_ms"))));
      }
      streams.push_back(stream);
    }
    const auto results = ctx.runner->map(run.grid.size(), [&](std::size_t p) {
      const auto point = run.grid.point(p);
      WorkloadConfig cfg;
      cfg.n = point.get_size("n");
      cfg.network = ctx.network;
      cfg.timers = ctx.timers;
      // No heartbeat detector: recovery, not detection, is the only way out.
      cfg.fault_plan = &plans[p];
      cfg.durable_log = point.get_string("mode") == "durable";
      cfg.durable_append_ms = point.get_real("append_ms");
      cfg.seed = mode_blind_seed(ctx.seed, name, point);
      return run_workload(cfg, streams[p]);
    });
    ResultTable table{name, columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const auto [start_ms, end_ms] = fold_window(plans[p]);
      const PhasedWorkload phases = split_workload_by_window(results[p], start_ms, end_ms);
      const std::size_t undecided =
          phases.before.undecided + phases.during.undecided + phases.after.undecided;
      table.add_row({point.get_int("n"), point.get_string("mode"),
                     point.get_real("offered_per_s"), phase_ci(phases.before),
                     phase_ci(phases.during), phase_ci(phases.after),
                     results[p].value_stats.p95_latency_ms,
                     results[p].value_stats.delivered_per_s, int_of(undecided),
                     int_of(results[p].instances_replayed),
                     int_of(results[p].durable_appends)});
    }
    return table;
  };
  return spec;
}

ScenarioSpec rolling_restart_spec() {
  ScenarioSpec spec;
  spec.name = "rolling_restart";
  spec.description =
      "Staggered whole-cluster restart under load, volatile vs durable log";
  spec.notes =
      "Every host in turn crashes and warm-restarts (one at a time: the\n"
      "stagger exceeds downtime + detection), with live heartbeat detection\n"
      "and per-instance coordinator rotation spreading the pain. Values on\n"
      "gave-up instances are resubmitted, so every submitted value is\n"
      "delivered exactly once (undelivered stays 0) in both modes. A\n"
      "restarted host replays whatever its log shows in flight instead of\n"
      "abandoning it to the give-up deadline -- visible in the replayed\n"
      "column once the offered load keeps instances in flight at the crash\n"
      "instants (raise offered_per_s to probe that regime).";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    std::vector<ParamAxis> axes{ParamAxis::sizes("n", scale.sim_ns),
                                ParamAxis::strings("mode", {"volatile", "durable"}),
                                ParamAxis::reals("append_ms", {0.1}),
                                ParamAxis::reals("downtime_ms", {60}),
                                ParamAxis::reals("stagger_ms", {150}),
                                ParamAxis::reals("offered_per_s", {200})};
    for (auto& axis : workload_size_axes(scale)) axes.push_back(std::move(axis));
    return axes;
  };
  spec.columns = {{"n", ColumnType::kInt},
                  {"mode", ColumnType::kString},
                  {"before_ms", ColumnType::kMeanCI},
                  {"during_ms", ColumnType::kMeanCI},
                  {"after_ms", ColumnType::kMeanCI},
                  {"during_p95_ms", ColumnType::kReal},
                  {"delivered", ColumnType::kInt},
                  {"undelivered", ColumnType::kInt},
                  {"replayed", ColumnType::kInt}};
  spec.run = [name = spec.name, columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    std::vector<faults::FaultPlan> plans;
    std::vector<WorkloadSpec> streams;
    std::vector<std::pair<double, double>> windows;
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      WorkloadSpec stream;
      stream.arrivals = ArrivalProcess::kOpenLoop;
      stream.offered_per_s = point.get_real("offered_per_s");
      stream.warmup = point.get_size("warmup");
      stream.measured = point.get_size("instances");
      stream.instance_timeout_ms = 1000.0;
      stream.resubmit_undecided = true;  // exactly-once across the storm
      const double strike_ms =
          stream.start_ms + 1000.0 *
                                (static_cast<double>(stream.warmup) +
                                 0.3 * static_cast<double>(stream.measured)) /
                                stream.offered_per_s;
      const double downtime = point.get_real("downtime_ms");
      const double stagger = point.get_real("stagger_ms");
      const auto n = static_cast<double>(point.get_size("n"));
      if (run.fault_plan != nullptr) {
        plans.push_back(*run.fault_plan);
        windows.push_back(fold_window(plans[p]));
      } else {
        plans.push_back(faults::FaultPlan{}.add(
            faults::FaultPlan::rolling_restart(strike_ms, downtime, stagger)));
        windows.emplace_back(strike_ms, strike_ms + (n - 1.0) * stagger + downtime);
      }
      streams.push_back(stream);
    }
    const auto results = ctx.runner->map(run.grid.size(), [&](std::size_t p) {
      const auto point = run.grid.point(p);
      WorkloadConfig cfg;
      cfg.n = point.get_size("n");
      cfg.network = ctx.network;
      cfg.timers = ctx.timers;
      cfg.heartbeat_timeout_ms = kFaultTimeoutMs;
      cfg.rotate_coordinators = true;
      cfg.fault_plan = &plans[p];
      cfg.durable_log = point.get_string("mode") == "durable";
      cfg.durable_append_ms = point.get_real("append_ms");
      cfg.seed = mode_blind_seed(ctx.seed, name, point);
      return run_workload(cfg, streams[p]);
    });
    ResultTable table{name, columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const auto [start_ms, end_ms] = windows[p];
      const PhasedWorkload phases = split_workload_by_window(results[p], start_ms, end_ms);
      table.add_row({point.get_int("n"), point.get_string("mode"), phase_ci(phases.before),
                     phase_ci(phases.during), phase_ci(phases.after),
                     phase_p95(phases.during), int_of(results[p].value_stats.decided),
                     int_of(results[p].value_stats.undecided),
                     int_of(results[p].instances_replayed)});
    }
    return table;
  };
  return spec;
}

ScenarioSpec membership_growth_spec() {
  ScenarioSpec spec;
  spec.name = "membership_growth";
  spec.description = "Live group growth 3 -> 5 under load, changes decided in-stream";
  spec.notes =
      "The stream starts on members {0,1,2} of a 5-host cluster; add_host\n"
      "control instances decide hosts 3 and 4 in at ~35% and ~65% of the\n"
      "measured span. Each change is agreed by the then-current members and\n"
      "applied view-synchronously at its decision instant; in-flight\n"
      "instances keep their launch epoch's quorum, so no value is lost\n"
      "across either switch (undecided stays 0). The three phase columns\n"
      "show the majority price of growth: 2-of-3 -> 3-of-4 -> 3-of-5\n"
      "acknowledgements on the same contended hub.";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    std::vector<ParamAxis> axes{ParamAxis::ints("n", {5}),
                                ParamAxis::reals("offered_per_s", {200})};
    for (auto& axis : workload_size_axes(scale)) axes.push_back(std::move(axis));
    return axes;
  };
  spec.columns = {{"n", ColumnType::kInt},
                  {"offered_per_s", ColumnType::kReal},
                  {"n3_ms", ColumnType::kMeanCI},
                  {"n4_ms", ColumnType::kMeanCI},
                  {"n5_ms", ColumnType::kMeanCI},
                  {"n5_p95_ms", ColumnType::kReal},
                  {"epochs", ColumnType::kInt},
                  {"undecided", ColumnType::kInt}};
  spec.run = [name = spec.name, columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    std::vector<faults::FaultPlan> plans;
    std::vector<WorkloadSpec> streams;
    std::vector<std::pair<double, double>> nominal;  // scheduled change times
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      WorkloadSpec stream;
      stream.arrivals = ArrivalProcess::kOpenLoop;
      stream.offered_per_s = point.get_real("offered_per_s");
      stream.warmup = point.get_size("warmup");
      stream.measured = point.get_size("instances");
      const auto at = [&](double frac) {
        return stream.start_ms + 1000.0 *
                                     (static_cast<double>(stream.warmup) +
                                      frac * static_cast<double>(stream.measured)) /
                                     stream.offered_per_s;
      };
      nominal.emplace_back(at(0.35), at(0.65));
      if (run.fault_plan != nullptr) {
        plans.push_back(*run.fault_plan);
      } else {
        plans.push_back(faults::FaultPlan{}
                            .add(faults::FaultPlan::add_host(3, nominal[p].first))
                            .add(faults::FaultPlan::add_host(4, nominal[p].second)));
      }
      streams.push_back(stream);
    }
    const auto results = ctx.runner->map(run.grid.size(), [&](std::size_t p) {
      const auto point = run.grid.point(p);
      WorkloadConfig cfg;
      cfg.n = point.get_size("n");
      cfg.network = ctx.network;
      cfg.timers = ctx.timers;
      cfg.fault_plan = &plans[p];
      cfg.initial_members = {0, 1, 2};
      cfg.seed = workload_point_seed(ctx.seed, name, point);
      return run_workload(cfg, streams[p]);
    });
    ResultTable table{name, columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      // Bucket against the *decision* instants when both changes landed
      // (the scheduled times otherwise): before = 3 members, during = 4,
      // after = 5.
      double t1 = nominal[p].first;
      double t2 = nominal[p].second;
      const auto& changes = results[p].membership_changes;
      if (changes.size() >= 2) {
        t1 = changes.front().at_ms;
        t2 = changes.back().at_ms;
      }
      const PhasedWorkload phases = split_workload_by_window(results[p], t1, t2);
      const std::size_t undecided =
          phases.before.undecided + phases.during.undecided + phases.after.undecided;
      table.add_row({point.get_int("n"), point.get_real("offered_per_s"),
                     phase_ci(phases.before), phase_ci(phases.during), phase_ci(phases.after),
                     phase_p95(phases.after), int_of(changes.size()), int_of(undecided)});
    }
    return table;
  };
  return spec;
}

// --- Topology scenarios (src/topo) -------------------------------------------

/// The shared 2-rack layout of the topology scenarios: hosts split
/// contiguously (rack 0 takes the remainder, so the round-1 coordinator
/// host 0 always sits in the majority rack) with the given uplink latency.
std::shared_ptr<const topo::Topology> two_rack_topology(std::size_t n, std::size_t racks,
                                                        double uplink_latency_ms) {
  topo::LinkParams uplink;
  uplink.latency_ms = uplink_latency_ms;
  return std::make_shared<const topo::Topology>(
      topo::Topology::uniform(n, racks, topo::LinkParams{}, uplink));
}

ScenarioSpec rack_loss_consensus_spec() {
  ScenarioSpec spec;
  spec.name = "rack_loss_consensus";
  spec.description =
      "CT vs MR through the correlated crash of a whole rack (kill_rack) on a 2-rack topology";
  spec.notes =
      "The result class the single-hub model cannot express: every host of\n"
      "the minority rack dies at the same instant (one kill_rack event\n"
      "lowered against the failure-domain tree), so the survivors lose\n"
      "several peers at once instead of one. The contiguous split keeps the\n"
      "round-1 coordinator in the surviving majority rack, so decisions\n"
      "continue through the outage -- and the during window is typically\n"
      "*faster*: once the heartbeat detector times the dead rack out, the\n"
      "quorum goes rack-local (no uplink crossings) and the per-link load\n"
      "drops. Recovery re-adds the remote rack and latency returns to the\n"
      "cross-rack baseline; CT vs MR compares round structure through that\n"
      "membership dip.";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    std::vector<ParamAxis> axes{ParamAxis::sizes("n", scale.sim_ns),
                                ParamAxis::sizes("racks", {2}),
                                ParamAxis::strings("algorithm", {"ct", "mr"}),
                                ParamAxis::reals("downtime_ms", {60}),
                                ParamAxis::reals("offered_per_s", {200})};
    for (auto& axis : workload_size_axes(scale)) axes.push_back(std::move(axis));
    return axes;
  };
  spec.columns = {{"n", ColumnType::kInt},
                  {"racks", ColumnType::kInt},
                  {"algorithm", ColumnType::kString},
                  {"downtime_ms", ColumnType::kReal},
                  {"offered_per_s", ColumnType::kReal},
                  {"before_ms", ColumnType::kMeanCI},
                  {"during_ms", ColumnType::kMeanCI},
                  {"after_ms", ColumnType::kMeanCI},
                  {"during_execs", ColumnType::kInt},
                  {"undecided", ColumnType::kInt}};
  spec.run = [name = spec.name, columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    // Plans and topologies stay alive across the fan-out; one per grid
    // point (an explicit --fault-plan replaces every plan, still lowered
    // against the point's topology).
    std::vector<faults::FaultPlan> plans;
    std::vector<std::shared_ptr<const topo::Topology>> topologies;
    std::vector<WorkloadSpec> streams;
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const std::size_t racks = point.get_size("racks");
      topologies.push_back(
          two_rack_topology(point.get_size("n"), racks, /*uplink_latency_ms=*/0.05));
      WorkloadSpec stream;
      stream.arrivals = ArrivalProcess::kOpenLoop;
      stream.offered_per_s = point.get_real("offered_per_s");
      stream.warmup = point.get_size("warmup");
      stream.measured = point.get_size("instances");
      // Strike 40% into the measured window (the crash_under_load shape).
      const double strike_ms =
          stream.start_ms + 1000.0 *
                                (static_cast<double>(stream.warmup) +
                                 0.4 * static_cast<double>(stream.measured)) /
                                stream.offered_per_s;
      if (run.fault_plan != nullptr) {
        plans.push_back(*run.fault_plan);
      } else {
        // Kill the last (minority) rack: the contiguous split leaves host 0
        // -- and with it the round-1 coordinator -- in rack 0.
        plans.push_back(faults::FaultPlan{}.add(faults::FaultPlan::kill_rack(
            static_cast<int>(racks) - 1, strike_ms, point.get_real("downtime_ms"))));
      }
      streams.push_back(stream);
    }
    const auto results = ctx.runner->map(run.grid.size(), [&](std::size_t p) {
      const auto point = run.grid.point(p);
      WorkloadConfig cfg;
      cfg.n = point.get_size("n");
      cfg.network = ctx.network;
      cfg.timers = ctx.timers;
      cfg.topology = topologies[p];
      cfg.heartbeat_timeout_ms = kFaultTimeoutMs;
      cfg.algorithm = algorithm_of(point.get_string("algorithm"));
      cfg.fault_plan = &plans[p];
      cfg.seed = workload_point_seed(ctx.seed, name, point);
      return run_workload(cfg, streams[p]);
    });
    ResultTable table{name, columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const auto [start_ms, end_ms] = fold_window(plans[p]);
      const PhasedWorkload phases = split_workload_by_window(results[p], start_ms, end_ms);
      const std::size_t undecided =
          phases.before.undecided + phases.during.undecided + phases.after.undecided;
      table.add_row({point.get_int("n"), point.get_int("racks"),
                     point.get_string("algorithm"), point.get_real("downtime_ms"),
                     point.get_real("offered_per_s"), phase_ci(phases.before),
                     phase_ci(phases.during), phase_ci(phases.after),
                     int_of(phases.during.latencies_ms.size() + phases.during.undecided),
                     int_of(undecided)});
    }
    return table;
  };
  return spec;
}

ScenarioSpec cross_rack_latency_sweep_spec() {
  ScenarioSpec spec;
  spec.name = "cross_rack_latency_sweep";
  spec.description =
      "Steady-state stream latency vs cross-rack uplink latency on a 2-rack topology";
  spec.notes =
      "The load engine over routed delivery: inter-rack frames pay two\n"
      "uplink occupancies plus twice the swept propagation latency. Whether\n"
      "that reaches the end-to-end latency depends on where the quorum\n"
      "lives: at odd n the majority rack holds a full quorum by itself and\n"
      "the sweep stays flat (n = 3 is the control row), while the even\n"
      "sizes split 2+2 / 3+3 so every quorum must cross the spine and the\n"
      "latency floor rises with the uplink. That quorum-placement effect is\n"
      "exactly what the single-hub model cannot express.";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    // Fixed sizes rather than scale.sim_ns: the even rows (no rack holds
    // a quorum alone) are the point of the sweep, the odd row the control.
    std::vector<ParamAxis> axes{ParamAxis::sizes("n", {3, 4, 6}),
                                ParamAxis::sizes("racks", {2}),
                                ParamAxis::reals("uplink_ms", {0, 0.1, 0.5, 2.0}),
                                ParamAxis::reals("offered_per_s", {200})};
    for (auto& axis : workload_size_axes(scale)) axes.push_back(std::move(axis));
    return axes;
  };
  spec.columns = {{"n", ColumnType::kInt},
                  {"racks", ColumnType::kInt},
                  {"uplink_ms", ColumnType::kReal},
                  {"offered_per_s", ColumnType::kReal},
                  {"delivered_per_s", ColumnType::kReal},
                  {"latency_ms", ColumnType::kMeanCI},
                  {"p95_ms", ColumnType::kReal},
                  {"undecided", ColumnType::kInt}};
  spec.run = [name = spec.name, columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    const auto timers = net::TimerModel::ideal();
    const auto results = ctx.runner->map(run.grid.size(), [&](std::size_t p) {
      const auto point = run.grid.point(p);
      WorkloadConfig cfg;
      cfg.n = point.get_size("n");
      cfg.network = ctx.network;
      cfg.timers = timers;
      cfg.topology = two_rack_topology(cfg.n, point.get_size("racks"),
                                       point.get_real("uplink_ms"));
      cfg.seed = workload_point_seed(ctx.seed, name, point);
      WorkloadSpec stream;
      stream.arrivals = ArrivalProcess::kOpenLoop;
      stream.offered_per_s = point.get_real("offered_per_s");
      stream.warmup = point.get_size("warmup");
      stream.measured = point.get_size("instances");
      return run_workload(cfg, stream);
    });
    ResultTable table{name, columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const WorkloadStats& stats = results[p].stats;
      table.add_row({point.get_int("n"), point.get_int("racks"), point.get_real("uplink_ms"),
                     point.get_real("offered_per_s"), stats.delivered_per_s,
                     latency_ci_cell(stats),
                     stats.decided > 0 ? Value{stats.p95_latency_ms} : Value{},
                     int_of(stats.undecided)});
    }
    return table;
  };
  return spec;
}

ScenarioSpec scale_n_sweep_spec() {
  ScenarioSpec spec;
  spec.name = "scale_n_sweep";
  spec.description =
      "Engine throughput (events/s, ns/event, peak RSS) vs cluster size, heap vs ladder+batched";
  spec.notes =
      "The single-run scaling story: one open-loop MR stream per point at an\n"
      "offered load ~1/n^2 (the per-instance frame count is Theta(n^2), so\n"
      "this keeps utilisation comparable across sizes). The engine axis\n"
      "compares the default configuration (binary-heap pending set,\n"
      "per-receiver broadcast fan-out) against the scaling one (ladder\n"
      "queue, batched hub broadcast). Simulated results -- delivered_per_s,\n"
      "events, sim_ms -- are identical between heap_unicast rows and any\n"
      "SANPERF_QUEUE override, and appear in the golden; the wall-clock\n"
      "columns (events_per_s, ns_per_event, peak_rss_mb) are machine facts,\n"
      "diffed with --ignore-cols in CI. peak_rss_mb is the process\n"
      "high-water mark, so within a sweep only the largest n is clean.";
  spec.needs_calibration = false;
  spec.axes = [](const Scale& scale) {
    std::vector<ParamAxis> axes{
        ParamAxis::sizes("n", {3, 5, 9, 17, 33, 65, 129}),
        ParamAxis::strings("engine", {"heap_unicast", "ladder_batched"})};
    for (auto& axis : workload_size_axes(scale)) axes.push_back(std::move(axis));
    return axes;
  };
  spec.columns = {{"engine", ColumnType::kString},
                  {"n", ColumnType::kInt},
                  {"offered_per_s", ColumnType::kReal},
                  {"delivered_per_s", ColumnType::kReal},
                  {"events", ColumnType::kReal},
                  {"sim_ms", ColumnType::kReal},
                  {"events_per_s", ColumnType::kReal},
                  {"ns_per_event", ColumnType::kReal},
                  {"peak_rss_mb", ColumnType::kReal},
                  {"undecided", ColumnType::kInt}};
  spec.run = [name = spec.name, columns = spec.columns](const ScenarioRun& run) {
    const PaperContext& ctx = run.ctx;
    const auto timers = net::TimerModel::ideal();
    struct PointResult {
      WorkloadResult workload;
      double offered_per_s = 0;
      double wall_s = 0;
      double rss_mb = 0;
    };
    const auto results = ctx.runner->map(run.grid.size(), [&](std::size_t p) {
      const auto point = run.grid.point(p);
      const std::size_t n = point.get_size("n");
      WorkloadConfig cfg;
      cfg.n = n;
      cfg.network = ctx.network;
      cfg.timers = timers;
      cfg.algorithm = Algorithm::kMostefaouiRaynal;
      const std::string engine = point.get_string("engine");
      if (engine == "ladder_batched") {
        cfg.queue_backend = des::QueueBackend::kLadder;
        cfg.network.batched_broadcast = true;
      } else if (engine == "heap_unicast") {
        cfg.queue_backend = des::QueueBackend::kHeap;
        cfg.network.batched_broadcast = false;
      } else {
        throw std::invalid_argument{"unknown engine '" + engine + "'"};
      }
      cfg.seed = workload_point_seed(ctx.seed, name, point);
      WorkloadSpec stream;
      stream.arrivals = ArrivalProcess::kOpenLoop;
      // Theta(n^2) frames per MR instance: an offered load ~1/n^2 keeps the
      // medium at comparable utilisation across the whole size ladder.
      stream.offered_per_s = 2000.0 / (static_cast<double>(n) * static_cast<double>(n));
      // Instance cost grows ~n^2, so the stream shrinks with n to keep the
      // largest sizes tractable at every scale preset.
      const std::size_t base = point.get_size("instances");
      stream.measured = std::min(base, std::max<std::size_t>(6, 8 * base / n));
      stream.warmup = std::min(point.get_size("warmup"),
                               std::max<std::size_t>(2, stream.measured / 8));
      stream.instance_timeout_ms = 60'000.0;
      PointResult res;
      res.offered_per_s = stream.offered_per_s;
      // Wall-clock engine throughput is the point of this sweep; the
      // simulated outputs stay host-independent.
      const auto wall_start = std::chrono::steady_clock::now();  // det-lint: allow(wall-clock) measures engine speed, not simulated time
      res.workload = run_workload(cfg, stream);
      const auto wall_end = std::chrono::steady_clock::now();  // det-lint: allow(wall-clock) measures engine speed, not simulated time
      res.wall_s = std::chrono::duration<double>(wall_end - wall_start).count();
      res.rss_mb = static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
      return res;
    });
    ResultTable table{name, columns};
    for (std::size_t p = 0; p < run.grid.size(); ++p) {
      const auto point = run.grid.point(p);
      const PointResult& res = results[p];
      const auto events = static_cast<double>(res.workload.events_processed);
      const double events_per_s = res.wall_s > 0 ? events / res.wall_s : 0.0;
      table.add_row({point.get_string("engine"), point.get_int("n"), res.offered_per_s,
                     res.workload.stats.delivered_per_s, events, res.workload.sim_duration_ms,
                     events_per_s, events_per_s > 0 ? Value{1e9 / events_per_s} : Value{},
                     res.rss_mb > 0 ? Value{res.rss_mb} : Value{},
                     int_of(res.workload.stats.undecided)});
    }
    return table;
  };
  return spec;
}

SANPERF_REGISTER_SCENARIO(scale_n_sweep_spec);
SANPERF_REGISTER_SCENARIO(load_latency_sweep_spec);
SANPERF_REGISTER_SCENARIO(batch_throughput_sweep_spec);
SANPERF_REGISTER_SCENARIO(closed_loop_clients_spec);
SANPERF_REGISTER_SCENARIO(crash_under_load_spec);
SANPERF_REGISTER_SCENARIO(recovery_under_load_spec);
SANPERF_REGISTER_SCENARIO(rolling_restart_spec);
SANPERF_REGISTER_SCENARIO(membership_growth_spec);
SANPERF_REGISTER_SCENARIO(rack_loss_consensus_spec);
SANPERF_REGISTER_SCENARIO(cross_rack_latency_sweep_spec);

// The fault scenarios self-register next to builtin() (same translation
// unit, so any registry user links them in): the satellite registration
// hook, exercised in-tree.
SANPERF_REGISTER_SCENARIO(crash_recovery_spec);
SANPERF_REGISTER_SCENARIO(partition_heal_spec);
SANPERF_REGISTER_SCENARIO(lossy_consensus_spec);
SANPERF_REGISTER_SCENARIO(slowdown_sweep_spec);

}  // namespace

const CampaignRegistry& CampaignRegistry::builtin() {
  static const CampaignRegistry registry = [] {
    CampaignRegistry r;
    r.add(fig6_spec());
    r.add(fig7a_spec());
    r.add(fig7b_spec());
    r.add(table1_spec());
    r.add(class3_spec(/*qos_view=*/true));   // fig8
    r.add(class3_spec(/*qos_view=*/false));  // fig9a
    r.add(fig9b_spec());
    r.add(ablation_broadcast_spec());
    r.add(ablation_fd_spec());
    r.add(ext_algorithms_spec());
    r.add(ext_throughput_spec());
    r.add(ext_detection_spec());
    return r;
  }();
  return registry;
}

CampaignRegistry& CampaignRegistry::global() {
  // Seeded from builtin() on first use; register_scenario appends (the
  // static registrars above run during this TU's initialisation, so the
  // fault scenarios land right after the paper artifacts). Deliberately in
  // this translation unit: any global()/builtin() user links the builtin
  // specs and their registrars together.
  static CampaignRegistry registry = [] {
    CampaignRegistry r;
    for (const ScenarioSpec& spec : builtin().specs()) r.add(spec);
    return r;
  }();
  return registry;
}

}  // namespace sanperf::core
