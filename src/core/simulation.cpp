#include "core/simulation.hpp"

namespace sanperf::core {

const san::TransientStudy* ConsensusStudyBank::add(const sanmodels::ConsensusSanConfig& cfg,
                                                   des::Duration time_limit) {
  auto& entry = entries_.emplace_back(Entry{sanmodels::build_consensus_san(cfg), std::nullopt});
  entry.study.emplace(entry.built.model, entry.built.stop_predicate());
  entry.study->set_time_limit(time_limit);
  return &*entry.study;
}

san::StudyResult simulate_latency(const sanmodels::ConsensusSanModel& model,
                                  std::size_t replications, std::uint64_t seed,
                                  const ReplicationRunner& runner) {
  san::TransientStudy study{model.model, model.stop_predicate()};
  // Pathological class-3 settings can spin through rounds for a long time;
  // 10 simulated seconds comfortably bounds every paper scenario.
  study.set_time_limit(des::Duration::seconds(10));
  return run_study(runner, study, replications, seed);
}

san::StudyResult simulate_class1(std::size_t n, const sanmodels::TransportParams& transport,
                                 std::size_t replications, std::uint64_t seed,
                                 const ReplicationRunner& runner) {
  sanmodels::ConsensusSanConfig cfg;
  cfg.n = n;
  cfg.transport = transport;
  const auto model = sanmodels::build_consensus_san(cfg);
  return simulate_latency(model, replications, seed, runner);
}

san::StudyResult simulate_class2(std::size_t n, const sanmodels::TransportParams& transport,
                                 int crashed, std::size_t replications, std::uint64_t seed,
                                 const ReplicationRunner& runner) {
  sanmodels::ConsensusSanConfig cfg;
  cfg.n = n;
  cfg.transport = transport;
  cfg.initially_crashed = crashed;
  const auto model = sanmodels::build_consensus_san(cfg);
  return simulate_latency(model, replications, seed, runner);
}

san::StudyResult simulate_class3(std::size_t n, const sanmodels::TransportParams& transport,
                                 const fd::AbstractFdParams& fd_params, std::size_t replications,
                                 std::uint64_t seed, const ReplicationRunner& runner) {
  sanmodels::ConsensusSanConfig cfg;
  cfg.n = n;
  cfg.transport = transport;
  cfg.qos_fd = fd_params;
  const auto model = sanmodels::build_consensus_san(cfg);
  return simulate_latency(model, replications, seed, runner);
}

}  // namespace sanperf::core
