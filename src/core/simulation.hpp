// SAN simulation campaigns -- the "simulation using Stochastic Activity
// Networks" half of the paper's combined methodology.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "core/replication.hpp"
#include "fd/qos.hpp"
#include "san/study.hpp"
#include "sanmodels/consensus_model.hpp"

namespace sanperf::core {

/// Builds consensus SAN studies up front on the caller thread and keeps
/// them address-stable, so a flattened campaign space can mix simulation
/// groups (tasks calling study->run_one) with measurement groups in one
/// ReplicationRunner::run_flat batch.
class ConsensusStudyBank {
 public:
  /// Builds the model and its study; the returned pointer stays valid for
  /// the bank's lifetime. The 10 s default bounds every paper scenario
  /// (pathological class-3 settings can spin through rounds for a while).
  const san::TransientStudy* add(const sanmodels::ConsensusSanConfig& cfg,
                                 des::Duration time_limit = des::Duration::seconds(10));

 private:
  struct Entry {
    sanmodels::ConsensusSanModel built;
    std::optional<san::TransientStudy> study;
  };
  std::deque<Entry> entries_;  ///< deque keeps models address-stable
};

/// Runs a latency study on a built consensus SAN: replications of the time
/// from all-propose (t = 0) to the first decision. Replications fan out
/// across `runner` (default: the process-wide pool); results are merged in
/// replication order and do not depend on the thread count.
[[nodiscard]] san::StudyResult simulate_latency(const sanmodels::ConsensusSanModel& model,
                                                std::size_t replications, std::uint64_t seed,
                                                const ReplicationRunner& runner =
                                                    default_runner());

/// Class 1: no crashes, accurate detectors.
[[nodiscard]] san::StudyResult simulate_class1(std::size_t n,
                                               const sanmodels::TransportParams& transport,
                                               std::size_t replications, std::uint64_t seed,
                                               const ReplicationRunner& runner =
                                                   default_runner());

/// Class 2: `crashed` is initially down; detectors complete and accurate.
[[nodiscard]] san::StudyResult simulate_class2(std::size_t n,
                                               const sanmodels::TransportParams& transport,
                                               int crashed, std::size_t replications,
                                               std::uint64_t seed,
                                               const ReplicationRunner& runner =
                                                   default_runner());

/// Class 3: no crashes, QoS-parameterised independent two-state detectors.
[[nodiscard]] san::StudyResult simulate_class3(std::size_t n,
                                               const sanmodels::TransportParams& transport,
                                               const fd::AbstractFdParams& fd_params,
                                               std::size_t replications, std::uint64_t seed,
                                               const ReplicationRunner& runner =
                                                   default_runner());

}  // namespace sanperf::core
