#include "core/workload.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>
#include <stdexcept>

#include "consensus/ct_consensus.hpp"
#include "consensus/mr_consensus.hpp"
#include "core/exec_harness.hpp"
#include "faults/injector.hpp"
#include "fd/failure_detector.hpp"
#include "fd/heartbeat_fd.hpp"
#include "runtime/cluster.hpp"
#include "stats/batch_means.hpp"
#include "stats/ecdf.hpp"

namespace sanperf::core {

const char* to_string(ArrivalProcess arrivals) {
  switch (arrivals) {
    case ArrivalProcess::kBurst: return "burst";
    case ArrivalProcess::kOpenLoop: return "open-loop";
    case ArrivalProcess::kClosedLoop: return "closed-loop";
  }
  return "?";
}

MeasuredLatency WorkloadResult::measured_latency() const {
  MeasuredLatency out;
  for (std::size_t k = warmup; k < instances.size(); ++k) {
    const InstanceRecord& rec = instances[k];
    if (rec.decided()) {
      out.latencies_ms.push_back(*rec.latency_ms);
      out.rounds.push_back(rec.rounds);
    } else {
      ++out.undecided;
    }
  }
  return out;
}

WorkloadStats fold_workload_stats(const std::vector<InstanceRecord>& instances,
                                  std::size_t warmup, std::size_t batches) {
  WorkloadStats out;
  if (instances.size() <= warmup) return out;
  const std::size_t measured = instances.size() - warmup;
  const std::size_t batch_size =
      std::max<std::size_t>(1, measured / std::max<std::size_t>(1, batches));

  stats::BatchMeans lat_batches{batch_size};
  stats::BatchMeans rate_batches{1};  // per-batch rates are the observations
  std::vector<double> lats;
  lats.reserve(measured);

  const double first_start = instances[warmup].start_ms;  // streams launch in cid order
  double last_start = first_start;
  double last_decide = 0;
  bool any_decided = false;
  // Throughput batches close at the latest decision they contain; the
  // window boundaries are monotone, so a batch that falls entirely inside
  // a straggler's shadow (zero marginal window) rolls its count into the
  // next rate sample instead of being dropped -- every delivery is
  // attributed to exactly one sample and the samples tile the span.
  double window_start = first_start;
  double batch_max_decide = first_start;
  std::size_t in_batch = 0;
  std::size_t window_count = 0;

  for (std::size_t k = warmup; k < instances.size(); ++k) {
    const InstanceRecord& rec = instances[k];
    last_start = std::max(last_start, rec.start_ms);
    if (!rec.decided()) {
      ++out.undecided;
      continue;
    }
    const double lat = *rec.latency_ms;
    lats.push_back(lat);
    lat_batches.add(lat);
    const double decide = rec.decide_ms();
    last_decide = std::max(last_decide, decide);
    any_decided = true;
    batch_max_decide = std::max(batch_max_decide, decide);
    if (++in_batch == batch_size) {
      window_count += batch_size;
      const double window = batch_max_decide - window_start;
      if (window > 0) {
        rate_batches.add(1000.0 * static_cast<double>(window_count) / window);
        window_start = batch_max_decide;
        window_count = 0;
      }
      in_batch = 0;
    }
  }

  out.decided = lats.size();
  out.latency_ci = lat_batches.batches() > 0 ? lat_batches.mean_ci(0.90)
                                             : stats::summarize(lats).mean_ci(0.90);
  out.throughput_ci = rate_batches.mean_ci(0.90);
  if (!lats.empty()) {
    out.mean_latency_ms = stats::summarize(lats).mean();
    out.p95_latency_ms = stats::Ecdf{lats}.quantile(0.95);
  }
  if (any_decided) {
    out.duration_ms = last_decide - first_start;
    if (out.duration_ms > 0) {
      out.delivered_per_s = 1000.0 * static_cast<double>(out.decided) / out.duration_ms;
    }
  }
  if (measured > 1 && last_start > first_start) {
    out.offered_per_s = 1000.0 * static_cast<double>(measured - 1) / (last_start - first_start);
  }
  return out;
}

PhasedWorkload split_workload_by_window(const WorkloadResult& result, double start_ms,
                                        double end_ms) {
  PhasedWorkload out;
  // A window that never opens (start = inf) puts everything in "before".
  const bool no_window = std::isinf(start_ms);
  for (std::size_t k = result.warmup; k < result.instances.size(); ++k) {
    const InstanceRecord& rec = result.instances[k];
    MeasuredLatency* bucket = &out.during;
    if (rec.start_ms >= end_ms) {
      bucket = &out.after;
    } else if (no_window || (rec.decided() && rec.decide_ms() < start_ms)) {
      bucket = &out.before;  // over before the fault opened
    }
    if (rec.decided()) {
      bucket->latencies_ms.push_back(*rec.latency_ms);
      bucket->rounds.push_back(rec.rounds);
    } else {
      ++bucket->undecided;
    }
  }
  return out;
}

namespace {

template <typename ConsensusLayer>
WorkloadResult run_stream(const WorkloadConfig& cfg, const WorkloadSpec& spec) {
  if (spec.measured == 0) throw std::invalid_argument{"run_workload: measured == 0"};
  if (spec.arrivals == ArrivalProcess::kOpenLoop && !(spec.offered_per_s > 0)) {
    throw std::invalid_argument{"run_workload: open loop needs offered_per_s > 0"};
  }
  const std::size_t total = spec.warmup + spec.measured;

  // The persistent cluster: built once, serving the whole stream.
  runtime::ClusterConfig ccfg;
  ccfg.n = cfg.n;
  ccfg.network = cfg.network;
  ccfg.timers = cfg.timers;
  ccfg.seed = cfg.seed;
  runtime::Cluster cluster{ccfg};
  std::optional<faults::FaultInjector> injector;
  if (cfg.fault_plan != nullptr) injector.emplace(cluster, *cfg.fault_plan);

  std::set<runtime::HostId> suspected;
  if (cfg.fault_plan != nullptr) {
    for (const faults::HostId h : cfg.fault_plan->initially_down()) suspected.insert(h);
  }
  if (cfg.initially_crashed >= 0) {
    suspected.insert(static_cast<runtime::HostId>(cfg.initially_crashed));
  }

  struct Slot {
    des::TimePoint start;
    std::optional<des::TimePoint> decided_at;
    std::int32_t rounds = 0;
    bool closed = false;  ///< first decision or give-up already handled
  };
  std::vector<Slot> slots(total);
  std::size_t closed = 0;
  std::int32_t next_cid = 0;
  // Closed-loop continuation, installed below; null for the other modes.
  std::function<void(std::int32_t)> on_closed;

  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(cfg.n); ++pid) {
    auto& proc = cluster.process(pid);
    fd::FailureDetector* fd_layer = nullptr;
    if (cfg.heartbeat_timeout_ms) {
      fd_layer = &proc.add_layer<fd::HeartbeatFd>(
          fd::HeartbeatFdParams::from_timeout_ms(*cfg.heartbeat_timeout_ms));
    } else {
      fd_layer = &proc.add_layer<fd::StaticFd>(suspected);
    }
    auto& cons = proc.add_layer<ConsensusLayer>(*fd_layer);
    cons.set_gc_decided(true);  // memory bounded by the in-flight window
    cons.set_decide_callback([&slots, &closed, &on_closed](const consensus::DecisionEvent& ev) {
      if (ev.cid < 0 || static_cast<std::size_t>(ev.cid) >= slots.size()) return;
      Slot& slot = slots[static_cast<std::size_t>(ev.cid)];
      if (slot.closed) return;
      // Simulated time is monotone, so the first callback carries the
      // globally first decision of the instance.
      slot.closed = true;
      slot.decided_at = ev.at;
      slot.rounds = ev.round;
      ++closed;
      if (on_closed) on_closed(ev.cid);
    });
  }
  if (injector) injector->arm();
  if (cfg.initially_crashed >= 0) {
    cluster.crash_initially(static_cast<runtime::HostId>(cfg.initially_crashed));
  }

  auto skew_rng = cluster.rng_stream("ntp-skew");
  auto arrival_rng = cluster.rng_stream("arrivals");
  des::Simulator& sim = cluster.sim();

  // Launches instance `cid` at the current simulated time: every process
  // draws its NTP skew now, and liveness is checked when the propose fires
  // (exactly like the class-3 sequencer, so a host recovering in between
  // takes part).
  auto launch = [&](std::int32_t cid) {
    Slot& slot = slots[static_cast<std::size_t>(cid)];
    slot.start = sim.now();
    for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(cfg.n); ++pid) {
      auto& proc = cluster.process(pid);
      const double skew = skew_rng.uniform(-spec.ntp_skew_ms, spec.ntp_skew_ms);
      const des::TimePoint start = slot.start + des::Duration::from_ms(std::max(0.0, skew));
      sim.schedule_at(start, [&proc, cid] {
        if (!proc.crashed()) {
          proc.layer<ConsensusLayer>().propose(cid, 1000 + proc.id());
        }
      });
    }
    sim.schedule_at(slot.start + des::Duration::from_ms(spec.instance_timeout_ms),
                    [&slots, &closed, &on_closed, cid] {
                      Slot& s = slots[static_cast<std::size_t>(cid)];
                      if (s.closed) return;
                      s.closed = true;  // give up: undecided
                      ++closed;
                      if (on_closed) on_closed(cid);
                    });
  };

  const des::TimePoint stream_start =
      des::TimePoint::origin() + des::Duration::from_ms(spec.start_ms);
  double deadline_slack_ms = 0;  // mean inter-arrival headroom for open loop

  // Arrivals are scheduled rolling (each one chains the next), so the event
  // queue holds O(in-flight) entries, never the whole stream.
  std::function<void()> fire;
  switch (spec.arrivals) {
    case ArrivalProcess::kBurst:
      fire = [&] {
        launch(next_cid++);
        if (next_cid < static_cast<std::int32_t>(total)) {
          sim.schedule(des::Duration::from_ms(spec.separation_ms), fire);
        }
      };
      sim.schedule_at(stream_start, fire);
      break;

    case ArrivalProcess::kOpenLoop: {
      const double mean_ms = 1000.0 / spec.offered_per_s;
      deadline_slack_ms = mean_ms;
      fire = [&, mean_ms] {
        launch(next_cid++);
        if (next_cid < static_cast<std::int32_t>(total)) {
          sim.schedule(des::Duration::from_ms(arrival_rng.exponential_mean(mean_ms)), fire);
        }
      };
      sim.schedule_at(stream_start + des::Duration::from_ms(arrival_rng.exponential_mean(mean_ms)),
                      fire);
      break;
    }

    case ArrivalProcess::kClosedLoop: {
      const std::size_t clients = std::max<std::size_t>(1, spec.clients);
      on_closed = [&](std::int32_t) {
        // The client whose instance just closed thinks, then issues the
        // next instance of the stream.
        if (next_cid >= static_cast<std::int32_t>(total)) return;
        const std::int32_t next = next_cid++;
        sim.schedule(des::Duration::from_ms(spec.think_ms), [&launch, next] { launch(next); });
      };
      sim.schedule_at(stream_start, [&, clients] {
        for (std::size_t c = 0; c < clients && next_cid < static_cast<std::int32_t>(total);
             ++c) {
          launch(next_cid++);
        }
      });
      break;
    }
  }

  // Safety net only: every launched instance closes by its give-up
  // deadline and every arrival process keeps launching, so the predicate
  // fires long before this.
  const double per_instance_ms =
      spec.instance_timeout_ms + spec.separation_ms + spec.think_ms + deadline_slack_ms + 1.0;
  const des::TimePoint far_deadline =
      stream_start +
      des::Duration::from_ms(4.0 * static_cast<double>(total) * per_instance_ms + 10'000.0);
  cluster.run_until([&] { return closed >= total; }, far_deadline);

  WorkloadResult out;
  out.warmup = spec.warmup;
  out.instances.reserve(total);
  for (std::size_t k = 0; k < total; ++k) {
    InstanceRecord rec;
    rec.cid = static_cast<std::int32_t>(k);
    rec.start_ms = slots[k].start.to_ms();
    if (slots[k].decided_at) {
      rec.latency_ms = (*slots[k].decided_at - slots[k].start).to_ms();
      rec.rounds = slots[k].rounds;
    }
    out.instances.push_back(rec);
  }
  out.stats = fold_workload_stats(out.instances, spec.warmup, spec.batches);
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(cfg.n); ++pid) {
    const auto& cons = cluster.process(pid).layer<ConsensusLayer>();
    out.peak_active_instances = std::max(out.peak_active_instances,
                                         cons.peak_active_instances());
    out.instances_collected += cons.instances_collected();
  }
  return out;
}

}  // namespace

WorkloadResult run_workload(const WorkloadConfig& cfg, const WorkloadSpec& spec) {
  switch (cfg.algorithm) {
    case Algorithm::kChandraToueg:
      return run_stream<consensus::CtConsensus>(cfg, spec);
    case Algorithm::kMostefaouiRaynal:
      return run_stream<consensus::MrConsensus>(cfg, spec);
  }
  throw std::invalid_argument{"run_workload: unknown algorithm"};
}

ExecOutcome run_one_shot(const WorkloadConfig& cfg, std::size_t k, std::uint64_t exec_seed) {
  switch (cfg.algorithm) {
    case Algorithm::kChandraToueg:
      return detail::run_one_consensus_execution<consensus::CtConsensus>(
          cfg.n, cfg.network, cfg.timers, cfg.initially_crashed, k, exec_seed, cfg.fault_plan);
    case Algorithm::kMostefaouiRaynal:
      return detail::run_one_consensus_execution<consensus::MrConsensus>(
          cfg.n, cfg.network, cfg.timers, cfg.initially_crashed, k, exec_seed, cfg.fault_plan);
  }
  throw std::invalid_argument{"run_one_shot: unknown algorithm"};
}

}  // namespace sanperf::core
