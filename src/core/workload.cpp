#include "core/workload.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "consensus/batcher.hpp"
#include "consensus/ct_consensus.hpp"
#include "consensus/mr_consensus.hpp"
#include "consensus/sequencer.hpp"  // draw_ntp_start_offset
#include "core/exec_harness.hpp"
#include "faults/injector.hpp"
#include "faults/lowering.hpp"
#include "fd/failure_detector.hpp"
#include "fd/heartbeat_fd.hpp"
#include "runtime/cluster.hpp"
#include "stats/batch_means.hpp"
#include "stats/ecdf.hpp"

namespace sanperf::core {

const char* to_string(ArrivalProcess arrivals) {
  switch (arrivals) {
    case ArrivalProcess::kBurst: return "burst";
    case ArrivalProcess::kOpenLoop: return "open-loop";
    case ArrivalProcess::kClosedLoop: return "closed-loop";
  }
  return "?";
}

const char* to_string(ThinkTimeDist dist) {
  switch (dist) {
    case ThinkTimeDist::kFixed: return "fixed";
    case ThinkTimeDist::kExp: return "exp";
  }
  return "?";
}

MeasuredLatency WorkloadResult::measured_latency() const {
  MeasuredLatency out;
  for (std::size_t k = warmup; k < instances.size(); ++k) {
    const InstanceRecord& rec = instances[k];
    if (rec.decided()) {
      out.latencies_ms.push_back(*rec.latency_ms);
      out.rounds.push_back(rec.rounds);
    } else {
      ++out.undecided;
    }
  }
  return out;
}

WorkloadStats fold_workload_stats(const std::vector<InstanceRecord>& instances,
                                  std::size_t warmup, std::size_t batches) {
  WorkloadStats out;
  if (instances.size() <= warmup) return out;
  const std::size_t measured = instances.size() - warmup;
  const std::size_t batch_size =
      std::max<std::size_t>(1, measured / std::max<std::size_t>(1, batches));

  stats::BatchMeans lat_batches{batch_size};
  stats::BatchMeans rate_batches{1};  // per-batch rates are the observations
  std::vector<double> lats;
  lats.reserve(measured);

  const double first_start = instances[warmup].start_ms;  // streams launch in cid order
  double last_start = first_start;
  double last_decide = 0;
  bool any_decided = false;
  // Throughput batches close at the latest decision they contain; the
  // window boundaries are monotone, so a batch that falls entirely inside
  // a straggler's shadow (zero marginal window) rolls its count into the
  // next rate sample instead of being dropped -- every delivery is
  // attributed to exactly one sample and the samples tile the span.
  double window_start = first_start;
  double batch_max_decide = first_start;
  std::size_t in_batch = 0;
  std::size_t window_count = 0;

  for (std::size_t k = warmup; k < instances.size(); ++k) {
    const InstanceRecord& rec = instances[k];
    last_start = std::max(last_start, rec.start_ms);
    if (!rec.decided()) {
      ++out.undecided;
      continue;
    }
    const double lat = *rec.latency_ms;
    lats.push_back(lat);
    lat_batches.add(lat);
    const double decide = rec.decide_ms();
    last_decide = std::max(last_decide, decide);
    any_decided = true;
    batch_max_decide = std::max(batch_max_decide, decide);
    if (++in_batch == batch_size) {
      window_count += batch_size;
      const double window = batch_max_decide - window_start;
      if (window > 0) {
        rate_batches.add(1000.0 * static_cast<double>(window_count) / window);
        window_start = batch_max_decide;
        window_count = 0;
      }
      in_batch = 0;
    }
  }

  out.decided = lats.size();
  out.latency_ci = lat_batches.batches() > 0 ? lat_batches.mean_ci(0.90)
                                             : stats::summarize(lats).mean_ci(0.90);
  out.throughput_ci = rate_batches.mean_ci(0.90);
  if (!lats.empty()) {
    out.mean_latency_ms = stats::summarize(lats).mean();
    out.p95_latency_ms = stats::Ecdf{lats}.quantile(0.95);
  }
  if (any_decided) {
    out.duration_ms = last_decide - first_start;
    if (out.duration_ms > 0) {
      out.delivered_per_s = 1000.0 * static_cast<double>(out.decided) / out.duration_ms;
    }
  }
  if (measured > 1 && last_start > first_start) {
    out.offered_per_s = 1000.0 * static_cast<double>(measured - 1) / (last_start - first_start);
  }
  return out;
}

ValueStats fold_value_stats(const std::vector<ValueRecord>& values, std::size_t warmup,
                            std::size_t batches) {
  ValueStats out;
  if (values.size() <= warmup) return out;
  const std::size_t measured = values.size() - warmup;
  const std::size_t batch_size =
      std::max<std::size_t>(1, measured / std::max<std::size_t>(1, batches));

  stats::BatchMeans lat_batches{batch_size};
  std::vector<double> lats;
  lats.reserve(measured);
  double queue_sum = 0;

  const double first_arrival = values[warmup].arrival_ms;  // arrival order
  double last_arrival = first_arrival;
  double last_decide = 0;
  bool any_decided = false;

  for (std::size_t k = warmup; k < values.size(); ++k) {
    const ValueRecord& rec = values[k];
    last_arrival = std::max(last_arrival, rec.arrival_ms);
    if (!rec.decided()) {
      ++out.undecided;
      continue;
    }
    const double lat = rec.total_ms();
    lats.push_back(lat);
    lat_batches.add(lat);
    queue_sum += rec.queue_ms;
    last_decide = std::max(last_decide, rec.decide_ms());
    any_decided = true;
  }

  out.decided = lats.size();
  out.latency_ci = lat_batches.batches() > 0 ? lat_batches.mean_ci(0.90)
                                             : stats::summarize(lats).mean_ci(0.90);
  if (!lats.empty()) {
    out.mean_latency_ms = stats::summarize(lats).mean();
    out.p95_latency_ms = stats::Ecdf{lats}.quantile(0.95);
    out.mean_queue_ms = queue_sum / static_cast<double>(lats.size());
  }
  if (any_decided) {
    out.duration_ms = last_decide - first_arrival;
    if (out.duration_ms > 0) {
      out.delivered_per_s = 1000.0 * static_cast<double>(out.decided) / out.duration_ms;
    }
  }
  if (measured > 1 && last_arrival > first_arrival) {
    out.offered_per_s =
        1000.0 * static_cast<double>(measured - 1) / (last_arrival - first_arrival);
  }
  return out;
}

PhasedWorkload split_workload_by_window(const WorkloadResult& result, double start_ms,
                                        double end_ms) {
  PhasedWorkload out;
  // A window that never opens (start = inf) puts everything in "before".
  const bool no_window = std::isinf(start_ms);
  for (std::size_t k = result.warmup; k < result.instances.size(); ++k) {
    const InstanceRecord& rec = result.instances[k];
    MeasuredLatency* bucket = &out.during;
    if (rec.start_ms >= end_ms) {
      bucket = &out.after;
    } else if (no_window || (rec.decided() && rec.decide_ms() < start_ms)) {
      bucket = &out.before;  // over before the fault opened
    }
    if (rec.decided()) {
      bucket->latencies_ms.push_back(*rec.latency_ms);
      bucket->rounds.push_back(rec.rounds);
    } else {
      ++bucket->undecided;
    }
  }
  return out;
}

namespace {

template <typename ConsensusLayer>
WorkloadResult run_stream(const WorkloadConfig& cfg, const WorkloadSpec& spec) {
  if (spec.measured == 0) throw std::invalid_argument{"run_workload: measured == 0"};
  if (spec.arrivals == ArrivalProcess::kOpenLoop && !(spec.offered_per_s > 0)) {
    throw std::invalid_argument{"run_workload: open loop needs offered_per_s > 0"};
  }
  const std::size_t total = spec.warmup + spec.measured;

  // The persistent cluster: built once, serving the whole stream.
  runtime::ClusterConfig ccfg;
  ccfg.n = cfg.n;
  ccfg.network = cfg.network;
  ccfg.timers = cfg.timers;
  ccfg.topology = cfg.topology;
  ccfg.queue_backend = cfg.queue_backend;
  ccfg.seed = cfg.seed;
  runtime::Cluster cluster{ccfg};
  std::optional<faults::FaultInjector> injector;
  if (cfg.fault_plan != nullptr) injector.emplace(cluster, *cfg.fault_plan);

  // Domain-scoped events expand against the run topology up front (the
  // injector lowers identically), so the static detector's initially_down
  // and the membership scan below see the per-host form.
  std::optional<faults::FaultPlan> lowered_plan;
  const faults::FaultPlan* plan = cfg.fault_plan;
  if (plan != nullptr && plan->has_domain_events()) {
    lowered_plan = faults::lower_plan(
        *plan, cfg.topology ? *cfg.topology : topo::Topology::single_hub(cfg.n));
    plan = &*lowered_plan;
  }

  std::set<runtime::HostId> suspected;
  if (plan != nullptr) {
    for (const faults::HostId h : plan->initially_down()) suspected.insert(h);
  }
  if (cfg.initially_crashed >= 0) {
    suspected.insert(static_cast<runtime::HostId>(cfg.initially_crashed));
  }

  // Dynamic membership: one shared epoch-history view, advanced
  // view-synchronously at the instant a membership-change control instance
  // decides. Null (the common case) keeps every layer on its
  // fixed-membership code paths, bit-exact with the legacy engine.
  bool dynamic_membership = !cfg.initial_members.empty();
  if (plan != nullptr) {
    for (const faults::FaultEvent& e : plan->events()) {
      if (e.kind == faults::FaultKind::kAddHost || e.kind == faults::FaultKind::kRemoveHost) {
        dynamic_membership = true;
      }
    }
  }
  std::optional<consensus::MembershipView> view;
  if (dynamic_membership) {
    std::vector<consensus::MemberId> init;
    if (cfg.initial_members.empty()) {
      for (std::size_t h = 0; h < cfg.n; ++h) {
        init.push_back(static_cast<consensus::MemberId>(h));
      }
    } else {
      for (const int h : cfg.initial_members) {
        if (h < 0 || static_cast<std::size_t>(h) >= cfg.n) {
          throw std::invalid_argument{"run_workload: initial member out of range"};
        }
        init.push_back(static_cast<consensus::MemberId>(h));
      }
    }
    view.emplace(std::move(init));
  }

  struct Slot {
    des::TimePoint start;
    std::optional<des::TimePoint> decided_at;
    std::int32_t rounds = 0;
    bool closed = false;  ///< first decision or give-up already handled
    std::size_t first_vid = 0;   ///< values carried: [first_vid, first_vid + count)
    std::size_t value_count = 0;
  };
  std::vector<Slot> slots;  // one per launched instance, in launch order
  slots.reserve(total);
  std::vector<ValueRecord> values(total);
  std::size_t closed_values = 0;
  std::size_t launched_instances = 0;
  std::size_t closed_instances = 0;
  std::size_t next_vid = 0;
  // Closed-loop continuation, installed below; null for the other modes.
  std::function<void(std::size_t)> on_value_closed;
  // First decision or give-up for instance `cid`; assigned below (the
  // launch path and the decide callbacks both need it).
  std::function<void(std::int32_t, std::optional<des::TimePoint>, std::int32_t)> close_instance;

  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(cfg.n); ++pid) {
    auto& proc = cluster.process(pid);
    fd::FailureDetector* fd_layer = nullptr;
    if (cfg.heartbeat_timeout_ms) {
      auto& hb = proc.add_layer<fd::HeartbeatFd>(
          fd::HeartbeatFdParams::from_timeout_ms(*cfg.heartbeat_timeout_ms));
      if (view) hb.set_membership(&*view);
      fd_layer = &hb;
    } else {
      fd_layer = &proc.add_layer<fd::StaticFd>(suspected);
    }
    auto& cons = proc.add_layer<ConsensusLayer>(*fd_layer);
    cons.set_gc_decided(true);  // memory bounded by the in-flight window
    cons.set_rotate_coordinators(cfg.rotate_coordinators);
    if (cfg.durable_log) {
      consensus::DurableLogConfig dcfg;
      dcfg.enabled = true;
      dcfg.append_latency_ms = cfg.durable_append_ms;
      cons.set_durable_log(dcfg);
    }
    if (view) cons.set_membership(&*view);
    cons.set_decide_callback([&close_instance](const consensus::DecisionEvent& ev) {
      // Simulated time is monotone, so the first callback carries the
      // globally first decision of the instance.
      close_instance(ev.cid, ev.at, ev.round);
    });
  }
  if (injector) injector->arm();
  if (cfg.initially_crashed >= 0) {
    cluster.crash_initially(static_cast<runtime::HostId>(cfg.initially_crashed));
  }
  if (view) {
    // Hosts outside the starting member set sit crashed until an add_host
    // control instance decides them in.
    for (runtime::HostId h = 0; h < static_cast<runtime::HostId>(cfg.n); ++h) {
      if (!view->is_member(h) && !cluster.process(h).crashed()) cluster.crash_initially(h);
    }
  }

  auto skew_rng = cluster.rng_stream("ntp-skew");
  auto arrival_rng = cluster.rng_stream("arrivals");
  auto think_rng = cluster.rng_stream("think");  // label-hashed: free when unused
  des::Simulator& sim = cluster.sim();

  // Closed batches waiting for a free pipeline slot, in close order.
  std::deque<std::vector<consensus::BatchedValue>> ready;
  auto window_free = [&] {
    return spec.pipeline_window == 0 ||
           launched_instances - closed_instances < spec.pipeline_window;
  };

  // Launches one consensus instance carrying `batch` at the current
  // simulated time: every process draws its NTP skew now, and liveness is
  // checked when the propose fires (exactly like the class-3 sequencer, so
  // a host recovering in between takes part).
  auto launch_batch = [&](std::vector<consensus::BatchedValue> batch) {
    const auto cid = static_cast<std::int32_t>(slots.size());
    ++launched_instances;
    slots.emplace_back();
    Slot& slot = slots.back();
    slot.start = sim.now();
    slot.first_vid = static_cast<std::size_t>(batch.front().value);
    slot.value_count = batch.size();
    std::vector<std::int64_t> payload;
    payload.reserve(batch.size());
    for (const consensus::BatchedValue& v : batch) {
      payload.push_back(v.value);
      auto& rec = values[static_cast<std::size_t>(v.value)];
      rec.cid = cid;
      rec.queue_ms = (slot.start - v.enqueued_at).to_ms();
    }
    const auto schedule_propose = [&](runtime::HostId pid) {
      auto& proc = cluster.process(pid);
      const des::TimePoint start =
          slot.start + consensus::draw_ntp_start_offset(skew_rng, spec.ntp_skew_ms);
      sim.schedule_at(start, [&proc, cid, payload] {
        if (!proc.crashed()) {
          proc.layer<ConsensusLayer>().propose(cid, payload);
        }
      });
    };
    if (view) {
      // Only current members propose; the instance pins this epoch's member
      // set at first touch and keeps it for life.
      for (const consensus::MemberId m : view->members()) {
        schedule_propose(static_cast<runtime::HostId>(m));
      }
    } else {
      for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(cfg.n); ++pid) {
        schedule_propose(pid);
      }
    }
    sim.schedule_at(slot.start + des::Duration::from_ms(spec.instance_timeout_ms),
                    [&close_instance, cid] {
                      close_instance(cid, std::nullopt, 0);  // give up: undecided
                    });
  };

  auto maybe_launch_ready = [&] {
    while (!ready.empty() && window_free()) {
      auto batch = std::move(ready.front());
      ready.pop_front();
      launch_batch(std::move(batch));
    }
  };

  consensus::BatcherConfig bcfg;
  bcfg.max_batch = std::max<std::size_t>(1, spec.batch_size);
  bcfg.linger_ms = spec.batch_linger_ms;
  consensus::Batcher batcher{
      sim, bcfg,
      [&](std::vector<consensus::BatchedValue> batch, consensus::Batcher::CloseReason) {
        if (ready.empty() && window_free()) {
          launch_batch(std::move(batch));
        } else {
          ready.push_back(std::move(batch));  // FIFO behind the window
        }
      }};

  // Membership-change control instances: agreed in-stream like any other
  // instance but carrying no client values; the engine applies the change
  // keyed on the instance id at the first decision (the negative payload is
  // inert, it only has to be agreed on).
  struct PendingChange {
    bool add = false;
    runtime::HostId host = 0;
  };
  std::map<std::int32_t, PendingChange> pending_changes;
  std::vector<WorkloadResult::MembershipChange> membership_changes;

  close_instance = [&](std::int32_t cid, std::optional<des::TimePoint> at,
                       std::int32_t rounds) {
    if (cid < 0 || static_cast<std::size_t>(cid) >= slots.size()) return;
    Slot& slot = slots[static_cast<std::size_t>(cid)];
    if (slot.closed) return;
    slot.closed = true;
    slot.decided_at = at;
    slot.rounds = rounds;
    ++closed_instances;
    const std::size_t first_vid = slot.first_vid;
    const std::size_t value_count = slot.value_count;
    // A gave-up value can be resubmitted: it stays open (the termination
    // predicate waits for its next carrier) and re-enters the batcher after
    // every other side effect of this close.
    const bool resubmit = !at && spec.resubmit_undecided && value_count > 0;
    if (!resubmit) closed_values += value_count;
    if (at) {
      const double consensus_ms = (*at - slot.start).to_ms();
      for (std::size_t vid = first_vid; vid < first_vid + value_count; ++vid) {
        values[vid].consensus_ms = consensus_ms;
      }
    }
    // `slot` may dangle past this point: resubmission and the pipeline
    // refill below can grow `slots`.
    if (const auto change = pending_changes.find(cid); change != pending_changes.end()) {
      const PendingChange pc = change->second;
      pending_changes.erase(change);
      if (at && view && pc.add != view->is_member(static_cast<consensus::MemberId>(pc.host))) {
        // View-synchronous switch at the decision instant: restart-then-add
        // so the joiner is alive when epoch listeners reset their reception
        // clocks; remove-then-crash so nobody suspects a still-member host.
        std::uint32_t epoch = 0;
        if (pc.add) {
          if (cluster.process(pc.host).crashed()) cluster.process(pc.host).restart();
          epoch = view->add(static_cast<consensus::MemberId>(pc.host));
        } else {
          epoch = view->remove(static_cast<consensus::MemberId>(pc.host));
          if (!cluster.process(pc.host).crashed()) cluster.process(pc.host).crash();
        }
        membership_changes.push_back({at->to_ms(), pc.add, static_cast<int>(pc.host), epoch});
      }
    }
    if (resubmit) {
      for (std::size_t vid = first_vid; vid < first_vid + value_count; ++vid) {
        batcher.submit(static_cast<std::int64_t>(vid));
      }
    } else if (on_value_closed) {
      // Fan the close back out to the clients, in value order.
      for (std::size_t vid = first_vid; vid < first_vid + value_count; ++vid) {
        on_value_closed(vid);
      }
    }
    maybe_launch_ready();
  };

  // Launches the control instance deciding `host` in or out of the group.
  // Bypasses the batcher and the pipeline window: a membership change must
  // not queue behind the very backlog it is meant to relieve.
  auto launch_control = [&](bool add, runtime::HostId host) {
    if (!view || add == view->is_member(static_cast<consensus::MemberId>(host))) return;
    const auto cid = static_cast<std::int32_t>(slots.size());
    ++launched_instances;
    slots.emplace_back();
    Slot& slot = slots.back();
    slot.start = sim.now();
    pending_changes.emplace(cid, PendingChange{add, host});
    const std::vector<std::int64_t> payload{
        add ? -(static_cast<std::int64_t>(host) + 1) : -(static_cast<std::int64_t>(host) + 1001)};
    for (const consensus::MemberId m : view->members()) {
      auto& proc = cluster.process(static_cast<runtime::HostId>(m));
      const des::TimePoint start =
          slot.start + consensus::draw_ntp_start_offset(skew_rng, spec.ntp_skew_ms);
      sim.schedule_at(start, [&proc, cid, payload] {
        if (!proc.crashed()) {
          proc.layer<ConsensusLayer>().propose(cid, payload);
        }
      });
    }
    sim.schedule_at(slot.start + des::Duration::from_ms(spec.instance_timeout_ms),
                    [&close_instance, cid] { close_instance(cid, std::nullopt, 0); });
  };

  // Submits the next client value of the stream at the current time.
  auto submit_value = [&] {
    const std::size_t vid = next_vid++;
    auto& rec = values[vid];
    rec.vid = static_cast<std::int64_t>(vid);
    rec.arrival_ms = sim.now().to_ms();
    batcher.submit(static_cast<std::int64_t>(vid));
  };

  const des::TimePoint stream_start =
      des::TimePoint::origin() + des::Duration::from_ms(spec.start_ms);
  double deadline_slack_ms = 0;  // mean inter-arrival headroom for open loop

  // Arrivals are scheduled rolling (each one chains the next), so the event
  // queue holds O(in-flight) entries, never the whole stream.
  std::function<void()> fire;
  switch (spec.arrivals) {
    case ArrivalProcess::kBurst:
      fire = [&] {
        submit_value();
        if (next_vid < total) {
          sim.schedule(des::Duration::from_ms(spec.separation_ms), fire);
        }
      };
      sim.schedule_at(stream_start, fire);
      break;

    case ArrivalProcess::kOpenLoop: {
      const double mean_ms = 1000.0 / spec.offered_per_s;
      deadline_slack_ms = mean_ms;
      fire = [&, mean_ms] {
        submit_value();
        if (next_vid < total) {
          sim.schedule(des::Duration::from_ms(arrival_rng.exponential_mean(mean_ms)), fire);
        }
      };
      sim.schedule_at(stream_start + des::Duration::from_ms(arrival_rng.exponential_mean(mean_ms)),
                      fire);
      break;
    }

    case ArrivalProcess::kClosedLoop: {
      const std::size_t clients = std::max<std::size_t>(1, spec.clients);
      std::size_t admitted = 0;  // values issued or promised to clients
      on_value_closed = [&, clients, admitted](std::size_t) mutable {
        // The client whose value just closed thinks, then submits the next
        // value of the stream. Fixed think preserves the historic
        // deterministic constant; exp draws from the dedicated substream.
        if (clients + admitted >= total) return;
        ++admitted;
        const double think = (spec.think_dist == ThinkTimeDist::kExp && spec.think_ms > 0)
                                 ? think_rng.exponential_mean(spec.think_ms)
                                 : spec.think_ms;
        sim.schedule(des::Duration::from_ms(think), [&] {
          if (next_vid < total) submit_value();
        });
      };
      sim.schedule_at(stream_start, [&, clients] {
        for (std::size_t c = 0; c < clients && next_vid < total; ++c) {
          submit_value();
        }
      });
      break;
    }
  }

  // Membership changes ride the plan's schedule: at each event's time the
  // engine launches a control instance among the then-current members.
  if (view && plan != nullptr) {
    for (const faults::FaultEvent& e : plan->events()) {
      if (e.kind != faults::FaultKind::kAddHost && e.kind != faults::FaultKind::kRemoveHost) {
        continue;
      }
      const bool add = e.kind == faults::FaultKind::kAddHost;
      const auto host = static_cast<runtime::HostId>(e.host);
      sim.schedule_at(des::TimePoint::origin() + des::Duration::from_ms(std::max(e.at_ms, 0.0)),
                      [&launch_control, add, host] { launch_control(add, host); });
    }
  }

  // Safety net only: every launched instance closes by its give-up
  // deadline and every arrival process keeps submitting, so the predicate
  // fires long before this.
  const double per_instance_ms = spec.instance_timeout_ms + spec.separation_ms + spec.think_ms +
                                 spec.batch_linger_ms + deadline_slack_ms + 1.0;
  const des::TimePoint far_deadline =
      stream_start +
      des::Duration::from_ms(4.0 * static_cast<double>(total) * per_instance_ms + 10'000.0);
  cluster.run_until([&] { return closed_values >= total; }, far_deadline);

  WorkloadResult out;
  out.instances.reserve(slots.size());
  for (std::size_t k = 0; k < slots.size(); ++k) {
    InstanceRecord rec;
    rec.cid = static_cast<std::int32_t>(k);
    rec.start_ms = slots[k].start.to_ms();
    if (slots[k].decided_at) {
      rec.latency_ms = (*slots[k].decided_at - slots[k].start).to_ms();
      rec.rounds = slots[k].rounds;
    }
    out.instances.push_back(rec);
  }
  // An instance is warm-up iff every value it carries is a warm-up value;
  // batches take consecutive vids, so warm-up instances are a prefix.
  out.warmup = 0;
  for (const Slot& slot : slots) {
    if (slot.first_vid + slot.value_count > spec.warmup) break;
    ++out.warmup;
  }
  out.stats = fold_workload_stats(out.instances, out.warmup, spec.batches);
  out.values = std::move(values);
  out.warmup_values = spec.warmup;
  out.value_stats = fold_value_stats(out.values, spec.warmup, spec.batches);
  if (!slots.empty()) {
    out.mean_batch_size =
        static_cast<double>(out.values.size()) / static_cast<double>(slots.size());
  }
  out.batches_closed_on_size = batcher.stats().closed_on_size;
  out.batches_closed_on_linger = batcher.stats().closed_on_linger;
  out.batches_closed_on_flush = batcher.stats().closed_on_flush;
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(cfg.n); ++pid) {
    const auto& cons = cluster.process(pid).layer<ConsensusLayer>();
    out.peak_active_instances = std::max(out.peak_active_instances,
                                         cons.peak_active_instances());
    out.instances_collected += cons.instances_collected();
    out.instances_replayed += cons.durable_log().stats().replayed;
    out.durable_appends += cons.durable_log().stats().appends;
  }
  out.membership_changes = std::move(membership_changes);
  out.events_processed = cluster.sim().events_processed();
  out.sim_duration_ms = cluster.now().to_ms();
  return out;
}

}  // namespace

WorkloadResult run_workload(const WorkloadConfig& cfg, const WorkloadSpec& spec) {
  switch (cfg.algorithm) {
    case Algorithm::kChandraToueg:
      return run_stream<consensus::CtConsensus>(cfg, spec);
    case Algorithm::kMostefaouiRaynal:
      return run_stream<consensus::MrConsensus>(cfg, spec);
  }
  throw std::invalid_argument{"run_workload: unknown algorithm"};
}

ExecOutcome run_one_shot(const WorkloadConfig& cfg, std::size_t k, std::uint64_t exec_seed) {
  switch (cfg.algorithm) {
    case Algorithm::kChandraToueg:
      return detail::run_one_consensus_execution<consensus::CtConsensus>(
          cfg.n, cfg.network, cfg.timers, cfg.initially_crashed, k, exec_seed, cfg.fault_plan,
          cfg.topology);
    case Algorithm::kMostefaouiRaynal:
      return detail::run_one_consensus_execution<consensus::MrConsensus>(
          cfg.n, cfg.network, cfg.timers, cfg.initially_crashed, k, exec_seed, cfg.fault_plan,
          cfg.topology);
  }
  throw std::invalid_argument{"run_one_shot: unknown algorithm"};
}

}  // namespace sanperf::core
