// The steady-state workload engine: a persistent emulated cluster serving
// a *stream* of consensus instances under an offered load.
//
// Every earlier harness in this repository built a fresh cluster, ran one
// consensus instance and tore everything down, so "load" could only mean
// back-to-back isolated runs. Here a declarative WorkloadSpec -- open-loop
// Poisson arrivals, closed-loop clients with think time, or a fixed burst
// -- drives one long-lived cluster through warmup + measured instances.
// The consensus layers multiplex the instances (instance id in every
// message, per-instance round state) and garbage-collect decided ones, so
// memory stays bounded by the in-flight window, not the stream length.
// Statistics use warm-up truncation and stats::BatchMeans confidence
// intervals (consecutive instances share the cluster and correlate).
//
// run_one_shot is the same engine degenerated to a single instance on a
// fresh cluster: byte-identical to the historic class-1/2 harness, so the
// legacy signatures (core::run_latency_execution, run_latency_execution_with,
// faults::run_fault_execution) are thin wrappers over it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.hpp"       // Algorithm
#include "core/measurement.hpp"  // ExecOutcome, MeasuredLatency
#include "des/simulator.hpp"     // QueueBackend
#include "faults/plan.hpp"
#include "net/params.hpp"
#include "stats/summary.hpp"
#include "topo/topology.hpp"

namespace sanperf::core {

/// The emulated system a workload runs against: cluster size, network and
/// timer models, consensus algorithm, failure detection, and faults.
struct WorkloadConfig {
  std::size_t n = 3;
  net::NetworkParams network = net::NetworkParams::defaults();
  net::TimerModel timers = net::TimerModel::defaults();
  /// Network topology (topo::Topology). Null or single-rack = the paper's
  /// shared hub, bit-exact with the legacy engine; multi-rack routes
  /// frames over per-link servers and scopes domain fault events
  /// (kill_rack, partition_switch, domain loss) to its rack tree.
  std::shared_ptr<const topo::Topology> topology;
  Algorithm algorithm = Algorithm::kChandraToueg;
  /// Live heartbeat detection (timeout T, Th = 0.7 T) when set; otherwise a
  /// static complete-and-accurate detector pre-suspecting the hosts down at
  /// the start. run_one_shot always uses the static detector (the legacy
  /// class-1/2 harness contract).
  std::optional<double> heartbeat_timeout_ms;
  /// Host crashed before the stream starts (-1 none).
  int initially_crashed = -1;
  /// Optional declarative fault schedule replayed on the cluster; must
  /// outlive the run.
  const faults::FaultPlan* fault_plan = nullptr;
  /// Rotate the round-1 coordinator per instance (`cid % n`) instead of
  /// pinning host 0 (see CtConsensus::set_rotate_coordinators). Off by
  /// default: paper-pinned scenarios and their goldens keep host 0.
  bool rotate_coordinators = false;
  /// Stable-storage write-ahead log (consensus/durable_log.hpp): estimate,
  /// round and decision records persist before they become visible, and a
  /// warm-restarted host replays its log to rejoin in-flight instances.
  /// Off (the default) is bit-exact with the volatile engine.
  bool durable_log = false;
  /// Modelled latency of one log append; back-to-back appends queue on a
  /// serialised device. 0 = durable but free, still bit-exact with volatile.
  double durable_append_ms = 0.0;
  /// Starting member set for dynamic membership (empty = all n hosts,
  /// fixed membership, the legacy code paths). Hosts outside the set begin
  /// crashed and join via add_host plan events, decided in-stream.
  std::vector<int> initial_members;
  /// Pending-set backend for the cluster's simulator (see ClusterConfig).
  /// Pure performance knob: both backends pop the same event order.
  des::QueueBackend queue_backend = des::default_queue_backend();
  std::uint64_t seed = 1;
};

/// How instances arrive at the cluster.
enum class ArrivalProcess {
  kBurst,       ///< fixed grid: instance k starts at k * separation_ms
  kOpenLoop,    ///< Poisson arrivals at offered_per_s, ignoring completions
  kClosedLoop,  ///< `clients` clients: propose, await decision, think, repeat
};

[[nodiscard]] const char* to_string(ArrivalProcess arrivals);

/// Closed-loop think-time distribution.
enum class ThinkTimeDist {
  kFixed,  ///< deterministic constant think_ms (the historic behaviour)
  kExp,    ///< exponential with mean think_ms, drawn from the "think" substream
};

[[nodiscard]] const char* to_string(ThinkTimeDist dist);

/// A declarative stream of client values batched into consensus instances.
///
/// warmup/measured count client *values* (the unit a client observes); with
/// batch_size = 1 every value is its own instance and the two views
/// coincide. An instance counts as warm-up iff all its values are warm-up.
struct WorkloadSpec {
  ArrivalProcess arrivals = ArrivalProcess::kBurst;
  /// Leading values excluded from every statistic (warm-up truncation).
  std::size_t warmup = 0;
  /// Values the statistics cover; warmup + measured arrive in total.
  std::size_t measured = 100;
  double offered_per_s = 100.0;  ///< open-loop Poisson arrival rate
  std::size_t clients = 1;       ///< closed-loop concurrent clients
  double think_ms = 0.0;         ///< closed-loop pause between decision and next propose
  double separation_ms = 0.0;    ///< burst inter-start gap (0 = one simultaneous burst)
  /// Stream start (leaves heartbeat detectors time to settle).
  double start_ms = 10.0;
  /// Half-width of the per-process NTP start-time window (paper: +-50 us).
  double ntp_skew_ms = 0.05;
  /// Give-up deadline per instance; an instance that cannot decide (e.g. a
  /// majority lost to faults) closes as undecided and, in closed loop,
  /// releases its client.
  double instance_timeout_ms = 5000.0;
  /// Batch-means batches the measured instances are grouped into.
  std::size_t batches = 20;
  /// --- Batching & pipelining ---
  /// Values per consensus instance; a batch closes when full (see
  /// consensus::Batcher). 1 = every value is its own instance (legacy).
  std::size_t batch_size = 1;
  /// Max-linger deadline for a partial batch, measured from its first
  /// value. Bounds per-value queueing delay; also drains the stream's tail.
  double batch_linger_ms = 0.0;
  /// Maximum concurrently in-flight consensus instances; closed batches
  /// queue behind the window. 0 = unlimited (the legacy engine admitted
  /// every arrival immediately).
  std::size_t pipeline_window = 0;
  /// Closed-loop think-time distribution (kFixed preserves bit-identical
  /// streams; kExp draws from the dedicated "think" RNG substream).
  ThinkTimeDist think_dist = ThinkTimeDist::kFixed;
  /// Re-enqueue the values of an instance that closes undecided (give-up
  /// deadline) through the batcher, so a stream under restarts still
  /// delivers every submitted value exactly once at the engine level (each
  /// value records the one instance that decided it). Off = historic
  /// semantics: a gave-up value stays undecided forever.
  bool resubmit_undecided = false;
};

/// One instance of the stream, in cid order.
struct InstanceRecord {
  std::int32_t cid = 0;
  double start_ms = 0;               ///< nominal common start (arrival)
  std::optional<double> latency_ms;  ///< first decision - start; empty = undecided
  std::int32_t rounds = 0;           ///< rounds used by the first decider

  [[nodiscard]] bool decided() const { return latency_ms.has_value(); }
  [[nodiscard]] double decide_ms() const { return start_ms + *latency_ms; }
};

/// One client value of the stream, in arrival order. End-to-end latency
/// decomposes exactly into the queueing delay spent waiting for the batch
/// to close (plus any pipeline-window wait) and the consensus latency of
/// the instance that carried it.
struct ValueRecord {
  std::int64_t vid = 0;     ///< arrival index
  std::int32_t cid = -1;    ///< carrying instance (-1: never launched)
  double arrival_ms = 0;    ///< submission time
  double queue_ms = 0;      ///< instance launch - submission
  std::optional<double> consensus_ms;  ///< first decision - launch; empty = undecided

  [[nodiscard]] bool decided() const { return consensus_ms.has_value(); }
  [[nodiscard]] double total_ms() const { return queue_ms + *consensus_ms; }
  [[nodiscard]] double decide_ms() const { return arrival_ms + total_ms(); }
};

/// Steady-state statistics over the measured *values* (warm-up truncated);
/// the per-client view of the stream. With batch_size = 1 this coincides
/// with WorkloadStats.
struct ValueStats {
  /// Batch-means CI over per-value end-to-end latency (queue + consensus).
  stats::MeanCI latency_ci;
  double mean_latency_ms = 0;
  double p95_latency_ms = 0;
  double mean_queue_ms = 0;    ///< mean queueing delay of decided values
  double offered_per_s = 0;    ///< realised value arrival rate
  double delivered_per_s = 0;  ///< decided values per second of measured window
  double duration_ms = 0;
  std::size_t decided = 0;
  std::size_t undecided = 0;
};

/// Steady-state statistics over the measured window (warm-up truncated).
struct WorkloadStats {
  /// Batch-means CI over per-instance latency, in cid order. Falls back to
  /// a plain summary CI when fewer than one full batch decided.
  stats::MeanCI latency_ci;
  /// Batch-means CI over per-batch delivered rates (instances / batch
  /// window).
  stats::MeanCI throughput_ci;
  double mean_latency_ms = 0;
  double p95_latency_ms = 0;
  double offered_per_s = 0;    ///< realised arrival rate over the measured window
  double delivered_per_s = 0;  ///< decided instances per second of measured window
  double duration_ms = 0;      ///< first measured arrival to last measured decision
  std::size_t decided = 0;
  std::size_t undecided = 0;
};

struct WorkloadResult {
  std::vector<InstanceRecord> instances;  ///< warm-up first, then measured
  /// Warm-up *instances* (instances whose values are all warm-up values);
  /// equals the spec's warmup at batch_size = 1.
  std::size_t warmup = 0;
  WorkloadStats stats;
  /// Per client value, in arrival order (warmup_values first).
  std::vector<ValueRecord> values;
  std::size_t warmup_values = 0;
  ValueStats value_stats;
  /// Values per launched instance (1.0 exactly when unbatched).
  double mean_batch_size = 0;
  std::uint64_t batches_closed_on_size = 0;
  std::uint64_t batches_closed_on_linger = 0;
  std::uint64_t batches_closed_on_flush = 0;
  /// Max per-process concurrently retained instances (the GC bound).
  std::size_t peak_active_instances = 0;
  /// Decided instances garbage-collected, summed over processes.
  std::uint64_t instances_collected = 0;
  /// One entry per applied membership change, in decision order (dynamic
  /// membership only; the change decided in-stream as a control instance).
  struct MembershipChange {
    double at_ms = 0;          ///< decision instant the epoch switched
    bool added = false;        ///< add_host vs remove_host
    int host = -1;
    std::uint32_t epoch = 0;   ///< epoch installed by the change
  };
  std::vector<MembershipChange> membership_changes;
  /// Durable-log totals summed over processes (0 when the log is off).
  std::uint64_t instances_replayed = 0;
  std::uint64_t durable_appends = 0;
  /// Simulator events executed over the whole run (warm-up included) and
  /// the simulated horizon reached -- the denominators of the engine
  /// throughput figures the scaling sweep reports.
  std::uint64_t events_processed = 0;
  double sim_duration_ms = 0;

  /// Measured-window latencies in the campaign-facing shape.
  [[nodiscard]] MeasuredLatency measured_latency() const;
};

/// Runs `spec` against one persistent cluster described by `cfg`.
[[nodiscard]] WorkloadResult run_workload(const WorkloadConfig& cfg, const WorkloadSpec& spec);

/// One-shot mode: a single instance `k` on a fresh cluster seeded
/// `exec_seed`, byte-identical to the historic class-1/2 harness (and to
/// the fault harness when cfg.fault_plan is set). The legacy wrappers all
/// route here.
[[nodiscard]] ExecOutcome run_one_shot(const WorkloadConfig& cfg, std::size_t k,
                                       std::uint64_t exec_seed);

/// The pure statistics fold behind WorkloadResult.stats: warm-up
/// truncation, batch-means CIs, realised offered/delivered rates.
[[nodiscard]] WorkloadStats fold_workload_stats(const std::vector<InstanceRecord>& instances,
                                                std::size_t warmup, std::size_t batches);

/// The per-value counterpart behind WorkloadResult.value_stats: warm-up
/// truncation over the first `warmup` values, batch-means CI over
/// end-to-end (queue + consensus) latencies.
[[nodiscard]] ValueStats fold_value_stats(const std::vector<ValueRecord>& values,
                                          std::size_t warmup, std::size_t batches);

/// Measured instances bucketed against a fault window [start_ms, end_ms):
/// same semantics as faults::split_by_window ("after" starts at or past the
/// window's end, "before" decided strictly earlier, the rest "during").
struct PhasedWorkload {
  MeasuredLatency before, during, after;
};

[[nodiscard]] PhasedWorkload split_workload_by_window(const WorkloadResult& result,
                                                      double start_ms, double end_ms);

}  // namespace sanperf::core
