#include "des/event_queue.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace sanperf::des {

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNpos) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNpos;
    return slot;
  }
  slots_.emplace_back();
  slots_.back().gen = gen_floor_;
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.action.reset();
  ++s.gen;  // stale every EventId handed out for this occupancy
  s.heap_pos = kNpos;
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::sift_up(std::size_t pos) {
  const std::uint32_t slot = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (!earlier(slot, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = slot;
  slots_[slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void EventQueue::sift_down(std::size_t pos) {
  const std::uint32_t slot = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], slot)) break;
    heap_[pos] = heap_[child];
    slots_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = child;
  }
  heap_[pos] = slot;
  slots_[slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void EventQueue::heap_remove(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    slots_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    heap_.pop_back();
    // The relocated entry may need to move either way.
    sift_down(pos);
    sift_up(pos);
  } else {
    heap_.pop_back();
  }
}

EventId EventQueue::push(TimePoint at, Action action) {
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.at = at;
  s.seq = next_seq_++;
  s.action = std::move(action);
  SANPERF_AUDIT_ONLY(s.audit_live_gen = s.gen;)
  heap_.push_back(slot);
  s.heap_pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
#if SANPERF_AUDIT_ENABLED
  // Periodic O(n) self-check, after the slot is fully linked in.
  if (++audit_ops_ % kAuditPeriod == 0) audit_check_heap();
#endif
  return make_id(slot, s.gen);
}

bool EventQueue::cancel(EventId id) {
  if (!pending(id)) return false;
  const std::uint32_t slot = slot_of(id);
  heap_remove(slots_[slot].heap_pos);
  release_slot(slot);
  return true;
}

TimePoint EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error{"EventQueue::next_time on empty queue"};
  return slots_[heap_.front()].at;
}

EventQueue::Popped EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error{"EventQueue::pop on empty queue"};
  const std::uint32_t slot = heap_.front();
  Slot& s = slots_[slot];
  // The slot about to fire must be alive: at the heap top, in its pushed
  // generation (a bumped generation means the event was released yet would
  // still run) and holding a callable action.
  SANPERF_AUDIT_CHECK("des.no_dead_slot_fire",
                      s.heap_pos == 0 && s.gen == s.audit_live_gen && static_cast<bool>(s.action),
                      "slot " + std::to_string(slot) + " gen " + std::to_string(s.gen) +
                          " heap_pos " + std::to_string(s.heap_pos));
#if SANPERF_AUDIT_ENABLED
  if (++audit_ops_ % kAuditPeriod == 0) audit_check_heap();
#endif
  Popped out{s.at, make_id(slot, s.gen), std::move(s.action)};
  heap_remove(0);
  release_slot(slot);
  return out;
}

void EventQueue::clear() {
  // Release every live slot; each release bumps the generation so stale
  // ids cannot alias the next occupancy.
  for (const std::uint32_t slot : heap_) release_slot(slot);
  heap_.clear();
}

#if SANPERF_AUDIT_ENABLED
void EventQueue::audit_check_heap() const {
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const std::uint32_t slot = heap_[i];
    SANPERF_AUDIT_CHECK("des.heap_index_consistency",
                        slot < slots_.size() && slots_[slot].heap_pos == i,
                        "heap[" + std::to_string(i) + "] = slot " + std::to_string(slot));
    SANPERF_AUDIT_CHECK("des.no_dead_slot_fire",
                        slots_[slot].gen == slots_[slot].audit_live_gen &&
                            static_cast<bool>(slots_[slot].action),
                        "heap-resident slot " + std::to_string(slot) + " is dead");
    if (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      SANPERF_AUDIT_CHECK("des.heap_index_consistency", earlier(heap_[parent], slot),
                          "heap order violated between " + std::to_string(parent) + " and " +
                              std::to_string(i));
    }
  }
  // The free list must account for exactly the slots not in the heap.
  std::size_t free_count = 0;
  for (std::uint32_t f = free_head_; f != kNpos; f = slots_[f].next_free) {
    SANPERF_AUDIT_CHECK("des.heap_index_consistency",
                        f < slots_.size() && slots_[f].heap_pos == kNpos,
                        "free-listed slot " + std::to_string(f) + " is heap-resident");
    ++free_count;
    if (free_count > slots_.size()) break;  // cycle; the count check below fires
  }
  SANPERF_AUDIT_CHECK("des.heap_index_consistency", free_count + heap_.size() == slots_.size(),
                      "free " + std::to_string(free_count) + " + live " +
                          std::to_string(heap_.size()) + " != slots " +
                          std::to_string(slots_.size()));
}
#endif

void EventQueue::shrink_to_fit() {
  // Only tail slots can go: interior slots are addressed by index from the
  // heap and from outstanding EventIds, so compaction would remap them.
  while (!slots_.empty() && slots_.back().heap_pos == kNpos) {
    // A handle to the dropped slot carries gen <= gen, so any slot later
    // re-created at this index must start strictly above it.
    if (slots_.back().gen >= gen_floor_) gen_floor_ = slots_.back().gen + 1;
    slots_.pop_back();
  }
  // The free list may reference dropped slots; rebuild it over the
  // survivors in ascending index order.
  free_head_ = kNpos;
  std::uint32_t* tail = &free_head_;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].heap_pos != kNpos) continue;
    *tail = i;
    tail = &slots_[i].next_free;
  }
  *tail = kNpos;
  slots_.shrink_to_fit();
  heap_.shrink_to_fit();
}

}  // namespace sanperf::des
