#include "des/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace sanperf::des {

EventId EventQueue::push(TimePoint at, Action action) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(action)});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Cancellation is lazy: the heap entry stays until it reaches the top.
  return pending_.erase(id) > 0;
}

void EventQueue::drop_dead_prefix() const {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) heap_.pop();
}

TimePoint EventQueue::next_time() const {
  drop_dead_prefix();
  if (heap_.empty()) throw std::logic_error{"EventQueue::next_time on empty queue"};
  return heap_.top().at;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead_prefix();
  if (heap_.empty()) throw std::logic_error{"EventQueue::pop on empty queue"};
  const Entry& top = heap_.top();
  Popped out{top.at, top.id, std::move(top.action)};
  heap_.pop();
  pending_.erase(out.id);
  return out;
}

void EventQueue::clear() {
  heap_ = {};
  pending_.clear();
}

}  // namespace sanperf::des
