// A cancellable pending-event set ordered by (time, insertion sequence).
//
// The insertion-sequence tie-break makes simulations deterministic: two
// events scheduled for the same instant always fire in scheduling order,
// independent of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "des/time.hpp"

namespace sanperf::des {

/// Opaque handle identifying a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// Sentinel returned when no event exists.
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Adds an event firing at `at`. Returns a handle for cancellation.
  EventId push(TimePoint at, Action action);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed. Amortised O(1).
  bool cancel(EventId id);

  /// True iff the event is scheduled and not yet fired or cancelled.
  [[nodiscard]] bool pending(EventId id) const { return pending_.contains(id); }

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const { return pending_.empty(); }

  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// Firing time of the earliest live event. Requires !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// Removes and returns the earliest live event. Requires !empty().
  struct Popped {
    TimePoint at;
    EventId id;
    Action action;
  };
  Popped pop();

  /// Removes every pending event.
  void clear();

 private:
  struct Entry {
    TimePoint at;
    EventId id = kInvalidEventId;
    // Heap payloads are moved out on pop; mutable so the action can be
    // extracted from the priority_queue's const top().
    mutable Action action;

    // priority_queue is a max-heap; invert so earliest (time, id) wins.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  /// Pops heap entries whose id is no longer pending (cancelled).
  void drop_dead_prefix() const;

  mutable std::priority_queue<Entry> heap_;
  std::unordered_set<EventId> pending_;
  EventId next_id_ = 1;
};

}  // namespace sanperf::des
