// A cancellable pending-event set ordered by (time, insertion sequence).
//
// The insertion-sequence tie-break makes simulations deterministic: two
// events scheduled for the same instant always fire in scheduling order,
// independent of heap internals.
//
// Storage layout (the DES hot path -- every simulated event passes here):
//   * events live in a slab of generation-stamped slots; freed slots go on
//     a free list and are reused, so steady-state push/cancel/pop performs
//     no heap allocation;
//   * an indexed binary heap of slot indices orders the pending set; each
//     slot tracks its heap position, so cancel() is a true O(log n)
//     removal (no lazy-deletion churn of dead entries);
//   * callables are stored in-place inside the slot (EventAction's small
//     buffer); only oversized captures fall back to the heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/audit.hpp"
#include "des/time.hpp"

namespace sanperf::des {

/// Opaque handle identifying a scheduled event; usable to cancel it.
/// Encodes (slot generation, slot index): a handle goes stale the moment
/// its event fires or is cancelled, even if the slot is reused later.
using EventId = std::uint64_t;

/// Sentinel returned when no event exists.
inline constexpr EventId kInvalidEventId = 0;

/// Move-only callable with inline storage sized for the simulator's event
/// closures (a this-pointer plus a couple of words, or a captured
/// std::function). Construction from a small callable performs no heap
/// allocation; larger callables degrade gracefully to a heap-held copy.
class EventAction {
 public:
  /// Covers [this + id], [ptr, packet-by-value] and [this, std::function]
  /// captures used across the runtime layers.
  static constexpr std::size_t kInlineBytes = 64;

  EventAction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventAction> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventAction(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    emplace(std::forward<F>(f));
  }

  EventAction(EventAction&& other) noexcept { move_from(other); }
  EventAction& operator=(EventAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventAction(const EventAction&) = delete;
  EventAction& operator=(const EventAction&) = delete;
  ~EventAction() { reset(); }

  /// Invokes the stored callable; throws like std::function on empty (or
  /// moved-from) actions.
  void operator()() {
    if (vtable_ == nullptr) throw std::bad_function_call{};
    vtable_->invoke(buf_);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs the payload into `dst` and destroys the source.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  static constexpr bool fits_inline_v = sizeof(F) <= kInlineBytes &&
                                        alignof(F) <= alignof(std::max_align_t) &&
                                        std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  static const VTable* inline_vtable() {
    static const VTable vt{
        [](void* p) { (*static_cast<F*>(p))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) F(std::move(*static_cast<F*>(src)));
          static_cast<F*>(src)->~F();
        },
        [](void* p) noexcept { static_cast<F*>(p)->~F(); },
    };
    return &vt;
  }

  template <typename F>
  static const VTable* heap_vtable() {
    static const VTable vt{
        [](void* p) { (**static_cast<F**>(p))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) F*(*static_cast<F**>(src));
        },
        [](void* p) noexcept { delete *static_cast<F**>(p); },
    };
    return &vt;
  }

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vtable_ = inline_vtable<D>();
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vtable_ = heap_vtable<D>();
    }
  }

  void move_from(EventAction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(buf_, other.buf_);
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

class EventQueue {
 public:
  using Action = EventAction;

  /// Adds an event firing at `at`. Returns a handle for cancellation.
  EventId push(TimePoint at, Action action);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed. True O(log n) removal: the
  /// slot is recycled immediately and no dead entry lingers in the heap.
  bool cancel(EventId id);

  /// True iff the event is scheduled and not yet fired or cancelled.
  [[nodiscard]] bool pending(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot < slots_.size() && slots_[slot].gen == gen_of(id) &&
           slots_[slot].heap_pos != kNpos;
  }

  /// True when no live event remains.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Firing time of the earliest live event. Requires !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// Removes and returns the earliest live event. Requires !empty().
  struct Popped {
    TimePoint at;
    EventId id;
    Action action;
  };
  Popped pop();

  /// Removes every pending event. Slab capacity is retained; every
  /// outstanding EventId goes stale.
  void clear();

  /// Releases slab capacity retained from past high-water marks: drops
  /// every free slot at the tail of the slab (after clear() that is the
  /// whole slab) and returns the memory to the allocator. Live events are
  /// untouched; free slots buried under live ones stay until those fire.
  /// Stale EventIds remain stale: generations of dropped slots are folded
  /// into a floor that future slot allocations start from, so an old
  /// handle can never alias a re-created slot.
  void shrink_to_fit();

  /// clear() + shrink_to_fit(): the clear-with-shrink policy for
  /// long-lived simulators with bursty schedules.
  void clear_and_shrink() {
    clear();
    shrink_to_fit();
  }

  /// Slots ever allocated (live + free). Exposed so tests and benches can
  /// assert steady-state slot reuse (no slab growth under churn).
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

#if SANPERF_AUDIT_ENABLED
  /// Full O(n) structural self-check: every heap entry back-references its
  /// position, the heap order holds, live slots carry a live generation and
  /// a callable action, and the free list accounts for exactly the slots
  /// not in the heap. Runs automatically every kAuditPeriod push/pop in
  /// audit builds; callable directly from tests.
  void audit_check_heap() const;

  // Test-only corruption backdoors for the negative audit tests: each
  // injects exactly the inconsistency one invariant class guards against.
  /// Rewrites a pending event's firing time WITHOUT re-sifting the heap.
  void audit_corrupt_slot_time(EventId id, TimePoint at) { slots_[slot_of(id)].at = at; }
  /// Bumps a pending slot's generation while it stays heap-resident: the
  /// slot is dead (its handle is stale) yet would still fire.
  void audit_corrupt_kill_slot(EventId id) { ++slots_[slot_of(id)].gen; }
  /// Breaks a pending slot's heap back-reference.
  void audit_corrupt_heap_pos(EventId id) { ++slots_[slot_of(id)].heap_pos; }
#endif

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  struct Slot {
    TimePoint at;
    std::uint64_t seq = 0;         ///< insertion order; (at, seq) orders the heap
    Action action;
    std::uint32_t gen = 0;         ///< bumped on release; stales old EventIds
    std::uint32_t heap_pos = kNpos;  ///< index into heap_, kNpos when free
    std::uint32_t next_free = kNpos;
#if SANPERF_AUDIT_ENABLED
    /// Generation the slot was pushed with: while heap-resident, gen must
    /// still equal it -- a mismatch means a dead-generation slot would fire.
    std::uint32_t audit_live_gen = 0;
#endif
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | (slot + 1);
  }
  static std::uint32_t slot_of(EventId id) { return static_cast<std::uint32_t>(id) - 1; }
  static std::uint32_t gen_of(EventId id) { return static_cast<std::uint32_t>(id >> 32); }

  [[nodiscard]] bool earlier(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.at != sb.at) return sa.at < sb.at;
    return sa.seq < sb.seq;
  }

  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  /// Detaches the heap entry at `pos` and restores the heap invariant.
  void heap_remove(std::size_t pos);
  std::uint32_t acquire_slot();
  /// Destroys the slot's action, bumps its generation and free-lists it.
  void release_slot(std::uint32_t slot);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> heap_;  ///< slot indices, binary min-heap
  std::uint32_t free_head_ = kNpos;
  std::uint32_t gen_floor_ = 0;  ///< new slots start here; > any dropped gen
  std::uint64_t next_seq_ = 0;
#if SANPERF_AUDIT_ENABLED
  static constexpr std::uint64_t kAuditPeriod = 1024;  ///< ops between self-checks
  mutable std::uint64_t audit_ops_ = 0;
#endif
};

}  // namespace sanperf::des
