#include "des/ladder_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace sanperf::des {

std::uint32_t LadderQueue::acquire_slot() {
  if (free_head_ != kNpos) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNpos;
    return slot;
  }
  slots_.emplace_back();
  slots_.back().gen = gen_floor_;
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void LadderQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.action.reset();
  ++s.gen;  // stale every EventId handed out for this occupancy
  s.where = Where::kFree;
  s.pos = kNpos;
  s.next_free = free_head_;
  free_head_ = slot;
}

void LadderQueue::swap_remove(std::vector<std::uint32_t>& tier, std::uint32_t pos) {
  const std::uint32_t moved = tier.back();
  tier[pos] = moved;
  slots_[moved].pos = pos;  // self-assignment when pos is last; harmless
  tier.pop_back();
}

void LadderQueue::push_top(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.where = Where::kTop;
  s.pos = static_cast<std::uint32_t>(top_.size());
  top_.push_back(slot);
}

void LadderQueue::insert_bottom(std::uint32_t slot) {
  // bottom_ is sorted descending by (at, seq): find the first entry the new
  // event precedes-from-the-back, i.e. the first one earlier than it.
  const auto it = std::lower_bound(
      bottom_.begin(), bottom_.end(), slot,
      [this](std::uint32_t e, std::uint32_t v) { return earlier(v, e); });
  const auto idx = static_cast<std::size_t>(it - bottom_.begin());
  bottom_.insert(it, slot);
  slots_[slot].where = Where::kBottom;
  for (std::size_t i = idx; i < bottom_.size(); ++i) {
    slots_[bottom_[i]].pos = static_cast<std::uint32_t>(i);
  }
}

void LadderQueue::place(std::uint32_t slot) {
  const std::int64_t at = slots_[slot].at.ns();
  if (at < bottom_limit_) {
    insert_bottom(slot);
    return;
  }
  if (depth_ == 0 || at >= top_floor_) {
    push_top(slot);
    return;
  }
  // The active rungs tile [bottom_limit_, top_floor_) contiguously from the
  // innermost out, so the first rung whose end exceeds `at` owns it.
  for (std::size_t d = depth_; d-- > 0;) {
    Rung& r = rungs_[d];
    if (at >= r.end_ns) continue;
    const auto b = static_cast<std::size_t>((at - r.start_ns) / r.width_ns);
    Slot& s = slots_[slot];
    s.where = Where::kRung;
    s.rung = static_cast<std::uint16_t>(d);
    s.bucket = static_cast<std::uint32_t>(b);
    s.pos = static_cast<std::uint32_t>(r.buckets[b].size());
    r.buckets[b].push_back(slot);
    return;
  }
  push_top(slot);  // unreachable: top_floor_ == rungs_[0].end_ns
}

void LadderQueue::reset_window() {
  depth_ = 0;
  bottom_limit_ = kFloorMin;
  top_floor_ = kFloorMin;
}

void LadderQueue::seed_from_top() {
  std::int64_t min_ns = slots_[top_.front()].at.ns();
  std::int64_t max_ns = min_ns;
  for (const std::uint32_t slot : top_) {
    const std::int64_t at = slots_[slot].at.ns();
    min_ns = std::min(min_ns, at);
    max_ns = std::max(max_ns, at);
  }
  const std::int64_t range = max_ns - min_ns + 1;
  const std::int64_t width = std::max<std::int64_t>(1, (range + kRungBuckets - 1) / kRungBuckets);
  const std::int64_t nb = (range + width - 1) / width;
  if (rungs_.empty()) rungs_.emplace_back();
  Rung& r = rungs_.front();
  r.start_ns = min_ns;
  r.width_ns = width;
  r.end_ns = min_ns + nb * width;
  r.cur = 0;
  r.buckets.resize(static_cast<std::size_t>(nb));
  depth_ = 1;
  bottom_limit_ = min_ns;
  top_floor_ = r.end_ns;
  for (const std::uint32_t slot : top_) {
    Slot& s = slots_[slot];
    const auto b = static_cast<std::size_t>((s.at.ns() - min_ns) / width);
    s.where = Where::kRung;
    s.rung = 0;
    s.bucket = static_cast<std::uint32_t>(b);
    s.pos = static_cast<std::uint32_t>(r.buckets[b].size());
    r.buckets[b].push_back(slot);
  }
  top_.clear();
}

void LadderQueue::spawn_rung(std::size_t parent) {
  // Compute the child's window before any rungs_ growth: emplace_back may
  // relocate the vector and invalidate references into it.
  const std::int64_t c_start = rungs_[parent].cur_start_ns();
  const std::int64_t span =
      std::min(c_start + rungs_[parent].width_ns, rungs_[parent].end_ns) - c_start;
  const std::int64_t c_width = std::max<std::int64_t>(1, (span + kRungBuckets - 1) / kRungBuckets);
  const std::int64_t nb = (span + c_width - 1) / c_width;
  std::vector<std::uint32_t> moved = std::move(rungs_[parent].buckets[rungs_[parent].cur]);
  rungs_[parent].buckets[rungs_[parent].cur].clear();
  ++rungs_[parent].cur;  // the bucket's events now live one level down
  if (rungs_.size() <= depth_) rungs_.emplace_back();
  Rung& c = rungs_[depth_];
  c.start_ns = c_start;
  c.width_ns = c_width;
  // Clamp to the parent bucket's true extent: the child must hand control
  // back exactly at the parent's next bucket or same-instant events could
  // fire out of insertion order across the seam.
  c.end_ns = c_start + span;
  c.cur = 0;
  c.buckets.resize(static_cast<std::size_t>(nb));
  ++depth_;
  for (const std::uint32_t slot : moved) {
    Slot& s = slots_[slot];
    const auto b = static_cast<std::size_t>((s.at.ns() - c_start) / c_width);
    s.rung = static_cast<std::uint16_t>(depth_ - 1);
    s.bucket = static_cast<std::uint32_t>(b);
    s.pos = static_cast<std::uint32_t>(c.buckets[b].size());
    c.buckets[b].push_back(slot);
  }
  // bottom_limit_ is unchanged: the child's cur_start equals the parent
  // bucket's start, which was the previous innermost cur_start.
}

void LadderQueue::refill_bottom() {
  while (bottom_.empty()) {
    if (depth_ == 0) seed_from_top();
    Rung& r = rungs_[depth_ - 1];
    while (r.cur < r.buckets.size() && r.buckets[r.cur].empty()) ++r.cur;
    if (r.cur >= r.buckets.size()) {
      --depth_;
      bottom_limit_ = depth_ == 0 ? top_floor_ : rungs_[depth_ - 1].cur_start_ns();
      continue;
    }
    bottom_limit_ = r.cur_start_ns();
    std::vector<std::uint32_t>& bucket = r.buckets[r.cur];
    if (bucket.size() > kBottomThreshold && r.width_ns > 1 && depth_ < kMaxRungs) {
      spawn_rung(depth_ - 1);
      continue;
    }
    // Small enough (or at 1 ns resolution): sort descending and make it
    // the bottom tier. swap() recycles the two vectors' capacity.
    std::sort(bucket.begin(), bucket.end(),
              [this](std::uint32_t a, std::uint32_t b) { return earlier(b, a); });
    std::swap(bottom_, bucket);
    ++r.cur;
    bottom_limit_ = r.cur_start_ns();
    for (std::size_t i = 0; i < bottom_.size(); ++i) {
      Slot& s = slots_[bottom_[i]];
      s.where = Where::kBottom;
      s.pos = static_cast<std::uint32_t>(i);
    }
  }
}

EventId LadderQueue::push(TimePoint at, Action action) {
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.at = at;
  s.seq = next_seq_++;
  s.action = std::move(action);
  SANPERF_AUDIT_ONLY(s.audit_live_gen = s.gen;)
  place(slot);
  ++live_;
#if SANPERF_AUDIT_ENABLED
  // Periodic O(n) self-check, after the slot is fully linked in.
  if (++audit_ops_ % kAuditPeriod == 0) audit_check_ladder();
#endif
  return make_id(slot, s.gen);
}

bool LadderQueue::cancel(EventId id) {
  if (!pending(id)) return false;
  const std::uint32_t slot = slot_of(id);
  Slot& s = slots_[slot];
  switch (s.where) {
    case Where::kTop:
      swap_remove(top_, s.pos);
      break;
    case Where::kRung:
      swap_remove(rungs_[s.rung].buckets[s.bucket], s.pos);
      break;
    case Where::kBottom:
      // The sorted tier cannot swap-remove; shift the (short) tail.
      bottom_.erase(bottom_.begin() + s.pos);
      for (std::size_t i = s.pos; i < bottom_.size(); ++i) {
        slots_[bottom_[i]].pos = static_cast<std::uint32_t>(i);
      }
      break;
    case Where::kFree:
      break;  // unreachable: pending() filtered it
  }
  release_slot(slot);
  --live_;
  if (live_ == 0) reset_window();
  return true;
}

TimePoint LadderQueue::next_time() {
  if (live_ == 0) throw std::logic_error{"LadderQueue::next_time on empty queue"};
  if (bottom_.empty()) refill_bottom();
  return slots_[bottom_.back()].at;
}

LadderQueue::Popped LadderQueue::pop() {
  if (live_ == 0) throw std::logic_error{"LadderQueue::pop on empty queue"};
  if (bottom_.empty()) refill_bottom();
  const std::uint32_t slot = bottom_.back();
  Slot& s = slots_[slot];
  // The slot about to fire must be alive: at the back of the sorted bottom
  // tier, in its pushed generation and holding a callable action.
  SANPERF_AUDIT_CHECK("des.no_dead_slot_fire",
                      s.where == Where::kBottom &&
                          s.pos == static_cast<std::uint32_t>(bottom_.size() - 1) &&
                          s.gen == s.audit_live_gen && static_cast<bool>(s.action),
                      "slot " + std::to_string(slot) + " gen " + std::to_string(s.gen));
#if SANPERF_AUDIT_ENABLED
  if (++audit_ops_ % kAuditPeriod == 0) audit_check_ladder();
#endif
  bottom_.pop_back();
  Popped out{s.at, make_id(slot, s.gen), std::move(s.action)};
  release_slot(slot);
  --live_;
  if (live_ == 0) reset_window();
  return out;
}

void LadderQueue::clear() {
  // Release every live slot; each release bumps the generation so stale
  // ids cannot alias the next occupancy.
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].where != Where::kFree) release_slot(i);
  }
  top_.clear();
  bottom_.clear();
  for (Rung& r : rungs_) {
    for (std::vector<std::uint32_t>& b : r.buckets) b.clear();
  }
  live_ = 0;
  reset_window();
}

void LadderQueue::shrink_to_fit() {
  // Only tail slots can go: interior slots are addressed by index from the
  // tiers and from outstanding EventIds, so compaction would remap them.
  while (!slots_.empty() && slots_.back().where == Where::kFree) {
    // A handle to the dropped slot carries gen <= gen, so any slot later
    // re-created at this index must start strictly above it.
    if (slots_.back().gen >= gen_floor_) gen_floor_ = slots_.back().gen + 1;
    slots_.pop_back();
  }
  // The free list may reference dropped slots; rebuild it over the
  // survivors in ascending index order.
  free_head_ = kNpos;
  std::uint32_t* tail = &free_head_;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].where != Where::kFree) continue;
    *tail = i;
    tail = &slots_[i].next_free;
  }
  *tail = kNpos;
  slots_.shrink_to_fit();
  top_.shrink_to_fit();
  bottom_.shrink_to_fit();
  rungs_.resize(depth_);  // drop recycled storage of inactive depths
  rungs_.shrink_to_fit();
}

#if SANPERF_AUDIT_ENABLED
void LadderQueue::audit_check_ladder() const {
  const auto check_live = [this](std::uint32_t slot, const char* tier) {
    SANPERF_AUDIT_CHECK("des.no_dead_slot_fire",
                        slots_[slot].gen == slots_[slot].audit_live_gen &&
                            static_cast<bool>(slots_[slot].action),
                        std::string{tier} + "-resident slot " + std::to_string(slot) + " is dead");
  };
  std::size_t tiered = 0;
  for (std::size_t i = 0; i < bottom_.size(); ++i) {
    const std::uint32_t slot = bottom_[i];
    SANPERF_AUDIT_CHECK("des.ladder_consistency",
                        slot < slots_.size() && slots_[slot].where == Where::kBottom &&
                            slots_[slot].pos == i,
                        "bottom[" + std::to_string(i) + "] = slot " + std::to_string(slot));
    check_live(slot, "bottom");
    SANPERF_AUDIT_CHECK("des.ladder_consistency", slots_[slot].at.ns() < bottom_limit_,
                        "bottom slot " + std::to_string(slot) + " at or past bottom_limit");
    if (i + 1 < bottom_.size()) {
      SANPERF_AUDIT_CHECK("des.ladder_consistency", earlier(bottom_[i + 1], bottom_[i]),
                          "bottom order violated at " + std::to_string(i));
    }
  }
  tiered += bottom_.size();
  for (std::size_t i = 0; i < top_.size(); ++i) {
    const std::uint32_t slot = top_[i];
    SANPERF_AUDIT_CHECK("des.ladder_consistency",
                        slot < slots_.size() && slots_[slot].where == Where::kTop &&
                            slots_[slot].pos == i,
                        "top[" + std::to_string(i) + "] = slot " + std::to_string(slot));
    check_live(slot, "top");
    SANPERF_AUDIT_CHECK("des.ladder_consistency", slots_[slot].at.ns() >= top_floor_,
                        "top slot " + std::to_string(slot) + " below top_floor");
  }
  tiered += top_.size();
  for (std::size_t d = 0; d < depth_; ++d) {
    const Rung& r = rungs_[d];
    SANPERF_AUDIT_CHECK("des.ladder_consistency",
                        r.width_ns >= 1 && r.cur <= r.buckets.size() && r.start_ns < r.end_ns,
                        "rung " + std::to_string(d) + " malformed window");
    for (std::size_t b = 0; b < r.buckets.size(); ++b) {
      const std::int64_t lo = r.start_ns + static_cast<std::int64_t>(b) * r.width_ns;
      const std::int64_t hi = std::min(lo + r.width_ns, r.end_ns);
      for (std::size_t j = 0; j < r.buckets[b].size(); ++j) {
        const std::uint32_t slot = r.buckets[b][j];
        SANPERF_AUDIT_CHECK("des.ladder_consistency",
                            slot < slots_.size() && slots_[slot].where == Where::kRung &&
                                slots_[slot].rung == d && slots_[slot].bucket == b &&
                                slots_[slot].pos == j && b >= r.cur,
                            "rung " + std::to_string(d) + " bucket " + std::to_string(b) +
                                " entry " + std::to_string(j) + " = slot " + std::to_string(slot));
        check_live(slot, "rung");
        SANPERF_AUDIT_CHECK("des.ladder_consistency",
                            slots_[slot].at.ns() >= lo && slots_[slot].at.ns() < hi,
                            "slot " + std::to_string(slot) + " outside its bucket range");
      }
      tiered += r.buckets[b].size();
    }
  }
  // The tier boundaries must partition the time axis contiguously.
  if (depth_ > 0) {
    SANPERF_AUDIT_CHECK("des.ladder_consistency",
                        bottom_limit_ == rungs_[depth_ - 1].cur_start_ns() &&
                            top_floor_ == rungs_[0].end_ns,
                        "tier boundaries out of sync with active rungs");
    for (std::size_t d = 1; d < depth_; ++d) {
      SANPERF_AUDIT_CHECK("des.ladder_consistency",
                          rungs_[d].end_ns == rungs_[d - 1].cur_start_ns(),
                          "rung seam mismatch at depth " + std::to_string(d));
    }
  } else {
    SANPERF_AUDIT_CHECK("des.ladder_consistency",
                        bottom_.empty() && bottom_limit_ == kFloorMin && top_floor_ == kFloorMin,
                        "no active rung but window is not reset");
  }
  SANPERF_AUDIT_CHECK("des.ladder_consistency", tiered == live_,
                      "tiered " + std::to_string(tiered) + " != live " + std::to_string(live_));
  // The free list must account for exactly the slots in no tier.
  std::size_t free_count = 0;
  for (std::uint32_t f = free_head_; f != kNpos; f = slots_[f].next_free) {
    SANPERF_AUDIT_CHECK("des.ladder_consistency",
                        f < slots_.size() && slots_[f].where == Where::kFree,
                        "free-listed slot " + std::to_string(f) + " is tier-resident");
    ++free_count;
    if (free_count > slots_.size()) break;  // cycle; the count check below fires
  }
  SANPERF_AUDIT_CHECK("des.ladder_consistency", free_count + live_ == slots_.size(),
                      "free " + std::to_string(free_count) + " + live " + std::to_string(live_) +
                          " != slots " + std::to_string(slots_.size()));
}
#endif

}  // namespace sanperf::des
