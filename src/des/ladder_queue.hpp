// A ladder (calendar) queue: the EventQueue contract at O(1) amortised cost.
//
// Same generation-stamped EventId handles, same slot-slab storage
// discipline, and crucially the same (time, insertion-seq) total order as
// the indexed binary heap in event_queue.hpp -- identical push/cancel/pop
// interleavings produce identical pop sequences, so either backend
// reproduces every golden bit for bit (ladder_queue_test fuzzes exactly
// this equivalence). Only the ordering structure differs. Pending events
// spread across three tiers:
//   * top    -- an unsorted far-future band (everything beyond the rungs);
//   * rungs  -- a stack of bucket arrays; each rung refines one bucket of
//               the rung above into narrower time slices;
//   * bottom -- the current bucket, sorted descending so pop() takes the
//               back; at most ~kBottomThreshold events at a time.
// push and cancel touch a single bucket (O(1)); pop sorts one small bucket
// every ~threshold pops (O(1) amortised). The DES literature (Tang et al.,
// "Ladder queue", TOMACS 2005) reports the win over binary heaps past
// ~10k pending events; BM_LadderVsHeap in bench/engine_micro.cpp measures
// the crossover on this implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/audit.hpp"
#include "des/event_queue.hpp"
#include "des/time.hpp"

namespace sanperf::des {

class LadderQueue {
 public:
  using Action = EventAction;

  /// Adds an event firing at `at`. Returns a handle for cancellation.
  EventId push(TimePoint at, Action action);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed. O(1): a swap-remove from the
  /// event's bucket (bounded shift when it already sits in the sorted
  /// bottom tier).
  bool cancel(EventId id);

  /// True iff the event is scheduled and not yet fired or cancelled.
  [[nodiscard]] bool pending(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot < slots_.size() && slots_[slot].gen == gen_of(id) &&
           slots_[slot].where != Where::kFree;
  }

  /// True when no live event remains.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  [[nodiscard]] std::size_t size() const { return live_; }

  /// Firing time of the earliest live event. Requires !empty(). Non-const:
  /// may pull the next bucket into the sorted bottom tier.
  [[nodiscard]] TimePoint next_time();

  /// Removes and returns the earliest live event. Requires !empty().
  struct Popped {
    TimePoint at;
    EventId id;
    Action action;
  };
  Popped pop();

  /// Removes every pending event. Slab capacity is retained; every
  /// outstanding EventId goes stale.
  void clear();

  /// Releases capacity retained from past high-water marks: drops free
  /// slots at the tail of the slab (after clear() that is the whole slab),
  /// inactive rung storage and container slack. Stale EventIds remain
  /// stale: generations of dropped slots fold into a floor future slots
  /// start from, exactly like EventQueue::shrink_to_fit.
  void shrink_to_fit();

  /// clear() + shrink_to_fit(): the clear-with-shrink policy for
  /// long-lived simulators with bursty schedules.
  void clear_and_shrink() {
    clear();
    shrink_to_fit();
  }

  /// Slots ever allocated (live + free); asserts steady-state slot reuse.
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

#if SANPERF_AUDIT_ENABLED
  /// Full O(n) structural self-check: every tier entry back-references its
  /// location, the bottom tier is sorted, bucket members lie inside their
  /// bucket's time range, the tier boundaries partition the time axis, and
  /// the free list accounts for exactly the slots in no tier. Runs every
  /// kAuditPeriod push/pop in audit builds; callable directly from tests.
  void audit_check_ladder() const;

  /// Test-only corruption backdoor: rewrites a pending event's firing time
  /// WITHOUT re-bucketing it, so a later pop returns out-of-order time and
  /// the simulator's des.monotonic_time invariant trips.
  void audit_corrupt_slot_time(EventId id, TimePoint at) { slots_[slot_of(id)].at = at; }
#endif

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;
  /// Buckets per rung; each refinement narrows the slice ~this factor.
  static constexpr std::int64_t kRungBuckets = 128;
  /// Max events sorted into the bottom tier from one bucket; larger
  /// buckets spawn a refining rung instead (unless already at 1 ns).
  static constexpr std::size_t kBottomThreshold = 48;
  /// Refinement depth bound (1 ns resolution is reached far earlier).
  static constexpr std::size_t kMaxRungs = 24;

  enum class Where : std::uint8_t { kFree, kTop, kRung, kBottom };

  struct Slot {
    TimePoint at;
    std::uint64_t seq = 0;  ///< insertion order; (at, seq) totally orders pops
    Action action;
    std::uint32_t gen = 0;      ///< bumped on release; stales old EventIds
    Where where = Where::kFree;
    std::uint16_t rung = 0;     ///< rung index when kRung
    std::uint32_t bucket = 0;   ///< bucket index when kRung
    std::uint32_t pos = kNpos;  ///< index within its tier container
    std::uint32_t next_free = kNpos;
#if SANPERF_AUDIT_ENABLED
    /// Generation the slot was pushed with; a mismatch at pop means a
    /// dead-generation slot would fire.
    std::uint32_t audit_live_gen = 0;
#endif
  };

  /// One refinement level. Storage is recycled: rungs_[d] keeps its bucket
  /// vectors' capacity across activations at depth d.
  struct Rung {
    std::int64_t start_ns = 0;  ///< time of bucket 0's lower edge
    std::int64_t width_ns = 1;  ///< bucket width
    /// Exact upper edge of the covered range. Stored, not computed: the
    /// ceil-divided bucket width can overshoot the refined parent bucket,
    /// and the logical coverage must end exactly where the parent's next
    /// bucket begins or same-time events could fire out of push order.
    std::int64_t end_ns = 0;
    std::size_t cur = 0;  ///< next bucket to consume
    std::vector<std::vector<std::uint32_t>> buckets;

    [[nodiscard]] std::int64_t cur_start_ns() const {
      const std::int64_t raw = start_ns + static_cast<std::int64_t>(cur) * width_ns;
      return raw < end_ns ? raw : end_ns;
    }
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | (slot + 1);
  }
  static std::uint32_t slot_of(EventId id) { return static_cast<std::uint32_t>(id) - 1; }
  static std::uint32_t gen_of(EventId id) { return static_cast<std::uint32_t>(id >> 32); }

  [[nodiscard]] bool earlier(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.at != sb.at) return sa.at < sb.at;
    return sa.seq < sb.seq;
  }

  std::uint32_t acquire_slot();
  /// Destroys the slot's action, bumps its generation and free-lists it.
  void release_slot(std::uint32_t slot);
  /// Unordered-tier removal: overwrite with the last entry, fix its pos.
  void swap_remove(std::vector<std::uint32_t>& tier, std::uint32_t pos);

  /// Files a freshly filled slot into the tier its time belongs to.
  void place(std::uint32_t slot);
  void push_top(std::uint32_t slot);
  void insert_bottom(std::uint32_t slot);
  /// Pulls buckets (refining oversized ones) until bottom is non-empty.
  /// Requires live_ > 0.
  void refill_bottom();
  /// Builds rung 0 over the whole top band. Requires top_ non-empty.
  void seed_from_top();
  /// Refines rungs_[parent]'s current bucket into a narrower child rung.
  void spawn_rung(std::size_t parent);
  /// Returns tier boundaries to the everything-goes-to-top initial state.
  void reset_window();

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNpos;
  std::uint32_t gen_floor_ = 0;  ///< new slots start here; > any dropped gen
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;

  std::vector<std::uint32_t> top_;     ///< unsorted far-future band
  std::vector<std::uint32_t> bottom_;  ///< sorted descending; pop takes back()
  std::vector<Rung> rungs_;            ///< storage for depths [0, depth_)
  std::size_t depth_ = 0;              ///< active rungs; back = innermost

  // Tier boundaries partitioning the time axis (ns):
  //   (-inf, bottom_limit_) -> bottom (already-consumed bucket range)
  //   [bottom_limit_, top_floor_) -> exactly one active rung
  //   [top_floor_, +inf) -> top
  // Initial/empty state: both at INT64_MIN, so everything lands in top.
  std::int64_t bottom_limit_ = kFloorMin;
  std::int64_t top_floor_ = kFloorMin;
  static constexpr std::int64_t kFloorMin = INT64_MIN;

#if SANPERF_AUDIT_ENABLED
  static constexpr std::uint64_t kAuditPeriod = 1024;  ///< ops between self-checks
  mutable std::uint64_t audit_ops_ = 0;
#endif
};

}  // namespace sanperf::des
