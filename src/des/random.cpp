#include "des/random.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace sanperf::des {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

RandomEngine::RandomEngine(std::uint64_t seed) : seed_{seed}, gen_{mix64(seed)} {}

std::uint64_t derive_seed(std::uint64_t parent_seed, std::string_view label,
                          std::uint64_t index) {
  // FNV-1a over the label, then mixed with the parent seed and index.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(parent_seed ^ mix64(h) ^ mix64(index * 0xd1342543de82ef95ULL + 1));
}

RandomEngine RandomEngine::substream(std::string_view label, std::uint64_t index) const {
  return RandomEngine{derive_seed(seed_, label, index)};
}

double RandomEngine::uniform(double a, double b) {
  if (!(a <= b)) throw std::invalid_argument{"uniform: a > b"};
  return a + (b - a) * uniform01();
}

double RandomEngine::uniform01() {
  // 53-bit mantissa construction: uniform in [0, 1).
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

std::int64_t RandomEngine::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument{"uniform_int: lo > hi"};
  return std::uniform_int_distribution<std::int64_t>{lo, hi}(gen_);
}

double RandomEngine::exponential_mean(double mean) {
  if (!(mean > 0)) throw std::invalid_argument{"exponential_mean: mean <= 0"};
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double RandomEngine::normal(double mean, double stddev) {
  return std::normal_distribution<double>{mean, stddev}(gen_);
}

double RandomEngine::weibull(double shape, double scale) {
  if (!(shape > 0) || !(scale > 0)) throw std::invalid_argument{"weibull: params <= 0"};
  return std::weibull_distribution<double>{shape, scale}(gen_);
}

bool RandomEngine::bernoulli(double p) { return uniform01() < p; }

std::size_t RandomEngine::categorical(const std::vector<double>& weights) {
  double total = 0;
  for (const double w : weights) {
    if (w < 0) throw std::invalid_argument{"categorical: negative weight"};
    total += w;
  }
  if (!(total > 0)) throw std::invalid_argument{"categorical: weights sum to zero"};
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;  // numerical edge: fall into the last bucket
}

}  // namespace sanperf::des
