// Seeded random engine with named substreams.
//
// Every stochastic component takes a RandomEngine (or derives a substream
// from one); a run is fully determined by its master seed. Substreams are
// derived by hashing the parent seed with a label, so adding a new consumer
// does not perturb the draws seen by existing ones.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace sanperf::des {

class RandomEngine {
 public:
  explicit RandomEngine(std::uint64_t seed);

  /// Derives an independent child engine. Deterministic in (seed, label, index).
  [[nodiscard]] RandomEngine substream(std::string_view label, std::uint64_t index = 0) const;

  /// Uniform real in [a, b).
  [[nodiscard]] double uniform(double a, double b);
  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01();
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Exponential with the given mean (not rate). Requires mean > 0.
  [[nodiscard]] double exponential_mean(double mean);
  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev);
  /// Weibull with shape k and scale lambda.
  [[nodiscard]] double weibull(double shape, double scale);
  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double p);
  /// Index in [0, weights.size()) drawn proportionally to weights.
  [[nodiscard]] std::size_t categorical(const std::vector<double>& weights);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Raw 64-bit draw (for hashing/shuffling utilities).
  [[nodiscard]] std::uint64_t next_u64() { return gen_(); }

  using result_type = std::mt19937_64::result_type;

 private:
  std::uint64_t seed_;
  std::mt19937_64 gen_;
};

/// SplitMix64 finalizer; used for seed derivation and stable hashing.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

/// Seed for the substream of `parent_seed` named (label, index). This is the
/// derivation RandomEngine::substream uses; exposed so seeds can be split
/// without instantiating engines.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t parent_seed, std::string_view label,
                                        std::uint64_t index = 0);

/// Splits one master seed into arbitrarily many independent replication
/// streams. stream(i) is pure in (master_seed, label, i): replication i sees
/// the same draws no matter how many threads run the campaign or in which
/// order replications execute. Equivalent to
/// RandomEngine{master}.substream(label, i), without engine construction.
class SeedSplitter {
 public:
  explicit SeedSplitter(std::uint64_t master_seed, std::string_view label = "rep")
      : master_{master_seed}, label_{label} {}

  [[nodiscard]] std::uint64_t stream_seed(std::uint64_t index) const {
    return derive_seed(master_, label_, index);
  }
  [[nodiscard]] RandomEngine stream(std::uint64_t index) const {
    return RandomEngine{stream_seed(index)};
  }
  [[nodiscard]] std::uint64_t master_seed() const { return master_; }

 private:
  std::uint64_t master_;
  std::string label_;
};

}  // namespace sanperf::des
