#include "des/simulator.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace sanperf::des {

EventId Simulator::schedule(Duration delay, Action action) {
  if (delay < Duration::zero()) throw std::invalid_argument{"Simulator::schedule: negative delay"};
  return queue_.push(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(TimePoint at, Action action) {
  if (at < now_) throw std::invalid_argument{"Simulator::schedule_at: time in the past"};
  return queue_.push(at, std::move(action));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto ev = queue_.pop();
  SANPERF_AUDIT_CHECK("des.monotonic_time", ev.at >= now_,
                      "event at " + std::to_string(ev.at.to_ms()) + " ms behind clock " +
                          std::to_string(now_.to_ms()) + " ms");
  now_ = ev.at;
  ++processed_;
  ev.action();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(TimePoint deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (now_ < deadline && !stopped_) now_ = deadline;
}

void Simulator::reset() {
  queue_.clear();
  now_ = TimePoint::origin();
  processed_ = 0;
  stopped_ = false;
}

}  // namespace sanperf::des
