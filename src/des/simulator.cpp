#include "des/simulator.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace sanperf::des {

const char* to_string(QueueBackend backend) {
  return backend == QueueBackend::kLadder ? "ladder" : "heap";
}

QueueBackend default_queue_backend() {
  const char* env = std::getenv("SANPERF_QUEUE");
  if (env == nullptr || *env == '\0') return QueueBackend::kHeap;
  const std::string_view v{env};
  if (v == "heap") return QueueBackend::kHeap;
  if (v == "ladder") return QueueBackend::kLadder;
  throw std::invalid_argument{"SANPERF_QUEUE: expected 'heap' or 'ladder', got '" +
                              std::string{v} + "'"};
}

EventId Simulator::schedule(Duration delay, Action action) {
  if (delay < Duration::zero()) throw std::invalid_argument{"Simulator::schedule: negative delay"};
  const TimePoint at = now_ + delay;
  return backend_ == QueueBackend::kLadder ? ladder_.push(at, std::move(action))
                                           : heap_.push(at, std::move(action));
}

EventId Simulator::schedule_at(TimePoint at, Action action) {
  if (at < now_) throw std::invalid_argument{"Simulator::schedule_at: time in the past"};
  return backend_ == QueueBackend::kLadder ? ladder_.push(at, std::move(action))
                                           : heap_.push(at, std::move(action));
}

bool Simulator::step() {
  if (queue_empty()) return false;
  TimePoint at;
  Action action;
  if (backend_ == QueueBackend::kLadder) {
    auto ev = ladder_.pop();
    at = ev.at;
    action = std::move(ev.action);
  } else {
    auto ev = heap_.pop();
    at = ev.at;
    action = std::move(ev.action);
  }
  SANPERF_AUDIT_CHECK("des.monotonic_time", at >= now_,
                      "event at " + std::to_string(at.to_ms()) + " ms behind clock " +
                          std::to_string(now_.to_ms()) + " ms");
  now_ = at;
  ++processed_;
  action();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(TimePoint deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_empty()) {
    const TimePoint next =
        backend_ == QueueBackend::kLadder ? ladder_.next_time() : heap_.next_time();
    if (next > deadline) break;
    step();
  }
  if (now_ < deadline && !stopped_) now_ = deadline;
}

void Simulator::reset() {
  heap_.clear();
  ladder_.clear();
  now_ = TimePoint::origin();
  processed_ = 0;
  stopped_ = false;
}

}  // namespace sanperf::des
