// The discrete-event simulator: a virtual clock plus an event queue.
//
// Two interchangeable pending-set backends sit behind the same EventId
// contract: the indexed binary heap (event_queue.hpp, the default) and the
// ladder queue (ladder_queue.hpp, O(1) amortised for large pending sets).
// Both order events by (time, insertion-seq), so a simulation pops the
// identical event sequence — and produces bit-identical results — on
// either backend. Select per-simulator via the constructor (ClusterConfig
// plumbs this through) or process-wide via SANPERF_QUEUE=heap|ladder.
#pragma once

#include <cstdint>
#include <functional>

#include "des/event_queue.hpp"
#include "des/ladder_queue.hpp"
#include "des/time.hpp"

namespace sanperf::des {

/// Pending-set implementation behind a Simulator.
enum class QueueBackend : std::uint8_t {
  kHeap,    ///< indexed binary heap: O(log n), lowest constant factors
  kLadder,  ///< ladder queue: O(1) amortised, wins past ~10k pending events
};

[[nodiscard]] const char* to_string(QueueBackend backend);

/// Backend selected by the SANPERF_QUEUE environment variable ("heap" or
/// "ladder"; unset or empty means heap). Throws std::invalid_argument on
/// anything else. Read on every call so tests can flip it.
[[nodiscard]] QueueBackend default_queue_backend();

class Simulator {
 public:
  using Action = EventQueue::Action;

  Simulator() : Simulator(default_queue_backend()) {}
  explicit Simulator(QueueBackend backend) : backend_{backend} {}

  [[nodiscard]] QueueBackend backend() const { return backend_; }

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `action` to run `delay` from now. Negative delays are an error.
  EventId schedule(Duration delay, Action action);

  /// Schedules `action` at an absolute time not earlier than now.
  EventId schedule_at(TimePoint at, Action action);

  /// Cancels a previously scheduled event; false if it already ran.
  bool cancel(EventId id) {
    return backend_ == QueueBackend::kLadder ? ladder_.cancel(id) : heap_.cancel(id);
  }

  [[nodiscard]] bool pending(EventId id) const {
    return backend_ == QueueBackend::kLadder ? ladder_.pending(id) : heap_.pending(id);
  }

  /// Runs one event. Returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains or stop() is called.
  void run();

  /// Runs until the queue drains, the clock passes `deadline`, or stop().
  /// Events at exactly `deadline` are executed.
  void run_until(TimePoint deadline);

  /// Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool queue_empty() const {
    return backend_ == QueueBackend::kLadder ? ladder_.empty() : heap_.empty();
  }
  [[nodiscard]] std::size_t queue_size() const {
    return backend_ == QueueBackend::kLadder ? ladder_.size() : heap_.size();
  }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Clears all pending events and resets the clock to the origin.
  void reset();

#if SANPERF_AUDIT_ENABLED
  /// Audit-build test access to the underlying queues, so negative tests
  /// can corrupt pending events and assert the audit layer trips.
  [[nodiscard]] EventQueue& audit_queue() { return heap_; }
  [[nodiscard]] LadderQueue& audit_ladder_queue() { return ladder_; }
#endif

 private:
  QueueBackend backend_ = QueueBackend::kHeap;
  EventQueue heap_;
  LadderQueue ladder_;  ///< empty shell when the heap backend is active
  TimePoint now_ = TimePoint::origin();
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace sanperf::des
