// The discrete-event simulator: a virtual clock plus an event queue.
#pragma once

#include <cstdint>
#include <functional>

#include "des/event_queue.hpp"
#include "des/time.hpp"

namespace sanperf::des {

class Simulator {
 public:
  using Action = EventQueue::Action;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `action` to run `delay` from now. Negative delays are an error.
  EventId schedule(Duration delay, Action action);

  /// Schedules `action` at an absolute time not earlier than now.
  EventId schedule_at(TimePoint at, Action action);

  /// Cancels a previously scheduled event; false if it already ran.
  bool cancel(EventId id) { return queue_.cancel(id); }

  [[nodiscard]] bool pending(EventId id) const { return queue_.pending(id); }

  /// Runs one event. Returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains or stop() is called.
  void run();

  /// Runs until the queue drains, the clock passes `deadline`, or stop().
  /// Events at exactly `deadline` are executed.
  void run_until(TimePoint deadline);

  /// Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool queue_empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t queue_size() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Clears all pending events and resets the clock to the origin.
  void reset();

#if SANPERF_AUDIT_ENABLED
  /// Audit-build test access to the underlying queue, so negative tests can
  /// corrupt pending events and assert the audit layer trips.
  [[nodiscard]] EventQueue& audit_queue() { return queue_; }
#endif

 private:
  EventQueue queue_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace sanperf::des
