#include "des/time.hpp"

#include <cmath>
#include <cstdio>

namespace sanperf::des {

Duration Duration::from_ms(double ms) {
  return Duration{static_cast<std::int64_t>(std::llround(ms * 1e6))};
}

Duration Duration::from_seconds(double s) {
  return Duration{static_cast<std::int64_t>(std::llround(s * 1e9))};
}

namespace {

std::string render_ns(std::int64_t ns) {
  char buf[64];
  const double a = static_cast<double>(ns);
  if (std::llabs(ns) < 10'000) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  } else if (std::llabs(ns) < 10'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", a / 1e3);
  } else if (std::llabs(ns) < 10'000'000'000LL) {
    std::snprintf(buf, sizeof buf, "%.3fms", a / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", a / 1e9);
  }
  return buf;
}

}  // namespace

std::string Duration::to_string() const { return render_ns(ns_); }
std::string TimePoint::to_string() const { return render_ns(ns_); }

}  // namespace sanperf::des
