// Simulated-time types for the discrete-event kernel.
//
// Simulated time is kept as a signed 64-bit count of nanoseconds. Integer
// time makes event ordering exact and runs reproducible across platforms;
// the paper works at microsecond resolution (its clock had 1 us resolution,
// NTP sync within 50 us), so nanoseconds leave ample headroom.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace sanperf::des {

/// A span of simulated time. Value-type, totally ordered, overflow-free for
/// any span this library produces (< 292 years).
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanos(std::int64_t ns) { return Duration{ns}; }
  [[nodiscard]] static constexpr Duration micros(std::int64_t us) { return Duration{us * 1000}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }

  /// Converts from fractional milliseconds (the paper's natural unit),
  /// rounding to the nearest nanosecond.
  [[nodiscard]] static Duration from_ms(double ms);
  /// Converts from fractional seconds, rounding to the nearest nanosecond.
  [[nodiscard]] static Duration from_seconds(double s);

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration& operator+=(Duration other) { ns_ += other.ns_; return *this; }
  constexpr Duration& operator-=(Duration other) { ns_ -= other.ns_; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return Duration{a.ns_ * k}; }

  /// Human-readable rendering with an adaptive unit (ns/us/ms/s).
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// An absolute point on the simulated clock. Time zero is the start of the
/// simulation run.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint at(Duration since_start) {
    return TimePoint{since_start.ns()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr Duration since_origin() const { return Duration::nanos(ns_); }

  [[nodiscard]] static constexpr TimePoint origin() { return TimePoint{0}; }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint{t.ns_ + d.ns()}; }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint{t.ns_ - d.ns()}; }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) { return Duration::nanos(a.ns_ - b.ns_); }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

}  // namespace sanperf::des
