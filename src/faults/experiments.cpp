#include "faults/experiments.hpp"

#include <cmath>

#include "consensus/ct_consensus.hpp"
#include "consensus/mr_consensus.hpp"
#include "core/workload.hpp"
#include "faults/injector.hpp"
#include "fd/failure_detector.hpp"
#include "fd/heartbeat_fd.hpp"
#include "runtime/cluster.hpp"

namespace sanperf::faults {

core::ExecOutcome run_fault_execution(core::Algorithm algorithm, std::size_t n,
                                      const net::NetworkParams& params,
                                      const net::TimerModel& timers, const FaultPlan& plan,
                                      std::size_t k, std::uint64_t exec_seed) {
  // One shared harness for plain, comparative and fault-injected isolated
  // executions (core/exec_harness.hpp behind core::run_one_shot): the skew
  // model, proposal schedule, decision capture and deadline cannot diverge.
  core::WorkloadConfig cfg;
  cfg.n = n;
  cfg.network = params;
  cfg.timers = timers;
  cfg.algorithm = algorithm;
  cfg.fault_plan = &plan;
  return core::run_one_shot(cfg, k, exec_seed);
}

core::MeasuredLatency measure_fault_latency(core::Algorithm algorithm, std::size_t n,
                                            const net::NetworkParams& params,
                                            const net::TimerModel& timers, const FaultPlan& plan,
                                            std::size_t executions, std::uint64_t seed,
                                            const core::ReplicationRunner& runner) {
  const des::SeedSplitter seeds{seed, "exec"};
  return core::fold_latency_outcomes(runner.map(executions, [&](std::size_t k) {
    return run_fault_execution(algorithm, n, params, timers, plan, k, seeds.stream_seed(k));
  }));
}

FaultClass3Run run_fault_class3(std::size_t n, const net::NetworkParams& params,
                                const net::TimerModel& timers, double timeout_ms,
                                std::size_t executions, const FaultPlan& plan,
                                std::uint64_t seed) {
  runtime::ClusterConfig cfg;
  cfg.n = n;
  cfg.network = params;
  cfg.timers = timers;
  cfg.seed = seed;
  runtime::Cluster cluster{cfg};
  FaultInjector injector{cluster, plan};

  const auto fd_params = fd::HeartbeatFdParams::from_timeout_ms(timeout_ms);
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
    auto& proc = cluster.process(pid);
    auto& hb = proc.add_layer<fd::HeartbeatFd>(fd_params);
    proc.add_layer<consensus::CtConsensus>(hb);
  }
  injector.arm();

  consensus::SequencerConfig seq_cfg;
  seq_cfg.executions = executions;
  consensus::ConsensusSequencer seq{cluster, seq_cfg};

  FaultClass3Run run;
  run.executions = seq.run();

  // QoS over the full experiment duration, all ordered pairs (crashed
  // monitors contribute their frozen histories, as in the plain harness).
  // A host crashed at t <= 0 and never recovered skipped on_start, so its
  // detector has no histories to contribute.
  std::vector<const fd::PairHistory*> histories;
  for (runtime::HostId pid = 0; pid < static_cast<runtime::HostId>(n); ++pid) {
    const auto& hb = cluster.process(pid).layer<fd::HeartbeatFd>();
    if (hb.histories().size() != n) continue;  // never started
    for (runtime::HostId peer = 0; peer < static_cast<runtime::HostId>(n); ++peer) {
      if (peer == pid) continue;
      histories.push_back(&hb.histories()[peer]);
    }
  }
  run.qos = fd::average_qos(histories, seq.experiment_end());
  run.experiment_ms = seq.experiment_end().to_ms();
  return run;
}

PhasedLatency split_by_window(const std::vector<consensus::ExecutionResult>& execs,
                              double start_ms, double end_ms) {
  PhasedLatency out;
  // A window that never opens (start = inf, e.g. an event-free override
  // plan) puts everything in "before".
  const bool no_window = std::isinf(start_ms);
  for (const auto& exec : execs) {
    const double t0_ms = exec.t0.to_ms();
    core::MeasuredLatency* bucket = &out.during;
    if (t0_ms >= end_ms) {
      bucket = &out.after;
    } else if (no_window || (exec.decided() && exec.t_decide->to_ms() < start_ms)) {
      bucket = &out.before;  // over before the fault opened
    }
    if (exec.decided()) {
      bucket->latencies_ms.push_back(exec.latency_ms());
      bucket->rounds.push_back(exec.rounds);
    } else {
      ++bucket->undecided;
    }
  }
  return out;
}

}  // namespace sanperf::faults
