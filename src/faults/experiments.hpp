// Fault-injected measurement campaigns: the class-1/2 isolated-execution
// harness and the class-3 long-run harness, each driving a FaultPlan
// through a FaultInjector. Both mirror the plain harnesses exactly -- same
// cluster seeding, same RNG streams, same folds -- so a degenerate plan
// (one crash at t = 0) reproduces the paper's Table 1 crash runs bit for
// bit, and every fault scenario stays thread-count-invariant.
#pragma once

#include <cstdint>
#include <vector>

#include "consensus/sequencer.hpp"
#include "core/extensions.hpp"
#include "core/measurement.hpp"
#include "faults/plan.hpp"
#include "fd/qos.hpp"
#include "net/params.hpp"

namespace sanperf::faults {

/// One isolated consensus execution under `plan` (the flat sharding unit
/// of the fault campaigns; seeds come from SeedSplitter{seed, "exec"}).
/// Hosts the plan crashes at or before t = 0 are pre-suspected by the
/// static failure detector, exactly as in the paper's class-2 runs.
[[nodiscard]] core::ExecOutcome run_fault_execution(core::Algorithm algorithm, std::size_t n,
                                                    const net::NetworkParams& params,
                                                    const net::TimerModel& timers,
                                                    const FaultPlan& plan, std::size_t k,
                                                    std::uint64_t exec_seed);

/// Like core::measure_latency, but under a fault plan and with a
/// selectable algorithm.
[[nodiscard]] core::MeasuredLatency measure_fault_latency(
    core::Algorithm algorithm, std::size_t n, const net::NetworkParams& params,
    const net::TimerModel& timers, const FaultPlan& plan, std::size_t executions,
    std::uint64_t seed, const core::ReplicationRunner& runner = core::default_runner());

/// One fault-injected class-3 run: live heartbeat detection (timeout T,
/// Th = 0.7 T), `executions` sequenced consensus executions, and `plan`
/// replayed on the cluster. Unlike core::measure_class3_run it keeps the
/// per-execution results, so folds can bucket executions against the
/// plan's fault windows (before / during / after).
struct FaultClass3Run {
  std::vector<consensus::ExecutionResult> executions;
  fd::QosEstimate qos;
  double experiment_ms = 0;
};

[[nodiscard]] FaultClass3Run run_fault_class3(std::size_t n, const net::NetworkParams& params,
                                              const net::TimerModel& timers, double timeout_ms,
                                              std::size_t executions, const FaultPlan& plan,
                                              std::uint64_t seed);

/// Buckets executions against a fault window [start_ms, end_ms): "after"
/// starts at or past the window's end, "during" overlaps it (started
/// inside it, still in flight when it opened, or undecided before its
/// end), "before" decided strictly earlier. This is the before / during /
/// after split the recovery scenarios report.
struct PhasedLatency {
  core::MeasuredLatency before, during, after;

  void merge(const PhasedLatency& other) {
    before.merge(other.before);
    during.merge(other.during);
    after.merge(other.after);
  }
};

[[nodiscard]] PhasedLatency split_by_window(const std::vector<consensus::ExecutionResult>& execs,
                                            double start_ms, double end_ms);

}  // namespace sanperf::faults
