#include "faults/injector.hpp"

#include <stdexcept>

namespace sanperf::faults {

using FrameFate = net::ContentionNetwork::FrameFate;

FaultInjector::FaultInjector(runtime::Cluster& cluster, FaultPlan plan)
    : cluster_{&cluster}, plan_{std::move(plan)}, rng_{cluster.rng_stream("faults")} {
  plan_.validate(cluster.n());
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error{"FaultInjector::arm: already armed"};
  armed_ = true;

  for (const FaultEvent& event : plan_.events()) {
    // A window entirely before the start (negative at_ms, finite duration)
    // has nothing left to apply -- and its end must not be scheduled in
    // the simulator's past.
    if (event.end_ms() <= 0) continue;
    switch (event.kind) {
      case FaultKind::kCrash: {
        const auto host = static_cast<runtime::HostId>(event.host);
        if (event.at_ms <= 0) {
          // Eager, exactly like crash_initially: the process is down before
          // any event (or RNG draw) happens, so a crash-at-0 plan is
          // bit-identical to the paper's pre-crashed runs.
          cluster_->process(host).crash();
        } else {
          cluster_->crash_at(host, des::TimePoint::origin() + des::Duration::from_ms(event.at_ms));
        }
        if (!event.permanent()) {
          cluster_->recover_at(host,
                               des::TimePoint::origin() + des::Duration::from_ms(event.end_ms()));
        }
        break;
      }
      case FaultKind::kCpuSlow:
      case FaultKind::kPipelineSlow:
        schedule_slowdown(event);
        break;
      case FaultKind::kPartition:
      case FaultKind::kLoss:
        break;  // time-driven through the frame filter below
    }
  }

  if (plan_.filters_frames()) {
    cluster_->network().set_frame_filter(
        [this](const net::Packet& pkt) { return classify(pkt); });
  }
}

FrameFate FaultInjector::classify(const net::Packet& pkt) {
  const double now_ms = cluster_->now().to_ms();
  // Partitions first (a switch drops before chance does), then every active
  // loss window in plan order -- both the order and the per-frame draws are
  // fixed by the DES event sequence, so results are thread-count-invariant.
  if (plan_.partitioned_at(now_ms, pkt.src, pkt.dst)) {
    ++partition_drops_;
    return FrameFate::kDrop;
  }
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind != FaultKind::kLoss || !event.active_at(now_ms)) continue;
    if (event.loss_p > 0 && rng_.bernoulli(event.loss_p)) {
      ++frames_lost_;
      return FrameFate::kDrop;
    }
    if (event.duplicate_p > 0 && rng_.bernoulli(event.duplicate_p)) {
      ++frames_duplicated_;
      return FrameFate::kDuplicate;
    }
  }
  return FrameFate::kDeliver;
}

void FaultInjector::schedule_slowdown(const FaultEvent& event) {
  // Both boundaries recompute the effective scale from the plan at the
  // boundary instant, so overlapping windows compose correctly (a window's
  // end cannot clobber another still-active window) and the result is
  // independent of same-instant event ordering.
  const bool pipeline = event.kind == FaultKind::kPipelineSlow;
  const auto reapply = [this, pipeline] {
    auto& network = cluster_->network();
    const double now_ms = cluster_->now().to_ms();
    if (pipeline) {
      network.set_pipeline_scale(plan_.pipeline_scale_at(now_ms));
      return;
    }
    for (HostId h = 0; h < static_cast<HostId>(cluster_->n()); ++h) {
      network.set_cpu_scale(h, plan_.cpu_scale_at(now_ms, h));
    }
  };
  if (event.at_ms <= 0) {
    reapply();
  } else {
    cluster_->sim().schedule_at(des::TimePoint::origin() + des::Duration::from_ms(event.at_ms),
                                reapply);
  }
  if (!event.permanent()) {
    cluster_->sim().schedule_at(des::TimePoint::origin() + des::Duration::from_ms(event.end_ms()),
                                reapply);
  }
}

}  // namespace sanperf::faults
