#include "faults/injector.hpp"

#include <algorithm>
#include <stdexcept>

#include "faults/lowering.hpp"

namespace sanperf::faults {

using FrameFate = net::ContentionNetwork::FrameFate;

FaultInjector::FaultInjector(runtime::Cluster& cluster, FaultPlan plan)
    : cluster_{&cluster}, plan_{std::move(plan)}, rng_{cluster.rng_stream("faults")} {
  // Domain-scoped events expand against the cluster's failure-domain tree
  // before anything else sees the plan; with no topology configured the
  // degenerate single-rack tree applies (kill_rack(0) = kill everything).
  if (plan_.has_domain_events()) {
    if (cluster.config().topology) {
      plan_ = lower_plan(plan_, *cluster.config().topology);
    } else {
      plan_ = lower_plan(plan_, topo::Topology::single_hub(cluster.n()));
    }
  }
  plan_.validate(cluster.n());
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error{"FaultInjector::arm: already armed"};
  armed_ = true;

  // Lower every crash-shaped event to per-host downtime windows, in plan
  // order. kRollingRestart becomes one window per host, staggered; windows
  // entirely before the start (negative at_ms, finite duration) have
  // nothing left to apply -- and their ends must not be scheduled in the
  // simulator's past.
  struct Window {
    runtime::HostId host;
    double at_ms;
    double end_ms;
    bool permanent;
  };
  std::vector<Window> windows;
  for (const FaultEvent& event : plan_.events()) {
    if (event.end_ms() <= 0) continue;
    if (event.kind == FaultKind::kCrash) {
      windows.push_back({static_cast<runtime::HostId>(event.host), event.at_ms, event.end_ms(),
                         event.permanent()});
    } else if (event.kind == FaultKind::kRollingRestart) {
      for (runtime::HostId h = 0; h < static_cast<runtime::HostId>(cluster_->n()); ++h) {
        const double at = event.at_ms + static_cast<double>(h) * event.stagger_ms;
        const double end = at + event.duration_ms;
        if (end <= 0) continue;
        windows.push_back({h, at, end, false});
      }
    }
  }

  // Two passes, recoveries first: the DES fires same-instant events in
  // scheduling order, so a crash landing exactly on another window's
  // recovery boundary deterministically sees the host recover *then* crash
  // (back-to-back windows leave the host down across the boundary, with a
  // restart blip at it) -- regardless of plan order. Events at distinct
  // times are untouched by scheduling order, so existing plans replay
  // bit-identically.
  for (const Window& w : windows) {
    if (!w.permanent) {
      cluster_->recover_at(w.host, des::TimePoint::origin() + des::Duration::from_ms(w.end_ms));
    }
  }
  for (const Window& w : windows) {
    if (w.at_ms <= 0) {
      // Eager, exactly like crash_initially: the process is down before
      // any event (or RNG draw) happens, so a crash-at-0 plan is
      // bit-identical to the paper's pre-crashed runs.
      cluster_->process(w.host).crash();
    } else {
      cluster_->crash_at(w.host, des::TimePoint::origin() + des::Duration::from_ms(w.at_ms));
    }
  }

  for (const FaultEvent& event : plan_.events()) {
    if (event.end_ms() <= 0) continue;
    switch (event.kind) {
      case FaultKind::kCpuSlow:
      case FaultKind::kPipelineSlow:
        schedule_slowdown(event);
        break;
      case FaultKind::kCrash:
      case FaultKind::kRollingRestart:  // lowered above
      case FaultKind::kPartition:
      case FaultKind::kLoss:  // time-driven through the frame filter below
        break;
      case FaultKind::kAddHost:
      case FaultKind::kRemoveHost:
        // Membership changes are consensus decisions driven by the workload
        // engine, not injections; the injector deliberately ignores them.
        break;
      case FaultKind::kKillRack:
      case FaultKind::kPartitionSwitch:
        // Unreachable: lowered to crash/partition events in the constructor.
        break;
    }
  }

  if (plan_.filters_frames()) {
    cluster_->network().set_frame_filter(
        [this](const net::Packet& pkt) { return classify(pkt); });
#if SANPERF_AUDIT_ENABLED
    // Audit builds cross-check the filter against the plan itself: any
    // frame the filter lets through across a pair the plan says is
    // partitioned at that instant trips net.no_delivery_across_partition.
    cluster_->network().set_partition_oracle([this](net::HostId a, net::HostId b) {
      return plan_.partitioned_at(cluster_->now().to_ms(), a, b);
    });
#endif
  }
}

FrameFate FaultInjector::classify(const net::Packet& pkt) {
  const double now_ms = cluster_->now().to_ms();
  // Partitions first (a switch drops before chance does), then every active
  // loss window in plan order -- both the order and the per-frame draws are
  // fixed by the DES event sequence, so results are thread-count-invariant.
  if (plan_.partitioned_at(now_ms, pkt.src, pkt.dst)) {
    ++partition_drops_;
    return FrameFate::kDrop;
  }
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind != FaultKind::kLoss || !event.active_at(now_ms)) continue;
    // A scoped window (non-empty group: a flaky rack switch) only touches
    // frames with an endpoint in the group -- and draws nothing for the
    // rest, so out-of-scope traffic sees the exact un-scoped RNG stream.
    if (!event.group.empty()) {
      const bool src_in =
          std::find(event.group.begin(), event.group.end(), pkt.src) != event.group.end();
      const bool dst_in =
          std::find(event.group.begin(), event.group.end(), pkt.dst) != event.group.end();
      if (!src_in && !dst_in) continue;
    }
    if (event.loss_p > 0 && rng_.bernoulli(event.loss_p)) {
      ++frames_lost_;
      return FrameFate::kDrop;
    }
    if (event.duplicate_p > 0 && rng_.bernoulli(event.duplicate_p)) {
      ++frames_duplicated_;
      return FrameFate::kDuplicate;
    }
  }
  return FrameFate::kDeliver;
}

void FaultInjector::schedule_slowdown(const FaultEvent& event) {
  // Both boundaries recompute the effective scale from the plan at the
  // boundary instant, so overlapping windows compose correctly (a window's
  // end cannot clobber another still-active window) and the result is
  // independent of same-instant event ordering.
  const bool pipeline = event.kind == FaultKind::kPipelineSlow;
  const auto reapply = [this, pipeline] {
    auto& network = cluster_->network();
    const double now_ms = cluster_->now().to_ms();
    if (pipeline) {
      network.set_pipeline_scale(plan_.pipeline_scale_at(now_ms));
      return;
    }
    for (HostId h = 0; h < static_cast<HostId>(cluster_->n()); ++h) {
      network.set_cpu_scale(h, plan_.cpu_scale_at(now_ms, h));
    }
  };
  if (event.at_ms <= 0) {
    reapply();
  } else {
    cluster_->sim().schedule_at(des::TimePoint::origin() + des::Duration::from_ms(event.at_ms),
                                reapply);
  }
  if (!event.permanent()) {
    cluster_->sim().schedule_at(des::TimePoint::origin() + des::Duration::from_ms(event.end_ms()),
                                reapply);
  }
}

}  // namespace sanperf::faults
