// Replays a FaultPlan on a runtime::Cluster.
//
// Crashes, recoveries and slowdown boundaries become DES events; partitions
// and loss windows are enforced time-driven by the network's receiver-edge
// frame filter, so frames in flight at a boundary see the state at their
// own arrival instant. The injector draws from its own named RNG substream
// ("faults", derived from the cluster seed) and only when a loss window is
// active, so an armed injector with no loss events perturbs nothing: a run
// under an empty plan -- or a plan of immediate crashes -- is bit-identical
// to the corresponding plain run at any SANPERF_THREADS.
#pragma once

#include <cstdint>

#include "des/random.hpp"
#include "faults/plan.hpp"
#include "runtime/cluster.hpp"

namespace sanperf::faults {

class FaultInjector {
 public:
  /// Lowers `plan`'s domain-scoped events against the cluster's topology
  /// (faults::lower_plan; single-rack fallback when none is configured)
  /// and validates the result against the cluster size -- `plan()` returns
  /// the lowered, per-host form. The injector must outlive the cluster's
  /// run (the frame filter calls back into it).
  FaultInjector(runtime::Cluster& cluster, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs the hooks and schedules the plan. Crashes at or before time
  /// zero are applied eagerly (exactly like Cluster::crash_initially);
  /// everything else is scheduled on the simulator. Rolling restarts lower
  /// to per-host staggered crash/recover windows; membership events are
  /// ignored (the workload engine decides them in-stream). Tie-break: a
  /// crash scheduled exactly at another window's recovery boundary applies
  /// recover-then-crash, independent of plan order. Call once, before the
  /// cluster starts running.
  void arm();

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  // Introspection for tests / scenario notes.
  [[nodiscard]] std::uint64_t frames_lost() const { return frames_lost_; }
  [[nodiscard]] std::uint64_t frames_duplicated() const { return frames_duplicated_; }
  [[nodiscard]] std::uint64_t partition_drops() const { return partition_drops_; }

 private:
  [[nodiscard]] net::ContentionNetwork::FrameFate classify(const net::Packet& pkt);
  void schedule_slowdown(const FaultEvent& event);

  runtime::Cluster* cluster_;
  FaultPlan plan_;
  des::RandomEngine rng_;
  bool armed_ = false;
  std::uint64_t frames_lost_ = 0;
  std::uint64_t frames_duplicated_ = 0;
  std::uint64_t partition_drops_ = 0;
};

}  // namespace sanperf::faults
