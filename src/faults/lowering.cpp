#include "faults/lowering.hpp"

#include <stdexcept>
#include <string>

namespace sanperf::faults {

namespace {

std::size_t checked_domain(const FaultEvent& e, const topo::Topology& topology) {
  if (e.domain < 0 || static_cast<std::size_t>(e.domain) >= topology.racks().size()) {
    throw std::invalid_argument{"lower_plan: " + std::string{to_string(e.kind)} + " domain " +
                                std::to_string(e.domain) + " outside topology '" +
                                topology.name() + "' (" +
                                std::to_string(topology.racks().size()) + " racks)"};
  }
  return static_cast<std::size_t>(e.domain);
}

}  // namespace

FaultPlan lower_plan(const FaultPlan& plan, const topo::Topology& topology) {
  FaultPlan lowered;
  for (const FaultEvent& e : plan.events()) {
    switch (e.kind) {
      case FaultKind::kKillRack: {
        const std::size_t rack = checked_domain(e, topology);
        for (const topo::HostId h : topology.hosts_in_rack(rack)) {
          FaultEvent crash = e;
          crash.kind = FaultKind::kCrash;
          crash.host = static_cast<int>(h);
          crash.domain = -1;
          lowered.add(std::move(crash));
        }
        break;
      }
      case FaultKind::kPartitionSwitch: {
        const std::size_t rack = checked_domain(e, topology);
        FaultEvent partition = e;
        partition.kind = FaultKind::kPartition;
        partition.group.assign(topology.hosts_in_rack(rack).begin(),
                               topology.hosts_in_rack(rack).end());
        partition.domain = -1;
        lowered.add(std::move(partition));
        break;
      }
      case FaultKind::kLoss: {
        if (e.domain < 0) {
          lowered.add(e);
          break;
        }
        const std::size_t rack = checked_domain(e, topology);
        FaultEvent loss = e;
        loss.group.assign(topology.hosts_in_rack(rack).begin(),
                          topology.hosts_in_rack(rack).end());
        loss.domain = -1;
        lowered.add(std::move(loss));
        break;
      }
      default:
        lowered.add(e);
        break;
    }
  }
  return lowered;
}

}  // namespace sanperf::faults
