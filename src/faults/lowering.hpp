// Lowers domain-scoped fault events to per-host events by walking a
// topology's failure-domain tree (cortx-motr style: the rack is the unit
// of correlated failure).
//
//   kill_rack(r)        -> one crash (or crash_recover) per host in rack r
//   partition_switch(r) -> a partition of rack r's hosts vs the rest
//   domain loss(r)      -> the loss window scoped to frames touching rack r
//
// Lowering is idempotent on host-scoped plans (they pass through
// untouched), so callers may lower defensively. The FaultInjector lowers
// automatically against the cluster's topology (falling back to the
// degenerate single-rack topology when none is configured -- where
// kill_rack(0) means "kill everything" and partition_switch is rejected by
// validation, exactly as a one-switch network behaves).
#pragma once

#include "faults/plan.hpp"
#include "topo/topology.hpp"

namespace sanperf::faults {

/// Expands every domain-scoped event of `plan` against `topology`,
/// preserving event order (a kill_rack expands to its per-host crashes in
/// rack-member order, in place). Throws std::invalid_argument on a domain
/// index outside the topology.
[[nodiscard]] FaultPlan lower_plan(const FaultPlan& plan, const topo::Topology& topology);

}  // namespace sanperf::faults
