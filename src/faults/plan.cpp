#include "faults/plan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/json.hpp"

namespace sanperf::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kLoss: return "loss";
    case FaultKind::kCpuSlow: return "cpu_slow";
    case FaultKind::kPipelineSlow: return "pipeline_slow";
    case FaultKind::kAddHost: return "add_host";
    case FaultKind::kRemoveHost: return "remove_host";
    case FaultKind::kRollingRestart: return "rolling_restart";
    case FaultKind::kKillRack: return "kill_rack";
    case FaultKind::kPartitionSwitch: return "partition_switch";
  }
  return "?";
}

FaultKind fault_kind_from_string(std::string_view text) {
  if (text == "crash") return FaultKind::kCrash;
  if (text == "partition") return FaultKind::kPartition;
  if (text == "loss") return FaultKind::kLoss;
  if (text == "cpu_slow") return FaultKind::kCpuSlow;
  if (text == "pipeline_slow") return FaultKind::kPipelineSlow;
  if (text == "add_host") return FaultKind::kAddHost;
  if (text == "remove_host") return FaultKind::kRemoveHost;
  if (text == "rolling_restart") return FaultKind::kRollingRestart;
  if (text == "kill_rack") return FaultKind::kKillRack;
  if (text == "partition_switch") return FaultKind::kPartitionSwitch;
  throw std::invalid_argument{"FaultPlan: unknown fault kind '" + std::string{text} + "'"};
}

FaultEvent FaultPlan::crash(int host, double at_ms) {
  FaultEvent e;
  e.kind = FaultKind::kCrash;
  e.at_ms = at_ms;
  e.host = host;
  return e;
}

FaultEvent FaultPlan::crash_recover(int host, double at_ms, double downtime_ms) {
  FaultEvent e = crash(host, at_ms);
  e.duration_ms = downtime_ms;
  return e;
}

FaultEvent FaultPlan::partition(std::vector<HostId> group, double at_ms, double heal_after_ms) {
  FaultEvent e;
  e.kind = FaultKind::kPartition;
  e.at_ms = at_ms;
  e.duration_ms = heal_after_ms;
  e.group = std::move(group);
  return e;
}

FaultEvent FaultPlan::loss(double at_ms, double duration_ms, double loss_p, double duplicate_p) {
  FaultEvent e;
  e.kind = FaultKind::kLoss;
  e.at_ms = at_ms;
  e.duration_ms = duration_ms;
  e.loss_p = loss_p;
  e.duplicate_p = duplicate_p;
  return e;
}

FaultEvent FaultPlan::cpu_slow(int host, double at_ms, double duration_ms, double factor) {
  FaultEvent e;
  e.kind = FaultKind::kCpuSlow;
  e.at_ms = at_ms;
  e.duration_ms = duration_ms;
  e.host = host;
  e.factor = factor;
  return e;
}

FaultEvent FaultPlan::pipeline_slow(double at_ms, double duration_ms, double factor) {
  FaultEvent e;
  e.kind = FaultKind::kPipelineSlow;
  e.at_ms = at_ms;
  e.duration_ms = duration_ms;
  e.factor = factor;
  return e;
}

FaultEvent FaultPlan::add_host(int host, double at_ms) {
  FaultEvent e;
  e.kind = FaultKind::kAddHost;
  e.at_ms = at_ms;
  e.host = host;
  e.duration_ms = kForeverMs;  // membership changes have no window
  return e;
}

FaultEvent FaultPlan::remove_host(int host, double at_ms) {
  FaultEvent e = add_host(host, at_ms);
  e.kind = FaultKind::kRemoveHost;
  return e;
}

FaultEvent FaultPlan::rolling_restart(double at_ms, double downtime_ms, double stagger_ms) {
  FaultEvent e;
  e.kind = FaultKind::kRollingRestart;
  e.at_ms = at_ms;
  e.duration_ms = downtime_ms;
  e.stagger_ms = stagger_ms;
  return e;
}

FaultEvent FaultPlan::kill_rack(int rack, double at_ms, double downtime_ms) {
  FaultEvent e;
  e.kind = FaultKind::kKillRack;
  e.at_ms = at_ms;
  e.duration_ms = downtime_ms;
  e.domain = rack;
  return e;
}

FaultEvent FaultPlan::partition_switch(int rack, double at_ms, double heal_after_ms) {
  FaultEvent e;
  e.kind = FaultKind::kPartitionSwitch;
  e.at_ms = at_ms;
  e.duration_ms = heal_after_ms;
  e.domain = rack;
  return e;
}

FaultEvent FaultPlan::domain_loss(int rack, double at_ms, double duration_ms, double loss_p,
                                  double duplicate_p) {
  FaultEvent e = loss(at_ms, duration_ms, loss_p, duplicate_p);
  e.domain = rack;
  return e;
}

namespace {

[[noreturn]] void bad_event(std::size_t index, const std::string& what) {
  throw std::invalid_argument{"FaultPlan: event " + std::to_string(index) + ": " + what};
}

}  // namespace

void FaultPlan::validate(std::size_t n) const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    if (std::isnan(e.at_ms)) bad_event(i, "at_ms is NaN");
    if (std::isnan(e.duration_ms) || !(e.duration_ms > 0)) {
      bad_event(i, "duration_ms must be > 0 (kForeverMs for permanent)");
    }
    switch (e.kind) {
      case FaultKind::kCrash:
        if (e.host < 0 || static_cast<std::size_t>(e.host) >= n) {
          bad_event(i, "crash host out of range");
        }
        break;
      case FaultKind::kPartition: {
        if (e.group.empty()) bad_event(i, "partition group is empty");
        std::vector<char> seen(n, 0);
        for (const HostId h : e.group) {
          if (h >= n) bad_event(i, "partition host out of range");
          if (seen[h]) bad_event(i, "partition host repeated");
          seen[h] = 1;
        }
        if (e.group.size() >= n) bad_event(i, "partition group covers every host");
        break;
      }
      case FaultKind::kLoss: {
        if (!(e.loss_p >= 0) || e.loss_p > 1) bad_event(i, "loss_p outside [0, 1]");
        if (!(e.duplicate_p >= 0) || e.duplicate_p > 1) {
          bad_event(i, "duplicate_p outside [0, 1]");
        }
        if (e.loss_p == 0 && e.duplicate_p == 0) bad_event(i, "loss window with p = 0");
        if (e.domain >= 0 && !e.group.empty()) {
          bad_event(i, "loss window with both a domain and an explicit group");
        }
        std::vector<char> seen(n, 0);
        for (const HostId h : e.group) {
          if (h >= n) bad_event(i, "loss group host out of range");
          if (seen[h]) bad_event(i, "loss group host repeated");
          seen[h] = 1;
        }
        break;
      }
      case FaultKind::kCpuSlow:
        if (e.host >= static_cast<int>(n)) bad_event(i, "cpu_slow host out of range");
        [[fallthrough]];
      case FaultKind::kPipelineSlow:
        if (!(e.factor > 0)) bad_event(i, "factor must be > 0");
        break;
      case FaultKind::kAddHost:
      case FaultKind::kRemoveHost:
        if (e.host < 0 || static_cast<std::size_t>(e.host) >= n) {
          bad_event(i, "membership host out of range");
        }
        break;
      case FaultKind::kRollingRestart:
        if (e.permanent()) bad_event(i, "rolling_restart needs a finite downtime");
        if (std::isnan(e.stagger_ms) || e.stagger_ms < 0) {
          bad_event(i, "stagger_ms must be >= 0");
        }
        break;
      case FaultKind::kKillRack:
        // The rack index is range-checked against the topology at lowering
        // time (faults::lower_plan); an n-host validation only knows it
        // must be a real domain.
        if (e.domain < 0) bad_event(i, "kill_rack without a domain");
        break;
      case FaultKind::kPartitionSwitch:
        if (e.domain < 0) bad_event(i, "partition_switch without a domain");
        break;
    }
  }
}

std::vector<HostId> FaultPlan::initially_down() const {
  std::vector<HostId> down;
  for (const FaultEvent& e : events_) {
    // Crashed at or before the start, and still down when it happens: a
    // crash whose recovery also predates the start never shows.
    if (e.kind != FaultKind::kCrash || e.at_ms > 0 || e.end_ms() <= 0) continue;
    const auto h = static_cast<HostId>(e.host);
    if (std::find(down.begin(), down.end(), h) == down.end()) down.push_back(h);
  }
  std::sort(down.begin(), down.end());
  return down;
}

bool FaultPlan::partitioned_at(double now_ms, HostId a, HostId b) const {
  for (const FaultEvent& e : events_) {
    if (e.kind != FaultKind::kPartition || !e.active_at(now_ms)) continue;
    const bool a_in = std::find(e.group.begin(), e.group.end(), a) != e.group.end();
    const bool b_in = std::find(e.group.begin(), e.group.end(), b) != e.group.end();
    if (a_in != b_in) return true;
  }
  return false;
}

double FaultPlan::cpu_scale_at(double now_ms, HostId host) const {
  double scale = 1.0;
  for (const FaultEvent& e : events_) {
    if (e.kind != FaultKind::kCpuSlow || !e.active_at(now_ms)) continue;
    if (e.host < 0 || static_cast<HostId>(e.host) == host) scale = e.factor;
  }
  return scale;
}

double FaultPlan::pipeline_scale_at(double now_ms) const {
  double scale = 1.0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kPipelineSlow && e.active_at(now_ms)) scale = e.factor;
  }
  return scale;
}

bool FaultPlan::filters_frames() const {
  return std::any_of(events_.begin(), events_.end(), [](const FaultEvent& e) {
    return e.kind == FaultKind::kPartition || e.kind == FaultKind::kLoss ||
           e.kind == FaultKind::kPartitionSwitch;
  });
}

bool FaultPlan::has_domain_events() const {
  return std::any_of(events_.begin(), events_.end(), [](const FaultEvent& e) {
    return e.kind == FaultKind::kKillRack || e.kind == FaultKind::kPartitionSwitch ||
           (e.kind == FaultKind::kLoss && e.domain >= 0);
  });
}

// --- JSON --------------------------------------------------------------------

std::string FaultPlan::to_json() const {
  std::ostringstream os;
  os << "{\"events\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    os << (i == 0 ? "" : ",") << "{\"kind\":\"" << to_string(e.kind) << "\",\"at_ms\":"
       << core::detail::json_exact(e.at_ms);
    if (!e.permanent()) os << ",\"duration_ms\":" << core::detail::json_exact(e.duration_ms);
    if (e.kind == FaultKind::kCrash || e.kind == FaultKind::kAddHost ||
        e.kind == FaultKind::kRemoveHost ||
        (e.kind == FaultKind::kCpuSlow && e.host >= 0)) {
      os << ",\"host\":" << e.host;
    }
    if (e.kind == FaultKind::kRollingRestart && e.stagger_ms != 0) {
      os << ",\"stagger_ms\":" << core::detail::json_exact(e.stagger_ms);
    }
    if (e.domain >= 0) os << ",\"domain\":" << e.domain;
    if (e.kind == FaultKind::kPartition || (e.kind == FaultKind::kLoss && !e.group.empty())) {
      os << ",\"group\":[";
      for (std::size_t g = 0; g < e.group.size(); ++g) {
        os << (g == 0 ? "" : ",") << e.group[g];
      }
      os << ']';
    }
    if (e.kind == FaultKind::kLoss) {
      os << ",\"loss_p\":" << core::detail::json_exact(e.loss_p);
      if (e.duplicate_p > 0) {
        os << ",\"duplicate_p\":" << core::detail::json_exact(e.duplicate_p);
      }
    }
    if (e.kind == FaultKind::kCpuSlow || e.kind == FaultKind::kPipelineSlow) {
      os << ",\"factor\":" << core::detail::json_exact(e.factor);
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

FaultPlan FaultPlan::from_json(const std::string& text) {
  using core::detail::JsonParser;
  const auto root = JsonParser{text, "FaultPlan::from_json"}.parse();
  const auto* events = JsonParser::field(root, "events");
  if (events == nullptr || !events->array) {
    throw std::invalid_argument{"FaultPlan::from_json: missing \"events\" array"};
  }
  const auto number = [](const JsonParser::JsonValue* v, double fallback) {
    if (v == nullptr) return fallback;
    if (!v->number) throw std::invalid_argument{"FaultPlan::from_json: expected a number"};
    return *v->number;
  };

  FaultPlan plan;
  for (const auto& ev : events->array.value()) {
    const auto* kind = JsonParser::field(ev, "kind");
    if (kind == nullptr || !kind->string) {
      throw std::invalid_argument{"FaultPlan::from_json: event without a \"kind\""};
    }
    FaultEvent e;
    e.kind = fault_kind_from_string(*kind->string);
    e.at_ms = number(JsonParser::field(ev, "at_ms"), 0.0);
    e.duration_ms = number(JsonParser::field(ev, "duration_ms"), kForeverMs);
    e.host = static_cast<int>(number(JsonParser::field(ev, "host"), -1.0));
    e.loss_p = number(JsonParser::field(ev, "loss_p"), 0.0);
    e.duplicate_p = number(JsonParser::field(ev, "duplicate_p"), 0.0);
    e.factor = number(JsonParser::field(ev, "factor"), 1.0);
    e.stagger_ms = number(JsonParser::field(ev, "stagger_ms"), 0.0);
    e.domain = static_cast<int>(number(JsonParser::field(ev, "domain"), -1.0));
    if (const auto* group = JsonParser::field(ev, "group"); group != nullptr) {
      if (!group->array) {
        throw std::invalid_argument{"FaultPlan::from_json: \"group\" must be an array"};
      }
      for (const auto& h : *group->array) {
        const double id = number(&h, -1.0);
        if (id < 0) throw std::invalid_argument{"FaultPlan::from_json: negative group host"};
        e.group.push_back(static_cast<HostId>(id));
      }
    }
    plan.add(std::move(e));
  }
  return plan;
}

}  // namespace sanperf::faults
