// Declarative fault plans (SimGrid-style host/link availability profiles,
// adapted to the paper's emulated cluster).
//
// A FaultPlan is an ordered schedule of typed FaultEvents -- host crashes
// (with optional warm recovery), network partitions that heal, windows of
// probabilistic message loss/duplication, and CPU / pipeline slowdown
// intervals -- described independently of any protocol code. The
// FaultInjector replays a plan on a runtime::Cluster through DES-scheduled
// hooks; plans round-trip through JSON (the ResultTable-style mini-parser)
// so campaign scenarios and the `sanperf run --fault-plan plan.json` CLI
// share one schema.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace sanperf::faults {

/// Same underlying type as net::HostId / runtime::HostId; spelled out so
/// this header (which core/campaign.hpp exposes) stays dependency-free.
using HostId = std::uint32_t;

/// Open-ended duration: a permanent crash, a partition that never heals, a
/// slowdown that lasts the whole run.
inline constexpr double kForeverMs = std::numeric_limits<double>::infinity();

enum class FaultKind : std::uint8_t {
  kCrash,           ///< host crash at `at_ms`; warm restart after `duration_ms`
  kPartition,       ///< `group` vs the rest cannot exchange frames
  kLoss,            ///< probabilistic frame loss / duplication window
  kCpuSlow,         ///< host CPU service times stretched by `factor`
  kPipelineSlow,    ///< protocol-stack pipeline latency stretched by `factor`
  kAddHost,         ///< membership: decide `host` into the group at `at_ms`
  kRemoveHost,      ///< membership: decide `host` out of the group at `at_ms`
  kRollingRestart,  ///< every host in turn: crash at `at_ms + i*stagger_ms`,
                    ///< recover after `duration_ms`
  kKillRack,        ///< domain-scoped: every host in rack `domain` crashes at
                    ///< `at_ms`, recovering after `duration_ms`
  kPartitionSwitch, ///< domain-scoped: rack `domain`'s ToR switch cut off --
                    ///< lowers to a partition of its hosts vs the rest
};

[[nodiscard]] const char* to_string(FaultKind kind);
[[nodiscard]] FaultKind fault_kind_from_string(std::string_view text);

/// One scheduled fault. Fields beyond (kind, at_ms, duration_ms) apply only
/// to the kinds documented on them; the rest keep their defaults.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  /// Schedule time. <= 0 means "before the simulation starts" (the
  /// degenerate single-crash plan reproducing the paper's Table 1).
  double at_ms = 0;
  /// Window length (partition/loss/slowdown) or downtime before the warm
  /// restart (crash). kForeverMs = permanent / open-ended.
  double duration_ms = kForeverMs;
  /// Crash / cpu-slow target host; -1 on kCpuSlow means every host.
  int host = -1;
  /// Partition: the hosts on one side (the rest form the other side).
  /// Loss: when non-empty, the window applies only to frames with src or
  /// dst in the group (a flaky rack switch); empty = every frame (legacy).
  std::vector<HostId> group;
  /// Loss window: per-frame drop and duplication probabilities.
  double loss_p = 0;
  double duplicate_p = 0;
  /// Slowdown multiplier (> 1 slows, 1 restores nominal service times).
  double factor = 1.0;
  /// Rolling restart: gap between consecutive hosts' crash times (0 = all
  /// hosts bounce together).
  double stagger_ms = 0;
  /// Failure-domain index (a rack in the topology's rack tree) for
  /// kKillRack / kPartitionSwitch, or for a kLoss window scoped to one
  /// domain. -1 = not domain-scoped. Domain events are expanded to
  /// per-host events by faults::lower_plan walking a topo::Topology (the
  /// injector lowers automatically against the cluster's topology).
  int domain = -1;

  [[nodiscard]] bool permanent() const { return duration_ms == kForeverMs; }
  /// End of the window / downtime (kForeverMs-safe).
  [[nodiscard]] double end_ms() const { return permanent() ? kForeverMs : at_ms + duration_ms; }
  [[nodiscard]] bool active_at(double now_ms) const {
    return now_ms >= at_ms && now_ms < end_ms();
  }

  bool operator==(const FaultEvent&) const = default;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultEvent> events) : events_{std::move(events)} {}

  // Event builders (the common shapes, so plans read declaratively).
  [[nodiscard]] static FaultEvent crash(int host, double at_ms);
  [[nodiscard]] static FaultEvent crash_recover(int host, double at_ms, double downtime_ms);
  [[nodiscard]] static FaultEvent partition(std::vector<HostId> group, double at_ms,
                                            double heal_after_ms);
  [[nodiscard]] static FaultEvent loss(double at_ms, double duration_ms, double loss_p,
                                       double duplicate_p = 0);
  [[nodiscard]] static FaultEvent cpu_slow(int host, double at_ms, double duration_ms,
                                           double factor);
  [[nodiscard]] static FaultEvent pipeline_slow(double at_ms, double duration_ms, double factor);
  /// Membership changes, decided in-stream by the workload engine (the
  /// injector ignores them: they are consensus decisions, not injections).
  [[nodiscard]] static FaultEvent add_host(int host, double at_ms);
  [[nodiscard]] static FaultEvent remove_host(int host, double at_ms);
  /// Crash/recover every host in turn: host i goes down at
  /// `at_ms + i*stagger_ms` for `downtime_ms`.
  [[nodiscard]] static FaultEvent rolling_restart(double at_ms, double downtime_ms,
                                                  double stagger_ms);
  /// Domain-scoped events (lowered against a topo::Topology): kill every
  /// host in a rack, cut a rack's ToR switch off, or scope a loss window
  /// to the frames touching one rack.
  [[nodiscard]] static FaultEvent kill_rack(int rack, double at_ms,
                                            double downtime_ms = kForeverMs);
  [[nodiscard]] static FaultEvent partition_switch(int rack, double at_ms,
                                                   double heal_after_ms);
  [[nodiscard]] static FaultEvent domain_loss(int rack, double at_ms, double duration_ms,
                                              double loss_p, double duplicate_p = 0);

  FaultPlan& add(FaultEvent event) {
    events_.push_back(std::move(event));
    return *this;
  }

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Throws std::invalid_argument on an event that cannot apply to an
  /// n-host cluster (host out of range, probability outside [0, 1],
  /// factor <= 0, empty or full partition group, negative duration).
  void validate(std::size_t n) const;

  /// Hosts with a crash scheduled at or before the start -- the set a
  /// class-2 static failure detector pre-suspects (a crash-at-0 plan is
  /// then bit-identical to the paper's crash_initially runs).
  [[nodiscard]] std::vector<HostId> initially_down() const;

  /// True when some active partition separates a and b at `now_ms`.
  [[nodiscard]] bool partitioned_at(double now_ms, HostId a, HostId b) const;

  /// Effective service-time scales at `now_ms`: the factor of the last
  /// active matching slowdown event in plan order, 1.0 when none is. The
  /// injector recomputes these at every window boundary, so overlapping
  /// windows cannot clobber each other on reset.
  [[nodiscard]] double cpu_scale_at(double now_ms, HostId host) const;
  [[nodiscard]] double pipeline_scale_at(double now_ms) const;

  /// True when any loss window or partition is scheduled (whether the
  /// injector needs the receiver-edge frame filter at all).
  [[nodiscard]] bool filters_frames() const;

  /// True when the plan carries domain-scoped events (kKillRack,
  /// kPartitionSwitch, domain-scoped loss) that must be lowered against a
  /// topology before the injector can replay them.
  [[nodiscard]] bool has_domain_events() const;

  // JSON round-trip: {"events":[{"kind":"crash","at_ms":0,"host":0}, ...]}.
  // Writers omit defaulted fields; omitted duration_ms reads back as
  // permanent. Doubles print with %.17g, so plans round-trip bit-exactly.
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static FaultPlan from_json(const std::string& text);

  bool operator==(const FaultPlan&) const = default;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace sanperf::faults
