#include "faults/synth.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/json.hpp"
#include "des/random.hpp"

namespace sanperf::faults {

void WeibullPlanSpec::validate() const {
  if (!(shape > 0)) throw std::invalid_argument{"WeibullPlanSpec: shape must be > 0"};
  if (!(scale_ms > 0)) throw std::invalid_argument{"WeibullPlanSpec: scale_ms must be > 0"};
  if (!(horizon_ms > 0)) throw std::invalid_argument{"WeibullPlanSpec: horizon_ms must be > 0"};
  if (!(downtime_ms > 0)) {
    throw std::invalid_argument{"WeibullPlanSpec: downtime_ms must be > 0 (kForeverMs ok)"};
  }
  if (scope != "host" && scope != "rack") {
    throw std::invalid_argument{"WeibullPlanSpec: scope must be \"host\" or \"rack\", got '" +
                                scope + "'"};
  }
  if (domains == 0) throw std::invalid_argument{"WeibullPlanSpec: domains must be >= 1"};
}

FaultPlan synthesize_weibull_plan(const WeibullPlanSpec& spec) {
  spec.validate();
  const bool rack_scope = spec.scope == "rack";
  const bool permanent = spec.downtime_ms == kForeverMs;
  std::vector<FaultEvent> events;
  for (std::size_t d = 0; d < spec.domains; ++d) {
    // One renewal process per domain on its own substream: adding a domain
    // (or reordering the loop) never perturbs another domain's draws.
    des::RandomEngine rng = des::RandomEngine{spec.seed}.substream("weibull_plan", d);
    double clock_ms = 0;
    for (;;) {
      clock_ms += rng.weibull(spec.shape, spec.scale_ms);
      if (!(clock_ms < spec.horizon_ms)) break;
      if (rack_scope) {
        events.push_back(FaultPlan::kill_rack(static_cast<int>(d), clock_ms, spec.downtime_ms));
      } else if (permanent) {
        events.push_back(FaultPlan::crash(static_cast<int>(d), clock_ms));
      } else {
        events.push_back(
            FaultPlan::crash_recover(static_cast<int>(d), clock_ms, spec.downtime_ms));
      }
      if (permanent) break;  // the domain never comes back; its process ends
      clock_ms += spec.downtime_ms;
    }
  }
  // Chronological order reads naturally and is deterministic: within a
  // domain times strictly increase, and ties across domains break on the
  // domain/host index.
  std::sort(events.begin(), events.end(), [](const FaultEvent& a, const FaultEvent& b) {
    if (a.at_ms != b.at_ms) return a.at_ms < b.at_ms;
    if (a.host != b.host) return a.host < b.host;
    return a.domain < b.domain;
  });
  return FaultPlan{std::move(events)};
}

// --- JSON --------------------------------------------------------------------

std::string WeibullPlanSpec::to_json() const {
  std::ostringstream os;
  os << "{\"shape\":" << core::detail::json_exact(shape)
     << ",\"scale_ms\":" << core::detail::json_exact(scale_ms)
     << ",\"horizon_ms\":" << core::detail::json_exact(horizon_ms);
  if (downtime_ms != kForeverMs) {
    os << ",\"downtime_ms\":" << core::detail::json_exact(downtime_ms);
  }
  os << ",\"scope\":\"" << scope << "\",\"domains\":" << domains << ",\"seed\":" << seed << '}';
  return os.str();
}

WeibullPlanSpec WeibullPlanSpec::from_json(const std::string& text) {
  using core::detail::JsonParser;
  const auto root = JsonParser{text, "WeibullPlanSpec::from_json"}.parse();
  const auto number = [](const JsonParser::JsonValue* v, double fallback) {
    if (v == nullptr) return fallback;
    if (!v->number) throw std::invalid_argument{"WeibullPlanSpec::from_json: expected a number"};
    return *v->number;
  };
  WeibullPlanSpec spec;
  spec.shape = number(JsonParser::field(root, "shape"), spec.shape);
  spec.scale_ms = number(JsonParser::field(root, "scale_ms"), spec.scale_ms);
  spec.horizon_ms = number(JsonParser::field(root, "horizon_ms"), spec.horizon_ms);
  spec.downtime_ms = number(JsonParser::field(root, "downtime_ms"), kForeverMs);
  if (const auto* scope = JsonParser::field(root, "scope"); scope != nullptr) {
    if (!scope->string) {
      throw std::invalid_argument{"WeibullPlanSpec::from_json: \"scope\" must be a string"};
    }
    spec.scope = *scope->string;
  }
  spec.domains = static_cast<std::size_t>(number(JsonParser::field(root, "domains"),
                                                 static_cast<double>(spec.domains)));
  if (const auto* seed = JsonParser::field(root, "seed"); seed != nullptr) {
    if (!seed->number) {
      throw std::invalid_argument{"WeibullPlanSpec::from_json: \"seed\" must be a number"};
    }
    // The raw token keeps 64-bit seeds exact past 2^53.
    spec.seed = std::stoull(seed->number_text);
  }
  spec.validate();
  return spec;
}

}  // namespace sanperf::faults
