// Synthesizes FaultPlans from a fault-rate spec: a Weibull-distributed
// random-crash renewal process per failure domain.
//
// The dependability literature's standard lifetime model: inter-failure
// times draw Weibull(shape, scale) -- shape < 1 captures infant mortality
// (hazard decreasing over a domain's uptime), shape = 1 degenerates to a
// Poisson process, shape > 1 to wear-out. Each domain (a host, or a rack
// as the unit of correlated failure) runs its own renewal process on a
// named RNG substream derived from the spec seed, so a synthesized plan is
// a pure function of its spec: same seed, same plan, bit for bit --
// `sanperf plan` emits JSON that replays identically anywhere.
#pragma once

#include <cstdint>
#include <string>

#include "faults/plan.hpp"

namespace sanperf::faults {

/// Fault-rate spec for synthesize_weibull_plan. Round-trips through JSON
/// (canonical %.17g form) so specs are artifacts like plans are.
struct WeibullPlanSpec {
  /// Weibull shape k (1 = memoryless, <1 infant mortality, >1 wear-out).
  double shape = 1.0;
  /// Weibull scale lambda in ms: the characteristic time to failure.
  double scale_ms = 20000.0;
  /// Crashes are generated while the domain clock is below this horizon.
  double horizon_ms = 60000.0;
  /// Downtime after each crash before the warm restart; kForeverMs makes
  /// the first crash of each domain permanent (and the process stops).
  double downtime_ms = kForeverMs;
  /// "host": domain i crashes host i. "rack": domain i is a kill_rack(i)
  /// event, lowered against the run topology's failure-domain tree.
  std::string scope = "host";
  /// Number of failure domains the process covers (hosts or racks).
  std::size_t domains = 1;
  std::uint64_t seed = 1;

  /// Throws std::invalid_argument on a non-positive shape/scale/horizon,
  /// zero domains, or an unknown scope.
  void validate() const;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static WeibullPlanSpec from_json(const std::string& text);

  bool operator==(const WeibullPlanSpec&) const = default;
};

/// Generates the plan: per domain d, a renewal process on substream
/// ("weibull_plan", d) of the spec seed emits crash (host scope) or
/// kill_rack (rack scope) events until the horizon; finite downtimes
/// advance the domain clock across each outage. Events are ordered by
/// (at_ms, domain), so the result is a deterministic pure function of the
/// spec. Validates the spec first.
[[nodiscard]] FaultPlan synthesize_weibull_plan(const WeibullPlanSpec& spec);

}  // namespace sanperf::faults
