// The failure-detector interface consumed by the consensus layer, plus the
// static detector used for run classes 1 and 2 (Section 2.4): complete and
// accurate detectors whose output never changes during a run.
#pragma once

#include <functional>
#include <set>

#include "runtime/process.hpp"

namespace sanperf::fd {

using runtime::HostId;

/// Suspicion callback: (peer, now_suspected).
using SuspicionListener = std::function<void(HostId, bool)>;

class FailureDetector {
 public:
  virtual ~FailureDetector() = default;

  [[nodiscard]] virtual bool is_suspected(HostId peer) const = 0;

  /// Registers an additional listener; all registered listeners fire on
  /// every suspicion change.
  virtual void add_listener(SuspicionListener listener) = 0;
};

/// A detector with a fixed suspicion set. With an empty set it models the
/// accurate detectors of class 1; with the crashed process in the set it
/// models the complete-and-accurate detectors of class 2.
class StaticFd : public runtime::Layer, public FailureDetector {
 public:
  explicit StaticFd(std::set<HostId> suspected = {}) : suspected_{std::move(suspected)} {}

  [[nodiscard]] bool is_suspected(HostId peer) const override {
    return suspected_.contains(peer);
  }
  void add_listener(SuspicionListener) override {}  // output never changes
  void on_message(const runtime::Message&) override {}

 private:
  std::set<HostId> suspected_;
};

}  // namespace sanperf::fd
