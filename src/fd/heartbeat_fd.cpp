#include "fd/heartbeat_fd.hpp"

#include <algorithm>

namespace sanperf::fd {

void HeartbeatFd::set_membership(consensus::MembershipView* view) {
  view_ = view;
  if (view_ != nullptr) {
    view_->add_listener(
        [this](consensus::MembershipView::Epoch epoch) { on_epoch_change(epoch); });
  }
}

void HeartbeatFd::on_start() {
  const std::size_t n = process().n();
  suspected_.assign(n, 0);
  last_msg_.assign(n, process().now());
  history_.assign(n, PairHistory{});
  known_incarnation_.assign(n, 0);
  for (HostId peer = 0; peer < static_cast<HostId>(n); ++peer) {
    if (peer == process().id()) continue;
    arm_check(peer, process().now() + params_.timeout);
  }
  send_heartbeat_round();
}

void HeartbeatFd::send_heartbeat_round() {
  if (stopped_) return;
  runtime::Message hb;
  hb.kind = runtime::MsgKind::kHeartbeat;
  if (view_ == nullptr) {
    process().broadcast(hb);
  } else {
    // Only current members monitor this host; heartbeating a non-member
    // would wake a removed (crashed) process for nothing.
    for (const consensus::MemberId m : view_->members()) {
      const auto peer = static_cast<HostId>(m);
      if (peer == process().id()) continue;
      process().send(hb, peer);
    }
  }
  ++heartbeats_sent_;
  // Thread-style sleep: subject to tick quantisation and stalls.
  process().set_os_timer(params_.heartbeat_period, [this] { send_heartbeat_round(); });
}

void HeartbeatFd::arm_check(HostId peer, des::TimePoint nominal) {
  const des::Duration delay =
      nominal > process().now() ? nominal - process().now() : des::Duration::zero();
  process().set_os_timer(delay, [this, peer] { check_timeout(peer); });
}

void HeartbeatFd::check_timeout(HostId peer) {
  if (stopped_) return;
  const des::TimePoint now = process().now();
  if (view_ != nullptr && !view_->is_member(peer)) {
    // Not (or no longer) a member: its silence means nothing. Keep the
    // wake-up alive -- the peer may join later, and on_epoch_change resets
    // its reception clock at that instant.
    last_msg_[peer] = now;
    arm_check(peer, now + params_.timeout);
    return;
  }
  if (!suspected_[peer] && now - last_msg_[peer] >= params_.timeout) {
    suspected_[peer] = 1;
    history_[peer].record(now, /*to_suspect=*/true);
    notify(peer, true);
  }
  // One outstanding wake-up per peer: while trusting, sleep until the
  // current timeout deadline; while suspecting, poll every T (the suspicion
  // itself only clears on a reception, which is event-driven).
  arm_check(peer, suspected_[peer] ? now + params_.timeout : last_msg_[peer] + params_.timeout);
}

void HeartbeatFd::on_message(const runtime::Message& m) {
  if (stopped_) return;
  const HostId peer = m.from;
  if (peer == process().id()) return;
  if (m.incarnation > known_incarnation_[peer]) {
    // The peer crashed and warm-restarted since its last message. If the
    // downtime beat the timeout, the crash was never suspected: surface it
    // as an instantaneous suspect->trust blip so layers above re-evaluate
    // the peer (it lost its volatile state even though it looks alive).
    // The trust half is restored by the common path below.
    known_incarnation_[peer] = m.incarnation;
    if (!suspected_[peer]) {
      suspected_[peer] = 1;
      history_[peer].record(process().now(), /*to_suspect=*/true);
      notify(peer, true);
    }
  }
  // Any message from `peer` counts (heartbeat or application message).
  last_msg_[peer] = process().now();
  if (suspected_[peer]) {
    suspected_[peer] = 0;
    history_[peer].record(process().now(), /*to_suspect=*/false);
    notify(peer, false);
  }
}

void HeartbeatFd::on_crash() { stopped_ = true; }

void HeartbeatFd::on_restart() {
  stopped_ = false;
  const std::size_t n = process().n();
  const des::TimePoint now = process().now();
  // A host crashed before the cluster started never ran on_start: initialise
  // from scratch. Otherwise keep the histories (QoS estimation spans the
  // whole experiment) but reset the volatile monitoring state.
  if (suspected_.size() != n) suspected_.assign(n, 0);
  if (history_.size() != n) history_.assign(n, PairHistory{});
  if (known_incarnation_.size() != n) known_incarnation_.assign(n, 0);
  last_msg_.assign(n, now);
  for (HostId peer = 0; peer < static_cast<HostId>(n); ++peer) {
    if (peer == process().id()) continue;
    if (suspected_[peer]) {
      // The restarted monitor trusts everyone afresh; record the transition
      // so the history keeps alternating (and QoS sees the suspicion end).
      suspected_[peer] = 0;
      history_[peer].record(now, /*to_suspect=*/false);
      notify(peer, false);
    }
    arm_check(peer, now + params_.timeout);
  }
  send_heartbeat_round();
}

bool HeartbeatFd::is_suspected(HostId peer) const {
  return peer < suspected_.size() && suspected_[peer] != 0;
}

void HeartbeatFd::notify(HostId peer, bool suspected) {
  for (const auto& l : listeners_) l(peer, suspected);
}

void HeartbeatFd::on_epoch_change(consensus::MembershipView::Epoch epoch) {
  // Fires synchronously inside MembershipView::add/remove. Crashed monitors
  // (and ones whose host never started) re-derive everything on restart.
  if (stopped_ || epoch == 0 || last_msg_.size() != process().n()) return;
  const des::TimePoint now = process().now();
  const auto& cur = view_->members_at(epoch);
  const auto& prev = view_->members_at(epoch - 1);
  const auto in = [](const std::vector<consensus::MemberId>& group, HostId h) {
    return std::find(group.begin(), group.end(), static_cast<consensus::MemberId>(h)) !=
           group.end();
  };
  for (const consensus::MemberId m : cur) {
    const auto peer = static_cast<HostId>(m);
    if (peer == process().id() || in(prev, peer)) continue;
    // Newly added member: start trusted with a fresh reception clock (its
    // pre-join silence must not fire an instant suspicion).
    last_msg_[peer] = now;
    if (suspected_[peer]) {
      suspected_[peer] = 0;
      history_[peer].record(now, /*to_suspect=*/false);
      notify(peer, false);
    }
  }
  for (const consensus::MemberId m : prev) {
    const auto peer = static_cast<HostId>(m);
    if (peer == process().id() || in(cur, peer)) continue;
    if (suspected_[peer]) {
      // Removed member: the suspicion is moot; retire it so the history
      // keeps alternating.
      suspected_[peer] = 0;
      history_[peer].record(now, /*to_suspect=*/false);
      notify(peer, false);
    }
  }
}

}  // namespace sanperf::fd
