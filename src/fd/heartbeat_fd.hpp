// Push-style heartbeat failure detection (Section 2.2, Fig 1).
//
// Every process periodically broadcasts a heartbeat. Process p starts
// suspecting q when it has received no message from q (heartbeat or
// application message) for longer than the timeout T; the reception of any
// message from q clears the suspicion and resets the timer.
//
// Both halves of the detector run on OS timers (tick quantisation and
// stalls, the TimerModel): the heartbeat sender sleeps Th between rounds,
// and the monitoring side is a thread that wakes up to compare
// now - last_message against T. Message receptions update last_message
// (and clear suspicions) immediately, but a *suspicion* can only start at
// a wake-up. This pair of quantisations is the mechanism behind the
// measured QoS curves of Fig 8 -- mistake recurrence locked to the
// effective heartbeat period, the blow-up once T exceeds the tick-rounded
// period, and the latency peak near T = 10 ms that the paper attributes to
// the Linux scheduler (Section 5.4).
#pragma once

#include <functional>
#include <vector>

#include "consensus/membership.hpp"
#include "fd/failure_detector.hpp"
#include "fd/history.hpp"
#include "runtime/process.hpp"

namespace sanperf::fd {

struct HeartbeatFdParams {
  des::Duration heartbeat_period = des::Duration::from_ms(7.0);  ///< Th
  des::Duration timeout = des::Duration::from_ms(10.0);          ///< T

  /// The paper fixes Th = 0.7 T for all experiments (Section 5.4).
  [[nodiscard]] static HeartbeatFdParams from_timeout_ms(double timeout_ms) {
    return {des::Duration::from_ms(0.7 * timeout_ms), des::Duration::from_ms(timeout_ms)};
  }
};

class HeartbeatFd : public runtime::Layer, public FailureDetector {
 public:
  explicit HeartbeatFd(HeartbeatFdParams params) : params_{params} {}

  void on_start() override;
  void on_message(const runtime::Message& m) override;
  void on_crash() override;
  /// Warm restart: the monitor comes back trusting everyone with a fresh
  /// reception clock (last_msg = now, never pre-crash timestamps -- a
  /// stale value would fire an instant wrong suspicion), re-arms its
  /// wake-ups and resumes heartbeating. Histories survive, with
  /// suspect->trust transitions recorded for peers suspected at the crash.
  void on_restart() override;

  [[nodiscard]] bool is_suspected(HostId peer) const override;
  void add_listener(SuspicionListener listener) override {
    listeners_.push_back(std::move(listener));
  }

  [[nodiscard]] const HeartbeatFdParams& params() const { return params_; }

  /// Attaches the cluster's dynamic membership view (nullptr = monitor all
  /// n hosts, bit-exact with the fixed-membership behaviour). Heartbeats go
  /// only to current members, non-members are never suspected, and on an
  /// epoch change newly added members start trusted with a fresh reception
  /// clock while removed members' suspicions are retired. Call before the
  /// cluster starts; `view` must outlive the layer.
  void set_membership(consensus::MembershipView* view);

  /// Full trust/suspect history per monitored peer (index = host id).
  [[nodiscard]] const std::vector<PairHistory>& histories() const { return history_; }

  [[nodiscard]] std::uint64_t heartbeats_sent() const { return heartbeats_sent_; }

 private:
  void send_heartbeat_round();
  /// Arms the monitoring thread's next wake-up for `peer` at `nominal`
  /// (subject to the OS timer model).
  void arm_check(HostId peer, des::TimePoint nominal);
  /// The monitoring thread's wake-up: suspects when the timeout elapsed.
  void check_timeout(HostId peer);
  void notify(HostId peer, bool suspected);
  void on_epoch_change(consensus::MembershipView::Epoch epoch);

  HeartbeatFdParams params_;
  consensus::MembershipView* view_ = nullptr;
  std::vector<char> suspected_;             // per peer
  std::vector<des::TimePoint> last_msg_;    // per peer: last reception
  std::vector<PairHistory> history_;        // per peer
  /// Highest sender incarnation seen per peer. A message carrying a newer
  /// one reveals a crash + warm restart that completed faster than the
  /// timeout could detect; the detector surfaces it as an instantaneous
  /// suspect->trust blip so layers above re-evaluate the peer
  /// (crash-recovery completeness).
  std::vector<std::uint32_t> known_incarnation_;
  std::vector<SuspicionListener> listeners_;
  std::uint64_t heartbeats_sent_ = 0;
  bool stopped_ = false;
};

}  // namespace sanperf::fd
