#include "fd/history.hpp"

#include <stdexcept>

namespace sanperf::fd {

void PairHistory::record(des::TimePoint at, bool to_suspect) {
  if (!transitions_.empty()) {
    if (transitions_.back().at > at) {
      throw std::logic_error{"PairHistory: transitions out of order"};
    }
    if (transitions_.back().to_suspect == to_suspect) {
      throw std::logic_error{"PairHistory: repeated transition direction"};
    }
  } else if (!to_suspect) {
    throw std::logic_error{"PairHistory: first transition must be trust->suspect"};
  }
  transitions_.push_back({at, to_suspect});
  if (to_suspect) {
    ++n_ts_;
  } else {
    ++n_st_;
  }
}

des::Duration PairHistory::suspected_time(des::TimePoint end) const {
  des::Duration total = des::Duration::zero();
  des::TimePoint suspect_since;
  bool suspected = false;
  for (const Transition& tr : transitions_) {
    if (tr.at > end) break;
    if (tr.to_suspect) {
      suspected = true;
      suspect_since = tr.at;
    } else if (suspected) {
      total += tr.at - suspect_since;
      suspected = false;
    }
  }
  if (suspected && end > suspect_since) total += end - suspect_since;
  return total;
}

bool PairHistory::suspected_at(des::TimePoint t) const {
  bool suspected = false;
  for (const Transition& tr : transitions_) {
    if (tr.at > t) break;
    suspected = tr.to_suspect;
  }
  return suspected;
}

}  // namespace sanperf::fd
