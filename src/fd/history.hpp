// Failure-detector output histories (trust/suspect transitions over time).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "des/time.hpp"
#include "runtime/message.hpp"

namespace sanperf::fd {

using runtime::HostId;

struct Transition {
  des::TimePoint at;
  bool to_suspect = false;  ///< true: trust->suspect; false: suspect->trust
};

/// The history of one monitored pair (q monitors p).
class PairHistory {
 public:
  /// Appends a transition; must alternate and be time-ordered.
  void record(des::TimePoint at, bool to_suspect);

  [[nodiscard]] const std::vector<Transition>& transitions() const { return transitions_; }
  [[nodiscard]] std::uint64_t trust_to_suspect_count() const { return n_ts_; }
  [[nodiscard]] std::uint64_t suspect_to_trust_count() const { return n_st_; }

  /// Total time spent in the suspect state over [origin, end].
  [[nodiscard]] des::Duration suspected_time(des::TimePoint end) const;

  /// True when the pair is suspected at time `t` (assumes initial trust).
  [[nodiscard]] bool suspected_at(des::TimePoint t) const;

 private:
  std::vector<Transition> transitions_;
  std::uint64_t n_ts_ = 0;
  std::uint64_t n_st_ = 0;
};

/// Histories for all ordered pairs (monitor, monitored).
using FdHistoryMap = std::map<std::pair<HostId, HostId>, PairHistory>;

}  // namespace sanperf::fd
