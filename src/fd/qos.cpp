#include "fd/qos.hpp"

#include <stdexcept>

namespace sanperf::fd {

std::optional<QosEstimate> estimate_pair_qos(const PairHistory& history,
                                             des::TimePoint experiment_end) {
  const std::uint64_t n_ts = history.trust_to_suspect_count();
  const std::uint64_t n_st = history.suspect_to_trust_count();
  if (n_ts + n_st == 0) return std::nullopt;

  const double t_exp_ms = experiment_end.to_ms();
  const double t_s_ms = history.suspected_time(experiment_end).to_ms();
  const double transitions = static_cast<double>(n_ts + n_st);

  QosEstimate q;
  q.t_mr_ms = 2.0 * t_exp_ms / transitions;
  q.t_m_ms = 2.0 * t_s_ms / transitions;
  q.pairs_used = 1;
  return q;
}

QosEstimate average_qos(const std::vector<const PairHistory*>& histories,
                        des::TimePoint experiment_end) {
  QosEstimate avg;
  for (const PairHistory* h : histories) {
    if (h == nullptr) throw std::invalid_argument{"average_qos: null history"};
    const auto pair = estimate_pair_qos(*h, experiment_end);
    if (!pair) {
      ++avg.pairs_quiet;
      continue;
    }
    avg.t_mr_ms += pair->t_mr_ms;
    avg.t_m_ms += pair->t_m_ms;
    ++avg.pairs_used;
  }
  if (avg.pairs_used > 0) {
    avg.t_mr_ms /= static_cast<double>(avg.pairs_used);
    avg.t_m_ms /= static_cast<double>(avg.pairs_used);
  }
  return avg;
}

AbstractFdParams AbstractFdParams::from_qos(const QosEstimate& qos, Sojourn sojourn) {
  if (!(qos.t_mr_ms > 0) || qos.t_m_ms < 0 || qos.t_m_ms >= qos.t_mr_ms) {
    throw std::invalid_argument{"AbstractFdParams: need 0 <= T_M < T_MR"};
  }
  AbstractFdParams p;
  p.trust_mean_ms = qos.t_mr_ms - qos.t_m_ms;
  p.suspect_mean_ms = qos.t_m_ms;
  p.p_initial_suspect = qos.t_m_ms / qos.t_mr_ms;
  p.sojourn = sojourn;
  return p;
}

}  // namespace sanperf::fd
