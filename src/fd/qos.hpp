// Failure-detector quality-of-service estimation (Chen/Toueg/Aguilera
// metrics, estimated exactly as in Section 4 of the paper).
//
// For a pair (p monitors q) over an experiment of duration T_exp, with
// T_S the total suspected time and n_TS / n_ST the transition counts:
//
//     T_M / T_MR = T_S / T_exp        T_exp = (n_TS + n_ST)/2 * T_MR
//
// giving  T_MR = 2 T_exp / (n_TS + n_ST)  and  T_M = 2 T_S / (n_TS + n_ST).
// The detector-wide metrics average the per-pair values over all pairs.
#pragma once

#include <optional>
#include <vector>

#include "fd/history.hpp"

namespace sanperf::fd {

struct QosEstimate {
  double t_mr_ms = 0;  ///< mean mistake recurrence time
  double t_m_ms = 0;   ///< mean mistake duration
  std::uint64_t pairs_used = 0;     ///< pairs with at least one transition
  std::uint64_t pairs_quiet = 0;    ///< pairs that never made a mistake

  /// Stationary probability of being in the suspect state, T_M / T_MR.
  [[nodiscard]] double suspicion_probability() const {
    return t_mr_ms > 0 ? t_m_ms / t_mr_ms : 0.0;
  }
};

/// Per-pair estimate; empty when the pair recorded no transitions (the
/// metrics are undefined; the paper notes T_MR need not be determined
/// precisely when it is large).
[[nodiscard]] std::optional<QosEstimate> estimate_pair_qos(const PairHistory& history,
                                                           des::TimePoint experiment_end);

/// Averages the per-pair metrics over all pairs with defined values.
[[nodiscard]] QosEstimate average_qos(const std::vector<const PairHistory*>& histories,
                                      des::TimePoint experiment_end);

/// Parameters of the abstract two-state SAN failure-detector model
/// (Section 3.4): alternating Trust / Suspect sojourns whose means match
/// the measured QoS, with deterministic (variance 0) or exponential
/// (high variance) sojourn distributions.
struct AbstractFdParams {
  enum class Sojourn { kDeterministic, kExponential };

  double trust_mean_ms = 0;    ///< T_MR - T_M
  double suspect_mean_ms = 0;  ///< T_M
  double p_initial_suspect = 0;
  Sojourn sojourn = Sojourn::kDeterministic;

  [[nodiscard]] static AbstractFdParams from_qos(const QosEstimate& qos, Sojourn sojourn);
};

}  // namespace sanperf::fd
