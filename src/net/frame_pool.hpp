// Struct-of-arrays frame pool: zero-allocation bookkeeping for in-flight
// frames.
//
// Every network transmission used to allocate a shared_ptr<Packet> whose
// std::any body held a full runtime::Message copy, plus a heap-spilled
// std::function closure per pipeline stage -- three allocations per send,
// times Theta(n^2) AUX frames per consensus instance. The pool replaces
// all of it with index-addressed parallel arrays: a frame is a slot index,
// its fields live in columnar storage recycled through a free list, and a
// FrameRef (pool pointer + index, 16 + 4 bytes) rides inside EventAction's
// inline buffer where shared_ptr<Packet> closures used to spill.
//
// A broadcast allocates ONE frame shared by all n-1 receivers (the body is
// immutable after allocation), instead of n-1 bodies; the batched hub path
// additionally records its fan-out list in the slot (bcast_dsts), whose
// vector capacity is recycled with the slot.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <new>
#include <type_traits>
#include <typeinfo>
#include <utility>
#include <vector>

#include "des/time.hpp"

namespace sanperf::net {

using HostId = std::uint32_t;

/// Move-only type-erased frame payload, replacing std::any: no copy on
/// delivery (receivers read the one pooled instance), inline storage sized
/// for runtime::Message (a flat struct plus one vector), and a get<T>()
/// that checks the stored type like any_cast does.
class FrameBody {
 public:
  /// Covers runtime::Message (~104 bytes) and any test payload.
  static constexpr std::size_t kInlineBytes = 120;

  FrameBody() noexcept = default;

  template <typename T,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<T>, FrameBody>>>
  FrameBody(T&& v) {  // NOLINT(google-explicit-constructor): payload adaptor
    emplace(std::forward<T>(v));
  }

  FrameBody(FrameBody&& other) noexcept { move_from(other); }
  FrameBody& operator=(FrameBody&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  FrameBody(const FrameBody&) = delete;
  FrameBody& operator=(const FrameBody&) = delete;
  ~FrameBody() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

  /// The stored payload; throws std::bad_cast when the frame holds a
  /// different type (or nothing).
  template <typename T>
  [[nodiscard]] const T& get() const {
    using D = std::decay_t<T>;
    // Vtable identity doubles as the type tag: vtable_for<D>() names one
    // function-local static per type program-wide.
    if (vtable_ != vtable_for<D>()) throw std::bad_cast{};
    if constexpr (fits_inline_v<D>) {
      return *std::launder(reinterpret_cast<const D*>(buf_));
    } else {
      return **std::launder(reinterpret_cast<D* const*>(buf_));
    }
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

 private:
  struct VTable {
    /// Move-constructs the payload into `dst` and destroys the source.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename T>
  static constexpr bool fits_inline_v = sizeof(T) <= kInlineBytes &&
                                        alignof(T) <= alignof(std::max_align_t) &&
                                        std::is_nothrow_move_constructible_v<T>;

  template <typename T>
  static const VTable* vtable_for() {
    if constexpr (fits_inline_v<T>) {
      static const VTable vt{
          [](void* dst, void* src) noexcept {
            ::new (dst) T(std::move(*static_cast<T*>(src)));
            static_cast<T*>(src)->~T();
          },
          [](void* p) noexcept { static_cast<T*>(p)->~T(); },
      };
      return &vt;
    } else {
      static const VTable vt{
          [](void* dst, void* src) noexcept { ::new (dst) T*(*static_cast<T**>(src)); },
          [](void* p) noexcept { delete *static_cast<T**>(p); },
      };
      return &vt;
    }
  }

  template <typename T>
  void emplace(T&& v) {
    using D = std::decay_t<T>;
    if constexpr (fits_inline_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<T>(v));
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<T>(v)));
    }
    vtable_ = vtable_for<D>();
  }

  void move_from(FrameBody& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(buf_, other.buf_);
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

/// A message in flight, as the filter and delivery callbacks see it: a
/// transient view into the pool (body points at the shared pooled payload;
/// null for synthetic packets tests construct field-wise).
struct Packet {
  HostId src = 0;
  HostId dst = 0;
  const FrameBody* body = nullptr;
  des::TimePoint sent_at;  ///< stamped when submitted to the sender CPU
};

/// The columnar frame arena. Single-threaded (one pool per cluster, like
/// the simulator), so the reference counts are plain integers.
class FramePool {
 public:
  using FrameIndex = std::uint32_t;

  /// Creates a frame with one reference. The slot comes off the free list
  /// in steady state -- no allocation once the pool reaches its high-water
  /// mark (body payloads fitting FrameBody's inline buffer included).
  FrameIndex allocate(HostId src, des::TimePoint sent_at, FrameBody body) {
    if (free_head_ != kNpos) {
      const FrameIndex idx = free_head_;
      free_head_ = next_free_[idx];
      src_[idx] = src;
      sent_at_[idx] = sent_at;
      body_[idx] = std::move(body);
      refcnt_[idx] = 1;
      ++live_;
      return idx;
    }
    const auto idx = static_cast<FrameIndex>(refcnt_.size());
    src_.push_back(src);
    sent_at_.push_back(sent_at);
    body_.push_back(std::move(body));
    refcnt_.push_back(1);
    next_free_.push_back(kNpos);
    bcast_dsts_.emplace_back();
    ++live_;
    return idx;
  }

  void add_ref(FrameIndex idx) { ++refcnt_[idx]; }

  void release(FrameIndex idx) {
    if (--refcnt_[idx] != 0) return;
    body_[idx].reset();
    bcast_dsts_[idx].clear();  // keeps capacity for the slot's next fan-out
    next_free_[idx] = free_head_;
    free_head_ = idx;
    --live_;
  }

  [[nodiscard]] HostId src(FrameIndex idx) const { return src_[idx]; }
  [[nodiscard]] des::TimePoint sent_at(FrameIndex idx) const { return sent_at_[idx]; }
  [[nodiscard]] const FrameBody& body(FrameIndex idx) const { return body_[idx]; }
  /// The batched-broadcast fan-out list (mutable: the sender fills it at
  /// submit time, before any receiver can observe the frame).
  [[nodiscard]] std::vector<HostId>& bcast_dsts(FrameIndex idx) { return bcast_dsts_[idx]; }

  [[nodiscard]] std::size_t live() const { return live_; }
  /// Slots ever allocated; asserts steady-state reuse in tests.
  [[nodiscard]] std::size_t slot_capacity() const { return refcnt_.size(); }

 private:
  static constexpr FrameIndex kNpos = 0xffffffffu;

  std::vector<HostId> src_;
  std::vector<des::TimePoint> sent_at_;
  /// Deques, not vectors: delivery hands out references into these columns
  /// (Packet::body, the batched fan-out walk) while the handler may send
  /// new messages and grow the pool -- deque growth never relocates.
  std::deque<FrameBody> body_;
  std::deque<std::vector<HostId>> bcast_dsts_;
  std::vector<std::uint32_t> refcnt_;
  std::vector<FrameIndex> next_free_;
  FrameIndex free_head_ = kNpos;
  std::size_t live_ = 0;
};

/// Shared handle to a pooled frame: pool pointer + slot index. Copying
/// bumps the slot's reference count; the slot recycles when the last ref
/// drops. Holds the pool itself alive so event actions queued in a
/// simulator that outlives the network stay destructible.
class FrameRef {
 public:
  FrameRef() noexcept = default;
  /// Adopts the initial reference allocate() created.
  FrameRef(std::shared_ptr<FramePool> pool, FramePool::FrameIndex idx) noexcept
      : pool_{std::move(pool)}, idx_{idx} {}

  FrameRef(const FrameRef& other) : pool_{other.pool_}, idx_{other.idx_} {
    if (pool_) pool_->add_ref(idx_);
  }
  FrameRef(FrameRef&& other) noexcept : pool_{std::move(other.pool_)}, idx_{other.idx_} {
    other.idx_ = 0;
  }
  FrameRef& operator=(const FrameRef& other) {
    FrameRef tmp{other};
    swap(tmp);
    return *this;
  }
  FrameRef& operator=(FrameRef&& other) noexcept {
    if (this != &other) {
      if (pool_) pool_->release(idx_);
      pool_ = std::move(other.pool_);
      idx_ = other.idx_;
      other.idx_ = 0;
    }
    return *this;
  }
  ~FrameRef() {
    if (pool_) pool_->release(idx_);
  }

  void swap(FrameRef& other) noexcept {
    pool_.swap(other.pool_);
    std::swap(idx_, other.idx_);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return pool_ != nullptr; }
  [[nodiscard]] FramePool::FrameIndex index() const { return idx_; }
  [[nodiscard]] HostId src() const { return pool_->src(idx_); }
  [[nodiscard]] des::TimePoint sent_at() const { return pool_->sent_at(idx_); }
  [[nodiscard]] const FrameBody& body() const { return pool_->body(idx_); }
  [[nodiscard]] std::vector<HostId>& bcast_dsts() const { return pool_->bcast_dsts(idx_); }

  /// The transient view handed to the filter and delivery callbacks.
  [[nodiscard]] Packet packet(HostId dst) const {
    return Packet{src(), dst, &body(), sent_at()};
  }

 private:
  std::shared_ptr<FramePool> pool_;
  FramePool::FrameIndex idx_ = 0;
};

}  // namespace sanperf::net
