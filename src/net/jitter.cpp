#include "net/jitter.hpp"

namespace sanperf::net {

des::Duration sample_stall(const TimerModel& tm, des::RandomEngine& rng) {
  const double u = rng.uniform01();
  double stall_ms = 0;
  if (u < tm.p_huge_stall) {
    stall_ms = rng.uniform(12.0, 45.0);
  } else if (u < tm.p_huge_stall + tm.p_major_stall) {
    stall_ms = rng.uniform(1.0, 12.0);
  } else if (u < tm.p_huge_stall + tm.p_major_stall + tm.p_minor_stall) {
    stall_ms = rng.uniform(0.2, 3.0);
  }
  return des::Duration::from_ms(stall_ms);
}

des::TimePoint quantize_timer(const TimerModel& tm, des::TimePoint nominal,
                              des::RandomEngine& rng) {
  des::TimePoint t = nominal;
  if (tm.tick_ms > 0) {
    const std::int64_t tick_ns = des::Duration::from_ms(tm.tick_ms).ns();
    const std::int64_t n = nominal.ns();
    const std::int64_t rounded = ((n + tick_ns - 1) / tick_ns) * tick_ns;
    t = des::TimePoint::origin() + des::Duration::nanos(rounded);
  }
  if (tm.wake_noise_ms > 0) {
    t = t + des::Duration::from_ms(rng.uniform(0.0, tm.wake_noise_ms));
  }
  return t + sample_stall(tm, rng);
}

}  // namespace sanperf::net
