// Timer quantisation and stall sampling (the OS-scheduler model).
#pragma once

#include "des/random.hpp"
#include "des/time.hpp"
#include "net/params.hpp"

namespace sanperf::net {

/// Returns the actual expiry time of a timer requested for `nominal`,
/// according to the TimerModel: rounded up to the next scheduler tick,
/// plus wake-up noise, plus a possible stall. Monotone: never earlier than
/// `nominal`.
[[nodiscard]] des::TimePoint quantize_timer(const TimerModel& tm, des::TimePoint nominal,
                                            des::RandomEngine& rng);

/// Samples only the stall component (used by tests and by components that
/// model load-induced delays without tick rounding).
[[nodiscard]] des::Duration sample_stall(const TimerModel& tm, des::RandomEngine& rng);

}  // namespace sanperf::net
