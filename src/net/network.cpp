#include "net/network.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

namespace sanperf::net {

void FifoServer::submit(des::Duration service, std::function<void()> on_done) {
  Job job{service, std::move(on_done)};
  if (busy_) {
    waiting_.push_back(std::move(job));
  } else {
    start(std::move(job));
  }
}

void FifoServer::start(Job job) {
  busy_ = true;
  drop_current_ = false;
  current_done_ = std::move(job.on_done);
  service_start_ = sim_->now();
  sim_->schedule(job.service, [this] { complete(); });
}

void FifoServer::complete() {
  busy_time_ += sim_->now() - service_start_;
  ++served_;
  auto done = std::move(current_done_);
  const bool dropped = drop_current_;
  busy_ = false;
  drop_current_ = false;
  if (!waiting_.empty()) {
    Job next = std::move(waiting_.front());
    waiting_.pop_front();
    start(std::move(next));
  }
  if (!dropped && done) done();
}

std::size_t FifoServer::drain(bool drop_in_service) {
  std::size_t dropped = waiting_.size();
  waiting_.clear();
  if (drop_in_service && busy_ && !drop_current_) {
    drop_current_ = true;
    ++dropped;
  }
  return dropped;
}

HubMedium::HubMedium(des::Simulator& sim, des::RandomEngine rng, std::size_t hosts)
    : sim_{&sim}, rng_{rng}, queues_(hosts) {}

void HubMedium::submit(HostId src, des::Duration service, std::function<void()> on_done) {
  queues_.at(src).push_back({service, std::move(on_done)});
  ++backlog_;
  if (!busy_) start_next();
}

void HubMedium::start_next() {
  if (backlog_ == 0) return;
  // Uniform choice among backlogged hosts; each host transmits in FIFO.
  std::vector<HostId> ready;
  for (HostId h = 0; h < static_cast<HostId>(queues_.size()); ++h) {
    if (!queues_[h].empty()) ready.push_back(h);
  }
  const HostId winner =
      ready[static_cast<std::size_t>(rng_.uniform_int(0, static_cast<std::int64_t>(ready.size()) - 1))];
  Frame frame = std::move(queues_[winner].front());
  queues_[winner].pop_front();
  --backlog_;
  busy_ = true;
  service_start_ = sim_->now();
  sim_->schedule(frame.service, [this, done = std::move(frame.on_done)] {
    busy_time_ += sim_->now() - service_start_;
    ++served_;
    busy_ = false;
    if (done) done();
    if (!busy_) start_next();  // `done` may have submitted and restarted
  });
}

ContentionNetwork::ContentionNetwork(des::Simulator& sim, des::RandomEngine rng,
                                     NetworkParams params, std::size_t hosts,
                                     const topo::Topology* topology)
    : sim_{&sim}, rng_{rng}, params_{params}, medium_{sim, rng.substream("hub"), hosts} {
  if (hosts < 2) throw std::invalid_argument{"ContentionNetwork: need at least 2 hosts"};
  // The hub medium is constructed either way (its "hub" substream is derived
  // but never drawn from unless used), so a degenerate topology leaves the
  // RNG stream -- and therefore every existing golden -- bit-identical.
  if (topology != nullptr && !topology->single_hub_equivalent()) {
    if (topology->n_hosts() != hosts) {
      throw std::invalid_argument{"ContentionNetwork: topology covers " +
                                  std::to_string(topology->n_hosts()) + " hosts, cluster has " +
                                  std::to_string(hosts)};
    }
    routes_.emplace(*topology);
    links_.reserve(routes_->link_count());
    for (std::size_t i = 0; i < routes_->link_count(); ++i) links_.emplace_back(sim);
  }
  cpus_.reserve(hosts);
  for (std::size_t i = 0; i < hosts; ++i) cpus_.emplace_back(sim);
  down_.assign(hosts, 0);
  cpu_scale_.assign(hosts, 1.0);
}

des::Duration ContentionNetwork::sample(const stats::BimodalUniform& dist) {
  const double ms = rng_.bernoulli(dist.p1) ? rng_.uniform(dist.a1, dist.b1)
                                            : rng_.uniform(dist.a2, dist.b2);
  return des::Duration::from_ms(ms);
}

void ContentionNetwork::send(HostId src, HostId dst, std::any body, FrameClass cls) {
  if (src >= cpus_.size() || dst >= cpus_.size()) {
    throw std::invalid_argument{"ContentionNetwork::send: bad host id"};
  }
  if (src == dst) throw std::invalid_argument{"ContentionNetwork::send: src == dst"};
  if (down_[src]) return;  // a crashed host emits nothing

  auto pkt = std::make_shared<Packet>();
  pkt->src = src;
  pkt->dst = dst;
  pkt->body = std::move(body);
  pkt->sent_at = sim_->now();
  ++frames_sent_;
  SANPERF_AUDIT_ONLY(++audit_in_flight_;)

  // TCP towards a dead peer: only the pair's first frame reaches the wire;
  // later sends cost the sender CPU but are absorbed by the socket buffer.
  // Small datagrams (heartbeats) are UDP: connectionless, always emitted.
  bool wire = true;
  if (params_.dead_peer_absorption && cls == FrameClass::kProtocol && down_[dst]) {
    const std::size_t pair = static_cast<std::size_t>(src) * cpus_.size() + dst;
    if (dead_pair_sent_.empty()) dead_pair_sent_.assign(cpus_.size() * cpus_.size(), 0);
    wire = dead_pair_sent_[pair] == 0;
    dead_pair_sent_[pair] = 1;
  }

  // Step 2: sender CPU.
  cpus_[src].submit(des::Duration::from_ms(params_.send_cpu_ms * cpu_scale_[src]),
                    [this, pkt, wire, cls] {
    if (!wire) {
      ++frames_dropped_;
      SANPERF_AUDIT_ONLY(--audit_in_flight_;)
      return;
    }
    if (routes_) {
      // Step 4, routed: walk the compiled route link by link.
      route_hop(pkt, cls, 0);
      return;
    }
    // Step 4: the shared medium (exclusive wire occupancy).
    const auto& wire_dist =
        cls == FrameClass::kSmall ? params_.small_wire_service : params_.wire_service;
    medium_.submit(pkt->src, sample(wire_dist), [this, pkt] { receiver_edge(pkt); });
  });
}

void ContentionNetwork::route_hop(std::shared_ptr<Packet> pkt, FrameClass cls,
                                  std::uint32_t step) {
  const topo::RouteTable::Route& route = routes_->route(pkt->src, pkt->dst);
  if (step >= route.hops) {
    receiver_edge(std::move(pkt));
    return;
  }
  const std::uint32_t li = route.links[step];
  Link& link = links_[li];
  const topo::LinkParams& lp = routes_->link(li).params;
  // A shallow switch buffer sheds load instead of queueing without bound.
  if (lp.queue_limit > 0 && link.server.busy() && link.server.queue_length() >= lp.queue_limit) {
    ++frames_dropped_;
    ++link.overflow_dropped;
    SANPERF_AUDIT_ONLY(--audit_in_flight_;)
    return;
  }
  ++link.entered;
  const auto& wire_dist =
      cls == FrameClass::kSmall ? params_.small_wire_service : params_.wire_service;
  des::Duration service = sample(wire_dist);
  if (lp.service_scale != 1.0) {
    service = des::Duration::from_ms(service.to_ms() * lp.service_scale);
  }
  link.server.submit(service, [this, pkt = std::move(pkt), cls, step, li] {
    ++links_[li].exited;
    // The link's propagation delay is non-exclusive: the server frees up
    // while the frame is still on the wire towards the next hop.
    const double latency_ms = routes_->link(li).params.latency_ms;
    if (latency_ms > 0) {
      sim_->schedule(des::Duration::from_ms(latency_ms),
                     [this, pkt, cls, step] { route_hop(pkt, cls, step + 1); });
    } else {
      route_hop(pkt, cls, step + 1);
    }
  });
}

void ContentionNetwork::receiver_edge(std::shared_ptr<Packet> pkt) {
  // Non-exclusive pipeline latency: stack traversal overlaps freely.
  des::Duration pipeline = sample(params_.pipeline_latency);
  if (pipeline_scale_ != 1.0) {
    pipeline = des::Duration::from_ms(pipeline.to_ms() * pipeline_scale_);
  }
  sim_->schedule(pipeline, [this, pkt] {
    if (down_[pkt->dst]) {
      ++frames_dropped_;
      SANPERF_AUDIT_ONLY(--audit_in_flight_;)
      return;
    }
    // Receiver edge: the fault-injection filter sees every frame that
    // survived the medium -- partition and loss drop here, duplication
    // pays the receiver CPU twice.
    FrameFate fate = FrameFate::kDeliver;
    if (filter_) fate = filter_(*pkt);
    if (fate == FrameFate::kDrop) {
      ++frames_dropped_;
      ++frames_filtered_;
      SANPERF_AUDIT_ONLY(--audit_in_flight_;)
      return;
    }
#if SANPERF_AUDIT_ENABLED
    // A frame the filter lets through must not cross a pair the ground-truth
    // oracle says is partitioned right now. Checked at the filter instant --
    // not at delivery -- so frames already past the filter when a partition
    // opens are legitimately delivered.
    if (partition_oracle_) {
      SANPERF_AUDIT_CHECK("net.no_delivery_across_partition",
                          !partition_oracle_(pkt->src, pkt->dst),
                          "frame " + std::to_string(pkt->src) + " -> " +
                              std::to_string(pkt->dst) +
                              " passed the filter across an active partition");
    }
#endif
    const int copies = fate == FrameFate::kDuplicate ? 2 : 1;
    if (copies == 2) {
      ++frames_duplicated_;
      SANPERF_AUDIT_ONLY(++audit_in_flight_;)  // the extra copy is live too
    }
    for (int c = 0; c < copies; ++c) {
      // Step 6: receiver CPU.
      cpus_[pkt->dst].submit(
          des::Duration::from_ms(params_.recv_cpu_ms * cpu_scale_[pkt->dst]),
          [this, pkt] {
            if (down_[pkt->dst]) {
              ++frames_dropped_;
              SANPERF_AUDIT_ONLY(--audit_in_flight_;)
              return;
            }
            // A crashed host must never see a delivery: the guard above
            // is the last line of defence and this audit proves it held.
            SANPERF_AUDIT_CHECK("net.no_delivery_to_crashed", !down_[pkt->dst],
                                "delivery to crashed host " + std::to_string(pkt->dst));
            SANPERF_AUDIT_ONLY(++audit_delivered_; --audit_in_flight_;)
            if (deliver_) deliver_(*pkt);  // step 7
          });
    }
  });
}

void ContentionNetwork::host_down(HostId h) {
  if (h >= cpus_.size()) throw std::invalid_argument{"ContentionNetwork::host_down: bad host"};
  down_[h] = 1;
  // The CPU abandons queued work; the job in service finishes occupying the
  // resource but its completion is suppressed. Every vaporised job is one
  // frame that reaches no other terminal -- account it as crash loss so the
  // conservation audit stays balanced across crashes.
  const std::size_t lost = cpus_[h].drain(/*drop_in_service=*/true);
  static_cast<void>(lost);
  SANPERF_AUDIT_ONLY(audit_crash_lost_ += lost; audit_in_flight_ -= lost;)
}

void ContentionNetwork::host_restart(HostId h) {
  if (h >= cpus_.size()) {
    throw std::invalid_argument{"ContentionNetwork::host_restart: bad host"};
  }
  down_[h] = 0;
  // Reconnection resets the TCP dead-peer absorption in both directions, so
  // the first post-recovery protocol frame of every pair reaches the wire
  // again (and keeps doing so while the peer stays up).
  if (!dead_pair_sent_.empty()) {
    const std::size_t n = cpus_.size();
    for (std::size_t other = 0; other < n; ++other) {
      dead_pair_sent_[other * n + h] = 0;
      dead_pair_sent_[h * n + other] = 0;
    }
  }
}

void ContentionNetwork::set_cpu_scale(HostId h, double scale) {
  if (h >= cpus_.size()) throw std::invalid_argument{"ContentionNetwork::set_cpu_scale: bad host"};
  if (!(scale > 0)) throw std::invalid_argument{"ContentionNetwork::set_cpu_scale: scale <= 0"};
  cpu_scale_[h] = scale;
}

void ContentionNetwork::set_pipeline_scale(double scale) {
  if (!(scale > 0)) {
    throw std::invalid_argument{"ContentionNetwork::set_pipeline_scale: scale <= 0"};
  }
  pipeline_scale_ = scale;
}

}  // namespace sanperf::net
