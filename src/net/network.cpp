#include "net/network.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

namespace sanperf::net {

void FifoServer::submit(des::Duration service, des::EventAction on_done, std::size_t weight) {
  Job job{service, std::move(on_done), weight};
  if (busy_) {
    waiting_.push_back(std::move(job));
  } else {
    start(std::move(job));
  }
}

void FifoServer::start(Job job) {
  busy_ = true;
  drop_current_ = false;
  current_done_ = std::move(job.on_done);
  current_weight_ = job.weight;
  service_start_ = sim_->now();
  sim_->schedule(job.service, [this] { complete(); });
}

void FifoServer::complete() {
  busy_time_ += sim_->now() - service_start_;
  ++served_;
  auto done = std::move(current_done_);
  const bool dropped = drop_current_;
  busy_ = false;
  drop_current_ = false;
  if (!waiting_.empty()) {
    Job next = std::move(waiting_.front());
    waiting_.pop_front();
    start(std::move(next));
  }
  if (!dropped && done) done();
}

std::size_t FifoServer::drain(bool drop_in_service) {
  std::size_t dropped = 0;
  for (const Job& job : waiting_) dropped += job.weight;
  waiting_.clear();
  if (drop_in_service && busy_ && !drop_current_) {
    drop_current_ = true;
    dropped += current_weight_;
  }
  return dropped;
}

HubMedium::HubMedium(des::Simulator& sim, des::RandomEngine rng, std::size_t hosts)
    : sim_{&sim}, rng_{rng}, queues_(hosts) {}

void HubMedium::submit(HostId src, des::Duration service, des::EventAction on_done) {
  queues_.at(src).push_back({service, std::move(on_done)});
  ++backlog_;
  if (!busy_) start_next();
}

void HubMedium::start_next() {
  if (backlog_ == 0) return;
  // Uniform choice among backlogged hosts; each host transmits in FIFO.
  std::vector<HostId> ready;
  for (HostId h = 0; h < static_cast<HostId>(queues_.size()); ++h) {
    if (!queues_[h].empty()) ready.push_back(h);
  }
  const HostId winner =
      ready[static_cast<std::size_t>(rng_.uniform_int(0, static_cast<std::int64_t>(ready.size()) - 1))];
  Frame frame = std::move(queues_[winner].front());
  queues_[winner].pop_front();
  --backlog_;
  busy_ = true;
  current_done_ = std::move(frame.on_done);
  service_start_ = sim_->now();
  sim_->schedule(frame.service, [this] { complete(); });
}

void HubMedium::complete() {
  busy_time_ += sim_->now() - service_start_;
  ++served_;
  busy_ = false;
  auto done = std::move(current_done_);
  if (done) done();
  if (!busy_) start_next();  // `done` may have submitted and restarted
}

ContentionNetwork::ContentionNetwork(des::Simulator& sim, des::RandomEngine rng,
                                     NetworkParams params, std::size_t hosts,
                                     const topo::Topology* topology)
    : sim_{&sim},
      rng_{rng},
      params_{params},
      pool_{std::make_shared<FramePool>()},
      medium_{sim, rng.substream("hub"), hosts} {
  if (hosts < 2) throw std::invalid_argument{"ContentionNetwork: need at least 2 hosts"};
  // The hub medium is constructed either way (its "hub" substream is derived
  // but never drawn from unless used), so a degenerate topology leaves the
  // RNG stream -- and therefore every existing golden -- bit-identical.
  if (topology != nullptr && !topology->single_hub_equivalent()) {
    if (topology->n_hosts() != hosts) {
      throw std::invalid_argument{"ContentionNetwork: topology covers " +
                                  std::to_string(topology->n_hosts()) + " hosts, cluster has " +
                                  std::to_string(hosts)};
    }
    routes_.emplace(*topology);
    links_.reserve(routes_->link_count());
    for (std::size_t i = 0; i < routes_->link_count(); ++i) links_.emplace_back(sim);
  }
  cpus_.reserve(hosts);
  for (std::size_t i = 0; i < hosts; ++i) cpus_.emplace_back(sim);
  down_.assign(hosts, 0);
  cpu_scale_.assign(hosts, 1.0);
}

des::Duration ContentionNetwork::sample(const stats::BimodalUniform& dist) {
  const double ms = rng_.bernoulli(dist.p1) ? rng_.uniform(dist.a1, dist.b1)
                                            : rng_.uniform(dist.a2, dist.b2);
  return des::Duration::from_ms(ms);
}

bool ContentionNetwork::test_and_set_dead_pair(HostId src, HostId dst) {
  const std::size_t n = cpus_.size();
  if (dead_pair_bits_.empty()) dead_pair_bits_.assign((n * n + 63) / 64, 0);
  const std::size_t pair = static_cast<std::size_t>(src) * n + dst;
  const std::uint64_t mask = std::uint64_t{1} << (pair & 63);
  const bool was = (dead_pair_bits_[pair >> 6] & mask) != 0;
  dead_pair_bits_[pair >> 6] |= mask;
  return was;
}

void ContentionNetwork::clear_dead_pairs(HostId h) {
  if (dead_pair_bits_.empty()) return;
  const std::size_t n = cpus_.size();
  for (std::size_t other = 0; other < n; ++other) {
    for (const std::size_t pair : {other * n + h, static_cast<std::size_t>(h) * n + other}) {
      dead_pair_bits_[pair >> 6] &= ~(std::uint64_t{1} << (pair & 63));
    }
  }
}

void ContentionNetwork::send(HostId src, HostId dst, FrameBody body, FrameClass cls) {
  if (src >= cpus_.size() || dst >= cpus_.size()) {
    throw std::invalid_argument{"ContentionNetwork::send: bad host id"};
  }
  if (src == dst) throw std::invalid_argument{"ContentionNetwork::send: src == dst"};
  if (down_[src]) return;  // a crashed host emits nothing

  FrameRef frame{pool_, pool_->allocate(src, sim_->now(), std::move(body))};
  ++frames_sent_;
  SANPERF_AUDIT_ONLY(++audit_in_flight_;)

  // TCP towards a dead peer: only the pair's first frame reaches the wire;
  // later sends cost the sender CPU but are absorbed by the socket buffer.
  // Small datagrams (heartbeats) are UDP: connectionless, always emitted.
  bool wire = true;
  if (params_.dead_peer_absorption && cls == FrameClass::kProtocol && down_[dst]) {
    wire = !test_and_set_dead_pair(src, dst);
  }
  submit_unicast(std::move(frame), dst, wire, cls);
}

void ContentionNetwork::submit_unicast(FrameRef frame, HostId dst, bool wire, FrameClass cls) {
  // Step 2: sender CPU.
  const HostId src = frame.src();
  cpus_[src].submit(des::Duration::from_ms(params_.send_cpu_ms * cpu_scale_[src]),
                    [this, frame = std::move(frame), dst, wire, cls]() mutable {
                      if (!wire) {
                        ++frames_dropped_;
                        SANPERF_AUDIT_ONLY(--audit_in_flight_;)
                        return;
                      }
                      if (routes_) {
                        // Step 4, routed: walk the compiled route link by link.
                        route_hop(std::move(frame), dst, cls, 0);
                        return;
                      }
                      // Step 4: the shared medium (exclusive wire occupancy).
                      const auto& wire_dist = cls == FrameClass::kSmall ? params_.small_wire_service
                                                                        : params_.wire_service;
                      const HostId fsrc = frame.src();
                      const des::Duration service = sample(wire_dist);
                      medium_.submit(fsrc, service, [this, frame = std::move(frame), dst] {
                        receiver_edge(frame, dst);
                      });
                    });
}

void ContentionNetwork::broadcast(HostId src, FrameBody body, FrameClass cls) {
  if (src >= cpus_.size()) {
    throw std::invalid_argument{"ContentionNetwork::broadcast: bad host id"};
  }
  if (down_[src]) return;  // a crashed host emits nothing
  const auto n = static_cast<HostId>(cpus_.size());
  FrameRef frame{pool_, pool_->allocate(src, sim_->now(), std::move(body))};

  if (!params_.batched_broadcast || routes_) {
    // Shared-body unicasts: per-receiver resource occupancy, RNG draw order
    // and event sequence identical to n-1 send() calls (only the n-1 body
    // copies are gone), so every pre-pool golden reproduces bit for bit.
    for (HostId dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      ++frames_sent_;
      SANPERF_AUDIT_ONLY(++audit_in_flight_;)
      bool wire = true;
      if (params_.dead_peer_absorption && cls == FrameClass::kProtocol && down_[dst]) {
        wire = !test_and_set_dead_pair(src, dst);
      }
      submit_unicast(frame, dst, wire, cls);
    }
    return;
  }

  // Batched hub fan-out: one sender-CPU job and one medium burst carry all
  // n-1 frames. Total resource occupancy matches the unbatched path; the
  // per-frame completion events collapse into two.
  std::vector<HostId>& dsts = frame.bcast_dsts();
  std::size_t absorbed = 0;
  for (HostId dst = 0; dst < n; ++dst) {
    if (dst == src) continue;
    ++frames_sent_;
    SANPERF_AUDIT_ONLY(++audit_in_flight_;)
    if (params_.dead_peer_absorption && cls == FrameClass::kProtocol && down_[dst] &&
        test_and_set_dead_pair(src, dst)) {
      ++absorbed;  // costs the sender CPU below, then drops
    } else {
      dsts.push_back(dst);
    }
  }
  const std::size_t total = dsts.size() + absorbed;
  if (total == 0) return;
  cpus_[src].submit(
      des::Duration::from_ms(params_.send_cpu_ms * cpu_scale_[src] * static_cast<double>(total)),
      [this, frame = std::move(frame), cls, absorbed]() mutable {
        if (absorbed > 0) {
          frames_dropped_ += absorbed;
          SANPERF_AUDIT_ONLY(audit_in_flight_ -= absorbed;)
        }
        if (frame.bcast_dsts().empty()) return;
        const auto& wire_dist =
            cls == FrameClass::kSmall ? params_.small_wire_service : params_.wire_service;
        // One wire sample per receiver in ascending-dst order -- the exact
        // draws the unbatched path makes -- summed into a single burst.
        des::Duration burst = des::Duration::zero();
        for (std::size_t i = 0; i < frame.bcast_dsts().size(); ++i) burst += sample(wire_dist);
        const HostId fsrc = frame.src();
        medium_.submit(fsrc, burst, [this, frame = std::move(frame)] {
          // Index-based walk: a receiver's handler may send and grow the
          // pool while we iterate.
          for (std::size_t i = 0; i < frame.bcast_dsts().size(); ++i) {
            receiver_edge_batched(frame, frame.bcast_dsts()[i]);
          }
        });
      },
      /*weight=*/total);
}

void ContentionNetwork::route_hop(FrameRef frame, HostId dst, FrameClass cls,
                                  std::uint32_t step) {
  const topo::RouteTable::Route& route = routes_->route(frame.src(), dst);
  if (step >= route.hops) {
    receiver_edge(std::move(frame), dst);
    return;
  }
  const std::uint32_t li = route.links[step];
  Link& link = links_[li];
  const topo::LinkParams& lp = routes_->link(li).params;
  // A shallow switch buffer sheds load instead of queueing without bound.
  if (lp.queue_limit > 0 && link.server.busy() && link.server.queue_length() >= lp.queue_limit) {
    ++frames_dropped_;
    ++link.overflow_dropped;
    SANPERF_AUDIT_ONLY(--audit_in_flight_;)
    return;
  }
  ++link.entered;
  const auto& wire_dist =
      cls == FrameClass::kSmall ? params_.small_wire_service : params_.wire_service;
  des::Duration service = sample(wire_dist);
  if (lp.service_scale != 1.0) {
    service = des::Duration::from_ms(service.to_ms() * lp.service_scale);
  }
  link.server.submit(service, [this, frame = std::move(frame), dst, cls, step, li]() mutable {
    ++links_[li].exited;
    // The link's propagation delay is non-exclusive: the server frees up
    // while the frame is still on the wire towards the next hop.
    const double latency_ms = routes_->link(li).params.latency_ms;
    if (latency_ms > 0) {
      sim_->schedule(des::Duration::from_ms(latency_ms),
                     [this, frame = std::move(frame), dst, cls, step]() mutable {
                       route_hop(std::move(frame), dst, cls, step + 1);
                     });
    } else {
      route_hop(std::move(frame), dst, cls, step + 1);
    }
  });
}

void ContentionNetwork::receiver_edge(FrameRef frame, HostId dst) {
  // Non-exclusive pipeline latency: stack traversal overlaps freely. The
  // event is scheduled even at zero latency -- its queue position is part
  // of the bit-exact event order the goldens pin down.
  des::Duration pipeline = sample(params_.pipeline_latency);
  if (pipeline_scale_ != 1.0) {
    pipeline = des::Duration::from_ms(pipeline.to_ms() * pipeline_scale_);
  }
  sim_->schedule(pipeline,
                 [this, frame = std::move(frame), dst] { edge_arrive(frame, dst); });
}

void ContentionNetwork::receiver_edge_batched(const FrameRef& frame, HostId dst) {
  des::Duration pipeline = sample(params_.pipeline_latency);
  if (pipeline_scale_ != 1.0) {
    pipeline = des::Duration::from_ms(pipeline.to_ms() * pipeline_scale_);
  }
  if (pipeline > des::Duration::zero()) {
    sim_->schedule(pipeline, [this, frame, dst] { edge_arrive(frame, dst); });
  } else {
    edge_arrive(frame, dst);  // zero latency: no event, arrive in place
  }
}

void ContentionNetwork::edge_arrive(const FrameRef& frame, HostId dst) {
  if (down_[dst]) {
    ++frames_dropped_;
    SANPERF_AUDIT_ONLY(--audit_in_flight_;)
    return;
  }
  // Receiver edge: the fault-injection filter sees every frame that
  // survived the medium -- partition and loss drop here, duplication
  // pays the receiver CPU twice.
  FrameFate fate = FrameFate::kDeliver;
  if (filter_) fate = filter_(frame.packet(dst));
  if (fate == FrameFate::kDrop) {
    ++frames_dropped_;
    ++frames_filtered_;
    SANPERF_AUDIT_ONLY(--audit_in_flight_;)
    return;
  }
#if SANPERF_AUDIT_ENABLED
  // A frame the filter lets through must not cross a pair the ground-truth
  // oracle says is partitioned right now. Checked at the filter instant --
  // not at delivery -- so frames already past the filter when a partition
  // opens are legitimately delivered.
  if (partition_oracle_) {
    SANPERF_AUDIT_CHECK("net.no_delivery_across_partition",
                        !partition_oracle_(frame.src(), dst),
                        "frame " + std::to_string(frame.src()) + " -> " + std::to_string(dst) +
                            " passed the filter across an active partition");
  }
#endif
  const int copies = fate == FrameFate::kDuplicate ? 2 : 1;
  if (copies == 2) {
    ++frames_duplicated_;
    SANPERF_AUDIT_ONLY(++audit_in_flight_;)  // the extra copy is live too
  }
  for (int c = 0; c < copies; ++c) {
    // Step 6: receiver CPU.
    cpus_[dst].submit(des::Duration::from_ms(params_.recv_cpu_ms * cpu_scale_[dst]),
                      [this, frame, dst] {
                        if (down_[dst]) {
                          ++frames_dropped_;
                          SANPERF_AUDIT_ONLY(--audit_in_flight_;)
                          return;
                        }
                        // A crashed host must never see a delivery: the guard above
                        // is the last line of defence and this audit proves it held.
                        SANPERF_AUDIT_CHECK("net.no_delivery_to_crashed", !down_[dst],
                                            "delivery to crashed host " + std::to_string(dst));
                        SANPERF_AUDIT_ONLY(++audit_delivered_; --audit_in_flight_;)
                        if (deliver_) deliver_(frame.packet(dst));  // step 7
                      });
  }
}

void ContentionNetwork::host_down(HostId h) {
  if (h >= cpus_.size()) throw std::invalid_argument{"ContentionNetwork::host_down: bad host"};
  down_[h] = 1;
  // The CPU abandons queued work; the job in service finishes occupying the
  // resource but its completion is suppressed. Every vaporised frame is one
  // that reaches no other terminal -- account it as crash loss so the
  // conservation audit stays balanced across crashes.
  const std::size_t lost = cpus_[h].drain(/*drop_in_service=*/true);
  static_cast<void>(lost);
  SANPERF_AUDIT_ONLY(audit_crash_lost_ += lost; audit_in_flight_ -= lost;)
}

void ContentionNetwork::host_restart(HostId h) {
  if (h >= cpus_.size()) {
    throw std::invalid_argument{"ContentionNetwork::host_restart: bad host"};
  }
  down_[h] = 0;
  // Reconnection resets the TCP dead-peer absorption in both directions, so
  // the first post-recovery protocol frame of every pair reaches the wire
  // again (and keeps doing so while the peer stays up).
  clear_dead_pairs(h);
}

void ContentionNetwork::set_cpu_scale(HostId h, double scale) {
  if (h >= cpus_.size()) throw std::invalid_argument{"ContentionNetwork::set_cpu_scale: bad host"};
  if (!(scale > 0)) throw std::invalid_argument{"ContentionNetwork::set_cpu_scale: scale <= 0"};
  cpu_scale_[h] = scale;
}

void ContentionNetwork::set_pipeline_scale(double scale) {
  if (!(scale > 0)) {
    throw std::invalid_argument{"ContentionNetwork::set_pipeline_scale: scale <= 0"};
  }
  pipeline_scale_ = scale;
}

}  // namespace sanperf::net
