// The contention network: per-host CPU resources plus one shared medium.
//
// A unicast transmission walks the seven steps of the paper's Fig 3:
//   1. enqueue at the sender's CPU          4. occupy the medium (t_net)
//   2. occupy the sender's CPU (t_send)     5. enqueue at the receiver's CPU
//   3. enqueue on the medium                6. occupy it (t_receive)
//                                           7. deliver to the process
// Each resource is an exclusive FIFO server. Between steps 4 and 5 a frame
// additionally experiences a non-exclusive pipeline latency (protocol-stack
// traversal) during which it occupies nothing -- this is where most of the
// end-to-end delay lives on the emulated testbed. Frames addressed to a
// crashed host still occupy the medium (the wire does not know) but are
// dropped before consuming the destination CPU.
//
// Frame bookkeeping is pooled (see frame_pool.hpp): a frame in flight is a
// slot index into columnar storage, closures carry a 24-byte FrameRef
// inside EventAction's inline buffer, and a broadcast shares one pooled
// body across all n-1 receivers -- the steady-state send path performs no
// heap allocation.
//
// Routed mode: constructed with a multi-rack topo::Topology, step 4 is no
// longer one shared hub but the frame's compiled route -- each link on the
// path (src access edge, the two rack uplinks when crossing racks, dst
// access edge) is its own exclusive FIFO server whose occupancy is the
// calibrated wire sample scaled by the link's service_scale, followed by
// the link's non-exclusive latency_ms. Steps 1-2 and 5-7 (CPUs, pipeline,
// receiver-edge filter) are byte-identical to hub mode. A null or
// single-rack topology keeps the hub code path exactly: every existing
// golden reproduces bit for bit.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/audit.hpp"
#include "des/random.hpp"
#include "des/simulator.hpp"
#include "net/frame_pool.hpp"
#include "net/params.hpp"
#include "topo/topology.hpp"

namespace sanperf::net {

/// An exclusive FIFO server over the discrete-event simulator: jobs queue,
/// one runs at a time for its service duration, then its completion action
/// fires.
class FifoServer {
 public:
  explicit FifoServer(des::Simulator& sim) : sim_{&sim} {}

  /// Enqueues a job with the given service time and completion action.
  /// `weight` is the number of frames the job stands for in conservation
  /// accounting (a batched broadcast submits one job for n-1 frames).
  void submit(des::Duration service, des::EventAction on_done, std::size_t weight = 1);

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t queue_length() const { return waiting_.size(); }
  /// Cumulative time the server has spent serving jobs.
  [[nodiscard]] des::Duration busy_time() const { return busy_time_; }
  [[nodiscard]] std::uint64_t jobs_served() const { return served_; }

  /// Discards queued jobs (used when a host crashes). The in-service job,
  /// if any, still completes unless `drop_in_service`. Returns how many
  /// frames will never see their completion run (the summed weights of
  /// queued jobs discarded here plus an in-service one whose completion
  /// was suppressed), so callers can keep conservation accounting over the
  /// submitted work.
  std::size_t drain(bool drop_in_service);

 private:
  struct Job {
    des::Duration service;
    des::EventAction on_done;
    std::size_t weight;
  };

  void start(Job job);
  void complete();

  des::Simulator* sim_;
  std::deque<Job> waiting_;
  bool busy_ = false;
  bool drop_current_ = false;
  des::EventAction current_done_;
  std::size_t current_weight_ = 0;
  des::Duration busy_time_ = des::Duration::zero();
  des::TimePoint service_start_;
  std::uint64_t served_ = 0;
};

/// The shared half-duplex hub. Each host's NIC queues its frames in FIFO
/// order, but when the medium frees up the next transmitting host is chosen
/// uniformly among the backlogged ones -- the fairness CSMA/CD arbitration
/// provides, and deliberately NOT a global arrival-order FIFO.
class HubMedium {
 public:
  HubMedium(des::Simulator& sim, des::RandomEngine rng, std::size_t hosts);

  /// Enqueues a frame from `src`; `on_done` fires when its transmission
  /// (with the given occupancy) completes.
  void submit(HostId src, des::Duration service, des::EventAction on_done);

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t backlog() const { return backlog_; }
  [[nodiscard]] des::Duration busy_time() const { return busy_time_; }
  [[nodiscard]] std::uint64_t frames_served() const { return served_; }

 private:
  struct Frame {
    des::Duration service;
    des::EventAction on_done;
  };

  void start_next();
  void complete();

  des::Simulator* sim_;
  des::RandomEngine rng_;
  std::vector<std::deque<Frame>> queues_;  // per source host
  std::size_t backlog_ = 0;
  bool busy_ = false;
  des::EventAction current_done_;
  des::Duration busy_time_ = des::Duration::zero();
  des::TimePoint service_start_;
  std::uint64_t served_ = 0;
};

class ContentionNetwork {
 public:
  /// Both `sim` and the callback outlive the network. A null `topology`
  /// (or one with a single rack) is the paper's shared hub; a multi-rack
  /// topology switches step 4 to routed per-link delivery. The topology is
  /// compiled into a RouteTable at construction and not referenced after.
  ContentionNetwork(des::Simulator& sim, des::RandomEngine rng, NetworkParams params,
                    std::size_t hosts, const topo::Topology* topology = nullptr);

  /// Called at step 7 with the destination and the packet.
  void set_deliver(std::function<void(const Packet&)> deliver) { deliver_ = std::move(deliver); }

  /// Frame cost classes: protocol messages pay the calibrated bimodal
  /// occupancy; small datagrams (heartbeats) pay raw wire time only.
  enum class FrameClass { kProtocol, kSmall };

  /// What the frame filter decides for a frame that survived the medium:
  /// deliver it, drop it silently (partition / probabilistic loss), or
  /// deliver it twice (datagram duplication).
  enum class FrameFate { kDeliver, kDrop, kDuplicate };
  /// Fault-injection hook, consulted once per frame at the receiver edge
  /// (after the medium and pipeline, before the receiver CPU). The frame
  /// has already paid its wire occupancy -- the hub does not know about
  /// switch-level filtering or corrupted checksums.
  using FrameFilter = std::function<FrameFate(const Packet&)>;
  void set_frame_filter(FrameFilter filter) { filter_ = std::move(filter); }

  /// Starts a unicast transmission (step 1). `body` is delivered unchanged.
  void send(HostId src, HostId dst, FrameBody body, FrameClass cls = FrameClass::kProtocol);

  /// Starts a broadcast: one frame per receiver (ascending host id,
  /// skipping the sender) sharing a single pooled body. With
  /// NetworkParams::batched_broadcast off -- or in routed mode -- the
  /// per-receiver resource occupancy, RNG draw order and event sequence
  /// are identical to n-1 send() calls, so results are bit-identical; on,
  /// the hub path coalesces the fan-out into one sender-CPU job and one
  /// medium burst (total occupancy unchanged), cutting the scheduled
  /// events per broadcast from ~4(n-1) to ~n+1.
  void broadcast(HostId src, FrameBody body, FrameClass cls = FrameClass::kProtocol);

  /// Marks a host as crashed: queued CPU work is discarded and future frames
  /// addressed to it vanish after their medium occupancy.
  void host_down(HostId h);
  /// Warm restart of a crashed host: frames flow again and the per-pair
  /// TCP dead-peer absorption state is reset in both directions (the
  /// restarted host re-establishes its connections).
  void host_restart(HostId h);
  [[nodiscard]] bool host_up(HostId h) const { return !down_.at(h); }

  /// Service-time scaling hooks (fault injection). `scale` multiplies the
  /// CPU occupancy of frames submitted at `h` from now on (in-service and
  /// queued jobs keep the service time fixed at enqueue); 1.0 restores the
  /// nominal cost bit-exactly.
  void set_cpu_scale(HostId h, double scale);
  [[nodiscard]] double cpu_scale(HostId h) const { return cpu_scale_.at(h); }
  /// Multiplies the non-exclusive pipeline latency of every frame.
  void set_pipeline_scale(double scale);
  [[nodiscard]] double pipeline_scale() const { return pipeline_scale_; }

  [[nodiscard]] std::size_t hosts() const { return cpus_.size(); }
  [[nodiscard]] const NetworkParams& params() const { return params_; }

  // Introspection for tests / ablation benches.
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] std::uint64_t frames_dropped() const { return frames_dropped_; }
  [[nodiscard]] std::uint64_t frames_filtered() const { return frames_filtered_; }
  [[nodiscard]] std::uint64_t frames_duplicated() const { return frames_duplicated_; }
  [[nodiscard]] des::Duration medium_busy_time() const { return medium_.busy_time(); }
  [[nodiscard]] const FifoServer& cpu(HostId h) const { return cpus_.at(h); }
  [[nodiscard]] const HubMedium& medium() const { return medium_; }
  [[nodiscard]] const FramePool& frame_pool() const { return *pool_; }

  // Routed-mode introspection. `route_table()` is null in hub mode.
  [[nodiscard]] bool routed() const { return routes_.has_value(); }
  [[nodiscard]] const topo::RouteTable* route_table() const {
    return routes_ ? &*routes_ : nullptr;
  }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] std::uint64_t link_entered(std::size_t link) const {
    return links_.at(link).entered;
  }
  [[nodiscard]] std::uint64_t link_exited(std::size_t link) const {
    return links_.at(link).exited;
  }
  [[nodiscard]] std::uint64_t link_overflow_dropped(std::size_t link) const {
    return links_.at(link).overflow_dropped;
  }
  [[nodiscard]] des::Duration link_busy_time(std::size_t link) const {
    return links_.at(link).server.busy_time();
  }

#if SANPERF_AUDIT_ENABLED
  /// Frame conservation: every frame submitted (plus duplicated copies) is
  /// eventually delivered, dropped with accounting, or lost to a crash
  /// drain -- and nothing materialises out of thin air. The identity is
  /// checked continuously; `at_drain` additionally requires that no frame
  /// remains in flight (call when the event queue has emptied).
  void audit_check_frame_conservation(bool at_drain) const {
    SANPERF_AUDIT_CHECK("net.frame_conservation",
                        frames_sent_ + frames_duplicated_ ==
                            audit_delivered_ + frames_dropped_ + audit_crash_lost_ +
                                audit_in_flight_,
                        "sent " + std::to_string(frames_sent_) + " + dup " +
                            std::to_string(frames_duplicated_) + " != delivered " +
                            std::to_string(audit_delivered_) + " + dropped " +
                            std::to_string(frames_dropped_) + " + crash-lost " +
                            std::to_string(audit_crash_lost_) + " + in-flight " +
                            std::to_string(audit_in_flight_));
    if (at_drain) {
      SANPERF_AUDIT_CHECK("net.frame_conservation", audit_in_flight_ == 0,
                          std::to_string(audit_in_flight_) +
                              " frames still in flight after the event queue drained");
    }
    // Per-link conservation on the routed path: every frame that entered a
    // link's queue exits its server exactly once. Between the two counts a
    // frame legitimately occupies the link, so the exact identity holds
    // only once the event queue has drained.
    for (std::size_t li = 0; li < links_.size(); ++li) {
      const Link& l = links_[li];
      SANPERF_AUDIT_CHECK("net.link_conservation", l.entered >= l.exited,
                          "link " + routes_->link_name(li) + " exited " +
                              std::to_string(l.exited) + " frames but only " +
                              std::to_string(l.entered) + " entered");
      if (at_drain) {
        SANPERF_AUDIT_CHECK("net.link_conservation", l.entered == l.exited,
                            "link " + routes_->link_name(li) + ": entered " +
                                std::to_string(l.entered) + " != exited " +
                                std::to_string(l.exited) + " after the event queue drained");
      }
    }
  }
  [[nodiscard]] std::uint64_t audit_frames_delivered() const { return audit_delivered_; }

  /// Ground-truth reachability oracle, audit builds only: when set, every
  /// frame the receiver-edge filter lets through is cross-checked against
  /// it -- a delivery (or duplication) across a pair the oracle says is
  /// partitioned trips `net.no_delivery_across_partition`. The injector
  /// installs the plan's partitioned_at as the oracle, so the filter path
  /// and the declarative plan are verified against each other.
  using PartitionOracle = std::function<bool(HostId src, HostId dst)>;
  void set_partition_oracle(PartitionOracle oracle) { partition_oracle_ = std::move(oracle); }

  /// Test-only corruption backdoor: fabricates a link entry with no
  /// matching exit, so the per-link conservation audit can be made to trip
  /// deliberately at drain.
  void audit_corrupt_link_entry(std::size_t link) { ++links_.at(link).entered; }

  /// Test-only corruption backdoor: runs the step-7 delivery tail without
  /// the crashed-host guard (and without a matching send), so both the
  /// no-delivery-to-crashed audit and the conservation audit can be made
  /// to trip deliberately.
  void audit_force_deliver(const Packet& pkt) {
    SANPERF_AUDIT_CHECK("net.no_delivery_to_crashed", !down_[pkt.dst],
                        "forced delivery to crashed host " + std::to_string(pkt.dst));
    ++audit_delivered_;
    if (deliver_) deliver_(pkt);
  }
#endif

 private:
  /// One exclusive link of the routed path, with conservation counters.
  struct Link {
    explicit Link(des::Simulator& sim) : server{sim} {}
    FifoServer server;
    std::uint64_t entered = 0;
    std::uint64_t exited = 0;
    std::uint64_t overflow_dropped = 0;
  };

  [[nodiscard]] des::Duration sample(const stats::BimodalUniform& dist);
  /// Steps 2-4 of one (shared-body) unicast frame: sender CPU, then hub or
  /// route. The dead-pair decision (`wire`) was already taken at submit.
  void submit_unicast(FrameRef frame, HostId dst, bool wire, FrameClass cls);
  /// Routed step 4: occupy route link `step`, pay its latency, recurse;
  /// past the last hop the frame reaches the receiver edge.
  void route_hop(FrameRef frame, HostId dst, FrameClass cls, std::uint32_t step);
  /// Step 5 on the legacy per-frame path: always schedules the pipeline
  /// event, even at zero latency -- the event order is part of the
  /// bit-exact contract with the pre-pool goldens.
  void receiver_edge(FrameRef frame, HostId dst);
  /// Step 5 on the batched path: a zero pipeline latency short-circuits
  /// straight into the receiver edge with no scheduled event.
  void receiver_edge_batched(const FrameRef& frame, HostId dst);
  /// Steps 5b-7 (receiver-edge filter, receiver CPU, delivery), shared by
  /// every path.
  void edge_arrive(const FrameRef& frame, HostId dst);

  /// Sets the (src, dst) bit in the dead-pair table, returning its prior
  /// value. The table is a packed bitset materialised only when the first
  /// dead pair appears (n^2 bits instead of n^2 bytes; nothing at all for
  /// runs without crashes).
  bool test_and_set_dead_pair(HostId src, HostId dst);
  void clear_dead_pairs(HostId h);

  des::Simulator* sim_;
  des::RandomEngine rng_;
  NetworkParams params_;
  std::shared_ptr<FramePool> pool_;
  std::vector<FifoServer> cpus_;
  HubMedium medium_;
  std::optional<topo::RouteTable> routes_;  ///< engaged iff multi-rack (routed mode)
  std::vector<Link> links_;                 ///< routed mode: one server per topology link
  std::vector<char> down_;
  std::vector<std::uint64_t> dead_pair_bits_;  // lazily sized ceil(n*n/64)
  std::vector<double> cpu_scale_;              // per-host CPU service-time multiplier
  double pipeline_scale_ = 1.0;
  FrameFilter filter_;
  std::function<void(const Packet&)> deliver_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_filtered_ = 0;
  std::uint64_t frames_duplicated_ = 0;
#if SANPERF_AUDIT_ENABLED
  std::uint64_t audit_delivered_ = 0;   ///< frames handed to deliver_ (step 7)
  std::uint64_t audit_in_flight_ = 0;   ///< submitted, not yet at a terminal
  std::uint64_t audit_crash_lost_ = 0;  ///< jobs vaporised by a crash drain
  PartitionOracle partition_oracle_;    ///< ground truth for the receiver edge
#endif
};

}  // namespace sanperf::net
