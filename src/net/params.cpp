#include "net/params.hpp"

// NetworkParams and TimerModel are aggregates; this translation unit exists
// so the module has a home for future non-inline logic and keeps one object
// file per header pair.
namespace sanperf::net {}
