// Parameters of the emulated cluster network.
//
// The emulator reproduces the resource structure the paper identified on
// its testbed (Section 3.3): per-host CPU resources covering network
// controller + communication-layer processing, and one shared network
// resource (the 100Base-TX hub) that only one frame occupies at a time.
// Defaults are chosen so that the measured unicast end-to-end delay matches
// the paper's bi-modal fit (U[0.10,0.13] w.p. 0.8, U[0.145,0.35] w.p. 0.2,
// in ms) with t_send = t_receive = 0.025 ms.
#pragma once

#include <cstdint>

#include "des/time.hpp"
#include "stats/bimodal_fit.hpp"

namespace sanperf::net {

struct NetworkParams {
  /// CPU occupancy for emitting one protocol message (ms).
  double send_cpu_ms = 0.025;
  /// CPU occupancy for receiving one protocol message (ms).
  double recv_cpu_ms = 0.025;
  /// Exclusive medium occupancy per frame (ms). On the emulated testbed the
  /// shared half-duplex hub (plus the kernel transmit path that feeds it)
  /// is the dominant, serialising delay: one frame at a time, bimodal
  /// service. This is the paper's own abstraction -- its SAN model assigns
  /// everything between the CPU costs to the exclusive network resource.
  stats::BimodalUniform wire_service{0.8, 0.050, 0.080, 0.095, 0.300};
  /// Additional per-frame latency that does NOT occupy a shared resource;
  /// zero by default (kept for ablations: moving delay from `wire_service`
  /// into this stage removes contention without changing idle delays).
  stats::BimodalUniform pipeline_latency{1.0, 0.0, 0.0, 0.0, 0.0};
  /// Medium occupancy of a small datagram (heartbeats): the raw wire time
  /// of a ~100-byte frame on 100Base-TX, without the TCP-stack serialisation
  /// the protocol-frame figure absorbs. This keeps failure-detection
  /// traffic from congesting the medium, matching the paper's observation
  /// (Section 3.4) that the extra FD load did not affect latency.
  stats::BimodalUniform small_wire_service{1.0, 0.008, 0.012, 0.0, 0.0};

  /// TCP behaviour towards a crashed host: the first frame a sender emits
  /// to it reaches the wire (data segment or SYN), after which the sender's
  /// kernel is in retransmission backoff and further application sends are
  /// absorbed by the socket buffer at CPU cost only. Modelled per
  /// (sender, dead destination) pair.
  bool dead_peer_absorption = true;

  /// Coalesce a hub-mode broadcast into one sender-CPU job and one medium
  /// burst (total resource occupancy unchanged), cutting the scheduled
  /// events per broadcast from ~4(n-1) to ~n+1. Off by default: the
  /// unbatched path is bit-identical to n-1 unicasts and is what every
  /// pre-existing golden pins down. Ignored in routed mode.
  bool batched_broadcast = false;

  [[nodiscard]] static NetworkParams defaults() { return {}; }

  /// Mean uncontended end-to-end delay of a unicast message (ms);
  /// e2e = send_cpu + wire + pipeline + recv_cpu. With the defaults this is
  /// 0.1415 ms on [0.10, 0.35], matching the paper's unicast fit
  /// U[0.10,0.13]@0.8 + U[0.145,0.35]@0.2.
  [[nodiscard]] double expected_unicast_e2e_ms() const {
    return send_cpu_ms + wire_service.mean() + pipeline_latency.mean() + recv_cpu_ms;
  }
};

/// OS timer behaviour of the testbed (Linux 2.2, HZ=100: 10 ms jiffies).
///
/// A sleeping thread wakes at the first scheduler tick at or after its
/// requested expiry, plus a small wake-up overhead, plus occasional long
/// stalls (JVM garbage collection, load). The paper attributes the latency
/// peak near T = 10 ms to exactly this quantisation; the heartbeat sender
/// runs on such timers. Event-driven work (message handlers) is not
/// quantised.
struct TimerModel {
  double tick_ms = 10.0;        ///< scheduler tick; 0 disables quantisation
  double wake_noise_ms = 0.05;  ///< U[0, wake_noise] after the tick
  /// Extra lateness mixture (applied after quantisation). The testbed ran
  /// Java on a uniprocessor: timer threads were routinely displaced by
  /// protocol work and garbage collection, occasionally for tens of ms.
  double p_minor_stall = 0.25;  ///< U[0.2, 3] ms
  double p_major_stall = 0.06;  ///< U[1, 12] ms
  double p_huge_stall = 0.004;  ///< U[12, 45] ms

  [[nodiscard]] static TimerModel defaults() { return {}; }
  /// No quantisation, no stalls: ideal timers (useful in tests).
  [[nodiscard]] static TimerModel ideal() {
    return TimerModel{0.0, 0.0, 0.0, 0.0, 0.0};
  }
};

}  // namespace sanperf::net
