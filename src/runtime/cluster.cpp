#include "runtime/cluster.hpp"

#include <stdexcept>

namespace sanperf::runtime {

Cluster::Cluster(const ClusterConfig& cfg)
    : cfg_{cfg},
      sim_{cfg.queue_backend},
      master_{cfg.seed},
      net_{sim_, master_.substream("net"), cfg.network, cfg.n, cfg.topology.get()} {
  if (cfg.n < 2) throw std::invalid_argument{"Cluster: need at least 2 processes"};
  processes_.reserve(cfg.n);
  for (std::size_t i = 0; i < cfg.n; ++i) {
    processes_.push_back(std::make_unique<Process>(static_cast<HostId>(i), cfg.n, sim_, net_,
                                                   master_.substream("proc", i), cfg.timers));
  }
  net_.set_deliver([this](const net::Packet& pkt) {
    const auto& msg = pkt.body->get<Message>();
    processes_[pkt.dst]->deliver(msg);
  });
}

void Cluster::crash_initially(HostId id) { processes_.at(id)->crash(); }

void Cluster::crash_at(HostId id, des::TimePoint at) {
  sim_.schedule_at(at, [this, id] { processes_.at(id)->crash(); });
}

void Cluster::recover_at(HostId id, des::TimePoint at) {
  sim_.schedule_at(at, [this, id] { processes_.at(id)->restart(); });
}

void Cluster::start_processes() {
  if (started_) return;
  started_ = true;
  for (auto& p : processes_) p->start();
}

void Cluster::run_until(des::TimePoint deadline) {
  start_processes();
  sim_.run_until(deadline);
  SANPERF_AUDIT_ONLY(net_.audit_check_frame_conservation(sim_.queue_empty());)
}

void Cluster::run_until(const std::function<bool()>& stop, des::TimePoint deadline) {
  start_processes();
  while (!stop() && !sim_.queue_empty() && sim_.now() <= deadline) {
    sim_.step();
  }
  SANPERF_AUDIT_ONLY(net_.audit_check_frame_conservation(sim_.queue_empty());)
}

des::RandomEngine Cluster::rng_stream(std::string_view label, std::uint64_t index) const {
  return master_.substream(label, index);
}

}  // namespace sanperf::runtime
