// The emulated cluster: a simulator, a contention network and n processes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "des/random.hpp"
#include "des/simulator.hpp"
#include "net/network.hpp"
#include "runtime/process.hpp"
#include "topo/topology.hpp"

namespace sanperf::runtime {

struct ClusterConfig {
  std::size_t n = 3;
  net::NetworkParams network = net::NetworkParams::defaults();
  net::TimerModel timers = net::TimerModel::defaults();
  /// Optional network topology (shared so config copies stay cheap). Null
  /// or single-rack = the paper's shared hub, bit-exact with every
  /// existing golden; multi-rack switches the network to routed delivery
  /// and scopes domain fault events (see faults::lower_plan).
  std::shared_ptr<const topo::Topology> topology;
  /// Pending-set backend for the simulator. Both backends pop the same
  /// event order, so this is a pure performance knob (ladder wins on large
  /// clusters; see README "Scaling a single run").
  des::QueueBackend queue_backend = des::default_queue_backend();
  std::uint64_t seed = 1;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg);

  [[nodiscard]] std::size_t n() const { return processes_.size(); }
  [[nodiscard]] Process& process(HostId id) { return *processes_.at(id); }
  [[nodiscard]] const Process& process(HostId id) const { return *processes_.at(id); }
  [[nodiscard]] des::Simulator& sim() { return sim_; }
  [[nodiscard]] net::ContentionNetwork& network() { return net_; }
  [[nodiscard]] des::TimePoint now() const { return sim_.now(); }
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }

  /// Crashes a process before the simulation starts.
  void crash_initially(HostId id);
  /// Schedules a crash at an absolute simulated time.
  void crash_at(HostId id, des::TimePoint at);
  /// Schedules a warm restart of a crashed process (see Process::restart).
  void recover_at(HostId id, des::TimePoint at);

  /// Calls every process's on_start layers (idempotent) and runs events
  /// until `deadline`, the given predicate, or queue exhaustion.
  void run_until(des::TimePoint deadline);
  void run_until(const std::function<bool()>& stop, des::TimePoint deadline);

  /// Derives a fresh RNG substream tied to this cluster's seed.
  [[nodiscard]] des::RandomEngine rng_stream(std::string_view label, std::uint64_t index = 0) const;

 private:
  void start_processes();

  ClusterConfig cfg_;
  des::Simulator sim_;
  des::RandomEngine master_;
  net::ContentionNetwork net_;
  std::vector<std::unique_ptr<Process>> processes_;
  bool started_ = false;
};

}  // namespace sanperf::runtime
