#include "runtime/message.hpp"

#include <cstdio>

namespace sanperf::runtime {

const char* to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kHeartbeat: return "HEARTBEAT";
    case MsgKind::kEstimate: return "ESTIMATE";
    case MsgKind::kPropose: return "PROPOSE";
    case MsgKind::kAck: return "ACK";
    case MsgKind::kNack: return "NACK";
    case MsgKind::kDecide: return "DECIDE";
    case MsgKind::kCoordEst: return "COORDEST";
    case MsgKind::kAux: return "AUX";
    case MsgKind::kPing: return "PING";
    case MsgKind::kPong: return "PONG";
    case MsgKind::kApp: return "APP";
    case MsgKind::kReplayQuery: return "REPLAYQ";
  }
  return "?";
}

std::string Message::to_string() const {
  char buf[144];
  std::snprintf(buf, sizeof buf, "%s %u->%u cid=%d r=%d v=%lld ts=%d nv=%zu",
                sanperf::runtime::to_string(kind), from, to, cid, round,
                static_cast<long long>(value), ts, values.size());
  return buf;
}

}  // namespace sanperf::runtime
