// Protocol messages exchanged by processes.
//
// Mirrors the paper's implementation: every message is ~100 bytes, carried
// over point-to-point connections; a broadcast is n-1 unicasts. The body is
// a single flat struct (the SAN model ignores data content, and so can we:
// only the control fields matter).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "des/time.hpp"
#include "net/network.hpp"

namespace sanperf::runtime {

using net::HostId;

enum class MsgKind : std::uint8_t {
  kHeartbeat,  ///< failure-detector heartbeat
  kEstimate,   ///< CT consensus phase 1: participant -> coordinator
  kPropose,    ///< CT consensus phase 2: coordinator -> participants
  kAck,        ///< CT consensus phase 3 positive reply
  kNack,       ///< CT consensus phase 3 negative reply (coordinator suspected)
  kDecide,     ///< decision dissemination (reliable broadcast)
  kCoordEst,   ///< MR consensus phase 1: coordinator's estimate broadcast
  kAux,        ///< MR consensus phase 2: echoed value or bottom, all-to-all
  kPing,       ///< delay-probe request (Fig 6 experiments)
  kPong,       ///< delay-probe reply
  kApp,        ///< generic application payload
  kReplayQuery,  ///< durable-recovery: restarted host asks peers to re-send
                 ///< the round-r traffic it missed for an in-flight instance
};

[[nodiscard]] const char* to_string(MsgKind kind);

struct Message {
  MsgKind kind = MsgKind::kApp;
  HostId from = 0;
  HostId to = 0;
  std::int32_t cid = 0;    ///< consensus instance id
  std::int32_t round = 0;  ///< consensus round (absolute, 1-based)
  std::int64_t value = 0;  ///< proposed/decided value (first batched value)
  /// Batched payload: the full value vector a consensus instance carries
  /// when an upstream Batcher packs several client values into one
  /// instance (empty for unbatched protocol traffic; `value` always
  /// mirrors the first entry when non-empty). The SAN model charges per
  /// frame regardless of content, so batching amortises without changing
  /// the timing of any individual message.
  std::vector<std::int64_t> values;
  std::int32_t ts = 0;     ///< estimate timestamp (last adopted round)
  std::uint64_t probe_id = 0;         ///< delay-probe correlation id
  /// Sender's reboot count, stamped by Process::send. A monitor seeing a
  /// higher incarnation than it knew learns the peer crashed and recovered
  /// since the last message -- the crash-recovery completeness hook for
  /// failure detection (0 for never-restarted processes).
  std::uint32_t incarnation = 0;
  /// Membership epoch of the carrying consensus instance. Instances capture
  /// the epoch current at launch and resolve coordinators/majorities against
  /// that epoch's member set for their whole life; the epoch rides on every
  /// message so late joiners adopt it (0 under fixed membership).
  std::uint32_t view_epoch = 0;
  des::TimePoint sent_at;             ///< stamped by Process::send

  [[nodiscard]] std::string to_string() const;
};

}  // namespace sanperf::runtime
