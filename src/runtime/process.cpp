#include "runtime/process.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace sanperf::runtime {

Process::Process(HostId id, std::size_t n, des::Simulator& sim, net::ContentionNetwork& net,
                 des::RandomEngine rng, net::TimerModel timers)
    : id_{id}, n_{n}, sim_{&sim}, net_{&net}, rng_{rng}, timers_{timers} {}

void Process::send(Message m, HostId dst) {
  if (crashed_) return;
  if (dst == id_) throw std::invalid_argument{"Process::send: self-send goes through the layer"};
  m.from = id_;
  m.to = dst;
  m.incarnation = static_cast<std::uint32_t>(epoch_);
  m.sent_at = sim_->now();
  ++sent_;
  const auto cls = m.kind == MsgKind::kHeartbeat ? net::ContentionNetwork::FrameClass::kSmall
                                                 : net::ContentionNetwork::FrameClass::kProtocol;
  net_->send(id_, dst, std::move(m), cls);
}

void Process::broadcast(Message m) {
  if (crashed_) return;
  // One shared-body frame for all n-1 receivers (ascending host id, as the
  // per-receiver send loop did). `to` stays 0: no consumer reads it.
  m.from = id_;
  m.incarnation = static_cast<std::uint32_t>(epoch_);
  m.sent_at = sim_->now();
  sent_ += n_ - 1;
  const auto cls = m.kind == MsgKind::kHeartbeat ? net::ContentionNetwork::FrameClass::kSmall
                                                 : net::ContentionNetwork::FrameClass::kProtocol;
  net_->broadcast(id_, std::move(m), cls);
}

TimerId Process::set_timer(des::Duration delay, std::function<void()> fn) {
  return sim_->schedule(delay, [this, epoch = epoch_, fn = std::move(fn)] {
    if (!crashed_ && epoch == epoch_) {
      // A timer body must only ever run in the epoch it was armed in, on a
      // live process -- the guard just established both.
      SANPERF_AUDIT_CHECK("runtime.timer_epoch_guard", !crashed_ && epoch == epoch_);
      fn();
    } else {
      SANPERF_AUDIT_ONLY(++audit_suppressed_;)
    }
  });
}

TimerId Process::set_os_timer(des::Duration delay, std::function<void()> fn) {
  const des::TimePoint actual = net::quantize_timer(timers_, sim_->now() + delay, rng_);
  return sim_->schedule_at(actual, [this, epoch = epoch_, fn = std::move(fn)] {
    if (!crashed_ && epoch == epoch_) {
      SANPERF_AUDIT_CHECK("runtime.timer_epoch_guard", !crashed_ && epoch == epoch_);
      fn();
    } else {
      SANPERF_AUDIT_ONLY(++audit_suppressed_;)
    }
  });
}

#if SANPERF_AUDIT_ENABLED
TimerId Process::audit_arm_unguarded_timer(des::Duration delay, std::function<void()> fn) {
  return sim_->schedule(delay, [this, epoch = epoch_, fn = std::move(fn)] {
    SANPERF_AUDIT_CHECK("runtime.timer_epoch_guard", !crashed_ && epoch == epoch_,
                        "pre-crash timer fired on host " + std::to_string(id_) +
                            " (armed epoch " + std::to_string(epoch) + ", now " +
                            std::to_string(epoch_) + (crashed_ ? ", crashed)" : ")"));
    fn();
  });
}
#endif

void Process::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++epoch_;  // kill every armed timer, across any future restart
  net_->host_down(id_);
  for (auto& l : layers_) l->on_crash();
}

void Process::restart() {
  if (!crashed_) return;
  crashed_ = false;
  net_->host_restart(id_);
  for (auto& l : layers_) l->on_restart();
}

void Process::deliver(const Message& m) {
  if (crashed_) return;
  ++received_;
  for (auto& l : layers_) {
    l->on_message(m);
    if (crashed_) return;  // a layer may crash the process mid-delivery
  }
}

void Process::start() {
  for (auto& l : layers_) {
    if (!crashed_) l->on_start();
  }
}

}  // namespace sanperf::runtime
