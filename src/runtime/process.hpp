// A process with a stack of protocol layers (Neko-style).
//
// Layers receive every incoming message bottom-up and may send messages,
// set timers and crash the process. The failure-detector layer sits below
// the consensus layer so that it observes all traffic ("the reception of
// any message from q resets the timer", Section 2.2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "des/random.hpp"
#include "des/simulator.hpp"
#include "net/jitter.hpp"
#include "runtime/message.hpp"

namespace sanperf::runtime {

class Process;

class Layer {
 public:
  virtual ~Layer() = default;

  /// Called once when the cluster starts (before any event runs).
  virtual void on_start() {}
  /// Called for every message delivered to the process, bottom-up.
  virtual void on_message(const Message& m) = 0;
  /// Called when the hosting process crashes.
  virtual void on_crash() {}
  /// Called on a warm restart after a crash (fault injection). The default
  /// keeps the layer's state untouched; layers holding volatile protocol
  /// state or running timer loops override it to re-initialise -- all
  /// timers armed before the crash are dead by then (see Process::crash).
  virtual void on_restart() {}

  [[nodiscard]] Process& process() const { return *process_; }

 private:
  friend class Process;
  Process* process_ = nullptr;
};

using TimerId = des::EventId;

class Process {
 public:
  Process(HostId id, std::size_t n, des::Simulator& sim, net::ContentionNetwork& net,
          des::RandomEngine rng, net::TimerModel timers);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Appends a layer; returns a reference owned by the process.
  template <typename L, typename... Args>
  L& add_layer(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layer->process_ = this;
    layers_.push_back(std::move(layer));
    return ref;
  }

  /// First layer of dynamic type L; throws if absent.
  template <typename L>
  [[nodiscard]] L& layer() const {
    for (const auto& l : layers_) {
      if (auto* p = dynamic_cast<L*>(l.get())) return *p;
    }
    throw std::logic_error{"Process: no such layer"};
  }

  [[nodiscard]] HostId id() const { return id_; }
  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] des::TimePoint now() const { return sim_->now(); }
  [[nodiscard]] des::RandomEngine& rng() { return rng_; }
  [[nodiscard]] bool crashed() const { return crashed_; }

  /// Sends a unicast; `from` and `sent_at` are stamped here.
  void send(Message m, HostId dst);
  /// Sends to every other process, in ascending host-id order (the paper's
  /// implementation sends n-1 unicasts; the fixed order is what produces
  /// the n=3 participant-crash anomaly of Section 5.3).
  void broadcast(Message m);

  /// Event-driven timer with exact expiry (message-handler work).
  TimerId set_timer(des::Duration delay, std::function<void()> fn);
  /// Thread-style timer subject to the OS timer model (tick quantisation +
  /// stalls); used by the heartbeat sender.
  TimerId set_os_timer(des::Duration delay, std::function<void()> fn);
  bool cancel_timer(TimerId id) { return sim_->cancel(id); }

  /// Crash-stop: the process stops sending, receiving and firing timers.
  /// Every timer armed before the crash is permanently dead (epoch guard),
  /// even if the process is later restarted.
  void crash();

  /// Warm restart after a crash: the host rejoins the network (frames flow
  /// and the TCP dead-peer state resets), and every layer's on_restart runs
  /// bottom-up. Pre-crash timers stay dead; pre-crash layer state survives
  /// unless the layer's on_restart discards it. No-op on a live process.
  void restart();

  /// Entry point used by the cluster when a packet reaches this host.
  void deliver(const Message& m);
  /// Runs every layer's on_start.
  void start();

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_received() const { return received_; }

#if SANPERF_AUDIT_ENABLED
  /// Timers whose firing was suppressed because the process crashed (or
  /// crash-restarted) after arming them: evidence the epoch guard kills
  /// pre-crash timers instead of letting them run into post-restart state.
  [[nodiscard]] std::uint64_t audit_timers_suppressed() const { return audit_suppressed_; }
  /// Test-only corruption backdoor: arms a timer WITHOUT the epoch guard,
  /// so a pre-crash timer chain survives into the post-crash process. The
  /// audit check inside trips when the unguarded timer fires on a crashed
  /// or restarted process.
  TimerId audit_arm_unguarded_timer(des::Duration delay, std::function<void()> fn);
#endif

 private:
  HostId id_;
  std::size_t n_;
  des::Simulator* sim_;
  net::ContentionNetwork* net_;
  des::RandomEngine rng_;
  net::TimerModel timers_;
  std::vector<std::unique_ptr<Layer>> layers_;
  bool crashed_ = false;
  /// Bumped on every crash: timers capture the epoch they were armed in and
  /// fire only if it still matches, so a warm restart cannot resurrect
  /// pre-crash timer chains (stale heartbeat rounds, stale FD wake-ups).
  std::uint64_t epoch_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
#if SANPERF_AUDIT_ENABLED
  std::uint64_t audit_suppressed_ = 0;
#endif
};

}  // namespace sanperf::runtime
