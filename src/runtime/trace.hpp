// Message tracing: a layer that records every delivery at its process,
// with optional kind filtering. Useful for debugging protocols, asserting
// traffic patterns in tests, and counting per-kind message volumes in
// ablation studies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "runtime/process.hpp"

namespace sanperf::runtime {

class TraceLayer : public Layer {
 public:
  struct Entry {
    des::TimePoint at;
    Message message;
  };

  TraceLayer() = default;
  /// Records only the given kind.
  explicit TraceLayer(MsgKind only) : filter_{only} {}

  void on_message(const Message& m) override {
    ++counts_[m.kind];
    if (filter_ && m.kind != *filter_) return;
    entries_.push_back({process().now(), m});
  }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] std::uint64_t count(MsgKind kind) const {
    const auto it = counts_.find(kind);
    return it == counts_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& [kind, c] : counts_) sum += c;
    return sum;
  }
  void clear() {
    entries_.clear();
    counts_.clear();
  }

 private:
  std::optional<MsgKind> filter_;
  std::vector<Entry> entries_;
  std::map<MsgKind, std::uint64_t> counts_;
};

}  // namespace sanperf::runtime
