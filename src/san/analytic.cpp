#include "san/analytic.hpp"

#include <cmath>
#include <deque>
#include <stdexcept>

namespace sanperf::san {

CtmcTransientSolver::CtmcTransientSolver(const SanModel& model,
                                         std::function<bool(const Marking&)> stop,
                                         AnalyticOptions options)
    : model_{&model}, stop_{std::move(stop)}, options_{options} {
  model_->validate();
  for (ActivityId a = 0; a < model_->activity_count(); ++a) {
    const Activity& act = model_->activity(a);
    if (act.timed && !act.delay.is_exponential()) {
      throw std::invalid_argument{
          "CtmcTransientSolver: non-exponential timed activity '" + act.name +
          "' -- only simulative solvers apply (the paper's own situation)"};
    }
  }
  if (!stop_) throw std::invalid_argument{"CtmcTransientSolver: null stop predicate"};
  explore();
}

namespace {

/// Enabled check mirroring SanSimulator::is_enabled.
bool enabled_in(const SanModel& model, const Activity& act, const Marking& m) {
  for (const PlaceId p : act.input_places) {
    std::int32_t needed = 0;
    for (const PlaceId q : act.input_places) {
      if (q == p) ++needed;
    }
    if (m.get(p) < needed) return false;
  }
  for (const InputGateId g : act.input_gates) {
    if (!model.in_gate(g).enabled(m)) return false;
  }
  return true;
}

/// Applies one firing of `act` with the chosen case to a copy of `m`.
Marking fire_case(const SanModel& model, const Activity& act, const Case& chosen, Marking m) {
  for (const PlaceId p : act.input_places) m.add(p, -1);
  for (const InputGateId g : act.input_gates) {
    if (model.in_gate(g).fire) model.in_gate(g).fire(m);
  }
  for (const PlaceId p : chosen.output_places) m.add(p, 1);
  for (const OutputGateId g : chosen.output_gates) model.out_gate(g).fire(m);
  return m;
}

}  // namespace

void CtmcTransientSolver::settle(const Marking& m, double prob,
                                 std::map<std::vector<std::int32_t>, double>& out,
                                 std::size_t depth) const {
  if (depth > options_.max_cascade_depth) {
    throw std::runtime_error{"CtmcTransientSolver: instantaneous cascade too deep (livelock?)"};
  }
  // The stop predicate freezes the model (the run would end here).
  if (!stop_(m)) {
    // Weighted branching over every enabled instantaneous activity, as the
    // race semantics would choose at random.
    std::vector<ActivityId> enabled;
    double total_weight = 0;
    for (ActivityId a = 0; a < model_->activity_count(); ++a) {
      const Activity& act = model_->activity(a);
      if (act.timed || !enabled_in(*model_, act, m)) continue;
      enabled.push_back(a);
      total_weight += act.weight;
    }
    if (!enabled.empty()) {
      for (const ActivityId a : enabled) {
        const Activity& act = model_->activity(a);
        const double p_act = act.weight / total_weight;
        for (const Case& c : act.cases) {
          if (c.probability <= 0) continue;
          settle(fire_case(*model_, act, c, m), prob * p_act * c.probability, out, depth + 1);
        }
      }
      return;
    }
  }
  out[m.raw()] += prob;  // tangible
}

std::size_t CtmcTransientSolver::intern(const Marking& m) {
  const auto [it, inserted] = index_.try_emplace(m.raw(), states_.size());
  if (inserted) {
    if (states_.size() >= options_.max_states) {
      throw std::runtime_error{"CtmcTransientSolver: state space exceeds max_states"};
    }
    states_.push_back(m);
    transitions_.emplace_back();
    is_absorbing_.push_back(0);
    is_stop_.push_back(0);
  }
  return it->second;
}

void CtmcTransientSolver::explore() {
  // Initial tangible distribution (the initial marking may cascade, and the
  // cascade may branch probabilistically -- e.g. the FD submodel's init).
  std::map<std::vector<std::int32_t>, double> init;
  settle(model_->initial_marking(), 1.0, init, 0);
  std::deque<std::size_t> frontier;
  for (const auto& [raw0, prob] : init) {
    Marking m0{model_->place_count()};
    for (std::size_t p = 0; p < raw0.size(); ++p) m0.set(static_cast<PlaceId>(p), raw0[p]);
    const std::size_t before = states_.size();
    const std::size_t s = intern(m0);
    if (s == before) frontier.push_back(s);
    initial_dist_.emplace_back(s, prob);
  }

  while (!frontier.empty()) {
    const std::size_t s = frontier.front();
    frontier.pop_front();
    const Marking m = states_[s];

    if (stop_(m)) {
      is_stop_[s] = 1;
      is_absorbing_[s] = 1;
      ++absorbing_count_;
      continue;
    }

    bool any = false;
    for (ActivityId a = 0; a < model_->activity_count(); ++a) {
      const Activity& act = model_->activity(a);
      if (!act.timed || !enabled_in(*model_, act, m)) continue;
      any = true;
      const double rate = 1.0 / act.delay.mean_ms();
      for (const Case& c : act.cases) {
        if (c.probability <= 0) continue;
        std::map<std::vector<std::int32_t>, double> outcomes;
        settle(fire_case(*model_, act, c, m), 1.0, outcomes, 0);
        for (const auto& [raw, prob] : outcomes) {
          Marking target{model_->place_count()};
          for (std::size_t p = 0; p < raw.size(); ++p) {
            target.set(static_cast<PlaceId>(p), raw[p]);
          }
          const std::size_t before = states_.size();
          const std::size_t t = intern(target);
          if (t == before) frontier.push_back(t);
          transitions_[s].push_back({t, rate * c.probability * prob});
        }
      }
    }
    if (!any) is_absorbing_[s] = 1;  // deadlock without stop: absorbing, not stop
  }
}

double CtmcTransientSolver::mean_time_to_stop_ms() const {
  const std::size_t n = states_.size();
  // Hitting-time equations: t_i = 1/lambda_i + sum_j p_ij t_j for transient
  // states; t = 0 at stop states; unreachable-absorption (deadlock) states
  // make the mean infinite.
  for (std::size_t s = 0; s < n; ++s) {
    if (is_absorbing_[s] && !is_stop_[s]) {
      throw std::runtime_error{
          "CtmcTransientSolver: a deadlocked non-stop state is reachable; "
          "mean time to stop is infinite"};
    }
  }
  // Gauss-Seidel on t_i = (1 + sum_j q_ij t_j / lambda_i ... ) -- written
  // directly from rates: lambda_i t_i = 1 + sum_j q_ij t_j.
  std::vector<double> t(n, 0.0);
  std::vector<double> lambda(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    for (const Transition& tr : transitions_[s]) lambda[s] += tr.rate;
  }
  for (int iter = 0; iter < 200000; ++iter) {
    double delta = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (is_stop_[s]) continue;
      double acc = 1.0;
      for (const Transition& tr : transitions_[s]) acc += tr.rate * t[tr.target];
      const double next = acc / lambda[s];
      delta = std::max(delta, std::fabs(next - t[s]));
      t[s] = next;
    }
    if (delta < 1e-12) break;
  }
  double mean = 0;
  for (const auto& [s, prob] : initial_dist_) mean += prob * t[s];
  return mean;
}

double CtmcTransientSolver::probability_stopped_by(double t_ms) const {
  if (t_ms < 0) throw std::invalid_argument{"probability_stopped_by: negative time"};
  const std::size_t n = states_.size();

  // Uniformisation: P(t) = sum_k Poisson(k; q t) pi_0 P^k with q >= max rate.
  double q = 0;
  std::vector<double> lambda(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    for (const Transition& tr : transitions_[s]) lambda[s] += tr.rate;
    q = std::max(q, lambda[s]);
  }
  std::vector<double> pi(n, 0.0);
  for (const auto& [s, prob] : initial_dist_) pi[s] += prob;
  if (q == 0) {
    double stopped = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (is_stop_[s]) stopped += pi[s];
    }
    return stopped;
  }
  const double qt = q * t_ms;

  // Poisson weights with scaled recursion to avoid underflow.
  double result = 0;
  double log_poisson = -qt;  // log P(k=0)
  double tail = 1.0;
  std::vector<double> next(n, 0.0);
  for (int k = 0;; ++k) {
    // Accumulate this step's stopped mass.
    double stopped = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (is_stop_[s]) stopped += pi[s];
    }
    const double w = std::exp(log_poisson);
    result += w * stopped;
    tail -= w;
    if (tail < options_.uniformization_epsilon || k > 20 + static_cast<int>(qt * 4 + 60)) break;

    // pi <- pi P  with  P = I + Q/q.
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t s = 0; s < n; ++s) {
      if (pi[s] == 0) continue;
      next[s] += pi[s] * (1.0 - lambda[s] / q);
      for (const Transition& tr : transitions_[s]) {
        next[tr.target] += pi[s] * tr.rate / q;
      }
    }
    pi.swap(next);
    log_poisson += std::log(qt) - std::log(k + 1.0);
  }
  // Whatever probability mass the truncated tail holds is bounded by
  // `tail`; report the computed lower bound.
  return std::min(1.0, result);
}

}  // namespace sanperf::san
