// Analytical transient solution of SAN models whose timed activities are
// all exponential (the continuous-time Markov chain underneath).
//
// UltraSAN offers analytical solvers alongside simulation; the paper had to
// use simulation because its network delays are non-exponential. This
// module provides the analytical side for models that do qualify:
//
//   * the reachable tangible state space is explored from the initial
//     marking (instantaneous activities are "vanishing" and eliminated by
//     enumerating every weighted instantaneous cascade outcome);
//   * mean time to the stop predicate is obtained from the linear hitting
//     time equations;
//   * P(stopped by t) is computed by uniformisation.
//
// Throws std::invalid_argument for models with non-exponential timed
// activities -- reproducing the constraint the paper states in Section 3.1.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "san/model.hpp"

namespace sanperf::san {

struct AnalyticOptions {
  std::size_t max_states = 200000;          ///< exploration cap (throws beyond)
  std::size_t max_cascade_depth = 64;       ///< instantaneous-closure depth cap
  double uniformization_epsilon = 1e-10;    ///< truncation error for P(t)
};

class CtmcTransientSolver {
 public:
  /// `model` must validate, contain only exponential timed activities, and
  /// keep both references alive for the solver's lifetime.
  CtmcTransientSolver(const SanModel& model, std::function<bool(const Marking&)> stop,
                      AnalyticOptions options = {});

  /// Number of reachable tangible states (including absorbing ones).
  [[nodiscard]] std::size_t state_count() const { return states_.size(); }
  /// Number of states satisfying the stop predicate.
  [[nodiscard]] std::size_t absorbing_count() const { return absorbing_count_; }

  /// Exact mean time (ms) from the initial state to the stop predicate.
  /// Throws std::runtime_error if absorption is not certain (a deadlocked
  /// non-stop state is reachable).
  [[nodiscard]] double mean_time_to_stop_ms() const;

  /// P(stop predicate holds by time t), by uniformisation.
  [[nodiscard]] double probability_stopped_by(double t_ms) const;

 private:
  struct Transition {
    std::size_t target;
    double rate;  ///< per ms
  };

  /// Distribution over tangible markings after settling instantaneous
  /// activities, weighted by instantaneous-choice and case probabilities.
  void settle(const Marking& m, double prob,
              std::map<std::vector<std::int32_t>, double>& out, std::size_t depth) const;

  std::size_t intern(const Marking& m);
  void explore();

  const SanModel* model_;
  std::function<bool(const Marking&)> stop_;
  AnalyticOptions options_;

  std::vector<Marking> states_;
  std::map<std::vector<std::int32_t>, std::size_t> index_;
  std::vector<std::vector<Transition>> transitions_;  // per state
  std::vector<char> is_absorbing_;                    // stop or deadlock
  std::vector<char> is_stop_;
  /// Initial distribution over tangible states (an instantaneous cascade at
  /// t = 0 may branch probabilistically, e.g. the FD submodel's init).
  std::vector<std::pair<std::size_t, double>> initial_dist_;
  std::size_t absorbing_count_ = 0;
};

}  // namespace sanperf::san
