#include "san/compose.hpp"

namespace sanperf::san {

void rep(SanModel& model, const std::string& base, std::size_t count,
         const std::function<void(const Scope&, std::size_t)>& builder) {
  for (std::size_t i = 0; i < count; ++i) {
    builder(Scope{model, base + "[" + std::to_string(i) + "]"}, i);
  }
}

void join(SanModel& model,
          const std::vector<std::pair<std::string, std::function<void(const Scope&)>>>& parts) {
  for (const auto& [name, builder] : parts) {
    builder(Scope{model, name});
  }
}

}  // namespace sanperf::san
