// Build-time composition helpers in the spirit of UltraSAN's REP and JOIN.
//
// UltraSAN composes separately-specified submodels by replicating them (REP)
// and fusing selected places (JOIN). Gate predicates in this library are C++
// closures over concrete PlaceIds, so composition happens while building:
// a Scope gives each submodel instance a unique name prefix, and sharing a
// PlaceId between builders is the JOIN operation. `rep` runs one builder N
// times with indexed scopes and a common set of shared places.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "san/model.hpp"

namespace sanperf::san {

/// A named namespace inside a SanModel. Place/activity names created through
/// a Scope are prefixed with "<scope>.", which keeps replicated submodels
/// disjoint while letting them share explicitly passed PlaceIds.
class Scope {
 public:
  Scope(SanModel& model, std::string prefix) : model_{&model}, prefix_{std::move(prefix)} {}

  /// Child scope "<this>.<name>".
  [[nodiscard]] Scope sub(const std::string& name) const {
    return Scope{*model_, prefix_ + "." + name};
  }

  [[nodiscard]] SanModel& model() const { return *model_; }
  [[nodiscard]] const std::string& prefix() const { return prefix_; }
  [[nodiscard]] std::string qualify(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + "." + name;
  }

  PlaceId place(const std::string& name, std::int32_t initial = 0) const {
    return model_->place(qualify(name), initial);
  }
  [[nodiscard]] PlaceId find_place(const std::string& name) const {
    return model_->find_place(qualify(name));
  }
  InputGateId input_gate(const std::string& name, std::vector<PlaceId> reads,
                         std::function<bool(const Marking&)> enabled,
                         std::function<void(Marking&)> fire = nullptr) const {
    return model_->input_gate(qualify(name), std::move(reads), std::move(enabled),
                              std::move(fire));
  }
  OutputGateId output_gate(const std::string& name, std::function<void(Marking&)> fire) const {
    return model_->output_gate(qualify(name), std::move(fire));
  }
  ActivityRef timed_activity(const std::string& name, Distribution delay) const {
    return model_->timed_activity(qualify(name), std::move(delay));
  }
  ActivityRef instant_activity(const std::string& name, double weight = 1.0) const {
    return model_->instant_activity(qualify(name), weight);
  }

 private:
  SanModel* model_;
  std::string prefix_;
};

/// REP: instantiates `builder` once per replica under scopes
/// "<base>[0]" ... "<base>[count-1]". Places the builders obtain from
/// outside (captured PlaceIds) act as JOIN-shared state.
void rep(SanModel& model, const std::string& base, std::size_t count,
         const std::function<void(const Scope&, std::size_t index)>& builder);

/// JOIN: runs several independently written builders against one model,
/// each under its own scope name. Shared places are whatever the callers
/// capture in common.
void join(SanModel& model,
          const std::vector<std::pair<std::string, std::function<void(const Scope&)>>>& parts);

}  // namespace sanperf::san
