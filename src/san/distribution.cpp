#include "san/distribution.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace sanperf::san {

Distribution Distribution::deterministic_ms(double ms) {
  if (ms < 0) throw std::invalid_argument{"deterministic_ms: negative"};
  Distribution d;
  d.components_.push_back({1.0, Kind::kDeterministic, ms, 0});
  d.weights_.push_back(1.0);
  return d;
}

Distribution Distribution::exponential_ms(double mean_ms) {
  if (!(mean_ms > 0)) throw std::invalid_argument{"exponential_ms: mean <= 0"};
  Distribution d;
  d.components_.push_back({1.0, Kind::kExponential, mean_ms, 0});
  d.weights_.push_back(1.0);
  return d;
}

Distribution Distribution::uniform_ms(double a_ms, double b_ms) {
  if (!(0 <= a_ms && a_ms <= b_ms)) throw std::invalid_argument{"uniform_ms: bad range"};
  Distribution d;
  d.components_.push_back({1.0, Kind::kUniform, a_ms, b_ms});
  d.weights_.push_back(1.0);
  return d;
}

Distribution Distribution::weibull_ms(double shape, double scale_ms) {
  if (!(shape > 0 && scale_ms > 0)) throw std::invalid_argument{"weibull_ms: bad params"};
  Distribution d;
  d.components_.push_back({1.0, Kind::kWeibull, shape, scale_ms});
  d.weights_.push_back(1.0);
  return d;
}

Distribution Distribution::bimodal_uniform_ms(double p1, double a1, double b1, double a2,
                                              double b2) {
  if (!(p1 > 0 && p1 < 1)) throw std::invalid_argument{"bimodal_uniform_ms: p1 outside (0,1)"};
  Distribution d;
  d.components_.push_back({p1, Kind::kUniform, a1, b1});
  d.components_.push_back({1 - p1, Kind::kUniform, a2, b2});
  d.weights_ = {p1, 1 - p1};
  return d;
}

Distribution Distribution::from_fit(const stats::BimodalUniform& fit) {
  if (fit.p1 >= 1.0) return uniform_ms(fit.a1, fit.b1);
  return bimodal_uniform_ms(fit.p1, fit.a1, fit.b1, fit.a2, fit.b2);
}

Distribution Distribution::mixture(std::vector<std::pair<double, Distribution>> parts) {
  if (parts.empty()) throw std::invalid_argument{"mixture: empty"};
  Distribution d;
  for (auto& [w, part] : parts) {
    if (!(w > 0)) throw std::invalid_argument{"mixture: non-positive weight"};
    for (std::size_t i = 0; i < part.components_.size(); ++i) {
      Component c = part.components_[i];
      c.weight *= w;
      d.components_.push_back(c);
      d.weights_.push_back(c.weight);
    }
  }
  return d;
}

double Distribution::sample_component(const Component& c, des::RandomEngine& rng) {
  switch (c.kind) {
    case Kind::kDeterministic:
      return c.p0;
    case Kind::kExponential:
      return rng.exponential_mean(c.p0);
    case Kind::kUniform:
      return rng.uniform(c.p0, c.p1);
    case Kind::kWeibull:
      return rng.weibull(c.p0, c.p1);
  }
  throw std::logic_error{"Distribution: unknown kind"};
}

double Distribution::component_mean(const Component& c) {
  switch (c.kind) {
    case Kind::kDeterministic:
    case Kind::kExponential:
      return c.p0;
    case Kind::kUniform:
      return (c.p0 + c.p1) / 2;
    case Kind::kWeibull:
      return c.p1 * std::tgamma(1.0 + 1.0 / c.p0);
  }
  throw std::logic_error{"Distribution: unknown kind"};
}

des::Duration Distribution::sample(des::RandomEngine& rng) const {
  if (components_.empty()) throw std::logic_error{"Distribution: empty"};
  const Component& c =
      components_.size() == 1 ? components_.front() : components_[rng.categorical(weights_)];
  return des::Duration::from_ms(sample_component(c, rng));
}

double Distribution::mean_ms() const {
  double total_w = 0;
  double acc = 0;
  for (const Component& c : components_) {
    total_w += c.weight;
    acc += c.weight * component_mean(c);
  }
  return acc / total_w;
}

bool Distribution::is_deterministic() const {
  return components_.size() == 1 && components_.front().kind == Kind::kDeterministic;
}

bool Distribution::is_exponential() const {
  return components_.size() == 1 && components_.front().kind == Kind::kExponential;
}

std::string Distribution::to_string() const {
  std::string out;
  char buf[96];
  for (const Component& c : components_) {
    if (!out.empty()) out += " + ";
    switch (c.kind) {
      case Kind::kDeterministic:
        std::snprintf(buf, sizeof buf, "Det(%.4g)@%.3g", c.p0, c.weight);
        break;
      case Kind::kExponential:
        std::snprintf(buf, sizeof buf, "Exp(mean=%.4g)@%.3g", c.p0, c.weight);
        break;
      case Kind::kUniform:
        std::snprintf(buf, sizeof buf, "U[%.4g,%.4g]@%.3g", c.p0, c.p1, c.weight);
        break;
      case Kind::kWeibull:
        std::snprintf(buf, sizeof buf, "Weib(k=%.4g,s=%.4g)@%.3g", c.p0, c.p1, c.weight);
        break;
    }
    out += buf;
  }
  return out;
}

}  // namespace sanperf::san
