// Firing-time distributions for timed SAN activities.
//
// UltraSAN supports exponential, deterministic, uniform, Weibull and other
// activity time distributions; non-exponential choices restrict solving to
// simulation, which is exactly what the paper did. A Distribution here is a
// finite mixture of primitive components, which directly covers the paper's
// bi-modal uniform network delays.
#pragma once

#include <string>
#include <vector>

#include "des/random.hpp"
#include "des/time.hpp"
#include "stats/bimodal_fit.hpp"

namespace sanperf::san {

class Distribution {
 public:
  /// Always fires after exactly `ms` milliseconds.
  [[nodiscard]] static Distribution deterministic_ms(double ms);
  /// Exponential with mean `mean_ms` milliseconds.
  [[nodiscard]] static Distribution exponential_ms(double mean_ms);
  /// Uniform on [a_ms, b_ms] milliseconds.
  [[nodiscard]] static Distribution uniform_ms(double a_ms, double b_ms);
  /// Weibull with the given shape; scale in milliseconds.
  [[nodiscard]] static Distribution weibull_ms(double shape, double scale_ms);
  /// Two uniform components: U[a1,b1] w.p. p1, else U[a2,b2] (milliseconds).
  [[nodiscard]] static Distribution bimodal_uniform_ms(double p1, double a1, double b1, double a2,
                                                       double b2);
  /// Converts a fitted stats::BimodalUniform (values in ms).
  [[nodiscard]] static Distribution from_fit(const stats::BimodalUniform& fit);
  /// Weighted mixture of arbitrary distributions (weights need not sum to 1;
  /// they are normalised).
  [[nodiscard]] static Distribution mixture(std::vector<std::pair<double, Distribution>> parts);

  /// Draws one firing delay.
  [[nodiscard]] des::Duration sample(des::RandomEngine& rng) const;

  /// Exact mean of the distribution in milliseconds.
  [[nodiscard]] double mean_ms() const;

  /// True when every draw equals the mean (deterministic).
  [[nodiscard]] bool is_deterministic() const;

  /// True when the distribution is a single exponential component --
  /// the prerequisite for analytical (CTMC) solvers.
  [[nodiscard]] bool is_exponential() const;

  [[nodiscard]] std::string to_string() const;

 private:
  enum class Kind { kDeterministic, kExponential, kUniform, kWeibull };

  struct Component {
    double weight = 1.0;
    Kind kind = Kind::kDeterministic;
    double p0 = 0.0;  ///< det: value; exp: mean; uniform: a; weibull: shape
    double p1 = 0.0;  ///< uniform: b; weibull: scale
  };

  [[nodiscard]] static double sample_component(const Component& c, des::RandomEngine& rng);
  [[nodiscard]] static double component_mean(const Component& c);

  std::vector<Component> components_;
  std::vector<double> weights_;  // cached for categorical draws
};

}  // namespace sanperf::san
