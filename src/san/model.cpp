#include "san/model.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace sanperf::san {

ActivityRef& ActivityRef::in(PlaceId p) {
  model_->mutable_activity(id_).input_places.push_back(p);
  return *this;
}

ActivityRef& ActivityRef::in_gate(InputGateId g) {
  model_->mutable_activity(id_).input_gates.push_back(g);
  return *this;
}

ActivityRef& ActivityRef::case_prob(double probability) {
  auto& act = model_->mutable_activity(id_);
  if (act.cases.size() == 1 && act.cases.front().output_places.empty() &&
      act.cases.front().output_gates.empty()) {
    // The implicit default case is still empty: repurpose it.
    act.cases.front().probability = probability;
  } else {
    act.cases.push_back(Case{probability, {}, {}});
  }
  return *this;
}

ActivityRef& ActivityRef::out(PlaceId p) {
  model_->mutable_activity(id_).cases.back().output_places.push_back(p);
  return *this;
}

ActivityRef& ActivityRef::out_gate(OutputGateId g) {
  model_->mutable_activity(id_).cases.back().output_gates.push_back(g);
  return *this;
}

PlaceId SanModel::place(const std::string& name, std::int32_t initial) {
  if (place_index_.contains(name)) throw std::logic_error{"SanModel: duplicate place " + name};
  if (initial < 0) throw std::logic_error{"SanModel: negative initial tokens in " + name};
  const auto id = static_cast<PlaceId>(places_.size());
  places_.push_back({name, initial});
  place_index_.emplace(name, id);
  touch();
  return id;
}

InputGateId SanModel::input_gate(std::string name, std::vector<PlaceId> reads,
                                 std::function<bool(const Marking&)> enabled,
                                 std::function<void(Marking&)> fire) {
  if (!enabled) throw std::logic_error{"SanModel: input gate without predicate: " + name};
  const auto id = static_cast<InputGateId>(input_gates_.size());
  input_gates_.push_back({std::move(name), std::move(reads), std::move(enabled), std::move(fire)});
  touch();
  return id;
}

OutputGateId SanModel::output_gate(std::string name, std::function<void(Marking&)> fire) {
  if (!fire) throw std::logic_error{"SanModel: output gate without function: " + name};
  const auto id = static_cast<OutputGateId>(output_gates_.size());
  output_gates_.push_back({std::move(name), std::move(fire)});
  return id;
}

ActivityRef SanModel::timed_activity(const std::string& name, Distribution delay) {
  if (activity_index_.contains(name)) {
    throw std::logic_error{"SanModel: duplicate activity " + name};
  }
  const auto id = static_cast<ActivityId>(activities_.size());
  Activity act;
  act.name = name;
  act.timed = true;
  act.delay = std::move(delay);
  act.cases.push_back(Case{});
  activities_.push_back(std::move(act));
  activity_index_.emplace(name, id);
  touch();
  return ActivityRef{*this, id};
}

ActivityRef SanModel::instant_activity(const std::string& name, double weight) {
  if (activity_index_.contains(name)) {
    throw std::logic_error{"SanModel: duplicate activity " + name};
  }
  if (!(weight > 0)) throw std::logic_error{"SanModel: non-positive weight on " + name};
  const auto id = static_cast<ActivityId>(activities_.size());
  Activity act;
  act.name = name;
  act.timed = false;
  act.weight = weight;
  act.cases.push_back(Case{});
  activities_.push_back(std::move(act));
  activity_index_.emplace(name, id);
  touch();
  return ActivityRef{*this, id};
}

PlaceId SanModel::find_place(const std::string& name) const {
  const auto it = place_index_.find(name);
  if (it == place_index_.end()) throw std::out_of_range{"SanModel: no place " + name};
  return it->second;
}

bool SanModel::has_place(const std::string& name) const { return place_index_.contains(name); }

ActivityId SanModel::find_activity(const std::string& name) const {
  const auto it = activity_index_.find(name);
  if (it == activity_index_.end()) throw std::out_of_range{"SanModel: no activity " + name};
  return it->second;
}

void SanModel::set_initial_tokens(PlaceId p, std::int32_t v) {
  if (v < 0) throw std::logic_error{"SanModel: negative initial tokens"};
  places_[p].initial = v;
  touch();
}

Marking SanModel::initial_marking() const {
  Marking m{places_.size()};
  for (std::size_t p = 0; p < places_.size(); ++p) {
    m.set(static_cast<PlaceId>(p), places_[p].initial);
  }
  return m;
}

void SanModel::validate() const {
  if (validated_) return;
  for (const Activity& act : activities_) {
    if (act.cases.empty()) throw std::logic_error{"SanModel: activity without cases: " + act.name};
    double total = 0;
    for (const Case& c : act.cases) {
      if (!(c.probability >= 0)) {
        throw std::logic_error{"SanModel: negative case probability in " + act.name};
      }
      total += c.probability;
      for (const PlaceId p : c.output_places) {
        if (p >= places_.size()) throw std::logic_error{"SanModel: bad output place in " + act.name};
      }
      for (const OutputGateId g : c.output_gates) {
        if (g >= output_gates_.size()) {
          throw std::logic_error{"SanModel: bad output gate in " + act.name};
        }
      }
    }
    if (std::fabs(total - 1.0) > 1e-9) {
      throw std::logic_error{"SanModel: case probabilities of " + act.name +
                             " sum to " + std::to_string(total)};
    }
    if (act.input_places.empty() && act.input_gates.empty()) {
      throw std::logic_error{"SanModel: activity with no enabling condition: " + act.name};
    }
    for (const PlaceId p : act.input_places) {
      if (p >= places_.size()) throw std::logic_error{"SanModel: bad input place in " + act.name};
    }
    for (const InputGateId g : act.input_gates) {
      if (g >= input_gates_.size()) throw std::logic_error{"SanModel: bad input gate in " + act.name};
    }
  }
  for (const InputGate& g : input_gates_) {
    for (const PlaceId p : g.reads) {
      if (p >= places_.size()) throw std::logic_error{"SanModel: bad read in gate " + g.name};
    }
  }
  validated_ = true;
}

void SanModel::prepare() const {
  validate();
  if (dependents_dirty_) build_dependents();
}

void SanModel::build_dependents() const {
  dependents_.assign(places_.size(), {});
  for (std::size_t a = 0; a < activities_.size(); ++a) {
    const Activity& act = activities_[a];
    auto note = [&](PlaceId q) {
      auto& vec = dependents_[q];
      if (vec.empty() || vec.back() != static_cast<ActivityId>(a)) {
        vec.push_back(static_cast<ActivityId>(a));
      }
    };
    for (const PlaceId q : act.input_places) note(q);
    for (const InputGateId g : act.input_gates) {
      for (const PlaceId q : input_gates_[g].reads) note(q);
    }
  }
  // Deduplicate (an activity may touch a place through several routes).
  for (auto& vec : dependents_) {
    std::sort(vec.begin(), vec.end());
    vec.erase(std::unique(vec.begin(), vec.end()), vec.end());
  }
  dependents_dirty_ = false;
}

const std::vector<ActivityId>& SanModel::dependents(PlaceId p) const {
  if (dependents_dirty_) build_dependents();
  return dependents_[p];
}

}  // namespace sanperf::san
