// Stochastic Activity Network structure: places, activities, gates.
//
// The formalism follows Meyer/Movaghar/Sanders SANs as implemented by
// UltraSAN:
//   * places hold non-negative token counts (the marking);
//   * timed activities fire after a random delay drawn from a Distribution;
//   * instantaneous activities fire in zero time and have priority over
//     timed ones, selected by weight when several are enabled;
//   * an activity is enabled when every input arc place is non-empty and
//     every attached input gate predicate holds;
//   * firing consumes one token per input arc, runs the input gate
//     functions, picks one case at random (case probabilities), produces
//     one token per output arc of the case and runs its output gates.
//
// Gates carry an explicit sensitivity list (`reads`): the places whose
// marking their predicate inspects. The simulator uses these lists to
// re-evaluate only the activities affected by a firing, which keeps large
// composed models (hundreds of activities) fast.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "san/distribution.hpp"

namespace sanperf::san {

using PlaceId = std::uint32_t;
using ActivityId = std::uint32_t;
using InputGateId = std::uint32_t;
using OutputGateId = std::uint32_t;

/// Token counts for every place; the state of a SAN.
class Marking {
 public:
  Marking() = default;
  explicit Marking(std::size_t places) : tokens_(places, 0) {}

  [[nodiscard]] std::int32_t get(PlaceId p) const { return tokens_[p]; }
  void set(PlaceId p, std::int32_t v) {
    if (v < 0) throw std::logic_error{"Marking: negative token count"};
    tokens_[p] = v;
  }
  void add(PlaceId p, std::int32_t delta) { set(p, tokens_[p] + delta); }

  [[nodiscard]] std::size_t size() const { return tokens_.size(); }
  [[nodiscard]] const std::vector<std::int32_t>& raw() const { return tokens_; }

  friend bool operator==(const Marking&, const Marking&) = default;

 private:
  std::vector<std::int32_t> tokens_;
};

struct InputGate {
  std::string name;
  std::vector<PlaceId> reads;                       ///< places the predicate inspects
  std::function<bool(const Marking&)> enabled;      ///< enabling predicate
  std::function<void(Marking&)> fire;               ///< marking change on firing (may be null)
};

struct OutputGate {
  std::string name;
  std::function<void(Marking&)> fire;               ///< marking change on firing
};

struct Case {
  double probability = 1.0;
  std::vector<PlaceId> output_places;               ///< one token produced in each
  std::vector<OutputGateId> output_gates;
};

struct Activity {
  std::string name;
  bool timed = true;
  Distribution delay = Distribution::deterministic_ms(0);  ///< timed only
  double weight = 1.0;                                     ///< instantaneous selection weight
  std::vector<PlaceId> input_places;                       ///< input arcs (consume 1 each)
  std::vector<InputGateId> input_gates;
  std::vector<Case> cases;                                 ///< at least one after validate()
};

class SanModel;

/// Fluent helper for wiring one activity.
class ActivityRef {
 public:
  ActivityRef(SanModel& model, ActivityId id) : model_{&model}, id_{id} {}

  /// Adds an input arc from `p`.
  ActivityRef& in(PlaceId p);
  /// Attaches an input gate.
  ActivityRef& in_gate(InputGateId g);
  /// Starts a new case with the given probability. Before the first call an
  /// implicit case with probability 1 is in effect.
  ActivityRef& case_prob(double probability);
  /// Adds an output arc on the current case.
  ActivityRef& out(PlaceId p);
  /// Attaches an output gate to the current case.
  ActivityRef& out_gate(OutputGateId g);

  [[nodiscard]] ActivityId id() const { return id_; }

 private:
  SanModel* model_;
  ActivityId id_;
};

class SanModel {
 public:
  // --- construction -------------------------------------------------------
  /// Adds a place with an initial token count. Names must be unique.
  PlaceId place(const std::string& name, std::int32_t initial = 0);

  /// Adds an input gate. `reads` must list every place `enabled` inspects.
  InputGateId input_gate(std::string name, std::vector<PlaceId> reads,
                         std::function<bool(const Marking&)> enabled,
                         std::function<void(Marking&)> fire = nullptr);

  OutputGateId output_gate(std::string name, std::function<void(Marking&)> fire);

  /// Adds a timed activity with the given firing-time distribution.
  ActivityRef timed_activity(const std::string& name, Distribution delay);

  /// Adds an instantaneous activity (fires in zero time, weighted choice).
  ActivityRef instant_activity(const std::string& name, double weight = 1.0);

  // --- lookup --------------------------------------------------------------
  [[nodiscard]] PlaceId find_place(const std::string& name) const;
  [[nodiscard]] ActivityId find_activity(const std::string& name) const;
  [[nodiscard]] bool has_place(const std::string& name) const;

  [[nodiscard]] std::size_t place_count() const { return places_.size(); }
  [[nodiscard]] std::size_t activity_count() const { return activities_.size(); }
  [[nodiscard]] const std::string& place_name(PlaceId p) const { return places_[p].name; }
  [[nodiscard]] std::int32_t initial_tokens(PlaceId p) const { return places_[p].initial; }
  void set_initial_tokens(PlaceId p, std::int32_t v);

  [[nodiscard]] const Activity& activity(ActivityId a) const { return activities_[a]; }
  [[nodiscard]] const InputGate& in_gate(InputGateId g) const { return input_gates_[g]; }
  [[nodiscard]] const OutputGate& out_gate(OutputGateId g) const { return output_gates_[g]; }

  /// The marking every simulation run starts from.
  [[nodiscard]] Marking initial_marking() const;

  // --- integrity -----------------------------------------------------------
  /// Checks structural invariants (case probabilities sum to 1, every
  /// activity has at least one effect, gate sensitivity lists are in range).
  /// Throws std::logic_error describing the first violation. Memoized: a
  /// repeat call on an unmutated model is O(1).
  void validate() const;

  /// Validates and eagerly builds the dependents cache. Call this (from one
  /// thread) before sharing the model across concurrent simulators: after
  /// prepare(), all accessors on an unmutated model are read-only and
  /// thread-safe.
  void prepare() const;

  /// Activities whose enabling can change when `p` changes (input arcs and
  /// gate reads). Built lazily on first use after the last mutation; NOT
  /// thread-safe while the cache is cold (see prepare()).
  [[nodiscard]] const std::vector<ActivityId>& dependents(PlaceId p) const;

 private:
  friend class ActivityRef;

  struct PlaceInfo {
    std::string name;
    std::int32_t initial = 0;
  };

  /// Marks cached derived state stale after any structural mutation.
  void touch() {
    dependents_dirty_ = true;
    validated_ = false;
  }

  Activity& mutable_activity(ActivityId a) {
    touch();
    return activities_[a];
  }

  void build_dependents() const;

  std::vector<PlaceInfo> places_;
  std::vector<Activity> activities_;
  std::vector<InputGate> input_gates_;
  std::vector<OutputGate> output_gates_;
  // det-lint: allow(unordered-container) name->id lookup only, never iterated
  std::unordered_map<std::string, PlaceId> place_index_;
  // det-lint: allow(unordered-container) name->id lookup only, never iterated
  std::unordered_map<std::string, ActivityId> activity_index_;

  mutable bool dependents_dirty_ = true;
  mutable bool validated_ = false;
  mutable std::vector<std::vector<ActivityId>> dependents_;
};

}  // namespace sanperf::san
