#include "san/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace sanperf::san {

SanSimulator::SanSimulator(const SanModel& model, des::RandomEngine rng)
    : model_{&model}, rng_{rng} {
  model_->validate();
  reset(rng);
}

void SanSimulator::reset(des::RandomEngine rng) {
  rng_ = rng;
  marking_ = model_->initial_marking();
  now_ = des::TimePoint::origin();
  queue_.clear();
  enabled_.assign(model_->activity_count(), 0);
  scheduled_.assign(model_->activity_count(), des::kInvalidEventId);
  fire_counts_.assign(model_->activity_count(), 0);
  total_firings_ = 0;
  for (auto& r : rate_rewards_) r.integral_ms = 0;
  last_accrual_ = des::TimePoint::origin();
  refresh_all();
}

std::size_t SanSimulator::add_rate_reward(RateFn rate) {
  if (!rate) throw std::invalid_argument{"add_rate_reward: null function"};
  rate_rewards_.push_back({std::move(rate), 0});
  return rate_rewards_.size() - 1;
}

double SanSimulator::rate_reward(std::size_t index) const {
  return rate_rewards_.at(index).integral_ms;
}

double SanSimulator::rate_reward_average(std::size_t index) const {
  const double elapsed = now_.to_ms();
  return elapsed > 0 ? rate_rewards_.at(index).integral_ms / elapsed : 0.0;
}

void SanSimulator::accrue_rewards(des::TimePoint to) {
  if (rate_rewards_.empty() || to <= last_accrual_) {
    last_accrual_ = to;
    return;
  }
  const double dt = (to - last_accrual_).to_ms();
  for (auto& r : rate_rewards_) r.integral_ms += r.rate(marking_) * dt;
  last_accrual_ = to;
}

bool SanSimulator::is_enabled(ActivityId a) const {
  const Activity& act = model_->activity(a);
  // Input arcs: the marking must cover each place's multiplicity.
  for (std::size_t i = 0; i < act.input_places.size(); ++i) {
    const PlaceId p = act.input_places[i];
    std::int32_t needed = 0;
    for (const PlaceId q : act.input_places) {
      if (q == p) ++needed;
    }
    if (marking_.get(p) < needed) return false;
    (void)i;
  }
  for (const InputGateId g : act.input_gates) {
    if (!model_->in_gate(g).enabled(marking_)) return false;
  }
  return true;
}

void SanSimulator::refresh_activity(ActivityId a) {
  const bool en = is_enabled(a);
  if (en == static_cast<bool>(enabled_[a])) return;  // race policy: keep existing activation
  enabled_[a] = en ? 1 : 0;
  const Activity& act = model_->activity(a);
  if (!act.timed) return;  // instantaneous set is derived from enabled_ flags
  if (en) {
    const des::Duration delay = act.delay.sample(rng_);
    scheduled_[a] = queue_.push(now_ + delay, [this, a] { fire(a); });
  } else if (scheduled_[a] != des::kInvalidEventId) {
    queue_.cancel(scheduled_[a]);
    scheduled_[a] = des::kInvalidEventId;
  }
}

void SanSimulator::refresh_all() {
  for (ActivityId a = 0; a < model_->activity_count(); ++a) refresh_activity(a);
}

void SanSimulator::fire(ActivityId a) {
  accrue_rewards(now_);  // integrate over the marking that held until now
  const Activity& act = model_->activity(a);
  before_ = marking_.raw();

  // Consume input arcs.
  for (const PlaceId p : act.input_places) {
    if (marking_.get(p) <= 0) {
      throw std::logic_error{"SanSimulator: firing disabled activity " + act.name};
    }
    marking_.add(p, -1);
  }
  // Input gate functions.
  for (const InputGateId g : act.input_gates) {
    if (model_->in_gate(g).fire) model_->in_gate(g).fire(marking_);
  }
  // Case selection.
  const Case* chosen = &act.cases.front();
  if (act.cases.size() > 1) {
    case_probs_.clear();
    for (const Case& c : act.cases) case_probs_.push_back(c.probability);
    chosen = &act.cases[rng_.categorical(case_probs_)];
  }
  for (const PlaceId p : chosen->output_places) marking_.add(p, 1);
  for (const OutputGateId g : chosen->output_gates) model_->out_gate(g).fire(marking_);

  ++fire_counts_[a];
  ++total_firings_;
  if (fire_hook_) fire_hook_(a, now_);

  // The fired activity's activation is spent: force re-evaluation.
  enabled_[a] = 0;
  if (act.timed) scheduled_[a] = des::kInvalidEventId;

  // Re-evaluate only activities sensitive to changed places (plus `a`).
  affected_.clear();
  affected_.push_back(a);
  const auto& after = marking_.raw();
  for (std::size_t p = 0; p < after.size(); ++p) {
    if (before_[p] == after[p]) continue;
    const auto& deps = model_->dependents(static_cast<PlaceId>(p));
    affected_.insert(affected_.end(), deps.begin(), deps.end());
  }
  std::sort(affected_.begin(), affected_.end());
  affected_.erase(std::unique(affected_.begin(), affected_.end()), affected_.end());
  for (const ActivityId x : affected_) refresh_activity(x);
}

std::optional<ActivityId> SanSimulator::pick_instantaneous() {
  // Scan the (static) set of instantaneous activities for enabled ones.
  inst_ids_.clear();
  inst_weights_.clear();
  for (ActivityId a = 0; a < model_->activity_count(); ++a) {
    if (!enabled_[a] || model_->activity(a).timed) continue;
    inst_ids_.push_back(a);
    inst_weights_.push_back(model_->activity(a).weight);
  }
  if (inst_ids_.empty()) return std::nullopt;
  if (inst_ids_.size() == 1) return inst_ids_.front();
  return inst_ids_[rng_.categorical(inst_weights_)];
}

void SanSimulator::settle_instantaneous() {
  std::uint64_t burst = 0;
  while (true) {
    if (stop_pred_ && stop_pred_(marking_)) return;
    const auto a = pick_instantaneous();
    if (!a) return;
    if (++burst > kMaxInstantaneousBurst) {
      throw std::runtime_error{"SanSimulator: instantaneous livelock at activity " +
                               model_->activity(*a).name};
    }
    fire(*a);
  }
}

RunResult SanSimulator::run(des::Duration time_limit) {
  const des::TimePoint deadline =
      time_limit == des::Duration::max() ? des::TimePoint::max()
                                         : des::TimePoint::origin() + time_limit;
  settle_instantaneous();
  while (true) {
    if (stop_pred_ && stop_pred_(marking_)) {
      return {StopReason::kPredicate, now_, total_firings_};
    }
    if (queue_.empty()) return {StopReason::kDeadlock, now_, total_firings_};
    if (queue_.next_time() > deadline) {
      now_ = deadline;
      accrue_rewards(now_);
      return {StopReason::kTimeLimit, now_, total_firings_};
    }
    auto ev = queue_.pop();
    now_ = ev.at;
    ev.action();  // fires the timed activity
    settle_instantaneous();
  }
}

}  // namespace sanperf::san
