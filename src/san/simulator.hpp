// Discrete-event execution of a SAN model.
//
// Semantics:
//   * instantaneous activities fire before any timed one, chosen among the
//     enabled set by weight;
//   * a timed activity samples its firing delay when it becomes enabled
//     ("race" execution policy); if it is disabled before firing, the
//     activation is aborted; when re-enabled it samples afresh, and an
//     activity that fires and stays enabled also samples afresh;
//   * after each firing only the activities whose inputs touch a changed
//     place are re-evaluated (sensitivity lists from SanModel::dependents).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "des/event_queue.hpp"
#include "des/random.hpp"
#include "san/model.hpp"

namespace sanperf::san {

enum class StopReason {
  kPredicate,  ///< the stop predicate became true
  kDeadlock,   ///< no activity enabled
  kTimeLimit,  ///< simulated time exceeded the limit
};

struct RunResult {
  StopReason reason = StopReason::kDeadlock;
  des::TimePoint end_time;
  std::uint64_t firings = 0;
};

class SanSimulator {
 public:
  /// The model must outlive the simulator and must already validate().
  SanSimulator(const SanModel& model, des::RandomEngine rng);

  /// Optional predicate: the run stops as soon as it holds (checked after
  /// every firing and before the first one).
  void set_stop_predicate(std::function<bool(const Marking&)> pred) {
    stop_pred_ = std::move(pred);
  }

  /// Optional per-firing hook (tracing, reward collection).
  void set_fire_hook(std::function<void(ActivityId, des::TimePoint)> hook) {
    fire_hook_ = std::move(hook);
  }

  /// Registers a rate reward: the time integral of `rate(marking)` over the
  /// run, accumulated across marking changes (UltraSAN's rate rewards).
  /// Returns an index for rate_reward(). Must be called before run().
  using RateFn = std::function<double(const Marking&)>;
  std::size_t add_rate_reward(RateFn rate);

  /// Accumulated integral of reward `index` up to now().
  [[nodiscard]] double rate_reward(std::size_t index) const;
  /// Time-average of reward `index` (integral / elapsed time); 0 at t = 0.
  [[nodiscard]] double rate_reward_average(std::size_t index) const;

  /// Runs from the initial marking until the stop predicate, deadlock or
  /// the time limit.
  RunResult run(des::Duration time_limit = des::Duration::max());

  /// Resets state so run() can be called again; `rng` reseeds the run.
  void reset(des::RandomEngine rng);

  [[nodiscard]] const Marking& marking() const { return marking_; }
  [[nodiscard]] des::TimePoint now() const { return now_; }
  [[nodiscard]] std::uint64_t fire_count(ActivityId a) const { return fire_counts_[a]; }
  [[nodiscard]] std::uint64_t total_firings() const { return total_firings_; }

  /// Safety valve: maximum consecutive zero-time firings before the run is
  /// declared livelocked (throws std::runtime_error).
  static constexpr std::uint64_t kMaxInstantaneousBurst = 1'000'000;

 private:
  [[nodiscard]] bool is_enabled(ActivityId a) const;
  void refresh_activity(ActivityId a);
  void refresh_all();
  /// Integrates rate rewards from the last accrual point to `to`.
  void accrue_rewards(des::TimePoint to);
  void fire(ActivityId a);
  /// Fires enabled instantaneous activities until none remains.
  void settle_instantaneous();
  [[nodiscard]] std::optional<ActivityId> pick_instantaneous();

  const SanModel* model_;
  des::RandomEngine rng_;
  Marking marking_;
  des::TimePoint now_;
  des::EventQueue queue_;

  std::vector<char> enabled_;            // per activity
  std::vector<des::EventId> scheduled_;  // per timed activity; 0 when none
  std::vector<std::uint64_t> fire_counts_;
  std::uint64_t total_firings_ = 0;

  std::function<bool(const Marking&)> stop_pred_;
  std::function<void(ActivityId, des::TimePoint)> fire_hook_;

  struct RateReward {
    RateFn rate;
    double integral_ms = 0;  ///< integral of rate over simulated ms
  };
  std::vector<RateReward> rate_rewards_;
  des::TimePoint last_accrual_;

  // scratch buffers reused across firings (the firing loop allocates
  // nothing in steady state)
  std::vector<std::int32_t> before_;
  std::vector<ActivityId> affected_;
  std::vector<ActivityId> inst_ids_;     // enabled instantaneous candidates
  std::vector<double> inst_weights_;
  std::vector<double> case_probs_;
};

}  // namespace sanperf::san
