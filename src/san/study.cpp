#include "san/study.hpp"

#include <utility>

namespace sanperf::san {

TransientStudy::Reward TransientStudy::time_to_stop_ms() {
  return [](const SanSimulator& sim, const RunResult& r) {
    (void)sim;
    return r.end_time.to_ms();
  };
}

TransientStudy::TransientStudy(const SanModel& model, std::function<bool(const Marking&)> stop,
                               Reward reward)
    : model_{&model}, stop_{std::move(stop)}, reward_{std::move(reward)} {}

StudyResult TransientStudy::run(std::size_t replications, std::uint64_t seed,
                                double confidence) const {
  const des::RandomEngine master{seed};
  StudyResult out;
  out.rewards.reserve(replications);

  SanSimulator sim{*model_, master.substream("rep", 0)};
  sim.set_stop_predicate(stop_);
  for (std::size_t r = 0; r < replications; ++r) {
    sim.reset(master.substream("rep", r));
    const RunResult res = sim.run(time_limit_);
    if (res.reason != StopReason::kPredicate && !keep_incomplete_) {
      ++out.dropped;
      continue;
    }
    const double reward = reward_(sim, res);
    out.rewards.push_back(reward);
    out.summary.add(reward);
  }
  out.ci = out.summary.mean_ci(confidence);
  return out;
}

}  // namespace sanperf::san
