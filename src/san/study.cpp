#include "san/study.hpp"

#include <utility>

namespace sanperf::san {

TransientStudy::Reward TransientStudy::time_to_stop_ms() {
  return [](const SanSimulator& sim, const RunResult& r) {
    (void)sim;
    return r.end_time.to_ms();
  };
}

TransientStudy::TransientStudy(const SanModel& model, std::function<bool(const Marking&)> stop,
                               Reward reward)
    : model_{&model}, stop_{std::move(stop)}, reward_{std::move(reward)} {
  // Warm the model's lazily-built caches (validation, dependents) while we
  // are still single-threaded, so concurrent run_one calls only read.
  model.prepare();
}

std::optional<double> TransientStudy::run_one(des::RandomEngine rng) const {
  SanSimulator sim{*model_, rng};
  sim.set_stop_predicate(stop_);
  const RunResult res = sim.run(time_limit_);
  if (res.reason != StopReason::kPredicate && !keep_incomplete_) return std::nullopt;
  return reward_(sim, res);
}

StudyResult TransientStudy::run(std::size_t replications, std::uint64_t seed,
                                double confidence) const {
  const des::RandomEngine master{seed};
  StudyResult out;
  out.rewards.reserve(replications);
  for (std::size_t r = 0; r < replications; ++r) {
    const auto reward = run_one(master.substream("rep", r));
    if (!reward) {
      ++out.dropped;
      continue;
    }
    out.rewards.push_back(*reward);
    out.summary.add(*reward);
  }
  out.ci = out.summary.mean_ci(confidence);
  return out;
}

}  // namespace sanperf::san
