// Transient simulation studies: replicated runs with confidence intervals.
//
// Mirrors UltraSAN's simulative transient solver: run the model R times
// with independent random streams, extract one reward per run, and report
// mean, confidence interval and the empirical distribution.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "san/simulator.hpp"
#include "stats/ecdf.hpp"
#include "stats/summary.hpp"

namespace sanperf::san {

struct StudyResult {
  std::vector<double> rewards;        ///< one value per replication
  stats::SummaryStats summary;
  stats::MeanCI ci;                   ///< at the requested confidence level
  std::uint64_t dropped = 0;          ///< replications that hit the time limit / deadlock

  [[nodiscard]] stats::Ecdf ecdf() const { return stats::Ecdf{rewards}; }
};

class TransientStudy {
 public:
  /// Reward extracted from a finished run (e.g. end time in ms).
  using Reward = std::function<double(const SanSimulator&, const RunResult&)>;

  /// The default reward: time to the stop predicate, in milliseconds.
  [[nodiscard]] static Reward time_to_stop_ms();

  TransientStudy(const SanModel& model, std::function<bool(const Marking&)> stop,
                 Reward reward = time_to_stop_ms());

  /// Keep or drop runs that end by deadlock/time limit rather than the stop
  /// predicate (default: drop and count them).
  void set_keep_incomplete(bool keep) { keep_incomplete_ = keep; }
  void set_time_limit(des::Duration limit) { time_limit_ = limit; }

  /// Runs `replications` independent replications derived from `seed`,
  /// sequentially. Replication r draws from substream ("rep", r) of the
  /// seed, the same streams core::run_study hands to its thread pool, so
  /// sequential and parallel campaigns agree bit for bit.
  [[nodiscard]] StudyResult run(std::size_t replications, std::uint64_t seed,
                                double confidence = 0.90) const;

  /// Runs one replication on its own simulator and returns its reward, or
  /// nullopt when the run ends without reaching the stop predicate and
  /// incompletes are dropped. Thread-safe provided the model is not mutated
  /// during the study: the constructor warms the model's caches
  /// (SanModel::prepare), after which concurrent calls only read shared
  /// state.
  [[nodiscard]] std::optional<double> run_one(des::RandomEngine rng) const;

 private:
  const SanModel* model_;
  std::function<bool(const Marking&)> stop_;
  Reward reward_;
  bool keep_incomplete_ = false;
  des::Duration time_limit_ = des::Duration::seconds(60);
};

}  // namespace sanperf::san
