#include "sanmodels/consensus_model.hpp"

#include <stdexcept>
#include <string>

#include "sanmodels/fd_submodel.hpp"

namespace sanperf::sanmodels {

namespace {

std::string idx(const std::string& base, std::size_t i) {
  return base + "[" + std::to_string(i) + "]";
}
std::string idx2(const std::string& base, std::size_t i, std::size_t r) {
  return base + "[" + std::to_string(i) + "][" + std::to_string(r) + "]";
}

/// Sums the marking over a place set (majority-counting gates).
std::function<bool(const san::Marking&)> count_at_least(std::vector<san::PlaceId> places,
                                                        std::int32_t threshold) {
  return [places = std::move(places), threshold](const san::Marking& m) {
    std::int32_t total = 0;
    for (const san::PlaceId p : places) total += m.get(p);
    return total >= threshold;
  };
}

std::function<void(san::Marking&)> zero_all(std::vector<san::PlaceId> places) {
  return [places = std::move(places)](san::Marking& m) {
    for (const san::PlaceId p : places) m.set(p, 0);
  };
}

}  // namespace

ConsensusSanModel build_consensus_san(const ConsensusSanConfig& cfg) {
  const std::size_t n = cfg.n;
  if (n < 2) throw std::invalid_argument{"build_consensus_san: n < 2"};
  if (cfg.initially_crashed >= static_cast<int>(n)) {
    throw std::invalid_argument{"build_consensus_san: crashed id out of range"};
  }
  const auto crashed = cfg.initially_crashed;
  const auto maj = static_cast<std::int32_t>(n / 2 + 1);

  ConsensusSanModel built;
  built.n = n;
  san::SanModel& m = built.model;

  const ChainResources res = make_resources(m, n);
  built.decided = m.place("decided", 0);

  // --- per-process state places -------------------------------------------
  std::vector<san::PlaceId> rnd(n), entering(n), pwprop(n), cwest(n), cwack(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool alive = static_cast<int>(i) != crashed;
    rnd[i] = m.place(idx("P", i) + ".rnd", 0);
    entering[i] = m.place(idx("P", i) + ".entering", alive ? 1 : 0);
    pwprop[i] = m.place(idx("P", i) + ".pwprop", 0);
    cwest[i] = m.place(idx("P", i) + ".cwest", 0);
    cwack[i] = m.place(idx("P", i) + ".cwack", 0);
  }

  // --- failure detectors ----------------------------------------------------
  // fd[i][j]: process i's module monitoring process j.
  std::vector<std::vector<FdPlaces>> fd_places(n, std::vector<FdPlaces>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::string name = idx2("fd", i, j);
      if (crashed >= 0) {
        // Class 2: complete and accurate -- only the crashed process is
        // suspected, from the very beginning.
        fd_places[i][j] = make_static_fd(m, name, static_cast<int>(j) == crashed);
      } else if (cfg.qos_fd) {
        fd_places[i][j] = make_qos_fd(m, name, *cfg.qos_fd);  // class 3
      } else {
        fd_places[i][j] = make_static_fd(m, name, false);  // class 1
      }
    }
  }

  // --- message places and transport chains ---------------------------------
  // est/ack/nack: unicast from participant i to the slot-r coordinator r.
  std::vector<std::vector<san::PlaceId>> est_trg(n, std::vector<san::PlaceId>(n));
  std::vector<std::vector<san::PlaceId>> est_out(n, std::vector<san::PlaceId>(n));
  std::vector<std::vector<san::PlaceId>> ack_trg(n, std::vector<san::PlaceId>(n));
  std::vector<std::vector<san::PlaceId>> ack_out(n, std::vector<san::PlaceId>(n));
  std::vector<std::vector<san::PlaceId>> nack_trg(n, std::vector<san::PlaceId>(n));
  std::vector<std::vector<san::PlaceId>> nack_out(n, std::vector<san::PlaceId>(n));
  std::vector<san::PlaceId> prop_trg(n);
  std::vector<std::vector<san::PlaceId>> prop_out(n, std::vector<san::PlaceId>(n));

  // Grab weights encode the implementation's program order at ties: a
  // process hands its phase-3 reply (ack/nack) to the network before the
  // next round's estimate. The proposal gets NO priority: on the real hub
  // it queues behind the estimates still trickling in beyond the majority,
  // which is precisely why a crashed participant (one estimate fewer)
  // lowers the simulated latency (Table 1).
  constexpr double kAckWeight = 64;
  constexpr double kNackWeight = 32;
  constexpr double kPropWeight = 1;
  constexpr double kEstWeight = 1;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i == r) continue;
      est_trg[i][r] = m.place(idx2("m.est", i, r) + ".trg");
      est_out[i][r] = m.place(idx2("m.est", i, r) + ".out");
      make_unicast_chain(m, idx2("m.est", i, r), res, i, r, est_trg[i][r], est_out[i][r],
                         cfg.transport, kEstWeight);
      ack_trg[i][r] = m.place(idx2("m.ack", i, r) + ".trg");
      ack_out[i][r] = m.place(idx2("m.ack", i, r) + ".out");
      make_unicast_chain(m, idx2("m.ack", i, r), res, i, r, ack_trg[i][r], ack_out[i][r],
                         cfg.transport, kAckWeight);
      nack_trg[i][r] = m.place(idx2("m.nack", i, r) + ".trg");
      nack_out[i][r] = m.place(idx2("m.nack", i, r) + ".out");
      make_unicast_chain(m, idx2("m.nack", i, r), res, i, r, nack_trg[i][r], nack_out[i][r],
                         cfg.transport, kNackWeight);
    }
    // Proposal broadcast: one message from r to every other process.
    prop_trg[r] = m.place(idx("m.prop", r) + ".trg");
    std::vector<std::pair<std::size_t, san::PlaceId>> dests;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == r) continue;
      prop_out[j][r] = m.place(idx("m.prop", r) + ".out[" + std::to_string(j) + "]");
      dests.emplace_back(j, prop_out[j][r]);
    }
    make_broadcast_chain(m, idx("m.prop", r), res, r, dests, prop_trg[r], cfg.transport,
                         kPropWeight);
  }

  // --- the per-process round state machine ----------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<int>(i) == crashed) continue;
    for (std::size_t r = 0; r < n; ++r) {
      const auto slot = static_cast<std::int32_t>(r);
      if (i == r) {
        // Round entry as coordinator: own estimate is implicit.
        const auto g_enter = m.input_gate(
            idx2("g.enter", i, r), {rnd[i]},
            [p = rnd[i], slot](const san::Marking& mk) { return mk.get(p) == slot; });
        m.instant_activity(idx2("a.enter", i, r)).in(entering[i]).in_gate(g_enter).out(cwest[i]);
        continue;  // the remaining coordinator activities are built below
      }

      // Shared round-advance output gate for every exit of (i, r).
      const auto g_adv = m.output_gate(
          idx2("g.adv", i, r), [pr = rnd[i], pe = entering[i], n, slot](san::Marking& mk) {
            mk.set(pr, (slot + 1) % static_cast<std::int32_t>(n));
            mk.add(pe, 1);
          });

      const FdPlaces& fdp = fd_places[i][r];
      std::vector<san::PlaceId> enter_reads = fdp.reads();
      enter_reads.push_back(rnd[i]);

      // Round entry as participant (P1A1): send the estimate (phase 1,
      // unconditional -- liveness depends on every round reaching a
      // majority of estimates) and wait for the proposal (phase 3). If the
      // coordinator is already suspected, a.pnack below fires immediately.
      const auto g_enter = m.input_gate(
          idx2("g.enter", i, r), {rnd[i]},
          [p = rnd[i], slot](const san::Marking& mk) { return mk.get(p) == slot; });
      m.instant_activity(idx2("a.enter", i, r))
          .in(entering[i])
          .in_gate(g_enter)
          .out(est_trg[i][r])
          .out(pwprop[i]);

      // Phase 3, positive branch (P1A2a): proposal received in round r.
      const auto g_ack =
          m.input_gate(idx2("g.ack", i, r), {rnd[i]},
                       [p = rnd[i], slot](const san::Marking& mk) { return mk.get(p) == slot; });
      m.instant_activity(idx2("a.pack", i, r))
          .in(pwprop[i])
          .in(prop_out[i][r])
          .in_gate(g_ack)
          .out(ack_trg[i][r])
          .out_gate(g_adv);

      // Phase 3, negative branch (P1A2b): suspicion arose while waiting.
      const auto g_nack = m.input_gate(
          idx2("g.nack", i, r), enter_reads,
          [p = rnd[i], slot, fdp](const san::Marking& mk) {
            return mk.get(p) == slot && fdp.suspected(mk);
          });
      m.instant_activity(idx2("a.pnack", i, r))
          .in(pwprop[i])
          .in_gate(g_nack)
          .out(nack_trg[i][r])
          .out_gate(g_adv);
    }
  }

  // --- coordinator activities (submodel P1C), one set per slot --------------
  for (std::size_t r = 0; r < n; ++r) {
    if (static_cast<int>(r) == crashed) continue;
    std::vector<san::PlaceId> ests, acks, nacks;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == r) continue;
      ests.push_back(est_out[i][r]);
      acks.push_back(ack_out[i][r]);
      nacks.push_back(nack_out[i][r]);
    }

    const auto g_adv = m.output_gate(
        idx("g.cadv", r), [pr = rnd[r], pe = entering[r], n, r](san::Marking& mk) {
          mk.set(pr, static_cast<std::int32_t>((r + 1) % n));
          mk.add(pe, 1);
        });
    std::vector<san::PlaceId> stale = acks;
    stale.insert(stale.end(), nacks.begin(), nacks.end());

    // Phase 2: a majority of estimates (the coordinator's own is implicit,
    // hence maj-1 from the network) -> propose and wait for replies. Nacks
    // are deliberately ignored in this phase (see the consensus layer's
    // liveness note): every round that starts also proposes.
    const auto g_est = m.input_gate(idx("g.est", r), ests, count_at_least(ests, maj - 1),
                                    zero_all(ests));
    m.instant_activity(idx("a.cpropose", r))
        .in(cwest[r])
        .in_gate(g_est)
        .out(prop_trg[r])
        .out(cwack[r]);

    // Phase 4, positive outcome: maj-1 network acks (plus the local one).
    const auto g_ack = m.input_gate(idx("g.cack", r), acks, count_at_least(acks, maj - 1));
    m.instant_activity(idx("a.cdecide", r)).in(cwack[r]).in_gate(g_ack).out(built.decided);

    // Phase 4, negative outcome: a single nack aborts the round.
    const auto g_nack =
        m.input_gate(idx("g.cnack", r), nacks, count_at_least(nacks, 1), zero_all(stale));
    m.instant_activity(idx("a.cabort", r)).in(cwack[r]).in_gate(g_nack).out_gate(g_adv);
  }

  m.validate();
  return built;
}

}  // namespace sanperf::sanmodels
