// The SAN model of the Chandra-Toueg <>S consensus algorithm (Section 3).
//
// One submodel per process (the rotating coordinator breaks symmetry, so
// processes cannot be a parametric replica -- Section 3.2), joined with the
// transport chains and failure-detector submodels over shared places.
//
// Paper-faithful simplifications (all deliberate, see DESIGN.md §6):
//   * the round number is kept modulo n: place P[i].rnd holds the current
//     round slot, and message places are indexed by slot, so messages of
//     rounds n or more apart alias (the paper argues this is improbable
//     within a single consensus instance);
//   * a broadcast is a single message occupying the medium once, with a
//     longer t_network than a unicast (Section 5.1) -- which is exactly why
//     the model misses the n=3 participant-crash anomaly;
//   * failure detectors are mutually independent two-state processes;
//   * heartbeat traffic does not appear on the medium.
//
// Place/activity naming (all 0-indexed; slot r's coordinator is process r):
//   P[i].rnd .entering .pwprop .cwest .cwack      process state machine
//   m.est[i][r].trg/.out, m.ack[...], m.nack[...] unicast message chains
//   m.prop[r].trg, m.prop[r].out[j]               proposal broadcast chain
//   fd[i][j].*                                    i's detector monitoring j
//   decided                                       stop place
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "fd/qos.hpp"
#include "san/model.hpp"
#include "sanmodels/network_chains.hpp"

namespace sanperf::sanmodels {

struct ConsensusSanConfig {
  std::size_t n = 3;
  TransportParams transport = TransportParams::nominal(3);
  /// Initially crashed process (class 2), or -1 for none. With a crash the
  /// failure detectors are static, complete and accurate.
  int initially_crashed = -1;
  /// Abstract FD parameters (class 3). Ignored when a crash is configured.
  std::optional<fd::AbstractFdParams> qos_fd;
};

struct ConsensusSanModel {
  san::SanModel model;
  san::PlaceId decided = 0;
  std::size_t n = 0;

  /// Stop predicate: the first process has decided (the latency metric's t1).
  [[nodiscard]] std::function<bool(const san::Marking&)> stop_predicate() const {
    const san::PlaceId d = decided;
    return [d](const san::Marking& m) { return m.get(d) > 0; };
  }
};

/// Builds and validates the full model. Throws on invalid configuration
/// (n < 2, crashed id out of range, degenerate QoS parameters).
[[nodiscard]] ConsensusSanModel build_consensus_san(const ConsensusSanConfig& cfg);

}  // namespace sanperf::sanmodels
