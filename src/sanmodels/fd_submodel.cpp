#include "sanmodels/fd_submodel.hpp"

#include <stdexcept>

namespace sanperf::sanmodels {

using san::Distribution;

FdPlaces make_static_fd(SanModel& model, const std::string& name, bool suspected) {
  FdPlaces p;
  p.trust0 = model.place(name + ".trust0", 0);
  p.susp0 = model.place(name + ".susp0", 0);
  p.trust = model.place(name + ".trust", suspected ? 0 : 1);
  p.susp = model.place(name + ".susp", suspected ? 1 : 0);
  p.dynamic = false;
  return p;
}

namespace {

Distribution full_sojourn(double mean_ms, AbstractFdParams::Sojourn kind) {
  if (kind == AbstractFdParams::Sojourn::kDeterministic) {
    return Distribution::deterministic_ms(mean_ms);
  }
  return Distribution::exponential_ms(mean_ms);
}

Distribution residual_sojourn(double mean_ms, AbstractFdParams::Sojourn kind) {
  if (kind == AbstractFdParams::Sojourn::kDeterministic) {
    // Stationary residual of a deterministic sojourn of length d: U[0, d].
    return Distribution::uniform_ms(0.0, mean_ms);
  }
  return Distribution::exponential_ms(mean_ms);  // memoryless
}

}  // namespace

FdPlaces make_qos_fd(SanModel& model, const std::string& name, const AbstractFdParams& params) {
  if (!(params.trust_mean_ms > 0)) {
    throw std::invalid_argument{"make_qos_fd: trust sojourn must be positive"};
  }
  if (params.suspect_mean_ms <= 0) {
    // A detector that never makes mistakes degenerates to a static one.
    return make_static_fd(model, name, false);
  }

  FdPlaces p;
  p.trust0 = model.place(name + ".trust0", 0);
  p.susp0 = model.place(name + ".susp0", 0);
  p.trust = model.place(name + ".trust", 0);
  p.susp = model.place(name + ".susp", 0);
  p.dynamic = true;

  const PlaceId seed = model.place(name + ".seed", 1);
  model.instant_activity(name + ".init")
      .in(seed)
      .case_prob(params.p_initial_suspect)
      .out(p.susp0)
      .case_prob(1.0 - params.p_initial_suspect)
      .out(p.trust0);

  // Residual first sojourns, then the steady alternation.
  model
      .timed_activity(name + ".ts0", residual_sojourn(params.trust_mean_ms, params.sojourn))
      .in(p.trust0)
      .out(p.susp);
  model
      .timed_activity(name + ".st0", residual_sojourn(params.suspect_mean_ms, params.sojourn))
      .in(p.susp0)
      .out(p.trust);
  model.timed_activity(name + ".ts", full_sojourn(params.trust_mean_ms, params.sojourn))
      .in(p.trust)
      .out(p.susp);
  model.timed_activity(name + ".st", full_sojourn(params.suspect_mean_ms, params.sojourn))
      .in(p.susp)
      .out(p.trust);
  return p;
}

}  // namespace sanperf::sanmodels
