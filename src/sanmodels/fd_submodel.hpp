// The abstract two-state failure-detector submodel of Section 3.4 (Fig 5).
//
// For each ordered pair (monitor i, monitored j) the detector alternates
// between Trust and Suspect. Sojourn means come from the measured QoS
// metrics (Trust: T_MR - T_M, Suspect: T_M) with either deterministic or
// exponential distributions. An instantaneous initial activity picks the
// starting state with the stationary probability T_M / T_MR, and the first
// sojourn in the deterministic case draws a uniform residual so replicated
// detectors do not flip in lockstep (stationary-correct initialisation).
//
// Every detector is independent of every other -- the simplification whose
// consequences Section 5.4 demonstrates.
#pragma once

#include <string>

#include "fd/qos.hpp"
#include "san/model.hpp"

namespace sanperf::sanmodels {

using fd::AbstractFdParams;
using san::PlaceId;
using san::SanModel;

/// Places representing one monitored pair. `suspected` is true when either
/// susp place is marked (susp0 covers the initial residual sojourn).
struct FdPlaces {
  PlaceId trust0 = 0;
  PlaceId susp0 = 0;
  PlaceId trust = 0;
  PlaceId susp = 0;
  bool dynamic = false;  ///< false: the pair's output is fixed forever

  /// Sensitivity list for gates that test the suspicion.
  [[nodiscard]] std::vector<PlaceId> reads() const { return {susp0, susp}; }
  [[nodiscard]] bool suspected(const san::Marking& m) const {
    return m.get(susp0) + m.get(susp) > 0;
  }
};

/// A detector that never changes its mind: suspected fixed at `suspected`.
/// Used for run classes 1 and 2.
[[nodiscard]] FdPlaces make_static_fd(SanModel& model, const std::string& name, bool suspected);

/// The two-state QoS-parameterised detector (run class 3).
[[nodiscard]] FdPlaces make_qos_fd(SanModel& model, const std::string& name,
                                   const AbstractFdParams& params);

}  // namespace sanperf::sanmodels
