#include "sanmodels/mr_model.hpp"

#include <stdexcept>
#include <string>

#include "sanmodels/fd_submodel.hpp"

namespace sanperf::sanmodels {

namespace {

std::string idx(const std::string& base, std::size_t i) {
  return base + "[" + std::to_string(i) + "]";
}
std::string idx2(const std::string& base, std::size_t i, std::size_t r) {
  return base + "[" + std::to_string(i) + "][" + std::to_string(r) + "]";
}

}  // namespace

MrSanModel build_mr_san(const MrSanConfig& cfg) {
  const std::size_t n = cfg.n;
  if (n < 2) throw std::invalid_argument{"build_mr_san: n < 2"};
  if (cfg.initially_crashed >= static_cast<int>(n)) {
    throw std::invalid_argument{"build_mr_san: crashed id out of range"};
  }
  const auto crashed = cfg.initially_crashed;
  const auto maj = static_cast<std::int32_t>(n / 2 + 1);

  MrSanModel built;
  built.n = n;
  san::SanModel& m = built.model;

  const ChainResources res = make_resources(m, n);
  built.decided = m.place("decided", 0);

  // Process state.
  std::vector<san::PlaceId> rnd(n), entering(n), wcoord(n), waux(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool alive = static_cast<int>(i) != crashed;
    rnd[i] = m.place(idx("P", i) + ".rnd", 0);
    entering[i] = m.place(idx("P", i) + ".entering", alive ? 1 : 0);
    wcoord[i] = m.place(idx("P", i) + ".wcoord", 0);
    waux[i] = m.place(idx("P", i) + ".waux", 0);
  }

  // Failure detectors (same submodels as the CT model).
  std::vector<std::vector<FdPlaces>> fd_places(n, std::vector<FdPlaces>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::string name = idx2("fd", i, j);
      if (crashed >= 0) {
        fd_places[i][j] = make_static_fd(m, name, static_cast<int>(j) == crashed);
      } else if (cfg.qos_fd) {
        fd_places[i][j] = make_qos_fd(m, name, *cfg.qos_fd);
      } else {
        fd_places[i][j] = make_static_fd(m, name, false);
      }
    }
  }

  // Message places. AUX counters are shared accumulators per (receiver,
  // slot): every sender's broadcast chain deposits into them, which is what
  // makes the all-to-all phase affordable to model.
  std::vector<std::vector<san::PlaceId>> ce_out(n, std::vector<san::PlaceId>(n));  // [rcv][slot]
  std::vector<std::vector<san::PlaceId>> av_cnt(n, std::vector<san::PlaceId>(n));
  std::vector<std::vector<san::PlaceId>> ab_cnt(n, std::vector<san::PlaceId>(n));
  std::vector<san::PlaceId> ce_trg(n);
  std::vector<std::vector<san::PlaceId>> av_trg(n, std::vector<san::PlaceId>(n));  // [snd][slot]
  std::vector<std::vector<san::PlaceId>> ab_trg(n, std::vector<san::PlaceId>(n));

  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j != r) ce_out[j][r] = m.place(idx("m.ce", r) + ".out[" + std::to_string(j) + "]");
      av_cnt[j][r] = m.place(idx2("m.av", j, r) + ".cnt");
      ab_cnt[j][r] = m.place(idx2("m.ab", j, r) + ".cnt");
    }
  }
  constexpr double kAuxWeight = 8;  // replies precede the next round's traffic
  for (std::size_t r = 0; r < n; ++r) {
    // Coordinator estimate broadcast: single-message abstraction, as in the
    // CT model (one coordinator broadcast per round is the pattern that
    // abstraction was validated on).
    ce_trg[r] = m.place(idx("m.ce", r) + ".trg");
    std::vector<std::pair<std::size_t, san::PlaceId>> dests;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != r) dests.emplace_back(j, ce_out[j][r]);
    }
    make_broadcast_chain(m, idx("m.ce", r), res, r, dests, ce_trg[r], cfg.transport);

    // AUX phase: explicit per-destination unicasts. Folding an all-to-all
    // phase into single broadcast messages would forbid the pipelining that
    // dominates it on the real network and overestimate MR's latency by
    // ~60% -- the broadcast abstraction is only adequate for one-broadcast-
    // per-round traffic, a model-adequacy finding in the paper's spirit.
    for (std::size_t i = 0; i < n; ++i) {
      av_trg[i][r] = m.place(idx2("m.av", i, r) + ".trg");
      ab_trg[i][r] = m.place(idx2("m.ab", i, r) + ".trg");
      auto split_av = m.instant_activity(idx2("a.avsplit", i, r)).in(av_trg[i][r]);
      auto split_ab = m.instant_activity(idx2("a.absplit", i, r)).in(ab_trg[i][r]);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const auto av_leg = m.place(idx2("m.av", i, r) + ".leg[" + std::to_string(j) + "]");
        const auto ab_leg = m.place(idx2("m.ab", i, r) + ".leg[" + std::to_string(j) + "]");
        split_av.out(av_leg);
        split_ab.out(ab_leg);
        make_unicast_chain(m, idx2("m.av", i, r) + ".u" + std::to_string(j), res, i, j, av_leg,
                           av_cnt[j][r], cfg.transport, kAuxWeight);
        make_unicast_chain(m, idx2("m.ab", i, r) + ".u" + std::to_string(j), res, i, j, ab_leg,
                           ab_cnt[j][r], cfg.transport, kAuxWeight);
      }
    }
  }

  // Protocol state machine.
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<int>(i) == crashed) continue;
    for (std::size_t r = 0; r < n; ++r) {
      const auto slot = static_cast<std::int32_t>(r);
      const auto g_round =
          m.input_gate(idx2("g.rnd", i, r), {rnd[i]},
                       [p = rnd[i], slot](const san::Marking& mk) { return mk.get(p) == slot; });

      // Round entry.
      auto enter = m.instant_activity(idx2("a.enter", i, r));
      enter.in(entering[i]).in_gate(g_round);
      if (i == r) {
        // Coordinator: broadcast the estimate and echo it as our own AUX.
        enter.out(ce_trg[r]).out(av_trg[i][r]).out(av_cnt[i][r]).out(waux[i]);
      } else {
        enter.out(wcoord[i]);
      }

      if (i != r) {
        // Phase 2, value branch: coordinator estimate received.
        m.instant_activity(idx2("a.auxv", i, r))
            .in(wcoord[i])
            .in(ce_out[i][r])
            .in_gate(g_round)
            .out(av_trg[i][r])
            .out(av_cnt[i][r])
            .out(waux[i]);
        // Phase 2, bottom branch: coordinator suspected.
        const FdPlaces& fdp = fd_places[i][r];
        std::vector<san::PlaceId> reads = fdp.reads();
        reads.push_back(rnd[i]);
        const auto g_susp = m.input_gate(
            idx2("g.susp", i, r), std::move(reads),
            [p = rnd[i], slot, fdp](const san::Marking& mk) {
              return mk.get(p) == slot && fdp.suspected(mk);
            });
        m.instant_activity(idx2("a.auxb", i, r))
            .in(wcoord[i])
            .in_gate(g_susp)
            .out(ab_trg[i][r])
            .out(ab_cnt[i][r])
            .out(waux[i]);
      }

      // Phase 3 on a majority of AUX (own included in the counters).
      const auto g_decide = m.input_gate(
          idx2("g.dec", i, r), {rnd[i], av_cnt[i][r], ab_cnt[i][r]},
          [p = rnd[i], slot, av = av_cnt[i][r], ab = ab_cnt[i][r], maj](const san::Marking& mk) {
            return mk.get(p) == slot && mk.get(ab) == 0 && mk.get(av) >= maj;
          });
      m.instant_activity(idx2("a.decide", i, r)).in(waux[i]).in_gate(g_decide).out(built.decided);

      const auto g_next = m.input_gate(
          idx2("g.next", i, r), {rnd[i], av_cnt[i][r], ab_cnt[i][r]},
          [p = rnd[i], slot, av = av_cnt[i][r], ab = ab_cnt[i][r], maj](const san::Marking& mk) {
            return mk.get(p) == slot && mk.get(ab) >= 1 && mk.get(av) + mk.get(ab) >= maj;
          },
          // Slot-reuse cleanup: drain this slot's counters on leaving.
          [av = av_cnt[i][r], ab = ab_cnt[i][r]](san::Marking& mk) {
            mk.set(av, 0);
            mk.set(ab, 0);
          });
      const auto g_adv = m.output_gate(
          idx2("g.adv", i, r), [pr = rnd[i], pe = entering[i], n, slot](san::Marking& mk) {
            mk.set(pr, (slot + 1) % static_cast<std::int32_t>(n));
            mk.add(pe, 1);
          });
      m.instant_activity(idx2("a.next", i, r)).in(waux[i]).in_gate(g_next).out_gate(g_adv);
    }
  }

  m.validate();
  return built;
}

}  // namespace sanperf::sanmodels
