// SAN model of the Mostefaoui-Raynal <>S consensus algorithm, built with
// the same abstractions as the paper's Chandra-Toueg model (round numbers
// modulo n, broadcasts as single messages, independent two-state failure
// detectors, shared CPU/medium resources) so the two algorithms can be
// compared inside one modelling framework -- the programme the paper's
// Section 6 sketches.
//
// Per round slot r (coordinator = process r):
//   * the coordinator broadcasts its estimate (one broadcast chain);
//   * every process echoes AUX = value or bottom (one broadcast chain per
//     (process, slot, flavour)); a process's own AUX is counted locally;
//   * on a majority of AUX for the slot: all-value -> decided; any bottom
//     -> next round.
// Data content is ignored (control aspect only), exactly like the CT model:
// "value" vs "bottom" is control state, the value itself is not modelled.
#pragma once

#include <functional>
#include <optional>

#include "fd/qos.hpp"
#include "san/model.hpp"
#include "sanmodels/network_chains.hpp"

namespace sanperf::sanmodels {

struct MrSanConfig {
  std::size_t n = 3;
  TransportParams transport = TransportParams::nominal(3);
  int initially_crashed = -1;             ///< class 2; -1 for none
  std::optional<fd::AbstractFdParams> qos_fd;  ///< class 3
};

struct MrSanModel {
  san::SanModel model;
  san::PlaceId decided = 0;
  std::size_t n = 0;

  [[nodiscard]] std::function<bool(const san::Marking&)> stop_predicate() const {
    const san::PlaceId d = decided;
    return [d](const san::Marking& m) { return m.get(d) > 0; };
  }
};

[[nodiscard]] MrSanModel build_mr_san(const MrSanConfig& cfg);

}  // namespace sanperf::sanmodels
