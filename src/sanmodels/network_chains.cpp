#include "sanmodels/network_chains.hpp"

#include <stdexcept>

namespace sanperf::sanmodels {

ChainResources make_resources(SanModel& model, std::size_t n) {
  ChainResources res;
  res.cpu.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    res.cpu.push_back(model.place("cpu[" + std::to_string(i) + "]", 1));
  }
  res.medium = model.place("medium", 1);
  return res;
}

TransportParams TransportParams::nominal(std::size_t n) {
  TransportParams p;
  if (n < 2) throw std::invalid_argument{"TransportParams::nominal: n < 2"};
  // A broadcast stands for n-1 back-to-back frames on the hub; pipelining
  // with the per-destination receive legs makes the effective occupancy a
  // little less than (n-1) full frames.
  const double k = 0.8 * static_cast<double>(n - 1);
  p.frame_broadcast = Distribution::bimodal_uniform_ms(0.8, 0.050 * k, 0.080 * k, 0.095 * k,
                                                       0.300 * k);
  return p;
}

void make_unicast_chain(SanModel& model, const std::string& name, const ChainResources& res,
                        std::size_t src, std::size_t dst, PlaceId trigger, PlaceId out,
                        const TransportParams& params, double grab_weight) {
  if (src >= res.cpu.size() || dst >= res.cpu.size() || src == dst) {
    throw std::invalid_argument{"make_unicast_chain: bad endpoints for " + name};
  }
  const PlaceId sbusy = model.place(name + ".sbusy");
  const PlaceId nq = model.place(name + ".nq");
  const PlaceId nbusy = model.place(name + ".nbusy");
  const PlaceId rq = model.place(name + ".rq");
  const PlaceId rbusy = model.place(name + ".rbusy");

  model.instant_activity(name + ".sgrab", grab_weight).in(trigger).in(res.cpu[src]).out(sbusy);
  model.timed_activity(name + ".ssrv", params.send_cpu).in(sbusy).out(nq).out(res.cpu[src]);
  model.instant_activity(name + ".ngrab", grab_weight).in(nq).in(res.medium).out(nbusy);
  model.timed_activity(name + ".nsrv", params.frame_unicast).in(nbusy).out(rq).out(res.medium);
  model.instant_activity(name + ".rgrab", grab_weight).in(rq).in(res.cpu[dst]).out(rbusy);
  model.timed_activity(name + ".rsrv", params.recv_cpu).in(rbusy).out(out).out(res.cpu[dst]);
}

void make_broadcast_chain(SanModel& model, const std::string& name, const ChainResources& res,
                          std::size_t src,
                          const std::vector<std::pair<std::size_t, PlaceId>>& destinations,
                          PlaceId trigger, const TransportParams& params, double grab_weight) {
  if (src >= res.cpu.size()) throw std::invalid_argument{"make_broadcast_chain: bad src"};
  if (destinations.empty()) throw std::invalid_argument{"make_broadcast_chain: no destinations"};

  const PlaceId sbusy = model.place(name + ".sbusy");
  const PlaceId nq = model.place(name + ".nq");
  const PlaceId nbusy = model.place(name + ".nbusy");

  model.instant_activity(name + ".sgrab", grab_weight).in(trigger).in(res.cpu[src]).out(sbusy);
  model.timed_activity(name + ".ssrv", params.send_cpu).in(sbusy).out(nq).out(res.cpu[src]);
  model.instant_activity(name + ".ngrab", grab_weight).in(nq).in(res.medium).out(nbusy);

  // The single broadcast frame releases the medium and fans out one token
  // per destination receive queue.
  auto nsrv = model.timed_activity(name + ".nsrv", params.frame_broadcast);
  nsrv.in(nbusy).out(res.medium);
  std::vector<PlaceId> rqs;
  rqs.reserve(destinations.size());
  for (const auto& [dst, out_place] : destinations) {
    (void)out_place;
    if (dst >= res.cpu.size() || dst == src) {
      throw std::invalid_argument{"make_broadcast_chain: bad dst in " + name};
    }
    rqs.push_back(model.place(name + ".rq[" + std::to_string(dst) + "]"));
    nsrv.out(rqs.back());
  }

  for (std::size_t k = 0; k < destinations.size(); ++k) {
    const auto [dst, out_place] = destinations[k];
    const std::string leg = name + ".r[" + std::to_string(dst) + "]";
    const PlaceId rbusy = model.place(leg + ".busy");
    model.instant_activity(leg + ".grab", grab_weight).in(rqs[k]).in(res.cpu[dst]).out(rbusy);
    model.timed_activity(leg + ".srv", params.recv_cpu).in(rbusy).out(out_place).out(
        res.cpu[dst]);
  }
}

}  // namespace sanperf::sanmodels
