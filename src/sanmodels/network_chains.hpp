// SAN submodels for message transport over contended resources (Fig 3).
//
// Resources are places holding one token: cpu[i] per host plus one shared
// medium. A message is a token that walks a chain of grab/serve activity
// pairs: an instantaneous grab seizes the resource (so it is genuinely held
// for the service time) and a timed serve releases it. Competition for a
// resource is resolved by the race between grab activities -- random order
// rather than FIFO, a deliberate simplification recorded in DESIGN.md.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "san/model.hpp"

namespace sanperf::sanmodels {

using san::Distribution;
using san::PlaceId;
using san::SanModel;

/// Resource places shared by every chain.
struct ChainResources {
  std::vector<PlaceId> cpu;  ///< one token each
  PlaceId medium = 0;        ///< one token
};

/// Creates cpu[0..n) and the medium with one token each.
[[nodiscard]] ChainResources make_resources(SanModel& model, std::size_t n);

/// Timing parameters of the transport model (Section 3.3 / 5.1).
struct TransportParams {
  Distribution send_cpu = Distribution::deterministic_ms(0.025);    ///< t_send
  Distribution recv_cpu = Distribution::deterministic_ms(0.025);    ///< t_receive
  Distribution frame_unicast =
      Distribution::bimodal_uniform_ms(0.8, 0.050, 0.080, 0.095, 0.300);  ///< t_network
  /// t_network of a broadcast modelled as ONE message (Section 5.1): a
  /// single medium occupancy longer than a unicast's.
  Distribution frame_broadcast =
      Distribution::bimodal_uniform_ms(0.8, 0.100, 0.160, 0.190, 0.600);

  /// Paper-nominal parameters for n processes: the broadcast medium time
  /// scales with the number of destinations (it stands for n-1 frames).
  [[nodiscard]] static TransportParams nominal(std::size_t n);
};

/// Builds a unicast chain `name`: a token put into `trigger` traverses
/// src's CPU, the medium and dst's CPU, then appears in `out`.
///
/// `grab_weight` biases the instantaneous resource-grab races. SAN races
/// resolve randomly rather than FIFO; weights encode the program order of
/// the implementation (e.g. a process writes its ack to the network before
/// the next round's estimate, so ack chains should usually win ties).
void make_unicast_chain(SanModel& model, const std::string& name, const ChainResources& res,
                        std::size_t src, std::size_t dst, PlaceId trigger, PlaceId out,
                        const TransportParams& params, double grab_weight = 1.0);

/// Builds a broadcast chain `name`: one token in `trigger` occupies src's
/// CPU once and the medium once (frame_broadcast), then fans out into one
/// receive leg (dst CPU) per destination, ending in the paired place.
void make_broadcast_chain(SanModel& model, const std::string& name, const ChainResources& res,
                          std::size_t src,
                          const std::vector<std::pair<std::size_t, PlaceId>>& destinations,
                          PlaceId trigger, const TransportParams& params,
                          double grab_weight = 1.0);

}  // namespace sanperf::sanmodels
