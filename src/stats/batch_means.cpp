#include "stats/batch_means.hpp"

#include <stdexcept>

namespace sanperf::stats {

BatchMeans::BatchMeans(std::size_t batch_size) : batch_size_{batch_size} {
  if (batch_size == 0) throw std::invalid_argument{"BatchMeans: zero batch size"};
}

void BatchMeans::add(double x) {
  ++observations_;
  current_sum_ += x;
  if (++current_count_ == batch_size_) {
    batch_means_.push_back(current_sum_ / static_cast<double>(batch_size_));
    current_sum_ = 0;
    current_count_ = 0;
  }
}

double BatchMeans::mean() const {
  SummaryStats s;
  for (const double m : batch_means_) s.add(m);
  return s.count() > 0 ? s.mean() : 0.0;
}

MeanCI BatchMeans::mean_ci(double confidence) const {
  SummaryStats s;
  for (const double m : batch_means_) s.add(m);
  return s.mean_ci(confidence);
}

}  // namespace sanperf::stats
