// Batch-means analysis for autocorrelated series (steady-state simulation
// output, e.g. throughput runs where consecutive executions share state).
// Observations are grouped into fixed-size batches; batch means are treated
// as approximately independent for the confidence interval.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/summary.hpp"

namespace sanperf::stats {

class BatchMeans {
 public:
  /// `batch_size` observations per batch; >= 1.
  explicit BatchMeans(std::size_t batch_size);

  void add(double x);

  [[nodiscard]] std::size_t batch_size() const { return batch_size_; }
  /// Completed batches only.
  [[nodiscard]] std::size_t batches() const { return batch_means_.size(); }
  [[nodiscard]] std::uint64_t observations() const { return observations_; }
  [[nodiscard]] const std::vector<double>& batch_means() const { return batch_means_; }

  /// Grand mean over completed batches (0 when none completed).
  [[nodiscard]] double mean() const;
  /// Student-t CI over the batch means; requires >= 2 completed batches for
  /// a non-zero half-width.
  [[nodiscard]] MeanCI mean_ci(double confidence = 0.90) const;

 private:
  std::size_t batch_size_;
  std::uint64_t observations_ = 0;
  double current_sum_ = 0;
  std::size_t current_count_ = 0;
  std::vector<double> batch_means_;
};

}  // namespace sanperf::stats
