#include "stats/bimodal_fit.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace sanperf::stats {

double BimodalUniform::mean() const {
  return p1 * (a1 + b1) / 2.0 + (1.0 - p1) * (a2 + b2) / 2.0;
}

namespace {

double uniform_cdf(double x, double a, double b) {
  if (x < a) return 0;
  if (x >= b) return 1;
  if (b == a) return 1;
  return (x - a) / (b - a);
}

/// Sum of squared residuals of fitting U[xs[i], xs[j]] to the sorted
/// segment xs[i..j] (inclusive), comparing empirical order statistics to
/// the linear quantile function of the uniform.
double segment_sse(const std::vector<double>& xs, std::size_t i, std::size_t j) {
  const double a = xs[i];
  const double b = xs[j];
  if (j == i) return 0;
  double sse = 0;
  const double span = b - a;
  const double len = static_cast<double>(j - i);
  for (std::size_t k = i; k <= j; ++k) {
    const double pred = a + span * static_cast<double>(k - i) / len;
    const double r = xs[k] - pred;
    sse += r * r;
  }
  return sse;
}

}  // namespace

double BimodalUniform::cdf(double x) const {
  return p1 * uniform_cdf(x, a1, b1) + (1.0 - p1) * uniform_cdf(x, a2, b2);
}

std::string BimodalUniform::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "U[%.3f,%.3f]@%.2f + U[%.3f,%.3f]@%.2f", a1, b1, p1, a2, b2,
                1.0 - p1);
  return buf;
}

BimodalUniform fit_bimodal_uniform(std::vector<double> samples, double min_side_fraction) {
  if (samples.size() < 8) throw std::invalid_argument{"fit_bimodal_uniform: need >= 8 samples"};
  if (!(min_side_fraction > 0 && min_side_fraction < 0.5)) {
    throw std::invalid_argument{"fit_bimodal_uniform: min_side_fraction outside (0,0.5)"};
  }
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  const auto lo_split = static_cast<std::size_t>(static_cast<double>(n) * min_side_fraction);
  const std::size_t min_split = std::max<std::size_t>(lo_split, 2);
  const std::size_t max_split = n - 1 - min_split;

  // Candidate splits: evenly strided ranks PLUS the ranks adjacent to the
  // largest value gaps. The SSE landscape has a needle-sharp minimum at the
  // boundary between well-separated components (one rank off and the right
  // component's support stretches across the gap), so gap ranks must be
  // candidates explicitly; strided ranks cover gapless samples.
  std::vector<std::size_t> candidates;
  const std::size_t stride = std::max<std::size_t>(1, (max_split - min_split) / 192);
  for (std::size_t s = min_split; s <= max_split; s += stride) candidates.push_back(s);

  std::vector<std::pair<double, std::size_t>> gaps;  // (gap width, rank)
  gaps.reserve(max_split - min_split + 1);
  for (std::size_t s = min_split; s <= max_split; ++s) {
    gaps.emplace_back(samples[s + 1] - samples[s], s);
  }
  const std::size_t top = std::min<std::size_t>(64, gaps.size());
  std::partial_sort(gaps.begin(), gaps.begin() + static_cast<std::ptrdiff_t>(top), gaps.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; k < top; ++k) candidates.push_back(gaps[k].second);

  double best_sse = std::numeric_limits<double>::infinity();
  std::size_t best_split = min_split;
  for (const std::size_t s : candidates) {
    // Left component covers ranks [0, s], right covers [s+1, n-1].
    const double sse = segment_sse(samples, 0, s) + segment_sse(samples, s + 1, n - 1);
    if (sse < best_sse) {
      best_sse = sse;
      best_split = s;
    }
  }

  BimodalUniform fit;
  fit.p1 = static_cast<double>(best_split + 1) / static_cast<double>(n);
  fit.a1 = samples.front();
  fit.b1 = samples[best_split];
  fit.a2 = samples[best_split + 1];
  fit.b2 = samples.back();
  return fit;
}

}  // namespace sanperf::stats
