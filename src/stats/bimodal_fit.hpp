// Bimodal mixture-of-uniforms fitting.
//
// The paper (Section 5.1) approximates measured end-to-end delay
// distributions "by using uniform distributions in a bi-modal fashion",
// e.g. unicast = U[0.10, 0.13] w.p. 0.8 and U[0.145, 0.35] w.p. 0.2.
// This module makes the fit reproducible: it selects the split point that
// minimises the L2 error between the empirical quantile function and a
// two-piece piecewise-linear (i.e. two-uniform-mixture) quantile function.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sanperf::stats {

/// Mixture of two uniform components: U[a1,b1] w.p. p1, U[a2,b2] w.p. 1-p1.
struct BimodalUniform {
  double p1 = 1.0;
  double a1 = 0.0, b1 = 0.0;
  double a2 = 0.0, b2 = 0.0;

  [[nodiscard]] double mean() const;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] std::string to_string() const;  ///< e.g. "U[0.100,0.130]@0.80 + U[0.145,0.350]@0.20"
};

/// Fits a two-uniform mixture to a sample by exhaustive split search.
/// `min_side_fraction` keeps both components from degenerating.
/// Requires at least 8 samples.
[[nodiscard]] BimodalUniform fit_bimodal_uniform(std::vector<double> samples,
                                                 double min_side_fraction = 0.05);

}  // namespace sanperf::stats
