#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace sanperf::stats {

Ecdf::Ecdf(std::vector<double> samples) : sorted_{std::move(samples)} {
  if (sorted_.empty()) throw std::invalid_argument{"Ecdf: empty sample"};
  std::sort(sorted_.begin(), sorted_.end());
}

void Ecdf::merge(const Ecdf& other) {
  if (other.sorted_.empty()) return;
  const std::size_t mid = sorted_.size();
  sorted_.insert(sorted_.end(), other.sorted_.begin(), other.sorted_.end());
  std::inplace_merge(sorted_.begin(), sorted_.begin() + static_cast<std::ptrdiff_t>(mid),
                     sorted_.end());
}

double Ecdf::eval(double x) const {
  if (sorted_.empty()) throw std::logic_error{"Ecdf::eval on empty ECDF"};
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double p) const {
  if (sorted_.empty()) throw std::logic_error{"Ecdf::quantile on empty ECDF"};
  if (!(p >= 0.0 && p <= 1.0)) throw std::invalid_argument{"Ecdf::quantile: p outside [0,1]"};
  if (p == 0.0) return sorted_.front();
  const auto n = static_cast<double>(sorted_.size());
  const auto idx = static_cast<std::size_t>(std::ceil(p * n)) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  if (sorted_.empty()) throw std::logic_error{"Ecdf::curve on empty ECDF"};
  if (points < 2) throw std::invalid_argument{"Ecdf::curve: need at least 2 points"};
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double lo = min();
  const double hi = max();
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, eval(x));
  }
  return out;
}

}  // namespace sanperf::stats
