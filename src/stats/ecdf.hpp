// Empirical cumulative distribution function over a sample.
#pragma once

#include <cstddef>
#include <vector>

namespace sanperf::stats {

class Ecdf {
 public:
  Ecdf() = default;
  /// Builds the ECDF; the sample may be in any order. Requires non-empty.
  explicit Ecdf(std::vector<double> samples);

  /// Pools another ECDF's sample into this one (for combining replication
  /// shards). Equivalent to rebuilding from the concatenated samples.
  void merge(const Ecdf& other);

  /// F(x) = fraction of samples <= x.
  [[nodiscard]] double eval(double x) const;

  /// Smallest sample value q with F(q) >= p. Requires 0 <= p <= 1.
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] double min() const { return sorted_.front(); }
  [[nodiscard]] double max() const { return sorted_.back(); }
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] bool empty() const { return sorted_.empty(); }

  /// The sorted sample (the ECDF's jump points).
  [[nodiscard]] const std::vector<double>& sorted_samples() const { return sorted_; }

  /// Samples the curve at `points` evenly spaced x positions spanning
  /// [min, max]; useful for printing figures. Each entry is {x, F(x)}.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace sanperf::stats
