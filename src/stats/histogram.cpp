#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sanperf::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_{lo}, hi_{hi} {
  if (!(lo < hi)) throw std::invalid_argument{"Histogram: lo >= hi"};
  if (bins == 0) throw std::invalid_argument{"Histogram: zero bins"};
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ || counts_.size() != other.counts_.size()) {
    throw std::invalid_argument{"Histogram::merge: incompatible binning"};
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bin_center(std::size_t bin) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * w;
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  std::string out;
  const std::uint64_t peak = counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len = peak == 0 ? 0u
                                   : static_cast<unsigned>(std::llround(
                                         static_cast<double>(counts_[i]) * static_cast<double>(width) /
                                         static_cast<double>(peak)));
    std::snprintf(line, sizeof line, "%10.4f | %-6llu ", bin_center(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  return out;
}

}  // namespace sanperf::stats
