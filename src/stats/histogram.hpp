// Fixed-width histogram over a closed range, with out-of-range tracking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sanperf::stats {

class Histogram {
 public:
  /// Bins [lo, hi) into `bins` equal cells. Requires lo < hi, bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  /// Adds another histogram's counts into this one. Both must have the same
  /// range and bin count (throws std::invalid_argument otherwise).
  void merge(const Histogram& other);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Midpoint x of a bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  /// Fraction of all observations (including out-of-range) in a bin.
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Multi-line ASCII rendering (for examples and reports).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace sanperf::stats
