#include "stats/ks.hpp"

#include <algorithm>
#include <cmath>

namespace sanperf::stats {

double ks_distance(const Ecdf& a, const Ecdf& b) {
  // Evaluate both step functions at every jump point of either sample.
  double d = 0;
  for (const double x : a.sorted_samples()) d = std::max(d, std::fabs(a.eval(x) - b.eval(x)));
  for (const double x : b.sorted_samples()) d = std::max(d, std::fabs(a.eval(x) - b.eval(x)));
  return d;
}

double ks_distance(const Ecdf& a, const std::function<double(double)>& cdf) {
  // For the one-sample statistic both the pre- and post-jump gaps matter.
  double d = 0;
  const auto& xs = a.sorted_samples();
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double f = cdf(xs[i]);
    const double pre = static_cast<double>(i) / n;
    const double post = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(f - pre), std::fabs(f - post)});
  }
  return d;
}

}  // namespace sanperf::stats
