// Kolmogorov-Smirnov distances, used for distribution-fit selection
// (the paper's Fig 7b picks t_send by visually matching CDFs; we make the
// choice quantitative with the two-sample KS statistic).
#pragma once

#include <functional>
#include <vector>

#include "stats/ecdf.hpp"

namespace sanperf::stats {

/// Two-sample KS statistic: sup_x |F_a(x) - F_b(x)|.
[[nodiscard]] double ks_distance(const Ecdf& a, const Ecdf& b);

/// One-sample KS statistic against a reference CDF.
[[nodiscard]] double ks_distance(const Ecdf& a, const std::function<double(double)>& cdf);

}  // namespace sanperf::stats
