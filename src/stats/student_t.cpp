#include "stats/student_t.hpp"

#include <cmath>
#include <stdexcept>

namespace sanperf::stats {

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) throw std::invalid_argument{"normal_quantile: p outside (0,1)"};

  // Acklam's rational approximation, relative error < 1.15e-9.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  constexpr double phigh = 1 - plow;

  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

double student_t_quantile(double p, double dof) {
  if (!(p > 0.0 && p < 1.0)) throw std::invalid_argument{"student_t_quantile: p outside (0,1)"};
  if (!(dof >= 1.0)) throw std::invalid_argument{"student_t_quantile: dof < 1"};

  if (dof > 300) return normal_quantile(p);  // t ~= normal at high dof

  // Exact closed forms for the smallest dofs, where Hill's expansion is weak.
  if (dof == 1.0) return std::tan(M_PI * (p - 0.5));
  if (dof == 2.0) {
    const double a = 4 * p * (1 - p);
    return (2 * p - 1) * std::sqrt(2.0 / a);
  }

  // Hill (1970), Algorithm 396. Expansion in powers of 1/dof around normal.
  const double x = normal_quantile(p);
  const double g1 = (x * x * x + x) / 4.0;
  const double g2 = (5 * std::pow(x, 5) + 16 * x * x * x + 3 * x) / 96.0;
  const double g3 = (3 * std::pow(x, 7) + 19 * std::pow(x, 5) + 17 * x * x * x - 15 * x) / 384.0;
  const double g4 =
      (79 * std::pow(x, 9) + 776 * std::pow(x, 7) + 1482 * std::pow(x, 5) - 1920 * x * x * x -
       945 * x) /
      92160.0;
  const double n = dof;
  return x + g1 / n + g2 / (n * n) + g3 / (n * n * n) + g4 / (n * n * n * n);
}

double student_t_critical(double confidence, double dof) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument{"student_t_critical: confidence outside (0,1)"};
  }
  return student_t_quantile(0.5 + confidence / 2.0, dof);
}

}  // namespace sanperf::stats
