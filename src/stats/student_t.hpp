// Quantiles of the Student-t and standard normal distributions.
//
// Implemented locally (no external math library is available offline):
// normal quantile by the Acklam rational approximation, Student-t quantile
// by the Hill (1970) expansion with a normal fallback for large dof.
// Accuracy is a few 1e-4 in the central range, which is ample for
// confidence-interval construction.
#pragma once

namespace sanperf::stats {

/// Inverse CDF of N(0,1). Requires 0 < p < 1.
[[nodiscard]] double normal_quantile(double p);

/// Inverse CDF of Student-t with `dof` degrees of freedom. Requires
/// 0 < p < 1 and dof >= 1.
[[nodiscard]] double student_t_quantile(double p, double dof);

/// Two-sided critical value t* such that P(|T| <= t*) = confidence.
[[nodiscard]] double student_t_critical(double confidence, double dof);

}  // namespace sanperf::stats
