#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "stats/student_t.hpp"

namespace sanperf::stats {

void SummaryStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void SummaryStats::merge(const SummaryStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SummaryStats::variance() const {
  if (n_ < 2) return 0;
  return m2_ / static_cast<double>(n_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

MeanCI SummaryStats::mean_ci(double confidence) const {
  MeanCI ci;
  ci.mean = mean_;
  ci.confidence = confidence;
  ci.count = n_;
  if (n_ >= 2) {
    const double se = stddev() / std::sqrt(static_cast<double>(n_));
    ci.half_width = student_t_critical(confidence, static_cast<double>(n_ - 1)) * se;
  }
  return ci;
}

SummaryStats summarize(const std::vector<double>& xs) {
  SummaryStats s;
  for (const double x : xs) s.add(x);
  return s;
}

}  // namespace sanperf::stats
