// Streaming sample summaries (Welford) and confidence intervals.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace sanperf::stats {

/// A mean together with the half-width of its confidence interval.
struct MeanCI {
  double mean = 0;
  double half_width = 0;      ///< CI is [mean - half_width, mean + half_width]
  double confidence = 0.90;   ///< e.g. 0.90 for the paper's 90% intervals
  std::uint64_t count = 0;

  [[nodiscard]] double lower() const { return mean - half_width; }
  [[nodiscard]] double upper() const { return mean + half_width; }
  /// True when `x` lies inside the interval.
  [[nodiscard]] bool contains(double x) const { return lower() <= x && x <= upper(); }
};

/// Single-pass numerically stable summary of a stream of doubles.
class SummaryStats {
 public:
  void add(double x);
  /// Merges another summary into this one (parallel Welford combine).
  void merge(const SummaryStats& other);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample (n-1) variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  /// Student-t confidence interval on the mean at the given confidence level.
  [[nodiscard]] MeanCI mean_ci(double confidence = 0.90) const;

  void reset() { *this = SummaryStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Convenience: summary of a whole vector.
[[nodiscard]] SummaryStats summarize(const std::vector<double>& xs);

}  // namespace sanperf::stats
