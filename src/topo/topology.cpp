#include "topo/topology.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/json.hpp"

namespace sanperf::topo {

namespace {

[[noreturn]] void bad_topology(const std::string& what) {
  throw std::invalid_argument{"Topology: " + what};
}

}  // namespace

Topology::Topology(std::string name, std::vector<Rack> racks)
    : name_{std::move(name)}, racks_{std::move(racks)} {
  if (racks_.empty()) bad_topology("no racks");
  std::size_t n = 0;
  for (const Rack& rack : racks_) {
    if (rack.hosts.empty()) bad_topology("empty rack");
    n += rack.hosts.size();
  }
  rack_of_.assign(n, 0);
  std::vector<char> seen(n, 0);
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    for (const HostId h : racks_[r].hosts) {
      if (h >= n) bad_topology("host " + std::to_string(h) + " out of range for " +
                               std::to_string(n) + " hosts");
      if (seen[h]) bad_topology("host " + std::to_string(h) + " appears twice");
      seen[h] = 1;
      rack_of_[h] = static_cast<std::uint32_t>(r);
    }
  }
}

Topology Topology::single_hub(std::size_t n) { return uniform(n, 1); }

Topology Topology::uniform(std::size_t n, std::size_t racks, LinkParams access,
                           LinkParams uplink) {
  if (n == 0) bad_topology("uniform: n == 0");
  if (racks == 0 || racks > n) bad_topology("uniform: need 1 <= racks <= n");
  std::vector<Rack> built(racks);
  const std::size_t base = n / racks;
  const std::size_t extra = n % racks;
  HostId next = 0;
  for (std::size_t r = 0; r < racks; ++r) {
    const std::size_t size = base + (r < extra ? 1 : 0);
    built[r].access = access;
    built[r].uplink = uplink;
    built[r].hosts.reserve(size);
    for (std::size_t i = 0; i < size; ++i) built[r].hosts.push_back(next++);
  }
  std::ostringstream name;
  name << "uniform-" << n << "x" << racks;
  return Topology{name.str(), std::move(built)};
}

std::size_t Topology::rack_of(HostId h) const {
  if (h >= rack_of_.size()) bad_topology("rack_of: host out of range");
  return rack_of_[h];
}

const std::vector<HostId>& Topology::hosts_in_rack(std::size_t rack) const {
  if (rack >= racks_.size()) bad_topology("hosts_in_rack: rack out of range");
  return racks_[rack].hosts;
}

// --- JSON --------------------------------------------------------------------

namespace {

void write_link(std::ostringstream& os, const LinkParams& link) {
  os << "{\"latency_ms\":" << core::detail::json_exact(link.latency_ms)
     << ",\"service_scale\":" << core::detail::json_exact(link.service_scale)
     << ",\"queue_limit\":" << link.queue_limit << '}';
}

LinkParams read_link(const core::detail::JsonParser::JsonValue& value) {
  using core::detail::JsonParser;
  const auto number = [](const JsonParser::JsonValue* v, double fallback) {
    if (v == nullptr) return fallback;
    if (!v->number) throw std::invalid_argument{"Topology::from_json: expected a number"};
    return *v->number;
  };
  LinkParams link;
  link.latency_ms = number(JsonParser::field(value, "latency_ms"), 0.0);
  link.service_scale = number(JsonParser::field(value, "service_scale"), 1.0);
  const double limit = number(JsonParser::field(value, "queue_limit"), 0.0);
  if (limit < 0) throw std::invalid_argument{"Topology::from_json: negative queue_limit"};
  link.queue_limit = static_cast<std::size_t>(limit);
  return link;
}

}  // namespace

std::string Topology::to_json() const {
  std::ostringstream os;
  os << "{\"name\":";
  core::detail::write_json_string(os, name_);
  os << ",\"racks\":[";
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    const Rack& rack = racks_[r];
    os << (r == 0 ? "" : ",") << "{\"hosts\":[";
    for (std::size_t i = 0; i < rack.hosts.size(); ++i) {
      os << (i == 0 ? "" : ",") << rack.hosts[i];
    }
    os << "],\"access\":";
    write_link(os, rack.access);
    os << ",\"uplink\":";
    write_link(os, rack.uplink);
    os << '}';
  }
  os << "]}";
  return os.str();
}

Topology Topology::from_json(const std::string& text) {
  using core::detail::JsonParser;
  const auto root = JsonParser{text, "Topology::from_json"}.parse();
  const auto* name = JsonParser::field(root, "name");
  if (name == nullptr || !name->string) {
    throw std::invalid_argument{"Topology::from_json: missing \"name\""};
  }
  const auto* racks = JsonParser::field(root, "racks");
  if (racks == nullptr || !racks->array) {
    throw std::invalid_argument{"Topology::from_json: missing \"racks\" array"};
  }
  std::vector<Rack> built;
  for (const auto& rv : racks->array.value()) {
    Rack rack;
    const auto* hosts = JsonParser::field(rv, "hosts");
    if (hosts == nullptr || !hosts->array) {
      throw std::invalid_argument{"Topology::from_json: rack without a \"hosts\" array"};
    }
    for (const auto& h : *hosts->array) {
      if (!h.number || *h.number < 0) {
        throw std::invalid_argument{"Topology::from_json: bad host id"};
      }
      rack.hosts.push_back(static_cast<HostId>(*h.number));
    }
    if (const auto* access = JsonParser::field(rv, "access")) rack.access = read_link(*access);
    if (const auto* uplink = JsonParser::field(rv, "uplink")) rack.uplink = read_link(*uplink);
    built.push_back(std::move(rack));
  }
  return Topology{*name->string, std::move(built)};
}

// --- RouteTable --------------------------------------------------------------

RouteTable::RouteTable(const Topology& topo) : n_{topo.n_hosts()} {
  if (n_ == 0) throw std::invalid_argument{"RouteTable: empty topology"};
  links_.reserve(n_ + topo.racks().size());
  for (HostId h = 0; h < static_cast<HostId>(n_); ++h) {
    links_.push_back({LinkType::kAccess, h, topo.racks()[topo.rack_of(h)].access});
  }
  const std::uint32_t uplink_base = static_cast<std::uint32_t>(n_);
  for (std::size_t r = 0; r < topo.racks().size(); ++r) {
    links_.push_back({LinkType::kUplink, static_cast<std::uint32_t>(r), topo.racks()[r].uplink});
  }
  routes_.resize(n_ * n_);
  for (HostId src = 0; src < static_cast<HostId>(n_); ++src) {
    for (HostId dst = 0; dst < static_cast<HostId>(n_); ++dst) {
      if (src == dst) continue;  // unused: the network rejects self-sends
      Route& route = routes_[static_cast<std::size_t>(src) * n_ + dst];
      const auto src_rack = static_cast<std::uint32_t>(topo.rack_of(src));
      const auto dst_rack = static_cast<std::uint32_t>(topo.rack_of(dst));
      if (src_rack == dst_rack) {
        route.links = {src, dst, 0, 0};
        route.hops = 2;
      } else {
        route.links = {src, uplink_base + src_rack, uplink_base + dst_rack, dst};
        route.hops = kMaxHops;
      }
    }
  }
}

std::string RouteTable::link_name(std::size_t index) const {
  const Link& l = link(index);
  return (l.type == LinkType::kAccess ? "access:" : "uplink:") + std::to_string(l.owner);
}

}  // namespace sanperf::topo
