// Declarative network topologies with failure domains.
//
// The paper's emulated testbed is a single shared hub -- every frame from
// every host serialises through one half-duplex medium. That is faithful
// for n <= 7 but cannot express anything production-shaped: racks behind
// top-of-rack switches, a spine joining them, per-link latency/bandwidth,
// or the correlated loss of a whole failure domain. A `Topology` describes
// the production shape declaratively (hosts -> racks -> ToR switches ->
// spine, each edge with its own LinkParams), round-trips through JSON with
// the ResultTable mini-parser, and compiles into a `RouteTable`: the
// per-host-pair sequence of links a frame occupies, which
// net::ContentionNetwork walks instead of the single hub.
//
// The rack tree doubles as the failure-domain tree (cortx-motr style):
// `hosts_in_rack(r)` is exactly the blast radius of killing rack r's power
// feed or partitioning its ToR switch, and faults::lower_plan expands
// domain-scoped fault events by walking it.
//
// Degeneracy contract: a topology with a single rack is semantically the
// legacy shared hub (every host hangs off one switch), and the network
// keeps using the hub code path for it -- bit-exact with every existing
// golden. Multi-rack topologies switch to routed delivery.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace sanperf::topo {

/// Same underlying type as net::HostId / runtime::HostId; spelled out so
/// this header stays dependency-free below core/net.
using HostId = std::uint32_t;

/// Per-edge service model. `service_scale` multiplies the calibrated
/// bimodal wire occupancy (a 0.5x uplink carries frames twice as fast as
/// the paper's medium); `latency_ms` is a non-exclusive propagation delay
/// paid after the occupancy; `queue_limit` bounds the frames waiting on
/// the link (0 = unbounded, >0 drops overflow like a shallow switch
/// buffer).
struct LinkParams {
  double latency_ms = 0.0;
  double service_scale = 1.0;
  std::size_t queue_limit = 0;

  bool operator==(const LinkParams&) const = default;
};

/// One rack: its member hosts, the host<->ToR access edges (all hosts in a
/// rack share one access profile) and the ToR<->spine uplink edge.
struct Rack {
  std::vector<HostId> hosts;
  LinkParams access;
  LinkParams uplink;

  bool operator==(const Rack&) const = default;
};

class Topology {
 public:
  Topology() = default;
  /// Validates on construction: hosts 0..n-1 must appear exactly once
  /// across racks, every rack non-empty. Throws std::invalid_argument.
  Topology(std::string name, std::vector<Rack> racks);

  /// The degenerate topology: one rack holding every host -- semantically
  /// the paper's shared hub, reproduced bit for bit by the network.
  [[nodiscard]] static Topology single_hub(std::size_t n);
  /// `n` hosts split contiguously over `racks` racks (first racks get the
  /// remainder), every rack sharing the given edge profiles.
  [[nodiscard]] static Topology uniform(std::size_t n, std::size_t racks,
                                        LinkParams access = {}, LinkParams uplink = {});

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Rack>& racks() const { return racks_; }
  [[nodiscard]] std::size_t n_hosts() const { return rack_of_.size(); }
  /// True when routed delivery degenerates to the legacy single hub.
  [[nodiscard]] bool single_hub_equivalent() const { return racks_.size() <= 1; }

  /// Failure-domain tree walk: which rack holds `h`, and the blast radius
  /// of a rack-scoped fault (kill_rack / partition_switch / domain loss).
  [[nodiscard]] std::size_t rack_of(HostId h) const;
  [[nodiscard]] const std::vector<HostId>& hosts_in_rack(std::size_t rack) const;

  // JSON round-trip. Canonical form (every LinkParams field written with
  // %.17g) so to_json(from_json(to_json(t))) == to_json(t) bit for bit.
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static Topology from_json(const std::string& text);

  bool operator==(const Topology& other) const {
    return name_ == other.name_ && racks_ == other.racks_;
  }

 private:
  std::string name_;
  std::vector<Rack> racks_;
  std::vector<std::uint32_t> rack_of_;  // derived: host -> rack index
};

/// The compiled routing view of a Topology: a dense per-ordered-pair table
/// of the links a frame occupies in order. Links are numbered access edges
/// first (link h = host h's access edge, h in [0, n)), then uplinks (link
/// n + r = rack r's uplink). Same-rack routes take 2 hops (src access, dst
/// access); cross-rack routes take 4 (src access, src uplink, dst uplink,
/// dst access) -- the spine itself is modelled as non-blocking.
class RouteTable {
 public:
  static constexpr std::uint32_t kMaxHops = 4;

  enum class LinkType : std::uint8_t { kAccess, kUplink };

  struct Link {
    LinkType type = LinkType::kAccess;
    std::uint32_t owner = 0;  ///< host id (access) or rack index (uplink)
    LinkParams params;
  };

  struct Route {
    std::array<std::uint32_t, kMaxHops> links{};
    std::uint32_t hops = 0;
  };

  explicit RouteTable(const Topology& topo);

  [[nodiscard]] std::size_t n_hosts() const { return n_; }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const Link& link(std::size_t index) const { return links_.at(index); }
  /// "access:3" / "uplink:1" -- stable names for audits and test output.
  [[nodiscard]] std::string link_name(std::size_t index) const;
  [[nodiscard]] const Route& route(HostId src, HostId dst) const {
    return routes_.at(static_cast<std::size_t>(src) * n_ + dst);
  }
  [[nodiscard]] bool crosses_racks(HostId src, HostId dst) const {
    return route(src, dst).hops == kMaxHops;
  }

 private:
  std::size_t n_ = 0;
  std::vector<Link> links_;
  std::vector<Route> routes_;  // dense n*n, src-major
};

}  // namespace sanperf::topo
