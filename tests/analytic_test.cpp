// Tests of the analytical (CTMC) transient solver against closed forms and
// against the simulative solver.
#include <gtest/gtest.h>

#include "san/analytic.hpp"
#include "san/model.hpp"
#include "san/study.hpp"

namespace sanperf::san {
namespace {

// --------------------------------------------------------------------------
// Closed forms
// --------------------------------------------------------------------------

TEST(CtmcSolverTest, SingleExponentialStage) {
  SanModel m;
  const auto a = m.place("a", 1);
  const auto b = m.place("b");
  m.timed_activity("t", Distribution::exponential_ms(4.0)).in(a).out(b);
  CtmcTransientSolver solver{m, [b](const Marking& mk) { return mk.get(b) > 0; }};
  EXPECT_EQ(solver.state_count(), 2u);
  EXPECT_EQ(solver.absorbing_count(), 1u);
  EXPECT_NEAR(solver.mean_time_to_stop_ms(), 4.0, 1e-9);
  // P(T <= t) = 1 - exp(-t/4).
  EXPECT_NEAR(solver.probability_stopped_by(4.0), 1 - std::exp(-1.0), 1e-6);
  EXPECT_NEAR(solver.probability_stopped_by(0.0), 0.0, 1e-9);
  EXPECT_NEAR(solver.probability_stopped_by(80.0), 1.0, 1e-6);
}

TEST(CtmcSolverTest, TandemStagesSumMeans) {
  // Erlang: mean absorption = sum of stage means.
  SanModel m;
  const auto a = m.place("a", 1);
  const auto b = m.place("b");
  const auto c = m.place("c");
  const auto d = m.place("d");
  m.timed_activity("t1", Distribution::exponential_ms(1.0)).in(a).out(b);
  m.timed_activity("t2", Distribution::exponential_ms(2.0)).in(b).out(c);
  m.timed_activity("t3", Distribution::exponential_ms(3.0)).in(c).out(d);
  CtmcTransientSolver solver{m, [d](const Marking& mk) { return mk.get(d) > 0; }};
  EXPECT_EQ(solver.state_count(), 4u);
  EXPECT_NEAR(solver.mean_time_to_stop_ms(), 6.0, 1e-9);
}

TEST(CtmcSolverTest, RaceOfTwoExponentials) {
  // min(Exp(1/2), Exp(1/3)): mean 1/(1/2+1/3) = 1.2 ms to absorb either way.
  SanModel m;
  const auto a = m.place("a", 1);
  const auto x = m.place("x");
  const auto y = m.place("y");
  m.timed_activity("fast", Distribution::exponential_ms(2.0)).in(a).out(x);
  m.timed_activity("slow", Distribution::exponential_ms(3.0)).in(a).out(y);
  CtmcTransientSolver solver{
      m, [x, y](const Marking& mk) { return mk.get(x) + mk.get(y) > 0; }};
  EXPECT_NEAR(solver.mean_time_to_stop_ms(), 1.2, 1e-9);
}

TEST(CtmcSolverTest, InstantaneousCascadeWithCases) {
  // After the timed stage, an instantaneous coin flips into a fast or slow
  // second stage: mean = 1 + 0.3 * 5 + 0.7 * 2.
  SanModel m;
  const auto a = m.place("a", 1);
  const auto mid = m.place("mid");
  const auto fast_q = m.place("fast_q");
  const auto slow_q = m.place("slow_q");
  const auto done = m.place("done");
  m.timed_activity("first", Distribution::exponential_ms(1.0)).in(a).out(mid);
  m.instant_activity("route").in(mid).case_prob(0.3).out(slow_q).case_prob(0.7).out(fast_q);
  m.timed_activity("slow", Distribution::exponential_ms(5.0)).in(slow_q).out(done);
  m.timed_activity("fast", Distribution::exponential_ms(2.0)).in(fast_q).out(done);
  CtmcTransientSolver solver{m, [done](const Marking& mk) { return mk.get(done) > 0; }};
  EXPECT_NEAR(solver.mean_time_to_stop_ms(), 1 + 0.3 * 5 + 0.7 * 2, 1e-9);
}

TEST(CtmcSolverTest, WeightedInstantaneousRace) {
  // Two instantaneous activities race 3:1 into different exponential tails.
  SanModel m;
  const auto a = m.place("a", 1);
  const auto left = m.place("left");
  const auto right = m.place("right");
  const auto done = m.place("done");
  m.instant_activity("go_left", 3.0).in(a).out(left);
  m.instant_activity("go_right", 1.0).in(a).out(right);
  m.timed_activity("l", Distribution::exponential_ms(4.0)).in(left).out(done);
  m.timed_activity("r", Distribution::exponential_ms(8.0)).in(right).out(done);
  CtmcTransientSolver solver{m, [done](const Marking& mk) { return mk.get(done) > 0; }};
  EXPECT_NEAR(solver.mean_time_to_stop_ms(), 0.75 * 4 + 0.25 * 8, 1e-9);
}

TEST(CtmcSolverTest, Mm1kTimeToFill) {
  // M/M/1/K starting empty, absorbing at K=3: birth 1/ms, death 0.5/ms.
  // Mean first-passage times from the birth-death recursion.
  SanModel m;
  const auto queue = m.place("q", 0);
  const auto arrivals = m.place("src", 1);
  const auto gate = m.input_gate("not_full", {queue},
                                 [queue](const Marking& mk) { return mk.get(queue) < 3; });
  m.timed_activity("arrive", Distribution::exponential_ms(1.0))
      .in(arrivals)
      .in_gate(gate)
      .out(arrivals)
      .out(queue);
  m.timed_activity("serve", Distribution::exponential_ms(2.0)).in(queue);
  CtmcTransientSolver solver{m, [queue](const Marking& mk) { return mk.get(queue) >= 3; }};
  EXPECT_EQ(solver.state_count(), 4u);
  // Hand-solved: with lambda=1, mu=0.5: t0 = 1 + t1; t1 = 2/3 + (1/3)t0 + (2/3)...
  // Solve numerically here instead: compare against high-precision simulation.
  TransientStudy study{m, [queue](const Marking& mk) { return mk.get(queue) >= 3; }};
  const auto sim = study.run(30000, 9);
  EXPECT_NEAR(solver.mean_time_to_stop_ms(), sim.summary.mean(),
              4 * sim.ci.half_width + 0.02);
}

// --------------------------------------------------------------------------
// Agreement with the simulative solver
// --------------------------------------------------------------------------

TEST(CtmcSolverTest, MatchesSimulationOnBranchyModel) {
  SanModel m;
  const auto a = m.place("a", 2);  // two concurrent tokens
  const auto b = m.place("b");
  const auto done = m.place("done");
  m.timed_activity("stage1", Distribution::exponential_ms(1.5)).in(a).out(b);
  m.timed_activity("stage2", Distribution::exponential_ms(0.7)).in(b).out(done);
  const auto stop = [done](const Marking& mk) { return mk.get(done) >= 2; };
  CtmcTransientSolver solver{m, stop};
  TransientStudy study{m, stop};
  const auto sim = study.run(30000, 10);
  EXPECT_NEAR(solver.mean_time_to_stop_ms(), sim.summary.mean(), 4 * sim.ci.half_width + 0.02);
  // Distribution-level agreement at a few quantiles.
  const auto ecdf = sim.ecdf();
  for (const double t : {1.0, 2.0, 4.0, 8.0}) {
    EXPECT_NEAR(solver.probability_stopped_by(t), ecdf.eval(t), 0.02) << "t=" << t;
  }
}

// --------------------------------------------------------------------------
// Constraints
// --------------------------------------------------------------------------

TEST(CtmcSolverTest, RejectsNonExponentialModels) {
  // The paper's own situation: bimodal-uniform network delays force
  // simulation (Section 3.1).
  SanModel m;
  const auto a = m.place("a", 1);
  const auto b = m.place("b");
  m.timed_activity("t", Distribution::bimodal_uniform_ms(0.8, 0.1, 0.13, 0.145, 0.35))
      .in(a)
      .out(b);
  EXPECT_THROW(
      (CtmcTransientSolver{m, [b](const Marking& mk) { return mk.get(b) > 0; }}),
      std::invalid_argument);
}

TEST(CtmcSolverTest, DetectsInfiniteMeanOnDeadlock) {
  SanModel m;
  const auto a = m.place("a", 1);
  const auto stuck = m.place("stuck");
  const auto done = m.place("done");
  // Half the probability mass deadlocks without reaching `done`.
  m.timed_activity("t", Distribution::exponential_ms(1.0))
      .in(a)
      .case_prob(0.5)
      .out(done)
      .case_prob(0.5)
      .out(stuck);
  CtmcTransientSolver solver{m, [done](const Marking& mk) { return mk.get(done) > 0; }};
  EXPECT_THROW(solver.mean_time_to_stop_ms(), std::runtime_error);
  // The transient probability is still well-defined.
  EXPECT_NEAR(solver.probability_stopped_by(1000.0), 0.5, 1e-6);
}

TEST(CtmcSolverTest, StateCapEnforced) {
  // An unbounded counter chain exceeds any finite cap.
  SanModel m;
  const auto a = m.place("a", 1);
  const auto count = m.place("count");
  m.timed_activity("inc", Distribution::exponential_ms(1.0)).in(a).out(a).out(count);
  const auto never = m.place("never");
  AnalyticOptions opts;
  opts.max_states = 100;
  EXPECT_THROW(
      (CtmcTransientSolver{m, [never](const Marking& mk) { return mk.get(never) > 0; }, opts}),
      std::runtime_error);
}

TEST(CtmcSolverTest, StopAtInitialMarking) {
  SanModel m;
  const auto a = m.place("a", 1);
  const auto b = m.place("b");
  m.timed_activity("t", Distribution::exponential_ms(1.0)).in(a).out(b);
  CtmcTransientSolver solver{m, [a](const Marking& mk) { return mk.get(a) > 0; }};
  EXPECT_NEAR(solver.mean_time_to_stop_ms(), 0.0, 1e-12);
  EXPECT_NEAR(solver.probability_stopped_by(0.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace sanperf::san
