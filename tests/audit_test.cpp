// Negative tests for the SANPERF_AUDIT invariant layer: each test corrupts
// simulation state through a test-only backdoor and asserts that exactly
// the right invariant trips. A positive determinism test proves the hooks
// observe without perturbing (CI additionally diffs the quick goldens at
// --tol 0.0 against the audit build for cross-build bit-identicality).
// In audit-off builds the layer is compiled out and this suite SKIPs.
#include <gtest/gtest.h>

#include "core/audit.hpp"

#if SANPERF_AUDIT_ENABLED

#include <any>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "consensus/ct_consensus.hpp"
#include "consensus/durable_log.hpp"
#include "consensus/instance_gc.hpp"
#include "consensus/payload.hpp"
#include "des/ladder_queue.hpp"
#include "des/simulator.hpp"
#include "fd/failure_detector.hpp"
#include "net/network.hpp"
#include "runtime/cluster.hpp"
#include "topo/topology.hpp"

namespace sanperf {
namespace {

using consensus::CtConsensus;
using fd::StaticFd;
using runtime::Cluster;
using runtime::ClusterConfig;
using runtime::HostId;
using runtime::Message;
using runtime::MsgKind;

/// What the throwing handler reports back to the test.
struct AuditFailure {
  std::string invariant;
  std::string detail;
};

[[noreturn]] void throwing_handler(const audit::Violation& v) {
  throw AuditFailure{v.invariant, v.detail};
}

/// Installs the throwing handler for the test's lifetime so a tripped
/// invariant surfaces as a catchable exception instead of an abort.
class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override { prev_ = audit::set_handler(&throwing_handler); }
  void TearDown() override { audit::set_handler(prev_); }

  /// Runs `fn` and returns the invariant name it tripped ("" if none).
  template <typename Fn>
  static std::string tripped(Fn&& fn) {
    try {
      fn();
    } catch (const AuditFailure& f) {
      return f.invariant;
    }
    return {};
  }

 private:
  audit::Handler prev_ = nullptr;
};

ClusterConfig tiny_config(std::size_t n, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.timers = net::TimerModel::ideal();
  return cfg;
}

/// Builds a StaticFd + CtConsensus stack on every process.
void add_consensus_stack(Cluster& cluster) {
  for (HostId i = 0; i < static_cast<HostId>(cluster.n()); ++i) {
    auto& proc = cluster.process(i);
    auto& fd_layer = proc.add_layer<StaticFd>();
    proc.add_layer<CtConsensus>(fd_layer);
  }
}

/// Proposes on every host and runs until all live hosts decided cid 0.
void run_to_decision(Cluster& cluster) {
  const des::TimePoint t0 = des::TimePoint::origin() + des::Duration::from_ms(1.0);
  for (HostId i = 0; i < static_cast<HostId>(cluster.n()); ++i) {
    auto& proc = cluster.process(i);
    cluster.sim().schedule_at(t0, [&proc] {
      proc.layer<CtConsensus>().propose(0, 100 + proc.id());
    });
  }
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(5000.0));
  for (HostId i = 0; i < static_cast<HostId>(cluster.n()); ++i) {
    ASSERT_TRUE(cluster.process(i).layer<CtConsensus>().has_decided(0));
  }
}

// --- infrastructure ----------------------------------------------------------

TEST_F(AuditTest, ChecksRunGrowsDuringASimulation) {
  const std::uint64_t before = audit::checks_run();
  Cluster cluster{tiny_config(3, 7)};
  add_consensus_stack(cluster);
  run_to_decision(cluster);
  EXPECT_GT(audit::checks_run(), before);
}

TEST_F(AuditTest, AuditHooksDoNotPerturbTheRun) {
  // The checks are observers: two identical runs under the audit build must
  // produce bit-identical trajectories (the cross-build half of this
  // property is CI's --tol 0.0 golden diff against the audit binaries).
  auto decide_ms = [](std::uint64_t seed) {
    Cluster cluster{tiny_config(3, seed)};
    add_consensus_stack(cluster);
    double at = -1.0;
    cluster.process(0).layer<CtConsensus>().set_decide_callback(
        [&at](const consensus::DecisionEvent& ev) { at = ev.at.to_ms(); });
    const des::TimePoint t0 = des::TimePoint::origin() + des::Duration::from_ms(1.0);
    for (HostId i = 0; i < 3; ++i) {
      auto& proc = cluster.process(i);
      cluster.sim().schedule_at(t0, [&proc] {
        proc.layer<CtConsensus>().propose(0, 100 + proc.id());
      });
    }
    cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(5000.0));
    return at;
  };
  const double first = decide_ms(11);
  EXPECT_GT(first, 0.0);
  EXPECT_EQ(first, decide_ms(11));
}

// --- des/ --------------------------------------------------------------------

TEST_F(AuditTest, DeadGenerationSlotFireTrips) {
  des::EventQueue queue;
  bool ran = false;
  const des::EventId id =
      queue.push(des::TimePoint::origin() + des::Duration::from_ms(1.0), [&ran] { ran = true; });
  queue.audit_corrupt_kill_slot(id);  // stale generation, still heap-resident
  EXPECT_EQ(tripped([&] { queue.pop(); }), "des.no_dead_slot_fire");
  EXPECT_FALSE(ran);
}

TEST_F(AuditTest, BrokenHeapBackReferenceTrips) {
  des::EventQueue queue;
  for (int i = 0; i < 4; ++i) {
    queue.push(des::TimePoint::origin() + des::Duration::from_ms(i), [] {});
  }
  const des::EventId id =
      queue.push(des::TimePoint::origin() + des::Duration::from_ms(9.0), [] {});
  EXPECT_EQ(tripped([&] { queue.audit_check_heap(); }), "");  // consistent before
  queue.audit_corrupt_heap_pos(id);
  EXPECT_EQ(tripped([&] { queue.audit_check_heap(); }), "des.heap_index_consistency");
}

TEST_F(AuditTest, SimulatedTimeRewindTrips) {
  des::Simulator sim;
  sim.schedule_at(des::TimePoint::origin() + des::Duration::from_ms(10.0), [] {});
  const des::EventId late =
      sim.schedule_at(des::TimePoint::origin() + des::Duration::from_ms(20.0), [] {});
  // Rewrite the later event's firing time behind the first WITHOUT
  // re-sifting: once the clock reaches 10 ms, the corrupted event fires in
  // the past.
  sim.audit_queue().audit_corrupt_slot_time(
      late, des::TimePoint::origin() + des::Duration::from_ms(5.0));
  EXPECT_EQ(tripped([&] {
              sim.run_until(des::TimePoint::origin() + des::Duration::from_ms(100.0));
            }),
            "des.monotonic_time");
}

TEST_F(AuditTest, LadderTimeCorruptionTripsMonotonicTime) {
  // The ladder-backed simulator: corrupt a rung-resident event's firing
  // time without re-bucketing it. It stays filed under its original time
  // band, so when that band is consumed the event fires in the past.
  des::Simulator sim{des::QueueBackend::kLadder};
  for (int i = 0; i < 64; ++i) {
    sim.schedule_at(des::TimePoint::origin() + des::Duration::from_ms(10.0 + i), [] {});
  }
  const des::EventId late =
      sim.schedule_at(des::TimePoint::origin() + des::Duration::from_ms(200.0), [] {});
  // A few pops seed the rung structure; `late` is bucketed by its 200 ms.
  sim.run_until(des::TimePoint::origin() + des::Duration::from_ms(12.0));
  sim.audit_ladder_queue().audit_corrupt_slot_time(
      late, des::TimePoint::origin() + des::Duration::from_ms(1.0));
  EXPECT_EQ(tripped([&] {
              sim.run_until(des::TimePoint::origin() + des::Duration::from_ms(1000.0));
            }),
            "des.monotonic_time");
}

TEST_F(AuditTest, LadderBucketRangeCorruptionTripsLadderConsistency) {
  des::LadderQueue queue;
  for (int i = 0; i < 64; ++i) {
    queue.push(des::TimePoint::origin() + des::Duration::from_ms(i), [] {});
  }
  const des::EventId id =
      queue.push(des::TimePoint::origin() + des::Duration::from_ms(63.5), [] {});
  (void)queue.pop();  // seeds the rungs; `id` now sits in a late bucket
  EXPECT_EQ(tripped([&] { queue.audit_check_ladder(); }), "");  // consistent before
  // Rewrite its time far below its bucket's range: the structural
  // self-check must catch the misfiled event.
  queue.audit_corrupt_slot_time(id, des::TimePoint::origin() + des::Duration::from_ms(0.0001));
  EXPECT_EQ(tripped([&] { queue.audit_check_ladder(); }), "des.ladder_consistency");
}

// --- net/ --------------------------------------------------------------------

TEST_F(AuditTest, DeliveryToCrashedHostTrips) {
  des::Simulator sim;
  des::RandomEngine rng{42};
  net::ContentionNetwork network{sim, rng.substream("net"), net::NetworkParams::defaults(), 2};
  network.host_down(1);
  net::Packet pkt;
  pkt.src = 0;
  pkt.dst = 1;
  EXPECT_EQ(tripped([&] { network.audit_force_deliver(pkt); }), "net.no_delivery_to_crashed");
}

TEST_F(AuditTest, UnaccountedDeliveryTripsFrameConservation) {
  des::Simulator sim;
  des::RandomEngine rng{42};
  net::ContentionNetwork network{sim, rng.substream("net"), net::NetworkParams::defaults(), 2};
  EXPECT_EQ(tripped([&] { network.audit_check_frame_conservation(true); }), "");
  // A delivery that no send ever paid for: frames materialised from thin air.
  net::Packet pkt;
  pkt.src = 0;
  pkt.dst = 1;
  network.audit_force_deliver(pkt);
  EXPECT_EQ(tripped([&] { network.audit_check_frame_conservation(false); }),
            "net.frame_conservation");
}

TEST_F(AuditTest, PhantomLinkEntryTripsLinkConservation) {
  // Routed delivery: per-link entered/exited must reconcile at drain.
  des::Simulator sim;
  des::RandomEngine rng{42};
  const topo::Topology topology = topo::Topology::uniform(4, 2);
  net::ContentionNetwork network{sim, rng.substream("net"), net::NetworkParams::defaults(), 4,
                                 &topology};
  ASSERT_TRUE(network.routed());
  EXPECT_EQ(tripped([&] { network.audit_check_frame_conservation(true); }), "");
  // A frame entered link 0 that no send ever routed (and never exits).
  network.audit_corrupt_link_entry(0);
  EXPECT_EQ(tripped([&] { network.audit_check_frame_conservation(true); }),
            "net.link_conservation");
}

TEST_F(AuditTest, DeliveryAcrossPartitionedSwitchTrips) {
  // The injector's frame filter is supposed to drop every frame crossing
  // an open partition; an oracle that says "partitioned" while a frame
  // still reaches the receiver edge undropped is a filter bug.
  des::Simulator sim;
  des::RandomEngine rng{42};
  const topo::Topology topology = topo::Topology::uniform(4, 2);
  net::ContentionNetwork network{sim, rng.substream("net"), net::NetworkParams::defaults(), 4,
                                 &topology};
  network.set_deliver([](const net::Packet&) {});
  network.set_partition_oracle([](net::HostId, net::HostId) { return true; });
  network.send(0, 3, std::any{});  // cross-rack, and no filter drops it
  EXPECT_EQ(tripped([&] {
              sim.run_until(des::TimePoint::origin() + des::Duration::from_ms(100.0));
            }),
            "net.no_delivery_across_partition");
}

// --- runtime/ ----------------------------------------------------------------

TEST_F(AuditTest, EpochGuardSuppressesPrecrashTimers) {
  Cluster cluster{tiny_config(2, 3)};
  auto& proc = cluster.process(0);
  bool fired = false;
  proc.set_timer(des::Duration::from_ms(5.0), [&fired] { fired = true; });
  cluster.crash_at(0, des::TimePoint::origin() + des::Duration::from_ms(2.0));
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(10.0));
  EXPECT_FALSE(fired);
  EXPECT_EQ(proc.audit_timers_suppressed(), 1u);
}

TEST_F(AuditTest, UnguardedPrecrashTimerTrips) {
  Cluster cluster{tiny_config(2, 3)};
  auto& proc = cluster.process(0);
  // The backdoor arms the timer WITHOUT the epoch guard: the pre-crash
  // chain survives into the crashed process and the audit must catch it.
  proc.audit_arm_unguarded_timer(des::Duration::from_ms(5.0), [] {});
  cluster.crash_at(0, des::TimePoint::origin() + des::Duration::from_ms(2.0));
  EXPECT_EQ(tripped([&] {
              cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(10.0));
            }),
            "runtime.timer_epoch_guard");
}

// --- consensus/ --------------------------------------------------------------

TEST_F(AuditTest, DoubleDecideTrips) {
  Cluster cluster{tiny_config(3, 5)};
  add_consensus_stack(cluster);
  run_to_decision(cluster);
  auto& cons = cluster.process(0).layer<CtConsensus>();
  const std::vector<std::int64_t> decided = cons.decision_values(0);
  // Corrupt: host 0 forgets it decided, then a late DECIDE re-drives the
  // decide path for the same instance.
  cons.audit_corrupt_clear_decided(0);
  Message dec;
  dec.kind = MsgKind::kDecide;
  dec.cid = 0;
  dec.round = cons.rounds_used(0);
  dec.from = 1;
  consensus::detail::set_payload(dec, decided);
  EXPECT_EQ(tripped([&] { cons.on_message(dec); }), "consensus.no_double_decide");
}

TEST_F(AuditTest, ConflictingDecideTrips) {
  Cluster cluster{tiny_config(3, 5)};
  add_consensus_stack(cluster);
  run_to_decision(cluster);
  auto& cons = cluster.process(0).layer<CtConsensus>();
  Message dec;
  dec.kind = MsgKind::kDecide;
  dec.cid = 0;
  dec.round = cons.rounds_used(0);
  dec.from = 1;
  consensus::detail::set_payload(dec, {999999});  // not what host 0 decided
  EXPECT_EQ(tripped([&] { cons.on_message(dec); }), "consensus.decision_agreement");
}

TEST_F(AuditTest, CrossEpochSenderTrips) {
  // Epoch 0 membership is {0, 1, 2}; host 3 exists in the cluster but is
  // not a member of the epoch the instance launched under, so its protocol
  // traffic must not be allowed into the instance's quorum.
  Cluster cluster{tiny_config(4, 9)};
  add_consensus_stack(cluster);
  consensus::MembershipView view{{0, 1, 2}};
  auto& cons = cluster.process(0).layer<CtConsensus>();
  cons.set_membership(&view);
  Message est;
  est.kind = MsgKind::kEstimate;
  est.cid = 0;
  est.round = 1;
  est.from = 3;
  est.view_epoch = 0;
  consensus::detail::set_payload(est, {7});
  EXPECT_EQ(tripped([&] { cons.on_message(est); }), "consensus.quorum_in_epoch");
}

TEST_F(AuditTest, CorruptedReplayTrips) {
  Cluster cluster{tiny_config(3, 5)};
  for (HostId i = 0; i < 3; ++i) {
    auto& proc = cluster.process(i);
    auto& fd_layer = proc.add_layer<StaticFd>();
    auto& cons = proc.add_layer<CtConsensus>(fd_layer);
    cons.set_durable_log({.enabled = true, .append_latency_ms = 0.0});
  }
  run_to_decision(cluster);
  auto& proc = cluster.process(0);
  proc.crash();  // snapshots the pre-crash state (instance 0 decided)
  // Corrupt the log between crash and replay: the restored decision no
  // longer matches what stood before the crash.
  proc.layer<CtConsensus>().audit_mutable_log().state(0).decision = {424242};
  EXPECT_EQ(tripped([&] { proc.restart(); }), "consensus.replay_matches_precrash");
}

TEST_F(AuditTest, GcWatermarkRewindTrips) {
  consensus::detail::InstanceGc gc;
  gc.enable(true);
  std::map<std::int32_t, int> instances{{0, 0}, {1, 0}, {2, 0}};
  for (std::int32_t cid = 0; cid < 3; ++cid) gc.mark(cid);
  gc.sweep(instances);
  EXPECT_EQ(gc.floor(), 3);
  gc.audit_corrupt_floor(1);  // collected instances would resurrect as undecided
  gc.mark(3);
  EXPECT_EQ(tripped([&] { gc.sweep(instances); }), "consensus.gc_watermark_monotonic");
}

TEST_F(AuditTest, LogCompactionRewindTrips) {
  consensus::DurableLog log;
  log.configure({.enabled = true});
  for (std::int32_t cid = 0; cid < 6; ++cid) log.state(cid).started = true;
  log.compact(4);
  EXPECT_EQ(tripped([&] { log.compact(2); }), "consensus.gc_watermark_monotonic");
}

}  // namespace
}  // namespace sanperf

#else  // !SANPERF_AUDIT_ENABLED

TEST(AuditTest, CompiledOut) {
  GTEST_SKIP() << "audit layer compiled out; configure with -DSANPERF_AUDIT=ON";
}

#endif
