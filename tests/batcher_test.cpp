// Tests for the batching/pipelining layer (consensus/batcher.hpp, the
// sequencer's pipeline window) and the two streamed-consensus bugfixes:
// the symmetric NTP start-offset draw and per-instance coordinator
// rotation surviving a host-0 crash without per-instance stalls.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "consensus/batcher.hpp"
#include "consensus/ct_consensus.hpp"
#include "consensus/sequencer.hpp"
#include "core/workload.hpp"
#include "des/random.hpp"
#include "des/simulator.hpp"
#include "faults/plan.hpp"
#include "fd/failure_detector.hpp"
#include "runtime/cluster.hpp"

namespace {

using namespace sanperf;
using consensus::BatchedValue;
using consensus::Batcher;
using consensus::BatcherConfig;

struct Closed {
  std::vector<BatchedValue> batch;
  Batcher::CloseReason reason;
  des::TimePoint at;
};

struct Harness {
  des::Simulator sim;
  std::vector<Closed> closed;
  Batcher batcher;

  explicit Harness(BatcherConfig cfg)
      : batcher{sim, cfg, [this](std::vector<BatchedValue> b, Batcher::CloseReason r) {
                  closed.push_back({std::move(b), r, sim.now()});
                }} {}
};

// --------------------------------------------------------------------------
// Batcher formation
// --------------------------------------------------------------------------

TEST(BatcherTest, ClosesOnSizeSynchronously) {
  Harness h{{.max_batch = 3, .linger_ms = 50.0}};
  h.batcher.submit(10);
  h.batcher.submit(11);
  EXPECT_TRUE(h.closed.empty());  // below threshold: still lingering
  h.batcher.submit(12);
  ASSERT_EQ(h.closed.size(), 1u);  // closed inside submit, no event needed
  EXPECT_EQ(h.closed[0].reason, Batcher::CloseReason::kSize);
  ASSERT_EQ(h.closed[0].batch.size(), 3u);
  EXPECT_EQ(h.closed[0].batch[0].value, 10);
  EXPECT_EQ(h.closed[0].batch[2].value, 12);
  EXPECT_EQ(h.batcher.pending(), 0u);
}

TEST(BatcherTest, UnbatchedNeverTouchesTheEventQueue) {
  // max_batch = 1 is the degenerate bit-identicality contract: every value
  // closes synchronously and the simulator never sees an event.
  Harness h{{.max_batch = 1, .linger_ms = 25.0}};
  for (int v = 0; v < 5; ++v) h.batcher.submit(v);
  EXPECT_EQ(h.closed.size(), 5u);
  EXPECT_EQ(h.sim.queue_size(), 0u);
  EXPECT_EQ(h.sim.events_processed(), 0u);
  for (const auto& c : h.closed) {
    EXPECT_EQ(c.reason, Batcher::CloseReason::kSize);
    EXPECT_EQ(c.batch.size(), 1u);
  }
}

TEST(BatcherTest, LingerDeadlineClosesAPartialBatch) {
  Harness h{{.max_batch = 8, .linger_ms = 5.0}};
  h.batcher.submit(1);
  h.sim.schedule(des::Duration::from_ms(2.0), [&] { h.batcher.submit(2); });
  h.sim.run();
  ASSERT_EQ(h.closed.size(), 1u);
  EXPECT_EQ(h.closed[0].reason, Batcher::CloseReason::kLinger);
  ASSERT_EQ(h.closed[0].batch.size(), 2u);
  // The deadline runs from the batch's *first* value.
  EXPECT_DOUBLE_EQ((h.closed[0].at - des::TimePoint::origin()).to_ms(), 5.0);
  // Per-value submission times survive for queueing-delay attribution.
  EXPECT_DOUBLE_EQ((h.closed[0].batch[1].enqueued_at - des::TimePoint::origin()).to_ms(), 2.0);
}

TEST(BatcherTest, SizeCloseCancelsTheLingerTimer) {
  Harness h{{.max_batch = 2, .linger_ms = 5.0}};
  h.batcher.submit(1);
  h.batcher.submit(2);  // closes on size; the armed deadline must die
  h.sim.run();
  ASSERT_EQ(h.closed.size(), 1u);  // no ghost linger close on an empty batch
  EXPECT_EQ(h.closed[0].reason, Batcher::CloseReason::kSize);
}

TEST(BatcherTest, ZeroLingerGroupsSameInstantSubmissions) {
  // linger_ms = 0 still defers the close to the event queue, so values
  // submitted at one simulated instant share a batch instead of each
  // paying its own consensus instance.
  Harness h{{.max_batch = 100, .linger_ms = 0.0}};
  h.sim.schedule(des::Duration::from_ms(1.0), [&] {
    h.batcher.submit(7);
    h.batcher.submit(8);
    h.batcher.submit(9);
  });
  h.sim.run();
  ASSERT_EQ(h.closed.size(), 1u);
  EXPECT_EQ(h.closed[0].batch.size(), 3u);
  EXPECT_EQ(h.closed[0].reason, Batcher::CloseReason::kLinger);
  EXPECT_DOUBLE_EQ((h.closed[0].at - des::TimePoint::origin()).to_ms(), 1.0);
}

TEST(BatcherTest, FlushDrainsThePartialBatchAndDisarmsTheTimer) {
  Harness h{{.max_batch = 8, .linger_ms = 100.0}};
  h.batcher.submit(42);
  h.batcher.flush();
  ASSERT_EQ(h.closed.size(), 1u);
  EXPECT_EQ(h.closed[0].reason, Batcher::CloseReason::kFlush);
  h.batcher.flush();  // idempotent on an empty batch
  h.sim.run();        // the cancelled linger timer must not fire
  EXPECT_EQ(h.closed.size(), 1u);
}

TEST(BatcherTest, StatsCountValuesBatchesAndReasons) {
  Harness h{{.max_batch = 2, .linger_ms = 5.0}};
  h.batcher.submit(1);
  h.batcher.submit(2);                                               // size
  h.sim.schedule(des::Duration::from_ms(1.0), [&] { h.batcher.submit(3); });  // linger
  h.sim.run();
  h.batcher.submit(4);
  h.batcher.flush();  // flush
  const auto& s = h.batcher.stats();
  EXPECT_EQ(s.values, 4u);
  EXPECT_EQ(s.batches, 3u);
  EXPECT_EQ(s.closed_on_size, 1u);
  EXPECT_EQ(s.closed_on_linger, 1u);
  EXPECT_EQ(s.closed_on_flush, 1u);
}

// --------------------------------------------------------------------------
// Bugfix: symmetric NTP start offsets
// --------------------------------------------------------------------------

TEST(NtpSkewTest, OffsetsFillASymmetricWindowWithNoAtomAtZero) {
  // The historic draw was max(0, uniform(-w, +w)): half the probability
  // mass collapsed onto a point atom at zero. The fix realises the same
  // +-w window as w + uniform(-w, +w): support [0, 2w), mean w, and the
  // atom is gone.
  des::RandomEngine rng{12345};
  const double w = 0.05;
  const int kDraws = 4000;
  double sum = 0;
  int below_mid = 0;
  int exactly_zero = 0;
  for (int k = 0; k < kDraws; ++k) {
    const double off = consensus::draw_ntp_start_offset(rng, w).to_ms();
    ASSERT_GE(off, 0.0);
    ASSERT_LT(off, 2 * w);
    sum += off;
    if (off < w) ++below_mid;
    if (off == 0.0) ++exactly_zero;
  }
  EXPECT_EQ(exactly_zero, 0);  // the clamp's atom put ~2000 draws here
  EXPECT_NEAR(sum / kDraws, w, 0.1 * w);
  // Symmetric about the midpoint: about half the draws on each side.
  EXPECT_NEAR(static_cast<double>(below_mid) / kDraws, 0.5, 0.05);
}

// --------------------------------------------------------------------------
// Sequencer pipeline window
// --------------------------------------------------------------------------

runtime::ClusterConfig ct_cluster_config(std::size_t n, std::uint64_t seed) {
  runtime::ClusterConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.timers = net::TimerModel::defaults();
  return cfg;
}

void add_ct_layers(runtime::Cluster& cluster) {
  for (runtime::HostId i = 0; i < static_cast<runtime::HostId>(cluster.n()); ++i) {
    auto& proc = cluster.process(i);
    auto& fd_layer = proc.add_layer<fd::StaticFd>();
    proc.add_layer<consensus::CtConsensus>(fd_layer);
  }
}

std::vector<consensus::ExecutionResult> run_sequenced(std::size_t window, double separation_ms,
                                                      std::size_t executions) {
  runtime::Cluster cluster{ct_cluster_config(3, 4242)};
  add_ct_layers(cluster);
  consensus::SequencerConfig cfg;
  cfg.executions = executions;
  cfg.separation = des::Duration::from_ms(separation_ms);
  cfg.pipeline_window = window;
  consensus::ConsensusSequencerT<consensus::CtConsensus> seq{cluster, cfg};
  return seq.run();
}

TEST(PipelinedSequencerTest, WideSeparationReplaysTheSequentialScheduleBitForBit) {
  // With every execution deciding well inside the separation gap, a window
  // of 2 never actually overlaps anything: starts, skew draws and message
  // timings must replay the one-at-a-time driver exactly.
  const auto sequential = run_sequenced(1, 10.0, 25);
  const auto windowed = run_sequenced(2, 10.0, 25);
  ASSERT_EQ(sequential.size(), windowed.size());
  for (std::size_t k = 0; k < sequential.size(); ++k) {
    EXPECT_EQ(sequential[k].t0, windowed[k].t0);
    ASSERT_EQ(sequential[k].decided(), windowed[k].decided());
    if (sequential[k].decided()) {
      EXPECT_EQ(sequential[k].latency_ms(), windowed[k].latency_ms());  // bit-identical
      EXPECT_EQ(sequential[k].rounds, windowed[k].rounds);
    }
  }
}

TEST(PipelinedSequencerTest, TightSeparationOverlapsAndFinishesSooner) {
  // Separation far below the per-execution latency: the sequential driver
  // serialises on decisions while a window of 8 keeps the pipe full.
  const std::size_t kExecs = 40;
  runtime::Cluster seq_cluster{ct_cluster_config(3, 777)};
  add_ct_layers(seq_cluster);
  consensus::SequencerConfig cfg;
  cfg.executions = kExecs;
  cfg.separation = des::Duration::from_ms(0.05);
  cfg.settle_gap = des::Duration::from_ms(2.0);
  consensus::ConsensusSequencerT<consensus::CtConsensus> sequential{seq_cluster, cfg};
  const auto seq_results = sequential.run();
  const auto seq_end = sequential.experiment_end();

  runtime::Cluster pipe_cluster{ct_cluster_config(3, 777)};
  add_ct_layers(pipe_cluster);
  cfg.pipeline_window = 8;
  consensus::ConsensusSequencerT<consensus::CtConsensus> pipelined{pipe_cluster, cfg};
  const auto pipe_results = pipelined.run();
  const auto pipe_end = pipelined.experiment_end();

  const auto decided = [](const std::vector<consensus::ExecutionResult>& rs) {
    return static_cast<std::size_t>(
        std::count_if(rs.begin(), rs.end(), [](const auto& r) { return r.decided(); }));
  };
  EXPECT_EQ(decided(seq_results), kExecs);
  EXPECT_EQ(decided(pipe_results), kExecs);
  // Overlap buys wall-clock: the pipelined run ends well before the
  // serialised one (which pays latency + settle gap per execution).
  EXPECT_LT((pipe_end - des::TimePoint::origin()).to_ms(),
            0.5 * (seq_end - des::TimePoint::origin()).to_ms());
}

// --------------------------------------------------------------------------
// Bugfix: per-instance coordinator rotation
// --------------------------------------------------------------------------

TEST(CoordinatorRotationTest, RoundOneCoordinatorFollowsCidModN) {
  // Instance cid = 1 on n = 3: the round-1 coordinator decides first (it
  // alone holds a majority of acks before the DECIDE broadcast travels).
  // With rotation that is host 1; pinned, host 0.
  for (const bool rotate : {false, true}) {
    runtime::Cluster cluster{ct_cluster_config(3, 99)};
    add_ct_layers(cluster);
    std::optional<runtime::HostId> first_decider;
    for (runtime::HostId i = 0; i < 3; ++i) {
      auto& cons = cluster.process(i).layer<consensus::CtConsensus>();
      cons.set_rotate_coordinators(rotate);
      cons.set_decide_callback([&first_decider](const consensus::DecisionEvent& ev) {
        if (!first_decider) first_decider = ev.by;
      });
    }
    cluster.run_until(des::TimePoint::origin());
    for (runtime::HostId i = 0; i < 3; ++i) {
      cluster.process(i).layer<consensus::CtConsensus>().propose(1, 100 + i);
    }
    cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(50));
    auto& cons0 = cluster.process(0).layer<consensus::CtConsensus>();
    EXPECT_TRUE(cons0.has_decided(1));
    EXPECT_EQ(cons0.rounds_used(1), 1);
    ASSERT_TRUE(first_decider.has_value());
    EXPECT_EQ(*first_decider, rotate ? 1u : 0u);
  }
}

TEST(CoordinatorRotationTest, RotatedStreamSurvivesHostZeroCrashWithoutStalls) {
  // A mid-stream host-0 crash under a live heartbeat detector. Pinned,
  // *every* instance launched before the suspicion lands stalls in phase 3
  // waiting for the dead coordinator; rotated, only the cid % 3 == 0 third
  // does, and the rest decide at the baseline latency.
  const auto run_stream = [](bool rotate) {
    core::WorkloadConfig cfg;
    cfg.n = 3;
    cfg.network = net::NetworkParams::defaults();
    cfg.timers = net::TimerModel::defaults();
    cfg.heartbeat_timeout_ms = 40.0;
    cfg.rotate_coordinators = rotate;
    cfg.seed = 2002;
    static const faults::FaultPlan plan{{faults::FaultPlan::crash(0, 60.0)}};
    cfg.fault_plan = &plan;
    core::WorkloadSpec spec;
    spec.arrivals = core::ArrivalProcess::kBurst;
    spec.separation_ms = 2.0;
    spec.warmup = 0;
    spec.measured = 90;
    return core::run_workload(cfg, spec);
  };
  const auto pinned = run_stream(false);
  const auto rotated = run_stream(true);
  ASSERT_EQ(pinned.stats.undecided, 0u);
  ASSERT_EQ(rotated.stats.undecided, 0u);
  const auto stalled = [](const core::WorkloadResult& r) {
    return static_cast<std::size_t>(
        std::count_if(r.instances.begin(), r.instances.end(),
                      [](const auto& rec) { return rec.decided() && *rec.latency_ms > 10.0; }));
  };
  // Detection-window stalls: rotation cuts them to roughly a third.
  EXPECT_GT(stalled(pinned), 0u);
  EXPECT_LT(2 * stalled(rotated), stalled(pinned));
  EXPECT_LT(rotated.stats.mean_latency_ms, pinned.stats.mean_latency_ms);
}

}  // namespace
