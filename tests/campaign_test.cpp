// Tests for the declarative campaign API: axis/grid enumeration, override
// parsing, registry contents, ResultTable CSV/JSON round-trips, and the
// spec-vs-typed-wrapper equivalence that keeps `sanperf run` bit-identical
// to the pre-redesign drivers.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/campaign.hpp"
#include "core/result_table.hpp"

namespace {

using namespace sanperf;
using core::ParamAxis;
using core::ParamGrid;
using core::ResultTable;

// --- ParamAxis / ParamGrid ---------------------------------------------------

TEST(ParamAxisTest, TypedDomainsAndAccessors) {
  const auto n = ParamAxis::sizes("n", {3, 5, 7});
  EXPECT_EQ(n.type(), ParamAxis::Type::kInt);
  EXPECT_EQ(n.size(), 3u);
  EXPECT_EQ(n.size_values(), (std::vector<std::size_t>{3, 5, 7}));
  EXPECT_EQ(n.int_values(), (std::vector<std::int64_t>{3, 5, 7}));

  const auto t = ParamAxis::reals("timeout_ms", {1.5, 2.0});
  EXPECT_EQ(t.real_values(), (std::vector<double>{1.5, 2.0}));

  const auto s = ParamAxis::strings("scenario", {"a", "b"});
  EXPECT_EQ(s.string_values(), (std::vector<std::string>{"a", "b"}));

  EXPECT_THROW(ParamAxis::ints("empty", {}), std::invalid_argument);
  EXPECT_THROW(n.real_values(), std::bad_variant_access);
}

TEST(ParamAxisTest, ParseOverrideByType) {
  const auto n = ParamAxis::sizes("n", {3, 5, 7});
  EXPECT_EQ(n.parse_override("5,7").int_values(), (std::vector<std::int64_t>{5, 7}));
  // Int overrides outside the default domain are legal (new what-ifs).
  EXPECT_EQ(n.parse_override("13").int_values(), (std::vector<std::int64_t>{13}));
  EXPECT_THROW(n.parse_override("3,x"), std::invalid_argument);
  EXPECT_THROW(n.parse_override(""), std::invalid_argument);

  const auto t = ParamAxis::reals("t", {0.005, 0.025});
  EXPECT_EQ(t.parse_override("0.025").real_values(), (std::vector<double>{0.025}));

  // String overrides must come from the declared domain.
  const auto s = ParamAxis::strings("scenario", {"no-crash", "coordinator-crash"});
  EXPECT_EQ(s.parse_override("no-crash").string_values(),
            (std::vector<std::string>{"no-crash"}));
  EXPECT_THROW(s.parse_override("meteor-strike"), std::invalid_argument);
}

TEST(ParamGridTest, RowMajorEnumeration) {
  const ParamGrid grid{{ParamAxis::sizes("n", {3, 5}), ParamAxis::reals("T", {1, 2, 3})}};
  ASSERT_EQ(grid.size(), 6u);
  // Last axis fastest: (3,1) (3,2) (3,3) (5,1) (5,2) (5,3).
  EXPECT_EQ(grid.point(0).get_size("n"), 3u);
  EXPECT_EQ(grid.point(0).get_real("T"), 1.0);
  EXPECT_EQ(grid.point(2).get_size("n"), 3u);
  EXPECT_EQ(grid.point(2).get_real("T"), 3.0);
  EXPECT_EQ(grid.point(3).get_size("n"), 5u);
  EXPECT_EQ(grid.point(3).get_real("T"), 1.0);
  EXPECT_EQ(grid.point(5).label(), "n=5 T=3");
  EXPECT_THROW(grid.point(6), std::out_of_range);
  EXPECT_THROW((ParamGrid{{ParamAxis::sizes("n", {3}), ParamAxis::sizes("n", {5})}}),
               std::invalid_argument);
  EXPECT_TRUE(grid.has_axis("T"));
  EXPECT_FALSE(grid.has_axis("missing"));
}

// --- Registry ----------------------------------------------------------------

TEST(RegistryTest, BuiltinCoversEveryPaperArtifact) {
  const auto& registry = core::CampaignRegistry::builtin();
  for (const char* name : {"fig6", "fig7a", "fig7b", "table1", "fig8", "fig9a", "fig9b",
                           "ablation_broadcast", "ablation_fd_correlation", "ext_algorithms",
                           "ext_throughput", "ext_detection_time"}) {
    const auto* spec = registry.find(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_FALSE(spec->description.empty()) << name;
    EXPECT_FALSE(spec->columns.empty()) << name;
  }
  EXPECT_EQ(registry.find("no_such_scenario"), nullptr);
}

TEST(RegistryTest, GridsEnumerateTheDeclaredDomains) {
  const auto& registry = core::CampaignRegistry::builtin();
  const auto scale = core::Scale::quick();
  for (const auto& spec : registry.specs()) {
    const auto grid = core::CampaignRegistry::grid(spec, scale, {});
    std::size_t product = 1;
    for (const auto& axis : grid.axes()) {
      EXPECT_GT(axis.size(), 0u) << spec.name << "/" << axis.name();
      product *= axis.size();
    }
    EXPECT_EQ(grid.size(), product) << spec.name;
  }
  // Spot-check the domains against the Scale.
  const auto fig7a = core::CampaignRegistry::grid(*registry.find("fig7a"), scale, {});
  EXPECT_EQ(fig7a.axis("n").size_values(), scale.ns);
  const auto fig8 = core::CampaignRegistry::grid(*registry.find("fig8"), scale, {});
  EXPECT_EQ(fig8.axis("timeout_ms").real_values(), scale.timeouts_ms);
  EXPECT_EQ(fig8.size(), scale.ns.size() * scale.timeouts_ms.size());
  const auto table1 = core::CampaignRegistry::grid(*registry.find("table1"), scale, {});
  EXPECT_EQ(table1.axis("scenario").size(), 3u);
}

TEST(RegistryTest, OverridesRestrictAndValidate) {
  const auto& registry = core::CampaignRegistry::builtin();
  const auto scale = core::Scale::quick();
  const auto* spec = registry.find("table1");
  ASSERT_NE(spec, nullptr);
  const auto grid = core::CampaignRegistry::grid(
      *spec, scale, {{"n", "3"}, {"scenario", "coordinator-crash"}});
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid.point(0).get_string("scenario"), "coordinator-crash");
  EXPECT_THROW(core::CampaignRegistry::grid(*spec, scale, {{"bogus_axis", "1"}}),
               std::invalid_argument);
}

// --- ResultTable -------------------------------------------------------------

ResultTable sample_table() {
  ResultTable table{"unit", {{"n", ResultTable::ColumnType::kInt},
                             {"name", ResultTable::ColumnType::kString},
                             {"x", ResultTable::ColumnType::kReal},
                             {"ci", ResultTable::ColumnType::kMeanCI},
                             {"xs", ResultTable::ColumnType::kSample}}};
  stats::MeanCI ci;
  ci.mean = 1.0 / 3.0;
  ci.half_width = 0.0625;
  ci.confidence = 0.90;
  ci.count = 150;
  table.add_row({std::int64_t{3}, std::string{"alpha"}, 0.1 + 0.2, ci,
                 core::SampleRef{{0.5, 1.25, std::exp(1.0)}}});
  // Nulls are legal in every column; 2^53 + 1 catches any sink that
  // routes integers through double.
  table.add_row({std::int64_t{9007199254740993}, ResultTable::Value{}, ResultTable::Value{},
                 ResultTable::Value{}, ResultTable::Value{}});
  // A present-but-empty sample must survive a round-trip as an empty
  // sample, not collapse to null.
  table.add_row({std::int64_t{7}, std::string{"gamma"}, 0.25, ResultTable::Value{},
                 core::SampleRef{{}}});
  return table;
}

void expect_tables_equal(const ResultTable& a, const ResultTable& b) {
  ASSERT_EQ(a.name(), b.name());
  ASSERT_EQ(a.columns().size(), b.columns().size());
  for (std::size_t c = 0; c < a.columns().size(); ++c) {
    EXPECT_EQ(a.columns()[c].name, b.columns()[c].name);
    EXPECT_EQ(a.columns()[c].type, b.columns()[c].type);
  }
  ASSERT_EQ(a.row_count(), b.row_count());
  for (std::size_t r = 0; r < a.row_count(); ++r) {
    for (std::size_t c = 0; c < a.columns().size(); ++c) {
      const auto& va = a.cell(r, c);
      const auto& vb = b.cell(r, c);
      ASSERT_EQ(va.index(), vb.index()) << r << "," << c;
      if (const auto* i = std::get_if<std::int64_t>(&va)) {
        EXPECT_EQ(*i, std::get<std::int64_t>(vb));
      } else if (const auto* d = std::get_if<double>(&va)) {
        EXPECT_EQ(*d, std::get<double>(vb)) << "bit-exact round-trip";
      } else if (const auto* s = std::get_if<std::string>(&va)) {
        EXPECT_EQ(*s, std::get<std::string>(vb));
      } else if (const auto* ci = std::get_if<stats::MeanCI>(&va)) {
        const auto& other = std::get<stats::MeanCI>(vb);
        EXPECT_EQ(ci->mean, other.mean);
        EXPECT_EQ(ci->half_width, other.half_width);
        EXPECT_EQ(ci->confidence, other.confidence);
        EXPECT_EQ(ci->count, other.count);
      } else if (const auto* xs = std::get_if<core::SampleRef>(&va)) {
        EXPECT_EQ(xs->values(), std::get<core::SampleRef>(vb).values());
      }
    }
  }
}

TEST(ResultTableTest, TypeAndArityChecking) {
  ResultTable table{"t", {{"n", ResultTable::ColumnType::kInt}}};
  EXPECT_THROW(table.add_row({std::string{"oops"}}), std::invalid_argument);
  EXPECT_THROW(table.add_row({std::int64_t{1}, std::int64_t{2}}), std::invalid_argument);
  table.add_row({std::int64_t{1}});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(*table.column_index("n"), 0u);
  EXPECT_FALSE(table.column_index("missing").has_value());
  EXPECT_EQ(std::get<std::int64_t>(table.at(0, "n")), 1);
  EXPECT_THROW((void)table.at(0, "missing"), std::out_of_range);
  // Separator characters in string cells would corrupt the CSV sink.
  ResultTable strings{"s", {{"name", ResultTable::ColumnType::kString}}};
  EXPECT_THROW(strings.add_row({std::string{"a,b"}}), std::invalid_argument);
}

TEST(ResultTableTest, CsvRoundTripIsBitExact) {
  const auto table = sample_table();
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("#table unit"), std::string::npos);
  EXPECT_NE(csv.find("n:int,name:string,x:real,ci:ci,xs:sample"), std::string::npos);
  expect_tables_equal(table, ResultTable::from_csv(csv));
}

TEST(ResultTableTest, JsonRoundTripIsBitExact) {
  const auto table = sample_table();
  const std::string json = table.to_json();
  EXPECT_NE(json.find("\"table\":\"unit\""), std::string::npos);
  expect_tables_equal(table, ResultTable::from_json(json));
}

TEST(ResultTableTest, PrintRendersAlignedText) {
  std::ostringstream os;
  sample_table().print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("[3 samples]"), std::string::npos);
  EXPECT_NE(out.find("-"), std::string::npos);  // null cells
}

// --- Spec vs typed wrapper equivalence ---------------------------------------

core::Scale tiny_scale() {
  auto scale = core::Scale::quick();
  scale.delay_probes = 150;
  scale.class1_executions = 16;
  scale.sim_replications = 16;
  scale.class3_runs = 2;
  scale.class3_executions = 12;
  scale.ns = {3, 5};
  scale.sim_ns = {3, 5};
  scale.timeouts_ms = {5, 40};
  return scale;
}

TEST(ScenarioRunTest, Fig7aSpecMatchesTypedWrapperBitForBit) {
  const auto& registry = core::CampaignRegistry::builtin();
  core::RunOptions options;
  options.scale = tiny_scale();
  options.seed = 77;
  const auto table = registry.run("fig7a", options);

  core::PaperContext ctx;
  ctx.scale = options.scale;
  ctx.seed = options.seed;
  const auto rows = core::run_fig7a(ctx);
  ASSERT_EQ(table.row_count(), rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(std::get<std::int64_t>(table.at(r, "n")),
              static_cast<std::int64_t>(rows[r].n));
    EXPECT_EQ(std::get<stats::MeanCI>(table.at(r, "latency_ms")).mean, rows[r].mean.mean);
    EXPECT_EQ(std::get<core::SampleRef>(table.at(r, "latencies_ms")).values(),
              rows[r].latencies_ms);
  }
}

TEST(ScenarioRunTest, RestrictedAxisReproducesTheMatchingSubset) {
  const auto& registry = core::CampaignRegistry::builtin();
  core::RunOptions options;
  options.scale = tiny_scale();
  options.seed = 78;
  const auto full = registry.run("fig7a", options);
  options.axis_overrides = {{"n", "5"}};
  const auto restricted = registry.run("fig7a", options);
  ASSERT_EQ(restricted.row_count(), 1u);
  // Full row 1 is n = 5; the restricted run must reproduce it bit for bit.
  EXPECT_EQ(std::get<core::SampleRef>(restricted.at(0, "latencies_ms")).values(),
            std::get<core::SampleRef>(full.at(1, "latencies_ms")).values());
  EXPECT_EQ(std::get<stats::MeanCI>(restricted.at(0, "latency_ms")).mean,
            std::get<stats::MeanCI>(full.at(1, "latency_ms")).mean);
}

TEST(ScenarioRunTest, Table1SpecMatchesTypedWrapperBitForBit) {
  const auto& registry = core::CampaignRegistry::builtin();
  core::RunOptions options;
  options.scale = tiny_scale();
  options.seed = 79;
  const auto table = registry.run("table1", options);

  const auto ctx = core::make_context(options.scale, options.seed);
  const auto rows = core::run_table1(ctx);
  ASSERT_EQ(table.row_count(), rows.size() * 3);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(std::get<stats::MeanCI>(table.at(3 * i, "meas_ms")).mean,
              rows[i].meas_no_crash.mean);
    EXPECT_EQ(std::get<stats::MeanCI>(table.at(3 * i + 1, "meas_ms")).mean,
              rows[i].meas_coord_crash.mean);
    EXPECT_EQ(std::get<stats::MeanCI>(table.at(3 * i + 2, "meas_ms")).mean,
              rows[i].meas_part_crash.mean);
    if (rows[i].sim_no_crash) {
      EXPECT_EQ(std::get<double>(table.at(3 * i, "sim_ms")), *rows[i].sim_no_crash);
    } else {
      EXPECT_TRUE(std::holds_alternative<std::monostate>(table.at(3 * i, "sim_ms")));
    }
  }
}

TEST(ScenarioRunTest, UnknownScenarioAndThreadCountIndependence) {
  const auto& registry = core::CampaignRegistry::builtin();
  core::RunOptions options;
  options.scale = tiny_scale();
  EXPECT_THROW((void)registry.run("nope", options), std::out_of_range);

  // The registry path is bit-identical across runner thread counts.
  const core::ReplicationRunner one{1};
  const core::ReplicationRunner four{4};
  options.seed = 80;
  options.runner = &one;
  const auto a = registry.run("fig7a", options);
  options.runner = &four;
  const auto b = registry.run("fig7a", options);
  expect_tables_equal(a, b);
}

}  // namespace
