// Tests of the Chandra-Toueg consensus layer: safety (agreement, validity),
// liveness in all three run classes, crash handling and the sequencer.
// Includes parameterized safety sweeps across n, crash patterns and seeds.
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "consensus/ct_consensus.hpp"
#include "consensus/sequencer.hpp"
#include "fd/failure_detector.hpp"
#include "fd/heartbeat_fd.hpp"
#include "runtime/cluster.hpp"
#include "runtime/trace.hpp"

namespace sanperf::consensus {
namespace {

using fd::HeartbeatFd;
using fd::HeartbeatFdParams;
using fd::StaticFd;
using runtime::Cluster;
using runtime::ClusterConfig;
using runtime::HostId;

ClusterConfig base_config(std::size_t n, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.timers = net::TimerModel::ideal();
  return cfg;
}

struct RunOutcome {
  std::optional<double> first_decide_ms;
  std::int32_t first_rounds = 0;
  std::vector<std::optional<std::int64_t>> decisions;  // per process
};

/// Runs one consensus with static FDs and an optional initial crash.
RunOutcome run_static(std::size_t n, int crashed, std::uint64_t seed,
                      bool relay_decide = false) {
  Cluster cluster{base_config(n, seed)};
  std::set<HostId> suspected;
  if (crashed >= 0) suspected.insert(static_cast<HostId>(crashed));

  RunOutcome out;
  out.decisions.assign(n, std::nullopt);
  std::optional<des::TimePoint> first;
  for (HostId i = 0; i < static_cast<HostId>(n); ++i) {
    auto& proc = cluster.process(i);
    auto& fd_layer = proc.add_layer<StaticFd>(suspected);
    auto& cons = proc.add_layer<CtConsensus>(fd_layer);
    cons.set_relay_decide(relay_decide);
    cons.set_decide_callback([&out, &first, i](const DecisionEvent& ev) {
      out.decisions[i] = ev.value;
      if (!first || ev.at < *first) {
        first = ev.at;
        out.first_rounds = ev.round;
      }
    });
  }
  if (crashed >= 0) cluster.crash_initially(static_cast<HostId>(crashed));

  const des::TimePoint t0 = des::TimePoint::origin() + des::Duration::from_ms(1.0);
  for (HostId i = 0; i < static_cast<HostId>(n); ++i) {
    auto& proc = cluster.process(i);
    if (proc.crashed()) continue;
    cluster.sim().schedule_at(t0, [&proc] {
      proc.layer<CtConsensus>().propose(0, 100 + proc.id());
    });
  }
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(500));
  if (first) out.first_decide_ms = (*first - t0).to_ms();
  return out;
}

TEST(CtConsensusTest, FailureFreeRunDecidesInOneRound) {
  const auto out = run_static(3, -1, 1);
  ASSERT_TRUE(out.first_decide_ms.has_value());
  EXPECT_EQ(out.first_rounds, 1);
  // Every process decides the same value, which is some process's proposal.
  std::set<std::int64_t> values;
  for (const auto& d : out.decisions) {
    ASSERT_TRUE(d.has_value());
    values.insert(*d);
  }
  EXPECT_EQ(values.size(), 1u);
  EXPECT_GE(*values.begin(), 100);
  EXPECT_LE(*values.begin(), 102);
}

TEST(CtConsensusTest, FailureFreeLatencyInPlausibleRange) {
  const auto out = run_static(3, -1, 2);
  ASSERT_TRUE(out.first_decide_ms.has_value());
  // Three communication steps on the emulated network: between ~0.4 ms and
  // a few ms.
  EXPECT_GT(*out.first_decide_ms, 0.3);
  EXPECT_LT(*out.first_decide_ms, 5.0);
}

TEST(CtConsensusTest, CoordinatorCrashFinishesInRoundTwo) {
  const auto out = run_static(3, /*crashed=*/0, 3);
  ASSERT_TRUE(out.first_decide_ms.has_value());
  EXPECT_EQ(out.first_rounds, 2);
}

TEST(CtConsensusTest, ParticipantCrashStillOneRound) {
  const auto out = run_static(3, /*crashed=*/1, 4);
  ASSERT_TRUE(out.first_decide_ms.has_value());
  EXPECT_EQ(out.first_rounds, 1);
}

TEST(CtConsensusTest, CrashedProcessNeverDecides) {
  const auto out = run_static(5, 2, 5);
  ASSERT_TRUE(out.first_decide_ms.has_value());
  EXPECT_FALSE(out.decisions[2].has_value());
  for (const HostId i : {0u, 1u, 3u, 4u}) {
    EXPECT_TRUE(out.decisions[i].has_value());
  }
}

TEST(CtConsensusTest, DecisionValueComesFromCoordinatorAfterCrash) {
  // With p0 crashed, round 2's coordinator p1 imposes a value; validity
  // still holds: the decision is one of the proposals.
  const auto out = run_static(5, 0, 6);
  std::set<std::int64_t> values;
  for (std::size_t i = 1; i < 5; ++i) {
    ASSERT_TRUE(out.decisions[i].has_value());
    values.insert(*out.decisions[i]);
  }
  EXPECT_EQ(values.size(), 1u);
  EXPECT_GE(*values.begin(), 100);
  EXPECT_LE(*values.begin(), 104);
}

TEST(CtConsensusTest, RelayDecideAlsoAgrees) {
  const auto out = run_static(5, -1, 7, /*relay_decide=*/true);
  std::set<std::int64_t> values;
  for (const auto& d : out.decisions) {
    ASSERT_TRUE(d.has_value());
    values.insert(*d);
  }
  EXPECT_EQ(values.size(), 1u);
}

TEST(CtConsensusTest, ProposeTwiceRejected) {
  Cluster cluster{base_config(3, 8)};
  for (HostId i = 0; i < 3; ++i) {
    auto& proc = cluster.process(i);
    auto& fd_layer = proc.add_layer<StaticFd>();
    proc.add_layer<CtConsensus>(fd_layer);
  }
  cluster.run_until(des::TimePoint::origin());
  auto& cons = cluster.process(0).layer<CtConsensus>();
  cons.propose(0, 1);
  EXPECT_THROW(cons.propose(0, 2), std::logic_error);
}

TEST(CtConsensusTest, AccessorsBeforeDecision) {
  Cluster cluster{base_config(3, 9)};
  for (HostId i = 0; i < 3; ++i) {
    auto& proc = cluster.process(i);
    auto& fd_layer = proc.add_layer<StaticFd>();
    proc.add_layer<CtConsensus>(fd_layer);
  }
  cluster.run_until(des::TimePoint::origin());
  const auto& cons = cluster.process(0).layer<CtConsensus>();
  EXPECT_FALSE(cons.has_decided(0));
  EXPECT_THROW((void)cons.decision(0), std::logic_error);
  EXPECT_EQ(cons.rounds_used(0), 0);
}

// Safety sweep: agreement + validity over (n, crash, seed) combinations.
struct SafetyParam {
  std::size_t n;
  int crashed;
  std::uint64_t seed;
};

class ConsensusSafetyTest : public ::testing::TestWithParam<SafetyParam> {};

TEST_P(ConsensusSafetyTest, AgreementValidityTermination) {
  const auto p = GetParam();
  const auto out = run_static(p.n, p.crashed, p.seed);
  ASSERT_TRUE(out.first_decide_ms.has_value())
      << "no decision for n=" << p.n << " crashed=" << p.crashed;
  std::set<std::int64_t> values;
  for (std::size_t i = 0; i < p.n; ++i) {
    if (static_cast<int>(i) == p.crashed) {
      EXPECT_FALSE(out.decisions[i].has_value());
      continue;
    }
    ASSERT_TRUE(out.decisions[i].has_value()) << "process " << i << " undecided";
    values.insert(*out.decisions[i]);
  }
  EXPECT_EQ(values.size(), 1u);  // agreement
  EXPECT_GE(*values.begin(), 100);  // validity: someone proposed it
  EXPECT_LT(*values.begin(), 100 + static_cast<std::int64_t>(p.n));
}

std::vector<SafetyParam> safety_params() {
  std::vector<SafetyParam> ps;
  for (const std::size_t n : {3u, 5u, 7u}) {
    for (const int crashed : {-1, 0, 1}) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        ps.push_back({n, crashed, seed * 13});
      }
    }
  }
  return ps;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConsensusSafetyTest, ::testing::ValuesIn(safety_params()),
                         [](const auto& info) {
                           const auto& p = info.param;
                           return "n" + std::to_string(p.n) + "_crash" +
                                  std::to_string(p.crashed + 1) + "_seed" +
                                  std::to_string(p.seed);
                         });

// --------------------------------------------------------------------------
// Class 3 (heartbeat FDs, wrong suspicions possible)
// --------------------------------------------------------------------------

TEST(CtConsensusClass3Test, DecidesDespiteWrongSuspicions) {
  // Aggressive timeout on the default (stall-prone) timer model: wrong
  // suspicions occur, yet every execution must terminate and agree.
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 77;
  cfg.timers = net::TimerModel::defaults();
  Cluster cluster{cfg};
  const auto fd_params = HeartbeatFdParams::from_timeout_ms(3.0);
  for (HostId i = 0; i < 3; ++i) {
    auto& proc = cluster.process(i);
    auto& hb = proc.add_layer<HeartbeatFd>(fd_params);
    proc.add_layer<CtConsensus>(hb);
  }
  SequencerConfig seq_cfg;
  seq_cfg.executions = 30;
  ConsensusSequencer seq{cluster, seq_cfg};
  const auto results = seq.run();
  ASSERT_EQ(results.size(), 30u);
  int decided = 0;
  for (const auto& r : results) {
    if (r.decided()) {
      ++decided;
      EXPECT_GT(r.latency_ms(), 0.0);
      EXPECT_GE(r.rounds, 1);
    }
  }
  EXPECT_EQ(decided, 30);
  // Cross-process agreement on every instance.
  for (const auto& r : results) {
    std::set<std::int64_t> values;
    for (HostId i = 0; i < 3; ++i) {
      const auto& cons = cluster.process(i).layer<CtConsensus>();
      if (cons.has_decided(r.cid)) values.insert(cons.decision(r.cid));
    }
    EXPECT_EQ(values.size(), 1u) << "instance " << r.cid;
  }
}

TEST(SequencerTest, ExecutionsSeparatedByConfiguredGap) {
  Cluster cluster{base_config(3, 21)};
  for (HostId i = 0; i < 3; ++i) {
    auto& proc = cluster.process(i);
    auto& fd_layer = proc.add_layer<StaticFd>();
    proc.add_layer<CtConsensus>(fd_layer);
  }
  SequencerConfig cfg;
  cfg.executions = 5;
  ConsensusSequencer seq{cluster, cfg};
  const auto results = seq.run();
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t k = 1; k < results.size(); ++k) {
    const double gap = (results[k].t0 - results[k - 1].t0).to_ms();
    EXPECT_GE(gap, 10.0 - 1e-9);
    EXPECT_LT(gap, 13.0);  // failure-free latencies are ~1 ms
  }
  EXPECT_GT(seq.experiment_end().to_ms(), 40.0);
}

TEST(CtConsensusTest, StatsCountersFailureFreeRun) {
  Cluster cluster{base_config(3, 31)};
  for (HostId i = 0; i < 3; ++i) {
    auto& proc = cluster.process(i);
    auto& fd_layer = proc.add_layer<StaticFd>();
    proc.add_layer<CtConsensus>(fd_layer);
  }
  bool done = false;
  cluster.process(0).layer<CtConsensus>().set_decide_callback(
      [&done](const DecisionEvent&) { done = true; });
  cluster.run_until(des::TimePoint::origin());
  for (HostId i = 0; i < 3; ++i) {
    cluster.process(i).layer<CtConsensus>().propose(0, i);
  }
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(100));
  ASSERT_TRUE(done);

  const auto& coord_stats = cluster.process(0).layer<CtConsensus>().stats();
  EXPECT_EQ(coord_stats.proposals_sent, 1u);
  EXPECT_EQ(coord_stats.rounds_aborted, 0u);
  EXPECT_EQ(coord_stats.nacks_sent, 0u);
  for (const HostId i : {1u, 2u}) {
    const auto& s = cluster.process(i).layer<CtConsensus>().stats();
    EXPECT_GE(s.estimates_sent, 1u);  // round 1 (+ possibly round 2 entry)
    EXPECT_EQ(s.acks_sent, 1u);
    EXPECT_EQ(s.nacks_sent, 0u);
  }
}

TEST(CtConsensusTest, MessagePatternFailureFree) {
  // Traffic shape of a one-round run, observed with trace layers: the
  // coordinator receives estimates and acks; participants receive the
  // proposal and the decision.
  Cluster cluster{base_config(3, 32)};
  std::vector<runtime::TraceLayer*> traces;
  for (HostId i = 0; i < 3; ++i) {
    auto& proc = cluster.process(i);
    traces.push_back(&proc.add_layer<runtime::TraceLayer>());
    auto& fd_layer = proc.add_layer<StaticFd>();
    proc.add_layer<CtConsensus>(fd_layer);
  }
  cluster.run_until(des::TimePoint::origin());
  for (HostId i = 0; i < 3; ++i) cluster.process(i).layer<CtConsensus>().propose(0, i);
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(100));

  using runtime::MsgKind;
  // Round 1: both participants' estimates reach the coordinator. Later
  // rounds keep running until the DECIDE lands (CT participants advance
  // immediately after acking), so counts are lower bounds.
  EXPECT_GE(traces[0]->count(MsgKind::kEstimate), 2u);
  EXPECT_GE(traces[0]->count(MsgKind::kAck), 1u);
  EXPECT_EQ(traces[0]->count(MsgKind::kNack), 0u);
  for (const HostId i : {1u, 2u}) {
    EXPECT_GE(traces[i]->count(MsgKind::kPropose), 1u);
    EXPECT_LE(traces[i]->count(MsgKind::kPropose), 2u);  // rounds 1 and maybe 2
    EXPECT_GE(traces[i]->count(MsgKind::kDecide), 1u);
  }
  // Round 2's coordinator (process 1) receives a round-2 estimate from
  // process 2 -- the post-ack traffic whose contention the paper discusses.
  EXPECT_GE(traces[1]->count(MsgKind::kEstimate), 1u);
}

TEST(CtConsensusTest, CoordinatorCrashMidRoundRecoversViaSuspicion) {
  // The coordinator crashes AFTER proposing; participants already acked,
  // but the decision never arrives. Their heartbeat detectors eventually
  // suspect it, the next round's coordinator takes over, and consensus
  // still terminates and agrees.
  ClusterConfig cfg;
  cfg.n = 5;
  cfg.seed = 33;
  cfg.timers = net::TimerModel::ideal();
  Cluster cluster{cfg};
  const auto fd_params = HeartbeatFdParams::from_timeout_ms(10.0);
  for (HostId i = 0; i < 5; ++i) {
    auto& proc = cluster.process(i);
    auto& hb = proc.add_layer<HeartbeatFd>(fd_params);
    proc.add_layer<CtConsensus>(hb);
  }
  std::vector<std::optional<std::int64_t>> decisions(5);
  for (HostId i = 0; i < 5; ++i) {
    cluster.process(i).layer<CtConsensus>().set_decide_callback(
        [&decisions, i](const DecisionEvent& ev) { decisions[i] = ev.value; });
  }
  // Propose at 50 ms; crash p0 at 50.35 ms -- after it has sent the
  // proposal (~0.3 ms in) but before its decision broadcast completes
  // its round... the exact interleaving doesn't matter for safety.
  const auto t0 = des::TimePoint::origin() + des::Duration::from_ms(50);
  for (HostId i = 0; i < 5; ++i) {
    auto& proc = cluster.process(i);
    cluster.sim().schedule_at(t0, [&proc] {
      proc.layer<CtConsensus>().propose(0, 100 + proc.id());
    });
  }
  cluster.crash_at(0, t0 + des::Duration::from_ms(0.35));
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(500));

  std::set<std::int64_t> values;
  int decided = 0;
  for (const HostId i : {1u, 2u, 3u, 4u}) {
    if (decisions[i]) {
      ++decided;
      values.insert(*decisions[i]);
    }
  }
  EXPECT_GE(decided, 3);            // every correct process that got the word
  EXPECT_LE(values.size(), 1u);     // agreement
  if (!values.empty()) {
    EXPECT_GE(*values.begin(), 100);
    EXPECT_LE(*values.begin(), 104);
  }
}

TEST(CtConsensusTest, DecideRelayCompletesDeliveryAfterCoordinatorCrash) {
  // Same mid-round crash, with relay enabled: every correct process must
  // learn the decision even if the crashed coordinator's own DECIDE
  // broadcast was cut short.
  ClusterConfig cfg;
  cfg.n = 5;
  cfg.seed = 34;
  cfg.timers = net::TimerModel::ideal();
  Cluster cluster{cfg};
  const auto fd_params = HeartbeatFdParams::from_timeout_ms(10.0);
  for (HostId i = 0; i < 5; ++i) {
    auto& proc = cluster.process(i);
    auto& hb = proc.add_layer<HeartbeatFd>(fd_params);
    auto& cons = proc.add_layer<CtConsensus>(hb);
    cons.set_relay_decide(true);
  }
  std::vector<std::optional<std::int64_t>> decisions(5);
  for (HostId i = 0; i < 5; ++i) {
    cluster.process(i).layer<CtConsensus>().set_decide_callback(
        [&decisions, i](const DecisionEvent& ev) { decisions[i] = ev.value; });
  }
  const auto t0 = des::TimePoint::origin() + des::Duration::from_ms(50);
  for (HostId i = 0; i < 5; ++i) {
    auto& proc = cluster.process(i);
    cluster.sim().schedule_at(t0, [&proc] {
      proc.layer<CtConsensus>().propose(0, 100 + proc.id());
    });
  }
  cluster.crash_at(0, t0 + des::Duration::from_ms(0.55));
  cluster.run_until(des::TimePoint::origin() + des::Duration::from_ms(500));

  std::set<std::int64_t> values;
  for (const HostId i : {1u, 2u, 3u, 4u}) {
    ASSERT_TRUE(decisions[i].has_value()) << "process " << i << " never learned the decision";
    values.insert(*decisions[i]);
  }
  EXPECT_EQ(values.size(), 1u);
}

TEST(SequencerTest, LatenciesConsistentAcrossInstances) {
  Cluster cluster{base_config(5, 22)};
  for (HostId i = 0; i < 5; ++i) {
    auto& proc = cluster.process(i);
    auto& fd_layer = proc.add_layer<StaticFd>();
    proc.add_layer<CtConsensus>(fd_layer);
  }
  SequencerConfig cfg;
  cfg.executions = 20;
  ConsensusSequencer seq{cluster, cfg};
  const auto results = seq.run();
  for (const auto& r : results) {
    ASSERT_TRUE(r.decided());
    EXPECT_GT(r.latency_ms(), 0.3);
    EXPECT_LT(r.latency_ms(), 6.0);
    EXPECT_EQ(r.rounds, 1);
  }
}

}  // namespace
}  // namespace sanperf::consensus
