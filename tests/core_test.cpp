// Tests of the combined-methodology core: measurement campaigns,
// calibration, simulation wrappers and the experiment drivers.
#include <gtest/gtest.h>

#include <sstream>

#include "core/calibration.hpp"
#include "core/config.hpp"
#include "core/experiments.hpp"
#include "core/measurement.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"
#include "stats/ks.hpp"

namespace sanperf::core {
namespace {

TEST(ScaleTest, PresetsAndEnvParsing) {
  EXPECT_EQ(Scale::quick().name(), "quick");
  EXPECT_EQ(Scale::defaults().name(), "default");
  EXPECT_EQ(Scale::full().name(), "full");
  EXPECT_EQ(Scale::full().class1_executions, 5000u);  // the paper's 5000
  EXPECT_EQ(Scale::full().class3_runs, 20u);
  EXPECT_EQ(Scale::full().class3_executions, 1000u);
}

TEST(MeasureDelaysTest, UnicastMatchesNetworkGroundTruth) {
  const auto params = net::NetworkParams::defaults();
  const auto delays = measure_unicast_delays(params, 3000, 5);
  ASSERT_EQ(delays.size(), 3000u);
  stats::SummaryStats s;
  for (const double d : delays) s.add(d);
  EXPECT_NEAR(s.mean(), params.expected_unicast_e2e_ms(), 0.005);
  EXPECT_GE(s.min(), 0.099);
  EXPECT_LE(s.max(), 0.351);
}

TEST(MeasureDelaysTest, BroadcastSlowerThanUnicastAndGrowsWithN) {
  const auto params = net::NetworkParams::defaults();
  const auto uni = measure_unicast_delays(params, 1000, 6);
  const auto b3 = measure_broadcast_delays(params, 3, 1000, 7);
  const auto b5 = measure_broadcast_delays(params, 5, 1000, 8);
  const auto mean = [](const std::vector<double>& xs) {
    stats::SummaryStats s;
    for (const double x : xs) s.add(x);
    return s.mean();
  };
  EXPECT_GT(mean(b3), mean(uni));
  EXPECT_GT(mean(b5), mean(b3));
}

TEST(MeasureLatencyTest, Class1AllDecideAndRoundsAreOne) {
  const auto res = measure_latency(3, net::NetworkParams::defaults(),
                                   net::TimerModel::ideal(), -1, 100, 9);
  EXPECT_EQ(res.undecided, 0u);
  ASSERT_EQ(res.latencies_ms.size(), 100u);
  for (const auto r : res.rounds) EXPECT_EQ(r, 1);
  const auto s = res.summary();
  EXPECT_GT(s.mean(), 0.4);
  EXPECT_LT(s.mean(), 3.0);
}

TEST(MeasureLatencyTest, CoordinatorCrashSlowerParticipantCrashClose) {
  const auto params = net::NetworkParams::defaults();
  const auto timers = net::TimerModel::ideal();
  const auto ok = measure_latency(5, params, timers, -1, 150, 10);
  const auto coord = measure_latency(5, params, timers, 0, 150, 10);
  const auto part = measure_latency(5, params, timers, 1, 150, 10);
  EXPECT_GT(coord.summary().mean(), ok.summary().mean() * 1.2);
  EXPECT_LT(part.summary().mean(), ok.summary().mean() * 1.05);
}

TEST(MeasureLatencyTest, N3ParticipantCrashAnomaly) {
  // Section 5.3: with n = 3 the crash of a participant INCREASES measured
  // latency, because the coordinator unicasts to the dead process first.
  const auto params = net::NetworkParams::defaults();
  const auto timers = net::TimerModel::ideal();
  const auto ok = measure_latency(3, params, timers, -1, 400, 11);
  const auto part = measure_latency(3, params, timers, 1, 400, 11);
  EXPECT_GT(part.summary().mean(), ok.summary().mean());
}

TEST(MeasureClass3Test, RunProducesLatenciesAndQos) {
  const auto run = measure_class3_run(3, net::NetworkParams::defaults(),
                                      net::TimerModel::defaults(), /*timeout_ms=*/5.0,
                                      /*executions=*/40, 12);
  EXPECT_GT(run.latency.latencies_ms.size() + run.latency.undecided, 35u);
  EXPECT_GT(run.experiment_ms, 300.0);
  // With T = 5 ms on the stall-prone timer model, mistakes must occur.
  EXPECT_GT(run.qos.pairs_used, 0u);
  EXPECT_GT(run.qos.t_mr_ms, 0.0);
  EXPECT_GT(run.qos.t_m_ms, 0.0);
  EXPECT_LT(run.qos.t_m_ms, run.qos.t_mr_ms);
}

TEST(MeasureClass3Test, GenerousTimeoutGivesQuietDetectorsAndFastLatency) {
  const auto bad = measure_class3(3, net::NetworkParams::defaults(),
                                  net::TimerModel::defaults(), 2.0, 2, 30, 13);
  const auto good = measure_class3(3, net::NetworkParams::defaults(),
                                   net::TimerModel::defaults(), 100.0, 2, 30, 13);
  EXPECT_GT(bad.latency_ms.mean, good.latency_ms.mean);
  if (bad.pooled_qos.pairs_used > 0 && good.pooled_qos.pairs_used > 0) {
    EXPECT_GT(good.pooled_qos.t_mr_ms, bad.pooled_qos.t_mr_ms);
  }
}

TEST(CalibrationTest, ShiftFitSubtractsCpuShare) {
  const stats::BimodalUniform fit{0.8, 0.10, 0.13, 0.145, 0.35};
  const auto shifted = shift_fit(fit, 0.05);
  EXPECT_NEAR(shifted.a1, 0.05, 1e-12);
  EXPECT_NEAR(shifted.b2, 0.30, 1e-12);
  EXPECT_DOUBLE_EQ(shifted.p1, 0.8);
}

TEST(CalibrationTest, MakeTransportUsesTsendSymmetrically) {
  const stats::BimodalUniform uni{0.8, 0.10, 0.13, 0.145, 0.35};
  const stats::BimodalUniform bc{0.8, 0.20, 0.30, 0.35, 0.70};
  const auto t = make_transport(uni, bc, 0.025);
  EXPECT_DOUBLE_EQ(t.send_cpu.mean_ms(), 0.025);
  EXPECT_DOUBLE_EQ(t.recv_cpu.mean_ms(), 0.025);
  EXPECT_NEAR(t.frame_unicast.mean_ms(), uni.mean() - 0.05, 1e-12);
  EXPECT_NEAR(t.frame_broadcast.mean_ms(), bc.mean() - 0.05, 1e-12);
}

TEST(CalibrationTest, CalibrationRecoversGroundTruthE2e) {
  // The calibrated SAN unicast chain must reproduce the emulator's
  // end-to-end delay distribution: fit e2e, subtract 2 t_send, rebuild.
  const auto params = net::NetworkParams::defaults();
  const auto delays = measure_unicast_delays(params, 4000, 14);
  const auto fit = stats::fit_bimodal_uniform(delays);
  // Ground truth e2e is wire + pipeline + 0.05.
  EXPECT_NEAR(fit.mean(), params.expected_unicast_e2e_ms(), 0.01);
  const auto transport = make_transport(fit, fit, kTsendMs);
  EXPECT_NEAR(transport.frame_unicast.mean_ms(), params.expected_unicast_e2e_ms() - 0.05, 0.01);
}

TEST(SimulationTest, Class1MeanStableAcrossSeeds) {
  const auto transport = sanmodels::TransportParams::nominal(3);
  const auto a = simulate_class1(3, transport, 400, 1);
  const auto b = simulate_class1(3, transport, 400, 2);
  EXPECT_NEAR(a.summary.mean(), b.summary.mean(), 0.05);
  EXPECT_EQ(a.dropped, 0u);
}

TEST(SimulationTest, MeasurementAndSimulationAgreeClass1) {
  // The headline validation: calibrate the SAN from emulator delays, then
  // compare class-1 latency from both methodologies (paper Section 5.2:
  // 1.06 vs 1.030 for n = 3, 1.43 vs 1.442 for n = 5).
  const auto scale = Scale::quick();
  const auto ctx = make_context(scale, 99);
  for (const std::size_t n : {3u, 5u}) {
    const auto meas = measure_latency(n, ctx.network, net::TimerModel::ideal(), -1, 300,
                                      1000 + n);
    const auto sim = simulate_class1(n, ctx.transport(n), 300, 2000 + n);
    const double m = meas.summary().mean();
    const double s = sim.summary.mean();
    EXPECT_NEAR(s / m, 1.0, 0.25) << "n=" << n << " meas=" << m << " sim=" << s;
  }
}

TEST(ExperimentsTest, ContextProvidesCalibratedTransports) {
  const auto ctx = make_context(Scale::quick(), 15);
  EXPECT_GT(ctx.unicast_fit.mean(), 0.1);
  EXPECT_LT(ctx.unicast_fit.mean(), 0.2);
  for (const std::size_t n : {3u, 5u}) {
    const auto t = ctx.transport(n);
    EXPECT_GT(t.frame_broadcast.mean_ms(), t.frame_unicast.mean_ms());
  }
  EXPECT_THROW(ctx.transport(9), std::out_of_range);
}

TEST(ExperimentsTest, Fig7aLatencyIncreasesWithN) {
  auto scale = Scale::quick();
  scale.ns = {3, 5, 7};
  scale.class1_executions = 120;
  PaperContext ctx = make_context(scale, 16);
  ctx.timers = net::TimerModel::ideal();
  const auto rows = run_fig7a(ctx);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_LT(rows[0].mean.mean, rows[1].mean.mean);
  EXPECT_LT(rows[1].mean.mean, rows[2].mean.mean);
}

TEST(ExperimentsTest, Fig7bSweepSelectsInteriorTsend) {
  auto scale = Scale::quick();
  scale.class1_executions = 200;
  scale.sim_replications = 200;
  PaperContext ctx = make_context(scale, 17);
  ctx.timers = net::TimerModel::ideal();
  const auto result = run_fig7b(ctx);
  ASSERT_EQ(result.sweep.candidates.size(), 6u);
  // The emulator's ground truth is 0.025 ms; the sweep must not pick the
  // extremes.
  EXPECT_GE(result.sweep.best_t_send_ms, 0.010);
  EXPECT_LE(result.sweep.best_t_send_ms, 0.035);
  for (const auto& cand : result.sweep.candidates) {
    EXPECT_GE(cand.ks_distance, 0.0);
    EXPECT_LE(cand.ks_distance, 1.0);
  }
}

TEST(ExperimentsTest, PaperTable1ReferenceShape) {
  const auto& rows = paper_table1();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].n, 3u);
  EXPECT_DOUBLE_EQ(rows[0].meas_no_crash, 1.06);
  EXPECT_DOUBLE_EQ(rows[1].sim_no_crash, 1.442);
  EXPECT_TRUE(std::isnan(rows[2].sim_no_crash));
}

TEST(ReportTest, TableAndFormatting) {
  std::ostringstream os;
  TablePrinter table{os, {{"a", 6}, {"b", 8}}};
  table.print_header();
  table.print_row({"x", "y"});
  const std::string out = os.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(std::nan(""), 2), "-");
  stats::MeanCI ci;
  ci.mean = 2.5;
  ci.half_width = 0.1;
  ci.count = 10;
  EXPECT_NE(fmt_ci(ci, 2).find("2.50"), std::string::npos);
  EXPECT_NE(fmt_ci(ci, 2).find("+-0.10"), std::string::npos);
}

TEST(ReportTest, CdfPrintingCoversRange) {
  std::ostringstream os;
  const stats::Ecdf e{{1.0, 2.0, 3.0}};
  print_cdfs(os, {{"series", e}}, 5, "ms");
  const std::string out = os.str();
  EXPECT_NE(out.find("series"), std::string::npos);
  EXPECT_NE(out.find("1.000"), std::string::npos);
  EXPECT_NE(out.find("3.000"), std::string::npos);
}

}  // namespace
}  // namespace sanperf::core
